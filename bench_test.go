// Benchmarks that regenerate each figure of the paper's evaluation
// (Figures 4(a), 4(b), 5, 6, 7) and the DESIGN.md ablations at reduced
// scale, reporting the figure's headline numbers as benchmark metrics.
// `cmd/herabench` produces the full tables; these provide a
// `go test -bench` entry point per experiment plus microbenchmarks of
// the simulator substrates.
package hera_test

import (
	"testing"

	hera "herajvm"
	"herajvm/internal/cache"
	"herajvm/internal/cell"
	"herajvm/internal/experiments"
	"herajvm/internal/mem"
	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

func benchOpts() experiments.Options {
	return experiments.Options{
		Threads: 6,
		MaxSPEs: 6,
		ScaleOverride: map[string]int{
			"compress":   1,
			"mpegaudio":  2,
			"mandelbrot": 2,
		},
	}
}

// BenchmarkFig4aSpeedup regenerates Figure 4(a) (speedup vs PPE on 1 and
// 6 SPEs) and reports the three workloads' 6-SPE speedups.
func BenchmarkFig4aSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig4a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Rows {
			b.ReportMetric(r.SixSPE, r.Workload+"-6spe-x")
		}
	}
}

// BenchmarkFig4bScalability regenerates Figure 4(b) (speedup on 1..6
// SPEs relative to one SPE).
func BenchmarkFig4bScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig4b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Rows {
			b.ReportMetric(r.Scaling[len(r.Scaling)-1], r.Workload+"-scale6")
		}
	}
}

// BenchmarkFig5CycleBreakdown regenerates Figure 5 (proportion of SPE
// cycles per operation type) and reports mandelbrot's FP share and
// compress's main-memory share — the paper's two headline observations.
func BenchmarkFig5CycleBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Rows {
			switch r.Workload {
			case "mandelbrot":
				b.ReportMetric(r.Shares[1], "mandel-fp-share") // ClassFloat
			case "compress":
				b.ReportMetric(r.Shares[5], "compress-mem-share") // ClassMainMem
			}
		}
	}
}

// BenchmarkFig6DataCache regenerates Figure 6 (data-cache size sweep)
// and reports compress's degradation at the smallest size.
func BenchmarkFig6DataCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Rows {
			if r.Workload == "compress" {
				b.ReportMetric(r.RelPerf[0], "compress-8kb-relperf")
				b.ReportMetric(r.HitRate[len(r.HitRate)-1], "compress-104kb-hitrate")
			}
		}
	}
}

// BenchmarkFig7CodeCache regenerates Figure 7 (code-cache size sweep)
// and reports mpegaudio's collapse at the smallest size.
func BenchmarkFig7CodeCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Rows {
			if r.Workload == "mpegaudio" {
				b.ReportMetric(r.RelPerf[0], "mpeg-8kb-relperf")
			}
		}
	}
}

// BenchmarkAblationBlockSize regenerates ablation A1 (array block size).
func BenchmarkAblationBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMigration regenerates ablation A2 (migration
// amortisation) and reports the break-even work size.
func BenchmarkAblationMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunA2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(a.BreakEvenOps), "breakeven-units")
	}
}

// BenchmarkAblationCacheSplit regenerates ablation A3 (data/code split).
func BenchmarkAblationCacheSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA3(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCoherence regenerates ablation A4 (JMM purge/flush
// cost).
func BenchmarkAblationCoherence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate microbenchmarks ---

// BenchmarkInterpreterThroughput measures simulated instructions per
// second of host time for the mandelbrot inner loop on one SPE.
func BenchmarkInterpreterThroughput(b *testing.B) {
	spec := workloads.Mandelbrot()
	prog, err := spec.Build(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		prog, _ = spec.Build(1, 2)
		cfg := vm.DefaultConfig()
		cfg.Machine.Topology = cell.PS3Topology(1)
		machine, err := vm.New(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := machine.RunMain(spec.MainClass, "main"); err != nil {
			b.Fatal(err)
		}
		instrs += machine.Machine.CoresOf(hera.SPE)[0].Stats.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkDataCacheHit measures the host cost of a software-cache hit.
func BenchmarkDataCacheHit(b *testing.B) {
	cfg := hera.DefaultConfig()
	machine, err := cell.NewMachine(cfg.Machine)
	if err != nil {
		b.Fatal(err)
	}
	dc := newBenchDataCache(machine)
	_, now := dc.ReadObject(0, 0x100000, 64, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, now = dc.ReadObject(now, 0x100000, 64, 16, 8)
	}
}

func newBenchDataCache(m *cell.Machine) *cache.DataCache {
	return cache.NewDataCache(cache.DefaultDataCacheConfig(), m.CoresOf(hera.SPE)[0], 0)
}

// BenchmarkEIBTransfer measures the host cost of bus arbitration.
func BenchmarkEIBTransfer(b *testing.B) {
	e := cell.NewEIB(cell.DefaultEIBConfig())
	now := cell.Clock(0)
	for i := 0; i < b.N; i++ {
		now = e.Transfer(now, 1024)
	}
}

// BenchmarkMainMemory measures simulated memory accessor throughput.
func BenchmarkMainMemory(b *testing.B) {
	m := mem.NewMain(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Write64(uint32(i)&0xffff8, uint64(i))
		_ = m.Read64(uint32(i) & 0xffff8)
	}
}
