module herajvm

go 1.24
