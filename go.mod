module herajvm

go 1.23
