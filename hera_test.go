package hera_test

import (
	"strings"
	"testing"

	hera "herajvm"
)

func TestQuickstartAPI(t *testing.T) {
	prog := hera.NewProgram()
	cls := prog.NewClass("Main", nil)
	m := cls.NewMethod("main", hera.Static, hera.Int)
	a := m.Asm()
	a.ConstI(21)
	a.ConstI(2)
	a.MulI()
	a.Ret()
	a.MustBuild()

	sys, err := hera.NewSystem(hera.DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	if int32(uint32(res.Value)) != 42 {
		t.Errorf("result: %d", int32(uint32(res.Value)))
	}
	if res.Cycles == 0 {
		t.Error("no cycles elapsed")
	}
	if !strings.Contains(sys.Report(), "machine: 1 PPE + 6 SPEs") {
		t.Error("report header missing")
	}
}

func TestAnnotatedMigrationThroughFacade(t *testing.T) {
	prog := hera.NewProgram()
	cls := prog.NewClass("Main", nil)
	hot := cls.NewMethod("hot", hera.Static, hera.Double, hera.Double).
		Annotate(hera.RunOnSPE)
	{
		a := hot.Asm()
		a.LoadD(0)
		a.ConstD(3.0)
		a.MulD()
		a.Ret()
		a.MustBuild()
	}
	m := cls.NewMethod("main", hera.Static, hera.Int)
	a := m.Asm()
	a.ConstD(14.0)
	a.InvokeStatic(hot)
	a.D2I()
	a.Ret()
	a.MustBuild()

	sys, err := hera.NewSystem(hera.DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	if int32(uint32(res.Value)) != 42 {
		t.Errorf("result: %d", int32(uint32(res.Value)))
	}
	if !strings.Contains(sys.Report(), "mig in/out") {
		t.Error("report should include migration counters")
	}
}

func TestWorkloadRegistry(t *testing.T) {
	all := hera.Workloads()
	if len(all) != 3 {
		t.Fatalf("want 3 workloads, got %d", len(all))
	}
	for _, w := range all {
		if w.Reference(2, 1) != w.Reference(6, 1) {
			t.Errorf("%s: checksum should be thread-independent", w.Name)
		}
	}
	if _, err := hera.WorkloadByName("mandelbrot"); err != nil {
		t.Error(err)
	}
}

func TestFixedPolicyThroughFacade(t *testing.T) {
	prog := hera.NewProgram()
	cls := prog.NewClass("Main", nil)
	m := cls.NewMethod("main", hera.Static, hera.Int)
	a := m.Asm()
	a.ConstI(7)
	a.Ret()
	a.MustBuild()

	cfg := hera.DefaultConfig()
	cfg.Policy = hera.FixedPolicy{Kind: hera.SPE}
	sys, err := hera.NewSystem(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	if int32(uint32(res.Value)) != 7 {
		t.Errorf("result: %d", res.Value)
	}
}
