package hera_test

import (
	"fmt"
	"log"

	hera "herajvm"
)

// buildSquare returns a program whose Square.main squares its argument.
func buildSquare() *hera.Program {
	prog := hera.NewProgram()
	cls := prog.NewClass("Square", nil)
	m := cls.NewMethod("main", hera.Static, hera.Int, hera.Int)
	a := m.Asm()
	a.LoadI(0)
	a.LoadI(0)
	a.MulI()
	a.Ret()
	a.MustBuild()
	return prog
}

// ExampleSystem_Submit demonstrates deadline-aware submission: two
// jobs share one booted machine, each carrying a completion deadline.
// With admission shedding enabled, the second job's impossibly tight
// deadline (one cycle — less than any scheduling round) is refused at
// admission; the first completes and reports its deadline met. The
// whole script is deterministic, so the output is exact.
func ExampleSystem_Submit() {
	cfg := hera.DefaultConfig()
	cfg.Admission = hera.AdmissionConfig{Shed: true}
	sys, err := hera.NewSystem(cfg, buildSquare())
	if err != nil {
		log.Fatal(err)
	}

	ok, verdict, err := sys.Submit(hera.JobRequest{
		Class: "Square", Method: "main", Args: []int32{7},
		Deadline: 200_000_000, // cycles, relative to admission
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first:", verdict)

	shed, verdict, err := sys.Submit(hera.JobRequest{
		Class: "Square", Method: "main", Args: []int32{8},
		Deadline: 1, // impossible: shorter than one scheduling round
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("second:", verdict)

	if err := sys.Drain(); err != nil {
		log.Fatal(err)
	}
	res, err := ok.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first value:", int32(res.Value), "deadline met:", res.DeadlineMet)
	res, err = shed.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("second shed:", res.Shed)
	// Output:
	// first: admitted
	// second: shed
	// first value: 49 deadline met: true
	// second shed: true
}
