package cluster

import (
	"fmt"

	"herajvm/internal/cell"
	"herajvm/internal/core"
)

// The dispatcher. Routing reuses the admission pipeline's completion
// probe per shard: predicted start (the shard's worst-pool best-core
// drain estimate, floored at the arrival) plus the shard's observed
// per-job service EWMA scaled by its pending depth. The job goes to
// the shard predicting the earliest completion — effectively
// join-shortest-predicted-queue — with ties broken by lowest shard ID,
// so routing is a pure function of barrier-synchronized shard state
// and replays exactly. A shard whose bounded pending queue is full is
// ineligible; shedding happens only when no shard is eligible, or
// (with Config.Shed) when even the best eligible shard predicts a
// deadline miss. The dispatcher is deliberately built as
// probe-then-commit so a later inter-shard hand-off can re-enter it:
// a shard rejecting a job mid-flight just becomes a new request
// probed against the remaining shards.

// Submit routes one request through the cluster: advance every shard
// to the request's arrival (epoch barriers included), probe each
// shard's predicted completion, and submit to the best eligible shard
// — or shed when there is none. Requests must be submitted in
// non-decreasing arrival order (the dispatcher is the open-loop
// driver); an arrival earlier than the cluster horizon is floored to
// it. The error return is for malformed requests and machine-level
// failures; shedding is a verdict.
func (c *Cluster) Submit(req core.JobRequest) (*Job, core.Verdict, error) {
	arrival := req.Arrival
	if arrival < c.horizon {
		arrival = c.horizon
	}
	if err := c.AdvanceTo(arrival); err != nil {
		return nil, core.Shed, err
	}
	req.Arrival = arrival

	best := -1
	var bestCompletion cell.Clock
	for _, s := range c.shards {
		completion, room, err := s.Sys.Probe(req)
		if err != nil {
			return nil, core.Shed, fmt.Errorf("cluster: probing shard %d: %w", s.ID, err)
		}
		if !room {
			continue
		}
		if best < 0 || completion < bestCompletion {
			best, bestCompletion = s.ID, completion
		}
	}

	var deadline cell.Clock
	if req.Deadline != 0 {
		deadline = arrival + req.Deadline
	}
	j := &Job{Seq: len(c.jobs), Shard: -1, Verdict: core.Shed,
		Arrival: arrival, Deadline: deadline, Req: req}
	if best < 0 || (c.cfg.Shed && deadline != 0 && bestCompletion > deadline) {
		// Every shard is full, or every shard's probe misses the
		// deadline: shed at dispatch. The job keeps its sequence slot so
		// the merged result stream replays identically.
		c.jobs = append(c.jobs, j)
		return j, core.Shed, nil
	}

	shard := c.shards[best]
	inner, verdict, err := shard.Sys.Submit(req)
	if err != nil {
		return nil, core.Shed, fmt.Errorf("cluster: shard %d: %w", best, err)
	}
	shard.Routed++
	j.Shard, j.Verdict, j.Inner = best, verdict, inner
	c.jobs = append(c.jobs, j)
	return j, verdict, nil
}
