package cluster

import (
	"errors"
	"fmt"

	"herajvm/internal/cell"
	"herajvm/internal/core"
)

// Inter-shard job hand-off. At each epoch barrier — every shard parked
// at the boundary, so the decision reads pinned state exactly like the
// dispatcher — the cluster re-probes its in-flight deadline jobs with a
// capacity-aware completion estimate and moves the worst predicted
// deadline-misser to a shard predicted to rescue it: the job's thread
// tree is frozen at a safe point (every thread at a bytecode boundary,
// vm.FreezeJob), carried across as a portable JobImage, and rehydrated
// on the target. The whole mechanism is a pure function of
// barrier-synchronized shard state, so replay remains byte-identical,
// serial or parallel, at any GOMAXPROCS.
//
// The re-probe deliberately does NOT reuse the admission probe. That
// probe is capacity-blind (service EWMA times queue depth, regardless
// of how many cores drain the queue) — adequate for tie-breaking
// near-identical shards at admission, but on an imbalanced fleet it
// routes bursts onto weak shards and, mid-flight, predicts the wrong
// hand-off direction. Instead the estimate here is
//
//	completion ≈ horizon + service × (pending+1) / workers
//
// with service the fastest completed-job latency observed anywhere in
// the cluster — a measured, deterministic proxy for one job's
// uncontended service time. Until a first job completes there is no
// measurement, and the pass refuses to move anything: hand-off waits
// for data rather than thrashing on cold-start guesses.
//
// At most one job moves per barrier (the freeze itself advances the
// source shard's clock, invalidating the other estimates taken at this
// boundary) and each job moves at most MaxHandoffs times, so a job
// that keeps slipping everywhere settles instead of thrashing.

// DefaultMaxHandoffs bounds how many times one job may be handed off.
const DefaultMaxHandoffs = 3

// rebalance runs the hand-off pass at an epoch boundary. Jobs that
// finish before reaching a safe point (ErrJobDone) or are entangled
// with non-job state (ErrNotFreezable) are skipped silently — both are
// verdicts about the job, not failures of the cluster.
func (c *Cluster) rebalance(boundary cell.Clock) error {
	maxH := c.cfg.MaxHandoffs
	if maxH <= 0 {
		maxH = DefaultMaxHandoffs
	}
	service, ok := c.serviceFloor()
	if !ok {
		return nil // no completed job yet: no measured basis to move anything
	}

	// Worst offender: the in-flight deadline job with the largest
	// predicted slip past its deadline on its current shard.
	var victim *Job
	var victimSlip cell.Clock
	for _, j := range c.jobs {
		if j.Inner == nil || j.Inner.Done() || j.Deadline == 0 || j.Handoffs >= maxH {
			continue
		}
		completion := c.estimate(c.shards[j.Shard], service, 0)
		if completion <= j.Deadline {
			continue
		}
		slip := completion - j.Deadline
		if victim == nil || slip > victimSlip {
			victim, victimSlip = j, slip
		}
	}
	if victim == nil {
		return nil
	}

	// Rescuing target: the shard with room predicting the earliest
	// completion for one more job — strictly earlier than staying put,
	// and early enough to actually meet the deadline. A slipping job no
	// shard can rescue stays where it is: moving it pays the freeze,
	// the transfer and a recompile without buying anything.
	src := c.shards[victim.Shard]
	best := -1
	bestCompletion := c.estimate(src, service, 0)
	for _, s := range c.shards {
		if s.ID == victim.Shard || !c.room(s) {
			continue
		}
		completion := c.estimate(s, service, 1)
		if completion >= bestCompletion || completion > victim.Deadline {
			continue
		}
		best, bestCompletion = s.ID, completion
	}
	if best < 0 {
		return nil
	}

	img, err := src.Sys.Freeze(c.cfg.Ctx, victim.Inner)
	switch {
	case errors.Is(err, core.ErrJobDone), errors.Is(err, core.ErrNotFreezable):
		return nil
	case err != nil:
		return fmt.Errorf("cluster: freezing job %d on shard %d: %w", victim.Seq, victim.Shard, err)
	}

	dst := c.shards[best]
	inner, err := dst.Sys.Rehydrate(img, boundary, victim.Req)
	if err != nil {
		// The shards run the same program, so a rejected image is a bug,
		// not an operational condition — and the job is gone from both
		// shards. Fail the run loudly.
		return fmt.Errorf("cluster: rehydrating job %d on shard %d: %w", victim.Seq, best, err)
	}
	src.HandoffsOut++
	dst.HandoffsIn++
	victim.Inner = inner
	victim.Shard = best
	victim.Handoffs++
	return nil
}

// serviceFloor returns the fastest completed-job latency observed in
// the cluster so far — the measured uncontended-service proxy the
// hand-off estimates scale by — and whether any job has completed.
func (c *Cluster) serviceFloor() (cell.Clock, bool) {
	var floor cell.Clock
	found := false
	for _, j := range c.jobs {
		if j.Inner == nil || !j.Inner.Done() {
			continue
		}
		res, _ := j.Inner.Wait() // done: returns without driving the machine
		if res == nil {
			continue
		}
		lat := res.CompletedAt - res.AdmittedAt
		if !found || lat < floor {
			floor, found = lat, true
		}
	}
	return floor, found
}

// estimate predicts the completion cycle of one of a shard's jobs (or,
// with extra=1, of one more job landing on it): the cluster horizon
// plus the measured service floor scaled by queue depth per
// workload-hosting core.
func (c *Cluster) estimate(s *Shard, service cell.Clock, extra int) cell.Clock {
	workers := s.Sys.VM.Cfg.Machine.Topology.DefaultWorkers()
	if workers < 1 {
		workers = 1
	}
	depth := cell.Clock(s.Sys.PendingJobs() + extra)
	return c.horizon + service*depth/cell.Clock(workers)
}

// room reports whether the shard's bounded pending queue can take one
// more job (always true with no bound configured).
func (c *Cluster) room(s *Shard) bool {
	max := s.Sys.VM.Cfg.Admission.MaxPending
	return max <= 0 || s.Sys.PendingJobs() < max
}
