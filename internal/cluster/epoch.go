package cluster

import (
	"fmt"
	"sync"

	"herajvm/internal/cell"
)

// The epoch engine. An epoch advances every shard to one boundary
// cycle and then synchronizes; boundaries are admission arrivals plus
// stride-spaced ticks between them. Shards share no simulated state,
// so the only ordering that matters is barrier-to-dispatcher: every
// dispatcher decision reads shard state with all shard goroutines
// parked, and the WaitGroup gives the happens-before edge the race
// detector demands. A shard's RunUntil may overshoot the boundary by
// at most one scheduling quantum — deterministically, which is why
// replay is byte-identical however the epochs are executed.

// AdvanceTo drives every shard to the target cycle, taking an epoch
// barrier at least every EpochStride cycles. It is the dispatcher's
// pre-admission step and is exported for open-loop drivers that want
// to advance cluster time without submitting.
func (c *Cluster) AdvanceTo(target cell.Clock) error {
	for c.horizon < target {
		next := c.horizon + c.cfg.EpochStride
		if next > target {
			next = target
		}
		if err := c.epoch(next); err != nil {
			return err
		}
	}
	return nil
}

// Drain advances the cluster, one epoch stride at a time, until every
// shard is idle. Per-job traps stay on the jobs; only machine-level
// failures (a deadlocked shard, a cancelled Ctx) are returned.
func (c *Cluster) Drain() error {
	for c.live() {
		if err := c.epoch(c.horizon + c.cfg.EpochStride); err != nil {
			return err
		}
	}
	return nil
}

// live reports whether any shard still has live threads.
func (c *Cluster) live() bool {
	for _, s := range c.shards {
		if s.Sys.LiveThreads() > 0 {
			return true
		}
	}
	return false
}

// epoch advances every shard to the boundary and synchronizes. With
// Serial set the shards advance one at a time on the calling
// goroutine; otherwise each shard advances on its own goroutine and
// the barrier is a WaitGroup wait, guarded by Ctx so a wedged shard
// fails the run instead of hanging it.
func (c *Cluster) epoch(boundary cell.Clock) error {
	if err := c.advanceShards(boundary); err != nil {
		return err
	}
	// With hand-off enabled, the barrier is also the rebalancing point:
	// every shard is parked here, so the slip probes and the freeze read
	// and mutate pinned state on the calling goroutine only.
	if c.cfg.Handoff {
		return c.rebalance(boundary)
	}
	return nil
}

// advanceShards drives every shard to the boundary and synchronizes.
func (c *Cluster) advanceShards(boundary cell.Clock) error {
	c.barriers++
	c.horizon = boundary
	if c.cfg.Serial {
		for _, s := range c.shards {
			if err := c.interrupted(); err != nil {
				return err
			}
			if err := s.Sys.RunUntil(boundary); err != nil {
				return fmt.Errorf("cluster: shard %d: %w", s.ID, err)
			}
		}
		return nil
	}
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, s := range c.shards {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			errs[i] = s.Sys.RunUntil(boundary)
		}(i, s)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-c.ctxDone():
		// Shard goroutines may still be running; the run is failing, so
		// leaking them until process exit beats blocking CI forever.
		return fmt.Errorf("cluster: epoch barrier at cycle %d: %w", boundary, c.cfg.Ctx.Err())
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: shard %d: %w", i, err)
		}
	}
	return nil
}

// interrupted reports the guard context's error, if it has one.
func (c *Cluster) interrupted() error {
	if c.cfg.Ctx == nil {
		return nil
	}
	select {
	case <-c.cfg.Ctx.Done():
		return fmt.Errorf("cluster: %w", c.cfg.Ctx.Err())
	default:
		return nil
	}
}

// ctxDone returns the guard context's done channel, or a nil channel
// (which blocks forever) when no guard is configured.
func (c *Cluster) ctxDone() <-chan struct{} {
	if c.cfg.Ctx == nil {
		return nil
	}
	return c.cfg.Ctx.Done()
}
