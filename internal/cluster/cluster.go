// Package cluster scales serving across host cores: a Cluster boots N
// independent System shards — each a whole simulated machine with its
// own topology, scheduler and admission config — and advances them on
// their own goroutines behind a drain-routed dispatcher. Every
// incoming job is probed against every shard at an epoch barrier (the
// admission pipeline's drain-estimate + service-EWMA completion
// probe, reused per shard) and routed to the shard predicting the
// earliest completion; with cluster-level shedding enabled, a job is
// refused only when every shard's probe predicts a deadline miss.
//
// Determinism is preserved by a conservative epoch barrier: shards
// advance independently — in parallel — only up to the next cluster
// epoch boundary (an admission arrival, or the configured epoch
// stride during drain), then synchronize. Because shards share no
// simulated state and each shard's own stepping is deterministic, the
// merged (arrival, shard, sequence)-ordered result stream is
// byte-identical across replays regardless of GOMAXPROCS or of
// whether the shards were advanced serially or in parallel; the
// barrier's job is to pin the machine state every dispatcher decision
// reads, and to bound shard skew so a future inter-shard job hand-off
// (a shard rejecting and forwarding a serialized thread tree) can
// slot in without changing the contract.
package cluster

import (
	"context"
	"fmt"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/core"
	"herajvm/internal/vm"
)

// DefaultEpochStride is the drain-phase barrier interval in simulated
// cycles: 500 scheduling quanta at the default 4000-cycle quantum —
// coarse enough that barrier overhead is noise against the work in an
// epoch, fine enough that shard clocks never drift more than ~0.06 ms
// of simulated time apart. The cluster figure's stride-sensitivity
// table (herabench -fig cluster) is the measured record of this
// trade-off.
const DefaultEpochStride cell.Clock = 2_000_000

// ShardConfig describes one shard of a cluster: its VM configuration
// (topology, scheduler, admission bounds — shards may differ) and a
// builder for its program. Each shard builds its own program copy so
// no compiled state, statics or heap is ever shared across shards —
// that isolation is what lets them advance on separate goroutines.
type ShardConfig struct {
	// Cfg is the shard's full VM configuration.
	Cfg vm.Config
	// Build constructs the shard's program. It is called once, on the
	// booting goroutine; every class a routed job may name must be in
	// the returned program.
	Build func() (*classfile.Program, error)
}

// Config tunes the cluster.
type Config struct {
	// EpochStride is the maximum number of cycles any shard advances
	// past the last barrier before the cluster resynchronizes (0 =
	// DefaultEpochStride). Arrivals always force a barrier; the stride
	// governs the drain phase between and after arrivals.
	EpochStride cell.Clock
	// Serial advances the shards one at a time on the calling
	// goroutine instead of in parallel — the measurement baseline the
	// cluster figure's wall-clock speedup is quoted against. Simulated
	// results are identical either way.
	Serial bool
	// Shed enables cluster-level deadline shedding: a deadline-carrying
	// job is refused at dispatch when every shard's completion probe
	// predicts a miss (or no shard has pending-queue room). Without it
	// the dispatcher always routes to the best shard and the job runs
	// to whatever fate its deadline meets.
	Shed bool
	// Handoff enables inter-shard job hand-off: at each epoch barrier
	// the cluster re-probes in-flight deadline jobs and moves the worst
	// predicted deadline-misser to a strictly better shard by freezing
	// its thread tree at a safe point and rehydrating it there (see
	// handoff.go). Off by default; replay determinism holds either way.
	Handoff bool
	// MaxHandoffs caps how many times one job may be handed off
	// (0 = DefaultMaxHandoffs).
	MaxHandoffs int
	// Ctx, when non-nil, guards every epoch barrier: if it is
	// cancelled, the next barrier returns its error instead of waiting
	// on shard goroutines — a wedged shard fails the run instead of
	// hanging it. It also aborts an in-progress freeze during hand-off,
	// leaving that job running on its source shard. nil means no guard.
	Ctx context.Context
}

// Shard is one booted member of the cluster.
type Shard struct {
	// ID is the shard's index in boot order — the routing tie-breaker.
	ID int
	// Sys is the shard's booted system.
	Sys *core.System
	// Routed counts the jobs the dispatcher sent to this shard.
	Routed int
	// HandoffsOut and HandoffsIn count jobs frozen off this shard and
	// rehydrated onto it by the hand-off pass.
	HandoffsOut int
	HandoffsIn  int
}

// Job is one job submitted through the cluster dispatcher.
type Job struct {
	// Seq is the cluster-wide submission sequence number.
	Seq int
	// Shard is the shard the job currently lives on (after any
	// hand-offs), or -1 when the dispatcher shed it.
	Shard int
	// Handoffs counts how many times the job was frozen off one shard
	// and rehydrated on another.
	Handoffs int
	// Verdict is the routed shard's admission verdict, or Shed for a
	// dispatcher-shed job.
	Verdict core.Verdict
	// Arrival is the cluster arrival cycle the job was dispatched at
	// (the requested arrival, floored at the cluster horizon).
	Arrival cell.Clock
	// Deadline is the job's absolute completion deadline (0 = none).
	Deadline cell.Clock
	// Req is the dispatched request (Arrival already floored).
	Req core.JobRequest
	// Inner is the shard-side job handle (nil for dispatcher-shed jobs).
	Inner *core.Job
}

// Cluster is a booted fleet of shards behind one dispatcher. It is not
// itself goroutine-safe: Submit/Drain/Results are called from one
// driving goroutine, and only the epoch engine fans out.
type Cluster struct {
	cfg    Config
	shards []*Shard
	jobs   []*Job
	// horizon is the last epoch boundary every shard has reached (the
	// cluster clock: no shard is behind it, and no shard is more than
	// one RunUntil overshoot past it).
	horizon cell.Clock
	// barriers counts completed epoch barriers — the synchronization
	// cost the stride table prices.
	barriers int
}

// Boot builds each shard's program, boots each shard's system and
// returns the idle cluster. Shards are booted on the calling
// goroutine, in order; parallelism begins only once epochs advance.
func Boot(cfg Config, shards []ShardConfig) (*Cluster, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	if cfg.EpochStride <= 0 {
		cfg.EpochStride = DefaultEpochStride
	}
	c := &Cluster{cfg: cfg}
	for i, sc := range shards {
		if sc.Build == nil {
			return nil, fmt.Errorf("cluster: shard %d has no program builder", i)
		}
		prog, err := sc.Build()
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d build: %w", i, err)
		}
		sys, err := core.NewSystem(sc.Cfg, prog)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d boot: %w", i, err)
		}
		c.shards = append(c.shards, &Shard{ID: i, Sys: sys})
	}
	return c, nil
}

// Shards returns the cluster's shards in boot order (the slice is the
// cluster's own; treat it as read-only).
func (c *Cluster) Shards() []*Shard { return c.shards }

// Jobs returns every dispatched job in submission order (a copy).
func (c *Cluster) Jobs() []*Job {
	out := make([]*Job, len(c.jobs))
	copy(out, c.jobs)
	return out
}

// Horizon returns the cluster clock: the last epoch boundary every
// shard has reached.
func (c *Cluster) Horizon() cell.Clock { return c.horizon }

// Barriers returns the number of epoch barriers taken so far.
func (c *Cluster) Barriers() int { return c.barriers }
