package cluster

import (
	"fmt"
	"sort"
	"strings"

	"herajvm/internal/core"
)

// Result is one entry of the merged cluster result stream.
type Result struct {
	// Seq and Shard identify the job (Shard -1 = dispatcher-shed).
	Seq   int
	Shard int
	// Name is the job's report label.
	Name string
	// Res is the per-job result: the shard's completed Result, or a
	// synthesized shed Result for dispatcher-shed jobs (Shed set, no
	// cycles, no value).
	Res *core.Result
	// Handoffs counts how many times the job moved shards mid-flight.
	Handoffs int
	// Err is the job's first thread trap, nil for clean and shed jobs.
	Err error
}

// Results returns the merged result stream in (arrival, shard,
// sequence) order — the cluster's determinism contract: the same
// submission script against the same shard fleet yields the same
// stream byte for byte, however the shards were advanced. The cluster
// must be drained first; a still-running job is a machine-level error.
func (c *Cluster) Results() ([]Result, error) {
	ordered := make([]*Job, len(c.jobs))
	copy(ordered, c.jobs)
	sort.SliceStable(ordered, func(a, b int) bool {
		ja, jb := ordered[a], ordered[b]
		if ja.Arrival != jb.Arrival {
			return ja.Arrival < jb.Arrival
		}
		if ja.Shard != jb.Shard {
			return ja.Shard < jb.Shard
		}
		return ja.Seq < jb.Seq
	})
	out := make([]Result, 0, len(ordered))
	for _, j := range ordered {
		r := Result{Seq: j.Seq, Shard: j.Shard, Name: c.nameOf(j), Handoffs: j.Handoffs}
		if j.Inner == nil {
			r.Res = &core.Result{
				AdmittedAt:  j.Arrival,
				CompletedAt: j.Arrival,
				Deadline:    j.Deadline,
				Verdict:     core.Shed,
				Shed:        true,
			}
		} else {
			res, err := j.Inner.Wait()
			if res == nil {
				return nil, fmt.Errorf("cluster: job %d on shard %d: %w", j.Seq, j.Shard, err)
			}
			r.Res, r.Err = res, err
		}
		out = append(out, r)
	}
	return out, nil
}

// nameOf renders a job's report label.
func (c *Cluster) nameOf(j *Job) string {
	if j.Req.Name != "" {
		return j.Req.Name
	}
	return j.Req.Class + "." + j.Req.Method
}

// Utilization returns a shard's core utilization: busy cycles over
// busy+idle, aggregated across its cores (0 for an unused shard).
func (s *Shard) Utilization() float64 {
	var busy, idle uint64
	for _, core := range s.Sys.VM.Machine.Cores() {
		busy += core.Stats.Busy()
		idle += core.Stats.Idle
	}
	if busy+idle == 0 {
		return 0
	}
	return float64(busy) / float64(busy+idle)
}

// JobsTable renders the merged result stream as text. It contains only
// simulated quantities, so it must be byte-identical across replays,
// GOMAXPROCS settings, serial vs parallel advancement AND epoch
// strides (barrier placement may not perturb the simulation) — the
// fidelity column of the cluster figure's stride table diffs exactly
// this.
func (c *Cluster) JobsTable() (string, error) {
	results, err := c.Results()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %5s %-16s %12s %-9s %12s %5s %5s %7s %4s\n",
		"seq", "shard", "job", "arrival", "verdict", "latency", "met", "mig", "steals", "hand")
	for _, r := range results {
		shard := fmt.Sprintf("%d", r.Shard)
		if r.Shard < 0 {
			shard = "-"
		}
		fmt.Fprintf(&b, "%4d %5s %-16s %12d %-9s %12d %5v %5d %7d %4d\n",
			r.Seq, shard, r.Name, r.Res.AdmittedAt, r.Res.Verdict,
			r.Res.Cycles, r.Res.DeadlineMet, r.Res.Migrations, r.Res.Steals, r.Handoffs)
	}
	return b.String(), nil
}

// Report renders the deterministic cluster report: the fleet line,
// one line per shard (shape, clock, routing and utilization) and the
// merged job table. Like JobsTable it carries no host quantities, so
// double-replay must reproduce it byte for byte.
func (c *Cluster) Report() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d shards, stride %d, %d barriers, horizon %d\n",
		len(c.shards), c.cfg.EpochStride, c.barriers, c.horizon)
	for _, s := range c.shards {
		m := s.Sys.VM.Machine
		fmt.Fprintf(&b, "shard %d: %s sched=%-8s clock=%-12d jobs=%-3d pending=%-3d hand=+%d/-%d util=%.3f\n",
			s.ID, m.Describe(), s.Sys.VM.Cfg.Scheduler, m.MaxClock(),
			s.Routed, s.Sys.PendingJobs(), s.HandoffsIn, s.HandoffsOut, s.Utilization())
	}
	jobs, err := c.JobsTable()
	if err != nil {
		return "", err
	}
	b.WriteString(jobs)
	return b.String(), nil
}
