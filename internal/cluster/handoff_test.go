package cluster

import (
	"fmt"
	"runtime"
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/core"
	"herajvm/internal/isa"
	"herajvm/internal/vm"
)

// bootImbalanced boots the hand-off scenario: shard 0 is a weak
// PPE-only machine, shard 1 a strong 1-PPE + 6-SPE machine. The
// capacity-blind admission probe splits a simultaneous burst evenly
// between them, overloading the weak shard — the misrouting hand-off
// exists to repair.
func bootImbalanced(t *testing.T, cfg Config, spin int32) *Cluster {
	t.Helper()
	weak := vm.DefaultConfig()
	weak.Machine.Topology = cell.Topology{{Kind: isa.PPE, Count: 1}}
	weak.Scheduler = "migrate"
	strong := vm.DefaultConfig()
	strong.Machine.Topology = cell.Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 6},
	}
	strong.Scheduler = "migrate"
	c, err := Boot(cfg, []ShardConfig{
		{Cfg: weak, Build: buildWork(spin)},
		{Cfg: strong, Build: buildWork(spin)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// playBurst submits a simultaneous deadline burst and drains.
func playBurst(t *testing.T, c *Cluster, jobs int, deadline cell.Clock) []Result {
	t.Helper()
	for i := 0; i < jobs; i++ {
		if _, _, err := c.Submit(core.JobRequest{
			Class: "Work", Method: "main", Name: fmt.Sprintf("job#%d", i),
			Deadline: deadline,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	results, err := c.Results()
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// burstScore folds a result stream into (deadlines met, hand-off
// count, worst latency), checking every completed job's checksum on
// the way.
func burstScore(t *testing.T, results []Result, spin int32) (met, handoffs int, maxLat cell.Clock) {
	t.Helper()
	for _, r := range results {
		if r.Res.DeadlineMet {
			met++
		}
		handoffs += r.Handoffs
		if lat := r.Res.CompletedAt - r.Res.AdmittedAt; lat > maxLat {
			maxLat = lat
		}
		if r.Res.HasValue && int32(uint32(r.Res.Value)) != spin {
			t.Errorf("job %d checksum = %d, want %d (hand-offs corrupt results)",
				r.Seq, int32(uint32(r.Res.Value)), spin)
		}
	}
	return met, handoffs, maxLat
}

// TestHandoffImprovesGoodput is the tentpole's acceptance scenario: on
// the imbalanced two-shard fleet, a simultaneous deadline burst with
// hand-off enabled must fire hand-offs, keep every checksum intact,
// and strictly improve both goodput (deadlines met) and worst-case
// latency over the identical run without hand-off.
func TestHandoffImprovesGoodput(t *testing.T) {
	const spin, jobs, deadline = 120_000, 16, 4_000_000
	cfgOff := Config{EpochStride: 500_000}
	cfgOn := Config{EpochStride: 500_000, Handoff: true}

	off := playBurst(t, bootImbalanced(t, cfgOff, spin), jobs, deadline)
	on := playBurst(t, bootImbalanced(t, cfgOn, spin), jobs, deadline)

	metOff, handOff, latOff := burstScore(t, off, spin)
	metOn, handOn, latOn := burstScore(t, on, spin)
	t.Logf("off: met=%d/%d maxLat=%d; on: met=%d/%d maxLat=%d handoffs=%d",
		metOff, jobs, latOff, metOn, jobs, latOn, handOn)

	if handOff != 0 {
		t.Errorf("hand-offs fired with Handoff disabled: %d", handOff)
	}
	if handOn == 0 {
		t.Fatal("no hand-offs fired on the imbalanced fleet")
	}
	if metOn <= metOff {
		t.Errorf("goodput did not improve: %d met with hand-off vs %d without", metOn, metOff)
	}
	if latOn >= latOff {
		t.Errorf("worst latency did not improve: %d with hand-off vs %d without", latOn, latOff)
	}
}

// TestHandoffCountersConsistent checks the accounting: per-shard
// in/out totals and per-job hand-off counts describe the same moves.
func TestHandoffCountersConsistent(t *testing.T) {
	c := bootImbalanced(t, Config{EpochStride: 500_000, Handoff: true}, 120_000)
	results := playBurst(t, c, 16, 4_000_000)
	_, perJob, _ := burstScore(t, results, 120_000)
	in, out := 0, 0
	for _, s := range c.Shards() {
		in += s.HandoffsIn
		out += s.HandoffsOut
	}
	if in != out || in != perJob {
		t.Errorf("hand-off accounting inconsistent: in=%d out=%d per-job=%d", in, out, perJob)
	}
	if c.Shards()[0].HandoffsIn != 0 {
		t.Errorf("weak shard imported %d jobs; moves must flow weak→strong here",
			c.Shards()[0].HandoffsIn)
	}
}

// TestHandoffReplayIdentical is the determinism contract extended to
// hand-off: the same burst against the same fleet yields byte-identical
// reports across replays, serial vs parallel shard advancement, and
// GOMAXPROCS settings — freezing, transfer and rehydration are all part
// of the deterministic schedule.
func TestHandoffReplayIdentical(t *testing.T) {
	run := func(serial bool) string {
		c := bootImbalanced(t, Config{EpochStride: 500_000, Handoff: true, Serial: serial}, 120_000)
		playBurst(t, c, 16, 4_000_000)
		report, err := c.Report()
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	first := run(false)
	if again := run(false); again != first {
		t.Fatalf("hand-off replay diverged:\n--- first ---\n%s--- again ---\n%s", first, again)
	}
	if serial := run(true); serial != first {
		t.Fatalf("serial hand-off run diverged:\n--- parallel ---\n%s--- serial ---\n%s", first, serial)
	}
	prev := runtime.GOMAXPROCS(1)
	pinned := run(false)
	runtime.GOMAXPROCS(prev)
	if pinned != first {
		t.Fatalf("GOMAXPROCS=1 hand-off run diverged:\n--- wide ---\n%s--- pinned ---\n%s", first, pinned)
	}
}

// TestHandoffOffByDefault: the default configuration never moves jobs,
// so existing cluster behavior is unchanged.
func TestHandoffOffByDefault(t *testing.T) {
	c := bootImbalanced(t, Config{EpochStride: 500_000}, 120_000)
	results := playBurst(t, c, 8, 4_000_000)
	for _, r := range results {
		if r.Handoffs != 0 {
			t.Fatalf("job %d was handed off with Handoff disabled", r.Seq)
		}
	}
}
