package cluster

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/core"
	"herajvm/internal/isa"
	"herajvm/internal/vm"
)

// buildWork returns a builder for a one-class program whose main spins
// a counted loop and returns the count — cheap to run, long enough
// that jobs overlap arrivals and the dispatcher has real queues to
// weigh.
func buildWork(spin int32) func() (*classfile.Program, error) {
	return func() (*classfile.Program, error) {
		p := classfile.NewProgram()
		vm.Stdlib(p)
		cls := p.NewClass("Work", nil)
		m := cls.NewMethod("main", classfile.FlagStatic, classfile.Int)
		a := m.Asm()
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(0)
		a.Bind(loop)
		a.LoadI(0)
		a.ConstI(spin)
		a.IfICmpGE(done)
		a.Inc(0, 1)
		a.Goto(loop)
		a.Bind(done)
		a.LoadI(0)
		a.Ret()
		a.MustBuild()
		return p, nil
	}
}

// bootFleet boots n identical small shards (1 PPE + 2 SPEs, migrate).
func bootFleet(t *testing.T, cfg Config, n int, spin int32, mutate func(*vm.Config)) *Cluster {
	t.Helper()
	shards := make([]ShardConfig, n)
	for i := range shards {
		vcfg := vm.DefaultConfig()
		vcfg.Machine.Topology = cell.Topology{
			{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 2},
		}
		vcfg.Scheduler = "migrate"
		if mutate != nil {
			mutate(&vcfg)
		}
		shards[i] = ShardConfig{Cfg: vcfg, Build: buildWork(spin)}
	}
	c, err := Boot(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// playScript submits jobs arriving gap cycles apart, drains, and
// returns the full deterministic report.
func playScript(t *testing.T, c *Cluster, jobs int, gap, deadline cell.Clock) string {
	t.Helper()
	for i := 0; i < jobs; i++ {
		_, _, err := c.Submit(core.JobRequest{
			Class:    "Work",
			Method:   "main",
			Name:     fmt.Sprintf("job#%d", i),
			Arrival:  cell.Clock(i) * gap,
			Deadline: deadline,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	report, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestSerialParallelIdentical is the determinism contract: the same
// submission script against the same fleet produces a byte-identical
// report whether the shards advance serially on one goroutine or in
// parallel on one goroutine each.
func TestSerialParallelIdentical(t *testing.T) {
	serial := playScript(t, bootFleet(t, Config{Serial: true}, 3, 120_000, nil), 9, 60_000, 0)
	parallel := playScript(t, bootFleet(t, Config{}, 3, 120_000, nil), 9, 60_000, 0)
	if serial != parallel {
		t.Fatalf("serial and parallel reports differ:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}

// TestGOMAXPROCSIdentical replays the parallel fleet under
// GOMAXPROCS=1 and GOMAXPROCS=NumCPU: host scheduling freedom must not
// leak into the simulation.
func TestGOMAXPROCSIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	pinned := playScript(t, bootFleet(t, Config{}, 3, 120_000, nil), 9, 60_000, 0)
	runtime.GOMAXPROCS(runtime.NumCPU())
	wide := playScript(t, bootFleet(t, Config{}, 3, 120_000, nil), 9, 60_000, 0)
	runtime.GOMAXPROCS(prev)
	if pinned != wide {
		t.Fatalf("GOMAXPROCS=1 and GOMAXPROCS=%d reports differ:\n--- 1 ---\n%s--- %d ---\n%s",
			runtime.NumCPU(), pinned, runtime.NumCPU(), wide)
	}
}

// TestStrideInvariance checks the fidelity half of the stride
// trade-off: barrier placement changes synchronization cost only,
// never the merged job table.
func TestStrideInvariance(t *testing.T) {
	tables := map[cell.Clock]string{}
	for _, stride := range []cell.Clock{100_000, DefaultEpochStride, 10_000_000} {
		c := bootFleet(t, Config{EpochStride: stride}, 3, 120_000, nil)
		playScript(t, c, 9, 60_000, 0)
		table, err := c.JobsTable()
		if err != nil {
			t.Fatal(err)
		}
		tables[stride] = table
	}
	want := tables[DefaultEpochStride]
	for stride, got := range tables {
		if got != want {
			t.Errorf("stride %d job table diverged:\n--- stride %d ---\n%s--- default ---\n%s",
				stride, stride, got, want)
		}
	}
}

// TestRoutingSpreads checks the dispatcher actually balances: a burst
// of closely-spaced jobs over two idle identical shards must not all
// land on one of them.
func TestRoutingSpreads(t *testing.T) {
	c := bootFleet(t, Config{}, 2, 120_000, nil)
	playScript(t, c, 8, 30_000, 0)
	for _, s := range c.Shards() {
		if s.Routed == 0 {
			t.Fatalf("shard %d was never routed to (distribution %v)",
				s.ID, []int{c.Shards()[0].Routed, c.Shards()[1].Routed})
		}
	}
}

// TestShedOnlyWhenAllMiss checks cluster-level shedding: a job whose
// deadline every shard's probe misses is shed at dispatch with no
// shard assignment, while a roomy deadline on the same fleet routes.
func TestShedOnlyWhenAllMiss(t *testing.T) {
	c := bootFleet(t, Config{Shed: true}, 2, 120_000, nil)
	j, verdict, err := c.Submit(core.JobRequest{
		Class: "Work", Method: "main", Deadline: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if verdict != core.Shed || j.Shard != -1 || j.Inner != nil {
		t.Fatalf("impossible deadline: got verdict %v shard %d, want shed with no shard", verdict, j.Shard)
	}
	j, verdict, err = c.Submit(core.JobRequest{
		Class: "Work", Method: "main", Deadline: 500_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if verdict == core.Shed || j.Shard < 0 {
		t.Fatalf("roomy deadline: got verdict %v shard %d, want routed", verdict, j.Shard)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	results, err := c.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || !results[0].Res.Shed || results[1].Res.Shed {
		t.Fatalf("merged stream wrong: %+v", results)
	}
}

// TestShedWhenAllFull checks the queue-room half: with every shard's
// bounded pending queue full, the dispatcher sheds even without a
// deadline.
func TestShedWhenAllFull(t *testing.T) {
	c := bootFleet(t, Config{}, 2, 120_000, func(cfg *vm.Config) {
		cfg.Admission = vm.AdmissionConfig{MaxPending: 1}
	})
	// Three simultaneous arrivals, two one-deep queues: the third
	// submission finds no shard with room.
	verdicts := make([]core.Verdict, 3)
	for i := range verdicts {
		j, v, err := c.Submit(core.JobRequest{Class: "Work", Method: "main"})
		if err != nil {
			t.Fatal(err)
		}
		verdicts[i] = v
		if i < 2 && j.Shard < 0 {
			t.Fatalf("job %d should have routed, got shard %d", i, j.Shard)
		}
	}
	if verdicts[2] != core.Shed {
		t.Fatalf("third simultaneous job: got %v, want shed (all queues full)", verdicts[2])
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestOverloadParallel floods a parallel fleet well past its service
// rate and drains it — the run the race detector vets end to end
// (goroutine-per-shard epochs, dispatcher probes between them).
func TestOverloadParallel(t *testing.T) {
	c := bootFleet(t, Config{Shed: true}, 4, 200_000, func(cfg *vm.Config) {
		cfg.Admission = vm.AdmissionConfig{MaxPending: 2, Shed: true}
	})
	report := playScript(t, c, 24, 10_000, 40_000_000)
	if !strings.Contains(report, "cluster: 4 shards") {
		t.Fatalf("report header missing:\n%s", report)
	}
	results, err := c.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 24 {
		t.Fatalf("got %d results, want 24", len(results))
	}
}

// TestCancelledContext checks the wedge guard: with the guard context
// already cancelled, the next epoch fails instead of advancing.
func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := bootFleet(t, Config{Ctx: ctx}, 2, 120_000, nil)
	if _, _, err := c.Submit(core.JobRequest{
		Class: "Work", Method: "main", Arrival: 1_000_000,
	}); err == nil {
		t.Fatal("submit past a cancelled context should fail")
	}
}

// TestBootErrors checks the boot-time validation paths.
func TestBootErrors(t *testing.T) {
	if _, err := Boot(Config{}, nil); err == nil {
		t.Fatal("empty fleet should not boot")
	}
	if _, err := Boot(Config{}, []ShardConfig{{Cfg: vm.DefaultConfig()}}); err == nil {
		t.Fatal("shard without a builder should not boot")
	}
}
