package jit

import (
	"herajvm/internal/isa"
)

// Superblock memoizes the static execution effects of a maximal pure
// straight-line run of compiled code beginning at one instruction
// index. The VM's executor uses it to fast-forward a whole run in one
// step — one clock advance, one per-class cycle update, one retired-
// instruction bump — instead of dispatching instruction by instruction,
// with semantics byte-identical to per-instruction stepping.
//
// A block ends at (exclusive) the first instruction that can call,
// return, touch the heap or caches, allocate, synchronise, throw, or
// trap; a control transfer may terminate a block inclusively — an
// unconditional goto (static target, fixed cost) or one conditional
// branch, whose outcome the executor evaluates from the block's own
// final stack and whose branch-model bookkeeping (predictor update,
// penalty) it mirrors exactly. Division by a preceding nonzero constant
// is admitted (it cannot trap), but such an instruction can never
// *start* a block: a branch could land on it with a computed divisor on
// the stack, losing the guarantee.
type Superblock struct {
	// Len is the number of instructions the block covers. 0 means no
	// block starts at this index (the instruction is impure, or is a
	// guarded divide whose no-trap proof needs its predecessor).
	Len int32
	// Target is the Code index execution continues at after the block:
	// the trailing goto's destination, or entry+Len for fallthrough.
	// When End is a conditional kind, Target is the taken destination
	// and the not-taken path falls through to entry+Len.
	Target int32
	// End classifies the block's terminal control transfer: EndFall for
	// fallthrough or a trailing goto (Target is static either way), or
	// the conditional-branch kind whose outcome the replay must decide.
	End uint8
	// Cond is a conditional terminal's condition code (the branch
	// instruction's A operand).
	Cond int32
	// Cycles is the summed static cost of the block's instructions;
	// ClassCycles buckets the same total by operation class.
	Cycles      uint64
	ClassCycles [isa.NumClasses]uint64
	// StackDelta is the block's net operand-stack growth in slots.
	StackDelta int32
	// ResMask has bit r set when the block is valid under data-cache
	// residency class r. Pure blocks touch no cache, so discovery sets
	// ResMaskAll; the mask is the hook for future residency-dependent
	// blocks (e.g. memoized hit-cost memory runs).
	ResMask uint8

	// FirstLen is the instruction count of the block's first pure
	// segment — the whole block when it absorbs no memory instructions.
	// Cycles/ClassCycles likewise cover only that first segment; the
	// executor charges it up front, and each absorbed memory instruction
	// then charges itself (plus its dynamic cache cost) and the segment
	// that follows it (Segs) as the replay crosses it.
	FirstLen int32

	// MicroOK reports that the block lowered to slot-addressed
	// micro-ops (Micro/LFlags/SFlags/MaxDepth); the executor replays
	// those instead of walking the stack ops. When false the executor
	// uses the stack-walking replay — same semantics, slower host path.
	// A block that absorbs memory instructions always has MicroOK set
	// (the stack-walking replay handles only pure code); when the
	// extended lowering bails, discovery falls back to the memory-free
	// prefix as the block.
	MicroOK  bool
	Micro    []MicroOp
	LFlags   []FlagWrite
	SFlags   []FlagWrite
	MaxDepth int32

	// Bounds/Segs/Mats/BLFlags/BSFlags describe the block's absorbed
	// memory instructions: per-boundary metadata, the pure segment after
	// each boundary, and the shadow materialisations plus flag snapshots
	// that rebuild exact stepped frame state when the replay must hand
	// back to the dispatcher mid-block (quantum expiry or a trap).
	Bounds  []MemBound
	Segs    []Seg
	Mats    []MicroOp
	BLFlags []FlagWrite
	BSFlags []FlagWrite
}

// Seg is the pure segment following one absorbed memory instruction:
// its static cost vector and instruction count, charged in one step
// right after the memory instruction commits.
type Seg struct {
	Cycles      uint64
	ClassCycles [isa.NumClasses]uint64
	Len         int32
}

// MemBound is the executor-facing metadata for one absorbed memory
// instruction. The replay charges the instruction's static cost from
// here, reads its operand descriptors from the paired micro-op, and on
// any early exit (deadline, trap) uses the recorded materialisation
// and flag-snapshot ranges to restore the exact frame state
// per-instruction stepping would show at that point.
type MemBound struct {
	// RelIdx is the instruction's Code index relative to the block
	// entry; Cost/Class its static charge.
	RelIdx int32
	Cost   uint32
	Class  isa.OpClass
	// Kind/Flags carry the instruction's A/B operands (element kind or
	// field slot, and the volatile/ref flag bits).
	Kind  int32
	Flags int32
	// Stack depths relative to the block's entry SP: at the instruction
	// (operands pushed), after a trap's pops, and after the instruction
	// completes.
	SPAtOp, SPTrap, SPAfter int32
	// Mats ranges: [MatLo, MatOpLo) materialises the live values below
	// the operands (enough for a resume at the *next* instruction);
	// [MatOpLo, MatHi) adds the operands themselves (a resume at this
	// instruction). Lf/Sf ranges are the matching local/stack
	// reference-flag snapshots in BLFlags/BSFlags.
	MatLo, MatOpLo, MatHi  int32
	LfLo, LfHi, SfLo, SfHi int32
}

// End kinds. EndFall covers plain fallthrough and the trailing
// unconditional goto; the conditional kinds match the four
// conditional-branch opcodes. A block never *contains* a branch — a
// conditional terminal is always its last instruction, counted in Len,
// Cycles and StackDelta (the branch pops its operands).
const (
	EndFall uint8 = iota
	EndIf
	EndIfCmpI
	EndIfCmpRef
	EndIfNull
)

// ResMaskAll marks a block valid under every cache-residency class
// (must cover cache.NumResidencyClasses bits; an equality test in the
// vm package pins the two constants together).
const ResMaskAll uint8 = (1 << 3) - 1

// pureOp reports whether op can always join a superblock: it cannot
// trap, branch, call, return, or touch heap, caches, monitors, the
// allocator or the branch predictor. Operand-stack and local-variable
// traffic, non-trapping ALU work and conversions qualify; integer
// divide/remainder do not (division by zero traps) unless guarded by a
// constant divisor, which guardedDiv admits separately.
func pureOp(op isa.Op) bool {
	switch op {
	case isa.OpNop, isa.OpPushConst, isa.OpLoadLocal, isa.OpStoreLocal,
		isa.OpPop, isa.OpPop2, isa.OpDup, isa.OpDupX1, isa.OpDupX2,
		isa.OpDup2, isa.OpSwap, isa.OpIncLocal,
		isa.OpAddI, isa.OpSubI, isa.OpMulI, isa.OpNegI, isa.OpAndI,
		isa.OpOrI, isa.OpXorI, isa.OpShlI, isa.OpShrI, isa.OpUShrI,
		isa.OpAddL, isa.OpSubL, isa.OpMulL, isa.OpNegL, isa.OpAndL,
		isa.OpOrL, isa.OpXorL, isa.OpShlL, isa.OpShrL, isa.OpUShrL,
		isa.OpCmpL,
		isa.OpAddF, isa.OpSubF, isa.OpMulF, isa.OpDivF, isa.OpNegF,
		isa.OpRemF, isa.OpCmpF,
		isa.OpAddD, isa.OpSubD, isa.OpMulD, isa.OpDivD, isa.OpNegD,
		isa.OpRemD, isa.OpCmpD,
		isa.OpI2L, isa.OpI2F, isa.OpI2D, isa.OpL2I, isa.OpL2F, isa.OpL2D,
		isa.OpF2I, isa.OpF2L, isa.OpF2D, isa.OpD2I, isa.OpD2L, isa.OpD2F,
		isa.OpI2B, isa.OpI2C, isa.OpI2S:
		return true
	}
	return false
}

// guardedDivOp reports whether op is an integer divide/remainder (the
// only pure-class ALU ops that can trap).
func guardedDivOp(op isa.Op) bool {
	switch op {
	case isa.OpDivI, isa.OpRemI, isa.OpDivL, isa.OpRemL:
		return true
	}
	return false
}

// guardedDiv reports whether the divide/remainder at index i provably
// cannot trap: its divisor is the immediately preceding pushconst and
// is nonzero. (The executor's guarded fast path still mirrors the
// MinInt/-1 special cases exactly.)
func guardedDiv(code []isa.Instr, i int) bool {
	if i == 0 || code[i-1].Op != isa.OpPushConst {
		return false
	}
	prev := code[i-1]
	switch code[i].Op {
	case isa.OpDivI, isa.OpRemI:
		return prev.A != 0
	case isa.OpDivL, isa.OpRemL:
		return uint64(uint32(prev.A))|uint64(uint32(prev.B))<<32 != 0
	}
	return false
}

// memOp reports whether op is an absorbable memory instruction: array
// and field traffic whose dynamic cache cost the replay charges as it
// crosses it. Allocation, calls, monitors and the like stay block
// boundaries.
func memOp(op isa.Op) bool {
	switch op {
	case isa.OpALoad, isa.OpAStore, isa.OpArrayLen,
		isa.OpGetField, isa.OpPutField, isa.OpGetStatic, isa.OpPutStatic:
		return true
	}
	return false
}

// stackDeltaOf is the net operand-stack effect in slots of each op a
// superblock can contain: the pure set, the absorbable memory
// instructions, and the terminal conditional branches, which pop their
// comparison operands.
func stackDeltaOf(op isa.Op) int32 {
	switch op {
	case isa.OpIf, isa.OpIfNull, isa.OpALoad, isa.OpPutStatic:
		return -1
	case isa.OpIfCmpI, isa.OpIfCmpRef, isa.OpPutField:
		return -2
	case isa.OpAStore:
		return -3
	case isa.OpPushConst, isa.OpLoadLocal, isa.OpDup, isa.OpDupX1, isa.OpDupX2,
		isa.OpGetStatic:
		return 1
	case isa.OpDup2:
		return 2
	case isa.OpStoreLocal, isa.OpPop,
		isa.OpAddI, isa.OpSubI, isa.OpMulI, isa.OpDivI, isa.OpRemI,
		isa.OpAndI, isa.OpOrI, isa.OpXorI, isa.OpShlI, isa.OpShrI, isa.OpUShrI,
		isa.OpAddL, isa.OpSubL, isa.OpMulL, isa.OpDivL, isa.OpRemL,
		isa.OpAndL, isa.OpOrL, isa.OpXorL, isa.OpShlL, isa.OpShrL, isa.OpUShrL,
		isa.OpCmpL,
		isa.OpAddF, isa.OpSubF, isa.OpMulF, isa.OpDivF, isa.OpRemF, isa.OpCmpF,
		isa.OpAddD, isa.OpSubD, isa.OpMulD, isa.OpDivD, isa.OpRemD, isa.OpCmpD:
		return -1
	case isa.OpPop2:
		return -2
	}
	return 0
}

// discoverSuperblocks computes, for every instruction index, the
// maximal superblock starting there (Len 0 when none does). It runs
// after branch-target fixups so trailing gotos carry resolved targets.
//
// Within each maximal run [s, e) of pure and absorbable-memory
// instructions — optionally extended through one terminating goto or
// conditional branch — every index gets the suffix block reaching the
// run's end, so a thread whose quantum expired mid-run resumes with a
// (shorter) block at its exact PC. When the extended micro lowering of
// a suffix bails (typically a memory instruction consuming operands
// the suffix did not push), the suffix falls back to its memory-free
// prefix, which the stack-walking replay can always handle.
func discoverSuperblocks(code []isa.Instr) []Superblock {
	sb := make([]Superblock, len(code))
	for s := 0; s < len(code); {
		// Find the maximal run of in-context-admissible instructions.
		e := s
		for e < len(code) && (pureOp(code[e].Op) || memOp(code[e].Op) ||
			(e > s && guardedDiv(code, e))) {
			e++
		}
		if e == s {
			s++
			continue
		}
		// A trailing control transfer joins the run: an unconditional
		// goto (static target, fixed cost) or one conditional branch,
		// whose outcome the executor decides from the replayed stack.
		gotoEnd := false
		end := EndFall
		if e < len(code) {
			switch code[e].Op {
			case isa.OpGoto:
				gotoEnd = true
				e++
			case isa.OpIf:
				end = EndIf
				e++
			case isa.OpIfCmpI:
				end = EndIfCmpI
				e++
			case isa.OpIfCmpRef:
				end = EndIfCmpRef
				e++
			case isa.OpIfNull:
				end = EndIfNull
				e++
			}
		}
		// The replayable (micro-compilable) prefix excludes the terminal:
		// a goto has no data effect, and a conditional branch reads the
		// operands the replay leaves just above the block's final SP. The
		// terminal's cost and instruction count still belong to the
		// block's final segment, so the compiler receives it separately.
		pe := e
		var term *isa.Instr
		if gotoEnd || end != EndFall {
			pe = e - 1
			term = &code[e-1]
		}
		setTerminal := func(b *Superblock, q int) {
			// q is the block's exclusive end within [s, pe]; the terminal
			// applies only when the block reaches the full prefix.
			if q == pe && term != nil {
				b.Len++
				b.StackDelta += stackDeltaOf(term.Op)
				b.End = end
				if gotoEnd {
					b.Target = term.A
				} else {
					b.Target = term.B
					b.Cond = term.A
				}
			} else {
				b.Target = int32(q)
			}
		}
		for p := e - 1; p >= s; p-- {
			in := code[p]
			if guardedDivOp(in.Op) || memOp(in.Op) {
				// A branch may land on a guarded div with an unproven
				// divisor on the stack, and a memory instruction's operands
				// come from before the entry; blocks run through both, but
				// neither starts one.
				continue
			}
			var b Superblock
			b.ResMask = ResMaskAll
			mb, ok := compileMicro(code[p:pe], term)
			if ok {
				for q := p; q < pe; q++ {
					b.Len++
					b.StackDelta += stackDeltaOf(code[q].Op)
				}
				setTerminal(&b, pe)
				b.Cycles, b.ClassCycles, b.FirstLen = mb.FirstCycles, mb.FirstClass, mb.FirstLen
				b.MicroOK = true
				b.Micro, b.LFlags, b.SFlags, b.MaxDepth = mb.Micro, mb.LFlags, mb.SFlags, mb.MaxDepth
				b.Bounds, b.Segs, b.Mats = mb.Bounds, mb.Segs, mb.Mats
				b.BLFlags, b.BSFlags = mb.BLFlags, mb.BSFlags
				sb[p] = b
				continue
			}
			// Fallback: the longest memory-free prefix from p. Its whole
			// cost is static, so it charges in one step and the
			// stack-walking replay covers a second lowering bail.
			q := p
			for q < pe && !memOp(code[q].Op) {
				q++
			}
			if q == p {
				continue
			}
			for r := p; r < q; r++ {
				b.Len++
				b.Cycles += uint64(code[r].Cost)
				b.ClassCycles[code[r].Op.Class()] += uint64(code[r].Cost)
				b.StackDelta += stackDeltaOf(code[r].Op)
			}
			setTerminal(&b, q)
			if q == pe && term != nil {
				b.Cycles += uint64(term.Cost)
				b.ClassCycles[term.Op.Class()] += uint64(term.Cost)
			}
			b.FirstLen = b.Len
			var fterm *isa.Instr
			if q == pe {
				fterm = term
			}
			if fmb, fok := compileMicro(code[p:q], fterm); fok {
				b.MicroOK = true
				b.Micro, b.LFlags, b.SFlags, b.MaxDepth = fmb.Micro, fmb.LFlags, fmb.SFlags, fmb.MaxDepth
			}
			sb[p] = b
		}
		s = e
	}
	return sb
}
