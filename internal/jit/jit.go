// Package jit implements Hera-JVM's baseline (non-optimising)
// just-in-time compilers: one backend per core type, as in §3.1 of the
// paper ("a Java bytecode to SPE machine code compiler is required to
// support the SPE cores"). Each backend macro-expands bytecode into the
// shared machine-instruction vocabulary with target-specific costs and
// encoded sizes, and allocates the compiled code a real address and size
// in simulated main memory so the SPE code cache has real, sized blocks
// to DMA.
//
// Methods are compiled lazily per core type: "a method will only be
// compiled for a particular core architecture if it is to be executed by
// a thread running on that core type" (§3.1). The VM asks each target's
// Compiler for a method the first time a thread running on that core
// kind invokes it.
package jit

import (
	"fmt"

	"herajvm/internal/classfile"
	"herajvm/internal/isa"
	"herajvm/internal/mem"
)

// CompiledMethod is the result of baseline-compiling one method for one
// core type.
type CompiledMethod struct {
	M      *classfile.Method
	Target isa.CoreKind
	// Code is the machine instruction sequence.
	Code []isa.Instr
	// Tables holds switch jump tables (targets as Code indices); Keys
	// holds lookupswitch key sets, parallel to Tables.
	Tables [][]int32
	Keys   [][]int32
	// Handlers is the exception table with ranges/targets as Code
	// indexes; ClassID -1 catches everything.
	Handlers []CompiledHandler
	// BCIndex maps each Code index to the bytecode pc it was lowered
	// from; EntryOf maps each bytecode pc to the first Code index of
	// its expansion (plus one trailing entry: EntryOf[len(bytecode)] ==
	// len(Code)). Together they translate a machine PC that sits on a
	// bytecode boundary into the equivalent PC of another kind's
	// compilation of the same method — the state mapping that makes a
	// mid-method thread migratable across core kinds (backends differ
	// in instruction selection, so raw machine PCs do not transfer).
	BCIndex []int32
	EntryOf []int32
	// SB memoizes, per instruction index, the maximal pure straight-line
	// superblock starting there (Len 0 = none); see Superblock. The VM's
	// executor fast-forwards whole blocks through it. nil on hand-built
	// CompiledMethods that bypassed Compile; the executor then steps.
	SB []Superblock
	// Addr and Size locate the encoded code in simulated main memory.
	Addr mem.Addr
	Size uint32
}

// AtBytecodeBoundary reports whether pc is the first instruction of a
// bytecode's expansion (or one past the last instruction). Only at
// these PCs is the frame's state (locals, operand stack) the
// kind-independent state the bytecode verifier describes, so only at
// these PCs may a frame be transplanted onto another kind's
// compilation.
func (cm *CompiledMethod) AtBytecodeBoundary(pc int) bool {
	if pc == len(cm.Code) {
		return true
	}
	if pc < 0 || pc > len(cm.Code) {
		return false
	}
	return int(cm.EntryOf[cm.BCIndex[pc]]) == pc
}

// TranslatePC maps a bytecode-boundary machine PC of this compilation
// to the equivalent PC in another compilation of the same method. The
// caller must have seen AtBytecodeBoundary(pc) == true.
func (cm *CompiledMethod) TranslatePC(pc int, to *CompiledMethod) int {
	if pc == len(cm.Code) {
		return len(to.Code)
	}
	return int(to.EntryOf[cm.BCIndex[pc]])
}

// CompiledHandler is one lowered exception-table entry.
type CompiledHandler struct {
	From, To, Target int
	ClassID          int
}

// Compiler is a per-target baseline compiler plus its compiled-code
// registry.
type Compiler struct {
	target isa.CoreKind
	costs  *isa.CostTable
	main   *mem.Main
	region *mem.Region

	// InternString resolves a string literal to a heap reference at
	// compile time (constant-pool resolution). Set by the VM before any
	// method using BCConstStr is compiled.
	InternString func(s string) (uint32, error)

	compiled map[*classfile.Method]*CompiledMethod

	// Compiles and CodeBytes describe total compilation activity; the
	// paper argues per-core lazy compilation keeps this near
	// single-architecture levels (§3.1), which reports can check.
	Compiles  uint64
	CodeBytes uint64
}

// NewCompiler builds a compiler for one core type, emitting code into
// the given main-memory region.
func NewCompiler(target isa.CoreKind, main *mem.Main, region *mem.Region) *Compiler {
	return &Compiler{
		target:   target,
		costs:    isa.Costs(target),
		main:     main,
		region:   region,
		compiled: make(map[*classfile.Method]*CompiledMethod),
	}
}

// Target returns the compiler's core kind.
func (c *Compiler) Target() isa.CoreKind { return c.target }

// Costs exposes the backend cost table (the executor charges dynamic
// branch penalties from it).
func (c *Compiler) Costs() *isa.CostTable { return c.costs }

// Lookup returns the compiled form if it exists, else nil.
func (c *Compiler) Lookup(m *classfile.Method) *CompiledMethod {
	return c.compiled[m]
}

// Compile returns the compiled form of m for this target, compiling on
// first use.
func (c *Compiler) Compile(m *classfile.Method) (*CompiledMethod, error) {
	if cm, ok := c.compiled[m]; ok {
		return cm, nil
	}
	if m.IsNative() || m.IsAbstract() {
		return nil, fmt.Errorf("jit: cannot compile %s (native/abstract)", m.Sig())
	}
	if m.Code == nil {
		return nil, fmt.Errorf("jit: %s has no bytecode", m.Sig())
	}
	cm, err := c.lower(m)
	if err != nil {
		return nil, err
	}
	// Branch targets are resolved by lower's fixup pass, so trailing
	// gotos in superblocks carry final Code indices.
	cm.SB = discoverSuperblocks(cm.Code)
	// Allocate the code real space in main memory and fill it with a
	// recognisable pattern: the code cache DMAs these bytes around.
	addr, err := c.region.Alloc(cm.Size, 16)
	if err != nil {
		return nil, fmt.Errorf("jit: code region full compiling %s: %w", m.Sig(), err)
	}
	cm.Addr = addr
	pattern := byte(0x40 | byte(c.target))
	for i := uint32(0); i < cm.Size; i += 64 {
		c.main.Write8(addr+i, pattern)
	}
	c.compiled[m] = cm
	c.Compiles++
	c.CodeBytes += uint64(cm.Size)
	return cm, nil
}

// CompileCycles estimates the cycle cost of baseline-compiling m: the
// VM charges it to the compiling core the first time a method is JITed
// for a target.
func (c *Compiler) CompileCycles(m *classfile.Method) uint64 {
	return 800 + 40*uint64(len(m.Code))
}

// Disassemble renders the compiled code for debugging.
func (cm *CompiledMethod) Disassemble() string {
	s := fmt.Sprintf("%s [%v] %d instrs, %d bytes @%#x\n",
		cm.M.Sig(), cm.Target, len(cm.Code), cm.Size, cm.Addr)
	for i, in := range cm.Code {
		s += fmt.Sprintf("%4d  %s\n", i, in)
	}
	return s
}
