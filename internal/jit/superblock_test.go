package jit

import (
	"testing"

	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// sbMethod compiles a method on the SPE backend and returns its code
// and superblocks.
func sbMethod(t *testing.T, build func(a *classfile.Asm)) *CompiledMethod {
	t.Helper()
	_, spe, _ := newCompilers(t)
	p := classfile.NewProgram()
	c := p.NewClass("SB", nil)
	m := c.NewMethod("run", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	build(a)
	a.MustBuild()
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	cm, err := spe.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

// TestSuperblockSuffixRuns checks that a pure straight-line prefix gets
// a suffix block at every index, with cost vectors that sum the
// instructions' static costs and a stack delta matching the net effect.
func TestSuperblockSuffixRuns(t *testing.T) {
	cm := sbMethod(t, func(a *classfile.Asm) {
		a.ConstI(3) // pure
		a.ConstI(4) // pure
		a.AddI()    // pure
		a.Ret()     // ends the run
	})
	if len(cm.SB) != len(cm.Code) {
		t.Fatalf("SB length %d != code length %d", len(cm.SB), len(cm.Code))
	}
	// Find the run end: the OpReturn.
	end := -1
	for i, in := range cm.Code {
		if in.Op == isa.OpReturn {
			end = i
			break
		}
	}
	if end < 1 {
		t.Fatalf("no return in %v", cm.Code)
	}
	for p := 0; p < end; p++ {
		b := cm.SB[p]
		if int(b.Len) != end-p {
			t.Fatalf("pc %d: Len=%d want %d", p, b.Len, end-p)
		}
		if int(b.Target) != end {
			t.Fatalf("pc %d: Target=%d want %d", p, b.Target, end)
		}
		var cycles uint64
		var classes [isa.NumClasses]uint64
		var delta int32
		for q := p; q < end; q++ {
			cycles += uint64(cm.Code[q].Cost)
			classes[cm.Code[q].Op.Class()] += uint64(cm.Code[q].Cost)
			delta += stackDeltaOf(cm.Code[q].Op)
		}
		if b.Cycles != cycles || b.ClassCycles != classes {
			t.Fatalf("pc %d: cost vector mismatch: %+v", p, b)
		}
		if b.StackDelta != delta {
			t.Fatalf("pc %d: StackDelta=%d want %d", p, b.StackDelta, delta)
		}
		if b.ResMask != ResMaskAll {
			t.Fatalf("pc %d: ResMask=%#x want %#x", p, b.ResMask, ResMaskAll)
		}
	}
	if cm.SB[end].Len != 0 {
		t.Errorf("return must not start a block")
	}
}

// TestSuperblockBoundaries checks that calls, returns and allocations
// end blocks and never start or join one, that memory ops never start
// a block (they may be absorbed mid-block), and that a conditional
// branch appears only as a block's terminal instruction.
func TestSuperblockBoundaries(t *testing.T) {
	cm := sbMethod(t, func(a *classfile.Asm) {
		done := a.NewLabel()
		a.ConstI(1)
		a.ConstI(2)
		a.IfICmpGE(done) // joins as a conditional terminal only
		a.ConstI(5)
		a.NewArray(classfile.ElemInt) // impure: allocation
		a.ArrayLen()                  // impure: memory
		a.Ret()
		a.Bind(done)
		a.ConstI(0)
		a.Ret()
	})
	condBranch := func(op isa.Op) bool {
		switch op {
		case isa.OpIf, isa.OpIfCmpI, isa.OpIfCmpRef, isa.OpIfNull:
			return true
		}
		return false
	}
	for i, in := range cm.Code {
		switch in.Op {
		case isa.OpNewArray, isa.OpArrayLen, isa.OpReturn:
			if cm.SB[i].Len != 0 {
				t.Errorf("%v at %d starts a block (Len=%d)", in.Op, i, cm.SB[i].Len)
			}
		}
		if b := cm.SB[i]; b.Len > 0 {
			for q := i; q < i+int(b.Len); q++ {
				op := cm.Code[q].Op
				last := q == i+int(b.Len)-1
				if condBranch(op) && (!last || b.End == EndFall) {
					t.Errorf("block at %d holds branch %v at %d as a non-terminal", i, op, q)
				} else if !pureOp(op) && op != isa.OpGoto && !condBranch(op) &&
					!guardedDivOp(op) && !memOp(op) {
					t.Errorf("block at %d covers impure %v at %d", i, op, q)
				}
			}
		}
	}
}

// TestSuperblockMemoryAbsorption checks a memory op is absorbed
// mid-block — never starting one — and that the block's segmented cost
// shape is consistent: the first-segment vector covers exactly the
// instructions before the first boundary, each MemBound carries the
// memory op's own static cost, and FirstLen + segment lengths +
// boundary count add back up to Len.
func TestSuperblockMemoryAbsorption(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.OpLoadLocal, A: 0, Cost: 1},              // arr
		{Op: isa.OpPushConst, A: 3, Cost: 1},              // idx
		{Op: isa.OpALoad, A: int32(isa.ElemInt), Cost: 6}, // absorbed boundary
		{Op: isa.OpPushConst, A: 1, Cost: 1},              //
		{Op: isa.OpAddI, Cost: 1},                         // second pure segment
		{Op: isa.OpReturn, A: 1, Cost: 2},                 // ends the run
	}
	sb := discoverSuperblocks(code)
	if sb[2].Len != 0 {
		t.Errorf("memory op must not start a block: %+v", sb[2])
	}
	b := sb[0]
	if int(b.Len) != 5 {
		t.Fatalf("block at 0 must absorb the load and run to the return: %+v", b)
	}
	if !b.MicroOK {
		t.Fatalf("absorbed block must lower to micro-ops: %+v", b)
	}
	if len(b.Bounds) != 1 || len(b.Segs) != 1 {
		t.Fatalf("want 1 boundary and 1 trailing segment, got %d/%d", len(b.Bounds), len(b.Segs))
	}
	if b.FirstLen != 2 || b.Cycles != 2 {
		t.Errorf("first segment must cover the two loads: FirstLen=%d Cycles=%d", b.FirstLen, b.Cycles)
	}
	bd := b.Bounds[0]
	if bd.RelIdx != 2 || bd.Cost != 6 {
		t.Errorf("boundary must sit at the load with its static cost: %+v", bd)
	}
	if got := b.FirstLen + b.Segs[0].Len + int32(len(b.Bounds)); got != b.Len {
		t.Errorf("segmented lengths sum to %d, want Len %d", got, b.Len)
	}
	if b.Segs[0].Cycles != 2 {
		t.Errorf("trailing segment must cost the const+add: %+v", b.Segs[0])
	}
	// SP bookkeeping around the boundary: two operands on the stack at
	// the op, popped to the trap depth, one result after.
	if bd.SPAtOp != 2 || bd.SPTrap != 0 || bd.SPAfter != 1 {
		t.Errorf("boundary SP shape: %+v", bd)
	}
}

// TestSuperblockConditionalTermination checks a conditional branch
// joins its preceding pure run as the terminal instruction: Len and
// StackDelta count it, Target holds the taken destination, Cond the
// condition code, and the branch alone also forms a Len-1 block.
func TestSuperblockConditionalTermination(t *testing.T) {
	cm := sbMethod(t, func(a *classfile.Asm) {
		done := a.NewLabel()
		a.ConstI(0)
		a.StoreI(0)
		a.LoadI(0)
		a.ConstI(10)
		a.IfICmpGE(done)
		a.Inc(0, 1)
		a.Bind(done)
		a.LoadI(0)
		a.Ret()
	})
	brIdx := -1
	for i, in := range cm.Code {
		if in.Op == isa.OpIfCmpI {
			brIdx = i
		}
	}
	if brIdx < 0 {
		t.Fatal("no conditional branch emitted")
	}
	b := cm.SB[brIdx-2] // the LoadI beginning the run
	if int(b.Len) != 3 || b.End != EndIfCmpI {
		t.Fatalf("block %+v: want Len 3 ending in EndIfCmpI", b)
	}
	if b.Target != cm.Code[brIdx].B || b.Cond != cm.Code[brIdx].A {
		t.Fatalf("block %+v: Target/Cond must mirror the branch operands %+v", b, cm.Code[brIdx])
	}
	// Net stack effect: two pushes, two pops by the compare.
	if b.StackDelta != 0 {
		t.Fatalf("StackDelta=%d want 0 (branch pops its operands)", b.StackDelta)
	}
	if lone := cm.SB[brIdx]; lone.Len != 1 || lone.End != EndIfCmpI || lone.StackDelta != -2 {
		t.Fatalf("branch-only block %+v: want Len 1, EndIfCmpI, StackDelta -2", lone)
	}
}

// TestSuperblockGotoTermination checks a trailing unconditional goto
// joins its block and carries the resolved target, so loop bodies
// fast-forward through their backedge.
func TestSuperblockGotoTermination(t *testing.T) {
	cm := sbMethod(t, func(a *classfile.Asm) {
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(0)
		a.Bind(loop)
		a.LoadI(0)
		a.ConstI(10)
		a.IfICmpGE(done)
		a.Inc(0, 1)
		a.Goto(loop)
		a.Bind(done)
		a.LoadI(0)
		a.Ret()
	})
	var gotoIdx = -1
	for i, in := range cm.Code {
		if in.Op == isa.OpGoto {
			gotoIdx = i
		}
	}
	if gotoIdx < 0 {
		t.Fatal("no goto emitted")
	}
	// The block starting at the loop-body instruction right after the
	// conditional branch must run through the goto and land on its
	// target.
	body := cm.SB[gotoIdx-1] // the inc preceding the goto
	if body.Len != 2 {
		t.Fatalf("body block Len=%d want 2 (inc+goto)", body.Len)
	}
	if body.Target != cm.Code[gotoIdx].A {
		t.Fatalf("body Target=%d want goto target %d", body.Target, cm.Code[gotoIdx].A)
	}
	// The goto alone is also a (Len 1) block.
	if g := cm.SB[gotoIdx]; g.Len != 1 || g.Target != cm.Code[gotoIdx].A {
		t.Fatalf("goto block %+v", g)
	}
}

// TestSuperblockGuardedDivision checks that a divide by a preceding
// nonzero constant joins a block but never begins one, and a potentially
// trapping divide (computed divisor) ends the run.
func TestSuperblockGuardedDivision(t *testing.T) {
	cm := sbMethod(t, func(a *classfile.Asm) {
		a.ConstI(2)
		a.StoreI(0)
		a.ConstI(100)
		a.ConstI(7)
		a.DivI() // guarded: divisor is the preceding constant 7
		a.ConstI(3)
		a.LoadI(0)
		a.DivI() // unguarded: divisor from a local
		a.AddI()
		a.Ret()
	})
	var divs []int
	for i, in := range cm.Code {
		if in.Op == isa.OpDivI {
			divs = append(divs, i)
		}
	}
	if len(divs) != 2 {
		t.Fatalf("want 2 divs, got %v", divs)
	}
	guarded, unguarded := divs[0], divs[1]
	if cm.SB[guarded].Len != 0 {
		t.Errorf("guarded div must not start a block")
	}
	// The block from the start must cover the guarded div but stop
	// before the unguarded one.
	b := cm.SB[0]
	if b.Len == 0 || 0+int(b.Len) <= guarded {
		t.Errorf("block at 0 (Len=%d) should cover the guarded div at %d", b.Len, guarded)
	}
	if 0+int(b.Len) > unguarded {
		t.Errorf("block at 0 (Len=%d) must stop before the unguarded div at %d", b.Len, unguarded)
	}
	if cm.SB[unguarded].Len != 0 {
		t.Errorf("unguarded div must not start a block")
	}
}

// TestSuperblockZeroDivisorNotGuarded checks a constant zero divisor is
// not admitted (it must trap per-instruction).
func TestSuperblockZeroDivisorNotGuarded(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.OpPushConst, A: 5, Cost: 1},
		{Op: isa.OpPushConst, A: 0, Cost: 1},
		{Op: isa.OpDivI, Cost: 4},
		{Op: isa.OpReturn, A: 1, Cost: 2},
	}
	sb := discoverSuperblocks(code)
	if b := sb[0]; int(b.Len) != 2 {
		t.Errorf("run must end before the zero-divisor div: %+v", b)
	}
	if sb[2].Len != 0 {
		t.Errorf("zero-divisor div must not be in any block start")
	}
}
