package jit

import (
	"math"
	"sort"

	"herajvm/internal/isa"
)

// This file lowers a superblock's stack-machine instructions into
// slot-addressed micro-ops at discovery time, so the executor's fast
// path can replay a block without per-instruction operand-stack
// bookkeeping. The lowering is a static stack-to-slot conversion: the
// compiler tracks a symbolic operand stack, folds constants into
// immediate operands, forwards LoadLocal/StoreLocal through direct
// local addressing, and sinks a result produced immediately before a
// StoreLocal straight into the local. A typical
// `LoadLocal a; LoadLocal b; MulI; StoreLocal c` sequence becomes the
// single micro-op `local c <- local a * local b`.
//
// The replay contract is the same byte-identical one runPure honours:
// after a block replays, frame state (locals, operand stack and both
// reference maps up to the final SP) must equal what per-instruction
// stepping produces. Patterns the lowering cannot prove equivalent —
// consuming operands the block did not push, Swap/DupX reordering of
// symbolic values, more than a handful of deferred flag writes — make
// compileMicro report ok=false and the executor falls back to the
// stack-walking replay; correctness never depends on lowering success.

// MicroOp is one slot-addressed operation. D, A and B address frame
// storage: a non-negative value is an operand-stack slot relative to
// the block's entry SP, a negative value -(i+1) is local variable i,
// and the sentinel MicroImm (operands only) selects the Imm field.
// At most one of A/B is MicroImm, so one Imm field serves both; the
// compare ops repurpose Imm for their NaN result and never take
// immediate operands.
type MicroOp struct {
	Code uint8
	D    int32
	A    int32
	B    int32
	Imm  uint64
}

// MicroImm marks an operand that reads MicroOp.Imm.
const MicroImm int32 = math.MinInt32

// FlagWrite is one deferred reference-map update applied after a
// block's value micro-ops. Src 0 writes false, 1 writes true, and
// j+2 copies the block-entry value of LocalRefs[j] (all sources are
// resolved before any write lands, so entry values are well-defined
// even when a write targets a source local).
type FlagWrite struct {
	// Idx is a local index (local-flag list) or an entry-SP-relative
	// stack slot (stack-flag list).
	Idx int32
	Src int32
}

// maxFlagWrites bounds each deferred flag list so the replayer can
// resolve sources into a fixed-size buffer without allocating.
const maxFlagWrites = 8

// Micro-op codes. The arithmetic codes mirror the isa ops of the same
// name exactly — each replay case must be semantically identical to the
// corresponding step/runPure case, including shift masking, divide
// MinInt/-1 behaviour and float NaN handling.
const (
	MMov uint8 = iota // D <- A (raw 64-bit copy)
	MMovImm
	MAddI
	MSubI
	MMulI
	MDivI
	MRemI
	MNegI
	MAndI
	MOrI
	MXorI
	MShlI
	MShrI
	MUShrI
	MAddL
	MSubL
	MMulL
	MDivL
	MRemL
	MNegL
	MAndL
	MOrL
	MXorL
	MShlL
	MShrL
	MUShrL
	MCmpL
	MAddF
	MSubF
	MMulF
	MDivF
	MNegF
	MRemF
	MCmpF
	MAddD
	MSubD
	MMulD
	MDivD
	MNegD
	MRemD
	MCmpD
	MI2L
	MI2F
	MI2D
	ML2I
	ML2F
	ML2D
	MF2I
	MF2L
	MF2D
	MD2I
	MD2L
	MD2F
	MI2B
	MI2C
	MI2S

	// Memory micro-ops, one per absorbable memory instruction. Each is
	// paired in order with a MemBound entry on the superblock; the
	// executor charges the instruction's static cost, runs the
	// step-identical cache/heap semantics with the micro-op's operands,
	// and then charges the following pure segment. Loads write their
	// result (value and reference flag) directly at D, always a stack
	// slot: the result must sit at its stepped stack position in case
	// the replay hands back at the next instruction.
	MALoad     // D <- Kind-typed element of array A at index B
	MAStore    // array A at index B <- D (D is a source here)
	MArrayLen  // D <- length of array A
	MGetField  // D <- field Kind of object A
	MPutField  // field Kind of object A <- B
	MGetStatic // D <- static slot Kind
	MPutStatic // static slot Kind <- A
)

// microForOp maps a pure isa op to its micro-op code (valid only for
// the stack-neutral arithmetic/conversion ops; stack-shape ops are
// handled structurally by the compiler).
var microForOp = map[isa.Op]uint8{
	isa.OpAddI: MAddI, isa.OpSubI: MSubI, isa.OpMulI: MMulI,
	isa.OpDivI: MDivI, isa.OpRemI: MRemI, isa.OpNegI: MNegI,
	isa.OpAndI: MAndI, isa.OpOrI: MOrI, isa.OpXorI: MXorI,
	isa.OpShlI: MShlI, isa.OpShrI: MShrI, isa.OpUShrI: MUShrI,
	isa.OpAddL: MAddL, isa.OpSubL: MSubL, isa.OpMulL: MMulL,
	isa.OpDivL: MDivL, isa.OpRemL: MRemL, isa.OpNegL: MNegL,
	isa.OpAndL: MAndL, isa.OpOrL: MOrL, isa.OpXorL: MXorL,
	isa.OpShlL: MShlL, isa.OpShrL: MShrL, isa.OpUShrL: MUShrL,
	isa.OpCmpL: MCmpL,
	isa.OpAddF: MAddF, isa.OpSubF: MSubF, isa.OpMulF: MMulF,
	isa.OpDivF: MDivF, isa.OpNegF: MNegF, isa.OpRemF: MRemF,
	isa.OpCmpF: MCmpF,
	isa.OpAddD: MAddD, isa.OpSubD: MSubD, isa.OpMulD: MMulD,
	isa.OpDivD: MDivD, isa.OpNegD: MNegD, isa.OpRemD: MRemD,
	isa.OpCmpD: MCmpD,
	isa.OpI2L:  MI2L, isa.OpI2F: MI2F, isa.OpI2D: MI2D,
	isa.OpL2I: ML2I, isa.OpL2F: ML2F, isa.OpL2D: ML2D,
	isa.OpF2I: MF2I, isa.OpF2L: MF2L, isa.OpF2D: MF2D,
	isa.OpD2I: MD2I, isa.OpD2L: MD2L, isa.OpD2F: MD2F,
	isa.OpI2B: MI2B, isa.OpI2C: MI2C, isa.OpI2S: MI2S,
}

// unaryOp reports whether the isa op pops one value and pushes one.
func unaryOp(op isa.Op) bool {
	switch op {
	case isa.OpNegI, isa.OpNegL, isa.OpNegF, isa.OpNegD,
		isa.OpI2L, isa.OpI2F, isa.OpI2D, isa.OpL2I, isa.OpL2F, isa.OpL2D,
		isa.OpF2I, isa.OpF2L, isa.OpF2D, isa.OpD2I, isa.OpD2L, isa.OpD2F,
		isa.OpI2B, isa.OpI2C, isa.OpI2S:
		return true
	}
	return false
}

// Symbolic value kinds tracked on the compile-time stack.
const (
	symImm   uint8 = iota // a constant; value in sym.imm
	symLocal              // the current runtime value of local sym.idx
	symSlot               // a value materialised at stack slot sym.idx
)

type sym struct {
	kind uint8
	idx  int32 // local index (symLocal) or stack slot (symSlot)
	imm  uint64
	flag int32 // reference flag as a FlagWrite source
}

// microCompiler lowers one block. The central invariant is that a
// symSlot's slot index never exceeds its current stack position (new
// values materialise at their own position, Dup copies upward, and the
// reorderings that would move a value below its slot — Swap, DupX —
// bail out), so a result written at position d can never clobber a
// slot a live lower value still references.
//
// A second invariant backs the shadow materialisations: a live symSlot
// at position p with backing slot q < p only arises from Dup-copying
// the entry at position q, which stays live (and identical) below it —
// stack discipline pops the copy first — so slot q still holds the
// value whenever the shadow mat replays.
type microCompiler struct {
	micro     []MicroOp
	vstack    []sym
	localFlag map[int32]int32 // locals written by the block -> flag source
	maxDepth  int32
	ok        bool

	// Memory-absorption state: the per-boundary metadata, the pure
	// segment after each boundary, shadow materialisations and flag
	// snapshots for abort/trap exits, and the running accumulator for
	// the current pure segment. noSink bars result-sinking across a
	// memory micro-op (its result must land at its stack position: a
	// quantum expiry right after it resumes before any StoreLocal).
	bounds   []MemBound
	segs     []Seg
	mats     []MicroOp
	blf, bsf []FlagWrite
	segLen   int32
	segCyc   uint64
	segCls   [isa.NumClasses]uint64
	firstLen int32
	firstCyc uint64
	firstCls [isa.NumClasses]uint64
	noSink   int
}

// microBlock is compileMicro's result: the lowered replay program plus
// the segment cost structure discovery copies onto the Superblock.
type microBlock struct {
	Micro    []MicroOp
	LFlags   []FlagWrite
	SFlags   []FlagWrite
	MaxDepth int32

	Bounds  []MemBound
	Segs    []Seg
	Mats    []MicroOp
	BLFlags []FlagWrite
	BSFlags []FlagWrite

	// The first pure segment's instruction count and static cost
	// vector (the whole block when Bounds is empty).
	FirstLen    int32
	FirstCycles uint64
	FirstClass  [isa.NumClasses]uint64
}

func (c *microCompiler) fail() { c.ok = false }

func (c *microCompiler) push(v sym) {
	c.vstack = append(c.vstack, v)
	if d := int32(len(c.vstack)); d > c.maxDepth {
		c.maxDepth = d
	}
}

// pop fails the compile when the block would consume operands it did
// not push (suffix blocks entered mid-expression do this; they keep
// the stack-walking replay).
func (c *microCompiler) pop() sym {
	if len(c.vstack) == 0 {
		c.fail()
		return sym{kind: symImm}
	}
	v := c.vstack[len(c.vstack)-1]
	c.vstack = c.vstack[:len(c.vstack)-1]
	return v
}

// flagOfLocal is the compile-time reference flag of local i: the
// block's own last store to it, or its block-entry value.
func (c *microCompiler) flagOfLocal(i int32) int32 {
	if f, ok := c.localFlag[i]; ok {
		return f
	}
	return i + 2
}

// matLocal materialises every live symbolic reference to local i into
// its own stack slot; it must run before any micro-op writes local i,
// because those symbols denote the local's pre-write value.
func (c *microCompiler) matLocal(i int32) {
	for p := range c.vstack {
		v := &c.vstack[p]
		if v.kind == symLocal && v.idx == i {
			c.micro = append(c.micro, MicroOp{Code: MMov, D: int32(p), A: -(i + 1)})
			*v = sym{kind: symSlot, idx: int32(p), flag: v.flag}
		}
	}
}

// operand renders a symbolic value as a micro-op operand. A symImm
// needs the shared Imm field; the caller materialises one side first
// when both operands are immediate (or folds the op entirely).
func operand(v sym) (o int32, imm uint64) {
	switch v.kind {
	case symImm:
		return MicroImm, v.imm
	case symLocal:
		return -(v.idx + 1), 0
	default:
		return v.idx, 0
	}
}

// materialise forces a symbolic value into stack slot `at` and returns
// the updated symbol.
func (c *microCompiler) materialise(v sym, at int32) sym {
	switch v.kind {
	case symImm:
		c.micro = append(c.micro, MicroOp{Code: MMovImm, D: at, Imm: v.imm})
	case symLocal:
		c.micro = append(c.micro, MicroOp{Code: MMov, D: at, A: -(v.idx + 1)})
	default:
		if v.idx != at {
			c.micro = append(c.micro, MicroOp{Code: MMov, D: at, A: v.idx})
		}
	}
	return sym{kind: symSlot, idx: at, flag: v.flag}
}

// foldInt32 evaluates two-operand int ops over constants, mirroring
// the step cases exactly. Only non-trapping integer ops fold; floats
// never fold so their bit-exact behaviour stays in one place (replay).
func foldInt32(op isa.Op, a, b int32) (int32, bool) {
	switch op {
	case isa.OpAddI:
		return a + b, true
	case isa.OpSubI:
		return a - b, true
	case isa.OpMulI:
		return a * b, true
	case isa.OpAndI:
		return a & b, true
	case isa.OpOrI:
		return a | b, true
	case isa.OpXorI:
		return a ^ b, true
	case isa.OpShlI:
		return a << (uint32(b) & 31), true
	case isa.OpShrI:
		return a >> (uint32(b) & 31), true
	case isa.OpUShrI:
		return int32(uint32(a) >> (uint32(b) & 31)), true
	}
	return 0, false
}

func foldInt64(op isa.Op, a, b int64) (int64, bool) {
	switch op {
	case isa.OpAddL:
		return a + b, true
	case isa.OpSubL:
		return a - b, true
	case isa.OpMulL:
		return a * b, true
	case isa.OpAndL:
		return a & b, true
	case isa.OpOrL:
		return a | b, true
	case isa.OpXorL:
		return a ^ b, true
	}
	return 0, false
}

// binary lowers a two-operand arithmetic op. NaN-sensitive compares
// pass their nan result through Imm, so immediate operands are
// materialised for them.
func (c *microCompiler) binary(in isa.Instr) {
	code, okOp := microForOp[in.Op]
	if !okOp {
		c.fail()
		return
	}
	b := c.pop()
	a := c.pop()
	if !c.ok {
		return
	}
	if a.kind == symImm && b.kind == symImm {
		if v, did := foldInt32(in.Op, int32(uint32(a.imm)), int32(uint32(b.imm))); did {
			c.push(sym{kind: symImm, imm: uint64(uint32(v))})
			return
		}
		if v, did := foldInt64(in.Op, int64(a.imm), int64(b.imm)); did {
			c.push(sym{kind: symImm, imm: uint64(v)})
			return
		}
	}
	d := int32(len(c.vstack))
	cmpNaN := in.Op == isa.OpCmpF || in.Op == isa.OpCmpD
	if a.kind == symImm && (b.kind == symImm || cmpNaN) {
		a = c.materialise(a, d)
	}
	if b.kind == symImm && cmpNaN {
		b = c.materialise(b, d+1)
	}
	oa, immA := operand(a)
	ob, immB := operand(b)
	imm := immA | immB
	if cmpNaN {
		imm = uint64(uint32(in.A))
	}
	c.micro = append(c.micro, MicroOp{Code: code, D: d, A: oa, B: ob, Imm: imm})
	c.push(sym{kind: symSlot, idx: d})
}

func (c *microCompiler) unary(in isa.Instr) {
	code, okOp := microForOp[in.Op]
	if !okOp {
		c.fail()
		return
	}
	a := c.pop()
	if !c.ok {
		return
	}
	if a.kind == symImm {
		switch in.Op {
		case isa.OpNegI:
			c.push(sym{kind: symImm, imm: uint64(uint32(-int32(uint32(a.imm))))})
			return
		case isa.OpNegL:
			c.push(sym{kind: symImm, imm: uint64(-int64(a.imm))})
			return
		case isa.OpI2B:
			c.push(sym{kind: symImm, imm: uint64(uint32(int32(int8(int32(uint32(a.imm))))))})
			return
		case isa.OpI2C:
			c.push(sym{kind: symImm, imm: uint64(uint32(int32(uint16(int32(uint32(a.imm))))))})
			return
		case isa.OpI2S:
			c.push(sym{kind: symImm, imm: uint64(uint32(int32(int16(int32(uint32(a.imm))))))})
			return
		case isa.OpI2L:
			c.push(sym{kind: symImm, imm: uint64(int64(int32(uint32(a.imm))))})
			return
		case isa.OpL2I:
			c.push(sym{kind: symImm, imm: uint64(uint32(int32(int64(a.imm))))})
			return
		}
	}
	d := int32(len(c.vstack))
	oa, imm := operand(a)
	c.micro = append(c.micro, MicroOp{Code: code, D: d, A: oa, Imm: imm})
	c.push(sym{kind: symSlot, idx: d})
}

// storeLocal lowers StoreLocal i, sinking the producing micro-op's
// destination straight into the local when the popped value was
// produced by the immediately preceding micro-op and nothing else
// references its slot.
func (c *microCompiler) storeLocal(i int32) {
	v := c.pop()
	if !c.ok {
		return
	}
	mark := len(c.micro)
	c.matLocal(i)
	switch v.kind {
	case symImm:
		c.micro = append(c.micro, MicroOp{Code: MMovImm, D: -(i + 1), Imm: v.imm})
	case symLocal:
		if v.idx != i {
			c.micro = append(c.micro, MicroOp{Code: MMov, D: -(i + 1), A: -(v.idx + 1)})
		}
	default:
		sink := len(c.micro) == mark && mark > c.noSink && c.micro[mark-1].D == v.idx
		if sink {
			for p := range c.vstack {
				if s := c.vstack[p]; s.kind == symSlot && s.idx == v.idx {
					sink = false
					break
				}
			}
		}
		if sink {
			c.micro[mark-1].D = -(i + 1)
		} else {
			c.micro = append(c.micro, MicroOp{Code: MMov, D: -(i + 1), A: v.idx})
		}
	}
	c.localFlag[i] = v.flag
}

// closeSeg ends the current pure segment at a memory boundary: the
// first segment's accumulator becomes the block's up-front charge,
// later ones append to Segs (charged right after the boundary that
// precedes them).
func (c *microCompiler) closeSeg() {
	if len(c.bounds) == 0 {
		c.firstLen, c.firstCyc, c.firstCls = c.segLen, c.segCyc, c.segCls
	} else {
		c.segs = append(c.segs, Seg{Cycles: c.segCyc, ClassCycles: c.segCls, Len: c.segLen})
	}
	c.segLen, c.segCyc, c.segCls = 0, 0, [isa.NumClasses]uint64{}
}

// memBoundary lowers one absorbable memory instruction at block-
// relative index rel. It closes the current pure segment, records the
// shadow materialisations and flag snapshots an abort or trap needs to
// rebuild exact stepped state, and emits the memory micro-op with
// symbolic operands (the happy path never round-trips them through
// their stack slots).
func (c *microCompiler) memBoundary(rel int32, in isa.Instr) {
	var npops, npush int
	var mcode uint8
	switch in.Op {
	case isa.OpALoad:
		npops, npush, mcode = 2, 1, MALoad
	case isa.OpAStore:
		npops, npush, mcode = 3, 0, MAStore
	case isa.OpArrayLen:
		npops, npush, mcode = 1, 1, MArrayLen
	case isa.OpGetField:
		npops, npush, mcode = 1, 1, MGetField
	case isa.OpPutField:
		npops, npush, mcode = 2, 0, MPutField
	case isa.OpGetStatic:
		npops, npush, mcode = 0, 1, MGetStatic
	case isa.OpPutStatic:
		npops, npush, mcode = 1, 0, MPutStatic
	}
	if len(c.vstack) < npops {
		c.fail() // operands from before the block entry: suffix bails
		return
	}
	opStart := len(c.vstack) - npops
	// One shared Imm field per micro-op: materialise all but one
	// immediate operand.
	imms := 0
	for i := opStart; i < len(c.vstack); i++ {
		if c.vstack[i].kind == symImm {
			imms++
		}
	}
	for i := opStart; i < len(c.vstack) && imms > 1; i++ {
		if c.vstack[i].kind == symImm {
			c.vstack[i] = c.materialise(c.vstack[i], int32(i))
			imms--
		}
	}
	// Shadow materialisations: every live entry not already at its
	// stack position, split below-operands / operands so a resume at
	// the next instruction does not clobber the result's slot.
	matLo, matOpLo := int32(len(c.mats)), int32(len(c.mats))
	for i, v := range c.vstack {
		if i == opStart {
			matOpLo = int32(len(c.mats))
		}
		if v.kind == symSlot && v.idx == int32(i) {
			continue
		}
		switch v.kind {
		case symImm:
			c.mats = append(c.mats, MicroOp{Code: MMovImm, D: int32(i), Imm: v.imm})
		case symLocal:
			c.mats = append(c.mats, MicroOp{Code: MMov, D: int32(i), A: -(v.idx + 1)})
		default:
			c.mats = append(c.mats, MicroOp{Code: MMov, D: int32(i), A: v.idx})
		}
	}
	if opStart == len(c.vstack) {
		matOpLo = int32(len(c.mats))
	}
	matHi := int32(len(c.mats))
	// Flag snapshots: stack positions below the instruction's SP and
	// the locals written so far. Sources resolve against entry-state
	// LocalRefs at apply time, which still holds at any boundary —
	// local flag writes are deferred to the block's final epilogue.
	sfLo := int32(len(c.bsf))
	for i, v := range c.vstack {
		c.bsf = append(c.bsf, FlagWrite{Idx: int32(i), Src: v.flag})
	}
	sfHi := int32(len(c.bsf))
	lfLo := int32(len(c.blf))
	locals := make([]int32, 0, len(c.localFlag))
	for i := range c.localFlag {
		locals = append(locals, i)
	}
	sort.Slice(locals, func(a, b int) bool { return locals[a] < locals[b] })
	for _, i := range locals {
		c.blf = append(c.blf, FlagWrite{Idx: i, Src: c.localFlag[i]})
	}
	lfHi := int32(len(c.blf))
	if sfHi-sfLo > maxFlagWrites || lfHi-lfLo > maxFlagWrites {
		c.fail()
		return
	}

	var ops [3]sym
	for i := npops - 1; i >= 0; i-- {
		ops[i] = c.pop()
	}
	m := MicroOp{Code: mcode, D: int32(opStart)}
	enc := func(v sym) int32 {
		o, im := operand(v)
		if o == MicroImm {
			m.Imm = im
		}
		return o
	}
	switch in.Op {
	case isa.OpALoad, isa.OpAStore:
		m.A, m.B = enc(ops[0]), enc(ops[1])
		if in.Op == isa.OpAStore {
			m.D = enc(ops[2])
		}
	case isa.OpArrayLen, isa.OpGetField:
		m.A = enc(ops[0])
	case isa.OpPutField:
		m.A, m.B = enc(ops[0]), enc(ops[1])
	case isa.OpPutStatic:
		m.A = enc(ops[0])
	}
	c.micro = append(c.micro, m)
	c.noSink = len(c.micro)
	if npush == 1 {
		flag := int32(0)
		switch in.Op {
		case isa.OpALoad:
			if isa.ElemKind(in.A) == isa.ElemRef {
				flag = 1
			}
		case isa.OpGetField, isa.OpGetStatic:
			if in.B&isa.FlagRef != 0 {
				flag = 1
			}
		}
		c.push(sym{kind: symSlot, idx: int32(opStart), flag: flag})
	}

	c.closeSeg()
	c.bounds = append(c.bounds, MemBound{
		RelIdx: rel, Cost: uint32(in.Cost), Class: in.Op.Class(),
		Kind: in.A, Flags: in.B,
		SPAtOp: int32(opStart + npops), SPTrap: int32(opStart), SPAfter: int32(opStart + npush),
		MatLo: matLo, MatOpLo: matOpLo, MatHi: matHi,
		LfLo: lfLo, LfHi: lfHi, SfLo: sfLo, SfHi: sfHi,
	})
}

// compileMicro lowers a block's instructions. term is the block's
// control terminal when it has one (goto or conditional branch): it
// contributes cost and an instruction to the final segment but emits
// no micro-op — the executor applies its effect from Target. It
// returns ok=false when the block contains a pattern the lowering does
// not model; a memory-free block then replays with runPure.
func compileMicro(code []isa.Instr, term *isa.Instr) (mb microBlock, ok bool) {
	c := microCompiler{localFlag: make(map[int32]int32), ok: true}
	for idx, in := range code {
		if memOp(in.Op) {
			c.memBoundary(int32(idx), in)
			if !c.ok {
				return microBlock{}, false
			}
			continue
		}
		c.segLen++
		c.segCyc += uint64(in.Cost)
		c.segCls[in.Op.Class()] += uint64(in.Cost)
		switch in.Op {
		case isa.OpNop, isa.OpGoto:

		case isa.OpPushConst:
			flag := int32(0)
			if in.C == 1 {
				flag = 1
			}
			c.push(sym{kind: symImm,
				imm:  uint64(uint32(in.A)) | uint64(uint32(in.B))<<32,
				flag: flag})
		case isa.OpLoadLocal:
			c.push(sym{kind: symLocal, idx: in.A, flag: c.flagOfLocal(in.A)})
		case isa.OpStoreLocal:
			c.storeLocal(in.A)
		case isa.OpIncLocal:
			c.matLocal(in.A)
			c.micro = append(c.micro, MicroOp{
				Code: MAddI, D: -(in.A + 1), A: -(in.A + 1),
				B: MicroImm, Imm: uint64(uint32(in.B)),
			})
			// IncLocal leaves the local's reference flag untouched
			// (mirroring step), so localFlag is deliberately not updated.
		case isa.OpPop:
			c.pop()
		case isa.OpPop2:
			c.pop()
			c.pop()
		case isa.OpDup:
			if len(c.vstack) == 0 {
				c.fail()
				break
			}
			c.push(c.vstack[len(c.vstack)-1])
		case isa.OpDup2:
			if len(c.vstack) < 2 {
				c.fail()
				break
			}
			b := c.vstack[len(c.vstack)-1]
			a := c.vstack[len(c.vstack)-2]
			c.push(a)
			c.push(b)
		case isa.OpSwap, isa.OpDupX1, isa.OpDupX2:
			// These move a value below its materialised slot, breaking
			// the slot<=position invariant; they are rare in compiled
			// code, so bail rather than model a parallel copy.
			c.fail()

		default:
			if unaryOp(in.Op) {
				c.unary(in)
			} else if _, isBin := microForOp[in.Op]; isBin {
				c.binary(in)
			} else {
				c.fail() // not a pure op: discovery should never admit it
			}
		}
		if !c.ok {
			return microBlock{}, false
		}
	}

	// The control terminal belongs to the final segment: its static
	// cost and instruction count charge with the block's tail even
	// though its effect is applied from Target.
	if term != nil {
		c.segLen++
		c.segCyc += uint64(term.Cost)
		c.segCls[term.Op.Class()] += uint64(term.Cost)
	}
	if len(c.bounds) == 0 {
		c.firstLen, c.firstCyc, c.firstCls = c.segLen, c.segCyc, c.segCls
	} else {
		c.segs = append(c.segs, Seg{Cycles: c.segCyc, ClassCycles: c.segCls, Len: c.segLen})
	}

	// Epilogue: materialise surviving symbolic stack values into their
	// positions (processing upward — a non-identity copy only ever reads
	// a slot whose position holds it identically, per the compiler
	// invariant) and collect the deferred reference-flag writes.
	var lflags, sflags []FlagWrite
	for p := range c.vstack {
		v := c.vstack[p]
		if v.kind != symSlot || v.idx != int32(p) {
			c.vstack[p] = c.materialise(v, int32(p))
		}
		sflags = append(sflags, FlagWrite{Idx: int32(p), Src: v.flag})
	}
	locals := make([]int32, 0, len(c.localFlag))
	for i := range c.localFlag {
		locals = append(locals, i)
	}
	sort.Slice(locals, func(a, b int) bool { return locals[a] < locals[b] })
	for _, i := range locals {
		lflags = append(lflags, FlagWrite{Idx: i, Src: c.localFlag[i]})
	}
	if len(lflags) > maxFlagWrites || len(sflags) > maxFlagWrites {
		return microBlock{}, false
	}
	return microBlock{
		Micro: c.micro, LFlags: lflags, SFlags: sflags, MaxDepth: c.maxDepth,
		Bounds: c.bounds, Segs: c.segs, Mats: c.mats,
		BLFlags: c.blf, BSFlags: c.bsf,
		FirstLen: c.firstLen, FirstCycles: c.firstCyc, FirstClass: c.firstCls,
	}, true
}
