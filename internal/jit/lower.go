package jit

import (
	"fmt"

	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// fixup records a pending branch-target patch (bytecode pc to machine
// index) and tableFixup the same for one switch-table slot.
type fixup struct {
	instr int  // instruction to patch
	field byte // 'A' or 'B'
	bcPC  int  // bytecode target
}

type tableFixup struct {
	table int
	slot  int
	bcPC  int
}

// lower macro-expands a method's bytecode into machine instructions for
// the compiler's target, resolving symbolic references (fields to byte
// offsets, methods to IDs/vtable slots, labels to instruction indices)
// exactly as a baseline JIT resolves constant-pool entries at compile
// time.
func (c *Compiler) lower(m *classfile.Method) (*CompiledMethod, error) {
	cm := &CompiledMethod{M: m, Target: c.target}
	start := make([]int, len(m.Code)+1) // bytecode pc -> machine index

	var fixups []fixup
	var tableFixups []tableFixup

	emit := func(in isa.Instr) int {
		in.Cost = c.costs.OpCost[in.Op]
		cm.Code = append(cm.Code, in)
		return len(cm.Code) - 1
	}
	branchTo := func(idx int, field byte, l *classfile.Label) {
		fixups = append(fixups, fixup{instr: idx, field: field, bcPC: l.PC()})
	}

	for pc := range m.Code {
		bc := &m.Code[pc]
		start[pc] = len(cm.Code)
		if err := c.lowerOne(m, bc, emit, branchTo, &tableFixups, cm); err != nil {
			return nil, fmt.Errorf("jit: %s pc %d (%v): %w", m.Sig(), pc, bc.Op, err)
		}
	}
	start[len(m.Code)] = len(cm.Code)

	// Retain the bytecode<->machine index maps for cross-kind PC
	// translation (CompiledMethod.TranslatePC).
	cm.EntryOf = make([]int32, len(start))
	for pc, idx := range start {
		cm.EntryOf[pc] = int32(idx)
	}
	cm.BCIndex = make([]int32, len(cm.Code))
	for pc := range m.Code {
		for i := start[pc]; i < start[pc+1]; i++ {
			cm.BCIndex[i] = int32(pc)
		}
	}

	for _, f := range fixups {
		tgt := int32(start[f.bcPC])
		if f.field == 'A' {
			cm.Code[f.instr].A = tgt
		} else {
			cm.Code[f.instr].B = tgt
		}
	}
	for _, f := range tableFixups {
		cm.Tables[f.table][f.slot] = int32(start[f.bcPC])
	}
	for _, h := range m.Handlers {
		classID := -1
		if h.Type != nil {
			classID = h.Type.ID
		}
		cm.Handlers = append(cm.Handlers, CompiledHandler{
			From:    start[h.From],
			To:      start[h.To],
			Target:  start[h.Target],
			ClassID: classID,
		})
	}

	size := uint32(c.costs.MethodPrologueBytes)
	for _, in := range cm.Code {
		size += uint32(c.costs.OpSize[in.Op])
	}
	for _, tb := range cm.Tables {
		size += uint32(len(tb)) * 4
	}
	size += uint32(len(m.Handlers)) * 16 // exception-table entries
	cm.Size = size
	return cm, nil
}

func (c *Compiler) lowerOne(m *classfile.Method, bc *classfile.BC,
	emit func(isa.Instr) int, branchTo func(int, byte, *classfile.Label),
	tableFixups *[]tableFixup, cm *CompiledMethod) error {

	pushConst := func(w uint64, ref bool) {
		in := isa.Instr{Op: isa.OpPushConst, A: int32(uint32(w)), B: int32(uint32(w >> 32))}
		if ref {
			in.C = 1
		}
		emit(in)
	}
	simple := func(op isa.Op) { emit(isa.Instr{Op: op}) }
	condBranch := func(op isa.Op, cond int32, l *classfile.Label) {
		idx := emit(isa.Instr{Op: op, A: cond})
		branchTo(idx, 'B', l)
	}
	fieldFlags := func(f *classfile.Field) int32 {
		var fl int32
		if f.Volatile {
			fl |= isa.FlagVolatile
		}
		if f.Type == classfile.Ref {
			fl |= isa.FlagRef
		}
		return fl
	}

	switch bc.Op {
	case classfile.BCNop:
		simple(isa.OpNop)

	case classfile.BCConstI:
		pushConst(uint64(uint32(bc.A)), false)
	case classfile.BCConstL, classfile.BCConstD, classfile.BCConstF:
		pushConst(bc.W, false)
	case classfile.BCConstNull:
		pushConst(0, true)
	case classfile.BCConstStr:
		if c.InternString == nil {
			return fmt.Errorf("no string interner registered")
		}
		ref, err := c.InternString(bc.S)
		if err != nil {
			return err
		}
		pushConst(uint64(ref), true)

	case classfile.BCLoadI, classfile.BCLoadL, classfile.BCLoadF,
		classfile.BCLoadD, classfile.BCLoadRef:
		emit(isa.Instr{Op: isa.OpLoadLocal, A: bc.A})
	case classfile.BCStoreI, classfile.BCStoreL, classfile.BCStoreF,
		classfile.BCStoreD, classfile.BCStoreRef:
		emit(isa.Instr{Op: isa.OpStoreLocal, A: bc.A})
	case classfile.BCInc:
		emit(isa.Instr{Op: isa.OpIncLocal, A: bc.A, B: bc.B})

	case classfile.BCPop:
		simple(isa.OpPop)
	case classfile.BCPop2:
		simple(isa.OpPop2)
	case classfile.BCDup:
		simple(isa.OpDup)
	case classfile.BCDupX1:
		simple(isa.OpDupX1)
	case classfile.BCDupX2:
		simple(isa.OpDupX2)
	case classfile.BCDup2:
		simple(isa.OpDup2)
	case classfile.BCSwap:
		simple(isa.OpSwap)

	case classfile.BCAddI:
		simple(isa.OpAddI)
	case classfile.BCSubI:
		simple(isa.OpSubI)
	case classfile.BCMulI:
		simple(isa.OpMulI)
	case classfile.BCDivI:
		simple(isa.OpDivI)
	case classfile.BCRemI:
		simple(isa.OpRemI)
	case classfile.BCNegI:
		simple(isa.OpNegI)
	case classfile.BCShlI:
		simple(isa.OpShlI)
	case classfile.BCShrI:
		simple(isa.OpShrI)
	case classfile.BCUShrI:
		simple(isa.OpUShrI)
	case classfile.BCAndI:
		simple(isa.OpAndI)
	case classfile.BCOrI:
		simple(isa.OpOrI)
	case classfile.BCXorI:
		simple(isa.OpXorI)

	case classfile.BCAddL:
		simple(isa.OpAddL)
	case classfile.BCSubL:
		simple(isa.OpSubL)
	case classfile.BCMulL:
		simple(isa.OpMulL)
	case classfile.BCDivL:
		simple(isa.OpDivL)
	case classfile.BCRemL:
		simple(isa.OpRemL)
	case classfile.BCNegL:
		simple(isa.OpNegL)
	case classfile.BCShlL:
		simple(isa.OpShlL)
	case classfile.BCShrL:
		simple(isa.OpShrL)
	case classfile.BCUShrL:
		simple(isa.OpUShrL)
	case classfile.BCAndL:
		simple(isa.OpAndL)
	case classfile.BCOrL:
		simple(isa.OpOrL)
	case classfile.BCXorL:
		simple(isa.OpXorL)
	case classfile.BCCmpL:
		simple(isa.OpCmpL)

	case classfile.BCAddF:
		simple(isa.OpAddF)
	case classfile.BCSubF:
		simple(isa.OpSubF)
	case classfile.BCMulF:
		simple(isa.OpMulF)
	case classfile.BCDivF:
		simple(isa.OpDivF)
	case classfile.BCRemF:
		simple(isa.OpRemF)
	case classfile.BCNegF:
		simple(isa.OpNegF)
	case classfile.BCCmpFL:
		emit(isa.Instr{Op: isa.OpCmpF, A: -1})
	case classfile.BCCmpFG:
		emit(isa.Instr{Op: isa.OpCmpF, A: 1})

	case classfile.BCAddD:
		simple(isa.OpAddD)
	case classfile.BCSubD:
		simple(isa.OpSubD)
	case classfile.BCMulD:
		simple(isa.OpMulD)
	case classfile.BCDivD:
		simple(isa.OpDivD)
	case classfile.BCRemD:
		simple(isa.OpRemD)
	case classfile.BCNegD:
		simple(isa.OpNegD)
	case classfile.BCCmpDL:
		emit(isa.Instr{Op: isa.OpCmpD, A: -1})
	case classfile.BCCmpDG:
		emit(isa.Instr{Op: isa.OpCmpD, A: 1})

	case classfile.BCI2L:
		simple(isa.OpI2L)
	case classfile.BCI2F:
		simple(isa.OpI2F)
	case classfile.BCI2D:
		simple(isa.OpI2D)
	case classfile.BCL2I:
		simple(isa.OpL2I)
	case classfile.BCL2F:
		simple(isa.OpL2F)
	case classfile.BCL2D:
		simple(isa.OpL2D)
	case classfile.BCF2I:
		simple(isa.OpF2I)
	case classfile.BCF2L:
		simple(isa.OpF2L)
	case classfile.BCF2D:
		simple(isa.OpF2D)
	case classfile.BCD2I:
		simple(isa.OpD2I)
	case classfile.BCD2L:
		simple(isa.OpD2L)
	case classfile.BCD2F:
		simple(isa.OpD2F)
	case classfile.BCI2B:
		simple(isa.OpI2B)
	case classfile.BCI2C:
		simple(isa.OpI2C)
	case classfile.BCI2S:
		simple(isa.OpI2S)

	case classfile.BCGoto:
		idx := emit(isa.Instr{Op: isa.OpGoto})
		branchTo(idx, 'A', bc.Target)
	case classfile.BCIfEQ:
		condBranch(isa.OpIf, isa.CondEQ, bc.Target)
	case classfile.BCIfNE:
		condBranch(isa.OpIf, isa.CondNE, bc.Target)
	case classfile.BCIfLT:
		condBranch(isa.OpIf, isa.CondLT, bc.Target)
	case classfile.BCIfGE:
		condBranch(isa.OpIf, isa.CondGE, bc.Target)
	case classfile.BCIfGT:
		condBranch(isa.OpIf, isa.CondGT, bc.Target)
	case classfile.BCIfLE:
		condBranch(isa.OpIf, isa.CondLE, bc.Target)
	case classfile.BCIfICmpEQ:
		condBranch(isa.OpIfCmpI, isa.CondEQ, bc.Target)
	case classfile.BCIfICmpNE:
		condBranch(isa.OpIfCmpI, isa.CondNE, bc.Target)
	case classfile.BCIfICmpLT:
		condBranch(isa.OpIfCmpI, isa.CondLT, bc.Target)
	case classfile.BCIfICmpGE:
		condBranch(isa.OpIfCmpI, isa.CondGE, bc.Target)
	case classfile.BCIfICmpGT:
		condBranch(isa.OpIfCmpI, isa.CondGT, bc.Target)
	case classfile.BCIfICmpLE:
		condBranch(isa.OpIfCmpI, isa.CondLE, bc.Target)
	case classfile.BCIfACmpEQ:
		condBranch(isa.OpIfCmpRef, isa.CondEQ, bc.Target)
	case classfile.BCIfACmpNE:
		condBranch(isa.OpIfCmpRef, isa.CondNE, bc.Target)
	case classfile.BCIfNull:
		condBranch(isa.OpIfNull, 0, bc.Target)
	case classfile.BCIfNonNull:
		condBranch(isa.OpIfNull, 1, bc.Target)

	case classfile.BCTableSwitch, classfile.BCLookupSwitch:
		tblIdx := len(cm.Tables)
		targets := make([]int32, len(bc.Table))
		cm.Tables = append(cm.Tables, targets)
		if bc.Op == classfile.BCLookupSwitch {
			cm.Keys = append(cm.Keys, append([]int32(nil), bc.Keys...))
		} else {
			cm.Keys = append(cm.Keys, nil)
		}
		op := isa.OpTableSwitch
		if bc.Op == classfile.BCLookupSwitch {
			op = isa.OpLookupSwitch
		}
		idx := emit(isa.Instr{Op: op, A: bc.A, C: int32(tblIdx)})
		branchTo(idx, 'B', bc.Target) // default
		for slot, l := range bc.Table {
			*tableFixups = append(*tableFixups, tableFixup{table: tblIdx, slot: slot, bcPC: l.PC()})
		}

	case classfile.BCGetField:
		emit(isa.Instr{Op: isa.OpGetField, A: int32(isa.FieldOffset(bc.F.Slot)), B: fieldFlags(bc.F)})
	case classfile.BCPutField:
		emit(isa.Instr{Op: isa.OpPutField, A: int32(isa.FieldOffset(bc.F.Slot)), B: fieldFlags(bc.F)})
	case classfile.BCGetStatic:
		emit(isa.Instr{Op: isa.OpGetStatic, A: int32(bc.F.Slot), B: fieldFlags(bc.F)})
	case classfile.BCPutStatic:
		emit(isa.Instr{Op: isa.OpPutStatic, A: int32(bc.F.Slot), B: fieldFlags(bc.F)})

	case classfile.BCNewArray:
		emit(isa.Instr{Op: isa.OpNewArray, A: int32(bc.Kind)})
	case classfile.BCANewArray:
		emit(isa.Instr{Op: isa.OpANewArray, A: int32(bc.C.ID)})
	case classfile.BCALoad:
		emit(isa.Instr{Op: isa.OpALoad, A: int32(bc.Kind)})
	case classfile.BCAStore:
		emit(isa.Instr{Op: isa.OpAStore, A: int32(bc.Kind)})
	case classfile.BCArrayLen:
		simple(isa.OpArrayLen)

	case classfile.BCNew:
		emit(isa.Instr{Op: isa.OpNew, A: int32(bc.C.ID)})
	case classfile.BCInvokeStatic:
		emit(isa.Instr{Op: isa.OpCallStatic, A: int32(bc.M.ID)})
	case classfile.BCInvokeSpecial:
		emit(isa.Instr{Op: isa.OpCallSpecial, A: int32(bc.M.ID)})
	case classfile.BCInvokeVirtual:
		if bc.M.VSlot < 0 {
			return fmt.Errorf("virtual call to unslotted %s", bc.M.Sig())
		}
		emit(isa.Instr{Op: isa.OpCallVirtual, A: int32(bc.M.VSlot), B: int32(bc.M.Class.ID)})
	case classfile.BCInvokeInterface:
		if bc.M.IfaceID < 0 {
			return fmt.Errorf("interface call to %s without IfaceID", bc.M.Sig())
		}
		emit(isa.Instr{Op: isa.OpCallInterface, A: int32(bc.M.IfaceID)})
	case classfile.BCInstanceOf:
		emit(isa.Instr{Op: isa.OpInstanceOf, A: int32(bc.C.ID)})
	case classfile.BCCheckCast:
		emit(isa.Instr{Op: isa.OpCheckCast, A: int32(bc.C.ID)})

	case classfile.BCReturn:
		emit(isa.Instr{Op: isa.OpReturn, A: 1})
	case classfile.BCReturnVoid:
		emit(isa.Instr{Op: isa.OpReturn, A: 0})

	case classfile.BCMonitorEnter:
		simple(isa.OpMonitorEnter)
	case classfile.BCMonitorExit:
		simple(isa.OpMonitorExit)
	case classfile.BCThrow:
		simple(isa.OpThrow)

	default:
		return fmt.Errorf("unhandled bytecode")
	}
	return nil
}
