package jit

import (
	"strings"
	"testing"

	"herajvm/internal/classfile"
	"herajvm/internal/isa"
	"herajvm/internal/mem"
)

func newCompilers(t *testing.T) (*Compiler, *Compiler, *mem.Main) {
	t.Helper()
	main := mem.NewMain(4 << 20)
	l := mem.NewLayout(main.Size(), 4096)
	ppeRegion, err := l.Carve("ppe-code", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	speRegion, err := l.Carve("spe-code", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return NewCompiler(isa.PPE, main, ppeRegion), NewCompiler(isa.SPE, main, speRegion), main
}

func loopMethod(t *testing.T) (*classfile.Program, *classfile.Method) {
	t.Helper()
	p := classfile.NewProgram()
	c := p.NewClass("Loop", nil)
	m := c.NewMethod("sum", classfile.FlagStatic, classfile.Int, classfile.Int)
	a := m.Asm()
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(1)
	a.ConstI(0)
	a.StoreI(2)
	a.Bind(loop)
	a.LoadI(2)
	a.LoadI(0)
	a.IfICmpGE(done)
	a.LoadI(1)
	a.LoadI(2)
	a.AddI()
	a.StoreI(1)
	a.Inc(2, 1)
	a.Goto(loop)
	a.Bind(done)
	a.LoadI(1)
	a.Ret()
	a.MustBuild()
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	return p, m
}

func TestCompileLoopBothTargets(t *testing.T) {
	ppe, spe, _ := newCompilers(t)
	_, m := loopMethod(t)
	for _, c := range []*Compiler{ppe, spe} {
		cm, err := c.Compile(m)
		if err != nil {
			t.Fatalf("%v: %v", c.Target(), err)
		}
		if len(cm.Code) != len(m.Code) {
			t.Errorf("%v: %d machine instrs from %d bytecodes", c.Target(), len(cm.Code), len(m.Code))
		}
		if cm.Size == 0 || cm.Addr == 0 {
			t.Errorf("%v: unsized or unplaced code", c.Target())
		}
	}
}

func TestBranchTargetsResolved(t *testing.T) {
	_, spe, _ := newCompilers(t)
	_, m := loopMethod(t)
	cm, err := spe.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range cm.Code {
		switch in.Op {
		case isa.OpGoto:
			if in.A < 0 || int(in.A) >= len(cm.Code) {
				t.Errorf("instr %d: goto target %d out of range", i, in.A)
			}
		case isa.OpIf, isa.OpIfCmpI, isa.OpIfCmpRef, isa.OpIfNull:
			if in.B < 0 || int(in.B) >= len(cm.Code) {
				t.Errorf("instr %d: branch target %d out of range", i, in.B)
			}
		}
	}
	// The backedge goto must point at the loop header (instruction 4:
	// after the 4 init instructions).
	var sawBackedge bool
	for i, in := range cm.Code {
		if in.Op == isa.OpGoto && int(in.A) < i {
			sawBackedge = true
		}
	}
	if !sawBackedge {
		t.Error("loop should compile to a backward goto")
	}
}

func TestSPECodeLargerThanPPE(t *testing.T) {
	ppe, spe, _ := newCompilers(t)
	p := classfile.NewProgram()
	c := p.NewClass("MemHeavy", nil)
	f := c.NewField("x", classfile.Int)
	m := c.NewMethod("touch", 0, classfile.Int)
	a := m.Asm()
	for i := 0; i < 10; i++ {
		a.LoadRef(0)
		a.GetField(f)
		a.Pop()
	}
	a.LoadRef(0)
	a.GetField(f)
	a.Ret()
	a.MustBuild()
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	pm, err := ppe.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := spe.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Size <= pm.Size {
		t.Errorf("SPE code (%d B) should exceed PPE code (%d B): inline cache probes", sm.Size, pm.Size)
	}
}

func TestFieldOffsetsResolved(t *testing.T) {
	_, spe, _ := newCompilers(t)
	p := classfile.NewProgram()
	base := p.NewClass("Base", nil)
	base.NewField("a", classfile.Int)
	sub := p.NewClass("Sub", base)
	fb := sub.NewField("b", classfile.Double)
	m := sub.NewMethod("getB", 0, classfile.Double)
	a := m.Asm()
	a.LoadRef(0)
	a.GetField(fb)
	a.Ret()
	a.MustBuild()
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	cm, err := spe.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	get := cm.Code[1]
	if get.Op != isa.OpGetField {
		t.Fatalf("expected getfield, got %v", get.Op)
	}
	// b is slot 1 (after Base.a): offset 16 + 8.
	if get.A != int32(isa.HeaderBytes+isa.SlotBytes) {
		t.Errorf("field offset: got %d want %d", get.A, isa.HeaderBytes+isa.SlotBytes)
	}
}

func TestVolatileAndRefFlags(t *testing.T) {
	_, spe, _ := newCompilers(t)
	p := classfile.NewProgram()
	c := p.NewClass("V", nil)
	fv := c.NewVolatileField("flag", classfile.Int)
	fr := c.NewField("next", classfile.Ref)
	m := c.NewMethod("probe", 0, classfile.Ref)
	a := m.Asm()
	a.LoadRef(0)
	a.GetField(fv)
	a.Pop()
	a.LoadRef(0)
	a.GetField(fr)
	a.Ret()
	a.MustBuild()
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	cm, err := spe.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Code[1].B&isa.FlagVolatile == 0 {
		t.Error("volatile flag missing")
	}
	if cm.Code[4].B&isa.FlagRef == 0 {
		t.Error("ref flag missing")
	}
}

func TestSwitchTables(t *testing.T) {
	_, spe, _ := newCompilers(t)
	p := classfile.NewProgram()
	c := p.NewClass("Sw", nil)
	m := c.NewMethod("pick", classfile.FlagStatic, classfile.Int, classfile.Int)
	a := m.Asm()
	c0, c1, def := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.LoadI(0)
	a.TableSwitch(10, def, c0, c1)
	a.Bind(c0)
	a.ConstI(0)
	a.Ret()
	a.Bind(c1)
	a.ConstI(1)
	a.Ret()
	a.Bind(def)
	a.ConstI(-1)
	a.Ret()
	a.MustBuild()
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	cm, err := spe.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.Tables) != 1 || len(cm.Tables[0]) != 2 {
		t.Fatalf("tables: %v", cm.Tables)
	}
	sw := cm.Code[1]
	if sw.Op != isa.OpTableSwitch || sw.A != 10 {
		t.Errorf("switch instr wrong: %v", sw)
	}
	for _, tgt := range cm.Tables[0] {
		if tgt <= 0 || int(tgt) >= len(cm.Code) {
			t.Errorf("table target %d out of range", tgt)
		}
	}
	if sw.B <= 0 || int(sw.B) >= len(cm.Code) {
		t.Errorf("default target %d out of range", sw.B)
	}
}

func TestCompileCachesResult(t *testing.T) {
	_, spe, _ := newCompilers(t)
	_, m := loopMethod(t)
	cm1, err := spe.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	cm2, err := spe.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if cm1 != cm2 {
		t.Error("recompilation should be memoised")
	}
	if spe.Compiles != 1 {
		t.Errorf("Compiles: %d", spe.Compiles)
	}
}

func TestPerTargetLazyCompilation(t *testing.T) {
	ppe, spe, _ := newCompilers(t)
	_, m := loopMethod(t)
	if _, err := spe.Compile(m); err != nil {
		t.Fatal(err)
	}
	// PPE compiler must not know about it: methods are compiled per core
	// type only when executed there (§3.1).
	if ppe.Lookup(m) != nil {
		t.Error("PPE compiler should not have compiled the method")
	}
}

func TestNativeMethodRejected(t *testing.T) {
	_, spe, _ := newCompilers(t)
	p := classfile.NewProgram()
	c := p.NewClass("N", nil)
	n := c.NewMethod("now", classfile.FlagStatic|classfile.FlagNative, classfile.Long)
	if err := func() error { _, err := spe.Compile(n); return err }(); err == nil ||
		!strings.Contains(err.Error(), "native") {
		t.Errorf("expected native rejection, got %v", err)
	}
	_ = p
}

func TestConstStrNeedsInterner(t *testing.T) {
	_, spe, _ := newCompilers(t)
	p := classfile.NewProgram()
	c := p.NewClass("S", nil)
	m := c.NewMethod("s", classfile.FlagStatic, classfile.Ref)
	a := m.Asm()
	a.Str("hello")
	a.Ret()
	a.MustBuild()
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if _, err := spe.Compile(m); err == nil {
		t.Error("expected interner error")
	}
	spe.InternString = func(s string) (uint32, error) { return 0x1234, nil }
	// A fresh compiler attempt still fails because failure wasn't cached;
	// recompile now succeeds.
	cm, err := spe.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Code[0].Op != isa.OpPushConst || cm.Code[0].A != 0x1234 || cm.Code[0].C != 1 {
		t.Errorf("string constant mislowered: %v", cm.Code[0])
	}
}

func TestCodeBytesWrittenToMainMemory(t *testing.T) {
	_, spe, main := newCompilers(t)
	_, m := loopMethod(t)
	cm, err := spe.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if main.Read8(cm.Addr) == 0 {
		t.Error("compiled code region should contain nonzero pattern bytes")
	}
}

func TestCompileCyclesScaleWithSize(t *testing.T) {
	_, spe, _ := newCompilers(t)
	_, m := loopMethod(t)
	small := spe.CompileCycles(m)
	if small <= 800 {
		t.Errorf("compile cost %d too small", small)
	}
}

// TestBytecodeBoundaryMaps verifies the BCIndex/EntryOf maps the
// cross-kind migration path relies on: every machine instruction knows
// its source bytecode, every bytecode's first instruction is a
// boundary, and a boundary PC round-trips between two backends of the
// same method.
func TestBytecodeBoundaryMaps(t *testing.T) {
	ppe, spe, _ := newCompilers(t)
	_, m := loopMethod(t)
	pcm, err := ppe.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	scm, err := spe.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(pcm.BCIndex) != len(pcm.Code) {
		t.Fatalf("BCIndex length %d != code length %d", len(pcm.BCIndex), len(pcm.Code))
	}
	if len(pcm.EntryOf) != len(m.Code)+1 || int(pcm.EntryOf[len(m.Code)]) != len(pcm.Code) {
		t.Fatalf("EntryOf misshaped: %d entries, tail %d (want %d, tail %d)",
			len(pcm.EntryOf), pcm.EntryOf[len(pcm.EntryOf)-1], len(m.Code)+1, len(pcm.Code))
	}
	// BCIndex is monotone and every EntryOf target is a boundary.
	for i := 1; i < len(pcm.BCIndex); i++ {
		if pcm.BCIndex[i] < pcm.BCIndex[i-1] {
			t.Fatalf("BCIndex not monotone at %d: %d < %d", i, pcm.BCIndex[i], pcm.BCIndex[i-1])
		}
	}
	boundaries := 0
	for pc := 0; pc <= len(pcm.Code); pc++ {
		if !pcm.AtBytecodeBoundary(pc) {
			continue
		}
		boundaries++
		// A boundary PC maps to the SPE compilation and back unchanged.
		spc := pcm.TranslatePC(pc, scm)
		if !scm.AtBytecodeBoundary(spc) {
			t.Fatalf("translated pc %d -> %d is not a boundary on the SPE", pc, spc)
		}
		if back := scm.TranslatePC(spc, pcm); back != pc {
			t.Fatalf("pc %d -> %d -> %d did not round-trip", pc, spc, back)
		}
	}
	if boundaries < len(m.Code) {
		t.Errorf("only %d boundaries for %d bytecodes", boundaries, len(m.Code))
	}
	if pcm.AtBytecodeBoundary(-1) || pcm.AtBytecodeBoundary(len(pcm.Code)+1) {
		t.Error("out-of-range PCs must not be boundaries")
	}
}
