// Package profile accumulates the cycle and event statistics the
// experiments report: per-core cycles bucketed by operation class (the
// paper's Figure 5 breakdown), software-cache hit rates (Figures 6 and
// 7), DMA traffic, migrations and GC activity. It also holds per-method
// counters used by the runtime-monitoring placement policy (§3, §6).
package profile

import (
	"fmt"
	"sort"
	"strings"

	"herajvm/internal/isa"
)

// CoreStats aggregates everything one simulated core did.
type CoreStats struct {
	// Cycles bucketed by operation class. Their sum is the busy time;
	// Idle is time the core spent with no runnable thread.
	Cycles [isa.NumClasses]uint64
	Idle   uint64

	// Instrs is the number of machine instructions retired.
	Instrs uint64

	// FastForwardedBlocks/Instrs count superblock fast-forwards: whole
	// pure straight-line runs whose memoized cost and stack effects the
	// executor applied in one step instead of per-instruction dispatch.
	// The fast-forwarded instructions are also counted in Instrs and
	// their cycles in Cycles — these counters only say how much of the
	// work took the memoized path (the simulation-speed hit rate).
	FastForwardedBlocks uint64
	FastForwardedInstrs uint64

	// Data cache (SPE software cache or PPE L1/L2) events.
	DataHits, DataMisses uint64
	DataFlushes          uint64 // whole-cache flushes (SPE: cache filled)
	DataPurges           uint64 // coherence purges at lock/volatile ops
	DataWriteBacks       uint64 // dirty entries written back

	// Code cache events (SPE only).
	CodeHits, CodeMisses uint64
	CodePurges           uint64
	TIBHits, TIBMisses   uint64

	// DMA traffic issued by this core's MFC.
	DMATransfers uint64
	DMABytes     uint64
	DMAWait      uint64 // cycles stalled waiting on DMA completion
	// DataStaged counts bytes a kernel worker prefetched into its data
	// cache by double-buffered tile staging — a subset of DMABytes that
	// makes kernel DMA traffic visible separately from demand misses.
	DataStaged uint64

	// Thread events. Migrations cross core kinds (a placement-policy
	// decision); steals move a queued thread between same-kind cores
	// (the work-stealing scheduler repairing load imbalance).
	MigrationsIn, MigrationsOut uint64
	StealsIn, StealsOut         uint64
	Syscalls                    uint64
}

// Busy returns the total busy cycles across all classes.
func (s *CoreStats) Busy() uint64 {
	var t uint64
	for _, c := range s.Cycles {
		t += c
	}
	return t
}

// Charge adds n cycles to the given class.
func (s *CoreStats) Charge(class isa.OpClass, n uint64) {
	s.Cycles[class] += n
}

// DataHitRate returns hits/(hits+misses), or 1 when there were no
// accesses.
func (s *CoreStats) DataHitRate() float64 {
	return rate(s.DataHits, s.DataMisses)
}

// CodeHitRate returns the code-cache hit rate.
func (s *CoreStats) CodeHitRate() float64 {
	return rate(s.CodeHits, s.CodeMisses)
}

func rate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 1
	}
	return float64(hits) / float64(hits+misses)
}

// Add accumulates o into s.
func (s *CoreStats) Add(o *CoreStats) {
	for i := range s.Cycles {
		s.Cycles[i] += o.Cycles[i]
	}
	s.Idle += o.Idle
	s.Instrs += o.Instrs
	s.FastForwardedBlocks += o.FastForwardedBlocks
	s.FastForwardedInstrs += o.FastForwardedInstrs
	s.DataHits += o.DataHits
	s.DataMisses += o.DataMisses
	s.DataFlushes += o.DataFlushes
	s.DataPurges += o.DataPurges
	s.DataWriteBacks += o.DataWriteBacks
	s.CodeHits += o.CodeHits
	s.CodeMisses += o.CodeMisses
	s.CodePurges += o.CodePurges
	s.TIBHits += o.TIBHits
	s.TIBMisses += o.TIBMisses
	s.DMATransfers += o.DMATransfers
	s.DMABytes += o.DMABytes
	s.DMAWait += o.DMAWait
	s.DataStaged += o.DataStaged
	s.MigrationsIn += o.MigrationsIn
	s.MigrationsOut += o.MigrationsOut
	s.StealsIn += o.StealsIn
	s.StealsOut += o.StealsOut
	s.Syscalls += o.Syscalls
}

// ClassShares returns each operation class's share of busy cycles, in
// class order. This is a row of the paper's Figure 5.
func (s *CoreStats) ClassShares() [isa.NumClasses]float64 {
	var out [isa.NumClasses]float64
	busy := s.Busy()
	if busy == 0 {
		return out
	}
	for i, c := range s.Cycles {
		out[i] = float64(c) / float64(busy)
	}
	return out
}

// String formats a compact single-core report.
func (s *CoreStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "busy=%d idle=%d instrs=%d", s.Busy(), s.Idle, s.Instrs)
	fmt.Fprintf(&b, " dcache=%.3f ccache=%.3f dma=%dB",
		s.DataHitRate(), s.CodeHitRate(), s.DMABytes)
	return b.String()
}

// MethodCounters tracks per-method executed-cycle composition for the
// runtime-monitoring placement policy: methods with a high floating-point
// share are SPE candidates; methods dominated by main-memory cycles are
// PPE candidates (§4's conclusion).
type MethodCounters struct {
	Cycles  [isa.NumClasses]uint64
	Invokes uint64
}

// FPShare returns the floating-point share of the method's cycles.
func (m *MethodCounters) FPShare() float64 {
	var busy uint64
	for _, c := range m.Cycles {
		busy += c
	}
	if busy == 0 {
		return 0
	}
	return float64(m.Cycles[isa.ClassFloat]) / float64(busy)
}

// MemShare returns the main-memory share of the method's cycles.
func (m *MethodCounters) MemShare() float64 {
	var busy uint64
	for _, c := range m.Cycles {
		busy += c
	}
	if busy == 0 {
		return 0
	}
	return float64(m.Cycles[isa.ClassMainMem]) / float64(busy)
}

// Monitor aggregates per-method counters keyed by global method ID.
type Monitor struct {
	ByMethod map[int]*MethodCounters
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{ByMethod: make(map[int]*MethodCounters)}
}

// Counters returns (creating if needed) the counters for a method.
func (mn *Monitor) Counters(methodID int) *MethodCounters {
	c := mn.ByMethod[methodID]
	if c == nil {
		c = &MethodCounters{}
		mn.ByMethod[methodID] = c
	}
	return c
}

// Hottest returns up to n method IDs ordered by total cycles, hottest
// first. Used by reports and the monitoring placement policy.
func (mn *Monitor) Hottest(n int) []int {
	ids := make([]int, 0, len(mn.ByMethod))
	for id := range mn.ByMethod {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		var a, b uint64
		for _, c := range mn.ByMethod[ids[i]].Cycles {
			a += c
		}
		for _, c := range mn.ByMethod[ids[j]].Cycles {
			b += c
		}
		if a != b {
			return a > b
		}
		return ids[i] < ids[j]
	})
	if len(ids) > n {
		ids = ids[:n]
	}
	return ids
}
