package profile

import (
	"strings"
	"testing"

	"herajvm/internal/isa"
)

func TestCoreStatsChargeAndBusy(t *testing.T) {
	var s CoreStats
	s.Charge(isa.ClassFloat, 100)
	s.Charge(isa.ClassInt, 50)
	s.Idle = 25
	if s.Busy() != 150 {
		t.Errorf("Busy: %d", s.Busy())
	}
	shares := s.ClassShares()
	if shares[isa.ClassFloat] < 0.66 || shares[isa.ClassFloat] > 0.67 {
		t.Errorf("float share: %f", shares[isa.ClassFloat])
	}
}

func TestHitRates(t *testing.T) {
	var s CoreStats
	if s.DataHitRate() != 1 || s.CodeHitRate() != 1 {
		t.Error("empty stats should report perfect hit rates")
	}
	s.DataHits, s.DataMisses = 3, 1
	if s.DataHitRate() != 0.75 {
		t.Errorf("DataHitRate: %f", s.DataHitRate())
	}
	s.CodeHits, s.CodeMisses = 1, 3
	if s.CodeHitRate() != 0.25 {
		t.Errorf("CodeHitRate: %f", s.CodeHitRate())
	}
}

func TestAddAccumulates(t *testing.T) {
	var a, b CoreStats
	a.Charge(isa.ClassBranch, 10)
	a.DataHits = 5
	a.DMABytes = 100
	b.Charge(isa.ClassBranch, 20)
	b.DataHits = 7
	b.DMABytes = 50
	a.Add(&b)
	if a.Cycles[isa.ClassBranch] != 30 || a.DataHits != 12 || a.DMABytes != 150 {
		t.Errorf("Add: %+v", a)
	}
}

func TestStringFormat(t *testing.T) {
	var s CoreStats
	s.Charge(isa.ClassInt, 42)
	if !strings.Contains(s.String(), "busy=42") {
		t.Errorf("String: %q", s.String())
	}
}

func TestMethodCountersShares(t *testing.T) {
	var m MethodCounters
	if m.FPShare() != 0 || m.MemShare() != 0 {
		t.Error("empty counters should have zero shares")
	}
	m.Cycles[isa.ClassFloat] = 60
	m.Cycles[isa.ClassMainMem] = 30
	m.Cycles[isa.ClassInt] = 10
	if m.FPShare() != 0.6 {
		t.Errorf("FPShare: %f", m.FPShare())
	}
	if m.MemShare() != 0.3 {
		t.Errorf("MemShare: %f", m.MemShare())
	}
}

func TestMonitorHottest(t *testing.T) {
	mn := NewMonitor()
	mn.Counters(1).Cycles[isa.ClassInt] = 100
	mn.Counters(2).Cycles[isa.ClassInt] = 300
	mn.Counters(3).Cycles[isa.ClassInt] = 200
	hot := mn.Hottest(2)
	if len(hot) != 2 || hot[0] != 2 || hot[1] != 3 {
		t.Errorf("Hottest: %v", hot)
	}
	if len(mn.Hottest(10)) != 3 {
		t.Error("Hottest should cap at available methods")
	}
	// Deterministic tie-break by ID.
	mn.Counters(4).Cycles[isa.ClassInt] = 300
	hot = mn.Hottest(2)
	if hot[0] != 2 || hot[1] != 4 {
		t.Errorf("tie-break: %v", hot)
	}
}

func TestCountersIdentity(t *testing.T) {
	mn := NewMonitor()
	a := mn.Counters(7)
	b := mn.Counters(7)
	if a != b {
		t.Error("Counters should return the same instance per method")
	}
}
