package experiments

import (
	"fmt"
	"strings"

	"herajvm/internal/classfile"
	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// A1 sweeps the array block-transfer size the paper fixes at 1 KB
// ("a block of up to 1KB of neighbouring elements is also transferred",
// §3.2.1), asking whether 1 KB was the right choice per workload.
type A1 struct {
	SizesB []int
	Rows   []A1Row
}

// A1Row is one workload's series: performance relative to the 1 KB
// default.
type A1Row struct {
	Workload string
	RelPerf  []float64
}

// A1Sizes are the block sizes swept (bytes).
var A1Sizes = []int{128, 256, 512, 1024, 2048, 4096}

// RunA1 executes the block-size sweep on one SPE.
func RunA1(opt Options) (*A1, error) {
	out := &A1{SizesB: A1Sizes}
	for _, spec := range workloads.All() {
		scale := opt.scale(spec)
		var cycles []uint64
		var baseline uint64
		for _, bs := range A1Sizes {
			st, err := runOne(opt, spec, 1, scale, 1, func(cfg *vm.Config) {
				cfg.DataCache.ArrayBlock = uint32(bs)
			})
			if err != nil {
				return nil, err
			}
			opt.logf("a1 %s: block %d done", spec.Name, bs)
			cycles = append(cycles, st.Cycles)
			if bs == 1024 {
				baseline = st.Cycles
			}
		}
		row := A1Row{Workload: spec.Name}
		for _, c := range cycles {
			row.RelPerf = append(row.RelPerf, float64(baseline)/float64(c))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders A1.
func (a *A1) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A1: performance vs array block size (relative to 1 KB)\n")
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, s := range a.SizesB {
		fmt.Fprintf(&b, " %6dB", s)
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-12s", r.Workload)
		for _, p := range r.RelPerf {
			fmt.Fprintf(&b, " %7.3f", p)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// A2 measures migration cost: a thread repeatedly invokes an
// SPE-annotated method whose body does K units of work; as K grows the
// migration round trip amortises. The crossover tells how much work a
// method must do before migrating for it pays off — the granularity the
// paper's annotation scheme implicitly assumes.
type A2 struct {
	WorkUnits    []int
	CyclesPerOp  []float64 // migrating (annotated) version
	LocalCycles  []float64 // PPE-only version
	BreakEvenOps int       // first K where migrating wins
}

// A2Work are the per-call work sizes swept (inner loop iterations of
// double arithmetic).
var A2Work = []int{1, 8, 32, 128, 512, 2048, 8192}

// RunA2 builds the microbenchmark twice (annotated and not) per size.
func RunA2(opt Options) (*A2, error) {
	out := &A2{WorkUnits: A2Work, BreakEvenOps: -1}
	const calls = 40
	for _, k := range A2Work {
		mig, err := runMigrationBench(opt, k, calls, true)
		if err != nil {
			return nil, err
		}
		loc, err := runMigrationBench(opt, k, calls, false)
		if err != nil {
			return nil, err
		}
		opt.logf("a2: work %d done (mig=%d local=%d)", k, mig, loc)
		out.CyclesPerOp = append(out.CyclesPerOp, float64(mig)/calls)
		out.LocalCycles = append(out.LocalCycles, float64(loc)/calls)
		if out.BreakEvenOps < 0 && mig < loc {
			out.BreakEvenOps = k
		}
	}
	return out, nil
}

// runMigrationBench runs `calls` invocations of a method doing k units
// of double arithmetic, annotated RunOnSPE when annotate is set.
func runMigrationBench(opt Options, k, calls int, annotate bool) (uint64, error) {
	p := classfile.NewProgram()
	vm.Stdlib(p)
	c := p.NewClass("MigBench", nil)
	hot := c.NewMethod("hot", classfile.FlagStatic, classfile.Double, classfile.Double)
	if annotate {
		hot.Annotate(classfile.AnnRunOnSPE)
	}
	{
		a := hot.Asm()
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(2)
		a.Bind(loop)
		a.LoadI(2)
		a.ConstI(int32(k))
		a.IfICmpGE(done)
		a.LoadD(0)
		a.ConstD(1.0000001)
		a.MulD()
		a.ConstD(1e-12)
		a.AddD()
		a.StoreD(0)
		a.Inc(2, 1)
		a.Goto(loop)
		a.Bind(done)
		a.LoadD(0)
		a.Ret()
		a.MustBuild()
	}
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstD(1)
	a.StoreD(0)
	a.ConstI(0)
	a.StoreI(2)
	a.Bind(loop)
	a.LoadI(2)
	a.ConstI(int32(calls))
	a.IfICmpGE(done)
	a.LoadD(0)
	a.InvokeStatic(hot)
	a.StoreD(0)
	a.Inc(2, 1)
	a.Goto(loop)
	a.Bind(done)
	a.ConstI(1)
	a.Ret()
	a.MustBuild()

	cfg := vm.DefaultConfig()
	if opt.Scheduler != "" {
		cfg.Scheduler = opt.Scheduler
	}
	machine, err := vm.New(cfg, p)
	if err != nil {
		return 0, err
	}
	if _, err := machine.RunMain("MigBench", "main"); err != nil {
		return 0, err
	}
	return machine.Machine.MaxClock(), nil
}

// Table renders A2.
func (a *A2) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A2: PPE<->SPE migration amortisation (cycles per call)\n")
	fmt.Fprintf(&b, "%-12s", "work units")
	for _, k := range a.WorkUnits {
		fmt.Fprintf(&b, " %8d", k)
	}
	fmt.Fprintf(&b, "\n%-12s", "migrating")
	for _, c := range a.CyclesPerOp {
		fmt.Fprintf(&b, " %8.0f", c)
	}
	fmt.Fprintf(&b, "\n%-12s", "PPE-local")
	for _, c := range a.LocalCycles {
		fmt.Fprintf(&b, " %8.0f", c)
	}
	fmt.Fprintf(&b, "\nbreak-even at ~%d work units per call\n", a.BreakEvenOps)
	return b.String()
}

// A3 explores the adaptive data/code cache split the paper proposes as
// future work ("adaptive sizing of the code and data caches would likely
// benefit many applications", §4): with a fixed 192 KB local-store
// budget, which static split wins per workload — and does the runtime
// adaptive controller (vm.Config.AdaptiveCaches) find it on its own?
type A3 struct {
	Splits []string
	Rows   []A3Row
}

// A3Row is one workload's relative performance per split (vs the paper
// default 104/88), plus the adaptive controller's result starting from
// that default.
type A3Row struct {
	Workload string
	RelPerf  []float64
	Best     string
	// Adaptive is the controller's performance relative to the default
	// split; FinalSplit is where it settled.
	Adaptive   float64
	FinalSplit string
}

// a3Splits are (dataKB, codeKB) pairs summing to 192 KB.
var a3Splits = [][2]int{{160, 32}, {136, 56}, {104, 88}, {72, 120}, {40, 152}}

// RunA3 executes the split sweep on one SPE.
func RunA3(opt Options) (*A3, error) {
	out := &A3{}
	for _, sp := range a3Splits {
		out.Splits = append(out.Splits, fmt.Sprintf("%d/%d", sp[0], sp[1]))
	}
	for _, spec := range workloads.All() {
		scale := opt.scale(spec)
		var cycles []uint64
		var baseline uint64
		for _, sp := range a3Splits {
			st, err := runOne(opt, spec, 1, scale, 1, func(cfg *vm.Config) {
				cfg.DataCache.Size = uint32(sp[0]) << 10
				cfg.CodeCache.Size = uint32(sp[1]) << 10
			})
			if err != nil {
				return nil, err
			}
			opt.logf("a3 %s: split %d/%d done", spec.Name, sp[0], sp[1])
			cycles = append(cycles, st.Cycles)
			if sp[0] == 104 {
				baseline = st.Cycles
			}
		}
		row := A3Row{Workload: spec.Name}
		best, bestIdx := 0.0, 0
		for i, c := range cycles {
			rel := float64(baseline) / float64(c)
			row.RelPerf = append(row.RelPerf, rel)
			if rel > best {
				best, bestIdx = rel, i
			}
		}
		row.Best = out.Splits[bestIdx]

		// The adaptive controller, starting from the 104/88 default.
		var finalData, finalCode uint32
		ast, err := runOneInspect(opt, spec, 1, scale, 1, func(cfg *vm.Config) {
			cfg.DataCache.Size = 104 << 10
			cfg.CodeCache.Size = 88 << 10
			cfg.AdaptiveCaches = true
		}, func(v *vm.VM) {
			finalData, finalCode = v.CacheSplit(0)
		})
		if err != nil {
			return nil, err
		}
		opt.logf("a3 %s: adaptive done", spec.Name)
		row.Adaptive = float64(baseline) / float64(ast.Cycles)
		row.FinalSplit = fmt.Sprintf("%d/%d", finalData>>10, finalCode>>10)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders A3.
func (a *A3) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A3: static data/code cache splits of a 192 KB local-store budget\n")
	fmt.Fprintf(&b, "(performance relative to the paper's 104/88 split)\n")
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, s := range a.Splits {
		fmt.Fprintf(&b, " %8s", s)
	}
	fmt.Fprintf(&b, " %9s %9s %11s\n", "best", "adaptive", "settled at")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-12s", r.Workload)
		for _, p := range r.RelPerf {
			fmt.Fprintf(&b, " %8.3f", p)
		}
		fmt.Fprintf(&b, " %9s %9.3f %11s\n", r.Best, r.Adaptive, r.FinalSplit)
	}
	return b.String()
}

// A4 measures what the paper's JMM coherence protocol (purge on
// lock/volatile-read, flush on unlock/volatile-write, §3.2.1) costs, by
// unsoundly disabling it. Checksum validity is reported: an invalid
// checksum demonstrates why CellVM-style relaxation "presents ...
// correctness issues" (§5).
type A4 struct {
	Rows []A4Row
}

// A4Row is one workload's pair.
type A4Row struct {
	Workload     string
	CoherentCyc  uint64
	UnsoundCyc   uint64
	Overhead     float64 // coherent/unsound - 1
	UnsoundValid bool
}

// RunA4 runs each workload on 6 SPEs with and without coherence.
func RunA4(opt Options) (*A4, error) {
	out := &A4{}
	for _, spec := range workloads.All() {
		scale := opt.scale(spec)
		sound, err := runOne(opt, spec, minInt(opt.Threads, opt.MaxSPEs), scale, opt.MaxSPEs, nil)
		if err != nil {
			return nil, err
		}
		unsound, err := runOne(opt, spec, minInt(opt.Threads, opt.MaxSPEs), scale, opt.MaxSPEs, func(cfg *vm.Config) {
			cfg.UnsafeNoCoherence = true
		})
		if err != nil {
			return nil, err
		}
		opt.logf("a4 %s done", spec.Name)
		out.Rows = append(out.Rows, A4Row{
			Workload:     spec.Name,
			CoherentCyc:  sound.Cycles,
			UnsoundCyc:   unsound.Cycles,
			Overhead:     float64(sound.Cycles)/float64(unsound.Cycles) - 1,
			UnsoundValid: unsound.Valid,
		})
	}
	return out, nil
}

// Table renders A4.
func (a *A4) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A4: cost of the JMM purge/flush coherence protocol (6 SPEs)\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %10s %15s\n",
		"benchmark", "coherent cyc", "unsound cyc", "overhead", "unsound valid?")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-12s %14d %14d %9.2f%% %15v\n",
			r.Workload, r.CoherentCyc, r.UnsoundCyc, 100*r.Overhead, r.UnsoundValid)
	}
	return b.String()
}
