package experiments

import (
	"reflect"
	"testing"
)

// FuzzTrace: for any (trace name, seed, job count, gap), Arrivals
// either rejects the name cleanly or returns exactly n non-decreasing
// arrival cycles — and returns the identical script when called again,
// the determinism the serve and cluster replay gates stand on. Count
// and gap are folded into sane ranges: the property under test is the
// generator contract, not float overflow at astronomically large gaps.
func FuzzTrace(f *testing.F) {
	f.Add("poisson", uint64(1), uint(24), uint64(200_000))
	f.Add("uniform", uint64(7), uint(1), uint64(1))
	f.Add("bursty", uint64(42), uint(100), uint64(50_000))
	f.Add("diurnal", uint64(3), uint(16), uint64(300_000))
	f.Add("nosuch", uint64(0), uint(10), uint64(1000))
	f.Fuzz(func(t *testing.T, trace string, seed uint64, nRaw uint, gapRaw uint64) {
		n := int(nRaw % 512)
		gap := gapRaw % 1_000_000_000
		arrivals, err := Arrivals(trace, seed, n, gap)
		if err != nil {
			return
		}
		if len(arrivals) != n {
			t.Fatalf("Arrivals(%q, %d, %d, %d) returned %d cycles", trace, seed, n, gap, len(arrivals))
		}
		for i := 1; i < n; i++ {
			if arrivals[i] < arrivals[i-1] {
				t.Fatalf("%q trace went backwards at job %d: %d after %d",
					trace, i, arrivals[i], arrivals[i-1])
			}
		}
		again, err := Arrivals(trace, seed, n, gap)
		if err != nil || !reflect.DeepEqual(again, arrivals) {
			t.Fatalf("%q trace is not deterministic for seed %d", trace, seed)
		}
	})
}
