package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"herajvm/internal/cell"
	"herajvm/internal/kernel"
	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// KernelsSweep is the data-parallel offload ablation: every showcase
// kernel workload (matmul, nbody, kmeans) run scalar and kernel on
// each topology, with the checksums differentially checked against the
// pure-Go reference. The speedup column is simulated cycles — the
// claim under test is that fanning the iteration space out over the
// planner's chosen pool (the VPUs when present, SPEs otherwise) beats
// the sequential run of the identical body, with the staging DMA
// billed, not free.
type KernelsSweep struct {
	Rows []KernelsRow `json:"rows"`
}

// KernelsRow is one (workload, topology) cell of the sweep.
type KernelsRow struct {
	Workload string `json:"workload"`
	Topology string `json:"topology"`
	// Pool is the core kind the launch planner picks on this topology.
	Pool string `json:"pool"`
	// ScalarCycles/KernelCycles are the two variants' simulated
	// completion times; Speedup is their ratio.
	ScalarCycles uint64  `json:"scalar_cycles"`
	KernelCycles uint64  `json:"kernel_cycles"`
	Speedup      float64 `json:"speedup"`
	// Workers and DMABytes are the kernel job's fan-out width and the
	// staging DMA billed against it.
	Workers  uint64 `json:"workers"`
	DMABytes uint64 `json:"dma_bytes"`
	// Checksum is the (shared) checksum; Valid demands scalar, kernel
	// and the Go reference all agree.
	Checksum int32 `json:"checksum"`
	Valid    bool  `json:"valid"`
}

// DefaultKernelTopologies returns the ablation's machine shapes: the
// paper's PS3 baseline (the kernel falls back to the SPE pool) and the
// VPU-bearing showcase machine the planner routes onto the vector
// cores.
func DefaultKernelTopologies() []cell.Topology {
	return []cell.Topology{cell.PS3Topology(6), DefaultSimSpeedTopology()}
}

// runKernelVariant builds one variant of a kernel workload and runs it
// as a job on a fresh machine, so the job-level kernel accounting
// (workers, staging DMA) is observable.
func runKernelVariant(opt Options, k workloads.KernelSpec, kernelVariant bool,
	scale int, topo cell.Topology) (*vm.Job, error) {

	if err := opt.interrupted(); err != nil {
		return nil, err
	}
	prog, err := k.Build(scale)
	if err != nil {
		return nil, err
	}
	cfg := vm.DefaultConfig()
	cfg.Machine.Topology = topo
	if opt.Scheduler != "" {
		cfg.Scheduler = opt.Scheduler
	}
	machine, err := vm.New(cfg, prog)
	if err != nil {
		return nil, err
	}
	entry := k.ScalarClass
	if kernelVariant {
		entry = k.KernelClass
	}
	j, err := machine.SubmitJob(vm.JobSpec{Name: entry, Class: entry, Method: "main"})
	if err != nil {
		return nil, err
	}
	if err := machine.WaitJob(j); err != nil {
		return nil, fmt.Errorf("%s/%s (%s): %w", k.Name, entry, topo, err)
	}
	return j, nil
}

// poolKindFor replays the launch planner's pool choice for a topology
// (the same ChoosePool the VM calls), so the table can name the pool
// without instrumenting the launch path.
func poolKindFor(topo cell.Topology) string {
	pools := make([]kernel.Pool, 0, len(topo))
	for _, e := range topo {
		pools = append(pools, kernel.Pool{Kind: e.Kind, Cores: e.Count})
	}
	if p, ok := kernel.ChoosePool(pools); ok {
		return strings.ToLower(p.Kind.String())
	}
	return "none"
}

// RunKernels executes the kernel offload ablation: workloads x
// topologies, scalar vs kernel. Options.Topologies overrides the
// machine shapes; Options.ScaleOverride the per-workload scales.
func RunKernels(opt Options) (*KernelsSweep, error) {
	topos := DefaultKernelTopologies()
	if len(opt.Topologies) > 0 {
		topos = opt.Topologies
	}
	out := &KernelsSweep{}
	for _, k := range workloads.Kernels() {
		scale := k.DefaultScale
		if v, ok := opt.ScaleOverride[k.Name]; ok && v > 0 {
			scale = v
		}
		want := k.Reference(scale)
		for _, topo := range topos {
			sj, err := runKernelVariant(opt, k, false, scale, topo)
			if err != nil {
				return nil, err
			}
			kj, err := runKernelVariant(opt, k, true, scale, topo)
			if err != nil {
				return nil, err
			}
			sChk := int32(uint32(sj.Root().Result))
			kChk := int32(uint32(kj.Root().Result))
			row := KernelsRow{
				Workload:     k.Name,
				Topology:     topo.String(),
				Pool:         poolKindFor(topo),
				ScalarCycles: uint64(sj.Cycles()),
				KernelCycles: uint64(kj.Cycles()),
				Workers:      kj.Stats.KernelWorkers,
				DMABytes:     kj.Stats.KernelDMABytes,
				Checksum:     kChk,
				Valid:        sChk == want && kChk == want && kj.Stats.KernelLaunches == 1,
			}
			if row.KernelCycles > 0 {
				row.Speedup = float64(row.ScalarCycles) / float64(row.KernelCycles)
			}
			opt.logf("kernels %s on %s: %.2fx (%d scalar vs %d kernel cycles, %d workers on %s, %d B DMA, valid %v)",
				k.Name, row.Topology, row.Speedup, row.ScalarCycles, row.KernelCycles,
				row.Workers, row.Pool, row.DMABytes, row.Valid)
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Table renders the ablation as text. Every column is simulated state,
// so the output replays byte for byte.
func (s *KernelsSweep) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Data-parallel kernel offload: scalar vs Parallel.forRange (simulated cycles)\n")
	fmt.Fprintf(&b, "%-10s %-18s %-5s %14s %14s %8s %8s %10s %6s\n",
		"kernel", "topology", "pool", "scalar", "kernel", "speedup", "workers", "dma B", "valid")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-10s %-18s %-5s %14d %14d %7.2fx %8d %10d %6v\n",
			r.Workload, r.Topology, r.Pool, r.ScalarCycles, r.KernelCycles,
			r.Speedup, r.Workers, r.DMABytes, r.Valid)
	}
	return b.String()
}

// JSON renders the sweep in the BENCH_kernels.json shape.
func (s *KernelsSweep) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CheckKernelMin gates the sweep: every row must be differentially
// valid, every kernel run must have billed staging DMA on a local-store
// pool, and matmul's speedup on each VPU-bearing topology must clear
// min (the CI floor; the acceptance claim is >= 2x on ppe:1,spe:4,vpu:2).
func (s *KernelsSweep) CheckKernelMin(min float64) error {
	var problems []string
	var gated bool
	for _, r := range s.Rows {
		if !r.Valid {
			problems = append(problems,
				fmt.Sprintf("%s on %s: checksum mismatch between scalar, kernel and reference",
					r.Workload, r.Topology))
		}
		if r.DMABytes == 0 {
			problems = append(problems,
				fmt.Sprintf("%s on %s: kernel billed no staging DMA", r.Workload, r.Topology))
		}
		if r.Workload == "matmul" && r.Pool == "vpu" {
			gated = true
			if r.Speedup < min {
				problems = append(problems, fmt.Sprintf(
					"matmul on %s: speedup %.2fx below the %.2fx floor", r.Topology, r.Speedup, min))
			}
		}
	}
	if !gated {
		problems = append(problems, "no matmul row ran on a VPU pool — the gate never applied")
	}
	if len(problems) > 0 {
		return fmt.Errorf("kernels gate:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}
