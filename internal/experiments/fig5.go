package experiments

import (
	"fmt"
	"strings"

	"herajvm/internal/isa"
	"herajvm/internal/workloads"
)

// Fig5 reproduces Figure 5: the proportion of SPE cycles spent in each
// operation type when the benchmark runs on SPE cores. The paper's
// qualitative findings: mandelbrot performs significantly more floating
// point than the others; compress spends more of its execution accessing
// main memory.
type Fig5 struct {
	Rows []Fig5Row
}

// Fig5Row is one benchmark's stacked bar.
type Fig5Row struct {
	Workload string
	Shares   [isa.NumClasses]float64
	Valid    bool
}

// RunFig5 profiles each workload on one SPE (cycle-class accounting is
// the simulator's native measurement, exactly as the authors "using a
// simulator ... calculated the proportion of processor cycles").
func RunFig5(opt Options) (*Fig5, error) {
	out := &Fig5{}
	for _, spec := range workloads.All() {
		st, err := runOne(opt, spec, 1, opt.scale(spec), 1, nil)
		if err != nil {
			return nil, err
		}
		opt.logf("fig5 %s done", spec.Name)
		out.Rows = append(out.Rows, Fig5Row{Workload: spec.Name, Shares: st.SPEShares, Valid: st.Valid})
	}
	return out, nil
}

// Table renders the figure as text.
func (f *Fig5) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: proportion of SPE cycles per operation type\n")
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for c := 0; c < isa.NumClasses; c++ {
		fmt.Fprintf(&b, " %14s", isa.OpClass(c))
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-12s", r.Workload)
		for _, s := range r.Shares {
			fmt.Fprintf(&b, " %13.1f%%", 100*s)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
