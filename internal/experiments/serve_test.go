package experiments

import "testing"

// runSmallServe executes the churn driver at a reduced size (6 jobs,
// tight cadence) suitable for unit tests.
func runSmallServe(t *testing.T) *ServeSweep {
	t.Helper()
	opt := Quick()
	opt.ServeJobs = 6
	opt.ServeCadence = 300_000
	s, err := RunServe(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServeChurnDriver checks the serve sweep's structure and the
// claim it exists to demonstrate: under churn on a kind-imbalanced
// three-kind machine, cross-kind migration completes the job stream no
// later than stealing, which completes it no later than the bare
// calendar — and every job's checksum stays valid under every
// scheduler (schedulers are performance policies, never semantics).
func TestServeChurnDriver(t *testing.T) {
	s := runSmallServe(t)
	if len(s.Runs) != 3 {
		t.Fatalf("serve ran %d schedulers, want 3", len(s.Runs))
	}
	cal, steal, mig := s.Runs[0], s.Runs[1], s.Runs[2]
	for _, r := range s.Runs {
		if !r.AllValid {
			t.Errorf("%s run has invalid checksums", r.Scheduler)
		}
		if len(r.Jobs) != s.NumJobs {
			t.Errorf("%s run reports %d jobs, want %d", r.Scheduler, len(r.Jobs), s.NumJobs)
		}
		for _, j := range r.Jobs {
			if j.Cycles == 0 {
				t.Errorf("%s job %d has no per-job cycles", r.Scheduler, j.ID)
			}
		}
	}
	if steal.Makespan > cal.Makespan {
		t.Errorf("stealing worsened the churn makespan: %d vs calendar %d", steal.Makespan, cal.Makespan)
	}
	if mig.Makespan > steal.Makespan {
		t.Errorf("migration worsened the churn makespan: %d vs steal %d", mig.Makespan, steal.Makespan)
	}
	if mig.Migrations == 0 {
		t.Error("the migrate run performed no migrations under churn on an imbalanced topology")
	}
}

// TestServeReplayDeterminism replays the whole serve sweep and demands
// byte-identical tables and per-job cycle counts — the job-session
// determinism contract surfaced at the figure level (CI replays the
// full-size driver the same way).
func TestServeReplayDeterminism(t *testing.T) {
	a := runSmallServe(t)
	b := runSmallServe(t)
	if a.Table() != b.Table() {
		t.Errorf("serve tables diverged:\n--- first ---\n%s--- second ---\n%s", a.Table(), b.Table())
	}
	for r := range a.Runs {
		for i := range a.Runs[r].Jobs {
			if a.Runs[r].Jobs[i].Cycles != b.Runs[r].Jobs[i].Cycles {
				t.Errorf("%s job %d cycles diverged: %d vs %d", a.Runs[r].Scheduler, i,
					a.Runs[r].Jobs[i].Cycles, b.Runs[r].Jobs[i].Cycles)
			}
		}
	}
}
