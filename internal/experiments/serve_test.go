package experiments

import "testing"

// runSmallServe executes the open-loop driver at a reduced size (6
// jobs, uniform arrivals, roomy deadline) suitable for unit tests.
func runSmallServe(t *testing.T) *ServeSweep {
	t.Helper()
	opt := Quick()
	opt.ServeJobs = 6
	opt.ServeCadence = 300_000
	opt.ServeTrace = "uniform"
	opt.ServeDeadline = 1 << 62 // effectively no deadline pressure
	s, err := RunServe(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServeChurnDriver checks the serve sweep's structure and the
// claim it exists to demonstrate: under churn on a kind-imbalanced
// three-kind machine, cross-kind migration completes the job stream no
// later than stealing, which completes it no later than the bare
// calendar — and every job's checksum stays valid under every
// scheduler (schedulers are performance policies, never semantics).
// With a roomy deadline nothing is shed, so the shedding runs must
// match their non-shedding twins exactly — an admission pipeline that
// admits everything is a no-op.
func TestServeChurnDriver(t *testing.T) {
	s := runSmallServe(t)
	if len(s.Runs) != 6 {
		t.Fatalf("serve ran %d (scheduler, shedding) passes, want 6", len(s.Runs))
	}
	for i := 0; i < len(s.Runs); i += 2 {
		off, on := s.Runs[i], s.Runs[i+1]
		if off.Shedding || !on.Shedding {
			t.Fatalf("run order: want shed off/on pairs, got %v/%v", off.Shedding, on.Shedding)
		}
		if on.Shed != 0 {
			t.Errorf("%s shed %d jobs under a roomy deadline", on.Scheduler, on.Shed)
		}
		if off.Makespan != on.Makespan || off.P99 != on.P99 {
			t.Errorf("%s: an all-admitting pipeline changed the run: makespan %d vs %d, p99 %d vs %d",
				off.Scheduler, off.Makespan, on.Makespan, off.P99, on.P99)
		}
	}
	cal, steal, mig := s.Runs[0], s.Runs[2], s.Runs[4]
	for _, r := range s.Runs {
		if !r.AllValid {
			t.Errorf("%s run has invalid checksums", r.Scheduler)
		}
		if len(r.Jobs) != s.NumJobs {
			t.Errorf("%s run reports %d jobs, want %d", r.Scheduler, len(r.Jobs), s.NumJobs)
		}
		for _, j := range r.Jobs {
			if j.Verdict != "shed" && j.Latency == 0 {
				t.Errorf("%s job %d has no per-job latency", r.Scheduler, j.ID)
			}
		}
	}
	if steal.Makespan > cal.Makespan {
		t.Errorf("stealing worsened the churn makespan: %d vs calendar %d", steal.Makespan, cal.Makespan)
	}
	if mig.Makespan > steal.Makespan {
		t.Errorf("migration worsened the churn makespan: %d vs steal %d", mig.Makespan, steal.Makespan)
	}
	if mig.Migrations == 0 {
		t.Error("the migrate run performed no migrations under churn on an imbalanced topology")
	}
}

// TestServeReplayDeterminism replays the whole serve sweep and demands
// byte-identical tables and per-job latencies — the job-session
// determinism contract surfaced at the figure level (CI replays the
// full-size driver the same way).
func TestServeReplayDeterminism(t *testing.T) {
	a := runSmallServe(t)
	b := runSmallServe(t)
	if a.Table() != b.Table() {
		t.Errorf("serve tables diverged:\n--- first ---\n%s--- second ---\n%s", a.Table(), b.Table())
	}
	for r := range a.Runs {
		for i := range a.Runs[r].Jobs {
			if a.Runs[r].Jobs[i].Latency != b.Runs[r].Jobs[i].Latency {
				t.Errorf("%s job %d latency diverged: %d vs %d", a.Runs[r].Scheduler, i,
					a.Runs[r].Jobs[i].Latency, b.Runs[r].Jobs[i].Latency)
			}
		}
	}
}

// TestServeSheddingPaysAtOverload is the PR's acceptance claim: on an
// overloaded Poisson trace (arrivals far faster than service) on the
// kind-imbalanced default topology, enabling the admission pipeline —
// the deadline probe plus its queue-depth backstop — yields strictly
// higher goodput and strictly lower p99 latency than running
// everything, for every scheduler. Refusing work it cannot serve in
// time is how an open-loop system protects the jobs it can.
func TestServeSheddingPaysAtOverload(t *testing.T) {
	opt := Quick()
	opt.ServeJobs = 15
	opt.ServeCadence = 300_000 // overload: the whole script arrives in one burst
	opt.ServeTrace = "poisson"
	opt.ServeDeadline = 40_000_000
	opt.ServeMaxPending = 6
	s, err := RunServe(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(s.Runs); i += 2 {
		off, on := s.Runs[i], s.Runs[i+1]
		if on.Shed == 0 {
			t.Errorf("%s: nothing shed at overload", on.Scheduler)
		}
		if on.Goodput <= off.Goodput {
			t.Errorf("%s: shedding did not raise goodput: %.3f/s vs %.3f/s",
				on.Scheduler, on.Goodput, off.Goodput)
		}
		if on.P99 >= off.P99 {
			t.Errorf("%s: shedding did not lower p99: %d vs %d", on.Scheduler, on.P99, off.P99)
		}
	}
}
