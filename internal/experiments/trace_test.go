package experiments

import "testing"

// TestTraceRegistry: the discovery surface lists the four shipped
// generators, sorted, and unknown names error with the list.
func TestTraceRegistry(t *testing.T) {
	want := []string{"bursty", "diurnal", "poisson", "uniform"}
	got := Traces()
	if len(got) != len(want) {
		t.Fatalf("Traces() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Traces() = %v, want %v", got, want)
		}
	}
	if _, err := Arrivals("nope", 1, 4, 1000); err == nil {
		t.Error("unknown trace name accepted")
	}
}

// TestTraceArrivalsDeterministicAndMonotone: every generator is a pure
// function of (trace, seed, n, gap) — two generations are identical —
// and arrival cycles never decrease. A different seed moves the random
// traces.
func TestTraceArrivalsDeterministicAndMonotone(t *testing.T) {
	for _, name := range Traces() {
		a, err := Arrivals(name, 42, 200, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Arrivals(name, 42, 200, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: arrival %d diverged across replays: %d vs %d", name, i, a[i], b[i])
			}
			if i > 0 && a[i] < a[i-1] {
				t.Errorf("%s: arrivals not monotone at %d: %d < %d", name, i, a[i], a[i-1])
			}
		}
	}
	a, _ := Arrivals("poisson", 1, 50, 500_000)
	b, _ := Arrivals("poisson", 2, 50, 500_000)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("poisson arrivals identical across different seeds")
	}
}

// TestTraceMeanGap: every generator targets the configured long-run
// mean gap — over many arrivals the final cycle lands within 3x of
// n*gap on both sides (loose by design; the traces differ in
// burstiness, not rate).
func TestTraceMeanGap(t *testing.T) {
	const n, gap = 2000, 100_000
	for _, name := range Traces() {
		a, err := Arrivals(name, 7, n, gap)
		if err != nil {
			t.Fatal(err)
		}
		last := a[n-1]
		if last < n*gap/3 || last > n*gap*3 {
			t.Errorf("%s: %d arrivals at mean gap %d span %d cycles, outside [%d, %d]",
				name, n, gap, last, n*gap/3, n*gap*3)
		}
	}
}
