package experiments

import (
	"fmt"
	"strings"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/workloads"
)

// MigrateSweep compares the "steal" scheduler against the "migrate"
// scheduler — same-kind stealing plus cost-gated cross-kind migration —
// across machine topologies, with the default calendar as the common
// baseline. Checksums must agree across all three (a scheduler is a
// performance policy, never a semantics change); the interesting
// column is whether letting idle cores of one kind take over-queued
// work of another kind, when the cost model predicts a win, buys
// anything beyond what same-kind stealing already repairs.
type MigrateSweep struct {
	Rows []MigrateSweepRow
}

// MigrateSweepRow is one (workload, topology) pair's comparison.
type MigrateSweepRow struct {
	Workload string
	Topology string
	// CalendarCyc/StealCyc/MigrateCyc are completion times under each
	// scheduler; Speedup is StealCyc/MigrateCyc (>1 means cross-kind
	// migration beat stealing alone, =1 means the cost gate found
	// nothing worth moving).
	CalendarCyc uint64
	StealCyc    uint64
	MigrateCyc  uint64
	Speedup     float64
	// Steals counts the migrate run's same-kind steals; Migrations its
	// machine-wide cross-kind migrations (policy-driven moves plus the
	// cost-gated moves the scheduler itself decided — compare the
	// steal run's count in the -v log to separate them).
	Steals     uint64
	Migrations uint64
	// Match reports all three runs were checksum-valid and agreed.
	Match bool
}

// DefaultMigrateTopologies returns the sweep's machine shapes: the
// acceptance topology — a balanced-looking but kind-imbalanced
// 2/2/2 mix where SPE-pinned work overloads one pool while two other
// kinds idle — and the SPE-heavy three-kind machine.
func DefaultMigrateTopologies() []cell.Topology {
	return []cell.Topology{
		{{Kind: isa.PPE, Count: 2}, {Kind: isa.SPE, Count: 2}, {Kind: isa.VPU, Count: 2}},
		{{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 4}, {Kind: isa.VPU, Count: 2}},
	}
}

// RunMigrateSweep executes the workloads x topologies x {calendar,
// steal, migrate} matrix. Options.Topologies overrides the shapes;
// Options.Scheduler is ignored (all three schedulers run by
// construction).
func RunMigrateSweep(opt Options) (*MigrateSweep, error) {
	topos := DefaultMigrateTopologies()
	if len(opt.Topologies) > 0 {
		topos = opt.Topologies
	}
	out := &MigrateSweep{}
	for _, spec := range workloads.All() {
		scale := opt.scale(spec)
		for _, topo := range topos {
			threads := topo.DefaultWorkers()

			var runs [3]RunStats
			for i, name := range []string{"calendar", "steal", "migrate"} {
				o := opt
				o.Scheduler = name
				st, err := runOnTopology(o, spec, threads, scale, topo, nil, nil)
				if err != nil {
					return nil, err
				}
				runs[i] = st
			}
			cal, st, mig := runs[0], runs[1], runs[2]
			opt.logf("migrate %s on %s: calendar=%d steal=%d migrate=%d (%d steals, migrations %d vs %d under steal)",
				spec.Name, topo, cal.Cycles, st.Cycles, mig.Cycles,
				mig.Steals, mig.AllMigrations, st.AllMigrations)

			out.Rows = append(out.Rows, MigrateSweepRow{
				Workload:    spec.Name,
				Topology:    topo.String(),
				CalendarCyc: cal.Cycles,
				StealCyc:    st.Cycles,
				MigrateCyc:  mig.Cycles,
				Speedup:     float64(st.Cycles) / float64(mig.Cycles),
				Steals:      mig.Steals,
				Migrations:  mig.AllMigrations,
				Match: cal.Valid && st.Valid && mig.Valid &&
					cal.Checksum == st.Checksum && st.Checksum == mig.Checksum,
			})
		}
	}
	return out, nil
}

// Table renders the sweep as text.
func (s *MigrateSweep) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Migrate ablation: same-kind stealing vs cost-gated cross-kind migration\n")
	fmt.Fprintf(&b, "%-12s %-18s %14s %14s %14s %8s %7s %5s %6s\n",
		"benchmark", "topology", "calendar cyc", "steal cyc", "migrate cyc", "speedup", "steals", "mig", "match")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-12s %-18s %14d %14d %14d %7.3fx %7d %5d %6v\n",
			r.Workload, r.Topology, r.CalendarCyc, r.StealCyc, r.MigrateCyc,
			r.Speedup, r.Steals, r.Migrations, r.Match)
	}
	return b.String()
}
