package experiments

import (
	"fmt"
	"strings"

	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// CacheSweep holds a Figure 6 or Figure 7 style sweep: per workload, the
// software-cache hit rate and the performance relative to the largest
// (default) size, as the data or code cache shrinks.
type CacheSweep struct {
	Figure  string
	Axis    string
	SizesKB []int
	Rows    []CacheSweepRow
}

// CacheSweepRow is one benchmark's pair of series.
type CacheSweepRow struct {
	Workload string
	HitRate  []float64
	RelPerf  []float64 // cycles(default size) / cycles(size)
	Valid    bool
}

// Fig6Sizes are the paper's data-cache x-axis points (KB). The paper
// sweeps down from the 104 KB default; 0 is unbuildable (every access
// would DMA) and is omitted as in our Figure 6 reading of the plot's
// leftmost usable points.
var Fig6Sizes = []int{8, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104}

// Fig7Sizes are the paper's code-cache x-axis points (KB).
var Fig7Sizes = []int{8, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88}

// RunFig6 sweeps the SPE software data-cache size on one SPE.
// Paper shape: compress has a consistently lower hit rate and degrades
// steeply; mpegaudio is relatively insensitive to data-cache size.
func RunFig6(opt Options) (*CacheSweep, error) {
	return runCacheSweep(opt, "Figure 6", "data cache KB", Fig6Sizes,
		func(cfg *vm.Config, kb int) { cfg.DataCache.Size = uint32(kb) << 10 })
}

// RunFig7 sweeps the SPE software code-cache size on one SPE.
// Paper shape: mpegaudio is very susceptible to code-cache reduction;
// compress and mandelbrot barely react.
func RunFig7(opt Options) (*CacheSweep, error) {
	return runCacheSweep(opt, "Figure 7", "code cache KB", Fig7Sizes,
		func(cfg *vm.Config, kb int) { cfg.CodeCache.Size = uint32(kb) << 10 })
}

func runCacheSweep(opt Options, figure, axis string, sizes []int,
	set func(cfg *vm.Config, kb int)) (*CacheSweep, error) {

	out := &CacheSweep{Figure: figure, Axis: axis, SizesKB: sizes}
	for _, spec := range workloads.All() {
		scale := opt.scale(spec)
		row := CacheSweepRow{Workload: spec.Name, Valid: true}
		var cycles []uint64
		for _, kb := range sizes {
			st, err := runOne(opt, spec, 1, scale, 1, func(cfg *vm.Config) {
				set(cfg, kb)
			})
			if err != nil {
				return nil, err
			}
			opt.logf("%s %s: %d KB done (%d cycles)", figure, spec.Name, kb, st.Cycles)
			cycles = append(cycles, st.Cycles)
			hit := st.DataHitRate
			if figure == "Figure 7" {
				hit = st.CodeHitRate
			}
			row.HitRate = append(row.HitRate, hit)
			row.Valid = row.Valid && st.Valid
		}
		base := cycles[len(cycles)-1] // largest size = paper's baseline
		for _, c := range cycles {
			row.RelPerf = append(row.RelPerf, float64(base)/float64(c))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders the sweep as two text tables (hit rate, relative
// performance), mirroring the paper's paired plots.
func (s *CacheSweep) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: hit rate vs %s\n", s.Figure, s.Axis)
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, kb := range s.SizesKB {
		fmt.Fprintf(&b, " %6d", kb)
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-12s", r.Workload)
		for _, h := range r.HitRate {
			fmt.Fprintf(&b, " %6.3f", h)
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "%s: performance relative to %d KB\n", s.Figure, s.SizesKB[len(s.SizesKB)-1])
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, kb := range s.SizesKB {
		fmt.Fprintf(&b, " %6d", kb)
	}
	fmt.Fprintf(&b, " %7s\n", "valid")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-12s", r.Workload)
		for _, p := range r.RelPerf {
			fmt.Fprintf(&b, " %6.3f", p)
		}
		fmt.Fprintf(&b, " %7v\n", r.Valid)
	}
	return b.String()
}
