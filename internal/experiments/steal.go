package experiments

import (
	"fmt"
	"strings"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/workloads"
)

// StealSweep compares the two built-in schedulers — the default event
// calendar and the calendar with same-kind work stealing layered on top
// — across machine topologies. Checksums must agree (the scheduler is a
// performance policy, never a semantics change); the interesting column
// is how much run-time stealing repairs the imbalance that
// placement-time balancing leaves behind.
type StealSweep struct {
	Rows []StealSweepRow
}

// StealSweepRow is one (workload, topology) pair's comparison.
type StealSweepRow struct {
	Workload string
	Topology string
	// CalendarCyc/StealCyc are completion times under each scheduler;
	// Speedup is CalendarCyc/StealCyc (>1 means stealing helped).
	CalendarCyc uint64
	StealCyc    uint64
	Speedup     float64
	// Steals counts the steal events the "steal" run performed.
	Steals uint64
	// Match reports both runs were checksum-valid and agreed.
	Match bool
}

// DefaultStealTopologies returns the sweep's machine shapes: the PS3
// default and the three-kind machine (two pools of same-kind siblings
// to steal within).
func DefaultStealTopologies() []cell.Topology {
	return []cell.Topology{
		cell.PS3Topology(6),
		{{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 4}, {Kind: isa.VPU, Count: 2}},
	}
}

// RunStealSweep executes the workloads x topologies x {calendar, steal}
// matrix. Options.Topologies overrides the shapes; Options.Scheduler is
// ignored (both schedulers run by construction).
func RunStealSweep(opt Options) (*StealSweep, error) {
	topos := DefaultStealTopologies()
	if len(opt.Topologies) > 0 {
		topos = opt.Topologies
	}
	out := &StealSweep{}
	for _, spec := range workloads.All() {
		scale := opt.scale(spec)
		for _, topo := range topos {
			threads := topo.DefaultWorkers()

			calOpt := opt
			calOpt.Scheduler = "calendar"
			cal, err := runOnTopology(calOpt, spec, threads, scale, topo, nil, nil)
			if err != nil {
				return nil, err
			}
			stealOpt := opt
			stealOpt.Scheduler = "steal"
			st, err := runOnTopology(stealOpt, spec, threads, scale, topo, nil, nil)
			if err != nil {
				return nil, err
			}
			opt.logf("steal %s on %s: calendar=%d steal=%d (%d steals)",
				spec.Name, topo, cal.Cycles, st.Cycles, st.Steals)

			out.Rows = append(out.Rows, StealSweepRow{
				Workload:    spec.Name,
				Topology:    topo.String(),
				CalendarCyc: cal.Cycles,
				StealCyc:    st.Cycles,
				Speedup:     float64(cal.Cycles) / float64(st.Cycles),
				Steals:      st.Steals,
				Match:       cal.Valid && st.Valid && cal.Checksum == st.Checksum,
			})
		}
	}
	return out, nil
}

// Table renders the sweep as text.
func (s *StealSweep) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Steal ablation: calendar vs same-kind work-stealing scheduler\n")
	fmt.Fprintf(&b, "%-12s %-18s %14s %14s %8s %7s %6s\n",
		"benchmark", "topology", "calendar cyc", "steal cyc", "speedup", "steals", "match")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-12s %-18s %14d %14d %7.3fx %7d %6v\n",
			r.Workload, r.Topology, r.CalendarCyc, r.StealCyc, r.Speedup, r.Steals, r.Match)
	}
	return b.String()
}
