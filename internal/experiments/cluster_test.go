package experiments

import (
	"strings"
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
)

// runSmallCluster executes the cluster figure at a reduced size: two
// small shards, 6 jobs, uniform arrivals. Wall clocks still tick (the
// speedup is not asserted — this container may have one core) but all
// the deterministic columns are checked.
func runSmallCluster(t *testing.T) *ClusterSweep {
	t.Helper()
	opt := Quick()
	opt.ServeJobs = 6
	opt.ServeCadence = 300_000
	opt.ServeTrace = "uniform"
	opt.ShardTopos = []cell.Topology{
		{{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 2}},
		{{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 2}},
	}
	opt.NoWall = true
	s, err := RunCluster(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestClusterFigure checks the sweep's structure and its determinism
// claims: every pass (serial, parallel, every stride) completes the
// whole script with valid checksums and a merged job table
// byte-identical to the serial reference.
func TestClusterFigure(t *testing.T) {
	s := runSmallCluster(t)
	if len(s.Shards) != 2 {
		t.Fatalf("fleet size %d, want 2", len(s.Shards))
	}
	if len(s.StrideRuns) != len(clusterStrides)-1 {
		t.Fatalf("stride table has %d rows, want %d", len(s.StrideRuns), len(clusterStrides)-1)
	}
	runs := append([]ClusterRun{s.Serial, s.Parallel}, s.StrideRuns...)
	for _, r := range runs {
		if r.Completed+r.Shed != s.NumJobs {
			t.Errorf("%s (stride %d): %d completed + %d shed != %d jobs",
				r.Mode, r.Stride, r.Completed, r.Shed, s.NumJobs)
		}
		if !r.AllValid {
			t.Errorf("%s (stride %d): checksum mismatch", r.Mode, r.Stride)
		}
		if !r.Identical {
			t.Errorf("%s (stride %d): merged job table diverged from serial reference", r.Mode, r.Stride)
		}
		if len(r.ShardJobs) != 2 || len(r.ShardUtil) != 2 {
			t.Errorf("%s (stride %d): per-shard columns sized %d/%d, want 2/2",
				r.Mode, r.Stride, len(r.ShardJobs), len(r.ShardUtil))
		}
	}
	// Finer strides take more barriers — the cost axis of the table.
	if s.Parallel.Barriers <= 0 {
		t.Error("parallel pass took no barriers")
	}
	// CheckSpeedup's divergence arm must pass on identical runs when the
	// speedup floor is waived.
	if err := s.CheckSpeedup(0); err != nil {
		t.Errorf("gate with no floor rejected a clean sweep: %v", err)
	}
	// And an unreachable floor must trip it.
	if err := s.CheckSpeedup(1e9); err == nil {
		t.Error("gate with an unreachable floor passed")
	}
}

// TestClusterTableReplays checks the figure's NoWall rendering is
// byte-identical across two full executions — the CI determinism
// gate's contract, asserted in-process.
func TestClusterTableReplays(t *testing.T) {
	a := runSmallCluster(t).Table()
	b := runSmallCluster(t).Table()
	if a != b {
		t.Fatalf("-nowall cluster table not replayable:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
	if strings.Contains(a, "wall") || strings.Contains(a, "speedup") {
		t.Fatalf("-nowall table leaks host timings:\n%s", a)
	}
}

// TestClusterJSONShape checks the BENCH_cluster.json artifact carries
// the gate's inputs.
func TestClusterJSONShape(t *testing.T) {
	out, err := runSmallCluster(t).JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"speedup"`, `"host_cpus"`, `"stride_runs"`, `"shard_util"`, `"identical"`} {
		if !strings.Contains(string(out), key) {
			t.Errorf("BENCH_cluster.json missing %s", key)
		}
	}
}
