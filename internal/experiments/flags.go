package experiments

import (
	"flag"
	"strings"

	"herajvm/internal/cell"
)

// ServeFlags is the shared CLI surface of the open-loop serve driver
// and the cluster layer above it, so `herabench` and `herajvm` expose
// identical -jobs/-cadence/-trace/-seed/-deadline/-maxpending/-shards/
// -stride knobs with identical semantics and help text, the way
// hera.Schedulers() already unifies -sched discovery.
type ServeFlags struct {
	Jobs       int
	Cadence    uint64
	Trace      string
	Seed       uint64
	Deadline   uint64
	MaxPending int
	// Workloads restricts the serve/cluster job mix to a comma-separated
	// list of workload names; kernel workloads (matmul, nbody, kmeans)
	// are accepted and enter the mix as forRange launches.
	Workloads string
	// Shards is the cluster fleet spec, one topology per shard
	// ("ppe:1,spe:6;ppe:1,spe:4,vpu:2"); Stride the epoch-barrier
	// stride in cycles.
	Shards string
	Stride uint64
	// Handoff selects the cluster figure's hand-off arm: the same
	// arrival script with and without inter-shard job hand-off on an
	// imbalanced fleet, plus a replay of the hand-off pass.
	Handoff bool
}

// BindServeFlags registers the serve driver's flags on a flag set and
// returns the struct they fill. Zero values defer to the driver's
// defaults (RunServe).
func BindServeFlags(fs *flag.FlagSet) *ServeFlags {
	f := &ServeFlags{}
	fs.IntVar(&f.Jobs, "jobs", 0, "serve: number of jobs the arrival trace emits (0 = default)")
	fs.Uint64Var(&f.Cadence, "cadence", 0, "serve: mean inter-arrival gap in cycles (0 = default)")
	fs.StringVar(&f.Trace, "trace", "", "serve: arrival trace, one of "+strings.Join(Traces(), "|")+" (default poisson)")
	fs.Uint64Var(&f.Seed, "seed", 0, "serve: arrival-trace PRNG seed (0 = default)")
	fs.Uint64Var(&f.Deadline, "deadline", 0, "serve: per-job completion deadline in cycles relative to admission (0 = default)")
	fs.IntVar(&f.MaxPending, "maxpending", 0, "serve: admission queue-depth backstop for shedding runs (0 = default)")
	fs.StringVar(&f.Workloads, "workloads", "",
		`serve/cluster: comma-separated job-mix workloads, e.g. "compress,matmul,kmeans" ("" = the paper mix)`)
	fs.StringVar(&f.Shards, "shards", "",
		`cluster: semicolon-separated per-shard machine shapes, e.g. "ppe:1,spe:6;ppe:1,spe:4,vpu:2" ("" = four default serve shards)`)
	fs.Uint64Var(&f.Stride, "stride", 0, "cluster: epoch-barrier stride in cycles (0 = default)")
	fs.BoolVar(&f.Handoff, "handoff", false,
		"cluster: run the inter-shard hand-off arm (imbalanced fleet, hand-off off vs on, replay check)")
	return f
}

// Apply copies the bound flag values into experiment options. The
// error is a malformed -shards list.
func (f *ServeFlags) Apply(o *Options) error {
	o.ServeJobs = f.Jobs
	o.ServeCadence = f.Cadence
	o.ServeTrace = f.Trace
	o.ServeSeed = f.Seed
	o.ServeDeadline = f.Deadline
	o.ServeMaxPending = f.MaxPending
	if f.Workloads != "" {
		o.ServeWorkloads = strings.Split(f.Workloads, ",")
	}
	o.EpochStride = f.Stride
	o.Handoff = f.Handoff
	if f.Shards != "" {
		list, err := cell.ParseTopologyList(f.Shards)
		if err != nil {
			return err
		}
		o.ShardTopos = list
	}
	return nil
}
