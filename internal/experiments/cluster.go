package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/cluster"
	"herajvm/internal/core"
	"herajvm/internal/isa"
	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// The cluster figure measures the sharding layer end to end: one
// open-loop arrival script (the serve driver's traces) played through
// a drain-routed dispatcher over N System shards, first with the
// shards advanced serially on one goroutine, then with each shard on
// its own goroutine under the epoch barrier — the same simulation
// twice, differing only in host parallelism. It reports the SLO view
// of the merged result stream (goodput, p50/p95/p99, shed count),
// per-shard routing and utilization, the wall-clock speedup of
// parallel over serial (the number the CI gate asserts ≥2x at 4
// shards on a 4-core runner), and an epoch-stride sensitivity table:
// barrier count, speedup and fidelity per stride, so the stride
// default is tuned from measurements, not guesses. Fidelity means the
// merged job table is byte-identical — serial vs parallel, replay vs
// replay, stride vs stride.

const (
	defaultClusterShards   = 4
	defaultClusterJobs     = 24
	defaultClusterCadence  = 200_000
	defaultClusterDeadline = 100_000_000
	// defaultClusterScheduler is the per-shard scheduler: migrate is
	// the strongest serving scheduler (PR 5's serve sweep), and the
	// cluster story is "many of the best machines".
	defaultClusterScheduler = "migrate"
	// The hand-off arm's scenario, tuned empirically on the default
	// imbalanced fleet: a bursty script whose spikes land jobs on the
	// weak shard, a deadline tight enough that those jobs slip there
	// but roomy enough that the strong shard can still rescue them,
	// and an epoch stride finer than DefaultEpochStride so rebalance
	// decisions come often enough to matter.
	defaultHandoffTrace    = "bursty"
	defaultHandoffJobs     = 16
	defaultHandoffCadence  = 100_000
	defaultHandoffDeadline = 60_000_000
	defaultHandoffStride   = 500_000
)

// clusterStrides are the epoch strides the sensitivity table visits
// (the middle one is cluster.DefaultEpochStride).
var clusterStrides = []cell.Clock{500_000, cluster.DefaultEpochStride, 8_000_000}

// ClusterRun is one full pass of the arrival script over the fleet.
type ClusterRun struct {
	// Mode is "serial" or "parallel"; Stride the epoch stride used.
	Mode   string     `json:"mode"`
	Stride cell.Clock `json:"stride_cycles"`
	// Barriers counts epoch barriers the pass took.
	Barriers int `json:"barriers"`
	// WallSecs is host seconds for the pass (submission through drain).
	WallSecs float64 `json:"wall_secs"`
	// Makespan is the simulated cycle the last job completed.
	Makespan cell.Clock `json:"makespan_cycles"`
	// P50/P95/P99 are admission→completion latency percentiles over
	// completed jobs; Completed/Shed/Met split the script.
	P50       cell.Clock `json:"p50_cycles"`
	P95       cell.Clock `json:"p95_cycles"`
	P99       cell.Clock `json:"p99_cycles"`
	Completed int        `json:"completed"`
	Shed      int        `json:"shed"`
	Met       int        `json:"met"`
	// Goodput is deadline-met jobs per simulated second.
	Goodput float64 `json:"goodput_per_sec"`
	// ShardJobs and ShardUtil are per-shard routing counts and core
	// utilization — the dispatcher's balance, made visible.
	ShardJobs []int     `json:"shard_jobs"`
	ShardUtil []float64 `json:"shard_util"`
	// Handoffs counts inter-shard job hand-offs the pass performed
	// (always 0 with hand-off disabled).
	Handoffs int `json:"handoffs"`
	// AllValid reports every completed job's checksum matched its Go
	// reference.
	AllValid bool `json:"all_valid"`
	// Identical reports the pass's merged job table was byte-identical
	// to the serial reference pass — the determinism contract, checked
	// on every pass.
	Identical bool `json:"identical"`

	jobsTable string
}

// ClusterSweep is the figure: the serial reference pass, the parallel
// pass the speedup is quoted from, and the stride table.
type ClusterSweep struct {
	Shards    []string   `json:"shards"`
	Scheduler string     `json:"scheduler"`
	NumJobs   int        `json:"jobs"`
	Cadence   uint64     `json:"cadence_cycles"`
	Trace     string     `json:"trace"`
	Seed      uint64     `json:"seed"`
	Deadline  cell.Clock `json:"deadline_cycles"`
	// HostCPUs is runtime.NumCPU() — the ceiling any wall-clock
	// speedup is read against.
	HostCPUs int `json:"host_cpus"`
	// Serial and Parallel are the two passes at the default stride;
	// Speedup is Serial.WallSecs / Parallel.WallSecs.
	Serial   ClusterRun `json:"serial"`
	Parallel ClusterRun `json:"parallel"`
	Speedup  float64    `json:"speedup"`
	// StrideRuns are parallel passes at the other strides (empty on
	// the hand-off arm: barrier placement decides freeze points there,
	// so stride invariance is deliberately not claimed).
	StrideRuns []ClusterRun `json:"stride_runs"`
	// HandoffArm marks the hand-off arm: HandoffOn is the parallel
	// pass with inter-shard hand-off enabled on the same fleet and
	// script as Serial/Parallel (which stay hand-off-free as the
	// baseline). Its Identical flag reports an in-process replay of
	// the pass reproduced the merged job table byte for byte.
	HandoffArm bool       `json:"handoff_arm,omitempty"`
	HandoffOn  ClusterRun `json:"handoff_on,omitempty"`
	// NoWall omits host-timing columns from Table so the output is
	// byte-for-byte replayable.
	NoWall bool `json:"-"`
}

// DefaultClusterShards returns the default fleet: four serve-shaped
// shards (ppe:1,spe:4,vpu:2 each).
func DefaultClusterShards() []cell.Topology {
	topos := make([]cell.Topology, defaultClusterShards)
	for i := range topos {
		topos[i] = DefaultServeTopology()
	}
	return topos
}

// DefaultHandoffShards returns the hand-off arm's imbalanced fleet: a
// weak PPE-only shard next to a strong 1-PPE + 6-SPE shard. The
// capacity-blind admission probe splits bursts roughly evenly between
// them, overloading the weak shard — the misrouting the hand-off pass
// exists to repair.
func DefaultHandoffShards() []cell.Topology {
	return []cell.Topology{
		{{Kind: isa.PPE, Count: 1}},
		{{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 6}},
	}
}

// RunCluster executes the cluster figure. Options: ShardTopos sets the
// fleet (default four serve shards), Scheduler the per-shard scheduler
// (default migrate), EpochStride the default stride, and the serve
// flags (jobs/cadence/trace/seed/deadline) the arrival script.
func RunCluster(opt Options) (*ClusterSweep, error) {
	topos := opt.ShardTopos
	if len(topos) == 0 {
		if opt.Handoff {
			topos = DefaultHandoffShards()
		} else {
			topos = DefaultClusterShards()
		}
	}
	scheduler := opt.Scheduler
	if scheduler == "" {
		scheduler = defaultClusterScheduler
	}
	numJobs := opt.ServeJobs
	if numJobs <= 0 {
		numJobs = defaultClusterJobs
		if opt.Handoff {
			numJobs = defaultHandoffJobs
		}
	}
	cadence := opt.ServeCadence
	if cadence == 0 {
		cadence = defaultClusterCadence
		if opt.Handoff {
			cadence = defaultHandoffCadence
		}
	}
	trace := opt.ServeTrace
	if trace == "" {
		trace = defaultServeTrace
		if opt.Handoff {
			trace = defaultHandoffTrace
		}
	}
	seed := opt.ServeSeed
	if seed == 0 {
		seed = defaultServeSeed
	}
	deadline := opt.ServeDeadline
	if deadline == 0 {
		deadline = defaultClusterDeadline
		if opt.Handoff {
			deadline = defaultHandoffDeadline
		}
	}
	stride := cluster.DefaultEpochStride
	if opt.Handoff {
		stride = defaultHandoffStride
	}
	if opt.EpochStride != 0 {
		stride = cell.Clock(opt.EpochStride)
	}

	arrivals, err := Arrivals(trace, seed, numJobs, cadence)
	if err != nil {
		return nil, err
	}
	entries, err := serveEntries(opt, numJobs)
	if err != nil {
		return nil, err
	}

	out := &ClusterSweep{Scheduler: scheduler, NumJobs: numJobs, Cadence: cadence,
		Trace: trace, Seed: seed, Deadline: deadline,
		HostCPUs: runtime.NumCPU(), NoWall: opt.NoWall}
	for _, t := range topos {
		out.Shards = append(out.Shards, t.String())
	}

	play := func(serial, handoff bool, s cell.Clock) (ClusterRun, error) {
		if err := opt.interrupted(); err != nil {
			return ClusterRun{}, err
		}
		return playCluster(opt, topos, scheduler, entries, arrivals, deadline, s, serial, handoff)
	}

	if out.Serial, err = play(true, false, stride); err != nil {
		return nil, err
	}
	out.Serial.Identical = true // the reference pass
	opt.logf("cluster serial: %.3fs, %d barriers, goodput=%.2f/s", out.Serial.WallSecs,
		out.Serial.Barriers, out.Serial.Goodput)
	if out.Parallel, err = play(false, false, stride); err != nil {
		return nil, err
	}
	out.Parallel.Identical = out.Parallel.jobsTable == out.Serial.jobsTable
	if out.Parallel.WallSecs > 0 {
		out.Speedup = out.Serial.WallSecs / out.Parallel.WallSecs
	}
	opt.logf("cluster parallel: %.3fs (%.2fx on %d CPUs), identical=%v",
		out.Parallel.WallSecs, out.Speedup, out.HostCPUs, out.Parallel.Identical)

	if opt.Handoff {
		// The hand-off arm: the same script with hand-off on, then an
		// in-process replay — the determinism half of the acceptance
		// gate. Its Identical flag means "replay reproduced the merged
		// job table", not "matches the hand-off-free serial pass" (a
		// different schedule by design). Stride runs are skipped:
		// barrier placement decides freeze points, so stride invariance
		// is not claimed for hand-off.
		out.HandoffArm = true
		if out.HandoffOn, err = play(false, true, stride); err != nil {
			return nil, err
		}
		replay, err := play(false, true, stride)
		if err != nil {
			return nil, err
		}
		out.HandoffOn.Identical = out.HandoffOn.jobsTable == replay.jobsTable
		opt.logf("cluster handoff: %d hand-offs, met %d vs %d, p99 %d vs %d, replay identical=%v",
			out.HandoffOn.Handoffs, out.HandoffOn.Met, out.Parallel.Met,
			out.HandoffOn.P99, out.Parallel.P99, out.HandoffOn.Identical)
		return out, nil
	}

	for _, s := range clusterStrides {
		if s == stride {
			continue
		}
		run, err := play(false, false, s)
		if err != nil {
			return nil, err
		}
		// Fidelity: barrier placement must not perturb the simulation —
		// the merged job table is stride-invariant by contract.
		run.Identical = run.jobsTable == out.Serial.jobsTable
		opt.logf("cluster stride %d: %d barriers, %.3fs, identical=%v",
			s, run.Barriers, run.WallSecs, run.Identical)
		out.StrideRuns = append(out.StrideRuns, run)
	}
	sort.Slice(out.StrideRuns, func(a, b int) bool {
		return out.StrideRuns[a].Stride < out.StrideRuns[b].Stride
	})
	return out, nil
}

// serveEntries builds the round-robin workload mix the serve and
// cluster drivers share.
func serveEntries(opt Options, numJobs int) ([]workloads.MixEntry, error) {
	specs := workloads.All()
	if len(opt.ServeWorkloads) > 0 {
		specs = specs[:0:0]
		for _, name := range opt.ServeWorkloads {
			spec, err := workloads.ByName(name)
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec)
		}
	}
	entries := make([]workloads.MixEntry, numJobs)
	for i := range entries {
		spec := specs[i%len(specs)]
		scale := serveScales[spec.Name]
		if v, ok := opt.ScaleOverride[spec.Name]; ok && v > 0 {
			scale = v
		}
		entries[i] = workloads.MixEntry{Spec: spec, Threads: serveThreads, Scale: scale}
	}
	return entries, nil
}

// playCluster boots one fleet and plays the arrival script through the
// dispatcher, timing submission through drain (boot and program
// building excluded, as in the simspeed sweep).
func playCluster(opt Options, topos []cell.Topology, scheduler string,
	entries []workloads.MixEntry, arrivals []cell.Clock,
	deadline, stride cell.Clock, serial, handoff bool) (ClusterRun, error) {

	shards := make([]cluster.ShardConfig, len(topos))
	for i, topo := range topos {
		cfg := vm.DefaultConfig()
		cfg.Machine.Topology = topo
		cfg.Scheduler = scheduler
		shards[i] = cluster.ShardConfig{
			Cfg:   cfg,
			Build: func() (*classfile.Program, error) { return workloads.BuildMix(entries) },
		}
	}
	cl, err := cluster.Boot(cluster.Config{
		EpochStride: stride, Serial: serial, Shed: true, Handoff: handoff,
		Ctx: opt.Ctx}, shards)
	if err != nil {
		return ClusterRun{}, err
	}

	mode := "parallel"
	if serial {
		mode = "serial"
	}
	if handoff {
		mode = "handoff"
	}
	runtime.GC() // keep host collector pauses out of the timed region
	t0 := time.Now()
	for i, arrival := range arrivals {
		e := entries[i]
		if _, _, err := cl.Submit(core.JobRequest{
			Class:    e.MainClassOf(i),
			Method:   "main",
			Name:     fmt.Sprintf("%s#%d", e.Spec.Name, i),
			Arrival:  arrival,
			Deadline: deadline,
		}); err != nil {
			return ClusterRun{}, fmt.Errorf("cluster %s: job %d: %w", mode, i, err)
		}
	}
	if err := cl.Drain(); err != nil {
		return ClusterRun{}, fmt.Errorf("cluster %s: %w", mode, err)
	}
	wall := time.Since(t0)

	results, err := cl.Results()
	if err != nil {
		return ClusterRun{}, fmt.Errorf("cluster %s: %w", mode, err)
	}
	run := ClusterRun{Mode: mode, Stride: stride, Barriers: cl.Barriers(),
		WallSecs: wall.Seconds(), AllValid: true}
	var latencies []cell.Clock
	for _, r := range results {
		if r.Err != nil {
			return ClusterRun{}, fmt.Errorf("cluster %s: job %d trapped: %w", mode, r.Seq, r.Err)
		}
		if r.Res.Shed {
			run.Shed++
			continue
		}
		e := entries[r.Seq]
		run.Completed++
		run.AllValid = run.AllValid &&
			int32(uint32(r.Res.Value)) == e.Spec.Reference(e.Threads, e.Scale)
		latencies = append(latencies, r.Res.Cycles)
		if r.Res.DeadlineMet {
			run.Met++
		}
		if r.Res.CompletedAt > run.Makespan {
			run.Makespan = r.Res.CompletedAt
		}
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	run.P50 = percentile(latencies, 50)
	run.P95 = percentile(latencies, 95)
	run.P99 = percentile(latencies, 99)
	if run.Makespan > 0 {
		hz := vm.DefaultConfig().Machine.EffectiveClockHz()
		run.Goodput = float64(run.Met) / (float64(run.Makespan) / hz)
	}
	for _, s := range cl.Shards() {
		run.ShardJobs = append(run.ShardJobs, s.Routed)
		run.ShardUtil = append(run.ShardUtil, s.Utilization())
		run.Handoffs += s.HandoffsOut
	}
	if run.jobsTable, err = cl.JobsTable(); err != nil {
		return ClusterRun{}, err
	}
	return run, nil
}

// Table renders the figure. With NoWall only deterministic columns
// print (no wall seconds, no speedup), so the CI determinism gate can
// replay the figure byte for byte.
func (s *ClusterSweep) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster: %d shards [%s], sched %s, %d jobs, %s trace (seed %d), gap %d, deadline %d\n",
		len(s.Shards), strings.Join(s.Shards, "; "), s.Scheduler,
		s.NumJobs, s.Trace, s.Seed, s.Cadence, s.Deadline)

	rows := append([]ClusterRun{s.Serial, s.Parallel}, s.StrideRuns...)
	if s.HandoffArm {
		rows = append(rows, s.HandoffOn)
	}
	if s.NoWall {
		fmt.Fprintf(&b, "%-9s %10s %8s %5s %4s %4s %10s %12s %12s %6s %9s\n",
			"mode", "stride", "barriers", "done", "shed", "met", "goodput/s", "p50", "p99", "valid", "identical")
		for _, r := range rows {
			fmt.Fprintf(&b, "%-9s %10d %8d %5d %4d %4d %10.2f %12d %12d %6v %9v\n",
				r.Mode, r.Stride, r.Barriers, r.Completed, r.Shed, r.Met,
				r.Goodput, r.P50, r.P99, r.AllValid, r.Identical)
		}
	} else {
		fmt.Fprintf(&b, "%-9s %10s %8s %5s %4s %4s %10s %12s %12s %8s %6s %9s\n",
			"mode", "stride", "barriers", "done", "shed", "met", "goodput/s", "p50", "p99", "wall s", "valid", "identical")
		for _, r := range rows {
			fmt.Fprintf(&b, "%-9s %10d %8d %5d %4d %4d %10.2f %12d %12d %8.3f %6v %9v\n",
				r.Mode, r.Stride, r.Barriers, r.Completed, r.Shed, r.Met,
				r.Goodput, r.P50, r.P99, r.WallSecs, r.AllValid, r.Identical)
		}
		fmt.Fprintf(&b, "wall-clock speedup (parallel vs serial, %d shards on %d host CPUs): %.2fx\n",
			len(s.Shards), s.HostCPUs, s.Speedup)
	}

	fmt.Fprintf(&b, "per-shard routing (parallel run):\n")
	for i := range s.Shards {
		fmt.Fprintf(&b, "  shard %d %-24s jobs=%-3d util=%.3f\n",
			i, s.Shards[i], s.Parallel.ShardJobs[i], s.Parallel.ShardUtil[i])
	}

	if s.HandoffArm {
		// The hand-off record: same fleet, same script, hand-off off vs
		// on. "identical" on the hand-off row means an in-process replay
		// reproduced its merged job table byte for byte.
		h, p := s.HandoffOn, s.Parallel
		fmt.Fprintf(&b, "hand-off arm (off vs on, same fleet and script):\n")
		fmt.Fprintf(&b, "  hand-offs fired: %d\n", h.Handoffs)
		fmt.Fprintf(&b, "  deadlines met:   %d -> %d (of %d completed)\n", p.Met, h.Met, h.Completed)
		fmt.Fprintf(&b, "  p99 latency:     %d -> %d cycles\n", p.P99, h.P99)
		fmt.Fprintf(&b, "  goodput:         %.2f -> %.2f /s\n", p.Goodput, h.Goodput)
		fmt.Fprintf(&b, "  replay identical: %v, checksums valid: %v\n", h.Identical, h.AllValid)
		return b.String()
	}

	// The stride record: how the epoch-barrier default was chosen.
	fmt.Fprintf(&b, "epoch-stride sensitivity (fidelity = merged job table byte-identical to serial reference):\n")
	if s.NoWall {
		fmt.Fprintf(&b, "  %10s %8s %9s\n", "stride", "barriers", "identical")
		for _, r := range rows[1:] {
			fmt.Fprintf(&b, "  %10d %8d %9v\n", r.Stride, r.Barriers, r.Identical)
		}
	} else {
		fmt.Fprintf(&b, "  %10s %8s %8s %9s\n", "stride", "barriers", "speedup", "identical")
		for _, r := range rows[1:] {
			sp := 0.0
			if r.WallSecs > 0 {
				sp = s.Serial.WallSecs / r.WallSecs
			}
			fmt.Fprintf(&b, "  %10d %8d %7.2fx %9v\n", r.Stride, r.Barriers, sp, r.Identical)
		}
	}
	return b.String()
}

// JSON renders the sweep in the BENCH_cluster.json shape.
func (s *ClusterSweep) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CheckSpeedup is the CI scaling gate: an error when the parallel
// pass's wall-clock speedup fell below min, or when any pass's merged
// results diverged or mismatched their references. The speedup is a
// dimensionless host ratio, so the gate survives faster or slower
// runners — but it does assume the runner has at least as many CPUs
// as the gate expects shards to spread over.
func (s *ClusterSweep) CheckSpeedup(min float64) error {
	var problems []string
	for _, r := range append([]ClusterRun{s.Serial, s.Parallel}, s.StrideRuns...) {
		if !r.Identical {
			problems = append(problems,
				fmt.Sprintf("%s pass (stride %d): merged results diverged from serial reference", r.Mode, r.Stride))
		}
		if !r.AllValid {
			problems = append(problems,
				fmt.Sprintf("%s pass (stride %d): checksum mismatch vs reference", r.Mode, r.Stride))
		}
	}
	if s.Speedup < min {
		problems = append(problems, fmt.Sprintf(
			"parallel speedup %.2fx below gate %.2fx (%d shards, %d host CPUs)",
			s.Speedup, min, len(s.Shards), s.HostCPUs))
	}
	if len(problems) > 0 {
		return fmt.Errorf("cluster gate:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// CheckHandoff is the CI hand-off gate: hand-offs must actually fire,
// every pass's checksums must match their references, the hand-off
// pass must replay byte-identically, and the hand-off run must
// strictly beat the hand-off-free parallel baseline on goodput
// (deadlines met) or tail latency (p99).
func (s *ClusterSweep) CheckHandoff() error {
	if !s.HandoffArm {
		return fmt.Errorf("cluster gate: hand-off arm was not run")
	}
	var problems []string
	h, p := s.HandoffOn, s.Parallel
	if h.Handoffs == 0 {
		problems = append(problems, "no hand-offs fired on the imbalanced fleet")
	}
	for _, r := range []ClusterRun{s.Serial, p, h} {
		if !r.AllValid {
			problems = append(problems,
				fmt.Sprintf("%s pass: checksum mismatch vs reference", r.Mode))
		}
	}
	if !p.Identical {
		problems = append(problems, "parallel baseline diverged from serial reference")
	}
	if !h.Identical {
		problems = append(problems, "hand-off pass did not replay byte-identically")
	}
	if h.Met <= p.Met && h.P99 >= p.P99 {
		problems = append(problems, fmt.Sprintf(
			"hand-off did not improve goodput or tail: met %d vs %d, p99 %d vs %d",
			h.Met, p.Met, h.P99, p.P99))
	}
	if len(problems) > 0 {
		return fmt.Errorf("cluster hand-off gate:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}
