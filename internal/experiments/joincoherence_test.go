package experiments

import (
	"testing"

	"herajvm/internal/core"
	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// TestMigrateJoinCoherence is the regression test for a software-cache
// coherence hole on the join edge: a joiner that migrated to a
// local-store core could wake from join without an acquire-purge and
// read a stale clean copy of the workload's Counter.total — left in
// that core's data cache by a worker that ran (and published) there
// earlier — dropping the remaining workers' contributions from the
// checksum. The minimal reproducer is four poisson-spaced serve jobs
// under the migrate scheduler on the kind-imbalanced serve topology:
// the mandelbrot main migrates once and, before the fix, returned
// exactly worker 0's partial sum. Termination's release half (flush
// the retiring core) is exercised by the same run.
func TestMigrateJoinCoherence(t *testing.T) {
	arrivals, err := Arrivals("poisson", 1, 4, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	specs := workloads.All()
	entries := make([]workloads.MixEntry, len(arrivals))
	for i := range entries {
		spec := specs[i%len(specs)]
		entries[i] = workloads.MixEntry{Spec: spec, Threads: serveThreads, Scale: serveScales[spec.Name]}
	}
	prog, err := workloads.BuildMix(entries)
	if err != nil {
		t.Fatal(err)
	}
	cfg := vm.DefaultConfig()
	cfg.Machine.Topology = DefaultServeTopology()
	cfg.Scheduler = "migrate"
	sys, err := core.NewSystem(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*core.Job, len(entries))
	for i, e := range entries {
		jobs[i], _, err = sys.Submit(core.JobRequest{
			Class: e.MainClassOf(i), Method: "main", Arrival: arrivals[i],
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	for i, job := range jobs {
		res, err := job.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		e := entries[i]
		if got, want := int32(uint32(res.Value)), e.Spec.Reference(e.Threads, e.Scale); got != want {
			t.Errorf("job %d (%s): checksum %d, want %d (migrations=%d)",
				i, e.Spec.Name, got, want, res.Migrations)
		}
	}
}
