package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// SimSpeed measures the simulator itself: host wall-clock seconds per
// simulated gigacycle with the superblock fast path on (the default)
// and off (Config.DisableSuperblocks), across workloads and schedulers.
// The simulated results of the two runs must agree exactly — the sweep
// doubles as an end-to-end check of the memoization contract — so the
// Match column is as load-bearing as the speedup.
type SimSpeed struct {
	// Topology is the machine shape every cell used.
	Topology string        `json:"topology"`
	Rows     []SimSpeedRow `json:"rows"`
	// NoWall omits host-timing columns from Table so the output is
	// byte-for-byte replayable (wall clocks are not deterministic).
	NoWall bool `json:"-"`
}

// SimSpeedRow is one (workload, scheduler) cell of the sweep.
type SimSpeedRow struct {
	Workload  string `json:"workload"`
	Scheduler string `json:"scheduler"`
	// Cycles is the simulated completion time (identical in both runs
	// when Match holds).
	Cycles uint64 `json:"cycles"`
	// FastWallSecs/SlowWallSecs are host seconds for the run with the
	// fast path on/off; the PerGigacycle pair normalises them by
	// simulated work, which is the JSON baseline's unit of record.
	FastWallSecs         float64 `json:"fast_wall_secs"`
	SlowWallSecs         float64 `json:"slow_wall_secs"`
	FastSecsPerGigacycle float64 `json:"fast_secs_per_gigacycle"`
	SlowSecsPerGigacycle float64 `json:"slow_secs_per_gigacycle"`
	// Speedup is SlowWallSecs/FastWallSecs — dimensionless, so the CI
	// regression gate survives faster or slower runner hardware.
	Speedup float64 `json:"speedup"`
	// FFBlocks/FFInstrs count the fast run's memoized work; FFHitRate
	// is the fraction of all retired instructions that fast-forwarded.
	FFBlocks  uint64  `json:"ff_blocks"`
	FFInstrs  uint64  `json:"ff_instrs"`
	Instrs    uint64  `json:"instrs"`
	FFHitRate float64 `json:"ff_hit_rate"`
	// Match reports both runs were checksum-valid, agreed with each
	// other, and finished at the same simulated cycle.
	Match bool `json:"match"`
}

// DefaultSimSpeedTopology returns the sweep's machine shape: the
// three-kind machine, so the fast path is exercised on service cores,
// SPEs and VPUs at once.
func DefaultSimSpeedTopology() cell.Topology {
	return cell.Topology{
		{Kind: isa.PPE, Count: 1},
		{Kind: isa.SPE, Count: 4},
		{Kind: isa.VPU, Count: 2},
	}
}

var simSpeedSchedulers = []string{"calendar", "steal", "migrate"}

// simSpeedRun is one timed execution of a workload.
type simSpeedRun struct {
	wall     time.Duration
	cycles   uint64
	checksum int32
	valid    bool
	ffBlocks uint64
	ffInstrs uint64
	instrs   uint64
}

// simSpeedReps is how many times each cell re-simulates; the minimum
// wall time is kept. The simulation is deterministic, so every rep does
// identical work and the minimum is the cleanest estimate of its cost —
// single runs of a few hundred milliseconds are at the mercy of host
// scheduling and GC pauses.
const simSpeedReps = 3

// timeOne builds and boots outside the timed region and times only the
// simulation itself, so the measured ratio isolates the executor.
func timeOne(spec workloads.Spec, threads, scale int, topo cell.Topology,
	sched string, disable bool) (simSpeedRun, error) {

	var r simSpeedRun
	for rep := 0; rep < simSpeedReps; rep++ {
		prog, err := spec.Build(threads, scale)
		if err != nil {
			return simSpeedRun{}, err
		}
		cfg := vm.DefaultConfig()
		cfg.Machine.Topology = topo
		cfg.Scheduler = sched
		cfg.DisableSuperblocks = disable
		machine, err := vm.New(cfg, prog)
		if err != nil {
			return simSpeedRun{}, err
		}
		runtime.GC() // keep collector pauses out of the timed region
		t0 := time.Now()
		th, err := machine.RunMain(spec.MainClass, "main")
		wall := time.Since(t0)
		if err != nil {
			return simSpeedRun{}, fmt.Errorf("%s (%s, sched %s): %w", spec.Name, topo, sched, err)
		}
		if rep == 0 {
			r = simSpeedRun{
				wall:     wall,
				cycles:   uint64(machine.Machine.MaxClock()),
				checksum: int32(uint32(th.Result)),
			}
			r.valid = r.checksum == spec.Reference(threads, scale)
			for _, c := range machine.Machine.Cores() {
				r.ffBlocks += c.Stats.FastForwardedBlocks
				r.ffInstrs += c.Stats.FastForwardedInstrs
				r.instrs += c.Stats.Instrs
			}
		} else if wall < r.wall {
			r.wall = wall
		}
	}
	return r, nil
}

// RunSimSpeed executes the workloads x schedulers matrix twice per cell
// — fast path on, fast path off — and reports wall-clock speedups and
// fast-forward coverage. Options.Topologies[0] overrides the shape.
func RunSimSpeed(opt Options) (*SimSpeed, error) {
	topo := DefaultSimSpeedTopology()
	if len(opt.Topologies) > 0 {
		topo = opt.Topologies[0]
	}
	out := &SimSpeed{Topology: topo.String(), NoWall: opt.NoWall}
	threads := topo.DefaultWorkers()
	for _, spec := range workloads.All() {
		scale := opt.scale(spec)
		for _, sched := range simSpeedSchedulers {
			if err := opt.interrupted(); err != nil {
				return nil, err
			}
			fast, err := timeOne(spec, threads, scale, topo, sched, false)
			if err != nil {
				return nil, err
			}
			slow, err := timeOne(spec, threads, scale, topo, sched, true)
			if err != nil {
				return nil, err
			}
			row := SimSpeedRow{
				Workload:     spec.Name,
				Scheduler:    sched,
				Cycles:       fast.cycles,
				FastWallSecs: fast.wall.Seconds(),
				SlowWallSecs: slow.wall.Seconds(),
				FFBlocks:     fast.ffBlocks,
				FFInstrs:     fast.ffInstrs,
				Instrs:       fast.instrs,
				Match: fast.valid && slow.valid &&
					fast.checksum == slow.checksum && fast.cycles == slow.cycles,
			}
			if fast.cycles > 0 {
				g := float64(fast.cycles) / 1e9
				row.FastSecsPerGigacycle = row.FastWallSecs / g
				row.SlowSecsPerGigacycle = row.SlowWallSecs / g
			}
			if row.FastWallSecs > 0 {
				row.Speedup = row.SlowWallSecs / row.FastWallSecs
			}
			if fast.instrs > 0 {
				row.FFHitRate = float64(fast.ffInstrs) / float64(fast.instrs)
			}
			opt.logf("simspeed %s/%s: %.3fs fast vs %.3fs slow (%.2fx, hit %.3f, match %v)",
				spec.Name, sched, row.FastWallSecs, row.SlowWallSecs,
				row.Speedup, row.FFHitRate, row.Match)
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Table renders the sweep as text. With NoWall only the deterministic
// columns print, so the determinism gates can replay the figure.
func (s *SimSpeed) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Simulator speed: superblock fast-forward vs per-instruction stepping (%s)\n", s.Topology)
	if s.NoWall {
		fmt.Fprintf(&b, "%-12s %-9s %14s %12s %14s %8s %6s\n",
			"benchmark", "sched", "cycles", "ff blocks", "ff instrs", "hit", "match")
		for _, r := range s.Rows {
			fmt.Fprintf(&b, "%-12s %-9s %14d %12d %14d %8.3f %6v\n",
				r.Workload, r.Scheduler, r.Cycles, r.FFBlocks, r.FFInstrs, r.FFHitRate, r.Match)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s %-9s %14s %10s %10s %8s %8s %6s\n",
		"benchmark", "sched", "cycles", "fast s", "slow s", "speedup", "hit", "match")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-12s %-9s %14d %10.3f %10.3f %7.2fx %8.3f %6v\n",
			r.Workload, r.Scheduler, r.Cycles, r.FastWallSecs, r.SlowWallSecs,
			r.Speedup, r.FFHitRate, r.Match)
	}
	return b.String()
}

// JSON renders the sweep in the BENCH_simspeed.json shape.
func (s *SimSpeed) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CheckBaseline compares the sweep against a checked-in baseline (the
// JSON a previous run wrote) and returns an error when any cell's
// speedup regressed below 75% of the baseline's, or any cell diverged.
// The comparison is between dimensionless speedup ratios, so faster or
// slower runner hardware does not move the gate.
func (s *SimSpeed) CheckBaseline(baseline []byte) error {
	var base SimSpeed
	if err := json.Unmarshal(baseline, &base); err != nil {
		return fmt.Errorf("simspeed baseline: %w", err)
	}
	ref := make(map[string]float64, len(base.Rows))
	for _, r := range base.Rows {
		ref[r.Workload+"/"+r.Scheduler] = r.Speedup
	}
	var problems []string
	for _, r := range s.Rows {
		if !r.Match {
			problems = append(problems,
				fmt.Sprintf("%s/%s: fast and slow runs diverged", r.Workload, r.Scheduler))
			continue
		}
		want, ok := ref[r.Workload+"/"+r.Scheduler]
		if !ok {
			continue
		}
		if floor := want * 0.75; r.Speedup < floor {
			problems = append(problems, fmt.Sprintf(
				"%s/%s: speedup %.2fx below floor %.2fx (baseline %.2fx)",
				r.Workload, r.Scheduler, r.Speedup, floor, want))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("simspeed regression:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}
