package experiments

import (
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/workloads"
)

// TestMigrateSchedulerChecksumsAndDeterminism is the migrate
// scheduler's acceptance gate: on the satellite topology
// (ppe:1,spe:4,vpu:2) and the acceptance topology (ppe:2,spe:2,vpu:2),
// every workload must (a) produce the same checksum under "migrate" as
// under the default calendar scheduler, (b) finish no later than under
// "steal" (the cost gate only approves predicted wins), and (c) be
// run-to-run deterministic — identical cycles, steal counts and
// migration counts across two replays.
func TestMigrateSchedulerChecksumsAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload replay skipped in -short mode")
	}
	topos := []string{"ppe:1,spe:4,vpu:2", "ppe:2,spe:2,vpu:2"}
	opt := tiny()
	for _, spec := range workloads.All() {
		scale := opt.scale(spec)
		for _, ts := range topos {
			topo, err := cell.ParseTopology(ts)
			if err != nil {
				t.Fatal(err)
			}
			threads := topo.DefaultWorkers()

			run := func(scheduler string) RunStats {
				o := opt
				o.Scheduler = scheduler
				st, err := runOnTopology(o, spec, threads, scale, topo, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			cal := run("calendar")
			st := run("steal")
			mig1 := run("migrate")
			mig2 := run("migrate")

			if !cal.Valid || !mig1.Valid {
				t.Errorf("%s on %s: invalid checksum (calendar=%v migrate=%v)",
					spec.Name, ts, cal.Valid, mig1.Valid)
			}
			if mig1.Checksum != cal.Checksum {
				t.Errorf("%s on %s: migrate checksum %d != calendar %d",
					spec.Name, ts, mig1.Checksum, cal.Checksum)
			}
			if mig1.Cycles > st.Cycles {
				t.Errorf("%s on %s: migrate (%d cyc) finished later than steal (%d cyc); the cost gate should only approve wins",
					spec.Name, ts, mig1.Cycles, st.Cycles)
			}
			if mig1.Cycles != mig2.Cycles || mig1.Steals != mig2.Steals ||
				mig1.AllMigrations != mig2.AllMigrations ||
				mig1.Checksum != mig2.Checksum ||
				mig1.SPEInstrs != mig2.SPEInstrs || mig1.PPEInstrs != mig2.PPEInstrs {
				t.Errorf("%s on %s: migrate runs diverged: cycles %d/%d steals %d/%d migrations %d/%d",
					spec.Name, ts, mig1.Cycles, mig2.Cycles, mig1.Steals, mig2.Steals,
					mig1.AllMigrations, mig2.AllMigrations)
			}
		}
	}
}

// TestMigrateSweepShape runs the sweep at tiny scale on a custom
// topology list (exercising Options.Topologies, the -topology flag's
// plumbing) and checks every row matched with a sane speedup.
func TestMigrateSweepShape(t *testing.T) {
	opt := tiny()
	list, err := cell.ParseTopologyList("ppe:1,spe:2,vpu:1;ppe:2,spe:2,vpu:2")
	if err != nil {
		t.Fatal(err)
	}
	opt.Topologies = list
	sweep, err := RunMigrateSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Rows) != len(workloads.All())*len(list) {
		t.Fatalf("rows = %d, want %d", len(sweep.Rows), len(workloads.All())*len(list))
	}
	for _, r := range sweep.Rows {
		if !r.Match {
			t.Errorf("%s on %s: schedulers disagreed", r.Workload, r.Topology)
		}
		if r.Speedup < 1 {
			t.Errorf("%s on %s: migrate slower than steal (%.3fx); the cost gate should only approve wins",
				r.Workload, r.Topology, r.Speedup)
		}
	}
}
