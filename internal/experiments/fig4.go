package experiments

import (
	"fmt"
	"strings"

	"herajvm/internal/workloads"
)

// Fig4a reproduces Figure 4(a): per-workload speedup relative to the PPE
// when running on one SPE and on six SPEs. The paper reports roughly
// 0.4x/2.5x for compress, 1.0x/4.6x for mpegaudio and 1.6x/9.4x for
// mandelbrot.
type Fig4a struct {
	Rows []Fig4aRow
}

// Fig4aRow is one benchmark's bar pair.
type Fig4aRow struct {
	Workload  string
	PPECycles uint64
	OneSPE    float64 // speedup vs PPE on 1 SPE
	SixSPE    float64 // speedup vs PPE on MaxSPEs SPEs
	Valid     bool
}

// RunFig4a executes the 3 workloads x {PPE, 1 SPE, 6 SPE} matrix.
func RunFig4a(opt Options) (*Fig4a, error) {
	out := &Fig4a{}
	for _, spec := range workloads.All() {
		scale := opt.scale(spec)
		// One benchmark thread per core context, as SPECjvm2008 does: a
		// single thread on the (single-core) PPE and on one SPE, MaxSPEs
		// threads across MaxSPEs SPEs. Total work is thread-independent.
		ppe, err := runOne(opt, spec, 1, scale, 0, nil)
		if err != nil {
			return nil, err
		}
		opt.logf("fig4a %s: PPE done (%d cycles)", spec.Name, ppe.Cycles)
		one, err := runOne(opt, spec, 1, scale, 1, nil)
		if err != nil {
			return nil, err
		}
		opt.logf("fig4a %s: 1 SPE done (%d cycles)", spec.Name, one.Cycles)
		six, err := runOne(opt, spec, minInt(opt.Threads, opt.MaxSPEs), scale, opt.MaxSPEs, nil)
		if err != nil {
			return nil, err
		}
		opt.logf("fig4a %s: %d SPEs done (%d cycles)", spec.Name, opt.MaxSPEs, six.Cycles)
		out.Rows = append(out.Rows, Fig4aRow{
			Workload:  spec.Name,
			PPECycles: ppe.Cycles,
			OneSPE:    float64(ppe.Cycles) / float64(one.Cycles),
			SixSPE:    float64(ppe.Cycles) / float64(six.Cycles),
			Valid:     ppe.Valid && one.Valid && six.Valid,
		})
	}
	return out, nil
}

// Table renders the figure as text.
func (f *Fig4a) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4(a): speedup relative to PPE\n")
	fmt.Fprintf(&b, "%-12s %12s %10s %10s %7s\n", "benchmark", "PPE cycles", "1 SPE", "6 SPEs", "valid")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-12s %12d %9.2fx %9.2fx %7v\n",
			r.Workload, r.PPECycles, r.OneSPE, r.SixSPE, r.Valid)
	}
	return b.String()
}

// Fig4b reproduces Figure 4(b): speedup on 1..6 SPEs relative to a
// single SPE. The paper shows mandelbrot scaling near-linearly and
// compress flattening from memory/bus contention.
type Fig4b struct {
	MaxSPEs int
	Rows    []Fig4bRow
}

// Fig4bRow is one benchmark's scaling series.
type Fig4bRow struct {
	Workload string
	Cycles   []uint64  // index i = i+1 SPEs
	Scaling  []float64 // Cycles[0]/Cycles[i]
	Valid    bool
}

// RunFig4b executes the 3 workloads x 1..MaxSPEs matrix.
func RunFig4b(opt Options) (*Fig4b, error) {
	out := &Fig4b{MaxSPEs: opt.MaxSPEs}
	for _, spec := range workloads.All() {
		scale := opt.scale(spec)
		row := Fig4bRow{Workload: spec.Name, Valid: true}
		for n := 1; n <= opt.MaxSPEs; n++ {
			st, err := runOne(opt, spec, minInt(opt.Threads, n), scale, n, nil)
			if err != nil {
				return nil, err
			}
			opt.logf("fig4b %s: %d SPEs done (%d cycles)", spec.Name, n, st.Cycles)
			row.Cycles = append(row.Cycles, st.Cycles)
			row.Valid = row.Valid && st.Valid
		}
		for _, c := range row.Cycles {
			row.Scaling = append(row.Scaling, float64(row.Cycles[0])/float64(c))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders the figure as text.
func (f *Fig4b) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4(b): speedup relative to one SPE\n")
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for n := 1; n <= f.MaxSPEs; n++ {
		fmt.Fprintf(&b, " %6d", n)
	}
	fmt.Fprintf(&b, " %7s\n", "valid")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-12s", r.Workload)
		for _, s := range r.Scaling {
			fmt.Fprintf(&b, " %5.2fx", s)
		}
		fmt.Fprintf(&b, " %7v\n", r.Valid)
	}
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
