package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFigure4Golden is the determinism gate: the default PS3 topology
// must reproduce the checked-in Figure-4 tables byte for byte. Any
// change to the scheduler, the cost tables, the memory model or the
// placement policies that perturbs the default machine's behaviour
// shows up here as a diff. Regenerate testdata/golden_fig4.txt (4a then
// 4b, quick sizes — see .github/workflows/ci.yml) only when a change is
// *meant* to shift the figures, and say so in the commit.
func TestFigure4Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure-4 replay skipped in -short mode")
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden_fig4.txt"))
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	a, err := RunFig4a(Quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig4b(Quick())
	if err != nil {
		t.Fatal(err)
	}
	got := a.Table() + "\n" + b.Table() + "\n"
	if got != string(golden) {
		t.Errorf("Figure-4 output diverged from testdata/golden_fig4.txt:\n--- want ---\n%s--- got ---\n%s",
			golden, got)
	}
}
