package experiments

import (
	"strings"
	"testing"

	"herajvm/internal/cell"
)

// kernelsQuickOpt shrinks every kernel workload to scale 1 so the
// figure smoke-tests quickly; the full-scale run is the bench gate's
// job.
func kernelsQuickOpt() Options {
	return Options{ScaleOverride: map[string]int{"matmul": 1, "nbody": 1, "kmeans": 1}}
}

// TestRunKernelsDifferentialAndGate: the quick sweep must produce a
// valid row per (workload, topology), bill staging DMA everywhere, and
// pass its own gate at a floor every topology clears at scale 1.
func TestRunKernelsDifferentialAndGate(t *testing.T) {
	s, err := RunKernels(kernelsQuickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 6 {
		t.Fatalf("got %d rows, want 3 workloads x 2 topologies", len(s.Rows))
	}
	for _, r := range s.Rows {
		if !r.Valid {
			t.Errorf("%s on %s: invalid (checksum %d)", r.Workload, r.Topology, r.Checksum)
		}
		if r.DMABytes == 0 || r.Workers == 0 {
			t.Errorf("%s on %s: workers=%d dma=%d, want both nonzero",
				r.Workload, r.Topology, r.Workers, r.DMABytes)
		}
	}
	if err := s.CheckKernelMin(1.0); err != nil {
		t.Errorf("gate failed at a 1.0x floor: %v", err)
	}
	if err := s.CheckKernelMin(1e9); err == nil {
		t.Error("gate passed an impossible floor")
	}
}

// TestRunKernelsPoolChoice: the reported pool must follow the planner —
// SPEs on the PS3 baseline, VPUs on the three-kind machine.
func TestRunKernelsPoolChoice(t *testing.T) {
	s, err := RunKernels(kernelsQuickOpt())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		cell.PS3Topology(6).String():       "spe",
		DefaultSimSpeedTopology().String(): "vpu",
	}
	for _, r := range s.Rows {
		if r.Pool != want[r.Topology] {
			t.Errorf("%s on %s: pool %q, want %q", r.Workload, r.Topology, r.Pool, want[r.Topology])
		}
	}
}

// TestServeMixesKernelJobs: kernel workloads resolve through the serve
// driver's job mix (the workloads.ByName fallback), running forRange
// launches open-loop beside the paper workloads with checksums intact.
func TestServeMixesKernelJobs(t *testing.T) {
	opt := Options{
		Scheduler:      "migrate",
		ServeJobs:      6,
		ServeWorkloads: []string{"compress", "matmul", "kmeans"},
	}
	s, err := RunServe(opt)
	if err != nil {
		t.Fatal(err)
	}
	kernelJobs := 0
	for _, r := range s.Runs {
		if !r.AllValid {
			t.Errorf("%s shed=%v: a job checksum diverged from its reference", r.Scheduler, r.Shedding)
		}
		for _, j := range r.Jobs {
			if j.Workload == "matmul" || j.Workload == "kmeans" {
				kernelJobs++
			}
		}
	}
	if kernelJobs == 0 {
		t.Error("no kernel jobs entered the serve mix")
	}
}

// TestRunKernelsDeterministicReplay: the whole figure — table and JSON
// bytes included — replays identically, the property the CI
// double-replay diff gate asserts from the outside.
func TestRunKernelsDeterministicReplay(t *testing.T) {
	s1, err := RunKernels(kernelsQuickOpt())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RunKernels(kernelsQuickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if s1.Table() != s2.Table() {
		t.Errorf("table drifted between replays:\n%s\nvs\n%s", s1.Table(), s2.Table())
	}
	j1, err := s1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Error("JSON drifted between replays")
	}
	if !strings.Contains(s1.Table(), "matmul") || !strings.Contains(s1.Table(), "vpu") {
		t.Errorf("table missing expected rows:\n%s", s1.Table())
	}
}
