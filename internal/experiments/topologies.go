package experiments

import (
	"fmt"
	"strings"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/workloads"
)

// TopologySweep generalizes the Figure-4 machine sweep beyond the PS3
// shape: the same workloads run on a set of declarative topologies —
// PPE-only hosts, the classic 1+6, multi-PPE symmetric machines and
// SPE-heavy accelerators — and report completion time relative to the
// single-PPE baseline. This is the "abstracting processor heterogeneity"
// claim exercised end-to-end: the programs are identical across rows;
// only the machine declaration changes.
type TopologySweep struct {
	Topologies []cell.Topology
	Rows       []TopologySweepRow
}

// TopologySweepRow is one benchmark's series across the topologies.
type TopologySweepRow struct {
	Workload string
	Cycles   []uint64
	Speedup  []float64 // cycles(ppe:1) / cycles(topology)
	Valid    bool
}

// DefaultTopologies returns the sweep's machine shapes: a PPE-only
// host, the PS3 default, a dual-PPE host, an asymmetric 2 PPE + 2 SPE
// mix, an SPE-heavy 1+12 accelerator, and a three-kind machine that
// swaps two SPEs for GPU-like VPUs.
func DefaultTopologies() []cell.Topology {
	return []cell.Topology{
		cell.PS3Topology(0),
		cell.PS3Topology(6),
		{{Kind: isa.PPE, Count: 2}},
		{{Kind: isa.PPE, Count: 2}, {Kind: isa.SPE, Count: 2}},
		cell.PS3Topology(12),
		{{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 4}, {Kind: isa.VPU, Count: 2}},
	}
}

// RunTopologySweep executes the 3 workloads x topologies matrix. Thread
// count follows the machine: one worker per core that can host workload
// threads under the annotation policy (SPEs when present, PPEs
// otherwise), so SPE-heavy shapes actually exercise their extra cores.
func RunTopologySweep(opt Options) (*TopologySweep, error) {
	topos := DefaultTopologies()
	if len(opt.Topologies) > 0 {
		topos = opt.Topologies
	}
	out := &TopologySweep{Topologies: topos}
	for _, spec := range workloads.All() {
		scale := opt.scale(spec)
		row := TopologySweepRow{Workload: spec.Name, Valid: true}
		for _, topo := range topos {
			st, err := runOnTopology(opt, spec, topo.DefaultWorkers(), scale, topo, nil, nil)
			if err != nil {
				return nil, err
			}
			opt.logf("topo %s: %s done (%d cycles)", spec.Name, topo, st.Cycles)
			row.Cycles = append(row.Cycles, st.Cycles)
			row.Valid = row.Valid && st.Valid
		}
		for _, c := range row.Cycles {
			row.Speedup = append(row.Speedup, float64(row.Cycles[0])/float64(c))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders the sweep as text.
func (t *TopologySweep) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Topology sweep: speedup relative to a single PPE\n")
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, topo := range t.Topologies {
		fmt.Fprintf(&b, " %14s", topo)
	}
	fmt.Fprintf(&b, " %7s\n", "valid")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s", r.Workload)
		for _, s := range r.Speedup {
			fmt.Fprintf(&b, " %13.2fx", s)
		}
		fmt.Fprintf(&b, " %7v\n", r.Valid)
	}
	return b.String()
}
