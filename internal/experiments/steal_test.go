package experiments

import (
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/workloads"
)

// TestStealSchedulerChecksumsAndDeterminism is the steal scheduler's
// acceptance gate: on the PS3 shape and the three-kind machine, every
// workload must (a) produce the same checksum under "steal" as under
// the default calendar scheduler, and (b) be run-to-run deterministic —
// identical cycles and steal counts across two replays.
func TestStealSchedulerChecksumsAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload replay skipped in -short mode")
	}
	topos := []string{"ppe:1,spe:6", "ppe:1,spe:4,vpu:2"}
	opt := tiny()
	for _, spec := range workloads.All() {
		scale := opt.scale(spec)
		for _, ts := range topos {
			topo, err := cell.ParseTopology(ts)
			if err != nil {
				t.Fatal(err)
			}
			threads := topo.DefaultWorkers()

			calOpt := opt
			calOpt.Scheduler = "calendar"
			cal, err := runOnTopology(calOpt, spec, threads, scale, topo, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			stealOpt := opt
			stealOpt.Scheduler = "steal"
			st1, err := runOnTopology(stealOpt, spec, threads, scale, topo, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			st2, err := runOnTopology(stealOpt, spec, threads, scale, topo, nil, nil)
			if err != nil {
				t.Fatal(err)
			}

			if !cal.Valid || !st1.Valid {
				t.Errorf("%s on %s: invalid checksum (calendar=%v steal=%v)",
					spec.Name, ts, cal.Valid, st1.Valid)
			}
			if st1.Checksum != cal.Checksum {
				t.Errorf("%s on %s: steal checksum %d != calendar %d",
					spec.Name, ts, st1.Checksum, cal.Checksum)
			}
			if st1.Cycles != st2.Cycles || st1.Steals != st2.Steals ||
				st1.SPEInstrs != st2.SPEInstrs || st1.PPEInstrs != st2.PPEInstrs {
				t.Errorf("%s on %s: steal runs diverged: cycles %d/%d steals %d/%d instrs %d+%d/%d+%d",
					spec.Name, ts, st1.Cycles, st2.Cycles, st1.Steals, st2.Steals,
					st1.SPEInstrs, st1.PPEInstrs, st2.SPEInstrs, st2.PPEInstrs)
			}
			if cal.Steals != 0 {
				t.Errorf("%s on %s: calendar scheduler stole %d times", spec.Name, ts, cal.Steals)
			}
		}
	}
}

// TestStealSweepShape runs the sweep at tiny scale on a small custom
// topology list (exercising Options.Topologies, the -topology flag's
// plumbing) and checks every row matched.
func TestStealSweepShape(t *testing.T) {
	opt := tiny()
	list, err := cell.ParseTopologyList("ppe:1,spe:2;ppe:1,spe:1,vpu:2")
	if err != nil {
		t.Fatal(err)
	}
	opt.Topologies = list
	sweep, err := RunStealSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Rows) != len(workloads.All())*len(list) {
		t.Fatalf("rows = %d, want %d", len(sweep.Rows), len(workloads.All())*len(list))
	}
	for _, r := range sweep.Rows {
		if !r.Match {
			t.Errorf("%s on %s: schedulers disagreed", r.Workload, r.Topology)
		}
		if r.Speedup <= 0 {
			t.Errorf("%s on %s: nonsense speedup %f", r.Workload, r.Topology, r.Speedup)
		}
	}
}

// TestTopologySweepHonoursOptionTopologies pins the topo sweep to a
// custom shape list.
func TestTopologySweepHonoursOptionTopologies(t *testing.T) {
	opt := tiny()
	list, err := cell.ParseTopologyList("ppe:1;ppe:1,spe:2")
	if err != nil {
		t.Fatal(err)
	}
	opt.Topologies = list
	sweep, err := RunTopologySweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Topologies) != 2 {
		t.Fatalf("sweep visited %d topologies, want the 2 configured", len(sweep.Topologies))
	}
	for _, r := range sweep.Rows {
		if !r.Valid {
			t.Errorf("%s: invalid checksum", r.Workload)
		}
		if len(r.Cycles) != 2 {
			t.Errorf("%s: %d cycle columns, want 2", r.Workload, len(r.Cycles))
		}
	}
}
