package experiments

import (
	"fmt"
	"math"
	"sort"

	"herajvm/internal/cell"
)

// Arrival traces for the open-loop serve driver. A trace is a named,
// seeded generator of job arrival cycles: the driver submits job i at
// Arrivals(...)[i] regardless of how the machine is keeping up, which
// is what makes the driver open-loop — a closed loop that waits for
// completions before submitting would hide queueing delay from the SLO
// percentiles. Every generator draws from a splitmix64 PRNG seeded by
// the caller, so a (trace, seed, jobs, gap) tuple names one exact
// arrival script forever: double-replaying it is byte-identical, which
// the CI determinism gate enforces.

// prng is a splitmix64 generator — tiny, fast, and fully specified, so
// traces never depend on the Go runtime's rand internals.
type prng struct{ state uint64 }

func newPRNG(seed uint64) *prng { return &prng{state: seed} }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in (0, 1] — never 0, so it is safe
// inside a logarithm.
func (p *prng) float64() float64 {
	return (float64(p.next()>>11) + 1) / (1 << 53)
}

// traceGen yields the gap (in cycles) between job i-1 and job i, given
// the mean gap and the total job count.
type traceGen func(p *prng, meanGap float64, i, n int) float64

// traceGens is the arrival-trace registry. Every generator targets the
// same long-run mean gap; they differ in burstiness — the dimension
// that separates an admission pipeline from a rate limiter.
var traceGens = map[string]traceGen{
	// uniform: a fixed gap — the metronome baseline with no variance.
	"uniform": func(p *prng, meanGap float64, i, n int) float64 {
		return meanGap
	},
	// poisson: exponential inter-arrival gaps (a Poisson process), the
	// canonical open-loop arrival model.
	"poisson": func(p *prng, meanGap float64, i, n int) float64 {
		return -meanGap * math.Log(p.float64())
	},
	// bursty: back-to-back bursts of four jobs separated by long lulls;
	// the same mean rate as uniform, concentrated into spikes that
	// overrun any drain estimate briefly.
	"bursty": func(p *prng, meanGap float64, i, n int) float64 {
		if i%4 != 0 {
			return 0.1 * meanGap
		}
		return 3.7 * meanGap // burst leader: 3×0.1 + 3.7 averages to 1.0
	},
	// diurnal: a Poisson process whose rate swings sinusoidally over a
	// 16-job period — rush hour and dead of night in one trace.
	"diurnal": func(p *prng, meanGap float64, i, n int) float64 {
		rate := 1 + 0.75*math.Sin(2*math.Pi*float64(i)/16)
		return -meanGap / rate * math.Log(p.float64())
	},
}

// Traces returns the registered arrival-trace names, sorted.
func Traces() []string {
	names := make([]string, 0, len(traceGens))
	for name := range traceGens {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Arrivals generates the arrival cycles of n jobs under a named trace:
// the cumulative sum of the generator's gaps, starting at the first
// gap. The sequence is non-decreasing by construction and fully
// determined by (trace, seed, n, meanGap).
func Arrivals(trace string, seed uint64, n int, meanGap uint64) ([]cell.Clock, error) {
	gen, ok := traceGens[trace]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown trace %q (have %v)", trace, Traces())
	}
	p := newPRNG(seed)
	out := make([]cell.Clock, n)
	var at float64
	for i := 0; i < n; i++ {
		at += gen(p, float64(meanGap), i, n)
		out[i] = cell.Clock(at + 0.5)
	}
	return out, nil
}
