package experiments

import (
	"strings"
	"testing"

	"herajvm/internal/isa"
	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// tiny returns minimum-scale options so shape tests stay fast.
func tiny() Options {
	return Options{
		Threads: 6,
		MaxSPEs: 6,
		ScaleOverride: map[string]int{
			"compress":   1,
			"mpegaudio":  2,
			"mandelbrot": 2,
		},
	}
}

func TestFig4aShape(t *testing.T) {
	f, err := RunFig4a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig4aRow{}
	for _, r := range f.Rows {
		if !r.Valid {
			t.Errorf("%s: checksum invalid", r.Workload)
		}
		byName[r.Workload] = r
	}
	cp, mp, mb := byName["compress"], byName["mpegaudio"], byName["mandelbrot"]

	// Paper shape, Figure 4(a): compress much slower on one SPE;
	// mpegaudio roughly equivalent; mandelbrot significantly faster.
	if cp.OneSPE >= 0.8 {
		t.Errorf("compress on 1 SPE should be much slower than PPE: %.2fx", cp.OneSPE)
	}
	if mp.OneSPE < 0.7 || mp.OneSPE > 1.35 {
		t.Errorf("mpegaudio on 1 SPE should be roughly PPE-equivalent: %.2fx", mp.OneSPE)
	}
	if mb.OneSPE <= 1.2 {
		t.Errorf("mandelbrot on 1 SPE should beat the PPE: %.2fx", mb.OneSPE)
	}
	// With six SPEs everything beats the PPE, in the paper's order:
	// mandelbrot > mpegaudio > compress.
	for _, r := range f.Rows {
		if r.SixSPE <= 1 {
			t.Errorf("%s on 6 SPEs should beat the PPE: %.2fx", r.Workload, r.SixSPE)
		}
	}
	if !(mb.SixSPE > mp.SixSPE && mp.SixSPE > cp.SixSPE) {
		t.Errorf("6-SPE ordering should be mandelbrot > mpegaudio > compress: %.2f %.2f %.2f",
			mb.SixSPE, mp.SixSPE, cp.SixSPE)
	}
	if !strings.Contains(f.Table(), "Figure 4(a)") {
		t.Error("table header missing")
	}
}

func TestFig4bScalingMonotone(t *testing.T) {
	opt := tiny()
	opt.MaxSPEs = 3
	f, err := RunFig4b(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Rows {
		if !r.Valid {
			t.Errorf("%s: checksum invalid", r.Workload)
		}
		for i := 1; i < len(r.Scaling); i++ {
			if r.Scaling[i] < r.Scaling[i-1]-0.05 {
				t.Errorf("%s: scaling regressed at %d SPEs: %v", r.Workload, i+1, r.Scaling)
			}
		}
		last := r.Scaling[len(r.Scaling)-1]
		if last < 1.5 {
			t.Errorf("%s: no useful scaling by %d SPEs: %v", r.Workload, opt.MaxSPEs, r.Scaling)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	f, err := RunFig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	shares := map[string][isa.NumClasses]float64{}
	for _, r := range f.Rows {
		shares[r.Workload] = r.Shares
		var sum float64
		for _, s := range r.Shares {
			sum += s
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: shares sum to %.3f", r.Workload, sum)
		}
	}
	// Paper's Figure 5 findings: mandelbrot performs significantly more
	// floating point; compress spends more cycles on main memory.
	if !(shares["mandelbrot"][isa.ClassFloat] > shares["compress"][isa.ClassFloat] &&
		shares["mandelbrot"][isa.ClassFloat] > shares["mpegaudio"][isa.ClassFloat]) {
		t.Error("mandelbrot should have the largest floating-point share")
	}
	if !(shares["compress"][isa.ClassMainMem] > shares["mandelbrot"][isa.ClassMainMem] &&
		shares["compress"][isa.ClassMainMem] > shares["mpegaudio"][isa.ClassMainMem]) {
		t.Error("compress should have the largest main-memory share")
	}
}

func TestFig6Shape(t *testing.T) {
	opt := tiny()
	sweep, err := runCacheSweep(opt, "Figure 6", "data cache KB", []int{8, 48, 104},
		func(cfg *vm.Config, kb int) { cfg.DataCache.Size = uint32(kb) << 10 })
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]CacheSweepRow{}
	for _, r := range sweep.Rows {
		rows[r.Workload] = r
		if !r.Valid {
			t.Errorf("%s invalid", r.Workload)
		}
	}
	cp := rows["compress"]
	// compress: consistently lower hit rate and steep degradation.
	if cp.HitRate[0] >= cp.HitRate[2] {
		t.Errorf("compress hit rate should fall as the cache shrinks: %v", cp.HitRate)
	}
	if cp.RelPerf[0] > 0.85 {
		t.Errorf("compress should degrade badly at 8 KB: %.3f", cp.RelPerf[0])
	}
	// mpegaudio: relatively insensitive to data-cache size.
	if rows["mpegaudio"].RelPerf[0] < 0.9 {
		t.Errorf("mpegaudio should be insensitive to data-cache size: %v", rows["mpegaudio"].RelPerf)
	}
	for _, r := range sweep.Rows {
		if r.Workload == "compress" {
			continue
		}
		if cp.HitRate[2] >= r.HitRate[2] {
			t.Errorf("compress should have the lowest default hit rate (vs %s)", r.Workload)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	opt := tiny()
	sweep, err := runCacheSweep(opt, "Figure 7", "code cache KB", []int{8, 48, 88},
		func(cfg *vm.Config, kb int) { cfg.CodeCache.Size = uint32(kb) << 10 })
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]CacheSweepRow{}
	for _, r := range sweep.Rows {
		rows[r.Workload] = r
	}
	// mpegaudio: very susceptible to code-cache reduction.
	if rows["mpegaudio"].RelPerf[0] > 0.6 {
		t.Errorf("mpegaudio should collapse at 8 KB code cache: %v", rows["mpegaudio"].RelPerf)
	}
	// compress and mandelbrot: essentially insensitive.
	for _, name := range []string{"compress", "mandelbrot"} {
		if rows[name].RelPerf[0] < 0.95 {
			t.Errorf("%s should be insensitive to code-cache size: %v", name, rows[name].RelPerf)
		}
	}
}

func TestA2MigrationBreakEven(t *testing.T) {
	a, err := RunA2(Options{Threads: 1, MaxSPEs: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny methods must lose to staying on the PPE; large ones must win.
	if a.CyclesPerOp[0] <= a.LocalCycles[0] {
		t.Errorf("1-unit migrating call should lose: mig=%.0f local=%.0f",
			a.CyclesPerOp[0], a.LocalCycles[0])
	}
	last := len(a.WorkUnits) - 1
	if a.CyclesPerOp[last] >= a.LocalCycles[last] {
		t.Errorf("8192-unit migrating call should win: mig=%.0f local=%.0f",
			a.CyclesPerOp[last], a.LocalCycles[last])
	}
	if a.BreakEvenOps <= 0 {
		t.Error("no break-even point found")
	}
}

func TestA4CoherenceCost(t *testing.T) {
	opt := tiny()
	a, err := RunA4(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range a.Rows {
		// Coherence can only cost cycles, never save them.
		if float64(r.CoherentCyc) < float64(r.UnsoundCyc)*0.999 {
			t.Errorf("%s: coherence appears to be free or negative: %d vs %d",
				r.Workload, r.CoherentCyc, r.UnsoundCyc)
		}
	}
}

func TestRunStatsValidity(t *testing.T) {
	spec := workloads.Mandelbrot()
	st, err := runOne(Options{}, spec, 2, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Valid {
		t.Error("mandelbrot checksum should validate")
	}
	if st.Cycles == 0 || st.SPEInstrs == 0 {
		t.Error("stats look empty")
	}
}
