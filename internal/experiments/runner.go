// Package experiments regenerates every figure of the paper's
// evaluation section (Figures 4(a), 4(b), 5, 6 and 7) plus the ablations
// DESIGN.md lists (A1-A4). Each experiment builds the relevant workload
// programs, runs them on configured machines, and returns a table whose
// rows correspond to the paper's data series. Absolute cycle counts are
// simulator-calibrated; the claims under test are the relative shapes
// (see EXPERIMENTS.md).
package experiments

import (
	"context"
	"fmt"
	"io"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// Options controls experiment scale.
type Options struct {
	// Threads caps the number of benchmark worker threads; each figure
	// run uses min(Threads, cores) workers (SPECjvm2008-style: one
	// benchmark thread per hardware context).
	Threads int
	// ScaleOverride overrides a workload's default scale when nonzero.
	ScaleOverride map[string]int
	// MaxSPEs bounds the machine (6 on a PS3).
	MaxSPEs int
	// Scheduler names the scheduling algorithm every run uses
	// ("calendar", "steal"; "" keeps the default). The steal sweep
	// ignores it — it compares both by construction.
	Scheduler string
	// Topologies overrides the machine shapes the topology and steal
	// sweeps visit (nil keeps each sweep's defaults). herabench fills
	// it from the -topology flag.
	Topologies []cell.Topology
	// ServeJobs and ServeCadence size the open-loop serve driver
	// (RunServe): how many jobs the arrival trace emits and the mean
	// inter-arrival gap in cycles. 0 keeps the driver's defaults.
	ServeJobs    int
	ServeCadence uint64
	// ServeTrace names the arrival process (see Traces(); default
	// "poisson") and ServeSeed seeds its PRNG, together naming one
	// exact arrival script.
	ServeTrace string
	ServeSeed  uint64
	// ServeDeadline is the per-job completion deadline in cycles
	// relative to admission, and ServeMaxPending the admission
	// queue-depth backstop of shedding runs. 0 keeps the defaults.
	ServeDeadline   cell.Clock
	ServeMaxPending int
	// ServeWorkloads restricts the serve mix to the named workloads
	// (round-robin; nil = all three).
	ServeWorkloads []string
	// ShardTopos lists the cluster sweep's per-shard machine shapes
	// (the -shards flag; nil = four default serve-shaped shards).
	ShardTopos []cell.Topology
	// EpochStride overrides the cluster's epoch-barrier stride in
	// cycles (0 = cluster.DefaultEpochStride).
	EpochStride uint64
	// Handoff switches the cluster figure to its hand-off arm: an
	// imbalanced two-shard fleet (unless ShardTopos overrides it)
	// played with and without inter-shard job hand-off, plus an
	// in-process replay of the hand-off pass for the determinism gate.
	Handoff bool
	// Ctx, when non-nil, is the shared timeout guard every figure
	// runner honours: runners check it between runs (and the cluster
	// epoch engine at every barrier), so a wedged run fails with the
	// context's error instead of hanging CI. herabench wires -timeout
	// to it.
	Ctx context.Context
	// NoWall suppresses wall-clock columns in tables whose rows carry
	// host timings (the simspeed sweep), so their output is replayable
	// byte for byte in the determinism gates.
	NoWall bool
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

// Full returns the default experiment options (paper-shaped sizes).
func Full() Options {
	return Options{Threads: 6, MaxSPEs: 6}
}

// Quick returns reduced sizes for unit tests and smoke runs.
func Quick() Options {
	return Options{
		Threads: 6,
		MaxSPEs: 6,
		ScaleOverride: map[string]int{
			"compress":   2,
			"mpegaudio":  4,
			"mandelbrot": 2,
		},
	}
}

func (o Options) scale(s workloads.Spec) int {
	if v, ok := o.ScaleOverride[s.Name]; ok && v > 0 {
		return v
	}
	return s.DefaultScale
}

func (o Options) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// interrupted reports the shared timeout guard's error once it fires;
// figure runners call it between runs so a timed-out sweep stops at
// the next run boundary.
func (o Options) interrupted() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return fmt.Errorf("experiments: %w", o.Ctx.Err())
	default:
		return nil
	}
}

// RunStats captures one benchmark execution.
type RunStats struct {
	Workload string
	// Topology is the machine shape the run used, e.g. "ppe:1,spe:6".
	Topology string
	// Cycles is the completion time (largest core clock at the end).
	Cycles cell.Clock
	// Checksum and Valid report output correctness vs the Go reference.
	Checksum int32
	Valid    bool
	// Accelerator aggregates across all local-store cores (the SPEs on
	// the PS3 shape, plus any VPUs the topology declares); the field
	// names keep the paper's SPE vocabulary.
	SPEShares   [isa.NumClasses]float64
	DataHitRate float64
	CodeHitRate float64
	DMABytes    uint64
	SPEInstrs   uint64
	// PPEInstrs aggregates across service-hosting cores.
	PPEInstrs  uint64
	GCs        uint64
	EIBWait    uint64
	Migrations uint64
	// Steals counts same-kind work steals across all cores (nonzero
	// only under the "steal" and "migrate" schedulers); AllMigrations
	// counts cross-kind thread migrations landing on *any* core —
	// policy-driven moves plus, under the "migrate" scheduler, the
	// cost-gated migrations the scheduler itself performs.
	Steals        uint64
	AllMigrations uint64
}

// runOne executes a workload on a machine with numSPEs SPE cores beside
// the single PPE (0 = everything on the PPE). The figure sweeps are
// PS3-shaped; runOnTopology is the general entry point.
func runOne(opt Options, spec workloads.Spec, threads, scale, numSPEs int,
	mutate func(*vm.Config)) (RunStats, error) {
	return runOnTopology(opt, spec, threads, scale, cell.PS3Topology(numSPEs), mutate, nil)
}

// runOneInspect is runOne plus a post-run VM inspection hook.
func runOneInspect(opt Options, spec workloads.Spec, threads, scale, numSPEs int,
	mutate func(*vm.Config), inspect func(*vm.VM)) (RunStats, error) {
	return runOnTopology(opt, spec, threads, scale, cell.PS3Topology(numSPEs), mutate, inspect)
}

// runOnTopology executes a workload on a machine of the given shape with
// optional config mutation and a post-run VM inspection hook. The
// options' scheduler selection applies to every run, so whole figures
// replay under an alternative scheduler (herabench -sched).
func runOnTopology(opt Options, spec workloads.Spec, threads, scale int, topo cell.Topology,
	mutate func(*vm.Config), inspect func(*vm.VM)) (RunStats, error) {

	if err := opt.interrupted(); err != nil {
		return RunStats{}, err
	}
	prog, err := spec.Build(threads, scale)
	if err != nil {
		return RunStats{}, err
	}
	cfg := vm.DefaultConfig()
	cfg.Machine.Topology = topo
	if opt.Scheduler != "" {
		cfg.Scheduler = opt.Scheduler
	}
	if mutate != nil {
		mutate(&cfg)
	}
	machine, err := vm.New(cfg, prog)
	if err != nil {
		return RunStats{}, err
	}
	th, err := machine.RunMain(spec.MainClass, "main")
	if err != nil {
		return RunStats{}, fmt.Errorf("%s (%s): %w", spec.Name, topo, err)
	}

	st := RunStats{
		Workload: spec.Name,
		Topology: topo.String(),
		Cycles:   machine.Machine.MaxClock(),
		Checksum: int32(uint32(th.Result)),
		GCs:      machine.GCCount,
		EIBWait:  machine.Machine.EIB.WaitCycles,
	}
	st.Valid = st.Checksum == spec.Reference(threads, scale)

	var busy [isa.NumClasses]uint64
	var busyTotal, dHits, dMisses, cHits, cMisses uint64
	for _, c := range machine.Machine.Cores() {
		if c.Kind.HostsServices() {
			st.PPEInstrs += c.Stats.Instrs
		}
		st.Steals += c.Stats.StealsIn
		st.AllMigrations += c.Stats.MigrationsIn
		if !c.Kind.UsesLocalStore() {
			continue
		}
		for i, cy := range c.Stats.Cycles {
			busy[i] += cy
			busyTotal += cy
		}
		dHits += c.Stats.DataHits
		dMisses += c.Stats.DataMisses
		cHits += c.Stats.CodeHits
		cMisses += c.Stats.CodeMisses
		st.DMABytes += c.Stats.DMABytes
		st.SPEInstrs += c.Stats.Instrs
		st.Migrations += c.Stats.MigrationsIn
	}
	if busyTotal > 0 {
		for i := range busy {
			st.SPEShares[i] = float64(busy[i]) / float64(busyTotal)
		}
	}
	if dHits+dMisses > 0 {
		st.DataHitRate = float64(dHits) / float64(dHits+dMisses)
	} else {
		st.DataHitRate = 1
	}
	if cHits+cMisses > 0 {
		st.CodeHitRate = float64(cHits) / float64(cHits+cMisses)
	} else {
		st.CodeHitRate = 1
	}
	if inspect != nil {
		inspect(machine)
	}
	return st, nil
}
