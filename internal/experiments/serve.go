package experiments

import (
	"fmt"
	"strings"

	"herajvm/internal/cell"
	"herajvm/internal/core"
	"herajvm/internal/isa"
	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// The serve driver is the ROADMAP's batch/async workload harness: many
// short benchmark programs submitted as jobs to ONE booted VM at a
// fixed arrival cadence, exercising the schedulers under churn rather
// than one-shot runs. Jobs are drawn round-robin from the paper's
// three workloads, each an isolated class-copy (workloads.BuildMix) so
// concurrent instances share no mutable statics, and the whole matrix
// replays under calendar, steal and migrate — the churn scenario the
// cost-gated migration scheduler was built for: SPE-pinned workers
// overload the SPE pool while the VPUs idle, and only cross-kind
// migration can put them to work.

const (
	defaultServeJobs    = 21
	defaultServeCadence = 500_000
	serveThreads        = 2
)

// serveScales are the per-workload scales the serve driver uses (its
// jobs are "short programs"; Options.ScaleOverride still wins).
var serveScales = map[string]int{
	"compress":   1,
	"mpegaudio":  2,
	"mandelbrot": 1,
}

// DefaultServeTopology returns the serve driver's machine: a
// kind-imbalanced three-kind shape whose SPE pool the round-robin jobs
// overload while two VPUs (and the lone PPE between job mains) idle.
func DefaultServeTopology() cell.Topology {
	return cell.Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 4}, {Kind: isa.VPU, Count: 2},
	}
}

// ServeJob is one job's per-job accounting out of a serve run.
type ServeJob struct {
	ID       int
	Workload string
	// Arrival and Cycles are the job's admission cycle and its
	// admission-to-completion time.
	Arrival cell.Clock
	Cycles  cell.Clock
	// Migrations/Steals/Compiles count the scheduling events the job's
	// own threads experienced.
	Migrations uint64
	Steals     uint64
	Compiles   uint64
	// Valid reports the job's checksum matched the Go reference.
	Valid bool
}

// ServeRun is one scheduler's pass over the whole submission script.
type ServeRun struct {
	Scheduler string
	// Makespan is the machine clock when the last job completed.
	Makespan cell.Clock
	// MeanCycles averages the jobs' admission-to-completion times (the
	// per-job latency the paper's runtime-system view cares about;
	// makespan alone hides queueing delay).
	MeanCycles cell.Clock
	Jobs       []ServeJob
	// Migrations and Steals total the per-job counters.
	Migrations uint64
	Steals     uint64
	// AllValid reports every job's checksum matched its reference.
	AllValid bool
}

// ServeSweep compares the three schedulers on one submission script.
type ServeSweep struct {
	Topology string
	NumJobs  int
	Cadence  uint64
	Runs     []ServeRun
}

// RunServe executes the churn driver: build one program holding
// NumJobs isolated workload copies, boot one VM per scheduler, submit
// every job at its arrival cycle, drain, and report makespan plus
// per-job accounting. The submission script is identical across
// schedulers, and each run is deterministic — replaying the whole
// sweep must reproduce its table byte for byte.
func RunServe(opt Options) (*ServeSweep, error) {
	numJobs := opt.ServeJobs
	if numJobs <= 0 {
		numJobs = defaultServeJobs
	}
	cadence := opt.ServeCadence
	if cadence == 0 {
		cadence = defaultServeCadence
	}
	topo := DefaultServeTopology()
	if len(opt.Topologies) > 0 {
		topo = opt.Topologies[0]
	}

	specs := workloads.All()
	entries := make([]workloads.MixEntry, numJobs)
	for i := range entries {
		spec := specs[i%len(specs)]
		scale := serveScales[spec.Name]
		if v, ok := opt.ScaleOverride[spec.Name]; ok && v > 0 {
			scale = v
		}
		entries[i] = workloads.MixEntry{Spec: spec, Threads: serveThreads, Scale: scale}
	}

	out := &ServeSweep{Topology: topo.String(), NumJobs: numJobs, Cadence: cadence}
	for _, name := range []string{"calendar", "steal", "migrate"} {
		run, err := runServeOnce(opt, name, topo, entries, cadence)
		if err != nil {
			return nil, err
		}
		opt.logf("serve %s on %s: %d jobs, makespan=%d mean=%d steals=%d migrations=%d",
			name, topo, numJobs, run.Makespan, run.MeanCycles, run.Steals, run.Migrations)
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// runServeOnce boots one VM, submits the whole script and drains it.
func runServeOnce(opt Options, scheduler string, topo cell.Topology,
	entries []workloads.MixEntry, cadence uint64) (ServeRun, error) {

	prog, err := workloads.BuildMix(entries)
	if err != nil {
		return ServeRun{}, err
	}
	cfg := vm.DefaultConfig()
	cfg.Machine.Topology = topo
	cfg.Scheduler = scheduler
	sys, err := core.NewSystem(cfg, prog)
	if err != nil {
		return ServeRun{}, err
	}

	jobs := make([]*core.Job, len(entries))
	for i, e := range entries {
		jobs[i], err = sys.Submit(core.JobRequest{
			Class:   e.MainClassOf(i),
			Method:  "main",
			Name:    fmt.Sprintf("%s#%d", e.Spec.Name, i),
			Arrival: uint64(i) * cadence,
		})
		if err != nil {
			return ServeRun{}, fmt.Errorf("serve %s: submit job %d: %w", scheduler, i, err)
		}
	}
	if err := sys.Drain(); err != nil {
		return ServeRun{}, fmt.Errorf("serve %s: %w", scheduler, err)
	}

	run := ServeRun{Scheduler: scheduler, AllValid: true}
	var totalCycles cell.Clock
	for i, job := range jobs {
		res, err := job.Wait() // already done: returns the stored result
		if err != nil {
			return ServeRun{}, fmt.Errorf("serve %s: job %d: %w", scheduler, i, err)
		}
		e := entries[i]
		valid := int32(uint32(res.Value)) == e.Spec.Reference(e.Threads, e.Scale)
		run.AllValid = run.AllValid && valid
		run.Migrations += res.Migrations
		run.Steals += res.Steals
		totalCycles += res.Cycles
		if res.CompletedAt > run.Makespan {
			run.Makespan = res.CompletedAt
		}
		run.Jobs = append(run.Jobs, ServeJob{
			ID:         i,
			Workload:   e.Spec.Name,
			Arrival:    res.AdmittedAt,
			Cycles:     res.Cycles,
			Migrations: res.Migrations,
			Steals:     res.Steals,
			Compiles:   res.Compiles,
			Valid:      valid,
		})
	}
	run.MeanCycles = totalCycles / cell.Clock(len(jobs))
	return run, nil
}

// Table renders the sweep as text: one summary row per scheduler, then
// the migrate run's per-job accounting.
func (s *ServeSweep) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serve: %d jobs round-robin over one booted VM, topology %s, cadence %d\n",
		s.NumJobs, s.Topology, s.Cadence)
	fmt.Fprintf(&b, "%-10s %14s %12s %14s %8s %7s %6s\n",
		"scheduler", "makespan", "vs calendar", "mean job cyc", "steals", "mig", "valid")
	base := float64(s.Runs[0].Makespan)
	for _, r := range s.Runs {
		fmt.Fprintf(&b, "%-10s %14d %11.3fx %14d %8d %7d %6v\n",
			r.Scheduler, r.Makespan, base/float64(r.Makespan), r.MeanCycles,
			r.Steals, r.Migrations, r.AllValid)
	}
	last := s.Runs[len(s.Runs)-1]
	fmt.Fprintf(&b, "per-job (%s):\n", last.Scheduler)
	fmt.Fprintf(&b, "%4s %-12s %12s %12s %5s %7s %9s %6s\n",
		"job", "workload", "arrival", "cycles", "mig", "steals", "compiles", "valid")
	for _, j := range last.Jobs {
		fmt.Fprintf(&b, "%4d %-12s %12d %12d %5d %7d %9d %6v\n",
			j.ID, j.Workload, j.Arrival, j.Cycles, j.Migrations, j.Steals, j.Compiles, j.Valid)
	}
	return b.String()
}
