package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"herajvm/internal/cell"
	"herajvm/internal/core"
	"herajvm/internal/isa"
	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// The serve driver is the ROADMAP's serving harness grown open-loop:
// jobs drawn round-robin from the paper's three workloads arrive at
// the cycles a seeded arrival trace dictates — regardless of whether
// the machine is keeping up — carrying a completion deadline, and the
// booted VM's admission pipeline decides admit/delay/shed per arrival
// from the scheduler's drain estimates. The driver interleaves
// RunUntil(arrival) with Submit so every verdict is decided against
// the machine state actually holding at that arrival, then reports the
// SLO view per scheduler with shedding off and on: p50/p95/p99
// admission→completion latency, shed count, and goodput (deadline-met
// jobs per simulated second). The whole matrix replays byte for byte
// from (trace, seed, jobs, cadence).

const (
	defaultServeJobs    = 21
	defaultServeCadence = 500_000
	defaultServeTrace   = "poisson"
	defaultServeSeed    = 1
	// defaultServeDeadline is the per-job completion deadline in cycles
	// (relative to admission): roomy enough that early jobs on an idle
	// machine meet it, tight enough that deep queues cannot.
	defaultServeDeadline = 60_000_000
	// defaultServeMaxPending is the admission queue-depth backstop for
	// shedding runs — a guard against drain estimates going blind, not
	// the primary control (the deadline probe is).
	defaultServeMaxPending = 32
	serveThreads           = 2
	// servePerJobMax caps the per-job table; trace runs with hundreds
	// of jobs report only the summary matrix.
	servePerJobMax = 40
)

// serveScales are the per-workload scales the serve driver uses (its
// jobs are "short programs"; Options.ScaleOverride still wins).
var serveScales = map[string]int{
	"compress":   1,
	"mpegaudio":  2,
	"mandelbrot": 1,
	// Kernel workloads (resolved through the workloads.ByName fallback)
	// serve at their smallest size: each job is one forRange launch.
	"matmul": 1,
	"nbody":  1,
	"kmeans": 1,
}

// DefaultServeTopology returns the serve driver's machine: a
// kind-imbalanced three-kind shape whose SPE pool the round-robin jobs
// overload while two VPUs (and the lone PPE between job mains) idle.
func DefaultServeTopology() cell.Topology {
	return cell.Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 4}, {Kind: isa.VPU, Count: 2},
	}
}

// ServeJob is one job's per-job accounting out of a serve run.
type ServeJob struct {
	ID       int
	Workload string
	// Arrival is the trace-dictated admission cycle; Verdict the
	// admission pipeline's decision at it.
	Arrival cell.Clock
	Verdict string
	// Latency is admission→completion time (0 for shed jobs) and
	// DeadlineMet whether the job completed by its deadline (false for
	// shed jobs).
	Latency     cell.Clock
	DeadlineMet bool
	// Migrations/Steals/Compiles/GCPauses count the scheduling events
	// the job's own threads experienced; GCCycles is the collector time
	// billed to the job's allocations.
	Migrations uint64
	Steals     uint64
	Compiles   uint64
	GCPauses   uint64
	GCCycles   uint64
	// Valid reports the job's checksum matched the Go reference (true
	// vacuously for shed jobs, which are excluded from AllValid).
	Valid bool
}

// ServeRun is one (scheduler, shedding) pass over the arrival script.
type ServeRun struct {
	Scheduler string
	// Shedding reports whether deadline shedding was enabled.
	Shedding bool
	// Makespan is the simulated cycle the last job completed.
	Makespan cell.Clock
	// P50/P95/P99 are nearest-rank admission→completion latency
	// percentiles over the jobs that ran (shed jobs excluded — their
	// latency is not a number; Shed counts them instead).
	P50, P95, P99 cell.Clock
	// Completed/Shed/Met split the script: jobs that ran, jobs refused
	// at admission, and completed jobs that met their deadline.
	Completed int
	Shed      int
	Met       int
	// Goodput is deadline-met jobs per simulated second — the SLO
	// number the admission pipeline exists to maximise.
	Goodput float64
	Jobs    []ServeJob
	// Migrations and Steals total the per-job counters.
	Migrations uint64
	Steals     uint64
	// AllValid reports every completed job's checksum matched its
	// reference.
	AllValid bool
}

// ServeSweep compares the schedulers, shedding off vs on, on one
// arrival script.
type ServeSweep struct {
	Topology string
	NumJobs  int
	// Cadence is the mean inter-arrival gap in cycles (the rate knob:
	// arrival rate = ClockHz/Cadence jobs per simulated second).
	Cadence uint64
	Trace   string
	Seed    uint64
	// Deadline is the per-job completion deadline (cycles, relative to
	// admission); MaxPending the queue-depth backstop of shedding runs.
	Deadline   cell.Clock
	MaxPending int
	Runs       []ServeRun
}

// RunServe executes the open-loop driver: generate the arrival script
// from (trace, seed, jobs, cadence), then for each scheduler × shedding
// {off, on}, boot one VM, drive the machine to each arrival before
// submitting (so admission verdicts see real machine state), drain,
// and report the SLO view. The script is identical across runs, and
// each run is deterministic — replaying the sweep must reproduce its
// table byte for byte.
func RunServe(opt Options) (*ServeSweep, error) {
	numJobs := opt.ServeJobs
	if numJobs <= 0 {
		numJobs = defaultServeJobs
	}
	cadence := opt.ServeCadence
	if cadence == 0 {
		cadence = defaultServeCadence
	}
	trace := opt.ServeTrace
	if trace == "" {
		trace = defaultServeTrace
	}
	seed := opt.ServeSeed
	if seed == 0 {
		seed = defaultServeSeed
	}
	deadline := opt.ServeDeadline
	if deadline == 0 {
		deadline = defaultServeDeadline
	}
	maxPending := opt.ServeMaxPending
	if maxPending == 0 {
		maxPending = defaultServeMaxPending
	}
	topo := DefaultServeTopology()
	if len(opt.Topologies) > 0 {
		topo = opt.Topologies[0]
	}
	schedulers := []string{"calendar", "steal", "migrate"}
	if opt.Scheduler != "" {
		schedulers = []string{opt.Scheduler}
	}

	arrivals, err := Arrivals(trace, seed, numJobs, cadence)
	if err != nil {
		return nil, err
	}

	entries, err := serveEntries(opt, numJobs)
	if err != nil {
		return nil, err
	}

	out := &ServeSweep{Topology: topo.String(), NumJobs: numJobs, Cadence: cadence,
		Trace: trace, Seed: seed, Deadline: deadline, MaxPending: maxPending}
	for _, name := range schedulers {
		for _, shed := range []bool{false, true} {
			if err := opt.interrupted(); err != nil {
				return nil, err
			}
			run, err := runServeOnce(name, topo, entries, arrivals, deadline, maxPending, shed)
			if err != nil {
				return nil, err
			}
			opt.logf("serve %s shed=%v on %s: %d jobs, %d shed, goodput=%.2f/s p99=%d",
				name, shed, topo, numJobs, run.Shed, run.Goodput, run.P99)
			out.Runs = append(out.Runs, run)
		}
	}
	return out, nil
}

// runServeOnce boots one VM and plays the arrival script open-loop:
// drive the machine to each arrival, submit, drain the tail.
func runServeOnce(scheduler string, topo cell.Topology, entries []workloads.MixEntry,
	arrivals []cell.Clock, deadline cell.Clock, maxPending int, shed bool) (ServeRun, error) {

	prog, err := workloads.BuildMix(entries)
	if err != nil {
		return ServeRun{}, err
	}
	cfg := vm.DefaultConfig()
	cfg.Machine.Topology = topo
	cfg.Scheduler = scheduler
	if shed {
		cfg.Admission = vm.AdmissionConfig{MaxPending: maxPending, Shed: true}
	}
	sys, err := core.NewSystem(cfg, prog)
	if err != nil {
		return ServeRun{}, err
	}

	jobs := make([]*core.Job, len(entries))
	for i, e := range entries {
		// Open loop: advance simulated time to the arrival first, so the
		// verdict is decided against the machine state holding then.
		if err := sys.RunUntil(arrivals[i]); err != nil {
			return ServeRun{}, fmt.Errorf("serve %s: advancing to job %d: %w", scheduler, i, err)
		}
		jobs[i], _, err = sys.Submit(core.JobRequest{
			Class:    e.MainClassOf(i),
			Method:   "main",
			Name:     fmt.Sprintf("%s#%d", e.Spec.Name, i),
			Arrival:  arrivals[i],
			Deadline: deadline,
		})
		if err != nil {
			return ServeRun{}, fmt.Errorf("serve %s: submit job %d: %w", scheduler, i, err)
		}
	}
	if err := sys.Drain(); err != nil {
		return ServeRun{}, fmt.Errorf("serve %s: %w", scheduler, err)
	}

	run := ServeRun{Scheduler: scheduler, Shedding: shed, AllValid: true}
	var latencies []cell.Clock
	for i, job := range jobs {
		res, err := job.Wait() // already done: returns the stored result
		if err != nil {
			return ServeRun{}, fmt.Errorf("serve %s: job %d: %w", scheduler, i, err)
		}
		e := entries[i]
		sj := ServeJob{
			ID:          i,
			Workload:    e.Spec.Name,
			Arrival:     res.AdmittedAt,
			Verdict:     res.Verdict.String(),
			DeadlineMet: res.DeadlineMet,
			Migrations:  res.Migrations,
			Steals:      res.Steals,
			Compiles:    res.Compiles,
			GCPauses:    res.GCPauses,
			GCCycles:    res.GCCycles,
			Valid:       true,
		}
		if res.Shed {
			run.Shed++
		} else {
			sj.Latency = res.Cycles
			sj.Valid = int32(uint32(res.Value)) == e.Spec.Reference(e.Threads, e.Scale)
			run.AllValid = run.AllValid && sj.Valid
			run.Completed++
			latencies = append(latencies, sj.Latency)
			if res.DeadlineMet {
				run.Met++
			}
			if res.CompletedAt > run.Makespan {
				run.Makespan = res.CompletedAt
			}
		}
		run.Migrations += res.Migrations
		run.Steals += res.Steals
		run.Jobs = append(run.Jobs, sj)
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	run.P50 = percentile(latencies, 50)
	run.P95 = percentile(latencies, 95)
	run.P99 = percentile(latencies, 99)
	if run.Makespan > 0 {
		hz := cfg.Machine.EffectiveClockHz()
		run.Goodput = float64(run.Met) / (float64(run.Makespan) / hz)
	}
	return run, nil
}

// percentile is the nearest-rank percentile of sorted latencies.
func percentile(sorted []cell.Clock, p int) cell.Clock {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// JSON renders the sweep as an indented JSON document — the
// BENCH_serve.json artifact shape (goodput and latency percentiles per
// scheduler × shedding run, plus the arrival-script parameters that
// name the run).
func (s *ServeSweep) JSON() ([]byte, error) {
	// The artifact carries the summary matrix, not per-job rows: its
	// job is trend tracking across commits.
	type runRow struct {
		Scheduler string     `json:"scheduler"`
		Shedding  bool       `json:"shedding"`
		Completed int        `json:"completed"`
		Shed      int        `json:"shed"`
		Met       int        `json:"met"`
		Goodput   float64    `json:"goodput_per_sec"`
		P50       cell.Clock `json:"p50_cycles"`
		P95       cell.Clock `json:"p95_cycles"`
		P99       cell.Clock `json:"p99_cycles"`
		AllValid  bool       `json:"all_valid"`
	}
	doc := struct {
		Topology   string     `json:"topology"`
		NumJobs    int        `json:"jobs"`
		Cadence    uint64     `json:"cadence_cycles"`
		Trace      string     `json:"trace"`
		Seed       uint64     `json:"seed"`
		Deadline   cell.Clock `json:"deadline_cycles"`
		MaxPending int        `json:"max_pending"`
		Runs       []runRow   `json:"runs"`
	}{s.Topology, s.NumJobs, s.Cadence, s.Trace, s.Seed, s.Deadline, s.MaxPending, nil}
	for _, r := range s.Runs {
		doc.Runs = append(doc.Runs, runRow{r.Scheduler, r.Shedding, r.Completed,
			r.Shed, r.Met, r.Goodput, r.P50, r.P95, r.P99, r.AllValid})
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Table renders the sweep as text: one summary row per (scheduler,
// shedding) run, then per-job accounting for the final run when the
// script is small enough to print.
func (s *ServeSweep) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serve: %d jobs, %s trace (seed %d), mean gap %d cycles, deadline %d, topology %s\n",
		s.NumJobs, s.Trace, s.Seed, s.Cadence, s.Deadline, s.Topology)
	fmt.Fprintf(&b, "%-10s %5s %5s %4s %4s %10s %12s %12s %12s %8s %6s\n",
		"scheduler", "shed?", "done", "shed", "met", "goodput/s", "p50", "p95", "p99", "steals", "valid")
	for _, r := range s.Runs {
		fmt.Fprintf(&b, "%-10s %5v %5d %4d %4d %10.2f %12d %12d %12d %8d %6v\n",
			r.Scheduler, r.Shedding, r.Completed, r.Shed, r.Met, r.Goodput,
			r.P50, r.P95, r.P99, r.Steals, r.AllValid)
	}
	last := s.Runs[len(s.Runs)-1]
	if len(last.Jobs) <= servePerJobMax {
		fmt.Fprintf(&b, "per-job (%s, shed=%v):\n", last.Scheduler, last.Shedding)
		fmt.Fprintf(&b, "%4s %-12s %12s %-9s %12s %5s %5s %7s %6s %6s\n",
			"job", "workload", "arrival", "verdict", "latency", "met", "mig", "steals", "gc", "valid")
		for _, j := range last.Jobs {
			fmt.Fprintf(&b, "%4d %-12s %12d %-9s %12d %5v %5d %7d %6d %6v\n",
				j.ID, j.Workload, j.Arrival, j.Verdict, j.Latency, j.DeadlineMet,
				j.Migrations, j.Steals, j.GCPauses, j.Valid)
		}
	}
	return b.String()
}
