package workloads

import (
	"fmt"

	"herajvm/internal/classfile"
)

// MixEntry is one job instance in a multi-job program: a workload plus
// its worker count and scale.
type MixEntry struct {
	Spec    Spec
	Threads int
	Scale   int
}

// JobPrefix returns the class-name prefix isolating mix entry i's
// classes ("J07" — entry i's entry point is JobPrefix(i)+MainClass).
func JobPrefix(i int) string { return fmt.Sprintf("J%02d", i) }

// MainClassOf returns mix entry i's entry-point class name.
func (e MixEntry) MainClassOf(i int) string { return JobPrefix(i) + e.Spec.MainClass }

// BuildMix builds one program containing an isolated copy of each
// entry's workload classes (separate Counters, separate coefficient
// tables), so many benchmark instances — of the same workload or
// different ones — can run concurrently as jobs on one booted VM
// without sharing mutable statics. Entry i's entry point is
// JobPrefix(i)+MainClass.
func BuildMix(entries []MixEntry) (*classfile.Program, error) {
	p := stdlibProgram()
	for i, e := range entries {
		if e.Spec.BuildInto == nil {
			return nil, fmt.Errorf("workloads: %s has no BuildInto builder", e.Spec.Name)
		}
		if err := e.Spec.BuildInto(p, JobPrefix(i), e.Threads, e.Scale); err != nil {
			return nil, fmt.Errorf("workloads: mix entry %d (%s): %w", i, e.Spec.Name, err)
		}
	}
	return p, nil
}
