// Package workloads contains the three benchmarks of the paper's
// evaluation, written against the bytecode assembler and validated
// against pure-Go reference implementations:
//
//   - compress: LZW compression over byte/int tables (SPECjvm2008
//     compress is LZW-based) — irregular main-memory access, the
//     paper's data-cache-bound workload;
//   - mpegaudio: a multi-stage audio decoder proxy (bitstream unpack,
//     switch-based symbol decode, dequantisation, antialias butterflies,
//     IMDCT, polyphase synthesis) spread across many methods — the
//     paper's code-cache-bound workload;
//   - mandelbrot: an 800x600-style escape-time fractal — the paper's
//     floating-point-bound workload.
//
// Every workload builds the same multi-threaded harness shape as the
// SPECjvm2008 runs the paper used: W worker threads (subclasses of
// java/lang/Thread) partition the work by worker ID, accumulate an int32
// checksum, and publish it through a synchronized adder; main starts and
// joins the workers and returns the total. The checksum is identical
// regardless of thread count or core placement, which the tests verify
// against the Go references.
package workloads

import (
	"fmt"

	"herajvm/internal/classfile"
	"herajvm/internal/vm"
)

// Spec describes one buildable workload.
type Spec struct {
	// Name is the benchmark name as the paper uses it.
	Name string
	// MainClass.main is the entry point; it returns the checksum.
	MainClass string
	// Build constructs the program for the given worker count and scale.
	Build func(threads, scale int) (*classfile.Program, error)
	// BuildInto adds an isolated copy of the workload's classes —
	// including its Counter and any coefficient tables, so per-instance
	// statics never collide — to an existing stdlib-equipped program
	// under a class-name prefix. The copy's entry point is
	// prefix+MainClass. Many copies (of the same or different
	// workloads) can share one program, which is how the job-serving
	// harness runs many concurrent benchmark instances on one booted
	// VM.
	BuildInto func(p *classfile.Program, prefix string, threads, scale int) error
	// Reference computes the expected checksum in pure Go.
	Reference func(threads, scale int) int32
	// DefaultScale is the scale used by the experiment harness.
	DefaultScale int
}

// All returns the three paper workloads in the paper's order.
func All() []Spec {
	return []Spec{Compress(), MPEGAudio(), Mandelbrot()}
}

// ByName finds a workload. Kernel workload names (matmul, nbody,
// kmeans) resolve to their Parallel.forRange variant, so serve traces
// and cluster mixes can interleave data-parallel kernel jobs with the
// paper workloads.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	if k, err := KernelByName(name); err == nil {
		return k.AsSpec(true), nil
	}
	return Spec{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// harness is the shared worker scaffolding.
type harness struct {
	p       *classfile.Program
	worker  *classfile.Class
	run     *classfile.Method
	id      *classfile.Field
	workers *classfile.Field
	scale   *classfile.Field
	total   *classfile.Field
	add     *classfile.Method
}

// stdlibProgram returns a fresh program with the built-in library
// installed — the base every workload build starts from.
func stdlibProgram() *classfile.Program {
	p := classfile.NewProgram()
	vm.Stdlib(p)
	return p
}

// buildVia adapts a workload's BuildInto builder to the one-shot Build
// signature: a fresh stdlib program holding one unprefixed copy.
func buildVia(into func(p *classfile.Program, prefix string, threads, scale int) error,
) func(threads, scale int) (*classfile.Program, error) {
	return func(threads, scale int) (*classfile.Program, error) {
		p := stdlibProgram()
		if err := into(p, "", threads, scale); err != nil {
			return nil, err
		}
		return p, nil
	}
}

// newHarness creates a program with the stdlib, a Counter class with a
// synchronized adder, and a Worker (extends Thread) whose run() body the
// workload fills in. run() is annotated so the placement policy sends
// workers to SPEs when the machine has them.
func newHarness(workerName string) *harness {
	return newHarnessIn(stdlibProgram(), "", workerName)
}

// newHarnessIn is newHarness into an existing stdlib-equipped program,
// with every created class name prefixed so multiple workload copies
// coexist without sharing statics (each copy gets its own Counter).
func newHarnessIn(p *classfile.Program, prefix, workerName string) *harness {
	threadCls := p.Lookup("java/lang/Thread")

	counter := p.NewClass(prefix+"Counter", nil)
	total := counter.NewStaticField("total", classfile.Int)
	add := counter.NewMethod("add", classfile.FlagStatic|classfile.FlagSynchronized,
		classfile.Void, classfile.Int)
	{
		a := add.Asm()
		a.GetStatic(total)
		a.LoadI(0)
		a.AddI()
		a.PutStatic(total)
		a.RetVoid()
		a.MustBuild()
	}

	w := p.NewClass(prefix+workerName, threadCls)
	h := &harness{
		p:       p,
		worker:  w,
		id:      w.NewField("id", classfile.Int),
		workers: w.NewField("workers", classfile.Int),
		scale:   w.NewField("scale", classfile.Int),
		total:   total,
		add:     add,
	}
	h.run = w.NewMethod("run", 0, classfile.Void).Annotate(classfile.AnnRunOnSPE)
	return h
}

// buildMain emits MainClass.main: spawn `threads` workers with ids
// 0..threads-1, start them, join them, return Counter.total.
// initCall, when non-nil, is a static no-arg method invoked first
// (coefficient-table setup).
func (h *harness) buildMain(mainClass string, threads, scale int, initCall *classfile.Method) {
	threadCls := h.p.Lookup("java/lang/Thread")
	start := threadCls.MethodByName("start")
	join := threadCls.MethodByName("join")

	c := h.p.NewClass(mainClass, nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	if initCall != nil {
		a.InvokeStatic(initCall)
	}
	// Worker[] ws = new Worker[threads];
	a.ConstI(int32(threads))
	a.ANewArray(h.worker)
	a.StoreRef(0)
	loop1, done1 := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop1)
	a.LoadI(1)
	a.ConstI(int32(threads))
	a.IfICmpGE(done1)
	a.New(h.worker)
	a.StoreRef(2)
	a.LoadRef(2)
	a.LoadI(1)
	a.PutField(h.id)
	a.LoadRef(2)
	a.ConstI(int32(threads))
	a.PutField(h.workers)
	a.LoadRef(2)
	a.ConstI(int32(scale))
	a.PutField(h.scale)
	a.LoadRef(0)
	a.LoadI(1)
	a.LoadRef(2)
	a.AStore(classfile.ElemRef)
	a.LoadRef(2)
	a.InvokeVirtual(start)
	a.Inc(1, 1)
	a.Goto(loop1)
	a.Bind(done1)

	loop2, done2 := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop2)
	a.LoadI(1)
	a.ConstI(int32(threads))
	a.IfICmpGE(done2)
	a.LoadRef(0)
	a.LoadI(1)
	a.ALoad(classfile.ElemRef)
	a.InvokeVirtual(join)
	a.Inc(1, 1)
	a.Goto(loop2)
	a.Bind(done2)

	a.GetStatic(h.total)
	a.Ret()
	a.MustBuild()
}
