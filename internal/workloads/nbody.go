package workloads

import (
	"herajvm/internal/classfile"
)

// NBody parameters: a scale of s simulates one all-pairs force
// evaluation over 32s bodies in the plane with Plummer softening
// (eps keeps r² away from zero, so no square root is needed). A chunk
// is a band of bodies; every worker reads all positions and masses but
// accumulates only its own bodies' forces — TornadoVM's NBody demo
// decomposition.
const (
	nbodyDefaultScale = 4
	nbodySoftening    = 0.5
)

func nbodyCount(scale int) int32 { return int32(32 * scale) }

// NBody returns the all-pairs gravity kernel workload: the
// FP-divide-bound member of the showcase set. Each body contributes
// (int)(ax*4) + (int)(ay*4) to the checksum — per-iteration terms, so
// the total is invariant under any body split.
func NBody() KernelSpec {
	return KernelSpec{
		Name:         "nbody",
		KernelClass:  "NBodyKernel",
		ScalarClass:  "NBodyScalar",
		DefaultScale: nbodyDefaultScale,
		Build:        buildKernelVia(buildNBodyInto),
		BuildInto:    buildNBodyInto,
		Reference:    refNBody,
	}
}

func buildNBodyInto(p *classfile.Program, prefix string, scale int) error {
	n := nbodyCount(scale)
	h := newKernelHarnessIn(p, prefix, "NBodyBody")
	xF := h.body.NewField("x", classfile.Ref)
	yF := h.body.NewField("y", classfile.Ref)
	mF := h.body.NewField("m", classfile.Ref)
	nF := h.body.NewField("n", classfile.Int)

	// run(from, to): accumulate forces on bodies [from, to).
	// Locals: 0=this 1=from 2=to 3=i 4=j 5=chk 6=ax 7=ay 8=dx 9=dy
	//         10=r2 11=f 12=n 13=x 14=y 15=m 16=xi 17=yi
	const (
		lI, lJ, lChk, lAx, lAy, lDx, lDy  = 3, 4, 5, 6, 7, 8, 9
		lR2, lF, lN, lX, lY, lM, lXi, lYi = 10, 11, 12, 13, 14, 15, 16, 17
	)
	a := h.run.Asm()
	a.ConstI(0)
	a.StoreI(lChk)
	a.LoadRef(0)
	a.GetField(nF)
	a.StoreI(lN)
	a.LoadRef(0)
	a.GetField(xF)
	a.StoreRef(lX)
	a.LoadRef(0)
	a.GetField(yF)
	a.StoreRef(lY)
	a.LoadRef(0)
	a.GetField(mF)
	a.StoreRef(lM)

	a.LoadI(1)
	a.StoreI(lI)
	bodyLoop, bodyDone := a.NewLabel(), a.NewLabel()
	a.Bind(bodyLoop)
	a.LoadI(lI)
	a.LoadI(2)
	a.IfICmpGE(bodyDone)
	// xi = x[i]; yi = y[i]; ax = ay = 0
	a.LoadRef(lX)
	a.LoadI(lI)
	a.ALoad(classfile.ElemDouble)
	a.StoreD(lXi)
	a.LoadRef(lY)
	a.LoadI(lI)
	a.ALoad(classfile.ElemDouble)
	a.StoreD(lYi)
	a.ConstD(0)
	a.StoreD(lAx)
	a.ConstD(0)
	a.StoreD(lAy)

	a.ConstI(0)
	a.StoreI(lJ)
	pairLoop, pairDone := a.NewLabel(), a.NewLabel()
	a.Bind(pairLoop)
	a.LoadI(lJ)
	a.LoadI(lN)
	a.IfICmpGE(pairDone)
	// dx = x[j] - xi; dy = y[j] - yi
	a.LoadRef(lX)
	a.LoadI(lJ)
	a.ALoad(classfile.ElemDouble)
	a.LoadD(lXi)
	a.SubD()
	a.StoreD(lDx)
	a.LoadRef(lY)
	a.LoadI(lJ)
	a.ALoad(classfile.ElemDouble)
	a.LoadD(lYi)
	a.SubD()
	a.StoreD(lDy)
	// r2 = dx*dx + dy*dy + eps
	a.LoadD(lDx)
	a.LoadD(lDx)
	a.MulD()
	a.LoadD(lDy)
	a.LoadD(lDy)
	a.MulD()
	a.AddD()
	a.ConstD(nbodySoftening)
	a.AddD()
	a.StoreD(lR2)
	// f = m[j] / r2
	a.LoadRef(lM)
	a.LoadI(lJ)
	a.ALoad(classfile.ElemDouble)
	a.LoadD(lR2)
	a.DivD()
	a.StoreD(lF)
	// ax += f*dx; ay += f*dy
	a.LoadD(lAx)
	a.LoadD(lF)
	a.LoadD(lDx)
	a.MulD()
	a.AddD()
	a.StoreD(lAx)
	a.LoadD(lAy)
	a.LoadD(lF)
	a.LoadD(lDy)
	a.MulD()
	a.AddD()
	a.StoreD(lAy)
	a.Inc(lJ, 1)
	a.Goto(pairLoop)
	a.Bind(pairDone)

	// chk += (int)(ax*4.0) + (int)(ay*4.0)
	a.LoadI(lChk)
	a.LoadD(lAx)
	a.ConstD(4.0)
	a.MulD()
	a.D2I()
	a.AddI()
	a.LoadD(lAy)
	a.ConstD(4.0)
	a.MulD()
	a.D2I()
	a.AddI()
	a.StoreI(lChk)
	a.Inc(lI, 1)
	a.Goto(bodyLoop)
	a.Bind(bodyDone)

	a.LoadI(lChk)
	a.InvokeStatic(h.add)
	a.RetVoid()
	a.MustBuild()

	// Setup. Entry locals: 0=body 1=idx 2=x 3=y 4=m
	h.buildEntries(prefix+"NBodyKernel", prefix+"NBodyScalar", n, func(a *classfile.Asm) {
		a.ConstI(n)
		a.NewArray(classfile.ElemDouble)
		a.StoreRef(2)
		emitFillLinear(a, 2, 1, n, 13, 7, 41, 20, 0.25)
		a.ConstI(n)
		a.NewArray(classfile.ElemDouble)
		a.StoreRef(3)
		emitFillLinear(a, 3, 1, n, 17, 3, 37, 18, 0.25)
		a.ConstI(n)
		a.NewArray(classfile.ElemDouble)
		a.StoreRef(4)
		emitFillLinear(a, 4, 1, n, 11, 5, 23, -1, 0.5) // masses: (seed%23)+1 > 0
		a.New(h.body)
		a.StoreRef(0)
		a.LoadRef(0)
		a.LoadRef(2)
		a.PutField(xF)
		a.LoadRef(0)
		a.LoadRef(3)
		a.PutField(yF)
		a.LoadRef(0)
		a.LoadRef(4)
		a.PutField(mF)
		a.LoadRef(0)
		a.ConstI(n)
		a.PutField(nF)
	})
	return nil
}

// refNBody mirrors the bytecode exactly in Go.
func refNBody(scale int) int32 {
	n := nbodyCount(scale)
	x := fillLinear(n, 13, 7, 41, 20, 0.25)
	y := fillLinear(n, 17, 3, 37, 18, 0.25)
	m := fillLinear(n, 11, 5, 23, -1, 0.5)
	var chk int32
	for i := int32(0); i < n; i++ {
		xi, yi := x[i], y[i]
		ax, ay := 0.0, 0.0
		for j := int32(0); j < n; j++ {
			dx := x[j] - xi
			dy := y[j] - yi
			r2 := dx*dx + dy*dy + nbodySoftening
			f := m[j] / r2
			ax += f * dx
			ay += f * dy
		}
		chk += int32(ax*4.0) + int32(ay*4.0)
	}
	return chk
}
