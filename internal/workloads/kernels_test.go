package workloads

import (
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/vm"
)

// kernelTestTopology is the VPU-bearing showcase machine the launch
// planner routes data-parallel work onto.
func kernelTestTopology() cell.Topology {
	return cell.Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 4}, {Kind: isa.VPU, Count: 2},
	}
}

func kernelConfig(topo cell.Topology) vm.Config {
	cfg := vm.DefaultConfig()
	cfg.Machine.MainMemory = 32 << 20
	cfg.Machine.Topology = topo
	cfg.HeapBytes = 16 << 20
	cfg.CodeBytes = 2 << 20
	return cfg
}

// runKernelVariant builds one kernel workload and runs the chosen entry
// as a job, returning the checksum and the job for stats inspection.
func runKernelVariant(t *testing.T, k KernelSpec, kernel bool, scale int,
	topo cell.Topology) (int32, *vm.VM, *vm.Job) {
	t.Helper()
	p, err := k.Build(scale)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := vm.New(kernelConfig(topo), p)
	if err != nil {
		t.Fatal(err)
	}
	entry := k.ScalarClass
	if kernel {
		entry = k.KernelClass
	}
	j, err := machine.SubmitJob(vm.JobSpec{Name: entry, Class: entry, Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if err := machine.WaitJob(j); err != nil {
		t.Fatalf("%s/%s: %v", k.Name, entry, err)
	}
	return int32(uint32(j.Root().Result)), machine, j
}

// TestKernelWorkloadsDifferential is the subsystem's central contract:
// for every showcase workload, on both the VPU-bearing machine and the
// VPU-less PS3 baseline, the scalar run, the kernel run and the pure-Go
// reference agree byte for byte — the offload changes where and how
// fast, never what.
func TestKernelWorkloadsDifferential(t *testing.T) {
	topos := map[string]cell.Topology{
		"ppe1-spe4-vpu2": kernelTestTopology(),
		"ppe1-spe6":      cell.PS3Topology(6),
	}
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			const scale = 1
			want := k.Reference(scale)
			for name, topo := range topos {
				scalar, _, sj := runKernelVariant(t, k, false, scale, topo)
				kernel, _, kj := runKernelVariant(t, k, true, scale, topo)
				if scalar != want || kernel != want {
					t.Errorf("%s: scalar=%d kernel=%d, want both %d", name, scalar, kernel, want)
				}
				if sj.Stats.KernelLaunches != 0 {
					t.Errorf("%s: scalar variant launched %d kernels", name, sj.Stats.KernelLaunches)
				}
				if kj.Stats.KernelLaunches != 1 || kj.Stats.KernelWorkers == 0 {
					t.Errorf("%s: kernel variant stats %+v, want one launch with workers",
						name, kj.Stats)
				}
			}
		})
	}
}

// TestKernelWorkloadsStageDMA: on the local-store pool the launch must
// bill real staging DMA against the job and the chosen cores.
func TestKernelWorkloadsStageDMA(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			_, machine, j := runKernelVariant(t, k, true, 1, kernelTestTopology())
			if j.Stats.KernelDMABytes == 0 {
				t.Error("no staging DMA billed to the job")
			}
			var staged uint64
			for _, c := range machine.Machine.CoresOf(isa.VPU) {
				staged += c.Stats.DataStaged
			}
			for _, c := range machine.Machine.CoresOf(isa.SPE) {
				staged += c.Stats.DataStaged
			}
			if staged == 0 {
				t.Error("no core staged any tiles")
			}
		})
	}
}

// TestKernelWorkloadsDeterministicReplay: two fresh machines running
// the same kernel variant agree on cycles, stats and checksum.
func TestKernelWorkloadsDeterministicReplay(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			r1, _, j1 := runKernelVariant(t, k, true, 1, kernelTestTopology())
			r2, _, j2 := runKernelVariant(t, k, true, 1, kernelTestTopology())
			if r1 != r2 {
				t.Errorf("replay checksum drifted: %d vs %d", r1, r2)
			}
			if j1.Cycles() != j2.Cycles() {
				t.Errorf("replay cycles drifted: %d vs %d", j1.Cycles(), j2.Cycles())
			}
			if j1.Stats != j2.Stats {
				t.Errorf("replay stats drifted:\n %+v\n %+v", j1.Stats, j2.Stats)
			}
		})
	}
}

// TestKernelWorkloadsAsSpecMix: the Spec adapter lets kernel workloads
// ride the job-mix machinery beside the paper workloads, isolated per
// prefix.
func TestKernelWorkloadsAsSpecMix(t *testing.T) {
	mm := Matmul()
	entries := []MixEntry{
		{Spec: mm.AsSpec(true), Threads: 1, Scale: 1},
		{Spec: mm.AsSpec(false), Threads: 1, Scale: 1},
	}
	p, err := BuildMix(entries)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := vm.New(kernelConfig(kernelTestTopology()), p)
	if err != nil {
		t.Fatal(err)
	}
	want := mm.Reference(1)
	for i, e := range entries {
		j, err := machine.SubmitJob(vm.JobSpec{
			Name: e.MainClassOf(i), Class: e.MainClassOf(i), Method: "main"})
		if err != nil {
			t.Fatal(err)
		}
		if err := machine.WaitJob(j); err != nil {
			t.Fatal(err)
		}
		if got := int32(uint32(j.Root().Result)); got != want {
			t.Errorf("mix entry %d: checksum %d, want %d", i, got, want)
		}
	}
}
