package workloads

import (
	"herajvm/internal/classfile"
)

// Mandelbrot parameters: a scale of s renders a (32s x 24s) region of
// the classic [-2,1]x[-1.2,1.2] window with up to 48 iterations per
// pixel. The paper's own mandelbrot is 800x600 (scale 25); the
// experiment default keeps simulation time reasonable while preserving
// the workload's character (the checksum and cycle mix are
// scale-independent in shape).
const (
	mandelXMin, mandelXMax = -2.0, 1.0
	mandelYMin, mandelYMax = -1.2, 1.2
	mandelMaxIter          = 48
	mandelDefaultScale     = 5
)

// Mandelbrot returns the floating-point-bound workload: each worker
// renders an interleaved set of rows, summing iteration counts as its
// checksum. The inner loop is almost pure double arithmetic, matching
// the Figure 5 profile that explains mandelbrot's SPE advantage.
func Mandelbrot() Spec {
	return Spec{
		Name:         "mandelbrot",
		MainClass:    "MandelbrotMain",
		DefaultScale: mandelDefaultScale,
		Build:        buildVia(buildMandelbrotInto),
		BuildInto:    buildMandelbrotInto,
		Reference:    refMandelbrot,
	}
}

func buildMandelbrotInto(p *classfile.Program, prefix string, threads, scale int) error {
	h := newHarnessIn(p, prefix, "MandelWorker")
	a := h.run.Asm()

	// Locals: 0=this 1=chk 2=y 3=x 4=cy 5=cx 6=zx 7=zy 8=iter 9=t
	//         10=W 11=width 12=height 13=dx 14=dy 15=rowBuf
	const (
		lChk, lY, lX, lCy, lCx, lZx, lZy, lIter, lT = 1, 2, 3, 4, 5, 6, 7, 8, 9
		lW, lWidth, lHeight, lDx, lDy, lRow         = 10, 11, 12, 13, 14, 15
	)

	a.ConstI(0)
	a.StoreI(lChk)
	a.LoadRef(0)
	a.GetField(h.workers)
	a.StoreI(lW)
	// width = 32*scale; height = 24*scale
	a.LoadRef(0)
	a.GetField(h.scale)
	a.ConstI(32)
	a.MulI()
	a.StoreI(lWidth)
	a.LoadRef(0)
	a.GetField(h.scale)
	a.ConstI(24)
	a.MulI()
	a.StoreI(lHeight)
	// dx = (xmax-xmin)/width; dy = (ymax-ymin)/height
	a.ConstD(mandelXMax - mandelXMin)
	a.LoadI(lWidth)
	a.I2D()
	a.DivD()
	a.StoreD(lDx)
	a.ConstD(mandelYMax - mandelYMin)
	a.LoadI(lHeight)
	a.I2D()
	a.DivD()
	a.StoreD(lDy)
	// rowBuf = new int[width]: each worker renders into its own row
	// buffer (the paper's mandelbrot renders an 800x600 image; a private
	// buffer avoids false sharing between SPE write-back blocks).
	a.LoadI(lWidth)
	a.NewArray(classfile.ElemInt)
	a.StoreRef(lRow)

	// for (y = id; y < height; y += W)
	a.LoadRef(0)
	a.GetField(h.id)
	a.StoreI(lY)
	rowLoop, rowDone := a.NewLabel(), a.NewLabel()
	a.Bind(rowLoop)
	a.LoadI(lY)
	a.LoadI(lHeight)
	a.IfICmpGE(rowDone)
	// cy = ymin + y*dy
	a.ConstD(mandelYMin)
	a.LoadI(lY)
	a.I2D()
	a.LoadD(lDy)
	a.MulD()
	a.AddD()
	a.StoreD(lCy)

	// for (x = 0; x < width; x++)
	a.ConstI(0)
	a.StoreI(lX)
	colLoop, colDone := a.NewLabel(), a.NewLabel()
	a.Bind(colLoop)
	a.LoadI(lX)
	a.LoadI(lWidth)
	a.IfICmpGE(colDone)
	// cx = xmin + x*dx
	a.ConstD(mandelXMin)
	a.LoadI(lX)
	a.I2D()
	a.LoadD(lDx)
	a.MulD()
	a.AddD()
	a.StoreD(lCx)
	// zx = zy = 0; iter = 0
	a.ConstD(0)
	a.StoreD(lZx)
	a.ConstD(0)
	a.StoreD(lZy)
	a.ConstI(0)
	a.StoreI(lIter)

	// while (zx*zx + zy*zy <= 4.0 && iter < maxIter)
	escLoop, escDone := a.NewLabel(), a.NewLabel()
	a.Bind(escLoop)
	a.LoadD(lZx)
	a.LoadD(lZx)
	a.MulD()
	a.LoadD(lZy)
	a.LoadD(lZy)
	a.MulD()
	a.AddD()
	a.ConstD(4.0)
	a.CmpDG()
	a.IfGT(escDone) // |z|^2 > 4
	a.LoadI(lIter)
	a.ConstI(mandelMaxIter)
	a.IfICmpGE(escDone)
	// t = zx*zx - zy*zy + cx
	a.LoadD(lZx)
	a.LoadD(lZx)
	a.MulD()
	a.LoadD(lZy)
	a.LoadD(lZy)
	a.MulD()
	a.SubD()
	a.LoadD(lCx)
	a.AddD()
	a.StoreD(lT)
	// zy = 2*zx*zy + cy
	a.ConstD(2.0)
	a.LoadD(lZx)
	a.MulD()
	a.LoadD(lZy)
	a.MulD()
	a.LoadD(lCy)
	a.AddD()
	a.StoreD(lZy)
	// zx = t
	a.LoadD(lT)
	a.StoreD(lZx)
	a.Inc(lIter, 1)
	a.Goto(escLoop)
	a.Bind(escDone)

	// rowBuf[x] = iter; chk += iter
	a.LoadRef(lRow)
	a.LoadI(lX)
	a.LoadI(lIter)
	a.AStore(classfile.ElemInt)
	a.LoadI(lChk)
	a.LoadI(lIter)
	a.AddI()
	a.StoreI(lChk)
	a.Inc(lX, 1)
	a.Goto(colLoop)
	a.Bind(colDone)

	// y += W
	a.LoadI(lY)
	a.LoadI(lW)
	a.AddI()
	a.StoreI(lY)
	a.Goto(rowLoop)
	a.Bind(rowDone)

	a.LoadI(lChk)
	a.InvokeStatic(h.add)
	a.RetVoid()
	a.MustBuild()

	h.buildMain(prefix+"MandelbrotMain", threads, scale, nil)
	return nil
}

// refMandelbrot mirrors the bytecode exactly in Go (same float64
// operation order, so the checksum matches bit for bit).
func refMandelbrot(threads, scale int) int32 {
	width := 32 * scale
	height := 24 * scale
	dx := (mandelXMax - mandelXMin) / float64(width)
	dy := (mandelYMax - mandelYMin) / float64(height)
	var total int32
	for id := 0; id < threads; id++ {
		var chk int32
		for y := id; y < height; y += threads {
			cy := mandelYMin + float64(y)*dy
			for x := 0; x < width; x++ {
				cx := mandelXMin + float64(x)*dx
				zx, zy := 0.0, 0.0
				var iter int32
				for zx*zx+zy*zy <= 4.0 && iter < mandelMaxIter {
					t := zx*zx - zy*zy + cx
					zy = 2*zx*zy + cy
					zx = t
					iter++
				}
				chk += iter
			}
		}
		total += chk
	}
	return total
}
