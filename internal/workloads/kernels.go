package workloads

import (
	"fmt"

	"herajvm/internal/classfile"
)

// KernelSpec describes a data-parallel showcase workload built in two
// variants around one shared hera/Kernel body: a kernel entry that fans
// the iteration space out through hera/Parallel.forRange, and a scalar
// entry that calls body.run(0, n) sequentially on the calling thread.
// Both variants read the same deterministically-filled inputs and fold
// per-iteration terms into one synchronized wrapping-int accumulator,
// so the checksum is invariant under any chunk split the launch planner
// picks — the differential tests demand byte-identical totals from the
// two variants and from the pure-Go reference.
type KernelSpec struct {
	// Name is the workload name ("matmul", "nbody", "kmeans").
	Name string
	// KernelClass.main launches the body via Parallel.forRange;
	// ScalarClass.main runs the identical body sequentially. Both
	// return the accumulated checksum.
	KernelClass string
	ScalarClass string
	// Build constructs a fresh program holding both entries; BuildInto
	// adds an isolated, class-name-prefixed copy to an existing
	// stdlib-equipped program (the job-mix form).
	Build     func(scale int) (*classfile.Program, error)
	BuildInto func(p *classfile.Program, prefix string, scale int) error
	// Reference computes the expected checksum in pure Go, mirroring
	// the bytecode's float64 operation order exactly.
	Reference func(scale int) int32
	// DefaultScale is the scale the experiment harness uses.
	DefaultScale int
}

// Kernels returns the data-parallel showcase workloads (the TornadoVM
// demo set: matrix multiply, NBody, KMeans).
func Kernels() []KernelSpec {
	return []KernelSpec{Matmul(), NBody(), KMeans()}
}

// KernelByName finds a kernel workload.
func KernelByName(name string) (KernelSpec, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return KernelSpec{}, fmt.Errorf("workloads: unknown kernel workload %q", name)
}

// AsSpec adapts one variant of the kernel workload to the ordinary Spec
// shape so it can ride the job-mix machinery (BuildMix, the serve
// driver) beside the paper workloads. The thread-count parameter of the
// Spec contract is ignored: the kernel variant's parallelism comes from
// the launch planner, and the scalar variant is sequential by design.
func (k KernelSpec) AsSpec(kernel bool) Spec {
	main := k.ScalarClass
	if kernel {
		main = k.KernelClass
	}
	return Spec{
		Name:         k.Name,
		MainClass:    main,
		DefaultScale: k.DefaultScale,
		Build: func(threads, scale int) (*classfile.Program, error) {
			return k.Build(scale)
		},
		BuildInto: func(p *classfile.Program, prefix string, threads, scale int) error {
			return k.BuildInto(p, prefix, scale)
		},
		Reference: func(threads, scale int) int32 {
			return k.Reference(scale)
		},
	}
}

// kernelHarness is the shared scaffolding for one kernel workload copy:
// the synchronized checksum accumulator and the body class (extending
// hera/Kernel) whose run(from, to) the workload fills in.
type kernelHarness struct {
	p     *classfile.Program
	body  *classfile.Class
	run   *classfile.Method
	total *classfile.Field
	add   *classfile.Method
}

// newKernelHarnessIn creates the accumulator and body classes under a
// prefix (separate statics per copy, like newHarnessIn). The body's
// run(from, to) must follow the hera/Kernel determinism contract: read
// the body's input arrays, write only worker-private state, and publish
// results through the commutative accumulator — never through shared
// array stores, whose dirty write-back blocks could collide across
// workers.
func newKernelHarnessIn(p *classfile.Program, prefix, bodyName string) *kernelHarness {
	kern := p.Lookup("hera/Kernel")

	acc := p.NewClass(prefix+bodyName+"Acc", nil)
	total := acc.NewStaticField("total", classfile.Int)
	add := acc.NewMethod("add", classfile.FlagStatic|classfile.FlagSynchronized,
		classfile.Void, classfile.Int)
	{
		a := add.Asm()
		a.GetStatic(total)
		a.LoadI(0)
		a.AddI()
		a.PutStatic(total)
		a.RetVoid()
		a.MustBuild()
	}

	body := p.NewClass(prefix+bodyName, kern)
	h := &kernelHarness{p: p, body: body, total: total, add: add}
	h.run = body.NewMethod("run", 0, classfile.Void, classfile.Int, classfile.Int)
	return h
}

// buildEntries emits the two entry classes around the shared body. Both
// run emitSetup — which must leave the constructed body object in local
// 0 and may use locals 1+ as scratch — then either launch the kernel or
// call run(0, n) inline, and return the accumulated total.
func (h *kernelHarness) buildEntries(kernelClass, scalarClass string, n int32,
	emitSetup func(a *classfile.Asm)) {
	parallel := h.p.Lookup("hera/Parallel")
	build := func(name string, kernel bool) {
		cls := h.p.NewClass(name, nil)
		m := cls.NewMethod("main", classfile.FlagStatic, classfile.Int)
		a := m.Asm()
		emitSetup(a)
		if kernel {
			a.ConstI(0)
			a.ConstI(n)
			a.LoadRef(0)
			a.InvokeStatic(parallel.MethodByName("forRange"))
		} else {
			a.LoadRef(0)
			a.ConstI(0)
			a.ConstI(n)
			a.InvokeVirtual(h.run)
		}
		a.GetStatic(h.total)
		a.Ret()
		a.MustBuild()
	}
	build(kernelClass, true)
	build(scalarClass, false)
}

// emitFillLinear emits a fill loop over the double array in local la:
//
//	for (i = 0; i < n; i++) arr[i] = (double)((i*mul + add) % mod - bias) * scale;
//
// using local li as the index. The integer seed keeps the fill exactly
// reproducible in the Go reference (fillLinear) with no FP accumulation
// order to mirror.
func emitFillLinear(a *classfile.Asm, la, li int, n, mul, add, mod, bias int32, scale float64) {
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(li)
	a.Bind(loop)
	a.LoadI(li)
	a.ConstI(n)
	a.IfICmpGE(done)
	a.LoadRef(la)
	a.LoadI(li)
	a.LoadI(li)
	a.ConstI(mul)
	a.MulI()
	a.ConstI(add)
	a.AddI()
	a.ConstI(mod)
	a.RemI()
	a.ConstI(bias)
	a.SubI()
	a.I2D()
	a.ConstD(scale)
	a.MulD()
	a.AStore(classfile.ElemDouble)
	a.Inc(li, 1)
	a.Goto(loop)
	a.Bind(done)
}

// fillLinear is emitFillLinear's Go mirror (int32 arithmetic, then one
// conversion and one multiply per element — bit-exact by construction).
func fillLinear(n, mul, add, mod, bias int32, scale float64) []float64 {
	v := make([]float64, n)
	for i := int32(0); i < n; i++ {
		v[i] = float64((i*mul+add)%mod-bias) * scale
	}
	return v
}
