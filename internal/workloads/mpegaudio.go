package workloads

import (
	"fmt"
	"math"

	"herajvm/internal/classfile"
)

// MPEGAudio is a structural proxy for SPECjvm2008's mpegaudio (an MP3
// decoder): per frame it runs bitstream unpacking (integer/LCG), symbol
// decoding (tableswitch), dequantisation (x^(4/3) via Newton cube root),
// antialias butterflies, per-subband IMDCT-style transforms and
// polyphase-synthesis dot products. The transform kernels are unrolled
// per subband into 32+16 distinct generated methods — like a real
// decoder's specialised DSP kernels — giving the program the large code
// footprint that makes mpegaudio the paper's code-cache-bound workload
// (Figure 7).
const (
	mpaGranule        = 576 // 32 subbands x 18 samples
	mpaBands          = 32
	mpaSynthDots      = 16
	mpaFramesPerScale = 6 // total frames = 6*scale, split across workers
	mpaDefaultScale   = 12
)

// MPEGAudio returns the code-footprint-bound workload.
func MPEGAudio() Spec {
	return Spec{
		Name:         "mpegaudio",
		MainClass:    "MpegMain",
		DefaultScale: mpaDefaultScale,
		Build:        buildVia(buildMPEGAudioInto),
		BuildInto:    buildMPEGAudioInto,
		Reference:    refMPEGAudio,
	}
}

func buildMPEGAudioInto(p *classfile.Program, prefix string, threads, scale int) error {
	h := newHarnessIn(p, prefix, "MpegWorker")
	mathCls := p.Lookup("java/lang/Math")
	mCos := mathCls.MethodByName("cos")
	mSin := mathCls.MethodByName("sin")

	// --- Tables: coefficient arrays filled by init() ---
	tables := p.NewClass(prefix+"Tables", nil)
	cosT := tables.NewStaticField("cosT", classfile.Ref)
	win := tables.NewStaticField("win", classfile.Ref)
	cs := tables.NewStaticField("cs", classfile.Ref)
	ca := tables.NewStaticField("ca", classfile.Ref)
	initM := tables.NewMethod("init", classfile.FlagStatic, classfile.Void)
	{
		a := initM.Asm()
		fillCos := func(field *classfile.Field, n int, c float64, call *classfile.Method,
			base, scale float64) {
			// field = new double[n]; for i: field[i] = base + scale*f(c*i)
			a.ConstI(int32(n))
			a.NewArray(classfile.ElemDouble)
			a.PutStatic(field)
			loop, done := a.NewLabel(), a.NewLabel()
			a.ConstI(0)
			a.StoreI(0)
			a.Bind(loop)
			a.LoadI(0)
			a.ConstI(int32(n))
			a.IfICmpGE(done)
			a.GetStatic(field)
			a.LoadI(0)
			a.ConstD(base)
			a.ConstD(scale)
			a.ConstD(c)
			a.LoadI(0)
			a.I2D()
			a.MulD()
			a.InvokeStatic(call)
			a.MulD()
			a.AddD()
			a.AStore(classfile.ElemDouble)
			a.Inc(0, 1)
			a.Goto(loop)
			a.Bind(done)
		}
		fillCos(cosT, 128, math.Pi/36, mCos, 0, 1)
		fillCos(win, 32, math.Pi/32, mCos, 0.5, 0.5)
		// cs[i] = cos(0.1*(i+1)); ca[i] = sin(0.1*(i+1)):
		// expressed as cos/sin(0.1*i + 0.1) via base/scale on the index.
		a.ConstI(8)
		a.NewArray(classfile.ElemDouble)
		a.PutStatic(cs)
		a.ConstI(8)
		a.NewArray(classfile.ElemDouble)
		a.PutStatic(ca)
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(0)
		a.Bind(loop)
		a.LoadI(0)
		a.ConstI(8)
		a.IfICmpGE(done)
		a.GetStatic(cs)
		a.LoadI(0)
		a.ConstD(0.1)
		a.LoadI(0)
		a.ConstI(1)
		a.AddI()
		a.I2D()
		a.MulD()
		a.InvokeStatic(mCos)
		a.AStore(classfile.ElemDouble)
		a.GetStatic(ca)
		a.LoadI(0)
		a.ConstD(0.1)
		a.LoadI(0)
		a.ConstI(1)
		a.AddI()
		a.I2D()
		a.MulD()
		a.InvokeStatic(mSin)
		a.AStore(classfile.ElemDouble)
		a.Inc(0, 1)
		a.Goto(loop)
		a.Bind(done)
		a.RetVoid()
		a.MustBuild()
	}

	// --- Huff.decode(int v): symbol decode via tableswitch ---
	huff := p.NewClass(prefix+"Huff", nil)
	decode := huff.NewMethod("decode", classfile.FlagStatic, classfile.Int, classfile.Int)
	{
		a := decode.Asm()
		targets := make([]*classfile.Label, 16)
		for i := range targets {
			targets[i] = a.NewLabel()
		}
		def := a.NewLabel()
		a.LoadI(0)
		a.TableSwitch(0, def, targets...)
		for k, l := range targets {
			a.Bind(l)
			a.ConstI(int32((k*7)%13 - 6))
			a.Ret()
		}
		a.Bind(def)
		a.ConstI(-1)
		a.Ret()
		a.MustBuild()
	}

	// --- Deq.pow43(double x): sign(x)*|x|^(4/3) proxy via Newton ---
	deq := p.NewClass(prefix+"Deq", nil)
	pow43 := deq.NewMethod("pow43", classfile.FlagStatic, classfile.Double, classfile.Double)
	{
		a := pow43.Asm()
		// locals: 0=x 1=t 2=g
		pos, join := a.NewLabel(), a.NewLabel()
		a.LoadD(0)
		a.ConstD(0)
		a.CmpDG()
		a.IfGE(pos)
		a.LoadD(0)
		a.NegD()
		a.StoreD(1)
		a.Goto(join)
		a.Bind(pos)
		a.LoadD(0)
		a.StoreD(1)
		a.Bind(join)
		// g = 0.7 + 0.3*t
		a.ConstD(0.7)
		a.ConstD(0.3)
		a.LoadD(1)
		a.MulD()
		a.AddD()
		a.StoreD(2)
		// two Newton steps: g = (2*g + t/(g*g)) / 3
		for step := 0; step < 2; step++ {
			a.ConstD(2.0)
			a.LoadD(2)
			a.MulD()
			a.LoadD(1)
			a.LoadD(2)
			a.LoadD(2)
			a.MulD()
			a.DivD()
			a.AddD()
			a.ConstD(3.0)
			a.DivD()
			a.StoreD(2)
		}
		a.LoadD(0)
		a.LoadD(2)
		a.MulD()
		a.Ret()
		a.MustBuild()
	}

	// --- Band.b0..b31: unrolled per-subband transform kernels. Each is
	// called once per time step (18 times per frame) with a per-step
	// coefficient base, so the whole 32-kernel working set streams
	// through the code cache repeatedly per frame, as a real decoder's
	// per-sample synthesis does. ---
	band := p.NewClass(prefix+"Band", nil)
	bandMethods := make([]*classfile.Method, mpaBands)
	for k := 0; k < mpaBands; k++ {
		m := band.NewMethod(fmt.Sprintf("b%d", k), classfile.FlagStatic, classfile.Double,
			classfile.Ref, classfile.Ref, classfile.Int, classfile.Int)
		a := m.Asm()
		// locals: 0=xr 1=cosT 2=off 3=cBase 4=acc
		a.ConstD(0)
		a.StoreD(4)
		for mi := 0; mi < 12; mi++ {
			a.LoadD(4)
			a.LoadRef(0)
			a.LoadI(2)
			a.ConstI(int32(mi))
			a.AddI()
			a.ALoad(classfile.ElemDouble)
			a.LoadRef(1)
			a.LoadI(3)
			a.ConstI(int32(mi))
			a.AddI()
			a.ALoad(classfile.ElemDouble)
			a.MulD()
			a.AddD()
			a.StoreD(4)
		}
		a.LoadD(4)
		a.Ret()
		a.MustBuild()
		bandMethods[k] = m
	}

	// --- Syn.s0..s15: unrolled polyphase-synthesis dot products ---
	syn := p.NewClass(prefix+"Syn", nil)
	synMethods := make([]*classfile.Method, mpaSynthDots)
	for j := 0; j < mpaSynthDots; j++ {
		m := syn.NewMethod(fmt.Sprintf("s%d", j), classfile.FlagStatic, classfile.Double,
			classfile.Ref, classfile.Ref)
		a := m.Asm()
		// locals: 0=v 1=win 2=acc
		a.ConstD(0)
		a.StoreD(2)
		for k := 0; k < mpaBands; k++ {
			widx := (k + j) % 32
			a.LoadD(2)
			a.LoadRef(0)
			a.ConstI(int32(k))
			a.ALoad(classfile.ElemDouble)
			a.LoadRef(1)
			a.ConstI(int32(widx))
			a.ALoad(classfile.ElemDouble)
			a.MulD()
			a.AddD()
			a.StoreD(2)
		}
		a.LoadD(2)
		a.Ret()
		a.MustBuild()
		synMethods[j] = m
	}

	// --- Decoder.decodeFrame(int id, int f) ---
	decoder := p.NewClass(prefix+"Decoder", nil)
	decodeFrame := decoder.NewMethod("decodeFrame", classfile.FlagStatic, classfile.Int,
		classfile.Int, classfile.Int)
	{
		a := decodeFrame.Asm()
		const (
			lID, lF, lChk, lSeed, lK, lQ, lS  = 0, 1, 2, 3, 4, 5, 6
			lXr, lBand, lSb, lI, lU, lD       = 7, 8, 9, 10, 11, 12
			lIdxU, lIdxD, lX, lJ, lPcm, lBase = 13, 14, 15, 16, 17, 18
		)
		a.ConstI(0)
		a.StoreI(lChk)
		a.ConstI(mpaGranule)
		a.NewArray(classfile.ElemDouble)
		a.StoreRef(lXr)
		a.ConstI(mpaBands)
		a.NewArray(classfile.ElemDouble)
		a.StoreRef(lBand)
		// seed = id*131071 + f*524287 + 9973
		a.LoadI(lID)
		a.ConstI(131071)
		a.MulI()
		a.LoadI(lF)
		a.ConstI(524287)
		a.MulI()
		a.AddI()
		a.ConstI(9973)
		a.AddI()
		a.StoreI(lSeed)

		// unpack + decode + dequantise
		loop1, done1 := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(lK)
		a.Bind(loop1)
		a.LoadI(lK)
		a.ConstI(mpaGranule)
		a.IfICmpGE(done1)
		a.LoadI(lSeed)
		a.ConstI(1664525)
		a.MulI()
		a.ConstI(1013904223)
		a.AddI()
		a.StoreI(lSeed)
		// q = (seed >>> 20) - 2048
		a.LoadI(lSeed)
		a.ConstI(20)
		a.UShrI()
		a.ConstI(2048)
		a.SubI()
		a.StoreI(lQ)
		// s = Huff.decode(q & 15)
		a.LoadI(lQ)
		a.ConstI(15)
		a.AndI()
		a.InvokeStatic(decode)
		a.StoreI(lS)
		// xr[k] = Deq.pow43((double)(q+s) * 0.001)
		a.LoadRef(lXr)
		a.LoadI(lK)
		a.LoadI(lQ)
		a.LoadI(lS)
		a.AddI()
		a.I2D()
		a.ConstD(0.001)
		a.MulD()
		a.InvokeStatic(pow43)
		a.AStore(classfile.ElemDouble)
		a.Inc(lK, 1)
		a.Goto(loop1)
		a.Bind(done1)

		// antialias butterflies between adjacent subbands
		sbLoop, sbDone := a.NewLabel(), a.NewLabel()
		a.ConstI(1)
		a.StoreI(lSb)
		a.Bind(sbLoop)
		a.LoadI(lSb)
		a.ConstI(mpaBands)
		a.IfICmpGE(sbDone)
		iLoop, iDone := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(lI)
		a.Bind(iLoop)
		a.LoadI(lI)
		a.ConstI(8)
		a.IfICmpGE(iDone)
		// idxU = sb*18 - 1 - i; idxD = sb*18 + i
		a.LoadI(lSb)
		a.ConstI(18)
		a.MulI()
		a.StoreI(lBase)
		a.LoadI(lBase)
		a.ConstI(1)
		a.SubI()
		a.LoadI(lI)
		a.SubI()
		a.StoreI(lIdxU)
		a.LoadI(lBase)
		a.LoadI(lI)
		a.AddI()
		a.StoreI(lIdxD)
		a.LoadRef(lXr)
		a.LoadI(lIdxU)
		a.ALoad(classfile.ElemDouble)
		a.StoreD(lU)
		a.LoadRef(lXr)
		a.LoadI(lIdxD)
		a.ALoad(classfile.ElemDouble)
		a.StoreD(lD)
		// xr[idxU] = u*cs[i] - d*ca[i]
		a.LoadRef(lXr)
		a.LoadI(lIdxU)
		a.LoadD(lU)
		a.GetStatic(cs)
		a.LoadI(lI)
		a.ALoad(classfile.ElemDouble)
		a.MulD()
		a.LoadD(lD)
		a.GetStatic(ca)
		a.LoadI(lI)
		a.ALoad(classfile.ElemDouble)
		a.MulD()
		a.SubD()
		a.AStore(classfile.ElemDouble)
		// xr[idxD] = d*cs[i] + u*ca[i]
		a.LoadRef(lXr)
		a.LoadI(lIdxD)
		a.LoadD(lD)
		a.GetStatic(cs)
		a.LoadI(lI)
		a.ALoad(classfile.ElemDouble)
		a.MulD()
		a.LoadD(lU)
		a.GetStatic(ca)
		a.LoadI(lI)
		a.ALoad(classfile.ElemDouble)
		a.MulD()
		a.AddD()
		a.AStore(classfile.ElemDouble)
		a.Inc(lI, 1)
		a.Goto(iLoop)
		a.Bind(iDone)
		a.Inc(lSb, 1)
		a.Goto(sbLoop)
		a.Bind(sbDone)

		// subband transforms, one pass per time step j: every pass calls
		// all 32 kernels with a j-dependent coefficient base and folds one
		// band value into the checksum.
		jLoop, jDone := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(lJ)
		a.Bind(jLoop)
		a.LoadI(lJ)
		a.ConstI(18)
		a.IfICmpGE(jDone)
		for k := 0; k < mpaBands; k++ {
			a.LoadRef(lBand)
			a.ConstI(int32(k))
			a.LoadRef(lXr)
			a.GetStatic(cosT)
			a.ConstI(int32(k * 18))
			// cBase = (j*(2k+1) + k) & 63
			a.LoadI(lJ)
			a.ConstI(int32(2*k + 1))
			a.MulI()
			a.ConstI(int32(k))
			a.AddI()
			a.ConstI(63)
			a.AndI()
			a.InvokeStatic(bandMethods[k])
			a.AStore(classfile.ElemDouble)
		}
		// chk += (int)(band[(5j)&31] * 100) & 0xff
		a.LoadI(lChk)
		a.LoadRef(lBand)
		a.LoadI(lJ)
		a.ConstI(5)
		a.MulI()
		a.ConstI(31)
		a.AndI()
		a.ALoad(classfile.ElemDouble)
		a.ConstD(100.0)
		a.MulD()
		a.D2I()
		a.ConstI(0xff)
		a.AndI()
		a.AddI()
		a.StoreI(lChk)
		a.Inc(lJ, 1)
		a.Goto(jLoop)
		a.Bind(jDone)

		// synthesis: chk += (int)(Syn.sj(band, win) * 1000) & 0xffff
		for j := 0; j < mpaSynthDots; j++ {
			a.LoadI(lChk)
			a.LoadRef(lBand)
			a.GetStatic(win)
			a.InvokeStatic(synMethods[j])
			a.ConstD(1000.0)
			a.MulD()
			a.D2I()
			a.ConstI(0xffff)
			a.AndI()
			a.AddI()
			a.StoreI(lChk)
		}
		_ = lPcm
		_ = lX
		a.LoadI(lChk)
		a.Ret()
		a.MustBuild()
	}

	// --- Worker.run(): decode frames id, id+W, ... of 6*scale total
	// (per-frame checksums are worker-independent, so the total is
	// independent of the thread count) ---
	{
		a := h.run.Asm()
		// locals: 0=this 1=chk 2=f 3=frames 4=W
		a.ConstI(0)
		a.StoreI(1)
		a.LoadRef(0)
		a.GetField(h.scale)
		a.ConstI(mpaFramesPerScale)
		a.MulI()
		a.StoreI(3)
		a.LoadRef(0)
		a.GetField(h.workers)
		a.StoreI(4)
		loop, done := a.NewLabel(), a.NewLabel()
		a.LoadRef(0)
		a.GetField(h.id)
		a.StoreI(2)
		a.Bind(loop)
		a.LoadI(2)
		a.LoadI(3)
		a.IfICmpGE(done)
		a.LoadI(1)
		a.ConstI(0)
		a.LoadI(2)
		a.InvokeStatic(decodeFrame)
		a.AddI()
		a.StoreI(1)
		a.LoadI(2)
		a.LoadI(4)
		a.AddI()
		a.StoreI(2)
		a.Goto(loop)
		a.Bind(done)
		a.LoadI(1)
		a.InvokeStatic(h.add)
		a.RetVoid()
		a.MustBuild()
	}

	h.buildMain(prefix+"MpegMain", threads, scale, initM)
	return nil
}

// --- Go reference, mirroring the bytecode op for op ---

func refMPEGAudio(threads, scale int) int32 {
	cosT := make([]float64, 128)
	for i := range cosT {
		cosT[i] = math.Cos(math.Pi / 36 * float64(i))
	}
	winT := make([]float64, 32)
	for i := range winT {
		winT[i] = 0.5 + 0.5*math.Cos(math.Pi/32*float64(i))
	}
	csT := make([]float64, 8)
	caT := make([]float64, 8)
	for i := range csT {
		csT[i] = math.Cos(0.1 * float64(i+1))
		caT[i] = math.Sin(0.1 * float64(i+1))
	}

	// Frames are decoded with a fixed id argument of 0 (the seed depends
	// only on the frame number), so the checksum is independent of the
	// thread count.
	var total int32
	for f := 0; f < mpaFramesPerScale*scale; f++ {
		total += refDecodeFrame(0, int32(f), cosT, winT, csT, caT)
	}
	return total
}

func refPow43(x float64) float64 {
	t := x
	if x < 0 {
		t = -x
	}
	g := 0.7 + 0.3*t
	g = (2.0*g + t/(g*g)) / 3.0
	g = (2.0*g + t/(g*g)) / 3.0
	return x * g
}

func refHuff(v int32) int32 {
	if v >= 0 && v < 16 {
		return int32((int(v)*7)%13 - 6)
	}
	return -1
}

func refDecodeFrame(id, f int32, cosT, winT, csT, caT []float64) int32 {
	var chk int32
	xr := make([]float64, mpaGranule)
	band := make([]float64, mpaBands)
	seed := id*131071 + f*524287 + 9973
	for k := 0; k < mpaGranule; k++ {
		seed = seed*1664525 + 1013904223
		q := int32(uint32(seed)>>20) - 2048
		s := refHuff(q & 15)
		xr[k] = refPow43(float64(q+s) * 0.001)
	}
	for sb := 1; sb < mpaBands; sb++ {
		for i := 0; i < 8; i++ {
			base := sb * 18
			idxU := base - 1 - i
			idxD := base + i
			u, d := xr[idxU], xr[idxD]
			xr[idxU] = u*csT[i] - d*caT[i]
			xr[idxD] = d*csT[i] + u*caT[i]
		}
	}
	for j := int32(0); j < 18; j++ {
		for k := 0; k < mpaBands; k++ {
			cBase := (j*int32(2*k+1) + int32(k)) & 63
			acc := 0.0
			off := k * 18
			for m := 0; m < 12; m++ {
				acc += xr[off+m] * cosT[int(cBase)+m]
			}
			band[k] = acc
		}
		chk += javaD2I(band[(5*j)&31]*100.0) & 0xff
	}
	for j := 0; j < mpaSynthDots; j++ {
		acc := 0.0
		for k := 0; k < mpaBands; k++ {
			acc += band[k] * winT[(k+j)%32]
		}
		chk += javaD2I(acc*1000.0) & 0xffff
	}
	return chk
}

// javaD2I mirrors the JVM's d2i (NaN -> 0, saturating).
func javaD2I(v float64) int32 {
	switch {
	case v != v:
		return 0
	case v >= math.MaxInt32:
		return math.MaxInt32
	case v <= math.MinInt32:
		return math.MinInt32
	}
	return int32(v)
}
