package workloads

import (
	"herajvm/internal/classfile"
)

// Compress parameters: the input is 6*scale segments of 8 KB
// pseudo-text; workers take segments round-robin by worker ID (so the
// checksum and total work are independent of the thread count) and
// compress each with LZW (SPECjvm2008's compress is LZW-based), using a
// 16384-entry open-addressed hash table capped at 12-bit codes, like the
// classic compress(1) dictionary. The hash probes are data-dependent and
// scattered over a 128 KB table working set per worker (the two
// dictionary tables alone exceed the 104 KB data cache), which is what
// gives compress the lowest data-cache hit rate and the steepest
// Figure 6 curve.
const (
	lzwHSize        = 16384
	lzwHMask        = lzwHSize - 1
	lzwMaxCode      = 4096
	lzwSegBytes     = 8192
	lzwSegsPerScale = 6
	lzwDefaultScale = 4
)

// Compress returns the memory-bound workload.
func Compress() Spec {
	return Spec{
		Name:         "compress",
		MainClass:    "CompressMain",
		DefaultScale: lzwDefaultScale,
		Build:        buildVia(buildCompressInto),
		BuildInto:    buildCompressInto,
		Reference:    refCompress,
	}
}

func buildCompressInto(p *classfile.Program, prefix string, threads, scale int) error {
	h := newHarnessIn(p, prefix, "CompressWorker")
	w := h.worker

	// static void fill(byte[] in, int id): deterministic pseudo-text.
	fill := w.NewMethod("fill", classfile.FlagStatic, classfile.Void,
		classfile.Ref, classfile.Int)
	{
		a := fill.Asm()
		// locals: 0=in 1=id 2=seed 3=i 4=v 5=t 6=b
		const lIn, lID, lSeed, lI, lV, lT, lB = 0, 1, 2, 3, 4, 5, 6
		a.LoadI(lID)
		a.ConstI(31)
		a.MulI()
		a.ConstI(7)
		a.AddI()
		a.StoreI(lSeed)
		a.ConstI(0)
		a.StoreI(lI)
		loop, done := a.NewLabel(), a.NewLabel()
		a.Bind(loop)
		a.LoadI(lI)
		a.LoadRef(lIn)
		a.ArrayLen()
		a.IfICmpGE(done)
		// seed = seed*1103515245 + 12345
		a.LoadI(lSeed)
		a.ConstI(1103515245)
		a.MulI()
		a.ConstI(12345)
		a.AddI()
		a.StoreI(lSeed)
		// v = (seed >>> 16) & 0x7fff
		a.LoadI(lSeed)
		a.ConstI(16)
		a.UShrI()
		a.ConstI(0x7fff)
		a.AndI()
		a.StoreI(lV)
		// t = v % 100
		a.LoadI(lV)
		a.ConstI(100)
		a.RemI()
		a.StoreI(lT)
		// b = t < 70 ? 97 + v%16 : 32 + v%64
		elseL, endL := a.NewLabel(), a.NewLabel()
		a.LoadI(lT)
		a.ConstI(70)
		a.IfICmpGE(elseL)
		a.ConstI(97)
		a.LoadI(lV)
		a.ConstI(16)
		a.RemI()
		a.AddI()
		a.StoreI(lB)
		a.Goto(endL)
		a.Bind(elseL)
		a.ConstI(32)
		a.LoadI(lV)
		a.ConstI(64)
		a.RemI()
		a.AddI()
		a.StoreI(lB)
		a.Bind(endL)
		a.LoadRef(lIn)
		a.LoadI(lI)
		a.LoadI(lB)
		a.AStore(classfile.ElemByte)
		a.Inc(lI, 1)
		a.Goto(loop)
		a.Bind(done)
		a.RetVoid()
		a.MustBuild()
	}

	// static int compress(byte[] in, byte[] out, int[] htab, int[] codetab)
	compress := w.NewMethod("compress", classfile.FlagStatic, classfile.Int,
		classfile.Ref, classfile.Ref, classfile.Ref, classfile.Ref)
	{
		a := compress.Asm()
		// locals: 0=in 1=out 2=htab 3=codetab 4=chk 5=nextCode 6=o
		//         7=prefix 8=i 9=ch 10=fcode 11=hx 12=hv 13=n
		const (
			lIn, lOut, lHtab, lCodetab   = 0, 1, 2, 3
			lChk, lNext, lO, lPrefix, lI = 4, 5, 6, 7, 8
			lCh, lFcode, lHx, lHv, lN    = 9, 10, 11, 12, 13
		)
		// htab[*] = -1
		init, initDone := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(lI)
		a.Bind(init)
		a.LoadI(lI)
		a.ConstI(lzwHSize)
		a.IfICmpGE(initDone)
		a.LoadRef(lHtab)
		a.LoadI(lI)
		a.ConstI(-1)
		a.AStore(classfile.ElemInt)
		a.Inc(lI, 1)
		a.Goto(init)
		a.Bind(initDone)

		a.ConstI(0)
		a.StoreI(lChk)
		a.ConstI(256)
		a.StoreI(lNext)
		a.ConstI(0)
		a.StoreI(lO)
		a.LoadRef(lIn)
		a.ArrayLen()
		a.StoreI(lN)
		// prefix = in[0] & 0xff
		a.LoadRef(lIn)
		a.ConstI(0)
		a.ALoad(classfile.ElemByte)
		a.ConstI(0xff)
		a.AndI()
		a.StoreI(lPrefix)
		a.ConstI(1)
		a.StoreI(lI)

		outer, outerDone := a.NewLabel(), a.NewLabel()
		probe := a.NewLabel()
		insert := a.NewLabel()
		nextIter := a.NewLabel()
		a.Bind(outer)
		a.LoadI(lI)
		a.LoadI(lN)
		a.IfICmpGE(outerDone)
		// ch = in[i] & 0xff
		a.LoadRef(lIn)
		a.LoadI(lI)
		a.ALoad(classfile.ElemByte)
		a.ConstI(0xff)
		a.AndI()
		a.StoreI(lCh)
		// fcode = (ch << 16) + prefix
		a.LoadI(lCh)
		a.ConstI(16)
		a.ShlI()
		a.LoadI(lPrefix)
		a.AddI()
		a.StoreI(lFcode)
		// hx = ((fcode * 0x9E3779B1) >>> 18) & HMASK (Fibonacci hashing:
		// the classic xor-fold hash clusters badly on small alphabets)
		a.LoadI(lFcode)
		a.ConstI(-1640531527)
		a.MulI()
		a.ConstI(18)
		a.UShrI()
		a.ConstI(lzwHMask)
		a.AndI()
		a.StoreI(lHx)

		a.Bind(probe)
		a.LoadRef(lHtab)
		a.LoadI(lHx)
		a.ALoad(classfile.ElemInt)
		a.StoreI(lHv)
		// if (hv == fcode) { prefix = codetab[hx]; i++; continue }
		matchNo := a.NewLabel()
		a.LoadI(lHv)
		a.LoadI(lFcode)
		a.IfICmpNE(matchNo)
		a.LoadRef(lCodetab)
		a.LoadI(lHx)
		a.ALoad(classfile.ElemInt)
		a.StoreI(lPrefix)
		a.Inc(lI, 1)
		a.Goto(outer)
		a.Bind(matchNo)
		// if (hv == -1) goto insert
		a.LoadI(lHv)
		a.ConstI(-1)
		a.IfICmpEQ(insert)
		// hx = (hx + 1) & HMASK; goto probe
		a.LoadI(lHx)
		a.ConstI(1)
		a.AddI()
		a.ConstI(lzwHMask)
		a.AndI()
		a.StoreI(lHx)
		a.Goto(probe)

		a.Bind(insert)
		// out[o] = prefix & 0xff; out[o+1] = (prefix >>> 8); o += 2
		a.LoadRef(lOut)
		a.LoadI(lO)
		a.LoadI(lPrefix)
		a.ConstI(0xff)
		a.AndI()
		a.AStore(classfile.ElemByte)
		a.LoadRef(lOut)
		a.LoadI(lO)
		a.ConstI(1)
		a.AddI()
		a.LoadI(lPrefix)
		a.ConstI(8)
		a.UShrI()
		a.AStore(classfile.ElemByte)
		a.Inc(lO, 2)
		// chk += prefix
		a.LoadI(lChk)
		a.LoadI(lPrefix)
		a.AddI()
		a.StoreI(lChk)
		// if (nextCode < MAXCODE) { htab[hx]=fcode; codetab[hx]=nextCode++; }
		a.LoadI(lNext)
		a.ConstI(lzwMaxCode)
		a.IfICmpGE(nextIter)
		a.LoadRef(lHtab)
		a.LoadI(lHx)
		a.LoadI(lFcode)
		a.AStore(classfile.ElemInt)
		a.LoadRef(lCodetab)
		a.LoadI(lHx)
		a.LoadI(lNext)
		a.AStore(classfile.ElemInt)
		a.Inc(lNext, 1)
		a.Bind(nextIter)
		// prefix = ch; i++
		a.LoadI(lCh)
		a.StoreI(lPrefix)
		a.Inc(lI, 1)
		a.Goto(outer)
		a.Bind(outerDone)

		// final emission
		a.LoadRef(lOut)
		a.LoadI(lO)
		a.LoadI(lPrefix)
		a.ConstI(0xff)
		a.AndI()
		a.AStore(classfile.ElemByte)
		a.LoadRef(lOut)
		a.LoadI(lO)
		a.ConstI(1)
		a.AddI()
		a.LoadI(lPrefix)
		a.ConstI(8)
		a.UShrI()
		a.AStore(classfile.ElemByte)
		a.Inc(lO, 2)
		a.LoadI(lChk)
		a.LoadI(lPrefix)
		a.AddI()
		a.StoreI(lChk)

		// chk += o; then fold every 7th output byte back in (sequential
		// re-read of the compressed stream).
		a.LoadI(lChk)
		a.LoadI(lO)
		a.AddI()
		a.StoreI(lChk)
		foldLoop, foldDone := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(lI)
		a.Bind(foldLoop)
		a.LoadI(lI)
		a.LoadI(lO)
		a.IfICmpGE(foldDone)
		a.LoadI(lChk)
		a.LoadRef(lOut)
		a.LoadI(lI)
		a.ALoad(classfile.ElemByte)
		a.ConstI(0xff)
		a.AndI()
		a.AddI()
		a.StoreI(lChk)
		a.Inc(lI, 7)
		a.Goto(foldLoop)
		a.Bind(foldDone)

		a.LoadI(lChk)
		a.Ret()
		a.MustBuild()
	}

	// run(): allocate buffers once, then compress segments id, id+W, ...
	// publishing the summed checksum.
	{
		a := h.run.Asm()
		// locals: 0=this 1=nsegs 2=in 3=out 4=htab 5=codetab 6=chk 7=s 8=W
		const lNSegs, lIn, lOut, lHtab, lCodetab, lChk, lS, lW = 1, 2, 3, 4, 5, 6, 7, 8
		a.LoadRef(0)
		a.GetField(h.scale)
		a.ConstI(lzwSegsPerScale)
		a.MulI()
		a.StoreI(lNSegs)
		a.LoadRef(0)
		a.GetField(h.workers)
		a.StoreI(lW)
		a.ConstI(lzwSegBytes)
		a.NewArray(classfile.ElemByte)
		a.StoreRef(lIn)
		a.ConstI(2*lzwSegBytes + 8)
		a.NewArray(classfile.ElemByte)
		a.StoreRef(lOut)
		a.ConstI(lzwHSize)
		a.NewArray(classfile.ElemInt)
		a.StoreRef(lHtab)
		a.ConstI(lzwHSize)
		a.NewArray(classfile.ElemInt)
		a.StoreRef(lCodetab)
		a.ConstI(0)
		a.StoreI(lChk)

		loop, done := a.NewLabel(), a.NewLabel()
		a.LoadRef(0)
		a.GetField(h.id)
		a.StoreI(lS)
		a.Bind(loop)
		a.LoadI(lS)
		a.LoadI(lNSegs)
		a.IfICmpGE(done)

		a.LoadRef(lIn)
		a.LoadI(lS)
		a.InvokeStatic(fill)

		a.LoadI(lChk)
		a.LoadRef(lIn)
		a.LoadRef(lOut)
		a.LoadRef(lHtab)
		a.LoadRef(lCodetab)
		a.InvokeStatic(compress)
		a.AddI()
		a.StoreI(lChk)

		a.LoadI(lS)
		a.LoadI(lW)
		a.AddI()
		a.StoreI(lS)
		a.Goto(loop)
		a.Bind(done)

		a.LoadI(lChk)
		a.InvokeStatic(h.add)
		a.RetVoid()
		a.MustBuild()
	}

	h.buildMain(prefix+"CompressMain", threads, scale, nil)
	return nil
}

// refCompress mirrors the bytecode exactly in Go (Java int32 wrapping
// semantics throughout). The checksum is independent of the thread
// count: segments are compressed independently whatever worker runs
// them.
func refCompress(threads, scale int) int32 {
	var total int32
	for s := 0; s < lzwSegsPerScale*scale; s++ {
		in := refFill(lzwSegBytes, int32(s))
		total += refLZW(in)
	}
	return total
}

func refFill(n int, id int32) []byte {
	in := make([]byte, n)
	seed := id*31 + 7
	for i := range in {
		seed = seed*1103515245 + 12345
		v := int32(uint32(seed)>>16) & 0x7fff
		t := v % 100
		var b int32
		if t < 70 {
			b = 97 + v%16
		} else {
			b = 32 + v%64
		}
		in[i] = byte(b)
	}
	return in
}

func refLZW(in []byte) int32 {
	htab := make([]int32, lzwHSize)
	codetab := make([]int32, lzwHSize)
	for i := range htab {
		htab[i] = -1
	}
	out := make([]byte, 2*len(in)+8)
	var chk, nextCode, o int32
	nextCode = 256
	prefix := int32(in[0]) & 0xff
	emit := func() {
		out[o] = byte(prefix & 0xff)
		out[o+1] = byte(uint32(prefix) >> 8)
		o += 2
		chk += prefix
	}
	for i := 1; i < len(in); i++ {
		ch := int32(in[i]) & 0xff
		fcode := ch<<16 + prefix
		hx := int32(uint32(fcode*-1640531527)>>18) & lzwHMask
		for {
			hv := htab[hx]
			if hv == fcode {
				prefix = codetab[hx]
				goto next
			}
			if hv == -1 {
				break
			}
			hx = (hx + 1) & lzwHMask
		}
		emit()
		if nextCode < lzwMaxCode {
			htab[hx] = fcode
			codetab[hx] = nextCode
			nextCode++
		}
		prefix = ch
	next:
	}
	emit()
	chk += o
	for i := int32(0); i < o; i += 7 {
		chk += int32(out[i]) & 0xff
	}
	return chk
}
