package workloads

import (
	"herajvm/internal/classfile"
)

// KMeans parameters: a scale of s runs one assignment pass of 128s
// planar points against 8 fixed centroids. A chunk is a band of points;
// every worker reads the whole (tiny) centroid table plus its band of
// points — TornadoVM's KMeans demo decomposition, restricted to the
// data-parallel assignment step (the centroid update is a reduction the
// accumulator models).
const (
	kmeansDefaultScale = 4
	kmeansClusters     = 8
)

func kmeansPoints(scale int) int32 { return int32(128 * scale) }

// KMeans returns the nearest-centroid kernel workload: the
// FP-compare-and-branch member of the showcase set. Each point
// contributes best*7 + (int)(bestDist*16) to the checksum — a
// per-iteration term, so the total is invariant under any point split.
func KMeans() KernelSpec {
	return KernelSpec{
		Name:         "kmeans",
		KernelClass:  "KMeansKernel",
		ScalarClass:  "KMeansScalar",
		DefaultScale: kmeansDefaultScale,
		Build:        buildKernelVia(buildKMeansInto),
		BuildInto:    buildKMeansInto,
		Reference:    refKMeans,
	}
}

func buildKMeansInto(p *classfile.Program, prefix string, scale int) error {
	n := kmeansPoints(scale)
	const k = kmeansClusters
	h := newKernelHarnessIn(p, prefix, "KMeansBody")
	pxF := h.body.NewField("px", classfile.Ref)
	pyF := h.body.NewField("py", classfile.Ref)
	cxF := h.body.NewField("cx", classfile.Ref)
	cyF := h.body.NewField("cy", classfile.Ref)
	kF := h.body.NewField("k", classfile.Int)

	// run(from, to): assign points [from, to) to their nearest centroid.
	// Locals: 0=this 1=from 2=to 3=p 4=c 5=chk 6=best 7=bd 8=dx 9=dy
	//         10=d 11=k 12=px 13=py 14=cx 15=cy 16=x 17=y
	const (
		lP, lC, lChk, lBest, lBd, lDx, lDy = 3, 4, 5, 6, 7, 8, 9
		lD, lK, lPx, lPy, lCx, lCy, lX, lY = 10, 11, 12, 13, 14, 15, 16, 17
	)
	a := h.run.Asm()
	a.ConstI(0)
	a.StoreI(lChk)
	a.LoadRef(0)
	a.GetField(kF)
	a.StoreI(lK)
	a.LoadRef(0)
	a.GetField(pxF)
	a.StoreRef(lPx)
	a.LoadRef(0)
	a.GetField(pyF)
	a.StoreRef(lPy)
	a.LoadRef(0)
	a.GetField(cxF)
	a.StoreRef(lCx)
	a.LoadRef(0)
	a.GetField(cyF)
	a.StoreRef(lCy)

	a.LoadI(1)
	a.StoreI(lP)
	ptLoop, ptDone := a.NewLabel(), a.NewLabel()
	a.Bind(ptLoop)
	a.LoadI(lP)
	a.LoadI(2)
	a.IfICmpGE(ptDone)
	// x = px[p]; y = py[p]; best = 0; bd = big
	a.LoadRef(lPx)
	a.LoadI(lP)
	a.ALoad(classfile.ElemDouble)
	a.StoreD(lX)
	a.LoadRef(lPy)
	a.LoadI(lP)
	a.ALoad(classfile.ElemDouble)
	a.StoreD(lY)
	a.ConstI(0)
	a.StoreI(lBest)
	a.ConstD(1e18)
	a.StoreD(lBd)

	a.ConstI(0)
	a.StoreI(lC)
	cenLoop, cenDone := a.NewLabel(), a.NewLabel()
	a.Bind(cenLoop)
	a.LoadI(lC)
	a.LoadI(lK)
	a.IfICmpGE(cenDone)
	// dx = cx[c]-x; dy = cy[c]-y; d = dx*dx + dy*dy
	a.LoadRef(lCx)
	a.LoadI(lC)
	a.ALoad(classfile.ElemDouble)
	a.LoadD(lX)
	a.SubD()
	a.StoreD(lDx)
	a.LoadRef(lCy)
	a.LoadI(lC)
	a.ALoad(classfile.ElemDouble)
	a.LoadD(lY)
	a.SubD()
	a.StoreD(lDy)
	a.LoadD(lDx)
	a.LoadD(lDx)
	a.MulD()
	a.LoadD(lDy)
	a.LoadD(lDy)
	a.MulD()
	a.AddD()
	a.StoreD(lD)
	// if (d < bd) { bd = d; best = c }
	skip := a.NewLabel()
	a.LoadD(lD)
	a.LoadD(lBd)
	a.CmpDG()
	a.IfGE(skip)
	a.LoadD(lD)
	a.StoreD(lBd)
	a.LoadI(lC)
	a.StoreI(lBest)
	a.Bind(skip)
	a.Inc(lC, 1)
	a.Goto(cenLoop)
	a.Bind(cenDone)

	// chk += best*7 + (int)(bd*16.0)
	a.LoadI(lChk)
	a.LoadI(lBest)
	a.ConstI(7)
	a.MulI()
	a.AddI()
	a.LoadD(lBd)
	a.ConstD(16.0)
	a.MulD()
	a.D2I()
	a.AddI()
	a.StoreI(lChk)
	a.Inc(lP, 1)
	a.Goto(ptLoop)
	a.Bind(ptDone)

	a.LoadI(lChk)
	a.InvokeStatic(h.add)
	a.RetVoid()
	a.MustBuild()

	// Setup. Entry locals: 0=body 1=idx 2=px 3=py 4=cx 5=cy
	h.buildEntries(prefix+"KMeansKernel", prefix+"KMeansScalar", n, func(a *classfile.Asm) {
		a.ConstI(n)
		a.NewArray(classfile.ElemDouble)
		a.StoreRef(2)
		emitFillLinear(a, 2, 1, n, 29, 1, 53, 26, 0.25)
		a.ConstI(n)
		a.NewArray(classfile.ElemDouble)
		a.StoreRef(3)
		emitFillLinear(a, 3, 1, n, 31, 2, 47, 23, 0.25)
		a.ConstI(k)
		a.NewArray(classfile.ElemDouble)
		a.StoreRef(4)
		emitFillLinear(a, 4, 1, k, 19, 3, 53, 26, 0.25)
		a.ConstI(k)
		a.NewArray(classfile.ElemDouble)
		a.StoreRef(5)
		emitFillLinear(a, 5, 1, k, 23, 5, 47, 23, 0.25)
		a.New(h.body)
		a.StoreRef(0)
		a.LoadRef(0)
		a.LoadRef(2)
		a.PutField(pxF)
		a.LoadRef(0)
		a.LoadRef(3)
		a.PutField(pyF)
		a.LoadRef(0)
		a.LoadRef(4)
		a.PutField(cxF)
		a.LoadRef(0)
		a.LoadRef(5)
		a.PutField(cyF)
		a.LoadRef(0)
		a.ConstI(k)
		a.PutField(kF)
	})
	return nil
}

// refKMeans mirrors the bytecode exactly in Go.
func refKMeans(scale int) int32 {
	n := kmeansPoints(scale)
	const k = kmeansClusters
	px := fillLinear(n, 29, 1, 53, 26, 0.25)
	py := fillLinear(n, 31, 2, 47, 23, 0.25)
	cx := fillLinear(k, 19, 3, 53, 26, 0.25)
	cy := fillLinear(k, 23, 5, 47, 23, 0.25)
	var chk int32
	for p := int32(0); p < n; p++ {
		x, y := px[p], py[p]
		best, bd := int32(0), 1e18
		for c := int32(0); c < k; c++ {
			dx := cx[c] - x
			dy := cy[c] - y
			d := dx*dx + dy*dy
			if d < bd {
				bd, best = d, c
			}
		}
		chk += best*7 + int32(bd*16.0)
	}
	return chk
}
