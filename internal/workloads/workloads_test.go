package workloads

import (
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/vm"
)

func smallConfig(numSPEs int) vm.Config {
	cfg := vm.DefaultConfig()
	cfg.Machine.MainMemory = 32 << 20
	cfg.Machine.Topology = cell.PS3Topology(numSPEs)
	cfg.HeapBytes = 16 << 20
	cfg.CodeBytes = 2 << 20
	return cfg
}

// runWorkload builds and runs a workload, returning the checksum and VM.
func runWorkload(t *testing.T, s Spec, threads, scale, numSPEs int) (int32, *vm.VM) {
	return runWorkloadCfg(t, s, threads, scale, smallConfig(numSPEs))
}

func runWorkloadCfg(t *testing.T, s Spec, threads, scale int, cfg vm.Config) (int32, *vm.VM) {
	t.Helper()
	p, err := s.Build(threads, scale)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := vm.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	th, err := machine.RunMain(s.MainClass, "main")
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	return int32(uint32(th.Result)), machine
}

func TestWorkloadChecksumsMatchReferenceOnPPE(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			scale := 1
			if s.Name == "mandelbrot" {
				scale = 2
			}
			got, _ := runWorkload(t, s, 2, scale, 0) // no SPEs: pure PPE
			want := s.Reference(2, scale)
			if got != want {
				t.Errorf("PPE checksum = %d, want %d", got, want)
			}
		})
	}
}

func TestWorkloadChecksumsMatchReferenceOnSPEs(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			scale := 1
			if s.Name == "mandelbrot" {
				scale = 2
			}
			got, machine := runWorkload(t, s, 3, scale, 3)
			want := s.Reference(3, scale)
			if got != want {
				t.Errorf("SPE checksum = %d, want %d", got, want)
			}
			var speInstrs uint64
			for _, spe := range machine.Machine.CoresOf(isa.SPE) {
				speInstrs += spe.Stats.Instrs
			}
			if speInstrs == 0 {
				t.Error("workers never executed on SPEs")
			}
		})
	}
}

func TestChecksumIndependentOfSPECount(t *testing.T) {
	// Same program, same threads, different core counts: the checksum
	// must not change (transparency of placement).
	s := Mandelbrot()
	ref := s.Reference(4, 1)
	for _, spes := range []int{1, 2, 4} {
		got, _ := runWorkload(t, s, 4, 1, spes)
		if got != ref {
			t.Errorf("%d SPEs: checksum %d, want %d", spes, got, ref)
		}
	}
}

func TestWorkloadCharacters(t *testing.T) {
	// The three workloads must exhibit the paper's Figure 5/6/7 contrast:
	// mandelbrot FP-dominated; compress most main-memory-bound (worst
	// data-cache behaviour); mpegaudio the largest code footprint (worst
	// code-cache behaviour). Caches are measured at reduced sizes so the
	// sensitivity - not just cold misses - is visible, as in the paper's
	// sweeps.
	type profile struct {
		fpShare   float64
		memShare  float64
		codeChurn float64 // code-cache misses per executed instruction
		dataMiss  float64 // data-cache misses per executed instruction
	}
	profiles := map[string]profile{}
	for _, s := range All() {
		scale := s.DefaultScale
		cfg := smallConfig(1)
		cfg.DataCache.Size = 48 << 10
		cfg.CodeCache.Size = 24 << 10
		_, machine := runWorkloadCfg(t, s, 1, scale, cfg)
		spe := machine.Machine.CoresOf(isa.SPE)[0]
		var busy uint64
		for _, c := range spe.Stats.Cycles {
			busy += c
		}
		profiles[s.Name] = profile{
			fpShare:   float64(spe.Stats.Cycles[isa.ClassFloat]) / float64(busy),
			memShare:  float64(spe.Stats.Cycles[isa.ClassMainMem]) / float64(busy),
			codeChurn: float64(spe.Stats.CodeMisses) / float64(spe.Stats.Instrs),
			dataMiss:  float64(spe.Stats.DataMisses) / float64(spe.Stats.Instrs),
		}
	}
	mb, cp, mp := profiles["mandelbrot"], profiles["compress"], profiles["mpegaudio"]
	if !(mb.fpShare > cp.fpShare && mb.fpShare > mp.fpShare) {
		t.Errorf("mandelbrot should have the largest FP share: mb=%.3f cp=%.3f mp=%.3f",
			mb.fpShare, cp.fpShare, mp.fpShare)
	}
	if !(cp.memShare > mb.memShare && cp.memShare > mp.memShare) {
		t.Errorf("compress should have the largest main-memory share: cp=%.3f mb=%.3f mp=%.3f",
			cp.memShare, mb.memShare, mp.memShare)
	}
	if !(cp.dataMiss > mb.dataMiss && cp.dataMiss > mp.dataMiss) {
		t.Errorf("compress should miss the data cache most often: cp=%.5f mb=%.5f mp=%.5f",
			cp.dataMiss, mb.dataMiss, mp.dataMiss)
	}
	if !(mp.codeChurn > cp.codeChurn && mp.codeChurn > mb.codeChurn) {
		t.Errorf("mpegaudio should have the worst code-cache churn: mp=%.6f cp=%.6f mb=%.6f",
			mp.codeChurn, cp.codeChurn, mb.codeChurn)
	}
}

func TestReferenceDeterminism(t *testing.T) {
	for _, s := range All() {
		a := s.Reference(6, 2)
		b := s.Reference(6, 2)
		if a != b {
			t.Errorf("%s: reference not deterministic", s.Name)
		}
		if s.Reference(1, 2) == s.Reference(6, 2) && s.Name == "mandelbrot" {
			// Work is partitioned by thread; totals still equal. (This is
			// the design: checksum independent of thread count.)
			continue
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("compress"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown workload")
	}
}
