package workloads

import (
	"herajvm/internal/classfile"
)

// Matmul parameters: a scale of s multiplies two dense (16s x 16s)
// double matrices. The kernel iterates output rows, so a chunk is a
// band of rows and each worker reads all of B but only its band of A —
// the classic SPMD decomposition TornadoVM's matrix-multiply demo uses.
const matmulDefaultScale = 4

func matmulN(scale int) int32 { return int32(16 * scale) }

// Matmul returns the dense matrix-multiply kernel workload: the
// FP-multiply-add-bound member of the showcase set. Each (row, col)
// dot product contributes (int)(s * 16) to the checksum — a
// per-iteration term, so the total is invariant under any row split.
func Matmul() KernelSpec {
	return KernelSpec{
		Name:         "matmul",
		KernelClass:  "MatmulKernel",
		ScalarClass:  "MatmulScalar",
		DefaultScale: matmulDefaultScale,
		Build:        buildKernelVia(buildMatmulInto),
		BuildInto:    buildMatmulInto,
		Reference:    refMatmul,
	}
}

// buildKernelVia adapts a kernel workload's BuildInto builder to the
// one-shot Build signature, mirroring buildVia for the paper workloads.
func buildKernelVia(into func(p *classfile.Program, prefix string, scale int) error,
) func(scale int) (*classfile.Program, error) {
	return func(scale int) (*classfile.Program, error) {
		p := stdlibProgram()
		if err := into(p, "", scale); err != nil {
			return nil, err
		}
		return p, nil
	}
}

func buildMatmulInto(p *classfile.Program, prefix string, scale int) error {
	n := matmulN(scale)
	h := newKernelHarnessIn(p, prefix, "MatmulBody")
	aF := h.body.NewField("a", classfile.Ref)
	bF := h.body.NewField("b", classfile.Ref)
	nF := h.body.NewField("n", classfile.Int)

	// run(from, to): rows [from, to) of C = A x B, checksummed.
	// Locals: 0=this 1=from 2=to 3=i 4=j 5=k 6=chk 7=s 8=n 9=a 10=b
	//         11=ibase 12=kb
	const (
		lI, lJ, lK, lChk, lS = 3, 4, 5, 6, 7
		lN, lA, lB, lIb, lKb = 8, 9, 10, 11, 12
	)
	a := h.run.Asm()
	a.ConstI(0)
	a.StoreI(lChk)
	a.LoadRef(0)
	a.GetField(nF)
	a.StoreI(lN)
	a.LoadRef(0)
	a.GetField(aF)
	a.StoreRef(lA)
	a.LoadRef(0)
	a.GetField(bF)
	a.StoreRef(lB)

	a.LoadI(1)
	a.StoreI(lI)
	rowLoop, rowDone := a.NewLabel(), a.NewLabel()
	a.Bind(rowLoop)
	a.LoadI(lI)
	a.LoadI(2)
	a.IfICmpGE(rowDone)
	// ibase = i * n
	a.LoadI(lI)
	a.LoadI(lN)
	a.MulI()
	a.StoreI(lIb)

	a.ConstI(0)
	a.StoreI(lJ)
	colLoop, colDone := a.NewLabel(), a.NewLabel()
	a.Bind(colLoop)
	a.LoadI(lJ)
	a.LoadI(lN)
	a.IfICmpGE(colDone)
	// s = 0; kb = j  (kb walks column j of B, strength-reduced k*n+j)
	a.ConstD(0)
	a.StoreD(lS)
	a.LoadI(lJ)
	a.StoreI(lKb)
	a.ConstI(0)
	a.StoreI(lK)
	// The dot loop is unrolled 4x (n = 16*scale is always divisible):
	// loop control is the expensive part on a branch-hostile vector
	// core, so cutting the back edges is what the kernel's own compiler
	// would do. The float64 operation order is untouched, keeping
	// refMatmul exact.
	dotLoop, dotDone := a.NewLabel(), a.NewLabel()
	a.Bind(dotLoop)
	a.LoadI(lK)
	a.LoadI(lN)
	a.IfICmpGE(dotDone)
	for unroll := 0; unroll < 4; unroll++ {
		// s += a[ibase+k] * b[kb]
		a.LoadD(lS)
		a.LoadRef(lA)
		a.LoadI(lIb)
		a.LoadI(lK)
		a.AddI()
		a.ALoad(classfile.ElemDouble)
		a.LoadRef(lB)
		a.LoadI(lKb)
		a.ALoad(classfile.ElemDouble)
		a.MulD()
		a.AddD()
		a.StoreD(lS)
		// kb += n
		a.LoadI(lKb)
		a.LoadI(lN)
		a.AddI()
		a.StoreI(lKb)
		a.Inc(lK, 1)
	}
	a.Goto(dotLoop)
	a.Bind(dotDone)
	// chk += (int)(s * 16.0)
	a.LoadI(lChk)
	a.LoadD(lS)
	a.ConstD(16.0)
	a.MulD()
	a.D2I()
	a.AddI()
	a.StoreI(lChk)
	a.Inc(lJ, 1)
	a.Goto(colLoop)
	a.Bind(colDone)

	a.Inc(lI, 1)
	a.Goto(rowLoop)
	a.Bind(rowDone)

	a.LoadI(lChk)
	a.InvokeStatic(h.add)
	a.RetVoid()
	a.MustBuild()

	// Setup: fill A and B, construct the body.
	// Entry locals: 0=body 1=idx 2=a 3=b
	h.buildEntries(prefix+"MatmulKernel", prefix+"MatmulScalar", n, func(a *classfile.Asm) {
		a.ConstI(n * n)
		a.NewArray(classfile.ElemDouble)
		a.StoreRef(2)
		emitFillLinear(a, 2, 1, n*n, 7, 3, 31, 15, 0.125)
		a.ConstI(n * n)
		a.NewArray(classfile.ElemDouble)
		a.StoreRef(3)
		emitFillLinear(a, 3, 1, n*n, 5, 11, 29, 14, 0.0625)
		a.New(h.body)
		a.StoreRef(0)
		a.LoadRef(0)
		a.LoadRef(2)
		a.PutField(aF)
		a.LoadRef(0)
		a.LoadRef(3)
		a.PutField(bF)
		a.LoadRef(0)
		a.ConstI(n)
		a.PutField(nF)
	})
	return nil
}

// refMatmul mirrors the bytecode exactly in Go (same float64 operation
// order, so the checksum matches bit for bit).
func refMatmul(scale int) int32 {
	n := matmulN(scale)
	am := fillLinear(n*n, 7, 3, 31, 15, 0.125)
	bm := fillLinear(n*n, 5, 11, 29, 14, 0.0625)
	var chk int32
	for i := int32(0); i < n; i++ {
		ibase := i * n
		for j := int32(0); j < n; j++ {
			s := 0.0
			kb := j
			for k := int32(0); k < n; k++ {
				s += am[ibase+k] * bm[kb]
				kb += n
			}
			chk += int32(s * 16.0)
		}
	}
	return chk
}
