// Package kernel plans data-parallel kernel launches. A
// hera/Parallel.forRange call hands the VM an iteration space; this
// package decides which core pool runs it, how the space splits into
// contiguous per-worker chunks (one pinned worker per core of the
// chosen pool), and how a worker's working set tiles through a
// scratchpad for double-buffered DMA staging. It is pure planning — it
// imports only the isa registry and moves no data — so the VM launch
// path, the differential tests and the fuzz harness all exercise one
// deterministic contract.
package kernel

import (
	"fmt"

	"herajvm/internal/isa"
)

// Pool is one candidate worker pool for a launch: every core of a
// single kind.
type Pool struct {
	Kind  isa.CoreKind
	Cores int
}

// Chunk is one worker's contiguous slice [From,To) of the iteration
// space. Worker is the worker's slot within the chosen pool (core i of
// the pool runs chunk with Worker==i).
type Chunk struct {
	From, To int32
	Worker   int
}

// Plan is a fully planned launch: the chosen pool kind and the chunk
// per worker. Chunks are ordered by Worker and exactly cover the
// requested range with no overlap; an empty iteration space plans to
// zero chunks.
type Plan struct {
	Kind   isa.CoreKind
	Chunks []Chunk
}

// Score ranks a pool for SPMD work: the kind's predicted
// floating-point cost per operation divided by the pool's total lane
// count (cores x the kind's SPMD width). Lower is better — it is the
// predicted cost of pushing one FP-heavy iteration through the whole
// pool. A VPU pool wins whenever one is present (cheap FP, wide
// lanes); an SPE pool beats the lone PPE on core count alone.
func (p Pool) Score() float64 {
	if p.Cores <= 0 {
		return 0
	}
	return p.Kind.FPScore() / float64(p.Cores*p.Kind.SPMDWidth())
}

// ChoosePool picks the cheapest capable pool. Pools with no cores are
// skipped; ties keep the earliest entry, so callers passing pools in
// kind-registration order get the stable tie-break every other
// kind-ordered decision in the machine uses. ok is false when no pool
// has a core.
func ChoosePool(pools []Pool) (best Pool, ok bool) {
	for _, p := range pools {
		if p.Cores <= 0 {
			continue
		}
		if !ok || p.Score() < best.Score() {
			best, ok = p, true
		}
	}
	return best, ok
}

// SplitRange splits [from,to) into at most workers contiguous
// non-empty chunks, front-loading the remainder so chunk sizes differ
// by at most one. The split is a pure function of its arguments — the
// determinism the double-replay gates rely on.
func SplitRange(from, to int32, workers int) []Chunk {
	if to <= from || workers <= 0 {
		return nil
	}
	n := int64(to) - int64(from)
	if int64(workers) > n {
		workers = int(n)
	}
	chunks := make([]Chunk, 0, workers)
	base := n / int64(workers)
	rem := n % int64(workers)
	cur := int64(from)
	for w := 0; w < workers; w++ {
		size := base
		if int64(w) < rem {
			size++
		}
		chunks = append(chunks, Chunk{From: int32(cur), To: int32(cur + size), Worker: w})
		cur += size
	}
	return chunks
}

// PlanLaunch chooses a pool and splits the iteration space across it.
// ok is false when no pool has a core to run on.
func PlanLaunch(from, to int32, pools []Pool) (Plan, bool) {
	pool, ok := ChoosePool(pools)
	if !ok {
		return Plan{}, false
	}
	return Plan{Kind: pool.Kind, Chunks: SplitRange(from, to, pool.Cores)}, true
}

// Tile is one contiguous byte window of a worker's staged working set.
type Tile struct {
	Off, Len uint32
}

// Tiles splits a total byte extent into tiles of at most tileBytes
// each (the last tile takes the remainder). The first tile is the one
// a double-buffered worker must block for; later tiles prefetch while
// the previous tile computes. A zero tileBytes is normalized to one
// tile covering everything.
func Tiles(total, tileBytes uint32) []Tile {
	if total == 0 {
		return nil
	}
	if tileBytes == 0 || tileBytes >= total {
		return []Tile{{Off: 0, Len: total}}
	}
	tiles := make([]Tile, 0, (total+tileBytes-1)/tileBytes)
	for off := uint32(0); off < total; off += tileBytes {
		n := tileBytes
		if total-off < n {
			n = total - off
		}
		tiles = append(tiles, Tile{Off: off, Len: n})
	}
	return tiles
}

// Validate checks a plan's structural invariants against the launch it
// claims to cover: chunks ordered by worker, contiguous, non-empty,
// and exactly covering [from,to). The launch path asserts it in tests
// and the fuzz target asserts it for arbitrary descriptors.
func (p Plan) Validate(from, to int32) error {
	if to <= from {
		if len(p.Chunks) != 0 {
			return fmt.Errorf("kernel: empty range [%d,%d) planned %d chunks", from, to, len(p.Chunks))
		}
		return nil
	}
	if len(p.Chunks) == 0 {
		return fmt.Errorf("kernel: range [%d,%d) planned no chunks", from, to)
	}
	cur := from
	for i, c := range p.Chunks {
		if c.Worker != i {
			return fmt.Errorf("kernel: chunk %d has worker %d", i, c.Worker)
		}
		if c.From != cur {
			return fmt.Errorf("kernel: chunk %d starts at %d, want %d", i, c.From, cur)
		}
		if c.To <= c.From {
			return fmt.Errorf("kernel: chunk %d empty [%d,%d)", i, c.From, c.To)
		}
		cur = c.To
	}
	if cur != to {
		return fmt.Errorf("kernel: chunks end at %d, want %d", cur, to)
	}
	return nil
}
