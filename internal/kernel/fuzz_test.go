package kernel

import (
	"testing"

	"herajvm/internal/isa"
)

// FuzzPlan throws arbitrary launch descriptors (iteration range, pool
// shapes, tiling parameters) at the planner and asserts the structural
// invariants every launch depends on: exact coverage, no overlap,
// worker ids dense, tiles covering the byte extent. The VM trusts
// these invariants without rechecking, so the fuzzer is the backstop.
func FuzzPlan(f *testing.F) {
	f.Add(int32(0), int32(1024), 1, 4, 2, uint32(4096), uint32(1024))
	f.Add(int32(-50), int32(50), 1, 6, 0, uint32(100), uint32(0))
	f.Add(int32(7), int32(7), 0, 0, 0, uint32(0), uint32(128))
	f.Add(int32(-2147483648), int32(2147483647), 1, 255, 255, uint32(1), uint32(1))
	f.Fuzz(func(t *testing.T, from, to int32, ppe, spe, vpu int, total, tileBytes uint32) {
		// Clamp pool sizes to plausible machine shapes; negative core
		// counts must simply be skipped, so pass them through too.
		if ppe > 1024 {
			ppe = 1024
		}
		if spe > 1024 {
			spe = 1024
		}
		if vpu > 1024 {
			vpu = 1024
		}
		pools := []Pool{
			{Kind: isa.PPE, Cores: ppe},
			{Kind: isa.SPE, Cores: spe},
			{Kind: isa.VPU, Cores: vpu},
		}
		plan, ok := PlanLaunch(from, to, pools)
		if !ok {
			if ppe > 0 || spe > 0 || vpu > 0 {
				t.Fatalf("PlanLaunch refused with cores available: %v", pools)
			}
			return
		}
		if err := plan.Validate(from, to); err != nil {
			t.Fatalf("plan invalid: %v (from=%d to=%d pools=%v)", err, from, to, pools)
		}
		// A planned chunk count never exceeds the chosen pool's cores.
		for _, p := range pools {
			if p.Kind == plan.Kind && len(plan.Chunks) > p.Cores {
				t.Fatalf("%d chunks exceed %d cores of %v", len(plan.Chunks), p.Cores, p.Kind)
			}
		}

		if total > 1<<24 {
			total %= 1 << 24
		}
		if tileBytes > 1<<20 {
			tileBytes %= 1 << 20
		}
		tiles := Tiles(total, tileBytes)
		var covered uint32
		for i, tl := range tiles {
			if tl.Off != covered {
				t.Fatalf("tile %d off %d, want %d", i, tl.Off, covered)
			}
			if tl.Len == 0 {
				t.Fatalf("tile %d empty", i)
			}
			if tileBytes != 0 && tl.Len > tileBytes && total > tileBytes {
				t.Fatalf("tile %d len %d exceeds budget %d", i, tl.Len, tileBytes)
			}
			covered += tl.Len
		}
		if covered != total {
			t.Fatalf("tiles cover %d of %d bytes", covered, total)
		}
	})
}
