package kernel

import (
	"testing"

	"herajvm/internal/isa"
)

func TestSplitRangeCoverage(t *testing.T) {
	cases := []struct {
		from, to int32
		workers  int
		want     int
	}{
		{0, 100, 4, 4},
		{0, 3, 8, 3},    // more workers than iterations
		{5, 5, 4, 0},    // empty range
		{10, 9, 4, 0},   // inverted range
		{-8, 8, 3, 3},   // negative start
		{0, 7, 2, 2},    // odd split
		{0, 1, 1, 1},    // singleton
		{0, 1000, 6, 6}, // ppe:1,spe:6 shape
	}
	for _, c := range cases {
		chunks := SplitRange(c.from, c.to, c.workers)
		if len(chunks) != c.want {
			t.Fatalf("SplitRange(%d,%d,%d) = %d chunks, want %d",
				c.from, c.to, c.workers, len(chunks), c.want)
		}
		p := Plan{Kind: isa.SPE, Chunks: chunks}
		if err := p.Validate(c.from, c.to); err != nil {
			t.Fatalf("SplitRange(%d,%d,%d): %v", c.from, c.to, c.workers, err)
		}
	}
}

func TestSplitRangeBalance(t *testing.T) {
	chunks := SplitRange(0, 10, 4)
	sizes := []int32{}
	for _, c := range chunks {
		sizes = append(sizes, c.To-c.From)
	}
	// Remainder front-loaded: 3,3,2,2.
	want := []int32{3, 3, 2, 2}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestChoosePoolPrefersVPU(t *testing.T) {
	pools := []Pool{
		{Kind: isa.PPE, Cores: 1},
		{Kind: isa.SPE, Cores: 4},
		{Kind: isa.VPU, Cores: 2},
	}
	best, ok := ChoosePool(pools)
	if !ok || best.Kind != isa.VPU {
		t.Fatalf("ChoosePool = %v,%v, want VPU pool", best, ok)
	}
}

func TestChoosePoolSPEOverPPE(t *testing.T) {
	pools := []Pool{
		{Kind: isa.PPE, Cores: 1},
		{Kind: isa.SPE, Cores: 6},
	}
	best, ok := ChoosePool(pools)
	if !ok || best.Kind != isa.SPE {
		t.Fatalf("ChoosePool = %v,%v, want SPE pool", best, ok)
	}
}

func TestChoosePoolFallsBackToPPE(t *testing.T) {
	best, ok := ChoosePool([]Pool{{Kind: isa.PPE, Cores: 1}, {Kind: isa.SPE, Cores: 0}})
	if !ok || best.Kind != isa.PPE {
		t.Fatalf("ChoosePool = %v,%v, want PPE pool", best, ok)
	}
	if _, ok := ChoosePool(nil); ok {
		t.Fatal("ChoosePool(nil) reported a pool")
	}
}

func TestPlanLaunch(t *testing.T) {
	plan, ok := PlanLaunch(0, 64, []Pool{{Kind: isa.PPE, Cores: 1}, {Kind: isa.SPE, Cores: 6}})
	if !ok {
		t.Fatal("PlanLaunch failed")
	}
	if plan.Kind != isa.SPE || len(plan.Chunks) != 6 {
		t.Fatalf("plan = %+v, want 6 SPE chunks", plan)
	}
	if err := plan.Validate(0, 64); err != nil {
		t.Fatal(err)
	}
}

func TestTiles(t *testing.T) {
	tiles := Tiles(2500, 1024)
	if len(tiles) != 3 {
		t.Fatalf("Tiles(2500,1024) = %d tiles, want 3", len(tiles))
	}
	var covered uint32
	for i, tl := range tiles {
		if tl.Off != covered {
			t.Fatalf("tile %d off %d, want %d", i, tl.Off, covered)
		}
		if tl.Len == 0 {
			t.Fatalf("tile %d empty", i)
		}
		covered += tl.Len
	}
	if covered != 2500 {
		t.Fatalf("tiles cover %d bytes, want 2500", covered)
	}
	if got := Tiles(100, 0); len(got) != 1 || got[0].Len != 100 {
		t.Fatalf("Tiles(100,0) = %v, want one full tile", got)
	}
	if got := Tiles(0, 1024); got != nil {
		t.Fatalf("Tiles(0,1024) = %v, want nil", got)
	}
}
