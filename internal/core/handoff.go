// Job hand-off: freezing a running job off one System and rehydrating
// it on another. The thin wrappers below expose the VM's snapshot
// subsystem (internal/vm/snapshot.go) at the session layer, keeping the
// Job handle bookkeeping consistent; the cluster dispatcher drives them
// at epoch barriers (internal/cluster).
package core

import (
	"context"

	"herajvm/internal/cell"
	"herajvm/internal/vm"
)

// ErrFrozen is returned by Wait (and surfaced through cluster results)
// for a job frozen off its machine: it will never complete there.
// Match with errors.Is.
var ErrFrozen = vm.ErrFrozen

// ErrJobDone is Freeze's report that the job completed before reaching
// its safe point — nothing to hand off, nothing wrong.
var ErrJobDone = vm.ErrJobDone

// ErrNotFreezable is Freeze's report that the job is entangled with
// state outside itself and must stay where it is. Match with errors.Is.
var ErrNotFreezable = vm.ErrNotFreezable

// Freeze drives the machine until the job reaches a safe point — every
// thread parked at a bytecode boundary — then serializes and detaches
// it, returning the portable image. The job's handle stays in the
// session's list; its Wait returns ErrFrozen. ctx cancellation aborts
// the freeze cleanly (the job keeps running here). See vm.FreezeJob
// for the full contract.
func (s *System) Freeze(ctx context.Context, j *Job) (*vm.JobImage, error) {
	return s.VM.FreezeJob(ctx, j.inner)
}

// Rehydrate admits a frozen job image on this System, resuming its
// thread tree at the given arrival. req is the original submission the
// revived handle carries (for reports and any further routing); the
// job's admission cycle, deadline, verdict, accounting and captured
// output come from the image, so end-to-end latency spans the hand-off.
func (s *System) Rehydrate(img *vm.JobImage, arrival cell.Clock, req JobRequest) (*Job, error) {
	inner, err := s.VM.RehydrateJob(img, arrival)
	if err != nil {
		return nil, err
	}
	j := &Job{sys: s, inner: inner, req: req}
	s.jobs = append(s.jobs, j)
	return j, nil
}
