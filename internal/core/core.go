// Package core composes the Hera-JVM system — the simulated Cell
// machine, the per-core JIT compilers, the SPE software caches, the
// runtime (threads, scheduler, migration, GC) and the profiler — behind
// one orchestration type, and renders machine-level reports. This is the
// paper's contribution as a single artefact: a runtime system that hides
// processor heterogeneity behind a homogeneous virtual machine.
package core

import (
	"fmt"
	"strings"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
	"herajvm/internal/vm"
)

// System is a booted Hera-JVM on a simulated Cell machine. It is a
// long-lived session: the VM stays booted between runs, and many jobs —
// each a named entry method with its own per-job accounting — can be
// submitted to it (Submit/Job.Wait/Drain in session.go). Run is the
// one-shot special case kept for single-program use.
type System struct {
	VM *vm.VM

	jobs []*Job
}

// NewSystem boots a system for a program (resolving it if needed).
func NewSystem(cfg vm.Config, prog *classfile.Program) (*System, error) {
	v, err := vm.New(cfg, prog)
	if err != nil {
		return nil, err
	}
	return &System{VM: v}, nil
}

// Result summarises one completed job.
type Result struct {
	// Cycles is the job's admission-to-completion time: the cycle its
	// last thread retired minus the cycle it was admitted. (Before the
	// session API this was the global machine-clock delta, which only
	// made sense for one run at a time.)
	Cycles cell.Clock
	// Millis is Cycles at the machine's configured clock rate
	// (MachineConfig.ClockHz; the Cell's 3.2 GHz by default).
	Millis float64
	// Value is the entry method's return value (low bits for int).
	Value uint64
	// HasValue reports whether the entry method returned a value.
	HasValue bool
	// Output is the System.out text the job's own threads printed.
	Output string

	// AdmittedAt and CompletedAt bound the job in simulated time.
	AdmittedAt  cell.Clock
	CompletedAt cell.Clock
	// Verdict is the admission pipeline's decision for the job; Shed is
	// true when it was refused at admission (Verdict == Shed), in which
	// case the job never ran: Cycles, Value and Output are zero and
	// DeadlineMet is false.
	Verdict Verdict
	Shed    bool
	// Deadline is the job's absolute completion deadline (0 = none) and
	// DeadlineMet whether the job completed by it (true when it had
	// none).
	Deadline    cell.Clock
	DeadlineMet bool
	// Migrations, Steals and Compiles count the scheduling events the
	// job's threads experienced (cross-kind moves, same-kind steals,
	// fresh JIT compiles triggered).
	Migrations uint64
	Steals     uint64
	Compiles   uint64
	// GCPauses and GCCycles count the stop-the-world collections the
	// job's own allocations forced and their total pause cycles — the
	// collector's time billed to the job whose allocation pressure
	// triggered it, so serving percentiles cannot hide GC.
	GCPauses uint64
	GCCycles uint64
	// KernelLaunches, KernelWorkers and KernelDMABytes count the job's
	// hera/Parallel.forRange launches, the SPMD workers they fanned out,
	// and the scratchpad staging DMA billed to those workers.
	KernelLaunches uint64
	KernelWorkers  uint64
	KernelDMABytes uint64
}

// Run executes a static entry method to completion: a thin wrapper
// over Submit and Job.Wait kept for one-shot runs.
//
// Deprecated: prefer Submit/Job.Wait, which compose — Run drains only
// its own job and blurs nothing, but its name hides that the system
// stays booted and reusable afterwards.
func (s *System) Run(className, methodName string) (*Result, error) {
	job, _, err := s.Submit(JobRequest{Class: className, Method: methodName})
	if err != nil {
		return nil, err
	}
	return job.Wait()
}

// Report renders a per-core machine report: cycle breakdown by operation
// class, software-cache behaviour, DMA traffic, JIT activity, GC pauses
// and thread migrations.
func (s *System) Report() string {
	var b strings.Builder
	m := s.VM.Machine
	fmt.Fprintf(&b, "machine: %s, clock %d cycles\n", m.Describe(), m.MaxClock())

	for _, c := range m.Cores() {
		st := &c.Stats
		fmt.Fprintf(&b, "%-5s busy=%-12d idle=%-12d instrs=%-12d", c, st.Busy(), st.Idle, st.Instrs)
		if c.Kind.UsesLocalStore() {
			fmt.Fprintf(&b, " dcache=%.3f ccache=%.3f dma=%s",
				st.DataHitRate(), st.CodeHitRate(), fmtBytes(st.DMABytes))
		} else {
			fmt.Fprintf(&b, " l1=%.3f l2=%.3f", c.Mem.L1.HitRate(), c.Mem.L2.HitRate())
			if c.BP != nil {
				fmt.Fprintf(&b, " bp=%.3f", c.BP.Accuracy())
			}
		}
		fmt.Fprintf(&b, " mig in/out=%d/%d", st.MigrationsIn, st.MigrationsOut)
		if st.StealsIn+st.StealsOut > 0 {
			fmt.Fprintf(&b, " steals in/out=%d/%d", st.StealsIn, st.StealsOut)
		}
		if st.FastForwardedBlocks > 0 {
			fmt.Fprintf(&b, " ff blocks/instrs=%d/%d",
				st.FastForwardedBlocks, st.FastForwardedInstrs)
		}
		fmt.Fprintf(&b, "\n")
	}

	fmt.Fprintf(&b, "classes: ")
	var total [isa.NumClasses]uint64
	var busy uint64
	for _, c := range m.Cores() {
		for i, cy := range c.Stats.Cycles {
			total[i] += cy
			busy += cy
		}
	}
	if busy > 0 {
		for i, cy := range total {
			fmt.Fprintf(&b, "%s %.1f%%  ", isa.OpClass(i), 100*float64(cy)/float64(busy))
		}
	}
	fmt.Fprintf(&b, "\n")

	fmt.Fprintf(&b, "eib: %d transfers, %s, %d wait cycles\n",
		m.EIB.Transfers, fmtBytes(m.EIB.Bytes), m.EIB.WaitCycles)
	var jitParts []string
	for _, k := range isa.CoreKinds() {
		c := s.VM.Compiler(k)
		if c == nil {
			continue
		}
		jitParts = append(jitParts, fmt.Sprintf("%s %d methods/%s", k, c.Compiles, fmtBytes(c.CodeBytes)))
	}
	fmt.Fprintf(&b, "jit: %s\n", strings.Join(jitParts, ", "))
	fmt.Fprintf(&b, "gc: %d collections, %d cycles, %d live objects, %s live\n",
		s.VM.GCCount, s.VM.GCCycles, s.VM.Heap.LiveObjects(), fmtBytes(uint64(s.VM.Heap.LiveBytes())))

	if len(s.jobs) > 0 {
		completed := 0
		for _, j := range s.jobs {
			if j.Done() {
				completed++
			}
		}
		fmt.Fprintf(&b, "jobs: %d submitted, %d completed\n", len(s.jobs), completed)
		for _, j := range s.jobs {
			fmt.Fprintf(&b, "%s\n", j.describe())
		}
	}

	hot := s.VM.Monitor.Hottest(5)
	if len(hot) > 0 {
		fmt.Fprintf(&b, "hottest methods:\n")
		for _, id := range hot {
			mth := s.VM.Prog.MethodByID(id)
			ctr := s.VM.Monitor.ByMethod[id]
			var mBusy uint64
			for _, cy := range ctr.Cycles {
				mBusy += cy
			}
			fmt.Fprintf(&b, "  %-40s %12d cycles, fp=%.2f mem=%.2f, %d invokes\n",
				mth.Sig(), mBusy, ctr.FPShare(), ctr.MemShare(), ctr.Invokes)
		}
	}
	return b.String()
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
