package core

import (
	"strings"
	"testing"

	"herajvm/internal/classfile"
	"herajvm/internal/vm"
)

func buildProgram(t *testing.T) *classfile.Program {
	t.Helper()
	p := classfile.NewProgram()
	vm.Stdlib(p)
	c := p.NewClass("Main", nil)
	system := p.Lookup("java/lang/System")
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	a.Str("report test")
	a.InvokeStatic(system.MethodByName("println"))
	a.ConstI(11)
	a.ConstI(31)
	a.MulI()
	a.Ret()
	a.MustBuild()
	return p
}

func testCfg() vm.Config {
	cfg := vm.DefaultConfig()
	cfg.Machine.MainMemory = 16 << 20
	cfg.HeapBytes = 4 << 20
	cfg.CodeBytes = 1 << 20
	cfg.BootBytes = 256 << 10
	return cfg
}

func TestSystemRun(t *testing.T) {
	sys, err := NewSystem(testCfg(), buildProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasValue || int32(uint32(res.Value)) != 341 {
		t.Errorf("result: %v %d", res.HasValue, int32(uint32(res.Value)))
	}
	if res.Cycles == 0 || res.Millis <= 0 {
		t.Error("timings empty")
	}
	if res.Output != "report test\n" {
		t.Errorf("output: %q", res.Output)
	}
}

func TestSystemReportSections(t *testing.T) {
	sys, err := NewSystem(testCfg(), buildProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("Main", "main"); err != nil {
		t.Fatal(err)
	}
	rep := sys.Report()
	for _, want := range []string{
		"machine: 1 PPE + 6 SPEs",
		"PPE", "SPE0", "SPE5",
		"classes:",
		"eib:",
		"jit:",
		"gc:",
		"hottest methods:",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[uint64]string{
		12:      "12B",
		3 << 10: "3.0KB",
		5 << 20: "5.0MB",
		2 << 30: "2.0GB",
	}
	for n, want := range cases {
		if got := fmtBytes(n); got != want {
			t.Errorf("fmtBytes(%d) = %q want %q", n, got, want)
		}
	}
}

func TestRunUnknownEntry(t *testing.T) {
	sys, err := NewSystem(testCfg(), buildProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("Nope", "main"); err == nil {
		t.Error("expected error for unknown class")
	}
	if _, err := sys.Run("Main", "nope"); err == nil {
		t.Error("expected error for unknown method")
	}
}
