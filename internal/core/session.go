// Job-session API: a booted System accepts many asynchronous job
// submissions — each a named entry method with optional arguments, an
// arrival cycle, an optional deadline and an optional placement-policy
// override — over one long-lived VM, the workload shape the paper's
// runtime system exists to serve. Submission is asynchronous in
// *simulated* time: Submit runs the request through the admission
// pipeline (creating the root thread of an admitted job, placed
// through the scheduler's drain-time estimate) without advancing the
// machine; Job.Wait, System.Drain and System.RunUntil drive it.
// Admission is totally ordered by (arrival cycle, submission
// sequence) — shed jobs included — and the machine's stepping is
// independent of where the driving loop pauses, so replaying the same
// submission script against the same driving schedule yields
// byte-identical results.

package core

import (
	"fmt"

	"herajvm/internal/cell"
	"herajvm/internal/vm"
)

// Verdict is the admission pipeline's decision for one submission:
// Admitted, Delayed (admitted, but predicted to queue behind backlog)
// or Shed (refused — the job will never run). See vm.Verdict.
type Verdict = vm.Verdict

// Admission verdicts, re-exported for callers of Submit.
const (
	// Admitted means the job is predicted to start promptly.
	Admitted = vm.VerdictAdmitted
	// Delayed means the job was accepted but will queue first.
	Delayed = vm.VerdictDelayed
	// Shed means the job was refused at admission and never runs.
	Shed = vm.VerdictShed
)

// ErrDeadlock is the machine-level failure Wait and Drain wrap when
// live threads remain but none is runnable; match it with errors.Is
// to distinguish a dead machine from a per-job trap.
var ErrDeadlock = vm.ErrDeadlock

// JobRequest describes one submission to a booted System.
type JobRequest struct {
	// Class and Method name the static entry method.
	Class  string
	Method string
	// Name optionally labels the job in reports (default Class.Method).
	Name string
	// Args are optional int arguments passed to the entry method.
	Args []int32
	// Arrival is the simulated cycle the job's root thread becomes
	// runnable, floored at the machine's current clock; 0 means "now".
	Arrival cell.Clock
	// Deadline is the job's completion deadline in cycles relative to
	// its admission (0 = none). With deadline shedding configured
	// (Config.Admission.Shed), a job the scheduler's drain estimates
	// predict to miss it is shed at admission; either way the
	// completed job's Result reports DeadlineMet honestly.
	Deadline cell.Clock
	// Policy optionally overrides the system-wide placement policy for
	// every thread of this job.
	Policy vm.Policy
}

// Job is one submitted job: a handle carrying the submission, the
// running VM-side state and, once complete, the per-job Result.
type Job struct {
	sys   *System
	inner *vm.Job
	req   JobRequest
	res   *Result
	err   error
}

// Submit runs a job request through the admission pipeline of the
// booted VM and returns the job handle plus the admission verdict.
// An admitted (or delayed) job does not execute until the machine is
// driven (Job.Wait, System.Drain or System.RunUntil); submissions made
// before driving share the machine and are scheduled against each
// other, which is the point of the session. A shed job never runs:
// its Wait returns immediately with a Result whose Shed flag is set.
// The error return is for malformed requests only — shedding is a
// verdict, not an error.
func (s *System) Submit(req JobRequest) (*Job, Verdict, error) {
	args := make([]uint64, len(req.Args))
	for i, v := range req.Args {
		args[i] = uint64(uint32(v))
	}
	inner, err := s.VM.SubmitJob(vm.JobSpec{
		Name:     req.Name,
		Class:    req.Class,
		Method:   req.Method,
		Args:     args,
		ArgRefs:  make([]bool, len(args)),
		Arrival:  req.Arrival,
		Deadline: req.Deadline,
		Policy:   req.Policy,
	})
	if err != nil {
		return nil, Shed, err
	}
	j := &Job{sys: s, inner: inner, req: req}
	s.jobs = append(s.jobs, j)
	return j, inner.Verdict, nil
}

// Probe evaluates the admission pipeline's completion probe for a
// request without admitting anything: the predicted completion cycle
// of a job arriving at req.Arrival (floored at the machine clock),
// from the scheduler's drain estimates and the session's observed
// per-job service EWMA, plus whether the bounded pending queue has
// room for it. A cluster dispatcher probes every shard this way at an
// epoch barrier and routes the request to the lowest predicted
// completion. Probing is side-effect free.
func (s *System) Probe(req JobRequest) (completion cell.Clock, room bool, err error) {
	return s.VM.ProbeJob(vm.JobSpec{
		Class:   req.Class,
		Method:  req.Method,
		Arrival: req.Arrival,
		Policy:  req.Policy,
	})
}

// PendingJobs reports the admission queue depth: jobs admitted but not
// yet completed.
func (s *System) PendingJobs() int { return s.VM.PendingJobs() }

// LiveThreads reports the number of live threads on the machine — zero
// means the session is idle and driving it is a no-op.
func (s *System) LiveThreads() int { return s.VM.LiveThreads() }

// Jobs returns the session's submitted jobs in admission order.
func (s *System) Jobs() []*Job {
	out := make([]*Job, len(s.jobs))
	copy(out, s.jobs)
	return out
}

// Drain drives the machine until every submitted job has completed.
// Per-job traps stay on the jobs (Job.Wait and Job.Err report them);
// Drain returns only machine-level failures (ErrDeadlock).
func (s *System) Drain() error { return s.VM.DrainJobs() }

// RunUntil drives the machine until its clock reaches the given cycle
// or no runnable work remains — the open-loop serving primitive:
// advance to the next arrival, then Submit, so each admission verdict
// is decided against the machine state holding at that arrival. It
// returns only machine-level failures (ErrDeadlock).
func (s *System) RunUntil(c cell.Clock) error { return s.VM.RunUntil(c) }

// ID returns the job's admission sequence number.
func (j *Job) ID() int { return j.inner.ID }

// Name returns the job's report label.
func (j *Job) Name() string { return j.inner.Name }

// Request returns the submission that created the job.
func (j *Job) Request() JobRequest { return j.req }

// Verdict returns the admission pipeline's decision for the job.
func (j *Job) Verdict() Verdict { return j.inner.Verdict }

// Done reports whether the job has completed (without driving it).
// Shed jobs are done at admission.
func (j *Job) Done() bool { return j.inner.Done() }

// Err returns the job's first thread trap in creation order, or nil —
// without driving the machine. Use it to inspect a completed job's
// fate when Wait's combined (Result, error) return is awkward; a
// machine-level deadlock is NOT reported here (that is Wait's
// ErrDeadlock), so Err == nil on a done job means it ran to
// completion cleanly.
func (j *Job) Err() error { return j.inner.Err() }

// Wait drives the machine until the job completes and returns its
// Result. Other submitted jobs progress too — the machine is shared;
// Wait only decides when the driving loop hands back. A trap in any of
// the job's threads is returned as the error, alongside the Result —
// a trapped job still completed, and its output, cycles and counters
// remain meaningful. Only a machine-level failure returns a nil
// Result; match that error with errors.Is(err, ErrDeadlock). A shed
// job returns immediately: its Result carries the verdict (Shed set,
// no value, no cycles) and a nil error.
func (j *Job) Wait() (*Result, error) {
	if j.res != nil {
		return j.res, j.err
	}
	j.err = j.sys.VM.WaitJob(j.inner)
	if !j.inner.Done() {
		return nil, j.err // deadlocked machine: the job never finished
	}
	in := j.inner
	j.res = &Result{
		Cycles:      in.Cycles(),
		Millis:      float64(in.Cycles()) / (j.sys.VM.Cfg.Machine.EffectiveClockHz() / 1e3),
		Output:      in.Output(),
		AdmittedAt:  in.AdmittedAt,
		CompletedAt: in.CompletedAt,
		Deadline:    in.Deadline,
		DeadlineMet: in.DeadlineMet,
		Verdict:     in.Verdict,
		Shed:        in.Verdict == Shed,
		Migrations:  in.Stats.Migrations,
		Steals:      in.Stats.Steals,
		Compiles:    in.Stats.Compiles,
		GCPauses:    in.Stats.GCPauses,
		GCCycles:    in.Stats.GCCycles,

		KernelLaunches: in.Stats.KernelLaunches,
		KernelWorkers:  in.Stats.KernelWorkers,
		KernelDMABytes: in.Stats.KernelDMABytes,
	}
	if root := in.Root(); root != nil {
		j.res.Value = root.Result
		j.res.HasValue = root.HasResult
	}
	return j.res, j.err
}

// describe renders one job line for the machine report.
func (j *Job) describe() string {
	in := j.inner
	switch {
	case in.Verdict == Shed:
		return fmt.Sprintf("  job %-2d %-28s admitted=%-10d shed", in.ID, in.Name, in.AdmittedAt)
	case !in.Done():
		return fmt.Sprintf("  job %-2d %-28s admitted=%-10d running", in.ID, in.Name, in.AdmittedAt)
	}
	line := fmt.Sprintf("  job %-2d %-28s admitted=%-10d cycles=%-10d mig=%d steals=%d compiles=%d",
		in.ID, in.Name, in.AdmittedAt, in.Cycles(),
		in.Stats.Migrations, in.Stats.Steals, in.Stats.Compiles)
	if in.Stats.GCPauses > 0 {
		line += fmt.Sprintf(" gc=%d/%dcyc", in.Stats.GCPauses, in.Stats.GCCycles)
	}
	if in.Deadline != 0 {
		line += fmt.Sprintf(" deadline=%d met=%v", in.Deadline, in.DeadlineMet)
	}
	return line
}
