// Job-session API: a booted System accepts many asynchronous job
// submissions — each a named entry method with optional arguments, an
// arrival cycle and an optional placement-policy override — over one
// long-lived VM, the workload shape the paper's runtime system exists
// to serve. Submission is asynchronous in *simulated* time: Submit
// admits the job (creating its root thread, placed through the
// scheduler's drain-time estimate) without advancing the machine;
// Job.Wait and System.Drain drive it. Admission is totally ordered by
// (arrival cycle, submission sequence), and the machine's stepping is
// independent of where the driving loop pauses, so replaying the same
// submission script yields byte-identical results.

package core

import (
	"fmt"

	"herajvm/internal/cell"
	"herajvm/internal/vm"
)

// JobRequest describes one submission to a booted System.
type JobRequest struct {
	// Class and Method name the static entry method.
	Class  string
	Method string
	// Name optionally labels the job in reports (default Class.Method).
	Name string
	// Args are optional int arguments passed to the entry method.
	Args []int32
	// Arrival is the simulated cycle the job's root thread becomes
	// runnable, floored at the machine's current clock; 0 means "now".
	Arrival cell.Clock
	// Policy optionally overrides the system-wide placement policy for
	// every thread of this job.
	Policy vm.Policy
}

// Job is one submitted job: a handle carrying the submission, the
// running VM-side state and, once complete, the per-job Result.
type Job struct {
	sys   *System
	inner *vm.Job
	req   JobRequest
	res   *Result
	err   error
}

// Submit admits a job to the booted VM. The job does not execute until
// the machine is driven (Job.Wait or System.Drain); submissions made
// before driving share the machine and are scheduled against each
// other, which is the point of the session.
func (s *System) Submit(req JobRequest) (*Job, error) {
	args := make([]uint64, len(req.Args))
	for i, v := range req.Args {
		args[i] = uint64(uint32(v))
	}
	inner, err := s.VM.SubmitJob(req.Name, req.Class, req.Method, args, make([]bool, len(args)),
		req.Arrival, req.Policy)
	if err != nil {
		return nil, err
	}
	j := &Job{sys: s, inner: inner, req: req}
	s.jobs = append(s.jobs, j)
	return j, nil
}

// Jobs returns the session's submitted jobs in admission order.
func (s *System) Jobs() []*Job {
	out := make([]*Job, len(s.jobs))
	copy(out, s.jobs)
	return out
}

// Drain drives the machine until every submitted job has completed.
// Per-job traps stay on the jobs (Job.Wait reports them); Drain returns
// only machine-level failures (deadlock).
func (s *System) Drain() error { return s.VM.DrainJobs() }

// ID returns the job's admission sequence number.
func (j *Job) ID() int { return j.inner.ID }

// Name returns the job's report label.
func (j *Job) Name() string { return j.inner.Name }

// Request returns the submission that created the job.
func (j *Job) Request() JobRequest { return j.req }

// Done reports whether the job has completed (without driving it).
func (j *Job) Done() bool { return j.inner.Done() }

// Wait drives the machine until the job completes and returns its
// Result. Other submitted jobs progress too — the machine is shared;
// Wait only decides when the driving loop hands back. A trap in any of
// the job's threads is returned as the error, alongside the Result —
// a trapped job still completed, and its output, cycles and counters
// remain meaningful. Only a machine-level failure (deadlock) returns
// a nil Result.
func (j *Job) Wait() (*Result, error) {
	if j.res != nil {
		return j.res, j.err
	}
	j.err = j.sys.VM.WaitJob(j.inner)
	if !j.inner.Done() {
		return nil, j.err // deadlocked machine: the job never finished
	}
	in := j.inner
	j.res = &Result{
		Cycles:      in.Cycles(),
		Millis:      float64(in.Cycles()) / (j.sys.VM.Cfg.Machine.EffectiveClockHz() / 1e3),
		Value:       in.Root().Result,
		HasValue:    in.Root().HasResult,
		Output:      in.Output(),
		AdmittedAt:  in.AdmittedAt,
		CompletedAt: in.CompletedAt,
		Migrations:  in.Stats.Migrations,
		Steals:      in.Stats.Steals,
		Compiles:    in.Stats.Compiles,
	}
	return j.res, j.err
}

// describe renders one job line for the machine report.
func (j *Job) describe() string {
	in := j.inner
	if !in.Done() {
		return fmt.Sprintf("  job %-2d %-28s admitted=%-10d running", in.ID, in.Name, in.AdmittedAt)
	}
	return fmt.Sprintf("  job %-2d %-28s admitted=%-10d cycles=%-10d mig=%d steals=%d compiles=%d",
		in.ID, in.Name, in.AdmittedAt, in.Cycles(),
		in.Stats.Migrations, in.Stats.Steals, in.Stats.Compiles)
}
