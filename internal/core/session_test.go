package core

import (
	"fmt"
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// burstEntries is the interleaved compress/mandelbrot submission script
// the determinism contract is tested against.
func burstEntries() []workloads.MixEntry {
	var entries []workloads.MixEntry
	for i := 0; i < 3; i++ {
		entries = append(entries,
			workloads.MixEntry{Spec: workloads.Compress(), Threads: 2, Scale: 1},
			workloads.MixEntry{Spec: workloads.Mandelbrot(), Threads: 2, Scale: 1},
		)
	}
	return entries
}

// runBurst boots a fresh ppe:1,spe:4,vpu:2 machine under -sched
// migrate, submits the interleaved burst at a 250k-cycle cadence,
// drains it, and returns per-job (cycles, checksum, migrations,
// steals, compiles) plus the rendered machine report.
func runBurst(t *testing.T) ([]string, string) {
	t.Helper()
	entries := burstEntries()
	prog, err := workloads.BuildMix(entries)
	if err != nil {
		t.Fatal(err)
	}
	cfg := vm.DefaultConfig()
	cfg.Machine.Topology = cell.Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 4}, {Kind: isa.VPU, Count: 2},
	}
	cfg.Scheduler = "migrate"
	sys, err := NewSystem(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*Job, len(entries))
	for i, e := range entries {
		jobs[i], _, err = sys.Submit(JobRequest{
			Class:   e.MainClassOf(i),
			Method:  "main",
			Arrival: uint64(i) * 250_000,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		e := entries[i]
		if got := int32(uint32(res.Value)); got != e.Spec.Reference(e.Threads, e.Scale) {
			t.Errorf("job %d (%s) checksum = %d, want the reference", i, e.Spec.Name, got)
		}
		lines = append(lines, fmt.Sprintf("job %d: cycles=%d sum=%d mig=%d steals=%d compiles=%d",
			i, res.Cycles, int32(uint32(res.Value)), res.Migrations, res.Steals, res.Compiles))
	}
	return lines, sys.Report()
}

// TestSessionBurstDeterminism replays an interleaved burst of
// compress and mandelbrot jobs twice on ppe:1,spe:4,vpu:2 under the
// migrate scheduler: per-job cycle counts and the full machine report
// must be byte-identical — the session's determinism contract
// (admission ordered by arrival cycle and submission sequence; the
// machine's stepping independent of where the driving loop pauses).
func TestSessionBurstDeterminism(t *testing.T) {
	lines1, report1 := runBurst(t)
	lines2, report2 := runBurst(t)
	for i := range lines1 {
		if lines1[i] != lines2[i] {
			t.Errorf("per-job accounting diverged:\n  %s\n  %s", lines1[i], lines2[i])
		}
	}
	if report1 != report2 {
		t.Errorf("machine reports diverged:\n--- first ---\n%s\n--- second ---\n%s", report1, report2)
	}
}
