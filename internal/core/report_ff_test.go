package core

import (
	"regexp"
	"strings"
	"testing"

	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// TestReportFastForwardClause pins the per-core report line's
// fast-forward clause format: printed after migrations/steals, only when
// the core fast-forwarded at least one block.
func TestReportFastForwardClause(t *testing.T) {
	sys, err := NewSystem(testCfg(), buildProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("Main", "main"); err != nil {
		t.Fatal(err)
	}
	c0 := sys.VM.Machine.Cores()[0]
	c0.Stats.FastForwardedBlocks = 12
	c0.Stats.FastForwardedInstrs = 345
	rep := sys.Report()
	line := ""
	for _, l := range strings.Split(rep, "\n") {
		if strings.HasPrefix(l, "PPE") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no PPE line in report:\n%s", rep)
	}
	if !strings.Contains(line, " ff blocks/instrs=12/345") {
		t.Errorf("PPE line missing pinned ff clause: %q", line)
	}
	if !strings.Contains(line, "mig in/out=") ||
		strings.Index(line, "mig in/out=") > strings.Index(line, "ff blocks/instrs=") {
		t.Errorf("ff clause must follow the migration counters: %q", line)
	}

	// A core that never fast-forwarded must not print the clause.
	c0.Stats.FastForwardedBlocks = 0
	c0.Stats.FastForwardedInstrs = 0
	for _, l := range strings.Split(sys.Report(), "\n") {
		if strings.HasPrefix(l, "PPE") && strings.Contains(l, "ff blocks/instrs") {
			t.Errorf("ff clause printed with zero blocks: %q", l)
		}
	}
}

var ffClause = regexp.MustCompile(` ff blocks/instrs=\d+/\d+`)

// TestReportIdenticalDisableSuperblocks runs a real workload with the
// fast path on and off and requires the full machine reports to be
// byte-identical once the fast-forward clause (the only counter that
// records which path executed) is stripped.
func TestReportIdenticalDisableSuperblocks(t *testing.T) {
	run := func(disable bool) string {
		spec := workloads.All()[0] // compress
		prog, err := spec.Build(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := vm.DefaultConfig()
		cfg.Machine.MainMemory = 32 << 20
		cfg.HeapBytes = 8 << 20
		cfg.DisableSuperblocks = disable
		sys, err := NewSystem(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(spec.MainClass, "main"); err != nil {
			t.Fatal(err)
		}
		return sys.Report()
	}
	fast, slow := run(false), run(true)
	if !strings.Contains(fast, "ff blocks/instrs=") {
		t.Error("fast run's report shows no fast-forwarding")
	}
	if strings.Contains(slow, "ff blocks/instrs=") {
		t.Error("disabled run's report shows fast-forwarding")
	}
	if f, s := ffClause.ReplaceAllString(fast, ""), ffClause.ReplaceAllString(slow, ""); f != s {
		t.Errorf("reports diverge beyond the ff clause:\n--- fast ---\n%s\n--- slow ---\n%s", f, s)
	}
}
