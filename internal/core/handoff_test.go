package core

import (
	"context"
	"errors"
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// handoffConfig is the machine both ends of the hand-off tests boot:
// identical topology and scheduler, so only the hand-off itself can
// perturb the outcome.
func handoffConfig() vm.Config {
	cfg := vm.DefaultConfig()
	cfg.Machine.Topology = cell.PS3Topology(4)
	cfg.Scheduler = "migrate"
	return cfg
}

// TestHandoffDifferentialAcrossWorkloads is the property test over the
// real paper workloads: freeze each one mid-run on a source System,
// rehydrate the image on an identically configured fresh System, and
// require the checksum and output to match a never-frozen control run.
func TestHandoffDifferentialAcrossWorkloads(t *testing.T) {
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			entries := []workloads.MixEntry{{Spec: spec, Threads: 2, Scale: 1}}
			prog, err := workloads.BuildMix(entries)
			if err != nil {
				t.Fatal(err)
			}
			req := JobRequest{Class: entries[0].MainClassOf(0), Method: "main"}
			want := spec.Reference(2, 1)

			// Control: never frozen.
			control, err := NewSystem(handoffConfig(), prog)
			if err != nil {
				t.Fatal(err)
			}
			cj, _, err := control.Submit(req)
			if err != nil {
				t.Fatal(err)
			}
			cres, err := cj.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if got := int32(uint32(cres.Value)); got != want {
				t.Fatalf("control checksum = %d, want %d", got, want)
			}

			// Freeze mid-run at the first cycle the job hasn't beaten.
			var img *vm.JobImage
			var srcJob *Job
			for _, cycle := range []cell.Clock{cres.CompletedAt / 2, cres.CompletedAt / 4, 10_000, 0} {
				src, err := NewSystem(handoffConfig(), prog)
				if err != nil {
					t.Fatal(err)
				}
				j, _, err := src.Submit(req)
				if err != nil {
					t.Fatal(err)
				}
				if err := src.RunUntil(cycle); err != nil {
					t.Fatal(err)
				}
				img, err = src.Freeze(context.Background(), j)
				if errors.Is(err, ErrJobDone) {
					continue
				}
				if err != nil {
					t.Fatalf("freeze at %d: %v", cycle, err)
				}
				srcJob = j
				if _, err := j.Wait(); !errors.Is(err, ErrFrozen) {
					t.Fatalf("Wait on frozen job = %v, want ErrFrozen", err)
				}
				if err := src.Drain(); err != nil {
					t.Fatalf("source drain after freeze: %v", err)
				}
				break
			}
			if img == nil {
				t.Fatal("every freeze point landed after job completion")
			}

			dst, err := NewSystem(handoffConfig(), prog)
			if err != nil {
				t.Fatal(err)
			}
			dj, err := dst.Rehydrate(img, 0, srcJob.Request())
			if err != nil {
				t.Fatalf("rehydrate: %v", err)
			}
			res, err := dj.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if got := int32(uint32(res.Value)); got != want {
				t.Errorf("checksum after hand-off = %d, want %d", got, want)
			}
			if res.Output != cres.Output {
				t.Errorf("output after hand-off = %q, want %q", res.Output, cres.Output)
			}
			if res.AdmittedAt != cres.AdmittedAt {
				t.Errorf("admission cycle changed across hand-off: %d vs %d",
					res.AdmittedAt, cres.AdmittedAt)
			}
		})
	}
}

// TestFreezeCancelledSystemDrains is the Drain-path regression: a
// cancelled freeze leaves the job runnable, and a System whose job was
// frozen away still drains cleanly (the frozen job is excluded from
// the pending count rather than wedging Drain forever).
func TestFreezeCancelledSystemDrains(t *testing.T) {
	spec := workloads.Compress()
	entries := []workloads.MixEntry{{Spec: spec, Threads: 2, Scale: 1}}
	prog, err := workloads.BuildMix(entries)
	if err != nil {
		t.Fatal(err)
	}
	req := JobRequest{Class: entries[0].MainClassOf(0), Method: "main"}

	sys, err := NewSystem(handoffConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := sys.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunUntil(10_000); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Freeze(ctx, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("freeze under cancelled ctx = %v, want context.Canceled", err)
	}
	if err := sys.Drain(); err != nil {
		t.Fatalf("drain after aborted freeze: %v", err)
	}
	res, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := int32(uint32(res.Value)); got != spec.Reference(2, 1) {
		t.Errorf("checksum after aborted freeze = %d, want %d", got, spec.Reference(2, 1))
	}
}
