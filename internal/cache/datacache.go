// Package cache implements the software caches that Hera-JVM layers
// over a core's scratchpad local store: the data cache for objects and
// array blocks (§3.2.1 of the paper) and the code cache with its class
// table-of-contents (TOC) and per-class type information blocks (TIBs)
// (§3.2.2). The caches serve any registered core kind whose spec
// declares a local store — the Cell's SPEs and the GPU-like VPU alike.
package cache

import (
	"encoding/binary"
	"fmt"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/mem"
)

// DataCacheConfig calibrates the software data cache.
type DataCacheConfig struct {
	// Size is the local-store region dedicated to cached data. The
	// paper's Figure 6 sweeps this from 104 KB downwards.
	Size uint32
	// ArrayBlock is the block size used when caching array elements:
	// "a block of up to 1KB of neighbouring elements is also
	// transferred" (§3.2.1).
	ArrayBlock uint32
	// MaxEntries bounds the local-memory-resident lookup hashtable; the
	// cache flushes when the table fills even if bytes remain.
	MaxEntries int
	// ProbeCycles is the cost of hashing an address and probing the
	// lookup table (both in local store: "3-6 cycles" latency, §3.2.2).
	ProbeCycles uint32
	// InsertCycles is the bookkeeping cost of installing a new entry.
	InsertCycles uint32
	// AccessCycles is a local-store data access once an entry is cached.
	AccessCycles uint32
	// MaxEntryBytes caps a single cached unit; larger objects degrade to
	// window caching so one huge object cannot monopolise the cache.
	MaxEntryBytes uint32
}

// DefaultDataCacheConfig returns the paper's default: 104 KB of data
// cache with 1 KB array blocks.
func DefaultDataCacheConfig() DataCacheConfig {
	return DataCacheConfig{
		Size:          104 << 10,
		ArrayBlock:    1 << 10,
		MaxEntries:    4096,
		ProbeCycles:   6,
		InsertCycles:  40, // miss handler: eviction check, allocation, DMA issue
		AccessCycles:  4,
		MaxEntryBytes: 8 << 10,
	}
}

type dcEntry struct {
	mainAddr mem.Addr
	lsAddr   uint32
	size     uint32
	dirty    bool
}

// tabSlot is one open-addressing slot of the lookup table. gen stamps
// which flush generation wrote the slot, so invalidating the whole
// cache is a generation bump instead of a table clear; idx is the slab
// index of the entry, or -1 for a tombstone left by a retired entry.
type tabSlot struct {
	gen uint32
	idx int32
}

// DataCache is one local-store core's software object/array cache.
// Cached bytes live
// in the core's real local store; main memory remains the backing truth
// only after a flush, which is exactly the (lack of) coherence the paper
// describes and the Java Memory Model hooks rely on.
//
// The lookup structure is a host-side implementation detail tuned for
// the simulator's hot path (every SPE memory instruction probes it):
// entries live in an append-only slab reused across flushes, and an
// open-addressed, generation-stamped table maps main-memory addresses to
// slab indices. Simulated behaviour — probe/insert cycle charges, hit
// and miss counts, write-back order — is identical to a map-based
// implementation; only host time differs.
type DataCache struct {
	cfg  DataCacheConfig
	core *cell.Core
	base uint32 // region origin within the local store
	bump uint32

	slab  []dcEntry // entries of the current generation, in insertion order
	order []int32   // live slab indices, insertion order, for write-back
	live  int       // live entries (len(order))
	tab   []tabSlot // open-addressed addr -> slab index
	mask  uint32    // len(tab)-1; len(tab) is a power of two
	gen   uint32    // current flush generation
}

// dcLookup returns the slab index of addr's live entry, or -1.
func (d *DataCache) dcLookup(addr mem.Addr) int32 {
	i := (addr * 2654435761) & d.mask // Fibonacci hashing; deterministic
	for {
		s := d.tab[i]
		if s.gen != d.gen || s.idx == 0 {
			return -1
		}
		if s.idx > 0 && d.slab[s.idx-1].mainAddr == addr {
			return s.idx - 1
		}
		i = (i + 1) & d.mask // tombstone or collision: keep probing
	}
}

// dcInsert installs a slab index for addr, reusing tombstones.
func (d *DataCache) dcInsert(addr mem.Addr, idx int32) {
	i := (addr * 2654435761) & d.mask
	for {
		s := d.tab[i]
		if s.gen != d.gen || s.idx <= 0 {
			d.tab[i] = tabSlot{gen: d.gen, idx: idx + 1}
			return
		}
		i = (i + 1) & d.mask
	}
}

// dcDelete tombstones addr's slot (the entry stays in the slab so the
// write-back order of surviving entries is untouched).
func (d *DataCache) dcDelete(addr mem.Addr) {
	i := (addr * 2654435761) & d.mask
	for {
		s := d.tab[i]
		if s.gen != d.gen || s.idx == 0 {
			return
		}
		if s.idx > 0 && d.slab[s.idx-1].mainAddr == addr {
			d.tab[i] = tabSlot{gen: d.gen, idx: -1}
			return
		}
		i = (i + 1) & d.mask
	}
}

// NewDataCache builds a data cache over core's local store, occupying
// [base, base+cfg.Size).
func NewDataCache(cfg DataCacheConfig, core *cell.Core, base uint32) *DataCache {
	if !core.Kind.UsesLocalStore() {
		panic("cache: data cache requires a local-store core")
	}
	if uint64(base)+uint64(cfg.Size) > uint64(len(core.LS)) {
		panic(fmt.Sprintf("cache: data cache [%#x,%#x) exceeds local store %#x",
			base, base+cfg.Size, len(core.LS)))
	}
	if cfg.ArrayBlock == 0 || cfg.ArrayBlock&(cfg.ArrayBlock-1) != 0 {
		panic("cache: array block size must be a power of two")
	}
	// The table must comfortably hold a whole generation's inserts:
	// allocations are 16-byte aligned, so a generation sees at most
	// Size/16 of them (plus the MaxEntries flush bound), and every
	// insert occupies at most one new slot.
	want := 2 * (cfg.MaxEntries + int(cfg.Size/16) + 1)
	tabSize := 64
	for tabSize < want {
		tabSize *= 2
	}
	return &DataCache{
		cfg:  cfg,
		core: core,
		base: base,
		tab:  make([]tabSlot, tabSize),
		mask: uint32(tabSize - 1),
		gen:  1,
	}
}

// Config returns the cache's configuration.
func (d *DataCache) Config() DataCacheConfig { return d.cfg }

// Residency classes partition a cache's occupancy into coarse states
// that executor-level memoization may key on: the executor's superblock
// fast path asks which class a core's data cache is in before replaying
// a memoized block, so a block whose cost depends on residency can be
// cached per class. The query must be O(1) and deterministic — it sits
// on the per-block hot path.
const (
	// ResidencyCold: the cache holds no entries (first touch misses).
	ResidencyCold uint8 = iota
	// ResidencyWarm: entries are live and at most half the capacity is
	// allocated (inserts proceed without eviction pressure).
	ResidencyWarm
	// ResidencyPressure: more than half the capacity is allocated
	// (flush-on-fill is near).
	ResidencyPressure

	// NumResidencyClasses is the number of residency classes.
	NumResidencyClasses = int(ResidencyPressure) + 1
)

// ResidencyClass returns the cache's current residency class. O(1).
func (d *DataCache) ResidencyClass() uint8 {
	switch {
	case d.live == 0:
		return ResidencyCold
	case d.bump <= d.cfg.Size/2:
		return ResidencyWarm
	default:
		return ResidencyPressure
	}
}

// Entries returns the number of live cache entries (for tests/reports).
func (d *DataCache) Entries() int { return d.live }

// UsedBytes returns the bump-allocated bytes.
func (d *DataCache) UsedBytes() uint32 { return d.bump }

// ensure returns the local-store address of the cached copy of
// [mainAddr, mainAddr+size) and its slab index, transferring it in on a
// miss. It advances and returns the core clock. The index lets write
// paths mark the entry dirty without a second lookup; it is only valid
// until the next ensure (a flush retires the slab generation).
func (d *DataCache) ensure(now cell.Clock, mainAddr mem.Addr, size uint32) (uint32, int32, cell.Clock) {
	d.core.Stats.Charge(isa.ClassLocalMem, uint64(d.cfg.ProbeCycles))
	now += cell.Clock(d.cfg.ProbeCycles)

	if idx := d.dcLookup(mainAddr); idx >= 0 {
		e := &d.slab[idx]
		if e.size >= size {
			d.core.Stats.DataHits++
			return e.lsAddr, idx, now
		}
		// A smaller unit is cached at this address (e.g. a header window
		// before the whole object was requested): retire it, writing back
		// dirty bytes so the fresh fill cannot lose them.
		if e.dirty {
			done := d.core.MFC.DMA(now, cell.DMAPut, e.mainAddr, e.lsAddr, e.size)
			d.core.Stats.DataWriteBacks++
			d.core.Stats.Charge(isa.ClassMainMem, done-now)
			now = done
		}
		d.dcDelete(mainAddr)
		d.live--
		for i, o := range d.order {
			if o == idx {
				d.order = append(d.order[:i], d.order[i+1:]...)
				break
			}
		}
	}
	d.core.Stats.DataMisses++

	// Allocate space; flush-and-retry when the cache or its table fills:
	// "a simple bump-pointer scheme ... with the cache simply being
	// flushed if it is filled" (§3.2.1).
	if size > d.cfg.Size {
		panic(fmt.Sprintf("cache: unit of %d bytes exceeds data cache of %d", size, d.cfg.Size))
	}
	if d.bump+size > d.cfg.Size || d.live >= d.cfg.MaxEntries {
		now = d.flushAll(now, true)
		d.core.Stats.DataFlushes++
	}
	lsAddr := d.base + d.bump
	d.bump += (size + 15) &^ 15 // quadword-aligned allocation

	d.core.Stats.Charge(isa.ClassLocalMem, uint64(d.cfg.InsertCycles))
	now += cell.Clock(d.cfg.InsertCycles)

	done := d.core.MFC.DMA(now, cell.DMAGet, mainAddr, lsAddr, size)
	d.core.Stats.DMATransfers++
	d.core.Stats.DMABytes += uint64(size)
	d.core.Stats.DMAWait += done - now
	d.core.Stats.Charge(isa.ClassMainMem, done-now)
	now = done

	idx := int32(len(d.slab))
	d.slab = append(d.slab, dcEntry{mainAddr: mainAddr, lsAddr: lsAddr, size: size})
	d.dcInsert(mainAddr, idx)
	d.live++
	d.order = append(d.order, idx)
	return lsAddr, idx, now
}

// clip returns the cached unit covering an access of width bytes at
// offset off within the backing unit [unitAddr, unitAddr+unitSize).
// Units at most MaxEntryBytes are cached whole (whole-object caching);
// larger ones are cached as aligned array blocks (up to ArrayBlock
// bytes), the paper's array strategy.
func (d *DataCache) clip(unitAddr mem.Addr, unitSize, off, width uint32, block bool) (mem.Addr, uint32, uint32) {
	if !block && unitSize <= d.cfg.MaxEntryBytes {
		return unitAddr, unitSize, off
	}
	blk := d.cfg.ArrayBlock
	start := off &^ (blk - 1)
	end := start + blk
	if end > unitSize {
		end = unitSize
	}
	// A single element never straddles blocks for power-of-two widths,
	// but clamp defensively for odd layouts.
	if off+width > end {
		end = off + width
	}
	return unitAddr + start, end - start, off - start
}

// ReadObject reads width bytes at byte offset off inside the object
// whose header starts at objAddr and occupies objSize bytes, caching the
// whole object on first touch (§3.2.1's getfield behaviour).
func (d *DataCache) ReadObject(now cell.Clock, objAddr mem.Addr, objSize, off, width uint32) (uint64, cell.Clock) {
	addr, size, rel := d.clip(objAddr, objSize, off, width, false)
	ls, _, now := d.ensure(now, addr, size)
	d.core.Stats.Charge(isa.ClassLocalMem, uint64(d.cfg.AccessCycles))
	now += cell.Clock(d.cfg.AccessCycles)
	return readLS(d.core.LS, ls+rel, width), now
}

// WriteObject writes width bytes at offset off inside the object,
// caching it first and marking the entry dirty for write-back.
func (d *DataCache) WriteObject(now cell.Clock, objAddr mem.Addr, objSize, off, width uint32, val uint64) cell.Clock {
	addr, size, rel := d.clip(objAddr, objSize, off, width, false)
	ls, idx, now := d.ensure(now, addr, size)
	d.core.Stats.Charge(isa.ClassLocalMem, uint64(d.cfg.AccessCycles))
	now += cell.Clock(d.cfg.AccessCycles)
	writeLS(d.core.LS, ls+rel, width, val)
	d.slab[idx].dirty = true
	return now
}

// ReadArray reads an element of width bytes at offset off within an
// array's data section [dataAddr, dataAddr+dataSize), caching the
// surrounding block of up to ArrayBlock bytes.
func (d *DataCache) ReadArray(now cell.Clock, dataAddr mem.Addr, dataSize, off, width uint32) (uint64, cell.Clock) {
	addr, size, rel := d.clip(dataAddr, dataSize, off, width, true)
	ls, _, now := d.ensure(now, addr, size)
	d.core.Stats.Charge(isa.ClassLocalMem, uint64(d.cfg.AccessCycles))
	now += cell.Clock(d.cfg.AccessCycles)
	return readLS(d.core.LS, ls+rel, width), now
}

// WriteArray writes an array element through the cache, marking the
// block dirty.
func (d *DataCache) WriteArray(now cell.Clock, dataAddr mem.Addr, dataSize, off, width uint32, val uint64) cell.Clock {
	addr, size, rel := d.clip(dataAddr, dataSize, off, width, true)
	ls, idx, now := d.ensure(now, addr, size)
	d.core.Stats.Charge(isa.ClassLocalMem, uint64(d.cfg.AccessCycles))
	now += cell.Clock(d.cfg.AccessCycles)
	writeLS(d.core.LS, ls+rel, width, val)
	d.slab[idx].dirty = true
	return now
}

// StageArray prefetches an array data section [dataAddr,
// dataAddr+dataSize) into the cache as the same ArrayBlock-aligned
// tiles a demand miss would fill, up to maxBytes of newly staged data
// — the double-buffered DMA staging a kernel worker performs before
// computing its chunk. The timing models a double buffer: the worker
// blocks for the first missing tile's full DMA round trip (nothing to
// overlap it with), and every later tile is prefetched while the
// previous one computes, so the worker's clock advances only by the
// probe/insert bookkeeping while the payload still occupies the EIB at
// issue time (concurrent workers contend for the bus for real, and
// every staged byte is billed to DMATransfers/DMABytes/DataStaged).
// Staging never evicts: it stops before the cache or its lookup table
// would flush, leaving the rest to ordinary demand misses. It returns
// the advanced clock and the bytes staged.
func (d *DataCache) StageArray(now cell.Clock, dataAddr mem.Addr, dataSize, maxBytes uint32) (cell.Clock, uint32) {
	blk := d.cfg.ArrayBlock
	var staged uint32
	first := true
	for start := uint32(0); start < dataSize; start += blk {
		size := blk
		if dataSize-start < size {
			size = dataSize - start
		}
		if staged+size > maxBytes {
			break
		}
		d.core.Stats.Charge(isa.ClassLocalMem, uint64(d.cfg.ProbeCycles))
		now += cell.Clock(d.cfg.ProbeCycles)
		if d.dcLookup(dataAddr+start) >= 0 {
			continue // already resident (e.g. staged for a previous launch)
		}
		if d.bump+size > d.cfg.Size || d.live >= d.cfg.MaxEntries {
			break // never flush on a prefetch path
		}
		lsAddr := d.base + d.bump
		d.bump += (size + 15) &^ 15
		d.core.Stats.Charge(isa.ClassLocalMem, uint64(d.cfg.InsertCycles))
		now += cell.Clock(d.cfg.InsertCycles)

		done := d.core.MFC.DMA(now, cell.DMAGet, dataAddr+start, lsAddr, size)
		d.core.Stats.DMATransfers++
		d.core.Stats.DMABytes += uint64(size)
		d.core.Stats.DataStaged += uint64(size)
		if first {
			// The leading tile is the synchronous fill of the double
			// buffer; the worker stalls until it lands.
			d.core.Stats.DMAWait += done - now
			d.core.Stats.Charge(isa.ClassMainMem, done-now)
			now = done
			first = false
		}

		idx := int32(len(d.slab))
		d.slab = append(d.slab, dcEntry{mainAddr: dataAddr + start, lsAddr: lsAddr, size: size})
		d.dcInsert(dataAddr+start, idx)
		d.live++
		d.order = append(d.order, idx)
		staged += size
	}
	return now, staged
}

// flushAll writes back every dirty entry (in insertion order, which the
// order slice preserves across retirements) and, when invalidate is set,
// drops all entries and resets the bump pointer. Invalidation bumps the
// table generation instead of clearing the table, so a flush costs the
// write-backs alone.
func (d *DataCache) flushAll(now cell.Clock, invalidate bool) cell.Clock {
	for _, idx := range d.order {
		e := &d.slab[idx]
		if !e.dirty {
			continue
		}
		done := d.core.MFC.DMA(now, cell.DMAPut, e.mainAddr, e.lsAddr, e.size)
		d.core.Stats.DMATransfers++
		d.core.Stats.DMABytes += uint64(e.size)
		d.core.Stats.DMAWait += done - now
		d.core.Stats.Charge(isa.ClassMainMem, done-now)
		d.core.Stats.DataWriteBacks++
		now = done
		e.dirty = false
	}
	if invalidate {
		d.slab = d.slab[:0]
		d.order = d.order[:0]
		d.live = 0
		d.bump = 0
		d.gen++
		if d.gen == 0 { // generation wrapped: stale stamps could alias
			for i := range d.tab {
				d.tab[i] = tabSlot{}
			}
			d.gen = 1
		}
	}
	return now
}

// Flush writes back all dirty entries but keeps them cached. Hera-JVM
// performs this before an unlock or volatile write so other cores
// observe this thread's writes (release semantics, §3.2.1).
func (d *DataCache) Flush(now cell.Clock) cell.Clock {
	return d.flushAll(now, false)
}

// Purge writes back dirty data and invalidates the whole cache.
// Hera-JVM performs this before a lock acquire or volatile read so this
// core observes other cores' writes (acquire semantics, §3.2.1). Dirty
// data is written back first: purging at a nested acquire must not lose
// this thread's own unsynchronised writes.
func (d *DataCache) Purge(now cell.Clock) cell.Clock {
	d.core.Stats.DataPurges++
	return d.flushAll(now, true)
}

func readLS(ls []byte, addr, width uint32) uint64 {
	switch width {
	case 1:
		return uint64(ls[addr])
	case 2:
		return uint64(binary.LittleEndian.Uint16(ls[addr:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(ls[addr:]))
	case 8:
		return binary.LittleEndian.Uint64(ls[addr:])
	default:
		panic(fmt.Sprintf("cache: bad access width %d", width))
	}
}

func writeLS(ls []byte, addr, width uint32, v uint64) {
	switch width {
	case 1:
		ls[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(ls[addr:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(ls[addr:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(ls[addr:], v)
	default:
		panic(fmt.Sprintf("cache: bad access width %d", width))
	}
}
