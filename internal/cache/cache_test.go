package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/mem"
)

func newSPE(t testing.TB) (*cell.Machine, *cell.Core) {
	t.Helper()
	cfg := cell.DefaultConfig()
	cfg.Topology = cell.PS3Topology(2)
	cfg.MainMemory = 1 << 20 // tests touch low addresses only; keep allocation cheap
	m, err := cell.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, m.CoresOf(isa.SPE)[0]
}

func newDC(t testing.TB, size uint32) (*cell.Machine, *DataCache) {
	m, core := newSPE(t)
	cfg := DefaultDataCacheConfig()
	if size != 0 {
		cfg.Size = size
	}
	return m, NewDataCache(cfg, core, 0)
}

func TestDataCacheObjectRoundTrip(t *testing.T) {
	m, dc := newDC(t, 0)
	obj := mem.Addr(0x8000)
	objSize := uint32(64)
	m.Mem.Write32(obj+16, 0xcafe)

	v, now := dc.ReadObject(0, obj, objSize, 16, 4)
	if v != 0xcafe {
		t.Errorf("first read: got %#x", v)
	}
	if now == 0 {
		t.Error("miss should cost cycles")
	}
	if dc.core.Stats.DataMisses != 1 {
		t.Errorf("misses: %d", dc.core.Stats.DataMisses)
	}

	// Second read of another field in the same object: whole-object
	// caching means it must hit.
	m.Mem.Write32(obj+24, 0xbeef) // written behind the cache's back...
	v2, now2 := dc.ReadObject(now, obj, objSize, 24, 4)
	if dc.core.Stats.DataHits != 1 {
		t.Errorf("hits: %d", dc.core.Stats.DataHits)
	}
	if v2 == 0xbeef {
		t.Error("cache must return the cached copy, not fresh main memory (no coherence)")
	}
	if now2-now > 20 {
		t.Errorf("hit cost %d cycles: too expensive", now2-now)
	}
}

func TestDataCacheWriteBackOnFlush(t *testing.T) {
	m, dc := newDC(t, 0)
	obj := mem.Addr(0x8000)
	now := dc.WriteObject(0, obj, 64, 16, 4, 0x1234)
	if m.Mem.Read32(obj+16) == 0x1234 {
		t.Error("write must not reach main memory before flush")
	}
	dc.Flush(now)
	if m.Mem.Read32(obj+16) != 0x1234 {
		t.Error("flush must write dirty data back")
	}
	if dc.core.Stats.DataWriteBacks != 1 {
		t.Errorf("write-backs: %d", dc.core.Stats.DataWriteBacks)
	}
	// After flush the entry stays cached.
	_, _ = dc.ReadObject(now, obj, 64, 16, 4)
	if dc.core.Stats.DataHits == 0 {
		t.Error("flush must keep entries resident")
	}
}

func TestDataCachePurgeInvalidatesButKeepsWrites(t *testing.T) {
	m, dc := newDC(t, 0)
	obj := mem.Addr(0x9000)
	now := dc.WriteObject(0, obj, 32, 16, 8, 0xfeedface)
	now = dc.Purge(now)
	if dc.Entries() != 0 {
		t.Error("purge must drop all entries")
	}
	// The thread's own write must have survived via write-back.
	if m.Mem.Read64(obj+16) != 0xfeedface {
		t.Error("purge lost a dirty write")
	}
	// And a subsequent read must fetch fresh data (acquire semantics).
	m.Mem.Write64(obj+16, 0x5555)
	v, _ := dc.ReadObject(now, obj, 32, 16, 8)
	if v != 0x5555 {
		t.Errorf("post-purge read got stale %#x", v)
	}
}

func TestDataCacheArrayBlocking(t *testing.T) {
	m, dc := newDC(t, 0)
	data := mem.Addr(0x10000)
	dataSize := uint32(64 << 10) // 64 KB of array data
	for i := uint32(0); i < 2048; i += 4 {
		m.Mem.Write32(data+i, i)
	}
	// First element access: caches a 1 KB block.
	v, now := dc.ReadArray(0, data, dataSize, 0, 4)
	if v != 0 {
		t.Errorf("elem 0: %d", v)
	}
	misses := dc.core.Stats.DataMisses
	// Neighbouring elements within the block: all hits.
	for off := uint32(4); off < 1024; off += 4 {
		v, now = dc.ReadArray(now, data, dataSize, off, 4)
		if uint32(v) != off {
			t.Fatalf("elem at %d: got %d", off, v)
		}
	}
	if dc.core.Stats.DataMisses != misses {
		t.Error("accesses within a cached block must hit")
	}
	// Next block: one more miss.
	_, _ = dc.ReadArray(now, data, dataSize, 1024, 4)
	if dc.core.Stats.DataMisses != misses+1 {
		t.Error("crossing a block boundary should miss once")
	}
}

func TestDataCacheFlushWhenFull(t *testing.T) {
	_, dc := newDC(t, 8<<10) // 8 KB cache
	now := cell.Clock(0)
	// Touch 32 distinct 1 KB-block arrays: must trigger whole-cache flushes.
	for i := 0; i < 32; i++ {
		addr := mem.Addr(0x20000 + i*0x1000)
		_, now = dc.ReadArray(now, addr, 4096, 0, 4)
	}
	if dc.core.Stats.DataFlushes == 0 {
		t.Error("filling the cache must flush it")
	}
	if dc.UsedBytes() > 8<<10 {
		t.Errorf("bump pointer overran the region: %d", dc.UsedBytes())
	}
}

func TestDataCacheMissesCostMoreThanHits(t *testing.T) {
	_, dc := newDC(t, 0)
	obj := mem.Addr(0x8000)
	_, afterMiss := dc.ReadObject(0, obj, 256, 16, 4)
	before := afterMiss
	_, afterHit := dc.ReadObject(before, obj, 256, 20, 4)
	missCost := afterMiss
	hitCost := afterHit - before
	if hitCost*5 > missCost {
		t.Errorf("miss (%d cycles) should dwarf hit (%d cycles)", missCost, hitCost)
	}
}

// Property: any sequence of cached writes followed by a flush leaves main
// memory equal to what direct writes would have produced (the software
// cache is transparent for a single core once flushed).
func TestDataCacheTransparencyProperty(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		m, dc := newDC(t, 16<<10)
		rng := rand.New(rand.NewSource(seed))
		shadow := make(map[uint32]uint64)
		base := mem.Addr(0x40000)
		dataSize := uint32(32 << 10)
		now := cell.Clock(0)
		for _, op := range ops {
			off := (uint32(op) * 8) % (dataSize - 8)
			val := rng.Uint64()
			now = dc.WriteArray(now, base, dataSize, off, 8, val)
			shadow[off] = val
			// Occasionally read through the cache and compare with shadow.
			if op%7 == 0 {
				got, n2 := dc.ReadArray(now, base, dataSize, off, 8)
				now = n2
				if got != val {
					return false
				}
			}
		}
		dc.Flush(now)
		for off, val := range shadow {
			if m.Mem.Read64(base+off) != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCodeCacheHitAfterMiss(t *testing.T) {
	m, core := newSPE(t)
	_ = m
	cc := NewCodeCache(DefaultCodeCacheConfig(), core, 0)
	now, cached := cc.EnsureMethod(0, 1, 0x1000, 128, 7, 0x2000, 4096)
	if cached {
		t.Error("first ensure must miss")
	}
	if core.Stats.CodeMisses != 1 || core.Stats.TIBMisses != 1 {
		t.Errorf("miss counters: code=%d tib=%d", core.Stats.CodeMisses, core.Stats.TIBMisses)
	}
	before := now
	now, cached = cc.EnsureMethod(now, 1, 0x1000, 128, 7, 0x2000, 4096)
	if !cached {
		t.Error("second ensure must hit")
	}
	if now-before > 30 {
		t.Errorf("hit path cost %d cycles; the double dereference should be cheap", now-before)
	}
}

func TestCodeCachePurgeWhenFull(t *testing.T) {
	m, core := newSPE(t)
	_ = m
	cfg := DefaultCodeCacheConfig()
	cfg.Size = 16 << 10
	cc := NewCodeCache(cfg, core, 0)
	now := cell.Clock(0)
	for id := 0; id < 8; id++ {
		now, _ = cc.EnsureMethod(now, id, mem.Addr(0x1000+id*0x100), 64,
			100+id, mem.Addr(0x8000+id*0x1000), 4<<10)
	}
	if core.Stats.CodePurges == 0 {
		t.Error("filling the code cache must purge it")
	}
	// After purge, re-ensuring an early method misses again.
	misses := core.Stats.CodeMisses
	_, cached := cc.EnsureMethod(now, 0, 0x1000, 64, 100, 0x8000, 4<<10)
	if cached || core.Stats.CodeMisses != misses+1 {
		t.Error("purged method should miss on re-entry")
	}
}

func TestCodeCacheOversizedMethodStreams(t *testing.T) {
	m, core := newSPE(t)
	_ = m
	cfg := DefaultCodeCacheConfig()
	cfg.Size = 8 << 10
	cc := NewCodeCache(cfg, core, 0)
	// 32 KB method can never fit in an 8 KB cache: every call re-streams.
	_, cached := cc.EnsureMethod(0, 1, 0x1000, 64, 5, 0x8000, 32<<10)
	if cached {
		t.Error("oversized method must not report cached")
	}
	_, cached = cc.EnsureMethod(0, 1, 0x1000, 64, 5, 0x8000, 32<<10)
	if cached {
		t.Error("oversized method must keep missing")
	}
	if cc.CachedMethods() != 0 {
		t.Error("oversized method must not be recorded")
	}
}

func TestCodeCacheReenterChargesLookup(t *testing.T) {
	m, core := newSPE(t)
	_ = m
	cc := NewCodeCache(DefaultCodeCacheConfig(), core, 0)
	now, _ := cc.EnsureMethod(0, 1, 0x1000, 64, 5, 0x8000, 1024)
	before := now
	now = cc.Reenter(now, 1, 0x1000, 64, 5, 0x8000, 1024)
	if now == before {
		t.Error("Reenter must cost cycles")
	}
	if core.Stats.CodeHits == 0 {
		t.Error("Reenter of resident method should hit")
	}
}

func TestTIBSharedAcrossMethods(t *testing.T) {
	m, core := newSPE(t)
	_ = m
	cc := NewCodeCache(DefaultCodeCacheConfig(), core, 0)
	now, _ := cc.EnsureMethod(0, 1, 0x1000, 256, 5, 0x8000, 512)
	_, _ = cc.EnsureMethod(now, 1, 0x1000, 256, 6, 0x9000, 512)
	if core.Stats.TIBMisses != 1 {
		t.Errorf("TIB should be fetched once per class: %d misses", core.Stats.TIBMisses)
	}
	if core.Stats.TIBHits != 1 {
		t.Errorf("second method should hit the TIB: %d hits", core.Stats.TIBHits)
	}
}
