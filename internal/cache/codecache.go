package cache

import (
	"fmt"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/mem"
)

// CodeCacheConfig calibrates the SPE software code cache (§3.2.2).
type CodeCacheConfig struct {
	// Size is the local-store region holding cached method code and
	// TIBs. Figure 7 sweeps this from 88 KB downwards.
	Size uint32
	// TOCCycles is the cost of reading the resident class
	// table-of-contents entry (local store, "3-6 cycles").
	TOCCycles uint32
	// TIBCycles is the cost of the TIB method-entry read once cached.
	TIBCycles uint32
	// InsertCycles is bookkeeping when installing a TIB or method.
	InsertCycles uint32
	// ReturnCycles is the re-lookup performed when returning into a
	// caller ("this process is repeated on returning from a method").
	ReturnCycles uint32
}

// DefaultCodeCacheConfig returns the paper's default: 88 KB.
func DefaultCodeCacheConfig() CodeCacheConfig {
	return CodeCacheConfig{
		Size:         88 << 10,
		TOCCycles:    4,
		TIBCycles:    6,
		InsertCycles: 10,
		ReturnCycles: 8,
	}
}

type ccEntry struct {
	lsAddr uint32
	size   uint32
}

// CodeCache is one local-store core's software code cache. Method code
// and TIBs are
// cached whole with bump-pointer allocation; the cache is completely
// purged when full. Lookup follows the paper's Figure 3 path: the
// permanently resident 2 KB TOC maps a class ID to its TIB; the (cached)
// TIB maps a method to its code; both pointers live in low-latency local
// memory on the hit path.
type CodeCache struct {
	cfg  CodeCacheConfig
	core *cell.Core
	base uint32
	bump uint32

	tibs    map[int]ccEntry // class ID -> cached TIB
	methods map[int]ccEntry // method ID -> cached code
}

// NewCodeCache builds a code cache over core's local store at
// [base, base+cfg.Size).
func NewCodeCache(cfg CodeCacheConfig, core *cell.Core, base uint32) *CodeCache {
	if !core.Kind.UsesLocalStore() {
		panic("cache: code cache requires a local-store core")
	}
	if uint64(base)+uint64(cfg.Size) > uint64(len(core.LS)) {
		panic(fmt.Sprintf("cache: code cache [%#x,%#x) exceeds local store %#x",
			base, base+cfg.Size, len(core.LS)))
	}
	return &CodeCache{
		cfg:     cfg,
		core:    core,
		base:    base,
		tibs:    make(map[int]ccEntry),
		methods: make(map[int]ccEntry),
	}
}

// Config returns the cache configuration.
func (c *CodeCache) Config() CodeCacheConfig { return c.cfg }

// UsedBytes returns the bump-allocated bytes.
func (c *CodeCache) UsedBytes() uint32 { return c.bump }

// ResidencyClass returns the cache's residency class (see the data
// cache's Residency* constants). O(1).
func (c *CodeCache) ResidencyClass() uint8 {
	switch {
	case len(c.methods) == 0 && len(c.tibs) == 0:
		return ResidencyCold
	case c.bump <= c.cfg.Size/2:
		return ResidencyWarm
	default:
		return ResidencyPressure
	}
}

// CachedMethods returns how many methods are resident.
func (c *CodeCache) CachedMethods() int { return len(c.methods) }

// purge drops everything (code is never dirty, so nothing writes back).
func (c *CodeCache) purge() {
	c.tibs = make(map[int]ccEntry)
	c.methods = make(map[int]ccEntry)
	c.bump = 0
	c.core.Stats.CodePurges++
}

// alloc bump-allocates size bytes, purging the whole cache when full.
// The bool result is false when size can never fit (larger than the
// cache); callers then run the transfer uncached.
func (c *CodeCache) alloc(size uint32) (uint32, bool) {
	size = (size + 15) &^ 15
	if size > c.cfg.Size {
		return 0, false
	}
	if c.bump+size > c.cfg.Size {
		c.purge()
	}
	a := c.base + c.bump
	c.bump += size
	return a, true
}

// EnsureTIB makes the class's TIB resident and returns the advanced
// clock. tibAddr/tibSize locate the TIB in main memory.
func (c *CodeCache) EnsureTIB(now cell.Clock, classID int, tibAddr mem.Addr, tibSize uint32) cell.Clock {
	c.core.Stats.Charge(isa.ClassLocalMem, uint64(c.cfg.TOCCycles))
	now += cell.Clock(c.cfg.TOCCycles)
	if _, ok := c.tibs[classID]; ok {
		c.core.Stats.TIBHits++
		return now
	}
	c.core.Stats.TIBMisses++
	ls, fits := c.alloc(tibSize)
	if fits {
		c.tibs[classID] = ccEntry{lsAddr: ls, size: tibSize}
	}
	c.core.Stats.Charge(isa.ClassLocalMem, uint64(c.cfg.InsertCycles))
	now += cell.Clock(c.cfg.InsertCycles)
	return c.transfer(now, tibAddr, ls, tibSize, fits)
}

// transfer moves size bytes of metadata/code into the local store (or
// charges streaming cost for a unit too large to ever cache) and
// accounts the DMA.
func (c *CodeCache) transfer(now cell.Clock, from mem.Addr, ls, size uint32, fits bool) cell.Clock {
	var done cell.Clock
	if fits {
		done = c.core.MFC.DMA(now, cell.DMAGet, from, ls, size)
	} else {
		done = c.core.MFC.CostOnly(now, size)
	}
	c.core.Stats.DMATransfers++
	c.core.Stats.DMABytes += uint64(size)
	c.core.Stats.DMAWait += done - now
	c.core.Stats.Charge(isa.ClassMainMem, done-now)
	return done
}

// EnsureMethod makes a compiled method's code resident (after its TIB)
// and returns the advanced clock and whether the code was already
// cached. codeAddr/codeSize locate the compiled code in main memory.
func (c *CodeCache) EnsureMethod(now cell.Clock, classID int, tibAddr mem.Addr, tibSize uint32,
	methodID int, codeAddr mem.Addr, codeSize uint32) (cell.Clock, bool) {

	now = c.EnsureTIB(now, classID, tibAddr, tibSize)
	c.core.Stats.Charge(isa.ClassLocalMem, uint64(c.cfg.TIBCycles))
	now += cell.Clock(c.cfg.TIBCycles)

	if _, ok := c.methods[methodID]; ok {
		c.core.Stats.CodeHits++
		return now, true
	}
	c.core.Stats.CodeMisses++
	ls, fits := c.alloc(codeSize)
	if fits {
		c.methods[methodID] = ccEntry{lsAddr: ls, size: codeSize}
	}
	c.core.Stats.Charge(isa.ClassLocalMem, uint64(c.cfg.InsertCycles))
	now += cell.Clock(c.cfg.InsertCycles)
	return c.transfer(now, codeAddr, ls, codeSize, fits), false
}

// Reenter charges the lookup performed when a method returns into its
// caller, re-ensuring the caller's code (it may have been purged while
// the callee ran, §3.2.2).
func (c *CodeCache) Reenter(now cell.Clock, classID int, tibAddr mem.Addr, tibSize uint32,
	methodID int, codeAddr mem.Addr, codeSize uint32) cell.Clock {

	c.core.Stats.Charge(isa.ClassLocalMem, uint64(c.cfg.ReturnCycles))
	now += cell.Clock(c.cfg.ReturnCycles)
	now, _ = c.EnsureMethod(now, classID, tibAddr, tibSize, methodID, codeAddr, codeSize)
	return now
}
