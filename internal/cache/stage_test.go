package cache

import (
	"testing"

	"herajvm/internal/mem"
)

// TestStageArrayPrefetchesBlocks: staging fills the same
// ArrayBlock-aligned tiles a demand miss would, so subsequent array
// reads hit; the worker blocks only for the first tile while every
// staged byte is still billed to the DMA counters.
func TestStageArrayPrefetchesBlocks(t *testing.T) {
	m, dc := newDC(t, 0)
	data := mem.Addr(0x8000)
	size := uint32(4096) // four 1KB blocks
	for off := uint32(0); off < size; off += 4 {
		m.Mem.Write32(data+off, 0xa0000000|off)
	}

	now, staged := dc.StageArray(0, data, size, size)
	if staged != size {
		t.Fatalf("staged %d bytes, want %d", staged, size)
	}
	if dc.core.Stats.DataStaged != uint64(size) || dc.core.Stats.DMABytes != uint64(size) {
		t.Errorf("staged=%d dma=%d, want %d/%d",
			dc.core.Stats.DataStaged, dc.core.Stats.DMABytes, size, size)
	}
	if dc.core.Stats.DMATransfers != 4 {
		t.Errorf("transfers = %d, want 4", dc.core.Stats.DMATransfers)
	}
	if now == 0 {
		t.Error("staging must cost cycles")
	}

	// Every subsequent element access must hit.
	miss0 := dc.core.Stats.DataMisses
	for off := uint32(0); off < size; off += 512 {
		var v uint64
		v, now = dc.ReadArray(now, data, size, off, 4)
		if uint32(v) != 0xa0000000|off {
			t.Fatalf("read at %d = %#x", off, v)
		}
	}
	if dc.core.Stats.DataMisses != miss0 {
		t.Errorf("staged reads missed %d times", dc.core.Stats.DataMisses-miss0)
	}
}

// TestStageArrayDoubleBufferOverlap: only the leading tile's payload
// stalls the worker — later tiles cost bookkeeping alone.
func TestStageArrayDoubleBufferOverlap(t *testing.T) {
	_, one := newDC(t, 0)
	t1, _ := one.StageArray(0, 0x8000, 1024, 1<<20)

	_, four := newDC(t, 0)
	t4, _ := four.StageArray(0, 0x8000, 4096, 1<<20)

	perTile := uint64(one.cfg.ProbeCycles + one.cfg.InsertCycles)
	if uint64(t4) >= uint64(t1)+4*uint64(t1) {
		t.Fatalf("four tiles cost %d vs one tile %d: no overlap modelled", t4, t1)
	}
	if uint64(t4-t1) > 3*(perTile+50) {
		t.Errorf("trailing tiles cost %d cycles beyond the first, want issue overhead only", t4-t1)
	}
	if four.core.Stats.DMAWait >= 4*one.core.Stats.DMAWait {
		t.Errorf("DMAWait %d vs single-tile %d: trailing tiles must not stall",
			four.core.Stats.DMAWait, one.core.Stats.DMAWait)
	}
}

// TestStageArrayRespectsBudgetAndCapacity: staging stops at the byte
// budget and never triggers a flush.
func TestStageArrayRespectsBudgetAndCapacity(t *testing.T) {
	_, dc := newDC(t, 0)
	_, staged := dc.StageArray(0, 0x8000, 8192, 2048)
	if staged != 2048 {
		t.Fatalf("staged %d, want the 2048 budget", staged)
	}

	// A tiny cache: staging fills what fits and stops, no flushes.
	_, small := newDC(t, 2048)
	_, staged = small.StageArray(0, 0x8000, 8192, 8192)
	if staged == 0 || staged > 2048 {
		t.Fatalf("staged %d into a 2048-byte cache", staged)
	}
	if small.core.Stats.DataFlushes != 0 {
		t.Error("staging flushed the cache")
	}

	// Restaging the same extent is free of new transfers.
	before := dc.core.Stats.DMATransfers
	_, staged = dc.StageArray(0, 0x8000, 2048, 4096)
	if staged != 0 || dc.core.Stats.DMATransfers != before {
		t.Errorf("restage moved %d bytes, %d new transfers", staged, dc.core.Stats.DMATransfers-before)
	}
}
