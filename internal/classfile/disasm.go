package classfile

import (
	"fmt"
	"strings"
)

// Disassemble renders a method's bytecode as a javap-style listing,
// including the exception table. Branch targets are shown as @pc.
func (m *Method) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  locals=%d stack=%d", m.Sig(), m.MaxLocals, m.MaxStack)
	switch {
	case m.IsNative():
		fmt.Fprintf(&b, "  [native %s]\n", m.NativeTag)
		return b.String()
	case m.IsAbstract():
		fmt.Fprintf(&b, "  [abstract]\n")
		return b.String()
	}
	fmt.Fprintf(&b, "\n")
	for pc, bc := range m.Code {
		fmt.Fprintf(&b, "%4d: %s\n", pc, bc.describe())
	}
	if len(m.Handlers) > 0 {
		fmt.Fprintf(&b, "  exception table:\n")
		for _, h := range m.Handlers {
			typ := "any"
			if h.Type != nil {
				typ = h.Type.Name
			}
			fmt.Fprintf(&b, "    [%d,%d) -> @%d  %s\n", h.From, h.To, h.Target, typ)
		}
	}
	return b.String()
}

// describe formats one structured bytecode instruction.
func (bc *BC) describe() string {
	switch bc.Op {
	case BCConstI:
		return fmt.Sprintf("%-14s %d", bc.Op, bc.A)
	case BCConstL:
		return fmt.Sprintf("%-14s %d", bc.Op, int64(bc.W))
	case BCConstF, BCConstD:
		return fmt.Sprintf("%-14s %#x", bc.Op, bc.W)
	case BCConstStr:
		return fmt.Sprintf("%-14s %q", bc.Op, bc.S)
	case BCLoadI, BCLoadL, BCLoadF, BCLoadD, BCLoadRef,
		BCStoreI, BCStoreL, BCStoreF, BCStoreD, BCStoreRef:
		return fmt.Sprintf("%-14s %d", bc.Op, bc.A)
	case BCInc:
		return fmt.Sprintf("%-14s %d, %+d", bc.Op, bc.A, bc.B)
	case BCGetField, BCPutField, BCGetStatic, BCPutStatic:
		return fmt.Sprintf("%-14s %s", bc.Op, bc.F)
	case BCInvokeVirtual, BCInvokeSpecial, BCInvokeStatic, BCInvokeInterface:
		return fmt.Sprintf("%-14s %s", bc.Op, bc.M.Sig())
	case BCNew, BCANewArray, BCInstanceOf, BCCheckCast:
		return fmt.Sprintf("%-14s %s", bc.Op, bc.C.Name)
	case BCNewArray, BCALoad, BCAStore:
		return fmt.Sprintf("%-14s %s", bc.Op, bc.Kind)
	case BCTableSwitch:
		tg := make([]string, len(bc.Table))
		for i, l := range bc.Table {
			tg[i] = fmt.Sprintf("@%d", l.PC())
		}
		return fmt.Sprintf("%-14s low=%d [%s] default=@%d",
			bc.Op, bc.A, strings.Join(tg, " "), bc.Target.PC())
	case BCLookupSwitch:
		pairs := make([]string, len(bc.Keys))
		for i, k := range bc.Keys {
			pairs[i] = fmt.Sprintf("%d:@%d", k, bc.Table[i].PC())
		}
		return fmt.Sprintf("%-14s {%s} default=@%d",
			bc.Op, strings.Join(pairs, " "), bc.Target.PC())
	default:
		if bc.Target != nil {
			return fmt.Sprintf("%-14s @%d", bc.Op, bc.Target.PC())
		}
		return bc.Op.String()
	}
}
