package classfile

import "fmt"

// verify abstractly interprets a method body over the JVM computational
// types, checking that: every path keeps a consistent operand-stack
// shape, locals are read at the kind they were written, branch targets
// are in range, member references are non-nil, and control cannot fall
// off the end. It records the method's MaxStack as a side effect.
//
// This is a kind-level verifier (it does not track class hierarchies of
// references), which is the level the JIT and executor rely on.
func (p *Program) verify(m *Method) error {
	v := &verifier{m: m, in: make(map[int]*vstate)}
	return v.run()
}

type vstate struct {
	stack  []TypeKind
	locals []TypeKind
}

func (s *vstate) clone() *vstate {
	return &vstate{
		stack:  append([]TypeKind(nil), s.stack...),
		locals: append([]TypeKind(nil), s.locals...),
	}
}

type verifier struct {
	m        *Method
	in       map[int]*vstate
	worklist []int
	maxStack int
}

func (v *verifier) errf(pc int, format string, args ...any) error {
	return fmt.Errorf("verify %s: pc %d (%v): %s",
		v.m.Sig(), pc, v.m.Code[pc].Op, fmt.Sprintf(format, args...))
}

func (v *verifier) run() error {
	entry := &vstate{locals: make([]TypeKind, v.m.MaxLocals)}
	idx := 0
	if !v.m.IsStatic() {
		entry.locals[idx] = Ref
		idx++
	}
	for _, pk := range v.m.Params {
		entry.locals[idx] = pk
		idx++
	}
	if err := v.merge(0, entry); err != nil {
		return err
	}
	for len(v.worklist) > 0 {
		pc := v.worklist[len(v.worklist)-1]
		v.worklist = v.worklist[:len(v.worklist)-1]
		if err := v.step(pc); err != nil {
			return err
		}
	}
	v.m.MaxStack = v.maxStack
	return nil
}

// merge joins a state into the recorded in-state of pc, queueing pc when
// anything changed.
func (v *verifier) merge(pc int, s *vstate) error {
	if pc < 0 || pc >= len(v.m.Code) {
		return fmt.Errorf("verify %s: branch to pc %d outside [0,%d)", v.m.Sig(), pc, len(v.m.Code))
	}
	if len(s.stack) > v.maxStack {
		v.maxStack = len(s.stack)
	}
	old := v.in[pc]
	if old == nil {
		v.in[pc] = s.clone()
		v.worklist = append(v.worklist, pc)
		return nil
	}
	if len(old.stack) != len(s.stack) {
		return fmt.Errorf("verify %s: pc %d: stack depth mismatch %d vs %d",
			v.m.Sig(), pc, len(old.stack), len(s.stack))
	}
	for i := range old.stack {
		if old.stack[i] != s.stack[i] {
			return fmt.Errorf("verify %s: pc %d: stack slot %d kind mismatch %v vs %v",
				v.m.Sig(), pc, i, old.stack[i], s.stack[i])
		}
	}
	changed := false
	for i := range old.locals {
		if old.locals[i] != s.locals[i] && old.locals[i] != Void {
			old.locals[i] = Void // conflicting kinds: local unusable past join
			changed = true
		}
	}
	if changed {
		v.worklist = append(v.worklist, pc)
	}
	return nil
}

func (v *verifier) step(pc int) error {
	s := v.in[pc].clone()
	bc := v.m.Code[pc]

	// Any instruction inside a protected range can transfer to its
	// handler with the current locals and a stack of one reference.
	for _, h := range v.m.Handlers {
		if pc >= h.From && pc < h.To {
			hs := &vstate{stack: []TypeKind{Ref}, locals: append([]TypeKind(nil), s.locals...)}
			if err := v.merge(h.Target, hs); err != nil {
				return err
			}
		}
	}

	pop := func(want TypeKind) error {
		if len(s.stack) == 0 {
			return v.errf(pc, "pop from empty stack")
		}
		got := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if got != want {
			return v.errf(pc, "expected %v on stack, found %v", want, got)
		}
		return nil
	}
	popAny := func() (TypeKind, error) {
		if len(s.stack) == 0 {
			return Void, v.errf(pc, "pop from empty stack")
		}
		got := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		return got, nil
	}
	push := func(k TypeKind) {
		s.stack = append(s.stack, k)
		if len(s.stack) > v.maxStack {
			v.maxStack = len(s.stack)
		}
	}
	loadLocal := func(want TypeKind) error {
		i := int(bc.A)
		if i < 0 || i >= len(s.locals) {
			return v.errf(pc, "local %d out of range", i)
		}
		if s.locals[i] != want {
			return v.errf(pc, "local %d holds %v, want %v", i, s.locals[i], want)
		}
		push(want)
		return nil
	}
	storeLocal := func(want TypeKind) error {
		if err := pop(want); err != nil {
			return err
		}
		i := int(bc.A)
		if i < 0 || i >= len(s.locals) {
			return v.errf(pc, "local %d out of range", i)
		}
		s.locals[i] = want
		return nil
	}
	binary := func(k TypeKind) error {
		if err := pop(k); err != nil {
			return err
		}
		if err := pop(k); err != nil {
			return err
		}
		push(k)
		return nil
	}
	unary := func(k TypeKind) error {
		if err := pop(k); err != nil {
			return err
		}
		push(k)
		return nil
	}
	conv := func(from, to TypeKind) error {
		if err := pop(from); err != nil {
			return err
		}
		push(to)
		return nil
	}
	cmp := func(k TypeKind) error {
		if err := pop(k); err != nil {
			return err
		}
		if err := pop(k); err != nil {
			return err
		}
		push(Int)
		return nil
	}
	elemKindType := func() TypeKind {
		switch bc.Kind {
		case ElemLong:
			return Long
		case ElemFloat:
			return Float
		case ElemDouble:
			return Double
		case ElemRef:
			return Ref
		default:
			return Int
		}
	}

	var err error
	fallThrough := true

	switch bc.Op {
	case BCNop:
	case BCConstI:
		push(Int)
	case BCConstL:
		push(Long)
	case BCConstF:
		push(Float)
	case BCConstD:
		push(Double)
	case BCConstNull, BCConstStr:
		push(Ref)

	case BCLoadI:
		err = loadLocal(Int)
	case BCLoadL:
		err = loadLocal(Long)
	case BCLoadF:
		err = loadLocal(Float)
	case BCLoadD:
		err = loadLocal(Double)
	case BCLoadRef:
		err = loadLocal(Ref)
	case BCStoreI:
		err = storeLocal(Int)
	case BCStoreL:
		err = storeLocal(Long)
	case BCStoreF:
		err = storeLocal(Float)
	case BCStoreD:
		err = storeLocal(Double)
	case BCStoreRef:
		err = storeLocal(Ref)
	case BCInc:
		i := int(bc.A)
		if i < 0 || i >= len(s.locals) || s.locals[i] != Int {
			err = v.errf(pc, "iinc on non-int local %d", i)
		}

	case BCPop:
		_, err = popAny()
	case BCPop2:
		if _, err = popAny(); err == nil {
			_, err = popAny()
		}
	case BCDup:
		var k TypeKind
		if k, err = popAny(); err == nil {
			push(k)
			push(k)
		}
	case BCDupX1:
		var a, b TypeKind
		if a, err = popAny(); err == nil {
			if b, err = popAny(); err == nil {
				push(a)
				push(b)
				push(a)
			}
		}
	case BCDupX2:
		var a, b, c TypeKind
		if a, err = popAny(); err == nil {
			if b, err = popAny(); err == nil {
				if c, err = popAny(); err == nil {
					push(a)
					push(c)
					push(b)
					push(a)
				}
			}
		}
	case BCDup2:
		var a, b TypeKind
		if a, err = popAny(); err == nil {
			if b, err = popAny(); err == nil {
				push(b)
				push(a)
				push(b)
				push(a)
			}
		}
	case BCSwap:
		var a, b TypeKind
		if a, err = popAny(); err == nil {
			if b, err = popAny(); err == nil {
				push(a)
				push(b)
			}
		}

	case BCAddI, BCSubI, BCMulI, BCDivI, BCRemI, BCAndI, BCOrI, BCXorI,
		BCShlI, BCShrI, BCUShrI:
		err = binary(Int)
	case BCNegI:
		err = unary(Int)
	case BCAddL, BCSubL, BCMulL, BCDivL, BCRemL, BCAndL, BCOrL, BCXorL:
		err = binary(Long)
	case BCShlL, BCShrL, BCUShrL:
		// Shift amount is an int.
		if err = pop(Int); err == nil {
			err = unary(Long)
		}
	case BCNegL:
		err = unary(Long)
	case BCCmpL:
		err = cmp(Long)
	case BCAddF, BCSubF, BCMulF, BCDivF, BCRemF:
		err = binary(Float)
	case BCNegF:
		err = unary(Float)
	case BCCmpFL, BCCmpFG:
		err = cmp(Float)
	case BCAddD, BCSubD, BCMulD, BCDivD, BCRemD:
		err = binary(Double)
	case BCNegD:
		err = unary(Double)
	case BCCmpDL, BCCmpDG:
		err = cmp(Double)

	case BCI2L:
		err = conv(Int, Long)
	case BCI2F:
		err = conv(Int, Float)
	case BCI2D:
		err = conv(Int, Double)
	case BCL2I:
		err = conv(Long, Int)
	case BCL2F:
		err = conv(Long, Float)
	case BCL2D:
		err = conv(Long, Double)
	case BCF2I:
		err = conv(Float, Int)
	case BCF2L:
		err = conv(Float, Long)
	case BCF2D:
		err = conv(Float, Double)
	case BCD2I:
		err = conv(Double, Int)
	case BCD2L:
		err = conv(Double, Long)
	case BCD2F:
		err = conv(Double, Float)
	case BCI2B, BCI2C, BCI2S:
		err = unary(Int)

	case BCGoto:
		fallThrough = false
		err = v.merge(bc.Target.pc, s)
	case BCIfEQ, BCIfNE, BCIfLT, BCIfGE, BCIfGT, BCIfLE:
		if err = pop(Int); err == nil {
			err = v.merge(bc.Target.pc, s)
		}
	case BCIfICmpEQ, BCIfICmpNE, BCIfICmpLT, BCIfICmpGE, BCIfICmpGT, BCIfICmpLE:
		if err = pop(Int); err == nil {
			if err = pop(Int); err == nil {
				err = v.merge(bc.Target.pc, s)
			}
		}
	case BCIfACmpEQ, BCIfACmpNE:
		if err = pop(Ref); err == nil {
			if err = pop(Ref); err == nil {
				err = v.merge(bc.Target.pc, s)
			}
		}
	case BCIfNull, BCIfNonNull:
		if err = pop(Ref); err == nil {
			err = v.merge(bc.Target.pc, s)
		}
	case BCTableSwitch, BCLookupSwitch:
		fallThrough = false
		if err = pop(Int); err == nil {
			if err = v.merge(bc.Target.pc, s); err == nil {
				for _, t := range bc.Table {
					if err = v.merge(t.pc, s); err != nil {
						break
					}
				}
			}
		}

	case BCGetField:
		if bc.F == nil {
			err = v.errf(pc, "nil field ref")
			break
		}
		if err = pop(Ref); err == nil {
			push(bc.F.Type)
		}
	case BCPutField:
		if bc.F == nil {
			err = v.errf(pc, "nil field ref")
			break
		}
		if err = pop(bc.F.Type); err == nil {
			err = pop(Ref)
		}
	case BCGetStatic:
		if bc.F == nil {
			err = v.errf(pc, "nil field ref")
			break
		}
		push(bc.F.Type)
	case BCPutStatic:
		if bc.F == nil {
			err = v.errf(pc, "nil field ref")
			break
		}
		err = pop(bc.F.Type)

	case BCNewArray, BCANewArray:
		if err = pop(Int); err == nil {
			push(Ref)
		}
	case BCALoad:
		if err = pop(Int); err == nil {
			if err = pop(Ref); err == nil {
				push(elemKindType())
			}
		}
	case BCAStore:
		if err = pop(elemKindType()); err == nil {
			if err = pop(Int); err == nil {
				err = pop(Ref)
			}
		}
	case BCArrayLen:
		if err = pop(Ref); err == nil {
			push(Int)
		}

	case BCNew:
		if bc.C == nil {
			err = v.errf(pc, "nil class ref")
			break
		}
		push(Ref)
	case BCInvokeVirtual, BCInvokeSpecial, BCInvokeStatic, BCInvokeInterface:
		if bc.M == nil {
			err = v.errf(pc, "nil method ref")
			break
		}
		callee := bc.M
		for i := len(callee.Params) - 1; i >= 0 && err == nil; i-- {
			err = pop(callee.Params[i])
		}
		if err == nil && !callee.IsStatic() {
			err = pop(Ref)
		}
		if err == nil && callee.Ret != Void {
			push(callee.Ret)
		}
	case BCInstanceOf:
		if err = pop(Ref); err == nil {
			push(Int)
		}
	case BCCheckCast:
		if err = pop(Ref); err == nil {
			push(Ref)
		}

	case BCReturn:
		fallThrough = false
		err = pop(v.m.Ret)
		if err == nil && len(s.stack) != 0 {
			// JVM permits residue; we keep it strict to catch builder bugs.
			err = v.errf(pc, "stack not empty at return (%d residue)", len(s.stack))
		}
	case BCReturnVoid:
		fallThrough = false
		if len(s.stack) != 0 {
			err = v.errf(pc, "stack not empty at return (%d residue)", len(s.stack))
		}
	case BCMonitorEnter, BCMonitorExit:
		err = pop(Ref)
	case BCThrow:
		fallThrough = false
		err = pop(Ref)

	default:
		err = v.errf(pc, "unhandled opcode")
	}
	if err != nil {
		return err
	}
	if fallThrough {
		if pc+1 >= len(v.m.Code) {
			return v.errf(pc, "control falls off the end")
		}
		return v.merge(pc+1, s)
	}
	return nil
}
