package classfile

import (
	"fmt"
	"math"
)

// Asm builds a method body instruction by instruction. Typical use:
//
//	a := method.Asm()
//	loop := a.NewLabel()
//	a.ConstI(0)
//	a.StoreI(1)
//	a.Bind(loop)
//	... more instructions ...
//	a.MustBuild()
//
// Build attaches the code to the method and computes MaxLocals; MaxStack
// is computed later by the verifier during Program.Resolve.
type Asm struct {
	m        *Method
	code     []BC
	maxLocal int
	built    bool
	err      error
	handlers []handlerSpec
}

// Asm begins assembling the method's body.
func (m *Method) Asm() *Asm {
	if m.IsNative() || m.IsAbstract() {
		panic(fmt.Sprintf("classfile: %s cannot have a body", m.Sig()))
	}
	return &Asm{m: m, maxLocal: m.ArgSlots() - 1}
}

func (a *Asm) emit(bc BC) *Asm {
	a.code = append(a.code, bc)
	return a
}

func (a *Asm) local(i int) {
	if i < 0 {
		a.fail("negative local index %d", i)
	}
	if i > a.maxLocal {
		a.maxLocal = i
	}
}

func (a *Asm) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("asm %s: %s", a.m.Sig(), fmt.Sprintf(format, args...))
	}
}

// NewLabel creates an unbound label.
func (a *Asm) NewLabel() *Label {
	return &Label{pc: -1, name: fmt.Sprintf("L%d", len(a.code))}
}

// Bind binds the label to the next instruction.
func (a *Asm) Bind(l *Label) *Asm {
	if l.bound {
		a.fail("label %s bound twice", l.name)
	}
	l.pc = len(a.code)
	l.bound = true
	return a
}

// --- constants ---

// ConstI pushes an int constant.
func (a *Asm) ConstI(v int32) *Asm { return a.emit(BC{Op: BCConstI, A: v}) }

// ConstL pushes a long constant.
func (a *Asm) ConstL(v int64) *Asm { return a.emit(BC{Op: BCConstL, W: uint64(v)}) }

// ConstF pushes a float constant.
func (a *Asm) ConstF(v float32) *Asm {
	return a.emit(BC{Op: BCConstF, W: uint64(math.Float32bits(v))})
}

// ConstD pushes a double constant.
func (a *Asm) ConstD(v float64) *Asm {
	return a.emit(BC{Op: BCConstD, W: math.Float64bits(v)})
}

// Null pushes the null reference.
func (a *Asm) Null() *Asm { return a.emit(BC{Op: BCConstNull}) }

// Str pushes an interned string literal.
func (a *Asm) Str(s string) *Asm { return a.emit(BC{Op: BCConstStr, S: s}) }

// --- locals ---

// LoadI pushes int local i. The other Load/Store variants follow suit.
func (a *Asm) LoadI(i int) *Asm { a.local(i); return a.emit(BC{Op: BCLoadI, A: int32(i)}) }

// LoadL pushes long local i.
func (a *Asm) LoadL(i int) *Asm { a.local(i); return a.emit(BC{Op: BCLoadL, A: int32(i)}) }

// LoadF pushes float local i.
func (a *Asm) LoadF(i int) *Asm { a.local(i); return a.emit(BC{Op: BCLoadF, A: int32(i)}) }

// LoadD pushes double local i.
func (a *Asm) LoadD(i int) *Asm { a.local(i); return a.emit(BC{Op: BCLoadD, A: int32(i)}) }

// LoadRef pushes reference local i.
func (a *Asm) LoadRef(i int) *Asm { a.local(i); return a.emit(BC{Op: BCLoadRef, A: int32(i)}) }

// StoreI pops into int local i.
func (a *Asm) StoreI(i int) *Asm { a.local(i); return a.emit(BC{Op: BCStoreI, A: int32(i)}) }

// StoreL pops into long local i.
func (a *Asm) StoreL(i int) *Asm { a.local(i); return a.emit(BC{Op: BCStoreL, A: int32(i)}) }

// StoreF pops into float local i.
func (a *Asm) StoreF(i int) *Asm { a.local(i); return a.emit(BC{Op: BCStoreF, A: int32(i)}) }

// StoreD pops into double local i.
func (a *Asm) StoreD(i int) *Asm { a.local(i); return a.emit(BC{Op: BCStoreD, A: int32(i)}) }

// StoreRef pops into reference local i.
func (a *Asm) StoreRef(i int) *Asm { a.local(i); return a.emit(BC{Op: BCStoreRef, A: int32(i)}) }

// Inc adds delta to int local i (iinc).
func (a *Asm) Inc(i int, delta int32) *Asm {
	a.local(i)
	return a.emit(BC{Op: BCInc, A: int32(i), B: delta})
}

// --- operand stack ---

// Pop discards the top value.
func (a *Asm) Pop() *Asm { return a.emit(BC{Op: BCPop}) }

// Pop2 discards the top two values.
func (a *Asm) Pop2() *Asm { return a.emit(BC{Op: BCPop2}) }

// Dup duplicates the top value.
func (a *Asm) Dup() *Asm { return a.emit(BC{Op: BCDup}) }

// DupX1 duplicates the top value beneath the second.
func (a *Asm) DupX1() *Asm { return a.emit(BC{Op: BCDupX1}) }

// DupX2 duplicates the top value beneath the third.
func (a *Asm) DupX2() *Asm { return a.emit(BC{Op: BCDupX2}) }

// Dup2 duplicates the top two values.
func (a *Asm) Dup2() *Asm { return a.emit(BC{Op: BCDup2}) }

// Swap exchanges the top two values.
func (a *Asm) Swap() *Asm { return a.emit(BC{Op: BCSwap}) }

// --- arithmetic ---

// AddI pops two ints and pushes their sum; the remaining arithmetic
// emitters follow the JVM's stack discipline in the same way.
func (a *Asm) AddI() *Asm  { return a.emit(BC{Op: BCAddI}) }
func (a *Asm) SubI() *Asm  { return a.emit(BC{Op: BCSubI}) }
func (a *Asm) MulI() *Asm  { return a.emit(BC{Op: BCMulI}) }
func (a *Asm) DivI() *Asm  { return a.emit(BC{Op: BCDivI}) }
func (a *Asm) RemI() *Asm  { return a.emit(BC{Op: BCRemI}) }
func (a *Asm) NegI() *Asm  { return a.emit(BC{Op: BCNegI}) }
func (a *Asm) ShlI() *Asm  { return a.emit(BC{Op: BCShlI}) }
func (a *Asm) ShrI() *Asm  { return a.emit(BC{Op: BCShrI}) }
func (a *Asm) UShrI() *Asm { return a.emit(BC{Op: BCUShrI}) }
func (a *Asm) AndI() *Asm  { return a.emit(BC{Op: BCAndI}) }
func (a *Asm) OrI() *Asm   { return a.emit(BC{Op: BCOrI}) }
func (a *Asm) XorI() *Asm  { return a.emit(BC{Op: BCXorI}) }

func (a *Asm) AddL() *Asm  { return a.emit(BC{Op: BCAddL}) }
func (a *Asm) SubL() *Asm  { return a.emit(BC{Op: BCSubL}) }
func (a *Asm) MulL() *Asm  { return a.emit(BC{Op: BCMulL}) }
func (a *Asm) DivL() *Asm  { return a.emit(BC{Op: BCDivL}) }
func (a *Asm) RemL() *Asm  { return a.emit(BC{Op: BCRemL}) }
func (a *Asm) NegL() *Asm  { return a.emit(BC{Op: BCNegL}) }
func (a *Asm) ShlL() *Asm  { return a.emit(BC{Op: BCShlL}) }
func (a *Asm) ShrL() *Asm  { return a.emit(BC{Op: BCShrL}) }
func (a *Asm) UShrL() *Asm { return a.emit(BC{Op: BCUShrL}) }
func (a *Asm) AndL() *Asm  { return a.emit(BC{Op: BCAndL}) }
func (a *Asm) OrL() *Asm   { return a.emit(BC{Op: BCOrL}) }
func (a *Asm) XorL() *Asm  { return a.emit(BC{Op: BCXorL}) }
func (a *Asm) CmpL() *Asm  { return a.emit(BC{Op: BCCmpL}) }

func (a *Asm) AddF() *Asm  { return a.emit(BC{Op: BCAddF}) }
func (a *Asm) SubF() *Asm  { return a.emit(BC{Op: BCSubF}) }
func (a *Asm) MulF() *Asm  { return a.emit(BC{Op: BCMulF}) }
func (a *Asm) DivF() *Asm  { return a.emit(BC{Op: BCDivF}) }
func (a *Asm) RemF() *Asm  { return a.emit(BC{Op: BCRemF}) }
func (a *Asm) NegF() *Asm  { return a.emit(BC{Op: BCNegF}) }
func (a *Asm) CmpFL() *Asm { return a.emit(BC{Op: BCCmpFL}) }
func (a *Asm) CmpFG() *Asm { return a.emit(BC{Op: BCCmpFG}) }

func (a *Asm) AddD() *Asm  { return a.emit(BC{Op: BCAddD}) }
func (a *Asm) SubD() *Asm  { return a.emit(BC{Op: BCSubD}) }
func (a *Asm) MulD() *Asm  { return a.emit(BC{Op: BCMulD}) }
func (a *Asm) DivD() *Asm  { return a.emit(BC{Op: BCDivD}) }
func (a *Asm) RemD() *Asm  { return a.emit(BC{Op: BCRemD}) }
func (a *Asm) NegD() *Asm  { return a.emit(BC{Op: BCNegD}) }
func (a *Asm) CmpDL() *Asm { return a.emit(BC{Op: BCCmpDL}) }
func (a *Asm) CmpDG() *Asm { return a.emit(BC{Op: BCCmpDG}) }

// --- conversions ---

func (a *Asm) I2L() *Asm { return a.emit(BC{Op: BCI2L}) }
func (a *Asm) I2F() *Asm { return a.emit(BC{Op: BCI2F}) }
func (a *Asm) I2D() *Asm { return a.emit(BC{Op: BCI2D}) }
func (a *Asm) L2I() *Asm { return a.emit(BC{Op: BCL2I}) }
func (a *Asm) L2F() *Asm { return a.emit(BC{Op: BCL2F}) }
func (a *Asm) L2D() *Asm { return a.emit(BC{Op: BCL2D}) }
func (a *Asm) F2I() *Asm { return a.emit(BC{Op: BCF2I}) }
func (a *Asm) F2L() *Asm { return a.emit(BC{Op: BCF2L}) }
func (a *Asm) F2D() *Asm { return a.emit(BC{Op: BCF2D}) }
func (a *Asm) D2I() *Asm { return a.emit(BC{Op: BCD2I}) }
func (a *Asm) D2L() *Asm { return a.emit(BC{Op: BCD2L}) }
func (a *Asm) D2F() *Asm { return a.emit(BC{Op: BCD2F}) }
func (a *Asm) I2B() *Asm { return a.emit(BC{Op: BCI2B}) }
func (a *Asm) I2C() *Asm { return a.emit(BC{Op: BCI2C}) }
func (a *Asm) I2S() *Asm { return a.emit(BC{Op: BCI2S}) }

// --- control flow ---

// Goto jumps unconditionally to l.
func (a *Asm) Goto(l *Label) *Asm { return a.emit(BC{Op: BCGoto, Target: l}) }

// IfEQ pops an int and branches to l when it is zero; the other
// conditional emitters follow the JVM's semantics likewise.
func (a *Asm) IfEQ(l *Label) *Asm { return a.emit(BC{Op: BCIfEQ, Target: l}) }
func (a *Asm) IfNE(l *Label) *Asm { return a.emit(BC{Op: BCIfNE, Target: l}) }
func (a *Asm) IfLT(l *Label) *Asm { return a.emit(BC{Op: BCIfLT, Target: l}) }
func (a *Asm) IfGE(l *Label) *Asm { return a.emit(BC{Op: BCIfGE, Target: l}) }
func (a *Asm) IfGT(l *Label) *Asm { return a.emit(BC{Op: BCIfGT, Target: l}) }
func (a *Asm) IfLE(l *Label) *Asm { return a.emit(BC{Op: BCIfLE, Target: l}) }

func (a *Asm) IfICmpEQ(l *Label) *Asm { return a.emit(BC{Op: BCIfICmpEQ, Target: l}) }
func (a *Asm) IfICmpNE(l *Label) *Asm { return a.emit(BC{Op: BCIfICmpNE, Target: l}) }
func (a *Asm) IfICmpLT(l *Label) *Asm { return a.emit(BC{Op: BCIfICmpLT, Target: l}) }
func (a *Asm) IfICmpGE(l *Label) *Asm { return a.emit(BC{Op: BCIfICmpGE, Target: l}) }
func (a *Asm) IfICmpGT(l *Label) *Asm { return a.emit(BC{Op: BCIfICmpGT, Target: l}) }
func (a *Asm) IfICmpLE(l *Label) *Asm { return a.emit(BC{Op: BCIfICmpLE, Target: l}) }

func (a *Asm) IfACmpEQ(l *Label) *Asm  { return a.emit(BC{Op: BCIfACmpEQ, Target: l}) }
func (a *Asm) IfACmpNE(l *Label) *Asm  { return a.emit(BC{Op: BCIfACmpNE, Target: l}) }
func (a *Asm) IfNull(l *Label) *Asm    { return a.emit(BC{Op: BCIfNull, Target: l}) }
func (a *Asm) IfNonNull(l *Label) *Asm { return a.emit(BC{Op: BCIfNonNull, Target: l}) }

// TableSwitch pops an index and jumps to targets[index-low], or def when
// out of range.
func (a *Asm) TableSwitch(low int32, def *Label, targets ...*Label) *Asm {
	return a.emit(BC{Op: BCTableSwitch, A: low, Target: def, Table: targets})
}

// LookupSwitch pops a key and jumps to the target paired with it in
// keys/targets, or def when absent. Keys must be strictly ascending.
func (a *Asm) LookupSwitch(def *Label, keys []int32, targets []*Label) *Asm {
	if len(keys) != len(targets) {
		a.fail("lookupswitch: %d keys vs %d targets", len(keys), len(targets))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			a.fail("lookupswitch keys not strictly ascending at %d", i)
		}
	}
	return a.emit(BC{Op: BCLookupSwitch, Target: def, Keys: keys, Table: targets})
}

// --- fields, arrays, objects ---

// GetField pops a receiver and pushes f's value.
func (a *Asm) GetField(f *Field) *Asm {
	if f.Static {
		a.fail("getfield on static %s", f)
	}
	return a.emit(BC{Op: BCGetField, F: f})
}

// PutField pops a value then a receiver and stores into f.
func (a *Asm) PutField(f *Field) *Asm {
	if f.Static {
		a.fail("putfield on static %s", f)
	}
	return a.emit(BC{Op: BCPutField, F: f})
}

// GetStatic pushes static field f.
func (a *Asm) GetStatic(f *Field) *Asm {
	if !f.Static {
		a.fail("getstatic on instance %s", f)
	}
	return a.emit(BC{Op: BCGetStatic, F: f})
}

// PutStatic pops into static field f.
func (a *Asm) PutStatic(f *Field) *Asm {
	if !f.Static {
		a.fail("putstatic on instance %s", f)
	}
	return a.emit(BC{Op: BCPutStatic, F: f})
}

// NewArray pops a length and pushes a new primitive array.
func (a *Asm) NewArray(k isaElem) *Asm { return a.emit(BC{Op: BCNewArray, Kind: k}) }

// ANewArray pops a length and pushes a new reference array.
func (a *Asm) ANewArray(c *Class) *Asm {
	return a.emit(BC{Op: BCANewArray, C: c, Kind: refElem})
}

// ALoad pops index then array and pushes the element.
func (a *Asm) ALoad(k isaElem) *Asm { return a.emit(BC{Op: BCALoad, Kind: k}) }

// AStore pops value, index, array and stores the element.
func (a *Asm) AStore(k isaElem) *Asm { return a.emit(BC{Op: BCAStore, Kind: k}) }

// ArrayLen pops an array and pushes its length.
func (a *Asm) ArrayLen() *Asm { return a.emit(BC{Op: BCArrayLen}) }

// New pushes a new uninitialised instance of c. (Call its constructor
// with InvokeSpecial afterwards, as javac does.)
func (a *Asm) New(c *Class) *Asm { return a.emit(BC{Op: BCNew, C: c}) }

// InvokeVirtual calls m through the receiver's vtable.
func (a *Asm) InvokeVirtual(m *Method) *Asm {
	if m.IsStatic() {
		a.fail("invokevirtual on static %s", m.Sig())
	}
	return a.emit(BC{Op: BCInvokeVirtual, M: m})
}

// InvokeSpecial calls m directly (constructors, super calls).
func (a *Asm) InvokeSpecial(m *Method) *Asm {
	if m.IsStatic() {
		a.fail("invokespecial on static %s", m.Sig())
	}
	return a.emit(BC{Op: BCInvokeSpecial, M: m})
}

// InvokeStatic calls static method m.
func (a *Asm) InvokeStatic(m *Method) *Asm {
	if !m.IsStatic() {
		a.fail("invokestatic on instance %s", m.Sig())
	}
	return a.emit(BC{Op: BCInvokeStatic, M: m})
}

// InvokeInterface calls interface method m through the receiver's itable.
func (a *Asm) InvokeInterface(m *Method) *Asm {
	if !m.Class.IsInterface {
		a.fail("invokeinterface on class method %s", m.Sig())
	}
	return a.emit(BC{Op: BCInvokeInterface, M: m})
}

// InstanceOf pops a reference and pushes 1 when it is a non-null
// instance of c.
func (a *Asm) InstanceOf(c *Class) *Asm { return a.emit(BC{Op: BCInstanceOf, C: c}) }

// CheckCast traps unless the top reference is null or an instance of c.
func (a *Asm) CheckCast(c *Class) *Asm { return a.emit(BC{Op: BCCheckCast, C: c}) }

// Ret returns the top of stack as the method's value.
func (a *Asm) Ret() *Asm {
	if a.m.Ret == Void {
		a.fail("value return from void method")
	}
	return a.emit(BC{Op: BCReturn})
}

// RetVoid returns from a void method.
func (a *Asm) RetVoid() *Asm {
	if a.m.Ret != Void {
		a.fail("void return from %s method", a.m.Ret)
	}
	return a.emit(BC{Op: BCReturnVoid})
}

// MonitorEnter pops a reference and acquires its monitor.
func (a *Asm) MonitorEnter() *Asm { return a.emit(BC{Op: BCMonitorEnter}) }

// MonitorExit pops a reference and releases its monitor.
func (a *Asm) MonitorExit() *Asm { return a.emit(BC{Op: BCMonitorExit}) }

// Throw pops a throwable and unwinds.
func (a *Asm) Throw() *Asm { return a.emit(BC{Op: BCThrow}) }

// handlerSpec is a pending Catch registration resolved at Build.
type handlerSpec struct {
	from, to, target *Label
	typ              *Class
}

// Catch registers an exception handler: throws raised at bytecode
// positions in [from, to) whose object is an instance of catchType
// (nil = catch everything) branch to handler with the thrown reference
// as the only stack value. Handlers match in registration order.
func (a *Asm) Catch(from, to, handler *Label, catchType *Class) *Asm {
	a.handlers = append(a.handlers, handlerSpec{from: from, to: to, target: handler, typ: catchType})
	return a
}

// Build finalises the body: checks labels, attaches the code and
// MaxLocals to the method.
func (a *Asm) Build() error {
	if a.built {
		return fmt.Errorf("asm %s: Build called twice", a.m.Sig())
	}
	if a.err != nil {
		return a.err
	}
	if len(a.code) == 0 {
		return fmt.Errorf("asm %s: empty body", a.m.Sig())
	}
	for pc, bc := range a.code {
		targets := make([]*Label, 0, 1+len(bc.Table))
		if bc.Target != nil {
			targets = append(targets, bc.Target)
		}
		targets = append(targets, bc.Table...)
		for _, l := range targets {
			if !l.bound {
				return fmt.Errorf("asm %s: pc %d: unbound label %s", a.m.Sig(), pc, l.name)
			}
			if l.pc < 0 || l.pc > len(a.code) {
				return fmt.Errorf("asm %s: pc %d: label %s out of range", a.m.Sig(), pc, l.name)
			}
		}
	}
	last := a.code[len(a.code)-1].Op
	if !last.EndsBlock() {
		return fmt.Errorf("asm %s: control falls off the end (last op %v)", a.m.Sig(), last)
	}
	for i, h := range a.handlers {
		for _, l := range []*Label{h.from, h.to, h.target} {
			if !l.bound {
				return fmt.Errorf("asm %s: handler %d has an unbound label", a.m.Sig(), i)
			}
		}
		if h.from.pc >= h.to.pc {
			return fmt.Errorf("asm %s: handler %d protects empty range [%d,%d)",
				a.m.Sig(), i, h.from.pc, h.to.pc)
		}
		a.m.Handlers = append(a.m.Handlers, Handler{
			From: h.from.pc, To: h.to.pc, Target: h.target.pc, Type: h.typ,
		})
	}
	a.m.Code = a.code
	a.m.MaxLocals = a.maxLocal + 1
	a.built = true
	return nil
}

// MustBuild is Build but panics on error; workload builders use it.
func (a *Asm) MustBuild() {
	if err := a.Build(); err != nil {
		panic(err)
	}
}
