// Package classfile defines the Java-bytecode-subset program
// representation that Hera-JVM executes: classes, fields, methods,
// bytecode instructions, an assembler for building programs
// programmatically, resolution (field slots, vtables, global IDs) and a
// structural verifier.
//
// Hera-JVM runs unmodified Java applications; this reproduction has no
// javac, so programs are built through the assembler API instead of being
// parsed from .class files. The bytecode semantics, the class/metadata
// model (TIB-per-class, as in JikesRVM) and the compilation pipeline
// downstream of this package follow the JVM model.
package classfile

// TypeKind is the verification-level type of a value: the JVM's
// computational types.
type TypeKind uint8

const (
	// Void is only valid as a return type.
	Void TypeKind = iota
	// Int covers boolean, byte, char, short and int.
	Int
	// Long is a 64-bit integer.
	Long
	// Float is a 32-bit IEEE float.
	Float
	// Double is a 64-bit IEEE float.
	Double
	// Ref is an object or array reference.
	Ref
)

var typeNames = [...]string{"void", "int", "long", "float", "double", "ref"}

// String returns the type's name.
func (t TypeKind) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "?"
}

// IsRef reports whether the kind is a reference.
func (t TypeKind) IsRef() bool { return t == Ref }

// Annotation names understood by the runtime's placement policies. The
// paper (§3) proposes "platform-neutral hints of expected behaviour";
// these are the hints its Section 4 analysis motivates.
const (
	// AnnFloatIntensive tags floating-point-heavy code: a strong SPE
	// candidate (mandelbrot-like behaviour in Figure 4/5).
	AnnFloatIntensive = "FloatIntensive"
	// AnnMemoryIntensive tags code dominated by irregular main-memory
	// access: a PPE candidate (compress-like behaviour).
	AnnMemoryIntensive = "MemoryIntensive"
	// AnnRunOnSPE / AnnRunOnPPE force placement of the annotated method
	// (and the thread executing it, until return).
	AnnRunOnSPE = "RunOnSPE"
	AnnRunOnPPE = "RunOnPPE"
)
