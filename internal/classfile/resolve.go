package classfile

import "fmt"

// Resolve closes the program: assigns class IDs (supertypes first),
// instance-field slots, global static slots, vtables, interface tables
// and global method IDs, then verifies every method body. It must be
// called exactly once, after all classes are declared and all bodies
// built, and before the program is handed to the VM.
func (p *Program) Resolve() error {
	if p.resolved {
		return fmt.Errorf("classfile: program already resolved")
	}

	ordered, err := p.topoOrder()
	if err != nil {
		return err
	}

	for id, c := range ordered {
		c.ID = id
		if c.Super != nil {
			c.depth = c.Super.depth + 1
		}
		if err := p.resolveFields(c); err != nil {
			return err
		}
		if err := p.resolveMethods(c); err != nil {
			return err
		}
	}
	// Interface tables need every vtable finished first.
	for _, c := range ordered {
		p.resolveITable(c)
	}

	for _, m := range p.methods {
		if m.IsNative() || m.IsAbstract() {
			continue
		}
		if m.Code == nil {
			return fmt.Errorf("classfile: %s has no body (Asm not built?)", m.Sig())
		}
		if err := p.verify(m); err != nil {
			return err
		}
	}

	p.resolved = true
	return nil
}

// topoOrder returns classes with every superclass before its subclasses.
func (p *Program) topoOrder() ([]*Class, error) {
	seen := make(map[*Class]int) // 0 unseen, 1 visiting, 2 done
	var out []*Class
	var visit func(c *Class) error
	visit = func(c *Class) error {
		switch seen[c] {
		case 1:
			return fmt.Errorf("classfile: inheritance cycle at %s", c.Name)
		case 2:
			return nil
		}
		seen[c] = 1
		if c.Super != nil {
			if err := visit(c.Super); err != nil {
				return err
			}
		}
		for _, i := range c.Interfaces {
			if err := visit(i); err != nil {
				return err
			}
		}
		seen[c] = 2
		out = append(out, c)
		return nil
	}
	for _, c := range p.classes {
		if err := visit(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (p *Program) resolveFields(c *Class) error {
	base := 0
	if c.Super != nil {
		base = c.Super.InstanceSlots
	}
	for i, f := range c.Fields {
		f.Slot = base + i
	}
	c.InstanceSlots = base + len(c.Fields)
	for _, f := range c.Statics {
		f.Slot = p.staticSlots
		p.staticSlots++
	}
	return nil
}

func (p *Program) resolveMethods(c *Class) error {
	// Start from the super's vtable.
	if c.Super != nil {
		c.VTable = append([]*Method(nil), c.Super.VTable...)
	}
	for _, m := range c.Methods {
		m.ID = len(p.methods)
		p.methods = append(p.methods, m)
		if m.IsNative() && m.NativeTag == "" {
			m.NativeTag = c.Name + "." + m.Name
		}
		if !m.IsVirtual() {
			continue
		}
		if c.IsInterface {
			m.IfaceID = p.ifaceSlots
			p.ifaceSlots++
			continue
		}
		// Override or extend the vtable.
		slot := -1
		for s, sm := range c.VTable {
			if sameSignature(sm, m) {
				slot = s
				break
			}
		}
		if slot < 0 {
			slot = len(c.VTable)
			c.VTable = append(c.VTable, nil)
		}
		m.VSlot = slot
		c.VTable[slot] = m
	}
	// Abstract classes may leave nil slots only if declared abstract
	// methods fill them; concrete classes must have full vtables.
	for s, sm := range c.VTable {
		if sm == nil {
			return fmt.Errorf("classfile: %s vtable slot %d empty", c.Name, s)
		}
	}
	return nil
}

func (p *Program) resolveITable(c *Class) {
	if c.IsInterface {
		return
	}
	c.ITable = make(map[int]*Method)
	var collect func(k *Class)
	collect = func(k *Class) {
		if k == nil {
			return
		}
		for _, i := range k.Interfaces {
			for _, im := range i.Methods {
				if im.IfaceID < 0 {
					continue
				}
				if _, have := c.ITable[im.IfaceID]; have {
					continue
				}
				// Find the implementing virtual method in c's vtable.
				for _, vm := range c.VTable {
					if sameSignature(vm, im) {
						c.ITable[im.IfaceID] = vm
						break
					}
				}
			}
			collect(i) // super-interfaces via Interfaces of the interface
		}
		collect(k.Super)
	}
	collect(c)
}

// Depth returns the class's supertype-chain depth (Object = 0), valid
// after Resolve. The VM uses it for subtype display tables.
func (c *Class) Depth() int { return c.depth }
