package classfile

import (
	"strings"
	"testing"
)

func TestProgramBasics(t *testing.T) {
	p := NewProgram()
	if p.Object == nil || p.Lookup("java/lang/Object") != p.Object {
		t.Fatal("Object root missing")
	}
	c := p.NewClass("Point", nil)
	if c.Super != p.Object {
		t.Error("default super should be Object")
	}
	if p.Lookup("Point") != c {
		t.Error("Lookup failed")
	}
}

func TestDuplicateClassPanics(t *testing.T) {
	p := NewProgram()
	p.NewClass("A", nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate class")
		}
	}()
	p.NewClass("A", nil)
}

func buildTrivialMain(p *Program, c *Class) *Method {
	m := c.NewMethod("main", FlagStatic, Void)
	a := m.Asm()
	a.RetVoid()
	a.MustBuild()
	return m
}

func TestFieldSlotAssignment(t *testing.T) {
	p := NewProgram()
	a := p.NewClass("A", nil)
	fa1 := a.NewField("x", Int)
	fa2 := a.NewField("y", Double)
	b := p.NewClass("B", a)
	fb1 := b.NewField("z", Ref)
	sa := a.NewStaticField("count", Int)
	sb := b.NewStaticField("total", Long)
	buildTrivialMain(p, a)
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if fa1.Slot != 0 || fa2.Slot != 1 {
		t.Errorf("A slots: %d, %d", fa1.Slot, fa2.Slot)
	}
	if fb1.Slot != 2 {
		t.Errorf("B.z slot: %d (must follow super's)", fb1.Slot)
	}
	if a.InstanceSlots != 2 || b.InstanceSlots != 3 {
		t.Errorf("instance slots: A=%d B=%d", a.InstanceSlots, b.InstanceSlots)
	}
	if sa.Slot == sb.Slot {
		t.Error("static slots collide")
	}
	if p.StaticSlots() != 2 {
		t.Errorf("StaticSlots: %d", p.StaticSlots())
	}
}

func TestVTableOverride(t *testing.T) {
	p := NewProgram()
	a := p.NewClass("Animal", nil)
	speak := a.NewMethod("speak", 0, Int)
	sa := speak.Asm()
	sa.ConstI(1)
	sa.Ret()
	sa.MustBuild()

	b := p.NewClass("Dog", a)
	bark := b.NewMethod("speak", 0, Int)
	ba := bark.Asm()
	ba.ConstI(2)
	ba.Ret()
	ba.MustBuild()

	extra := b.NewMethod("fetch", 0, Void)
	ea := extra.Asm()
	ea.RetVoid()
	ea.MustBuild()

	buildTrivialMain(p, a)
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if speak.VSlot != bark.VSlot {
		t.Errorf("override must share slot: %d vs %d", speak.VSlot, bark.VSlot)
	}
	if a.VTable[speak.VSlot] != speak || b.VTable[bark.VSlot] != bark {
		t.Error("vtable entries wrong")
	}
	if extra.VSlot == bark.VSlot {
		t.Error("new virtual must get a fresh slot")
	}
	if b.ITable == nil {
		t.Error("concrete class should have an itable (possibly empty)")
	}
}

func TestInterfaceResolution(t *testing.T) {
	p := NewProgram()
	iface := p.NewInterface("Runnable")
	run := iface.NewMethod("run", FlagAbstract, Void)

	c := p.NewClass("Task", nil)
	c.AddInterface(iface)
	impl := c.NewMethod("run", 0, Void)
	ia := impl.Asm()
	ia.RetVoid()
	ia.MustBuild()

	buildTrivialMain(p, c)
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if run.IfaceID < 0 {
		t.Fatal("interface method got no IfaceID")
	}
	if c.ITable[run.IfaceID] != impl {
		t.Errorf("itable should map %d to %s", run.IfaceID, impl.Sig())
	}
	if !c.IsSubclassOf(iface) {
		t.Error("Task should be subtype of Runnable")
	}
	if p.Object.IsSubclassOf(iface) {
		t.Error("Object must not be subtype of Runnable")
	}
}

func TestInheritanceCycleDetected(t *testing.T) {
	p := NewProgram()
	a := p.NewClass("A", nil)
	b := p.NewClass("B", a)
	a.Super = b // force a cycle
	if err := p.Resolve(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("expected cycle error, got %v", err)
	}
}

func TestAsmLabelsAndLoop(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("Loop", nil)
	m := c.NewMethod("sum", FlagStatic, Int, Int)
	a := m.Asm()
	// int s = 0; for (int i = 0; i < n; i++) s += i; return s;
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(1) // s
	a.ConstI(0)
	a.StoreI(2) // i
	a.Bind(loop)
	a.LoadI(2)
	a.LoadI(0)
	a.IfICmpGE(done)
	a.LoadI(1)
	a.LoadI(2)
	a.AddI()
	a.StoreI(1)
	a.Inc(2, 1)
	a.Goto(loop)
	a.Bind(done)
	a.LoadI(1)
	a.Ret()
	if err := a.Build(); err != nil {
		t.Fatal(err)
	}
	if m.MaxLocals != 3 {
		t.Errorf("MaxLocals: %d", m.MaxLocals)
	}
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if m.MaxStack != 2 {
		t.Errorf("MaxStack: %d want 2", m.MaxStack)
	}
}

func TestAsmRejectsUnboundLabel(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("Bad", nil)
	m := c.NewMethod("f", FlagStatic, Void)
	a := m.Asm()
	l := a.NewLabel()
	a.Goto(l)
	if err := a.Build(); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("expected unbound-label error, got %v", err)
	}
	_ = p
}

func TestAsmRejectsFallOffEnd(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("Bad2", nil)
	m := c.NewMethod("f", FlagStatic, Void)
	a := m.Asm()
	a.ConstI(1)
	a.Pop()
	if err := a.Build(); err == nil || !strings.Contains(err.Error(), "falls off") {
		t.Errorf("expected fall-off error, got %v", err)
	}
	_ = p
}

func TestVerifyCatchesKindMismatch(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("KBad", nil)
	m := c.NewMethod("f", FlagStatic, Void)
	a := m.Asm()
	a.ConstI(1)
	a.ConstD(2.0)
	a.AddI() // int add on (int, double): must be rejected
	a.Pop()
	a.RetVoid()
	a.MustBuild()
	if err := p.Resolve(); err == nil || !strings.Contains(err.Error(), "expected int") {
		t.Errorf("expected kind-mismatch error, got %v", err)
	}
}

func TestVerifyCatchesStackDepthMismatchAtJoin(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("JBad", nil)
	m := c.NewMethod("f", FlagStatic, Void, Int)
	a := m.Asm()
	other, join := a.NewLabel(), a.NewLabel()
	a.LoadI(0)
	a.IfEQ(other)
	a.ConstI(1) // depth 1 on this path
	a.Goto(join)
	a.Bind(other) // depth 0 on this path
	a.Bind(join)
	a.Pop()
	a.RetVoid()
	a.MustBuild()
	if err := p.Resolve(); err == nil || !strings.Contains(err.Error(), "depth mismatch") {
		t.Errorf("expected depth-mismatch error, got %v", err)
	}
}

func TestVerifyCatchesLocalKindConflictUse(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("LBad", nil)
	m := c.NewMethod("f", FlagStatic, Int, Int)
	a := m.Asm()
	other, join := a.NewLabel(), a.NewLabel()
	a.LoadI(0)
	a.IfEQ(other)
	a.ConstI(7)
	a.StoreI(1)
	a.Goto(join)
	a.Bind(other)
	a.ConstD(1.5)
	a.StoreD(1)
	a.Bind(join)
	a.LoadI(1) // local 1 kind differs across paths: unusable
	a.Ret()
	a.MustBuild()
	if err := p.Resolve(); err == nil {
		t.Error("expected verifier error for conflicted local use")
	}
}

func TestVerifyMethodCallShapes(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("Calls", nil)
	callee := c.NewMethod("mix", FlagStatic, Double, Int, Double)
	ca := callee.Asm()
	ca.LoadI(0)
	ca.I2D()
	ca.LoadD(1)
	ca.AddD()
	ca.Ret()
	ca.MustBuild()

	m := c.NewMethod("main", FlagStatic, Void)
	a := m.Asm()
	a.ConstI(2)
	a.ConstD(3.5)
	a.InvokeStatic(callee)
	a.Pop()
	a.RetVoid()
	a.MustBuild()
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if m.MaxStack != 2 {
		t.Errorf("MaxStack: got %d want 2", m.MaxStack)
	}
}

func TestVerifyRejectsBadCallArgs(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("Calls2", nil)
	callee := c.NewMethod("want2", FlagStatic, Void, Int, Int)
	ca := callee.Asm()
	ca.RetVoid()
	ca.MustBuild()
	m := c.NewMethod("main", FlagStatic, Void)
	a := m.Asm()
	a.ConstI(1)
	a.InvokeStatic(callee) // one arg missing
	a.RetVoid()
	a.MustBuild()
	if err := p.Resolve(); err == nil {
		t.Error("expected arity error")
	}
}

func TestSwitchVerification(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("Sw", nil)
	m := c.NewMethod("pick", FlagStatic, Int, Int)
	a := m.Asm()
	c0, c1, def := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.LoadI(0)
	a.TableSwitch(0, def, c0, c1)
	a.Bind(c0)
	a.ConstI(100)
	a.Ret()
	a.Bind(c1)
	a.ConstI(200)
	a.Ret()
	a.Bind(def)
	a.ConstI(-1)
	a.Ret()
	a.MustBuild()
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
}

func TestLookupSwitchKeyOrderEnforced(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("Sw2", nil)
	m := c.NewMethod("pick", FlagStatic, Void, Int)
	a := m.Asm()
	l, def := a.NewLabel(), a.NewLabel()
	a.Bind(l)
	a.Bind(def)
	a.LoadI(0)
	a.LookupSwitch(def, []int32{5, 3}, []*Label{l, l}) // unordered
	a.RetVoid()
	if err := a.Build(); err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Errorf("expected key-order error, got %v", err)
	}
	_ = p
}

func TestMethodAnnotations(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("Ann", nil)
	m := c.NewMethod("hot", FlagStatic, Void).Annotate(AnnFloatIntensive)
	a := m.Asm()
	a.RetVoid()
	a.MustBuild()
	if !m.Annotations[AnnFloatIntensive] {
		t.Error("annotation lost")
	}
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
}

func TestNativeMethodTagDefaults(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("Sys", nil)
	n := c.NewMethod("nanoTime", FlagStatic|FlagNative, Long)
	buildTrivialMain(p, c)
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if n.NativeTag != "Sys.nanoTime" {
		t.Errorf("NativeTag: %q", n.NativeTag)
	}
}

func TestGlobalMethodIDsDense(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("M", nil)
	for i := 0; i < 5; i++ {
		m := c.NewMethod("f"+string(rune('0'+i)), FlagStatic, Void)
		a := m.Asm()
		a.RetVoid()
		a.MustBuild()
	}
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	for i, m := range p.Methods() {
		if m.ID != i {
			t.Errorf("method %s has ID %d at index %d", m.Sig(), m.ID, i)
		}
		if p.MethodByID(i) != m {
			t.Errorf("MethodByID(%d) mismatch", i)
		}
	}
}

func TestResolveTwiceFails(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("X", nil)
	buildTrivialMain(p, c)
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if err := p.Resolve(); err == nil {
		t.Error("second Resolve should fail")
	}
}

func TestDisassemble(t *testing.T) {
	p := NewProgram()
	c := p.NewClass("D", nil)
	f := c.NewField("x", Int)
	m := c.NewMethod("go", FlagStatic, Int, Ref)
	a := m.Asm()
	s0, e0, h0 := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.Bind(s0)
	a.LoadRef(0)
	a.GetField(f)
	a.Bind(e0)
	a.Ret()
	a.Bind(h0)
	a.Pop()
	a.ConstI(-1)
	a.Ret()
	a.Catch(s0, e0, h0, nil)
	a.MustBuild()
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	out := m.Disassemble()
	for _, want := range []string{"D.go(ref)int", "getfield", "D.x", "exception table", "-> @3"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	n := c.NewMethod("nat", FlagStatic|FlagNative, Void)
	n.NativeTag = "D.nat"
	if !strings.Contains(n.Disassemble(), "[native D.nat]") {
		t.Error("native disassembly wrong")
	}
}
