package classfile

import "fmt"

// Program is a closed world of classes: Hera-JVM resolves the whole
// program at boot (there is no dynamic class loading in this
// reproduction, matching the boot-image + JIT model of the paper).
type Program struct {
	classes []*Class
	byName  map[string]*Class

	// Object is the root class, created automatically.
	Object *Class

	// Resolved state (populated by Resolve).
	resolved    bool
	methods     []*Method // global method table, indexed by Method.ID
	staticSlots int       // total static field slots
	ifaceSlots  int       // global interface-method IDs handed out
}

// NewProgram creates an empty program containing java/lang/Object.
func NewProgram() *Program {
	p := &Program{byName: make(map[string]*Class)}
	p.Object = p.NewClass("java/lang/Object", nil)
	return p
}

// NewClass declares a class with the given superclass (nil means extends
// Object, except for Object itself).
func (p *Program) NewClass(name string, super *Class) *Class {
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("classfile: duplicate class %q", name))
	}
	if super == nil && p.Object != nil {
		super = p.Object
	}
	c := &Class{Name: name, Super: super, program: p, Annotations: map[string]string{}}
	p.classes = append(p.classes, c)
	p.byName[name] = c
	return c
}

// NewInterface declares an interface type.
func (p *Program) NewInterface(name string) *Class {
	c := p.NewClass(name, p.Object)
	c.IsInterface = true
	return c
}

// Lookup returns the class with the given name, or nil.
func (p *Program) Lookup(name string) *Class { return p.byName[name] }

// Classes returns all declared classes in declaration order.
func (p *Program) Classes() []*Class { return p.classes }

// Methods returns the global method table (valid after Resolve).
func (p *Program) Methods() []*Method { return p.methods }

// MethodByID returns the method with the given global ID.
func (p *Program) MethodByID(id int) *Method { return p.methods[id] }

// StaticSlots returns the total number of static field slots (valid
// after Resolve).
func (p *Program) StaticSlots() int { return p.staticSlots }

// Resolved reports whether Resolve has completed.
func (p *Program) Resolved() bool { return p.resolved }

// Class is a declared class or interface.
type Class struct {
	Name        string
	Super       *Class
	Interfaces  []*Class
	IsInterface bool
	// Annotations carries class-level placement hints.
	Annotations map[string]string

	Fields  []*Field  // instance fields declared by this class
	Statics []*Field  // static fields declared by this class
	Methods []*Method // methods declared by this class

	program *Program

	// Resolved state.
	ID            int
	InstanceSlots int       // total instance slots including supers
	VTable        []*Method // virtual dispatch table
	ITable        map[int]*Method
	depth         int // supertype-chain depth, for fast subtype checks
}

// NewField declares an instance field.
func (c *Class) NewField(name string, t TypeKind) *Field {
	return c.addField(name, t, false, false)
}

// NewVolatileField declares a volatile instance field.
func (c *Class) NewVolatileField(name string, t TypeKind) *Field {
	return c.addField(name, t, false, true)
}

// NewStaticField declares a static field.
func (c *Class) NewStaticField(name string, t TypeKind) *Field {
	return c.addField(name, t, true, false)
}

// NewVolatileStaticField declares a volatile static field.
func (c *Class) NewVolatileStaticField(name string, t TypeKind) *Field {
	return c.addField(name, t, true, true)
}

func (c *Class) addField(name string, t TypeKind, static, vol bool) *Field {
	if t == Void {
		panic(fmt.Sprintf("classfile: field %s.%s cannot be void", c.Name, name))
	}
	f := &Field{Name: name, Type: t, Class: c, Static: static, Volatile: vol, Slot: -1}
	if static {
		c.Statics = append(c.Statics, f)
	} else {
		c.Fields = append(c.Fields, f)
	}
	return f
}

// FieldByName finds an instance field by name, searching superclasses.
func (c *Class) FieldByName(name string) *Field {
	for k := c; k != nil; k = k.Super {
		for _, f := range k.Fields {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// MethodFlags modify a method declaration.
type MethodFlags uint8

const (
	// FlagStatic marks a static method (no receiver).
	FlagStatic MethodFlags = 1 << iota
	// FlagNative marks a method implemented by the runtime (registered by
	// tag with the VM's native registry).
	FlagNative
	// FlagSynchronized wraps the body in the receiver's (or class's)
	// monitor.
	FlagSynchronized
	// FlagAbstract marks a bodyless virtual method.
	FlagAbstract
)

// NewMethod declares a method. Params excludes the receiver.
func (c *Class) NewMethod(name string, flags MethodFlags, ret TypeKind, params ...TypeKind) *Method {
	m := &Method{
		Name:        name,
		Class:       c,
		Flags:       flags,
		Ret:         ret,
		Params:      params,
		ID:          -1,
		VSlot:       -1,
		IfaceID:     -1,
		Annotations: map[string]bool{},
	}
	c.Methods = append(c.Methods, m)
	return m
}

// MethodByName finds a declared method by name (first match), searching
// superclasses. Overload resolution is by name + param count.
func (c *Class) MethodByName(name string) *Method {
	for k := c; k != nil; k = k.Super {
		for _, m := range k.Methods {
			if m.Name == name {
				return m
			}
		}
	}
	return nil
}

// AddInterface records that the class implements an interface.
func (c *Class) AddInterface(i *Class) {
	if !i.IsInterface {
		panic(fmt.Sprintf("classfile: %s is not an interface", i.Name))
	}
	c.Interfaces = append(c.Interfaces, i)
}

// IsSubclassOf reports whether c is k or a subtype of k (valid after
// Resolve for interfaces; the class chain works at any time).
func (c *Class) IsSubclassOf(k *Class) bool {
	if k.IsInterface {
		for x := c; x != nil; x = x.Super {
			for _, i := range x.Interfaces {
				if i == k || i.IsSubclassOf(k) {
					return true
				}
			}
		}
		return false
	}
	for x := c; x != nil; x = x.Super {
		if x == k {
			return true
		}
	}
	return false
}

// String returns the class name.
func (c *Class) String() string { return c.Name }

// Field is a declared field.
type Field struct {
	Name     string
	Type     TypeKind
	Class    *Class
	Static   bool
	Volatile bool

	// Slot is the resolved slot index: instance slot (within the object,
	// each 8 bytes) or global static slot.
	Slot int
}

// String returns Class.name.
func (f *Field) String() string { return f.Class.Name + "." + f.Name }

// Method is a declared method.
type Method struct {
	Name   string
	Class  *Class
	Flags  MethodFlags
	Ret    TypeKind
	Params []TypeKind

	// Code is the structured bytecode (nil for native/abstract methods).
	Code []BC
	// Handlers is the exception-handler table, in priority order.
	Handlers []Handler
	// MaxLocals and MaxStack are computed by the assembler.
	MaxLocals int
	MaxStack  int

	// Annotations carries the paper's behaviour hints (§3).
	Annotations map[string]bool

	// NativeTag names the runtime implementation for native methods; by
	// default Class.Name + "." + Name.
	NativeTag string

	// Resolved state.
	ID      int // global method ID
	VSlot   int // vtable slot for virtual methods, else -1
	IfaceID int // global interface-method ID for interface methods, else -1
}

// IsStatic reports whether the method is static.
func (m *Method) IsStatic() bool { return m.Flags&FlagStatic != 0 }

// IsNative reports whether the method is native.
func (m *Method) IsNative() bool { return m.Flags&FlagNative != 0 }

// IsSynchronized reports whether the method is synchronized.
func (m *Method) IsSynchronized() bool { return m.Flags&FlagSynchronized != 0 }

// IsAbstract reports whether the method has no body.
func (m *Method) IsAbstract() bool { return m.Flags&FlagAbstract != 0 }

// IsVirtual reports whether the method dispatches through the vtable.
func (m *Method) IsVirtual() bool { return !m.IsStatic() }

// Annotate attaches a behaviour-hint annotation and returns the method
// for chaining.
func (m *Method) Annotate(name string) *Method {
	m.Annotations[name] = true
	return m
}

// ArgSlots returns the number of local slots consumed by the arguments,
// including the receiver for instance methods. (This VM uses one slot per
// value regardless of width; see DESIGN.md §6.)
func (m *Method) ArgSlots() int {
	n := len(m.Params)
	if !m.IsStatic() {
		n++
	}
	return n
}

// Sig returns a human-readable signature.
func (m *Method) Sig() string {
	s := m.Class.Name + "." + m.Name + "("
	for i, p := range m.Params {
		if i > 0 {
			s += ","
		}
		s += p.String()
	}
	return s + ")" + m.Ret.String()
}

// String returns the signature.
func (m *Method) String() string { return m.Sig() }

// Handler is one exception-table entry: throws from bytecode pcs
// [From, To) whose object is an instance of Type (nil = catch
// everything) transfer control to Target with the operand stack holding
// only the thrown reference.
type Handler struct {
	From, To, Target int
	Type             *Class
}

// sameSignature reports whether two methods match for overriding
// purposes (name + params + return).
func sameSignature(a, b *Method) bool {
	if a.Name != b.Name || a.Ret != b.Ret || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	return true
}
