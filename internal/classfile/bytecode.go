package classfile

import (
	"fmt"

	"herajvm/internal/isa"
)

// BCOp is a Java-bytecode-subset opcode. Instructions are held in
// structured form (operands resolved to pointers, branch targets to
// labels) rather than serialized bytes; the JIT consumes this form.
type BCOp uint8

const (
	BCNop BCOp = iota

	// Constants. ConstI uses A; ConstL/ConstF/ConstD use W (raw bits);
	// ConstStr uses S (interned at boot); ConstNull pushes null.
	BCConstI
	BCConstL
	BCConstF
	BCConstD
	BCConstNull
	BCConstStr

	// Locals. A = local index.
	BCLoadI
	BCLoadL
	BCLoadF
	BCLoadD
	BCLoadRef
	BCStoreI
	BCStoreL
	BCStoreF
	BCStoreD
	BCStoreRef
	// BCInc adds immediate B to int local A (iinc).
	BCInc

	// Operand stack.
	BCPop
	BCPop2
	BCDup
	BCDupX1
	BCDupX2
	BCDup2
	BCSwap

	// Int arithmetic.
	BCAddI
	BCSubI
	BCMulI
	BCDivI
	BCRemI
	BCNegI
	BCShlI
	BCShrI
	BCUShrI
	BCAndI
	BCOrI
	BCXorI

	// Long arithmetic.
	BCAddL
	BCSubL
	BCMulL
	BCDivL
	BCRemL
	BCNegL
	BCShlL
	BCShrL
	BCUShrL
	BCAndL
	BCOrL
	BCXorL
	BCCmpL

	// Float arithmetic.
	BCAddF
	BCSubF
	BCMulF
	BCDivF
	BCRemF
	BCNegF
	BCCmpFL
	BCCmpFG

	// Double arithmetic.
	BCAddD
	BCSubD
	BCMulD
	BCDivD
	BCRemD
	BCNegD
	BCCmpDL
	BCCmpDG

	// Conversions.
	BCI2L
	BCI2F
	BCI2D
	BCL2I
	BCL2F
	BCL2D
	BCF2I
	BCF2L
	BCF2D
	BCD2I
	BCD2L
	BCD2F
	BCI2B
	BCI2C
	BCI2S

	// Branches. Target is the destination label.
	BCGoto
	BCIfEQ
	BCIfNE
	BCIfLT
	BCIfGE
	BCIfGT
	BCIfLE
	BCIfICmpEQ
	BCIfICmpNE
	BCIfICmpLT
	BCIfICmpGE
	BCIfICmpGT
	BCIfICmpLE
	BCIfACmpEQ
	BCIfACmpNE
	BCIfNull
	BCIfNonNull
	// BCTableSwitch: A = low key; Table = targets for low..low+len-1;
	// Target = default.
	BCTableSwitch
	// BCLookupSwitch: Keys = sorted match keys; Table = their targets;
	// Target = default.
	BCLookupSwitch

	// Field access. F = resolved field.
	BCGetField
	BCPutField
	BCGetStatic
	BCPutStatic

	// Arrays. Kind = element kind; C = element class for BCANewArray.
	BCNewArray
	BCANewArray
	BCALoad
	BCAStore
	BCArrayLen

	// Objects and calls. C = class; M = method.
	BCNew
	BCInvokeVirtual
	BCInvokeSpecial
	BCInvokeStatic
	BCInvokeInterface
	BCInstanceOf
	BCCheckCast

	// Returns.
	BCReturn // return a value of the method's return type
	BCReturnVoid

	// Synchronisation and exceptions.
	BCMonitorEnter
	BCMonitorExit
	BCThrow

	// NumBCOps is the number of bytecode opcodes.
	NumBCOps = iota
)

// isaElem aliases the machine-level element kind so assembler call sites
// read naturally (a.NewArray(classfile.ElemInt) via the re-exports below).
type isaElem = isa.ElemKind

// Re-exported element kinds for assembler users.
const (
	ElemBool   = isa.ElemBool
	ElemByte   = isa.ElemByte
	ElemChar   = isa.ElemChar
	ElemShort  = isa.ElemShort
	ElemInt    = isa.ElemInt
	ElemFloat  = isa.ElemFloat
	ElemLong   = isa.ElemLong
	ElemDouble = isa.ElemDouble
	ElemRef    = isa.ElemRef

	refElem = isa.ElemRef
)

// Label marks a bytecode position as a branch target. Labels are created
// and bound by the Assembler.
type Label struct {
	pc    int
	bound bool
	name  string
}

// PC returns the instruction index the label is bound to.
func (l *Label) PC() int { return l.pc }

// BC is one structured bytecode instruction.
type BC struct {
	Op BCOp
	// A and B are small immediates (local index, iinc delta, switch low).
	A, B int32
	// W holds wide immediates: raw bits of long/float/double constants.
	W uint64
	// S is a string literal for BCConstStr.
	S string
	// Target is the branch target (or switch default).
	Target *Label
	// Table holds switch targets.
	Table []*Label
	// Keys holds lookupswitch match keys.
	Keys []int32
	// F, M, C are resolved member references.
	F *Field
	M *Method
	C *Class
	// Kind is the array element kind for array ops.
	Kind isa.ElemKind
}

var bcNames = [NumBCOps]string{
	BCNop: "nop", BCConstI: "iconst", BCConstL: "lconst", BCConstF: "fconst",
	BCConstD: "dconst", BCConstNull: "aconst_null", BCConstStr: "ldc_str",
	BCLoadI: "iload", BCLoadL: "lload", BCLoadF: "fload", BCLoadD: "dload",
	BCLoadRef: "aload", BCStoreI: "istore", BCStoreL: "lstore",
	BCStoreF: "fstore", BCStoreD: "dstore", BCStoreRef: "astore",
	BCInc: "iinc",
	BCPop: "pop", BCPop2: "pop2", BCDup: "dup", BCDupX1: "dup_x1",
	BCDupX2: "dup_x2", BCDup2: "dup2", BCSwap: "swap",
	BCAddI: "iadd", BCSubI: "isub", BCMulI: "imul", BCDivI: "idiv",
	BCRemI: "irem", BCNegI: "ineg", BCShlI: "ishl", BCShrI: "ishr",
	BCUShrI: "iushr", BCAndI: "iand", BCOrI: "ior", BCXorI: "ixor",
	BCAddL: "ladd", BCSubL: "lsub", BCMulL: "lmul", BCDivL: "ldiv",
	BCRemL: "lrem", BCNegL: "lneg", BCShlL: "lshl", BCShrL: "lshr",
	BCUShrL: "lushr", BCAndL: "land", BCOrL: "lor", BCXorL: "lxor",
	BCCmpL: "lcmp",
	BCAddF: "fadd", BCSubF: "fsub", BCMulF: "fmul", BCDivF: "fdiv",
	BCRemF: "frem", BCNegF: "fneg", BCCmpFL: "fcmpl", BCCmpFG: "fcmpg",
	BCAddD: "dadd", BCSubD: "dsub", BCMulD: "dmul", BCDivD: "ddiv",
	BCRemD: "drem", BCNegD: "dneg", BCCmpDL: "dcmpl", BCCmpDG: "dcmpg",
	BCI2L: "i2l", BCI2F: "i2f", BCI2D: "i2d", BCL2I: "l2i", BCL2F: "l2f",
	BCL2D: "l2d", BCF2I: "f2i", BCF2L: "f2l", BCF2D: "f2d", BCD2I: "d2i",
	BCD2L: "d2l", BCD2F: "d2f", BCI2B: "i2b", BCI2C: "i2c", BCI2S: "i2s",
	BCGoto: "goto", BCIfEQ: "ifeq", BCIfNE: "ifne", BCIfLT: "iflt",
	BCIfGE: "ifge", BCIfGT: "ifgt", BCIfLE: "ifle",
	BCIfICmpEQ: "if_icmpeq", BCIfICmpNE: "if_icmpne", BCIfICmpLT: "if_icmplt",
	BCIfICmpGE: "if_icmpge", BCIfICmpGT: "if_icmpgt", BCIfICmpLE: "if_icmple",
	BCIfACmpEQ: "if_acmpeq", BCIfACmpNE: "if_acmpne", BCIfNull: "ifnull",
	BCIfNonNull: "ifnonnull", BCTableSwitch: "tableswitch",
	BCLookupSwitch: "lookupswitch",
	BCGetField:     "getfield", BCPutField: "putfield",
	BCGetStatic: "getstatic", BCPutStatic: "putstatic",
	BCNewArray: "newarray", BCANewArray: "anewarray", BCALoad: "arrload",
	BCAStore: "arrstore", BCArrayLen: "arraylength",
	BCNew: "new", BCInvokeVirtual: "invokevirtual",
	BCInvokeSpecial: "invokespecial", BCInvokeStatic: "invokestatic",
	BCInvokeInterface: "invokeinterface", BCInstanceOf: "instanceof",
	BCCheckCast: "checkcast",
	BCReturn:    "return_value", BCReturnVoid: "return",
	BCMonitorEnter: "monitorenter", BCMonitorExit: "monitorexit",
	BCThrow: "athrow",
}

// String returns the opcode mnemonic.
func (o BCOp) String() string {
	if int(o) < NumBCOps && bcNames[o] != "" {
		return bcNames[o]
	}
	return fmt.Sprintf("bc%d", o)
}

// IsBranch reports whether the opcode transfers control to Target.
func (o BCOp) IsBranch() bool {
	return (o >= BCGoto && o <= BCLookupSwitch)
}

// IsConditional reports whether the opcode is a two-way branch.
func (o BCOp) IsConditional() bool {
	return o >= BCIfEQ && o <= BCIfNonNull
}

// EndsBlock reports whether control never falls through this opcode.
func (o BCOp) EndsBlock() bool {
	switch o {
	case BCGoto, BCTableSwitch, BCLookupSwitch, BCReturn, BCReturnVoid, BCThrow:
		return true
	}
	return false
}
