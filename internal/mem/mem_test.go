package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteWidths(t *testing.T) {
	m := NewMain(1 << 16)
	m.Write8(0x100, 0xab)
	if got := m.Read8(0x100); got != 0xab {
		t.Errorf("Read8: got %#x", got)
	}
	m.Write16(0x200, 0xbeef)
	if got := m.Read16(0x200); got != 0xbeef {
		t.Errorf("Read16: got %#x", got)
	}
	m.Write32(0x300, 0xdeadbeef)
	if got := m.Read32(0x300); got != 0xdeadbeef {
		t.Errorf("Read32: got %#x", got)
	}
	m.Write64(0x400, 0x0123456789abcdef)
	if got := m.Read64(0x400); got != 0x0123456789abcdef {
		t.Errorf("Read64: got %#x", got)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := NewMain(64)
	m.Write32(16, 0x04030201)
	for i, want := range []uint8{1, 2, 3, 4} {
		if got := m.Read8(uint32(16 + i)); got != want {
			t.Errorf("byte %d: got %d want %d", i, got, want)
		}
	}
}

func TestReadWriteBytes(t *testing.T) {
	m := NewMain(1 << 12)
	src := []byte("hera-jvm block transfer")
	m.WriteBytes(128, src)
	dst := make([]byte, len(src))
	m.ReadBytes(128, dst)
	if string(dst) != string(src) {
		t.Errorf("round trip: got %q", dst)
	}
	m.Zero(128, uint32(len(src)))
	m.ReadBytes(128, dst)
	for i, b := range dst {
		if b != 0 {
			t.Errorf("Zero left byte %d = %d", i, b)
		}
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	m := NewMain(64)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds access")
		}
	}()
	m.Read64(60) // crosses the end
}

func TestWord64RoundTripProperty(t *testing.T) {
	m := NewMain(1 << 16)
	f := func(off uint16, v uint64) bool {
		addr := uint32(off) &^ 7
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionAllocAlignment(t *testing.T) {
	r := NewRegion("code", 0x1000, 0x1000)
	a1 := r.MustAlloc(10, 8)
	if a1%8 != 0 {
		t.Errorf("misaligned: %#x", a1)
	}
	a2 := r.MustAlloc(1, 16)
	if a2%16 != 0 || a2 < a1+10 {
		t.Errorf("second alloc misplaced: %#x after %#x", a2, a1)
	}
	if !r.Contains(a1) || r.Contains(0x2000) {
		t.Error("Contains is wrong")
	}
}

func TestRegionExhaustion(t *testing.T) {
	r := NewRegion("tiny", 0, 32)
	if _, err := r.Alloc(33, 1); err == nil {
		t.Error("expected exhaustion error")
	}
	r.MustAlloc(32, 1)
	if r.Free() != 0 {
		t.Errorf("Free: got %d want 0", r.Free())
	}
	if _, err := r.Alloc(1, 1); err == nil {
		t.Error("expected exhaustion error after fill")
	}
	r.Reset()
	if r.Used() != 0 {
		t.Errorf("Used after Reset: got %d", r.Used())
	}
}

func TestRegionAllocDisjointProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		r := NewRegion("p", 64, 1<<20)
		type span struct{ a, b uint32 }
		var spans []span
		for _, s := range sizes {
			n := uint32(s)%256 + 1
			a, err := r.Alloc(n, 8)
			if err != nil {
				return true // exhaustion is fine
			}
			for _, sp := range spans {
				if a < sp.b && sp.a < a+n {
					return false // overlap
				}
			}
			spans = append(spans, span{a, a + n})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLayoutCarving(t *testing.T) {
	l := NewLayout(1<<20, 4096)
	boot, err := l.Carve("boot", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if boot.Start != 4096 {
		t.Errorf("boot starts at %#x, want %#x", boot.Start, 4096)
	}
	code, err := l.Carve("code", 1<<17)
	if err != nil {
		t.Fatal(err)
	}
	if code.Start != boot.End {
		t.Errorf("code starts at %#x, want %#x", code.Start, boot.End)
	}
	heap := l.CarveRest("heap")
	if heap.End != 1<<20 {
		t.Errorf("heap ends at %#x, want %#x", heap.End, 1<<20)
	}
	if _, err := l.Carve("more", 1); err == nil {
		t.Error("expected overflow after CarveRest")
	}
	if len(l.Regions()) != 3 {
		t.Errorf("got %d regions", len(l.Regions()))
	}
}

func TestLayoutNullReserved(t *testing.T) {
	l := NewLayout(1<<16, 0)
	r, err := l.Carve("first", 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start == 0 {
		t.Error("layout handed out address 0 (null)")
	}
}
