// Package mem models the Cell machine's main memory: a flat, byte
// addressed, little-endian store. Every heap object, static field, TIB
// and compiled-code block in the simulated machine occupies real bytes
// here, so all data movement measured by the experiments (SPE DMA
// transfers, PPE cache fills) corresponds to actual byte traffic.
//
// Address 0 is reserved as the null reference and is never handed out.
package mem

import (
	"encoding/binary"
	"fmt"
)

// Addr is a simulated 32-bit physical address. The PS3's Cell exposes
// 256 MB of XDR memory; the default configuration here is smaller but the
// address arithmetic is identical.
type Addr = uint32

// Main is the machine's main memory.
type Main struct {
	data []byte

	// Reads and Writes count accessor calls (not bytes) for diagnostics.
	Reads, Writes uint64
}

// NewMain allocates a main memory of the given size in bytes.
func NewMain(size uint32) *Main {
	return &Main{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Main) Size() uint32 { return uint32(len(m.data)) }

// Bytes returns the raw backing store. DMA engines use it to copy blocks
// without per-byte accounting; callers must stay in bounds.
func (m *Main) Bytes() []byte { return m.data }

func (m *Main) check(addr Addr, n uint32) {
	if uint64(addr)+uint64(n) > uint64(len(m.data)) {
		panic(fmt.Sprintf("mem: access [%#x,%#x) beyond end of memory (%#x)",
			addr, uint64(addr)+uint64(n), len(m.data)))
	}
}

// Read8 loads one byte.
func (m *Main) Read8(addr Addr) uint8 {
	m.check(addr, 1)
	m.Reads++
	return m.data[addr]
}

// Read16 loads a little-endian 16-bit value.
func (m *Main) Read16(addr Addr) uint16 {
	m.check(addr, 2)
	m.Reads++
	return binary.LittleEndian.Uint16(m.data[addr:])
}

// Read32 loads a little-endian 32-bit value.
func (m *Main) Read32(addr Addr) uint32 {
	m.check(addr, 4)
	m.Reads++
	return binary.LittleEndian.Uint32(m.data[addr:])
}

// Read64 loads a little-endian 64-bit value.
func (m *Main) Read64(addr Addr) uint64 {
	m.check(addr, 8)
	m.Reads++
	return binary.LittleEndian.Uint64(m.data[addr:])
}

// Write8 stores one byte.
func (m *Main) Write8(addr Addr, v uint8) {
	m.check(addr, 1)
	m.Writes++
	m.data[addr] = v
}

// Write16 stores a little-endian 16-bit value.
func (m *Main) Write16(addr Addr, v uint16) {
	m.check(addr, 2)
	m.Writes++
	binary.LittleEndian.PutUint16(m.data[addr:], v)
}

// Write32 stores a little-endian 32-bit value.
func (m *Main) Write32(addr Addr, v uint32) {
	m.check(addr, 4)
	m.Writes++
	binary.LittleEndian.PutUint32(m.data[addr:], v)
}

// Write64 stores a little-endian 64-bit value.
func (m *Main) Write64(addr Addr, v uint64) {
	m.check(addr, 8)
	m.Writes++
	binary.LittleEndian.PutUint64(m.data[addr:], v)
}

// ReadBytes copies n bytes starting at addr into dst.
func (m *Main) ReadBytes(addr Addr, dst []byte) {
	m.check(addr, uint32(len(dst)))
	m.Reads++
	copy(dst, m.data[addr:])
}

// WriteBytes copies src into memory starting at addr.
func (m *Main) WriteBytes(addr Addr, src []byte) {
	m.check(addr, uint32(len(src)))
	m.Writes++
	copy(m.data[addr:], src)
}

// Zero clears n bytes starting at addr.
func (m *Main) Zero(addr Addr, n uint32) {
	m.check(addr, n)
	m.Writes++
	for i := range m.data[addr : addr+n] {
		m.data[addr+uint32(i)] = 0
	}
}
