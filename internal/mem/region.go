package mem

import "fmt"

// Region is a contiguous slice of the main-memory address space with a
// bump allocator. The VM carves main memory into regions at boot: a boot
// area (statics, TOC/TIB metadata), a compiled-code area, and the Java
// heap (which layers a free list on top; see internal/vm).
type Region struct {
	Name  string
	Start Addr
	End   Addr // exclusive
	next  Addr
}

// NewRegion creates a region spanning [start, start+size).
func NewRegion(name string, start Addr, size uint32) *Region {
	return &Region{Name: name, Start: start, End: start + size, next: start}
}

// Alloc reserves n bytes aligned to align (a power of two) and returns
// the base address, or an error if the region is exhausted.
func (r *Region) Alloc(n, align uint32) (Addr, error) {
	if align == 0 {
		align = 1
	}
	base := (r.next + align - 1) &^ (align - 1)
	if uint64(base)+uint64(n) > uint64(r.End) {
		return 0, fmt.Errorf("mem: region %q exhausted: need %d bytes, %d free",
			r.Name, n, r.End-r.next)
	}
	r.next = base + n
	return base, nil
}

// MustAlloc is Alloc but panics on exhaustion; used for boot-time
// allocations whose failure is a configuration error.
func (r *Region) MustAlloc(n, align uint32) Addr {
	a, err := r.Alloc(n, align)
	if err != nil {
		panic(err)
	}
	return a
}

// Used returns the number of allocated bytes.
func (r *Region) Used() uint32 { return r.next - r.Start }

// Free returns the number of unallocated bytes.
func (r *Region) Free() uint32 { return r.End - r.next }

// Reset returns the region to empty. Used by tests.
func (r *Region) Reset() { r.next = r.Start }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr Addr) bool { return addr >= r.Start && addr < r.End }

// Layout carves an address space into named regions. It reserves the
// first page so address 0 (null) is never valid.
type Layout struct {
	size    uint32
	next    Addr
	regions []*Region
}

// NewLayout begins a layout over a memory of the given size, reserving
// the first reserve bytes (minimum 16, so null stays invalid).
func NewLayout(size uint32, reserve uint32) *Layout {
	if reserve < 16 {
		reserve = 16
	}
	return &Layout{size: size, next: reserve}
}

// Carve reserves size bytes as a new named region.
func (l *Layout) Carve(name string, size uint32) (*Region, error) {
	if uint64(l.next)+uint64(size) > uint64(l.size) {
		return nil, fmt.Errorf("mem: layout overflow carving %q (%d bytes, %d free)",
			name, size, l.size-l.next)
	}
	r := NewRegion(name, l.next, size)
	l.next += size
	l.regions = append(l.regions, r)
	return r, nil
}

// CarveRest turns all remaining space into a final region.
func (l *Layout) CarveRest(name string) *Region {
	r := NewRegion(name, l.next, l.size-l.next)
	l.next = l.size
	l.regions = append(l.regions, r)
	return r
}

// Regions returns the carved regions in address order.
func (l *Layout) Regions() []*Region { return l.regions }
