package cell

// BranchPredictor models the PPE's dynamic branch predictor as a table of
// 2-bit saturating counters indexed by a hash of the branch site. The SPE
// has no predictor: its cost table charges a fixed penalty for taken
// branches instead (branches are statically hinted fall-through by the
// baseline compiler).
type BranchPredictor struct {
	counters []uint8

	Predictions, Mispredicts uint64
}

// NewBranchPredictor returns a predictor with 2^bits entries.
func NewBranchPredictor(bits uint) *BranchPredictor {
	return &BranchPredictor{counters: make([]uint8, 1<<bits)}
}

// Predict consumes one branch outcome at the given site key and reports
// whether the predictor got it right, updating its state.
func (b *BranchPredictor) Predict(site uint32, taken bool) bool {
	idx := (site ^ site>>7 ^ site>>15) & uint32(len(b.counters)-1)
	c := b.counters[idx]
	predictTaken := c >= 2
	if taken && c < 3 {
		b.counters[idx] = c + 1
	} else if !taken && c > 0 {
		b.counters[idx] = c - 1
	}
	b.Predictions++
	if predictTaken != taken {
		b.Mispredicts++
		return false
	}
	return true
}

// Accuracy returns the fraction of correct predictions.
func (b *BranchPredictor) Accuracy() float64 {
	if b.Predictions == 0 {
		return 1
	}
	return 1 - float64(b.Mispredicts)/float64(b.Predictions)
}
