package cell

import (
	"fmt"
	"strconv"
	"strings"

	"herajvm/internal/isa"
)

// CoreGroup declares a run of identical cores in a machine topology.
type CoreGroup struct {
	Kind  isa.CoreKind
	Count int
}

// Topology declares a machine's core mix as an ordered list of groups.
// Cores are instantiated in group order; within a kind they are numbered
// 0..N-1 across all groups of that kind. The PS3 shape is
// Topology{{PPE, 1}, {SPE, 6}}, but any mix with at least one PPE is a
// valid machine: multi-PPE hosts, PPE-only machines, SPE-heavy 1+12
// accelerators, and interleaved layouts all construct the same way.
type Topology []CoreGroup

// PS3Topology returns the classic Cell shape: one PPE plus numSPEs SPEs
// (numSPEs may be 0 for a PPE-only machine).
func PS3Topology(numSPEs int) Topology {
	t := Topology{{Kind: isa.PPE, Count: 1}}
	if numSPEs != 0 {
		t = append(t, CoreGroup{Kind: isa.SPE, Count: numSPEs})
	}
	return t
}

// ParseTopology parses a topology spec like "ppe:1,spe:6" or "ppe:2".
// Kind names are case-insensitive; a group without ":count" means one
// core ("ppe,spe" is 1 PPE + 1 SPE). Groups of the same kind may repeat.
func ParseTopology(s string) (Topology, error) {
	var t Topology
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, countStr, hasCount := strings.Cut(part, ":")
		kind, err := isa.ParseCoreKind(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("cell: topology %q: %w", s, err)
		}
		count := 1
		if hasCount {
			count, err = strconv.Atoi(strings.TrimSpace(countStr))
			if err != nil {
				return nil, fmt.Errorf("cell: topology %q: bad count %q", s, countStr)
			}
		}
		if count == 0 {
			// A zero-count group contributes no cores and no core
			// indices: drop it here so the parsed value is canonical —
			// String() already skips empty groups, and parse(String())
			// must be a fixpoint.
			continue
		}
		t = append(t, CoreGroup{Kind: kind, Count: count})
	}
	if len(t) == 0 {
		return nil, fmt.Errorf("cell: empty topology %q", s)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseTopologyList parses a semicolon-separated list of topology
// specs, e.g. "ppe:1,spe:6;ppe:1,spe:4,vpu:2" (the herabench -topology
// flag syntax). Empty list entries are skipped; at least one topology
// must remain.
func ParseTopologyList(s string) ([]Topology, error) {
	var out []Topology
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		t, err := ParseTopology(part)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cell: empty topology list %q", s)
	}
	return out, nil
}

// Validate checks that the topology describes a bootable machine: no
// negative group, at least one core in total, and at least one core of
// a service-hosting kind (the OS-capable core the GC and syscall
// service run on — a PPE in the Cell's topologies).
func (t Topology) Validate() error {
	if len(t) == 0 {
		return fmt.Errorf("cell: empty topology (want e.g. %q)", PS3Topology(6))
	}
	total, service := 0, 0
	for _, g := range t {
		if g.Count < 0 {
			return fmt.Errorf("cell: negative core count %d for %s", g.Count, g.Kind)
		}
		total += g.Count
		if g.Kind.HostsServices() {
			service += g.Count
		}
	}
	if total == 0 {
		return fmt.Errorf("cell: topology %q has no cores", t)
	}
	if service == 0 {
		return fmt.Errorf("cell: topology %q has no service-hosting core (the GC and syscall service need one, e.g. a PPE)", t)
	}
	return nil
}

// DefaultWorkers returns the conventional benchmark thread count for
// the machine: one worker per core that hosts workload threads —
// accelerator cores (kinds that cannot host the runtime services) when
// the machine has them, service cores otherwise.
func (t Topology) DefaultWorkers() int {
	accel, service := 0, 0
	for _, g := range t {
		if g.Kind.HostsServices() {
			service += g.Count
		} else {
			accel += g.Count
		}
	}
	if accel > 0 {
		return accel
	}
	return service
}

// Count returns the number of cores of the given kind.
func (t Topology) Count(kind isa.CoreKind) int {
	n := 0
	for _, g := range t {
		if g.Kind == kind {
			n += g.Count
		}
	}
	return n
}

// String renders the topology in the parseable flag syntax, e.g.
// "ppe:1,spe:6". Groups keep their declaration order (dropping only
// empty ones) so the string round-trips through ParseTopology to the
// same machine: core indices — and with them the scheduler's
// deterministic tie-breaking — follow topology order, so an
// interleaved "spe:3,ppe:1,spe:3" is not the same machine as
// "ppe:1,spe:6".
func (t Topology) String() string {
	var parts []string
	for _, g := range t {
		if g.Count > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", strings.ToLower(g.Kind.String()), g.Count))
		}
	}
	return strings.Join(parts, ",")
}

// Describe renders the topology for humans, e.g. "1 PPE + 6 SPEs".
func (t Topology) Describe() string {
	var parts []string
	for _, k := range isa.CoreKinds() {
		n := t.Count(k)
		if n == 0 {
			continue
		}
		plural := ""
		if n != 1 {
			plural = "s"
		}
		parts = append(parts, fmt.Sprintf("%d %s%s", n, k, plural))
	}
	return strings.Join(parts, " + ")
}
