package cell

import (
	"testing"
	"testing/quick"

	"herajvm/internal/isa"
	"herajvm/internal/mem"
)

func TestEIBSingleTransfer(t *testing.T) {
	e := NewEIB(EIBConfig{Channels: 1, BytesPerCycle: 8, ArbCycles: 20})
	done := e.Transfer(100, 1024)
	want := Clock(100 + 20 + 1024/8)
	if done != want {
		t.Errorf("completion: got %d want %d", done, want)
	}
	if e.Transfers != 1 || e.Bytes != 1024 {
		t.Errorf("stats: %d transfers %d bytes", e.Transfers, e.Bytes)
	}
}

func TestEIBQueuesWhenBusy(t *testing.T) {
	e := NewEIB(EIBConfig{Channels: 1, BytesPerCycle: 8, ArbCycles: 0})
	first := e.Transfer(0, 800) // busy until 100
	if first != 100 {
		t.Fatalf("first done at %d", first)
	}
	second := e.Transfer(10, 80) // must wait for the channel
	if second != 110 {
		t.Errorf("second done at %d, want 110 (queued behind first)", second)
	}
	if e.WaitCycles != 90 {
		t.Errorf("wait cycles: got %d want 90", e.WaitCycles)
	}
}

func TestEIBParallelChannels(t *testing.T) {
	e := NewEIB(EIBConfig{Channels: 2, BytesPerCycle: 8, ArbCycles: 0})
	a := e.Transfer(0, 800)
	b := e.Transfer(0, 800)
	if a != 100 || b != 100 {
		t.Errorf("two channels should run in parallel: %d, %d", a, b)
	}
	c := e.Transfer(0, 800) // both busy now
	if c != 200 {
		t.Errorf("third transfer should queue: done at %d want 200", c)
	}
}

func TestEIBCompletionMonotonicProperty(t *testing.T) {
	// For a fixed request time, a transfer issued later (or equal) on the
	// same bus never completes before one issued earlier.
	f := func(sizes []uint16) bool {
		e := NewEIB(DefaultEIBConfig())
		now := Clock(0)
		var last Clock
		for _, s := range sizes {
			done := e.Transfer(now, uint32(s)+1)
			if done < now {
				return false
			}
			if done < last && false { // channels may finish out of order; only per-request sanity
				return false
			}
			last = done
			now += 5
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMFCMovesRealBytes(t *testing.T) {
	main := mem.NewMain(1 << 16)
	ls := make([]byte, 4096)
	e := NewEIB(DefaultEIBConfig())
	mfc := NewMFC(DefaultMFCConfig(), e, main, ls)

	main.WriteBytes(0x1000, []byte("cached object payload"))
	done := mfc.DMA(0, DMAGet, 0x1000, 64, 21)
	if done == 0 {
		t.Fatal("DMA returned zero completion time")
	}
	if string(ls[64:64+21]) != "cached object payload" {
		t.Errorf("local store contents wrong: %q", ls[64:64+21])
	}

	copy(ls[128:], "dirty write-back")
	mfc.DMA(done, DMAPut, 0x2000, 128, 16)
	buf := make([]byte, 16)
	main.ReadBytes(0x2000, buf)
	if string(buf) != "dirty write-back" {
		t.Errorf("main memory contents wrong: %q", buf)
	}
}

func TestMFCSmallTransferRoundedUp(t *testing.T) {
	main := mem.NewMain(1 << 16)
	ls := make([]byte, 1024)
	e := NewEIB(EIBConfig{Channels: 1, BytesPerCycle: 8, ArbCycles: 0})
	mfc := NewMFC(MFCConfig{SetupCycles: 40, MinTransfer: 128}, e, main, ls)
	done := mfc.DMA(0, DMAGet, 0, 0, 4)
	// setup 40 + 128/8 = 56: small transfers pay near-fixed cost, the
	// "much less efficient" small-transfer behaviour of §2.
	if done != 56 {
		t.Errorf("small DMA completion: got %d want 56", done)
	}
	if mfc.Bytes != 128 {
		t.Errorf("carried bytes: got %d want 128 (rounded)", mfc.Bytes)
	}
}

func TestHWCacheHitMiss(t *testing.T) {
	c := NewHWCache(HWCacheConfig{SizeBytes: 1 << 12, LineBytes: 64, Ways: 2, HitCycles: 4})
	if c.Access(0x100) {
		t.Error("cold access should miss")
	}
	if !c.Access(0x100) || !c.Access(0x13f&^63) {
		t.Error("warm access should hit")
	}
}

func TestHWCacheLRUEviction(t *testing.T) {
	// 2 ways, 64-byte lines, 4 sets -> addresses 0, 256, 512 map to set 0.
	c := NewHWCache(HWCacheConfig{SizeBytes: 512, LineBytes: 64, Ways: 2, HitCycles: 1})
	c.Access(0)
	c.Access(256)
	c.Access(0)   // 0 becomes MRU
	c.Access(512) // evicts 256 (LRU)
	if !c.Access(0) {
		t.Error("0 should still be resident")
	}
	if c.Access(256) {
		t.Error("256 should have been evicted")
	}
}

func TestPPEMemLevels(t *testing.T) {
	p := NewPPEMem(DefaultPPEMemConfig())
	cyc, l1 := p.Access(0x4000, 4)
	if l1 || cyc != 200 {
		t.Errorf("cold access: cycles=%d l1=%v, want 200,false", cyc, l1)
	}
	cyc, l1 = p.Access(0x4000, 4)
	if !l1 || cyc != 4 {
		t.Errorf("warm access: cycles=%d l1=%v, want 4,true", cyc, l1)
	}
	// Straddling two lines costs two probes.
	cyc, _ = p.Access(0x4000+126, 4)
	if cyc != 4+200 {
		t.Errorf("straddle: cycles=%d want 204", cyc)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	bp := NewBranchPredictor(10)
	// A loop backedge taken 100 times: after warm-up it should predict.
	missesLate := 0
	for i := 0; i < 100; i++ {
		ok := bp.Predict(0x40, true)
		if i >= 4 && !ok {
			missesLate++
		}
	}
	if missesLate != 0 {
		t.Errorf("predictor failed to learn a monotone branch: %d late misses", missesLate)
	}
	if bp.Accuracy() < 0.9 {
		t.Errorf("accuracy %f too low", bp.Accuracy())
	}
}

func TestMachineConstruction(t *testing.T) {
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ppe := m.CoresOf(isa.PPE)[0]
	if ppe.Kind != isa.PPE || ppe.Mem == nil || ppe.BP == nil {
		t.Error("PPE misconfigured")
	}
	if m.NumOf(isa.SPE) != 6 {
		t.Fatalf("want 6 SPEs, got %d", m.NumOf(isa.SPE))
	}
	for i, s := range m.CoresOf(isa.SPE) {
		if s.Kind != isa.SPE || s.ID != i {
			t.Errorf("SPE %d misconfigured", i)
		}
		if len(s.LS) != 256<<10 {
			t.Errorf("SPE %d local store = %d", i, len(s.LS))
		}
		if s.MFC == nil {
			t.Errorf("SPE %d has no MFC", i)
		}
	}
	if len(m.Cores()) != 7 || m.NumCores() != 7 {
		t.Errorf("Cores() returned %d", len(m.Cores()))
	}
	for i, c := range m.Cores() {
		if c.Index != i {
			t.Errorf("core %d has global index %d", i, c.Index)
		}
	}
	if !m.HasKind(isa.PPE) || !m.HasKind(isa.SPE) {
		t.Error("HasKind misreports the default topology")
	}
	if m.Describe() != "1 PPE + 6 SPEs" {
		t.Errorf("Describe() = %q", m.Describe())
	}
}

func TestMachineAsymmetricTopology(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = Topology{{Kind: isa.PPE, Count: 2}, {Kind: isa.SPE, Count: 2}}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumOf(isa.PPE) != 2 || m.NumOf(isa.SPE) != 2 {
		t.Fatalf("core counts: %d PPE, %d SPE", m.NumOf(isa.PPE), m.NumOf(isa.SPE))
	}
	for i, p := range m.CoresOf(isa.PPE) {
		if p.ID != i || p.Mem == nil || p.BP == nil || p.MFC != nil {
			t.Errorf("PPE %d misconfigured", i)
		}
		if m.CoreAt(isa.PPE, i) != p {
			t.Errorf("CoreAt(PPE, %d) mismatch", i)
		}
	}
	for i, s := range m.CoresOf(isa.SPE) {
		if s.ID != i || s.MFC == nil || s.Mem != nil {
			t.Errorf("SPE %d misconfigured", i)
		}
	}
	if m.CoresOf(isa.PPE)[1].String() != "PPE1" || m.CoresOf(isa.SPE)[1].String() != "SPE1" {
		t.Errorf("core names: %s, %s", m.CoresOf(isa.PPE)[1], m.CoresOf(isa.SPE)[1])
	}
	if m.Describe() != "2 PPEs + 2 SPEs" {
		t.Errorf("Describe() = %q", m.Describe())
	}
}

func TestMachineValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Topology = PS3Topology(-1)
	if _, err := NewMachine(bad); err == nil {
		t.Error("negative SPE count should fail")
	}
	bad = DefaultConfig()
	bad.Topology = nil
	if _, err := NewMachine(bad); err == nil {
		t.Error("empty topology should fail")
	}
	bad = DefaultConfig()
	bad.Topology = Topology{{Kind: isa.SPE, Count: 4}}
	if _, err := NewMachine(bad); err == nil {
		t.Error("PPE-less topology should fail (GC and syscalls need one)")
	}
	bad = DefaultConfig()
	bad.MainMemory = 1024
	if _, err := NewMachine(bad); err == nil {
		t.Error("tiny memory should fail")
	}
	bad = DefaultConfig()
	bad.LocalStore = 1024
	if _, err := NewMachine(bad); err == nil {
		t.Error("tiny local store should fail")
	}
}

func TestParseTopology(t *testing.T) {
	cases := map[string]string{
		"ppe:1,spe:6": "ppe:1,spe:6",
		"PPE:2":       "ppe:2",
		"ppe, spe":    "ppe:1,spe:1",
		// Interleaved groups round-trip in declaration order: core
		// indices follow topology order, so canonicalizing would
		// describe a different machine.
		"spe:3,ppe:1,spe:3": "spe:3,ppe:1,spe:3",
	}
	for in, want := range cases {
		topo, err := ParseTopology(in)
		if err != nil {
			t.Errorf("ParseTopology(%q): %v", in, err)
			continue
		}
		if topo.String() != want {
			t.Errorf("ParseTopology(%q) = %q, want %q", in, topo, want)
		}
	}
	for _, in := range []string{"", "qpu:4", "ppe:x", "spe:6", "ppe:-1"} {
		if _, err := ParseTopology(in); err == nil {
			t.Errorf("ParseTopology(%q) should fail", in)
		}
	}
}

func TestCoreCharging(t *testing.T) {
	c := &Core{Kind: isa.SPE}
	c.Charge(isa.ClassFloat, 10)
	c.Charge(isa.ClassMainMem, 5)
	c.ChargeIdle(3)
	if c.Now != 18 {
		t.Errorf("clock: got %d want 18", c.Now)
	}
	if c.Stats.Cycles[isa.ClassFloat] != 10 || c.Stats.Idle != 3 {
		t.Error("stats not charged correctly")
	}
	c.AdvanceTo(10) // must not go backwards
	if c.Now != 18 {
		t.Errorf("AdvanceTo moved clock backwards to %d", c.Now)
	}
	c.AdvanceTo(25)
	if c.Now != 25 || c.Stats.Idle != 10 {
		t.Errorf("AdvanceTo: now=%d idle=%d", c.Now, c.Stats.Idle)
	}
}

func TestMaxClock(t *testing.T) {
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.CoreAt(isa.SPE, 3).Now = 1000
	m.CoreAt(isa.PPE, 0).Now = 500
	if m.MaxClock() != 1000 {
		t.Errorf("MaxClock: got %d", m.MaxClock())
	}
}

// Property: the interval-timeline EIB never books overlapping intervals
// on a channel, and a transfer never completes before its request plus
// its minimum duration — even with heavily skewed request clocks, the
// situation that broke the simpler watermark design.
func TestEIBIntervalInvariantProperty(t *testing.T) {
	f := func(reqs []uint32) bool {
		e := NewEIB(EIBConfig{Channels: 2, BytesPerCycle: 8, ArbCycles: 10})
		for i, r := range reqs {
			now := Clock(r % 50000) // deliberately non-monotone request times
			n := uint32(i%2048) + 1
			done := e.Transfer(now, n)
			minDur := Clock(10) + Clock(float64(n)/8)
			if done < now+minDur {
				return false
			}
		}
		for _, tl := range e.channels {
			for i := 1; i < len(tl); i++ {
				if tl[i].start < tl[i-1].end {
					return false // overlap
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// A lagging requester must be able to use bus time that is still free
// before reservations made at later timestamps (no phantom queueing).
func TestEIBNoPhantomWaitForLaggingCore(t *testing.T) {
	e := NewEIB(EIBConfig{Channels: 1, BytesPerCycle: 8, ArbCycles: 0})
	// A future-time reservation far ahead.
	e.Transfer(100000, 800) // occupies [100000, 100100)
	// A lagging core asks at t=0 for a short transfer: plenty of free bus
	// before the reservation.
	done := e.Transfer(0, 80)
	if done != 10 {
		t.Errorf("lagging transfer should run immediately: done=%d", done)
	}
	if e.WaitCycles != 0 {
		t.Errorf("phantom wait recorded: %d", e.WaitCycles)
	}
}
