package cell

import (
	"fmt"

	"herajvm/internal/mem"
)

// DMADir is the direction of a DMA transfer from the SPE's perspective.
type DMADir uint8

const (
	// DMAGet moves main memory into the local store (mfc_get).
	DMAGet DMADir = iota
	// DMAPut moves local store out to main memory (mfc_put).
	DMAPut
)

// MFCConfig calibrates a Memory Flow Controller.
type MFCConfig struct {
	// SetupCycles is the per-command cost of constructing and enqueuing
	// one DMA command from SPE code plus the blocking completion wait
	// (channel read). The paper reports "about 30-50 cycles, not
	// including the data transfer itself" (§3.2.1) for the enqueue alone;
	// the full blocking round trip modelled here also covers the tag
	// status wait.
	SetupCycles uint32
	// MinTransfer is the smallest unit the bus actually carries; small
	// requests are rounded up (the real MFC transfers at least one
	// 128-byte cache line efficiently and pads small transfers).
	MinTransfer uint32
}

// DefaultMFCConfig returns the calibrated MFC parameters.
func DefaultMFCConfig() MFCConfig {
	return MFCConfig{SetupCycles: 150, MinTransfer: 128}
}

// MFC is the Memory Flow Controller attached to one SPE. All data
// movement between an SPE's local store and main memory goes through its
// MFC as explicit DMA transfers carried by the EIB.
type MFC struct {
	cfg  MFCConfig
	eib  *EIB
	main *mem.Main
	ls   []byte

	// Transfers and Bytes count DMA operations issued by this MFC.
	Transfers uint64
	Bytes     uint64
}

// NewMFC builds an MFC moving data between main and the given local
// store.
func NewMFC(cfg MFCConfig, eib *EIB, main *mem.Main, ls []byte) *MFC {
	return &MFC{cfg: cfg, eib: eib, main: main, ls: ls}
}

// DMA performs a blocking transfer of n bytes between main memory at
// mainAddr and the local store at lsAddr, issued at time now, and returns
// the completion time. The data is really copied; the returned time
// includes command setup, bus arbitration/queuing and payload time.
func (m *MFC) DMA(now Clock, dir DMADir, mainAddr mem.Addr, lsAddr uint32, n uint32) Clock {
	if n == 0 {
		return now
	}
	if uint64(lsAddr)+uint64(n) > uint64(len(m.ls)) {
		panic(fmt.Sprintf("cell: DMA overruns local store: [%#x,%#x) of %#x",
			lsAddr, lsAddr+n, len(m.ls)))
	}
	switch dir {
	case DMAGet:
		m.main.ReadBytes(mainAddr, m.ls[lsAddr:lsAddr+n])
	case DMAPut:
		m.main.WriteBytes(mainAddr, m.ls[lsAddr:lsAddr+n])
	default:
		panic("cell: bad DMA direction")
	}
	carried := n
	if carried < m.cfg.MinTransfer {
		carried = m.cfg.MinTransfer
	}
	m.Transfers++
	m.Bytes += uint64(carried)
	issue := now + Clock(m.cfg.SetupCycles)
	return m.eib.Transfer(issue, carried)
}

// CostOnly models a transfer's timing without moving data. Used for
// traffic whose bytes live outside simulated memory contents (e.g.
// migration context packages) but whose bus occupancy must be charged.
func (m *MFC) CostOnly(now Clock, n uint32) Clock {
	if n == 0 {
		return now
	}
	carried := n
	if carried < m.cfg.MinTransfer {
		carried = m.cfg.MinTransfer
	}
	m.Transfers++
	m.Bytes += uint64(carried)
	issue := now + Clock(m.cfg.SetupCycles)
	return m.eib.Transfer(issue, carried)
}
