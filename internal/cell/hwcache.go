package cell

// HWCacheConfig describes one level of the PPE's hardware cache.
type HWCacheConfig struct {
	SizeBytes uint32
	LineBytes uint32
	Ways      int
	// HitCycles is the access latency on a hit at this level.
	HitCycles uint32
}

// HWCache is a set-associative tag-only cache model with LRU replacement.
// It tracks which lines are resident (no data: main memory is the backing
// truth for contents) so the PPE's memory cost depends on real addresses
// and real locality, mirroring how the SPE's software cache depends on
// them.
type HWCache struct {
	cfg   HWCacheConfig
	sets  uint32
	shift uint32
	tags  [][]uint32 // per set, MRU first; tag 0xFFFFFFFF = invalid

	Hits, Misses uint64
}

const invalidTag = 0xFFFFFFFF

// NewHWCache builds a cache from its geometry. Size must be a multiple of
// line size times ways.
func NewHWCache(cfg HWCacheConfig) *HWCache {
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / uint32(cfg.Ways)
	if sets == 0 || sets&(sets-1) != 0 {
		panic("cell: cache set count must be a nonzero power of two")
	}
	shift := uint32(0)
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	c := &HWCache{cfg: cfg, sets: sets, shift: shift}
	c.tags = make([][]uint32, sets)
	for i := range c.tags {
		ways := make([]uint32, cfg.Ways)
		for j := range ways {
			ways[j] = invalidTag
		}
		c.tags[i] = ways
	}
	return c
}

// Access probes the cache for addr. On a hit the line moves to MRU and
// Access returns true; on a miss the line is installed, evicting LRU.
func (c *HWCache) Access(addr uint32) bool {
	line := addr >> c.shift
	set := line & (c.sets - 1)
	tag := line / c.sets
	ways := c.tags[set]
	for i, t := range ways {
		if t == tag {
			copy(ways[1:i+1], ways[:i]) // move to MRU
			ways[0] = tag
			c.Hits++
			return true
		}
	}
	copy(ways[1:], ways) // evict LRU
	ways[0] = tag
	c.Misses++
	return false
}

// HitCycles returns the configured hit latency.
func (c *HWCache) HitCycles() uint32 { return c.cfg.HitCycles }

// LineBytes returns the cache line size.
func (c *HWCache) LineBytes() uint32 { return c.cfg.LineBytes }

// HitRate returns hits/(hits+misses), or 1 with no accesses.
func (c *HWCache) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 1
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// PPEMemConfig describes the PPE's path to memory.
type PPEMemConfig struct {
	L1 HWCacheConfig
	L2 HWCacheConfig
	// MemCycles is the latency of a main-memory access on an L2 miss.
	MemCycles uint32
}

// DefaultPPEMemConfig returns the calibrated PPE hierarchy: 32 KB L1 and
// 512 KB L2 with 128-byte lines (the Cell PPE's geometry).
func DefaultPPEMemConfig() PPEMemConfig {
	return PPEMemConfig{
		L1:        HWCacheConfig{SizeBytes: 32 << 10, LineBytes: 128, Ways: 8, HitCycles: 4},
		L2:        HWCacheConfig{SizeBytes: 512 << 10, LineBytes: 128, Ways: 8, HitCycles: 24},
		MemCycles: 200,
	}
}

// PPEMem is the PPE's L1+L2 hierarchy.
type PPEMem struct {
	cfg PPEMemConfig
	L1  *HWCache
	L2  *HWCache
}

// NewPPEMem builds the hierarchy.
func NewPPEMem(cfg PPEMemConfig) *PPEMem {
	return &PPEMem{cfg: cfg, L1: NewHWCache(cfg.L1), L2: NewHWCache(cfg.L2)}
}

// Access returns the cycle cost of a load/store covering
// [addr, addr+size), probing L1 then L2, and reports whether all lines
// hit in L1 ("local" in Figure 5 terms).
func (p *PPEMem) Access(addr, size uint32) (cycles uint32, l1 bool) {
	if size == 0 {
		size = 1
	}
	l1 = true
	first := addr &^ (p.cfg.L1.LineBytes - 1)
	last := (addr + size - 1) &^ (p.cfg.L1.LineBytes - 1)
	for line := first; ; line += p.cfg.L1.LineBytes {
		if p.L1.Access(line) {
			cycles += p.cfg.L1.HitCycles
		} else if p.L2.Access(line) {
			cycles += p.cfg.L2.HitCycles
			l1 = false
		} else {
			cycles += p.cfg.MemCycles
			l1 = false
		}
		if line == last {
			break
		}
	}
	return cycles, l1
}
