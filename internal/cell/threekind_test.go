package cell

import (
	"strings"
	"testing"

	"herajvm/internal/isa"
)

func TestParseTopologyErrorPaths(t *testing.T) {
	bad := []string{
		"",                // empty
		",,",              // only separators
		"gpu:2",           // unregistered kind name
		"ppe:one",         // non-numeric count
		"ppe:",            // empty count
		"spe:4",           // no service-hosting core
		"vpu:2",           // accelerator-only machine
		"ppe:-1,spe:2",    // negative count
		"ppe:0,spe:0",     // zero cores
		"ppe:1,spe:4,foo", // trailing unknown kind
	}
	for _, s := range bad {
		if topo, err := ParseTopology(s); err == nil {
			t.Errorf("ParseTopology(%q) = %v, want error", s, topo)
		}
	}
}

func TestParseTopologyThreeKinds(t *testing.T) {
	topo, err := ParseTopology("ppe:1,spe:4,vpu:2")
	if err != nil {
		t.Fatal(err)
	}
	want := Topology{
		{Kind: isa.PPE, Count: 1},
		{Kind: isa.SPE, Count: 4},
		{Kind: isa.VPU, Count: 2},
	}
	if len(topo) != len(want) {
		t.Fatalf("ParseTopology groups = %v", topo)
	}
	for i := range want {
		if topo[i] != want[i] {
			t.Errorf("group %d = %v, want %v", i, topo[i], want[i])
		}
	}
	if topo.String() != "ppe:1,spe:4,vpu:2" {
		t.Errorf("String() = %q does not round-trip", topo.String())
	}
	if topo.Describe() != "1 PPE + 4 SPEs + 2 VPUs" {
		t.Errorf("Describe() = %q", topo.Describe())
	}
	// Workers follow accelerator cores: 4 SPEs + 2 VPUs.
	if topo.DefaultWorkers() != 6 {
		t.Errorf("DefaultWorkers() = %d, want 6", topo.DefaultWorkers())
	}
}

// A machine with all three kinds must give every core the hardware its
// kind's spec declares: scratchpad + MFC for local-store kinds, cache
// hierarchy + predictor for the PPE.
func TestThreeKindMachineConstruction(t *testing.T) {
	cfg := DefaultConfig()
	topo, err := ParseTopology("ppe:1,spe:4,vpu:2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topology = topo
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCores() != 7 || m.NumOf(isa.PPE) != 1 || m.NumOf(isa.SPE) != 4 || m.NumOf(isa.VPU) != 2 {
		t.Fatalf("core counts: %d total, %d/%d/%d", m.NumCores(),
			m.NumOf(isa.PPE), m.NumOf(isa.SPE), m.NumOf(isa.VPU))
	}
	ppe := m.CoresOf(isa.PPE)[0]
	if ppe.Mem == nil || ppe.BP == nil || ppe.LS != nil || ppe.MFC != nil {
		t.Error("PPE core must have hardware caches + predictor, no local store")
	}
	for _, kind := range []isa.CoreKind{isa.SPE, isa.VPU} {
		for _, c := range m.CoresOf(kind) {
			if c.LS == nil || c.MFC == nil {
				t.Errorf("%s must have a local store and MFC", c)
			}
			if c.Mem != nil || c.BP != nil {
				t.Errorf("%s must not have hardware caches or a predictor", c)
			}
		}
	}
	if got := m.CoresOf(isa.VPU)[1].String(); got != "VPU1" {
		t.Errorf("VPU core name = %q", got)
	}
	if !strings.Contains(m.Describe(), "VPU") {
		t.Errorf("Describe() = %q omits the VPU", m.Describe())
	}
	// Global indices follow topology order across all kinds.
	wantIdx := 0
	for _, c := range m.Cores() {
		if c.Index != wantIdx {
			t.Errorf("core %s has index %d, want %d", c, c.Index, wantIdx)
		}
		wantIdx++
	}
}

func TestMachineRejectsUnregisteredKind(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = Topology{{Kind: isa.PPE, Count: 1}, {Kind: isa.CoreKind(200), Count: 1}}
	if _, err := NewMachine(cfg); err == nil {
		t.Error("topology with an unregistered kind should fail to boot")
	}
}
