// Package cell models the Cell Broadband Engine hardware that Hera-JVM
// runs on: the PPE and SPE cores with their per-core cycle clocks, the
// SPEs' 256 KB local stores and Memory Flow Controllers (MFC), the
// Element Interconnect Bus (EIB) that carries DMA traffic, and the PPE's
// hardware cache hierarchy and branch predictor.
//
// The machine is simulated conservatively in discrete-event style: each
// core owns a local cycle clock, the VM always advances the core with the
// smallest clock, and shared resources (the EIB) arbitrate requests by
// timestamp, so multi-core interleavings and bus contention are
// deterministic.
package cell

import (
	"fmt"
	"sort"
)

// Clock is a simulated time in cycles.
type Clock = uint64

// EIBConfig calibrates the Element Interconnect Bus.
type EIBConfig struct {
	// Channels is the number of concurrent transfers the bus sustains at
	// full per-channel bandwidth (the real EIB has four 16-byte rings).
	// Contention on these rings is what makes memory-bound workloads
	// stop scaling across six SPEs (Figure 4(b)).
	Channels int
	// BytesPerCycle is the per-channel payload bandwidth.
	BytesPerCycle float64
	// ArbCycles is the fixed arbitration latency added to each transfer.
	ArbCycles uint32
}

// DefaultEIBConfig returns the calibrated bus model: four rings of
// 16 bytes/cycle with 16-cycle arbitration (the real EIB is four
// 16-byte-wide rings; command arbitration still serialises transfers
// that collide on a ring).
func DefaultEIBConfig() EIBConfig {
	return EIBConfig{Channels: 4, BytesPerCycle: 16, ArbCycles: 16}
}

// interval is one reserved stretch of channel time.
type interval struct {
	start, end Clock
}

// EIB is the Element Interconnect Bus. Each channel keeps a timeline of
// reserved intervals; a transfer occupies the earliest gap at or after
// its request time. Interval (rather than watermark) reservation matters
// because the machine's cores run on skewed local clocks: a request from
// a core whose clock lags must not queue behind reservations made at
// future timestamps if bus time was actually free.
type EIB struct {
	cfg      EIBConfig
	channels [][]interval
	// prunedAt is the last time prune ran; pruning is amortised to every
	// quarter-horizon rather than every transfer (dropping dead
	// intervals sooner or later never changes a gap search, so the
	// cadence is invisible to simulated results).
	prunedAt Clock

	// Transfers and Bytes count all traffic carried.
	Transfers uint64
	Bytes     uint64
	// WaitCycles accumulates time transfers spent queued for a channel.
	WaitCycles uint64
}

// NewEIB builds a bus from its configuration.
func NewEIB(cfg EIBConfig) *EIB {
	if cfg.Channels <= 0 {
		panic(fmt.Sprintf("cell: EIB needs at least one channel, got %d", cfg.Channels))
	}
	if cfg.BytesPerCycle <= 0 {
		panic("cell: EIB bandwidth must be positive")
	}
	return &EIB{cfg: cfg, channels: make([][]interval, cfg.Channels)}
}

// Transfer reserves channel time for n bytes requested at time now and
// returns the completion time.
func (e *EIB) Transfer(now Clock, n uint32) Clock {
	dur := Clock(e.cfg.ArbCycles) + Clock(float64(n)/e.cfg.BytesPerCycle)
	if dur == 0 {
		dur = 1
	}

	// Uncontended fast path: when channel 0's last reservation ended by
	// now, its gap search returns (now, len) — and no channel can start
	// before now, so the strict-less tie-break keeps channel 0 anyway.
	// Append there directly and skip the per-channel searches.
	tl0 := e.channels[0]
	free := len(tl0) == 0 || tl0[len(tl0)-1].end <= now

	bestCh, bestIdx := -1, 0
	var bestStart Clock
	if free {
		bestCh, bestIdx, bestStart = 0, len(tl0), now
	} else {
		for ch := range e.channels {
			start, idx := gapAt(e.channels[ch], now, dur)
			if bestCh < 0 || start < bestStart {
				bestCh, bestIdx, bestStart = ch, idx, start
			}
		}
	}

	tl := e.channels[bestCh]
	tl = append(tl, interval{})
	copy(tl[bestIdx+1:], tl[bestIdx:])
	tl[bestIdx] = interval{start: bestStart, end: bestStart + dur}
	e.channels[bestCh] = tl

	if bestStart > now {
		e.WaitCycles += bestStart - now
	}
	e.Transfers++
	e.Bytes += uint64(n)

	e.prune(now)
	return bestStart + dur
}

// gapAt finds the earliest start >= now of a gap of length dur in a
// sorted timeline, returning the start and the insertion index. The
// timeline's intervals are disjoint and sorted, so ends are increasing:
// binary-search past everything that finished by now (those intervals
// would only be skipped by the scan) and walk from there.
func gapAt(tl []interval, now Clock, dur Clock) (Clock, int) {
	start := now
	first := sort.Search(len(tl), func(i int) bool { return tl[i].end > now })
	for i := first; i < len(tl); i++ {
		iv := tl[i]
		if iv.end <= start {
			continue // interval entirely before our candidate start
		}
		if iv.start >= start+dur {
			return start, i // gap before this interval fits
		}
		if iv.end > start {
			start = iv.end
		}
	}
	return start, len(tl)
}

// prune drops intervals that ended long before now on all channels; no
// future request can land there (core clocks only advance, and skew is
// bounded by the scheduler's quantum plus blocking-operation latencies,
// well under this horizon). It amortises to one sweep per
// quarter-horizon — pruning exists only to bound timeline length, so
// running it on every transfer just rescans live intervals.
func (e *EIB) prune(now Clock) {
	const horizon = 1 << 16
	if now < horizon || now < e.prunedAt+horizon/4 {
		return
	}
	e.prunedAt = now
	cut := now - horizon
	for ch, tl := range e.channels {
		keep := 0
		for _, iv := range tl {
			if iv.end >= cut {
				tl[keep] = iv
				keep++
			}
		}
		e.channels[ch] = tl[:keep]
	}
}

// Utilisation returns the fraction of bus-channel time in [0, horizon)
// that carried traffic, for reports.
func (e *EIB) Utilisation(horizon Clock) float64 {
	if horizon == 0 {
		return 0
	}
	carried := float64(e.Bytes) / e.cfg.BytesPerCycle
	return carried / (float64(horizon) * float64(e.cfg.Channels))
}
