package cell

import (
	"testing"

	"herajvm/internal/isa"
)

// bigLS is a test-only local-store kind whose spec sizes its own
// scratchpad (the registry is append-only, so it is registered once per
// test binary; default topologies never include it).
var bigLS = isa.Register(isa.KindSpec{
	Name:            "BLS",
	NewCosts:        isa.SPECosts,
	LocalStore:      true,
	MemAccessCycles: 30,
	LocalStoreBytes: 512 << 10,
})

func TestKindSpecLocalStoreOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 1}, {Kind: bigLS, Count: 2},
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The SPE keeps the machine-wide default; the override kind gets its
	// spec's larger scratchpad.
	if got := len(m.CoresOf(isa.SPE)[0].LS); got != int(cfg.LocalStore) {
		t.Errorf("SPE local store = %d, want the default %d", got, cfg.LocalStore)
	}
	for _, c := range m.CoresOf(bigLS) {
		if len(c.LS) != 512<<10 {
			t.Errorf("%v local store = %d, want the 512 KB spec override", c, len(c.LS))
		}
		if c.MFC == nil {
			t.Errorf("%v: local-store core without an MFC", c)
		}
	}
}

func TestParseTopologyList(t *testing.T) {
	list, err := ParseTopologyList(" ppe:1,spe:6 ; ppe:1,spe:4,vpu:2 ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("got %d topologies, want 2", len(list))
	}
	if list[0].String() != "ppe:1,spe:6" || list[1].String() != "ppe:1,spe:4,vpu:2" {
		t.Errorf("round trip: %v", list)
	}
	if _, err := ParseTopologyList("ppe:1;zzz:3"); err == nil {
		t.Error("unknown kind in a list entry should error")
	}
	if _, err := ParseTopologyList(" ; "); err == nil {
		t.Error("an all-empty list should error")
	}
}

func TestKindSpecLocalStoreOverrideTooSmall(t *testing.T) {
	tiny := isa.Register(isa.KindSpec{
		Name:            "TLS",
		NewCosts:        isa.SPECosts,
		LocalStore:      true,
		MemAccessCycles: 30,
		LocalStoreBytes: 8 << 10,
	})
	cfg := DefaultConfig()
	cfg.Topology = Topology{{Kind: isa.PPE, Count: 1}, {Kind: tiny, Count: 1}}
	if _, err := NewMachine(cfg); err == nil {
		t.Fatal("an 8 KB local-store override should fail machine construction")
	}
}
