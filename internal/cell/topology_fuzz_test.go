package cell

import (
	"reflect"
	"testing"
)

// FuzzParseTopology: any input either errors cleanly or yields a
// validated topology whose String() form reparses to the same value —
// the flag-syntax round-trip the herabench -shards/-topology flags
// depend on.
func FuzzParseTopology(f *testing.F) {
	f.Add("ppe:1,spe:6")
	f.Add("ppe")
	f.Add(" ppe : 2 , vpu : 4 ")
	f.Add("ppe:1,spe:0")
	f.Add("spe:6")
	f.Add("ppe:-1")
	f.Add("ppe:1,,spe:2,")
	f.Add("ppe:99999999999999999999")
	f.Fuzz(func(t *testing.T, s string) {
		topo, err := ParseTopology(s)
		if err != nil {
			return
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("ParseTopology(%q) accepted an invalid topology: %v", s, err)
		}
		again, err := ParseTopology(topo.String())
		if err != nil {
			t.Fatalf("ParseTopology(%q).String() = %q does not reparse: %v", s, topo.String(), err)
		}
		if !reflect.DeepEqual(again, topo) {
			t.Fatalf("round-trip of %q changed the topology: %v vs %v", s, topo, again)
		}
	})
}

// FuzzParseTopologyList: the semicolon-list variant — every accepted
// element validates, and the canonical rendering reparses to the same
// list.
func FuzzParseTopologyList(f *testing.F) {
	f.Add("ppe:1,spe:6;ppe:1,spe:4,vpu:2")
	f.Add("ppe")
	f.Add(";;ppe:2;")
	f.Add("ppe:1;bogus:3")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		list, err := ParseTopologyList(s)
		if err != nil {
			return
		}
		if len(list) == 0 {
			t.Fatalf("ParseTopologyList(%q) returned an empty list without error", s)
		}
		canon := ""
		for i, topo := range list {
			if err := topo.Validate(); err != nil {
				t.Fatalf("ParseTopologyList(%q) element %d invalid: %v", s, i, err)
			}
			if i > 0 {
				canon += ";"
			}
			canon += topo.String()
		}
		again, err := ParseTopologyList(canon)
		if err != nil {
			t.Fatalf("canonical list %q does not reparse: %v", canon, err)
		}
		if !reflect.DeepEqual(again, list) {
			t.Fatalf("round-trip of %q changed the list: %v vs %v", s, list, again)
		}
	})
}
