package cell

import (
	"fmt"

	"herajvm/internal/isa"
	"herajvm/internal/mem"
	"herajvm/internal/profile"
)

// Config describes a Cell machine instance.
type Config struct {
	// MainMemory is the main-memory size in bytes (the PS3 exposes
	// 256 MB; the default here is 64 MB, plenty for the workloads).
	MainMemory uint32
	// NumSPEs is the number of usable SPE cores (6 on a PS3).
	NumSPEs int
	// LocalStore is each SPE's local store size (256 KB on real silicon).
	LocalStore uint32
	EIB        EIBConfig
	MFC        MFCConfig
	PPEMem     PPEMemConfig
	// BranchPredictorBits sizes the PPE predictor table (2^bits entries).
	BranchPredictorBits uint
}

// DefaultConfig returns a PS3-like machine: one PPE, six SPEs, 256 KB
// local stores, 64 MB main memory.
func DefaultConfig() Config {
	return Config{
		MainMemory:          64 << 20,
		NumSPEs:             6,
		LocalStore:          256 << 10,
		EIB:                 DefaultEIBConfig(),
		MFC:                 DefaultMFCConfig(),
		PPEMem:              DefaultPPEMemConfig(),
		BranchPredictorBits: 12,
	}
}

// Core is one simulated processing element. The VM executes Java threads
// on cores; the core owns the local cycle clock and the per-core hardware
// (local store + MFC on SPEs, cache hierarchy + branch predictor on the
// PPE) plus all statistics.
type Core struct {
	Kind isa.CoreKind
	// ID is the core's index: 0 for the PPE, 0..N-1 for SPEs.
	ID int
	// Now is the core's local clock in cycles.
	Now Clock

	// LS is the local store (SPE only).
	LS []byte
	// MFC is the memory flow controller (SPE only).
	MFC *MFC

	// Mem is the hardware cache hierarchy (PPE only).
	Mem *PPEMem
	// BP is the branch predictor (PPE only).
	BP *BranchPredictor

	Stats profile.CoreStats
}

// String names the core, e.g. "PPE" or "SPE2".
func (c *Core) String() string {
	if c.Kind == isa.PPE {
		return "PPE"
	}
	return fmt.Sprintf("SPE%d", c.ID)
}

// Charge advances the core's clock by n cycles billed to the given
// operation class.
func (c *Core) Charge(class isa.OpClass, n uint64) {
	c.Now += n
	c.Stats.Charge(class, n)
}

// ChargeIdle advances the clock without billing a work class (the core is
// stalled waiting for something external, e.g. another core or GC).
func (c *Core) ChargeIdle(n uint64) {
	c.Now += n
	c.Stats.Idle += n
}

// AdvanceTo moves the clock forward to at least t, billing the gap as
// idle time. It never moves the clock backwards.
func (c *Core) AdvanceTo(t Clock) {
	if t > c.Now {
		c.Stats.Idle += t - c.Now
		c.Now = t
	}
}

// Machine is a configured Cell processor: main memory, the bus, one PPE
// and the SPEs.
type Machine struct {
	Cfg  Config
	Mem  *mem.Main
	EIB  *EIB
	PPE  *Core
	SPEs []*Core
}

// NewMachine builds a machine from its configuration.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.NumSPEs < 0 {
		return nil, fmt.Errorf("cell: negative SPE count %d", cfg.NumSPEs)
	}
	if cfg.MainMemory < 1<<20 {
		return nil, fmt.Errorf("cell: main memory %d too small (min 1 MB)", cfg.MainMemory)
	}
	if cfg.LocalStore < 16<<10 {
		return nil, fmt.Errorf("cell: local store %d too small (min 16 KB)", cfg.LocalStore)
	}
	m := &Machine{
		Cfg: cfg,
		Mem: mem.NewMain(cfg.MainMemory),
		EIB: NewEIB(cfg.EIB),
	}
	m.PPE = &Core{
		Kind: isa.PPE,
		Mem:  NewPPEMem(cfg.PPEMem),
		BP:   NewBranchPredictor(cfg.BranchPredictorBits),
	}
	for i := 0; i < cfg.NumSPEs; i++ {
		ls := make([]byte, cfg.LocalStore)
		m.SPEs = append(m.SPEs, &Core{
			Kind: isa.SPE,
			ID:   i,
			LS:   ls,
			MFC:  NewMFC(cfg.MFC, m.EIB, m.Mem, ls),
		})
	}
	return m, nil
}

// Cores returns all cores, PPE first.
func (m *Machine) Cores() []*Core {
	out := make([]*Core, 0, 1+len(m.SPEs))
	out = append(out, m.PPE)
	return append(out, m.SPEs...)
}

// MaxClock returns the largest core clock — the machine's notion of
// elapsed time once a run completes.
func (m *Machine) MaxClock() Clock {
	t := m.PPE.Now
	for _, s := range m.SPEs {
		if s.Now > t {
			t = s.Now
		}
	}
	return t
}
