package cell

import (
	"fmt"

	"herajvm/internal/isa"
	"herajvm/internal/mem"
	"herajvm/internal/profile"
)

// DefaultClockHz is the Cell's 3.2 GHz core clock, the rate a zero
// Config.ClockHz falls back to.
const DefaultClockHz = 3.2e9

// Config describes a Cell-like machine instance.
type Config struct {
	// MainMemory is the main-memory size in bytes (the PS3 exposes
	// 256 MB; the default here is 64 MB, plenty for the workloads).
	MainMemory uint32
	// ClockHz is the core clock rate used to convert cycle counts to
	// wall time in reports (simulation itself is cycle-accurate and
	// rate-independent). 0 means DefaultClockHz, the Cell's 3.2 GHz.
	ClockHz float64
	// Topology declares the machine's core mix (the PS3 default is
	// 1 PPE + 6 SPEs; see PS3Topology and ParseTopology).
	Topology Topology
	// LocalStore is each SPE's local store size (256 KB on real silicon).
	LocalStore uint32
	EIB        EIBConfig
	MFC        MFCConfig
	PPEMem     PPEMemConfig
	// BranchPredictorBits sizes each PPE predictor table (2^bits entries).
	BranchPredictorBits uint
}

// DefaultConfig returns a PS3-like machine: one PPE, six SPEs, 256 KB
// local stores, 64 MB main memory.
func DefaultConfig() Config {
	return Config{
		MainMemory:          64 << 20,
		ClockHz:             DefaultClockHz,
		Topology:            PS3Topology(6),
		LocalStore:          256 << 10,
		EIB:                 DefaultEIBConfig(),
		MFC:                 DefaultMFCConfig(),
		PPEMem:              DefaultPPEMemConfig(),
		BranchPredictorBits: 12,
	}
}

// EffectiveClockHz returns the configured clock rate, defaulting a zero
// ClockHz to DefaultClockHz (hand-built Configs commonly leave it unset).
func (c Config) EffectiveClockHz() float64 {
	if c.ClockHz > 0 {
		return c.ClockHz
	}
	return DefaultClockHz
}

// Core is one simulated processing element. The VM executes Java threads
// on cores; the core owns the local cycle clock and the per-core
// hardware its kind's spec declares (local store + MFC for local-store
// kinds, cache hierarchy and branch predictor for hardware-cached
// kinds) plus all statistics.
type Core struct {
	Kind isa.CoreKind
	// ID is the core's index among cores of its kind: 0..N-1.
	ID int
	// Index is the core's position in Machine.Cores() — the global,
	// topology-order index the scheduler keys its calendars by.
	Index int
	// Now is the core's local clock in cycles.
	Now Clock

	// LS is the local store (local-store kinds only).
	LS []byte
	// MFC is the memory flow controller (local-store kinds only).
	MFC *MFC

	// Mem is the hardware cache hierarchy (hardware-cached kinds only).
	Mem *PPEMem
	// BP is the branch predictor (kinds whose spec declares one).
	BP *BranchPredictor

	Stats profile.CoreStats
}

// String names the core, e.g. "PPE" or "SPE2". The first core of a
// service-hosting kind keeps the bare historical name; further
// same-kind cores are numbered.
func (c *Core) String() string {
	if c.Kind.HostsServices() && c.ID == 0 {
		return c.Kind.String()
	}
	return fmt.Sprintf("%s%d", c.Kind, c.ID)
}

// Charge advances the core's clock by n cycles billed to the given
// operation class.
func (c *Core) Charge(class isa.OpClass, n uint64) {
	c.Now += n
	c.Stats.Charge(class, n)
}

// FastForward applies one memoized superblock in a single step: the
// clock advances by the block's total cost, the per-class counters by
// its class vector, and instrs instructions retire — exactly the totals
// per-instruction Charge calls would have produced — while the
// fast-forward counters record that the memoized path was taken.
func (c *Core) FastForward(total uint64, classes *[isa.NumClasses]uint64, instrs uint64) {
	c.Now += total
	for i, n := range classes {
		if n != 0 { // blocks rarely span more than a few classes
			c.Stats.Cycles[i] += n
		}
	}
	c.Stats.Instrs += instrs
	c.Stats.FastForwardedBlocks++
	c.Stats.FastForwardedInstrs += instrs
}

// FastForwardTail applies a later pure segment of a memory-extended
// superblock: identical accounting to FastForward except that no new
// block is counted — the whole extended block is one fast-forward.
func (c *Core) FastForwardTail(total uint64, classes *[isa.NumClasses]uint64, instrs uint64) {
	c.Now += total
	for i, n := range classes {
		if n != 0 {
			c.Stats.Cycles[i] += n
		}
	}
	c.Stats.Instrs += instrs
	c.Stats.FastForwardedInstrs += instrs
}

// ChargeIdle advances the clock without billing a work class (the core is
// stalled waiting for something external, e.g. another core or GC).
func (c *Core) ChargeIdle(n uint64) {
	c.Now += n
	c.Stats.Idle += n
}

// AdvanceTo moves the clock forward to at least t, billing the gap as
// idle time. It never moves the clock backwards.
func (c *Core) AdvanceTo(t Clock) {
	if t > c.Now {
		c.Stats.Idle += t - c.Now
		c.Now = t
	}
}

// Machine is a configured Cell-like processor: main memory, the bus, and
// the cores the topology declares, grouped by kind. Consumers address
// cores through the kind-indexed accessors (CoresOf, CoreAt, HasKind);
// there is no structural assumption that any kind exists beyond the one
// PPE the topology validation guarantees.
type Machine struct {
	Cfg Config
	Mem *mem.Main
	EIB *EIB

	cores  []*Core
	byKind map[isa.CoreKind][]*Core
}

// NewMachine builds a machine from its configuration.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.MainMemory < 1<<20 {
		return nil, fmt.Errorf("cell: main memory %d too small (min 1 MB)", cfg.MainMemory)
	}
	if cfg.LocalStore < 16<<10 {
		return nil, fmt.Errorf("cell: local store %d too small (min 16 KB)", cfg.LocalStore)
	}
	for _, g := range cfg.Topology {
		if !g.Kind.Known() {
			return nil, fmt.Errorf("cell: topology names unregistered core kind %s", g.Kind)
		}
		if o := isa.Spec(g.Kind).LocalStoreBytes; o != 0 && o < 16<<10 {
			return nil, fmt.Errorf("cell: %s local-store override %d too small (min 16 KB)", g.Kind, o)
		}
	}
	m := &Machine{
		Cfg:    cfg,
		Mem:    mem.NewMain(cfg.MainMemory),
		EIB:    NewEIB(cfg.EIB),
		byKind: make(map[isa.CoreKind][]*Core),
	}
	for _, g := range cfg.Topology {
		for i := 0; i < g.Count; i++ {
			c := &Core{
				Kind:  g.Kind,
				ID:    len(m.byKind[g.Kind]),
				Index: len(m.cores),
			}
			// The kind's spec decides the per-core hardware: local-store
			// kinds get a scratchpad and an MFC (the software caches layer
			// on top in the VM); hardware-cached kinds get the coherent
			// cache hierarchy; predictor-equipped kinds get a predictor.
			// A kind's spec may size its own scratchpad (a VPU with a
			// larger local store than the SPEs); the machine-wide
			// cfg.LocalStore is the default.
			if g.Kind.UsesLocalStore() {
				ls := cfg.LocalStore
				if o := isa.Spec(g.Kind).LocalStoreBytes; o != 0 {
					ls = o
				}
				c.LS = make([]byte, ls)
				c.MFC = NewMFC(cfg.MFC, m.EIB, m.Mem, c.LS)
			} else {
				c.Mem = NewPPEMem(cfg.PPEMem)
			}
			if g.Kind.PredictsBranches() {
				c.BP = NewBranchPredictor(cfg.BranchPredictorBits)
			}
			m.cores = append(m.cores, c)
			m.byKind[g.Kind] = append(m.byKind[g.Kind], c)
		}
	}
	return m, nil
}

// Cores returns all cores in topology order. The slice is a copy;
// callers may reorder it freely without perturbing the machine.
func (m *Machine) Cores() []*Core {
	out := make([]*Core, len(m.cores))
	copy(out, m.cores)
	return out
}

// NumCores returns the total core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// CoresOf returns the cores of one kind, ordered by ID (nil if the
// topology has none). The slice is a copy; callers may reorder it.
func (m *Machine) CoresOf(kind isa.CoreKind) []*Core {
	src := m.byKind[kind]
	if src == nil {
		return nil
	}
	out := make([]*Core, len(src))
	copy(out, src)
	return out
}

// NumOf returns how many cores of the kind the machine has.
func (m *Machine) NumOf(kind isa.CoreKind) int { return len(m.byKind[kind]) }

// HasKind reports whether the machine has at least one core of the kind.
func (m *Machine) HasKind(kind isa.CoreKind) bool { return len(m.byKind[kind]) > 0 }

// CoreAt returns core id of the given kind.
func (m *Machine) CoreAt(kind isa.CoreKind, id int) *Core { return m.byKind[kind][id] }

// InstrsOf returns the total instructions retired on cores of the kind
// (the usual "did work land where we expected" probe in reports,
// examples and tests).
func (m *Machine) InstrsOf(kind isa.CoreKind) uint64 {
	var n uint64
	for _, c := range m.byKind[kind] {
		n += c.Stats.Instrs
	}
	return n
}

// Describe renders the machine's core mix, e.g. "1 PPE + 6 SPEs".
func (m *Machine) Describe() string { return m.Cfg.Topology.Describe() }

// MaxClock returns the largest core clock — the machine's notion of
// elapsed time once a run completes.
func (m *Machine) MaxClock() Clock {
	var t Clock
	for _, c := range m.cores {
		if c.Now > t {
			t = c.Now
		}
	}
	return t
}
