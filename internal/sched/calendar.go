package sched

import (
	"container/heap"
	"sort"

	"herajvm/internal/cell"
)

// The calendar scheduler keeps one event calendar per core instead of
// scanning every live thread on every step. Each calendar splits its
// queued tasks in two:
//
//   - ready:  tasks whose ReadyAt has already passed the core's clock.
//     Their feasible start is the clock itself, so the earliest of them
//     is simply the one queued first (FIFO order, tracked by a global
//     enqueue sequence number).
//   - future: tasks whose ReadyAt is still ahead of the clock, ordered
//     by (ReadyAt, sequence).
//
// As the core's clock advances, due entries migrate from future to ready
// (settle). Picking the next task machine-wide is then an argmin over
// per-core calendar heads — O(cores + log queue) per scheduling step
// rather than O(live threads) — with fully deterministic tie-breaking:
// earliest feasible start, then lowest core index, then enqueue order.

// calEntry is one queued task. at snapshots the task's ready time when
// it was enqueued; seq is the global enqueue sequence number that makes
// ordering total.
type calEntry struct {
	t   Task
	at  cell.Clock
	seq uint64
}

// seqHeap orders ready entries FIFO by enqueue sequence.
type seqHeap []calEntry

func (h seqHeap) Len() int           { return len(h) }
func (h seqHeap) Less(i, j int) bool { return h[i].seq < h[j].seq }
func (h seqHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *seqHeap) Push(x any)        { *h = append(*h, x.(calEntry)) }
func (h *seqHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// timeHeap orders future entries by (ReadyAt, enqueue sequence).
type timeHeap []calEntry

func (h timeHeap) Len() int { return len(h) }
func (h timeHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timeHeap) Push(x any)   { *h = append(*h, x.(calEntry)) }
func (h *timeHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// coreCalendar is one core's pending-task calendar.
type coreCalendar struct {
	ready  seqHeap
	future timeHeap
}

// push queues a task, routing it by its ready time relative to now.
func (c *coreCalendar) push(t Task, at cell.Clock, seq uint64, now cell.Clock) {
	e := calEntry{t: t, at: at, seq: seq}
	if e.at <= now {
		heap.Push(&c.ready, e)
	} else {
		heap.Push(&c.future, e)
	}
}

// settle migrates future entries that have come due by now into the
// ready heap. Clocks only move forward, so entries migrate one way.
func (c *coreCalendar) settle(now cell.Clock) {
	for len(c.future) > 0 && c.future[0].at <= now {
		heap.Push(&c.ready, heap.Pop(&c.future))
	}
}

// length is the number of queued tasks (the load metric placement uses).
func (c *coreCalendar) length() int { return len(c.ready) + len(c.future) }

// earliest returns the feasible start time of the calendar's best task
// given the core clock: now if anything is already runnable, otherwise
// the soonest future ReadyAt. ok is false for an empty calendar.
func (c *coreCalendar) earliest(now cell.Clock) (start cell.Clock, ok bool) {
	c.settle(now)
	if len(c.ready) > 0 {
		return now, true
	}
	if len(c.future) > 0 {
		return c.future[0].at, true
	}
	return 0, false
}

// pop removes and returns the task earliest() identified. The caller
// must have seen ok==true from earliest at the same clock.
func (c *coreCalendar) pop(now cell.Clock) Task {
	c.settle(now)
	if len(c.ready) > 0 {
		return heap.Pop(&c.ready).(calEntry).t
	}
	return heap.Pop(&c.future).(calEntry).t
}

// Calendar is the default event-calendar scheduler.
type Calendar struct {
	cores  []*cell.Core
	cals   []coreCalendar // indexed by Core.Index
	seq    uint64         // global enqueue sequence (tie-break)
	costOf func(Task, *cell.Core) uint64
	pinned func(Task) bool
}

// NewCalendar builds the calendar scheduler over the machine's cores
// (topology order; cores[i].Index == i). Of the Options CostOf is
// consumed — it sharpens DrainEstimate from the bare core clock to
// clock plus predicted queue-drain cycles — and Pinned marks the tasks
// the stealing/migrating layers must leave where they are.
func NewCalendar(cores []*cell.Core, opt Options) *Calendar {
	return &Calendar{
		cores:  cores,
		cals:   make([]coreCalendar, len(cores)),
		costOf: opt.CostOf,
		pinned: opt.Pinned,
	}
}

// isPinned reports whether a task may never leave the core it is
// queued on (no Pinned hook means nothing is pinned).
func (s *Calendar) isPinned(t Task) bool { return s.pinned != nil && s.pinned(t) }

// Name implements Scheduler.
func (s *Calendar) Name() string { return "calendar" }

// Enqueue implements Scheduler.
func (s *Calendar) Enqueue(core *cell.Core, task Task, readyAt cell.Clock) {
	s.seq++
	s.cals[core.Index].push(task, readyAt, s.seq, core.Now)
}

// Load implements Scheduler.
func (s *Calendar) Load(coreIndex int) int { return s.cals[coreIndex].length() }

// DrainEstimate implements Scheduler: the core's clock plus the
// predicted cost of everything queued on it, ready and future alike.
// This is deliberately a *load index* for placement, not a literal
// completion time: a future task is charged its service cost but not
// its ReadyAt, because what placement wants to know is how much
// queued work a new thread would contend with — a task sleeping until
// the far future neither blocks a new ready thread from starting now
// (so its ReadyAt must not inflate the estimate) nor stops counting
// as eventual contention (so it still contributes its cost). Without
// a CostOf hook the estimate degrades to the bare clock (Load still
// carries the depth signal separately).
func (s *Calendar) DrainEstimate(coreIndex int) cell.Clock {
	d := s.cores[coreIndex].Now
	if s.costOf == nil {
		return d
	}
	core := s.cores[coreIndex]
	c := &s.cals[coreIndex]
	for i := range c.ready {
		d += s.costOf(c.ready[i].t, core)
	}
	for i := range c.future {
		d += s.costOf(c.future[i].t, core)
	}
	return d
}

// PickNext selects the (core, task) pair with the earliest feasible
// start time by comparing per-core calendar heads: earliest start wins,
// ties go to the lowest core index, and within a core to enqueue order.
func (s *Calendar) PickNext() (*cell.Core, Task) {
	var bestCore *cell.Core
	var bestTime cell.Clock
	for _, core := range s.cores {
		start, ok := s.cals[core.Index].earliest(core.Now)
		if ok && (bestCore == nil || start < bestTime) {
			bestCore, bestTime = core, start
		}
	}
	if bestCore == nil {
		return nil, nil
	}
	return bestCore, s.cals[bestCore.Index].pop(bestCore.Now)
}

// NoteMigration implements Scheduler: charge the migration to both
// cores' counters.
func (s *Calendar) NoteMigration(from, to *cell.Core) {
	from.Stats.MigrationsOut++
	to.Stats.MigrationsIn++
}

// Remove implements Scheduler: delete task from the core's calendar,
// ready or future, reporting whether it was found. heap.Remove restores
// the heap invariant, and ordering among the survivors is untouched
// because it derives entirely from the immutable (at, seq) keys. Freezes
// are rare, so the linear scan is fine — the same trade takeReady makes.
func (s *Calendar) Remove(core *cell.Core, task Task) bool {
	c := &s.cals[core.Index]
	for i := range c.ready {
		if c.ready[i].t == task {
			heap.Remove(&c.ready, i)
			return true
		}
	}
	for i := range c.future {
		if c.future[i].t == task {
			heap.Remove(&c.future, i)
			return true
		}
	}
	return false
}

// readyCount reports how many of a core's queued tasks are already
// runnable at the core's clock (the stealable set).
func (s *Calendar) readyCount(coreIndex int, now cell.Clock) int {
	c := &s.cals[coreIndex]
	c.settle(now)
	return len(c.ready)
}

// earliestStart exposes a core calendar's earliest feasible start to
// the stealing layer (ok is false for an empty calendar).
func (s *Calendar) earliestStart(coreIndex int, now cell.Clock) (cell.Clock, bool) {
	return s.cals[coreIndex].earliest(now)
}

// stealOldestReady removes and returns the oldest (lowest enqueue
// sequence) stealable ready task of a core. Pinned tasks are skipped;
// ok is false when every ready task is pinned (or none is ready).
func (s *Calendar) stealOldestReady(coreIndex int) (Task, bool) {
	c := &s.cals[coreIndex]
	best := -1
	for i := range c.ready {
		if s.isPinned(c.ready[i].t) {
			continue
		}
		if best < 0 || c.ready[i].seq < c.ready[best].seq {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	return heap.Remove(&c.ready, best).(calEntry).t, true
}

// readyWait is one entry of readyByWait: a ready task, its (unique)
// enqueue sequence, and its predicted FIFO start time on its core.
type readyWait struct {
	t     Task
	seq   uint64
	start cell.Clock
}

// readyByWait returns a core's ready tasks ordered by descending
// predicted wait (most recently enqueued first), each with its
// predicted start time on that core: the core's clock plus the
// CostOf-predicted cost of every ready task enqueued before it —
// exact under the calendar's FIFO ready service. Nil without a CostOf
// hook or when nothing is ready. The slice is freshly built; the
// calendar is not disturbed.
func (s *Calendar) readyByWait(coreIndex int, now cell.Clock) []readyWait {
	if s.costOf == nil {
		return nil
	}
	core := s.cores[coreIndex]
	c := &s.cals[coreIndex]
	c.settle(now)
	if len(c.ready) == 0 {
		return nil
	}
	out := make([]readyWait, len(c.ready))
	for i := range c.ready {
		out[i] = readyWait{t: c.ready[i].t, seq: c.ready[i].seq}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	// Oldest-first prefix sums give each task its FIFO start.
	start := now
	for i := len(out) - 1; i >= 0; i-- {
		out[i].start = start
		start += cell.Clock(s.costOf(out[i].t, core))
	}
	return out
}

// takeReady removes and returns the ready task with the given enqueue
// sequence. The caller must hold the sequence from a readyByWait scan
// at the same clock.
func (s *Calendar) takeReady(coreIndex int, seq uint64) Task {
	c := &s.cals[coreIndex]
	for i := range c.ready {
		if c.ready[i].seq == seq {
			return heap.Remove(&c.ready, i).(calEntry).t
		}
	}
	panic("sched: takeReady sequence not in the ready set")
}

// pickLoadedVictim returns the most-loaded core matching the predicate
// that can spare a runnable task: it must keep at least one queued
// task after the hand-off (no pointless moves of a lone task) and have
// a task that is already ready at its clock. Ties on load resolve to
// the lowest core index; nil means no viable victim. The stealing and
// migrating layers share this rule, differing only in the predicate
// (same-kind sibling vs any other kind).
func (s *Calendar) pickLoadedVictim(match func(*cell.Core) bool) *cell.Core {
	var best *cell.Core
	bestLoad := 1
	for _, v := range s.cores {
		if !match(v) {
			continue
		}
		load := s.Load(v.Index)
		if load <= bestLoad { // strict: ties keep the earlier (lower) index
			continue
		}
		if s.readyCount(v.Index, v.Now) == 0 {
			continue
		}
		best, bestLoad = v, load
	}
	return best
}
