package sched

import (
	"container/heap"

	"herajvm/internal/cell"
)

// The calendar scheduler keeps one event calendar per core instead of
// scanning every live thread on every step. Each calendar splits its
// queued tasks in two:
//
//   - ready:  tasks whose ReadyAt has already passed the core's clock.
//     Their feasible start is the clock itself, so the earliest of them
//     is simply the one queued first (FIFO order, tracked by a global
//     enqueue sequence number).
//   - future: tasks whose ReadyAt is still ahead of the clock, ordered
//     by (ReadyAt, sequence).
//
// As the core's clock advances, due entries migrate from future to ready
// (settle). Picking the next task machine-wide is then an argmin over
// per-core calendar heads — O(cores + log queue) per scheduling step
// rather than O(live threads) — with fully deterministic tie-breaking:
// earliest feasible start, then lowest core index, then enqueue order.

// calEntry is one queued task. at snapshots the task's ready time when
// it was enqueued; seq is the global enqueue sequence number that makes
// ordering total.
type calEntry struct {
	t   Task
	at  cell.Clock
	seq uint64
}

// seqHeap orders ready entries FIFO by enqueue sequence.
type seqHeap []calEntry

func (h seqHeap) Len() int           { return len(h) }
func (h seqHeap) Less(i, j int) bool { return h[i].seq < h[j].seq }
func (h seqHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *seqHeap) Push(x any)        { *h = append(*h, x.(calEntry)) }
func (h *seqHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// timeHeap orders future entries by (ReadyAt, enqueue sequence).
type timeHeap []calEntry

func (h timeHeap) Len() int { return len(h) }
func (h timeHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timeHeap) Push(x any)   { *h = append(*h, x.(calEntry)) }
func (h *timeHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// coreCalendar is one core's pending-task calendar.
type coreCalendar struct {
	ready  seqHeap
	future timeHeap
}

// push queues a task, routing it by its ready time relative to now.
func (c *coreCalendar) push(t Task, at cell.Clock, seq uint64, now cell.Clock) {
	e := calEntry{t: t, at: at, seq: seq}
	if e.at <= now {
		heap.Push(&c.ready, e)
	} else {
		heap.Push(&c.future, e)
	}
}

// settle migrates future entries that have come due by now into the
// ready heap. Clocks only move forward, so entries migrate one way.
func (c *coreCalendar) settle(now cell.Clock) {
	for len(c.future) > 0 && c.future[0].at <= now {
		heap.Push(&c.ready, heap.Pop(&c.future))
	}
}

// length is the number of queued tasks (the load metric placement uses).
func (c *coreCalendar) length() int { return len(c.ready) + len(c.future) }

// earliest returns the feasible start time of the calendar's best task
// given the core clock: now if anything is already runnable, otherwise
// the soonest future ReadyAt. ok is false for an empty calendar.
func (c *coreCalendar) earliest(now cell.Clock) (start cell.Clock, ok bool) {
	c.settle(now)
	if len(c.ready) > 0 {
		return now, true
	}
	if len(c.future) > 0 {
		return c.future[0].at, true
	}
	return 0, false
}

// pop removes and returns the task earliest() identified. The caller
// must have seen ok==true from earliest at the same clock.
func (c *coreCalendar) pop(now cell.Clock) Task {
	c.settle(now)
	if len(c.ready) > 0 {
		return heap.Pop(&c.ready).(calEntry).t
	}
	return heap.Pop(&c.future).(calEntry).t
}

// Calendar is the default event-calendar scheduler.
type Calendar struct {
	cores []*cell.Core
	cals  []coreCalendar // indexed by Core.Index
	seq   uint64         // global enqueue sequence (tie-break)
}

// NewCalendar builds the calendar scheduler over the machine's cores
// (topology order; cores[i].Index == i).
func NewCalendar(cores []*cell.Core) *Calendar {
	return &Calendar{cores: cores, cals: make([]coreCalendar, len(cores))}
}

// Name implements Scheduler.
func (s *Calendar) Name() string { return "calendar" }

// Enqueue implements Scheduler.
func (s *Calendar) Enqueue(core *cell.Core, task Task, readyAt cell.Clock) {
	s.seq++
	s.cals[core.Index].push(task, readyAt, s.seq, core.Now)
}

// Load implements Scheduler.
func (s *Calendar) Load(coreIndex int) int { return s.cals[coreIndex].length() }

// PickNext selects the (core, task) pair with the earliest feasible
// start time by comparing per-core calendar heads: earliest start wins,
// ties go to the lowest core index, and within a core to enqueue order.
func (s *Calendar) PickNext() (*cell.Core, Task) {
	var bestCore *cell.Core
	var bestTime cell.Clock
	for _, core := range s.cores {
		start, ok := s.cals[core.Index].earliest(core.Now)
		if ok && (bestCore == nil || start < bestTime) {
			bestCore, bestTime = core, start
		}
	}
	if bestCore == nil {
		return nil, nil
	}
	return bestCore, s.cals[bestCore.Index].pop(bestCore.Now)
}

// NoteMigration implements Scheduler: charge the migration to both
// cores' counters.
func (s *Calendar) NoteMigration(from, to *cell.Core) {
	from.Stats.MigrationsOut++
	to.Stats.MigrationsIn++
}

// readyCount reports how many of a core's queued tasks are already
// runnable at the core's clock (the stealable set).
func (s *Calendar) readyCount(coreIndex int, now cell.Clock) int {
	c := &s.cals[coreIndex]
	c.settle(now)
	return len(c.ready)
}

// earliestStart exposes a core calendar's earliest feasible start to
// the stealing layer (ok is false for an empty calendar).
func (s *Calendar) earliestStart(coreIndex int, now cell.Clock) (cell.Clock, bool) {
	return s.cals[coreIndex].earliest(now)
}

// stealOldestReady removes and returns the oldest (lowest enqueue
// sequence) ready task of a core. The caller must have seen
// readyCount > 0 at the same clock.
func (s *Calendar) stealOldestReady(coreIndex int) Task {
	return heap.Pop(&s.cals[coreIndex].ready).(calEntry).t
}
