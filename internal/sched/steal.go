package sched

import "herajvm/internal/cell"

// Stealing layers same-kind work stealing over the calendar scheduler —
// the ROADMAP's "an idle SPE should be able to steal queued threads
// from a loaded sibling's calendar". Before every pick, each core with
// no feasible work steals the oldest ready task from the most-loaded
// sibling of its own kind (ties resolve to the lowest core index) when
// the steal would start that task earlier than anything the core
// already has queued, so
// imbalance left behind by placement-time load balancing — unequal
// thread lengths, early finishers — is repaired at run time.
//
// Steals never cross kinds: a task queued on an SPE was compiled and
// placed for the SPE's ISA and memory model, and moving it to another
// kind is a migration (a policy decision with its own costs), not a
// steal. The thief pays Options.StealCycles before the stolen task can
// start, and both sides count the event (Core.Stats.StealsIn/Out).
//
// Determinism: the steal pass walks thieves in core-index order, picks
// victims by (load, lowest index) and tasks by enqueue sequence, and
// consults only core clocks and calendar state — all themselves
// deterministic — so two runs of one program steal identically.
type Stealing struct {
	*Calendar
	stealCycles uint64
	onSteal     func(task Task, from, to *cell.Core, readyAt cell.Clock) cell.Clock
}

// NewStealing builds the work-stealing scheduler over the machine's
// cores (topology order; cores[i].Index == i).
func NewStealing(cores []*cell.Core, opt Options) *Stealing {
	return &Stealing{
		Calendar:    NewCalendar(cores, opt),
		stealCycles: opt.StealCycles,
		onSteal:     opt.OnSteal,
	}
}

// Name implements Scheduler.
func (s *Stealing) Name() string { return "steal" }

// PickNext runs a steal pass, then picks as the calendar does.
func (s *Stealing) PickNext() (*cell.Core, Task) {
	s.stealPass()
	return s.Calendar.PickNext()
}

// stealPass lets every core with no feasible work steal one task from
// a loaded same-kind sibling — but only when the steal is profitable:
// the stolen task must start on the thief strictly earlier than
// anything the thief already has queued. That single rule covers every
// case: an empty calendar always steals, a core parked behind a
// far-future sleeper steals (the stolen work starts first), and a core
// that just stole never immediately re-steals (a second steal cannot
// start earlier than the first), so an idle core takes one task at a
// time instead of hoarding a victim's queue. Thieves are visited in
// core-index order.
func (s *Stealing) stealPass() {
	for _, thief := range s.cores {
		if s.readyCount(thief.Index, thief.Now) != 0 {
			// Runnable work now: no steal can start earlier.
			continue
		}
		victim := s.pickVictim(thief)
		if victim == nil {
			continue
		}
		// The stolen task would start after the steal penalty, but never
		// earlier in simulated time than the victim's clock — that is
		// the first moment the victim's state (the task's ready event,
		// its cached writes) can be published to a sibling, and a
		// lagging thief's clock must not rewind that causality. Judging
		// profitability on this floor also keeps the no-hoarding
		// invariant exact: the victim's clock only moves forward, so a
		// second steal can never land earlier than the first.
		stealStart := thief.Now + s.stealCycles
		if victim.Now > stealStart {
			stealStart = victim.Now
		}
		if start, ok := s.earliestStart(thief.Index, thief.Now); ok && stealStart >= start {
			// The thief's own queued work begins no later: not profitable.
			continue
		}
		task, ok := s.stealOldestReady(victim.Index)
		if !ok {
			// Every ready task on the victim is pinned in place.
			continue
		}
		victim.Stats.StealsOut++
		thief.Stats.StealsIn++
		at := stealStart
		if s.onSteal != nil {
			at = s.onSteal(task, victim, thief, at)
		}
		s.Enqueue(thief, task, at)
	}
}

// pickVictim returns the most-loaded same-kind sibling worth stealing
// from (stealing future work would start it no earlier, so the victim
// must have ready work; see Calendar.pickLoadedVictim for the shared
// selection rule).
func (s *Stealing) pickVictim(thief *cell.Core) *cell.Core {
	return s.pickLoadedVictim(func(v *cell.Core) bool {
		return v != thief && v.Kind == thief.Kind
	})
}
