package sched

import (
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
)

// mkCores builds synthetic cores (topology order, Index == position)
// for driving the schedulers without a machine.
func mkCores(kinds ...isa.CoreKind) []*cell.Core {
	perKind := map[isa.CoreKind]int{}
	out := make([]*cell.Core, len(kinds))
	for i, k := range kinds {
		out[i] = &cell.Core{Kind: k, ID: perKind[k], Index: i}
		perKind[k]++
	}
	return out
}

func TestRegistry(t *testing.T) {
	names := Names()
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	if !seen["calendar"] || !seen["steal"] || !seen["migrate"] {
		t.Fatalf("registry missing built-ins: %v", names)
	}
	cores := mkCores(isa.PPE)
	s, err := New("", cores, Options{})
	if err != nil || s.Name() != DefaultName {
		t.Errorf("New(\"\") = %v, %v; want the %q scheduler", s, err, DefaultName)
	}
	if s, err := New("STEAL", cores, Options{}); err != nil || s.Name() != "steal" {
		t.Errorf("scheduler names should be case-insensitive: %v, %v", s, err)
	}
	if _, err := New("nope", cores, Options{}); err == nil {
		t.Error("unknown scheduler name should error")
	}
}

// TestCalendarOrdering exercises the two-heap calendar directly: FIFO
// among already-runnable tasks, (ReadyAt, enqueue order) among future
// ones, and settle migrating entries as the clock advances.
func TestCalendarOrdering(t *testing.T) {
	type task struct{ name string }
	var cal coreCalendar

	// Two ready tasks (ReadyAt <= now) and two future ones.
	early1, early2 := &task{"e1"}, &task{"e2"}
	late1, late2 := &task{"l1"}, &task{"l2"}
	now := cell.Clock(10)
	cal.push(early1, 0, 1, now)
	cal.push(late2, 100, 2, now)
	cal.push(late1, 100, 3, now)
	cal.push(early2, 5, 4, now)
	if cal.length() != 4 {
		t.Fatalf("length = %d", cal.length())
	}

	if start, ok := cal.earliest(now); !ok || start != now {
		t.Fatalf("earliest = %d,%v want %d,true", start, ok, now)
	}
	if got := cal.pop(now); got != early1 {
		t.Error("ready tasks must pop in enqueue order (early1 first)")
	}
	if got := cal.pop(now); got != early2 {
		t.Error("ready tasks must pop in enqueue order (early2 second)")
	}

	// Only future tasks left: earliest is their ReadyAt; equal ReadyAt
	// resolves by enqueue order (late2 was pushed before late1).
	if start, ok := cal.earliest(now); !ok || start != 100 {
		t.Fatalf("future earliest = %d,%v want 100,true", start, ok)
	}
	if got := cal.pop(now); got != late2 {
		t.Error("future ties must resolve by enqueue order")
	}

	// Advancing the clock settles due entries into the ready set.
	now = 200
	if start, ok := cal.earliest(now); !ok || start != now {
		t.Fatalf("post-advance earliest = %d,%v want %d,true", start, ok, now)
	}
	if got := cal.pop(now); got != late1 {
		t.Error("settled task lost")
	}
	if _, ok := cal.earliest(now); ok || cal.length() != 0 {
		t.Error("calendar should be empty")
	}
}

func TestStealFiresOnIdleSameKindSibling(t *testing.T) {
	cores := mkCores(isa.PPE, isa.SPE, isa.SPE)
	spe0, spe1 := cores[1], cores[2]
	var hookTask Task
	var hookFrom, hookTo *cell.Core
	var hookAt cell.Clock
	s, err := New("steal", cores, Options{
		StealCycles: 250,
		OnSteal: func(task Task, from, to *cell.Core, at cell.Clock) cell.Clock {
			hookTask, hookFrom, hookTo, hookAt = task, from, to, at
			return at
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	a, b, c := &struct{ n int }{1}, &struct{ n int }{2}, &struct{ n int }{3}
	s.Enqueue(spe0, a, 0)
	s.Enqueue(spe0, b, 0)
	s.Enqueue(spe0, c, 0)

	core, task := s.PickNext()
	// The steal pass runs first: idle SPE1 takes the oldest ready task
	// (a) with the 250-cycle penalty, so the pick returns SPE0 with b.
	if core != spe0 || task != b {
		t.Errorf("pick = %v,%v; want SPE0 with the second task", core, task)
	}
	if spe0.Stats.StealsOut != 1 || spe1.Stats.StealsIn != 1 {
		t.Errorf("steal counters: out=%d in=%d, want 1/1",
			spe0.Stats.StealsOut, spe1.Stats.StealsIn)
	}
	if hookTask != a || hookFrom != spe0 || hookTo != spe1 || hookAt != 250 {
		t.Errorf("OnSteal saw (%v, %v->%v, %d); want (a, SPE0->SPE1, 250)",
			hookTask, hookFrom, hookTo, hookAt)
	}
	if s.Load(spe1.Index) != 1 {
		t.Errorf("thief load = %d, want 1", s.Load(spe1.Index))
	}
	// The PPE (different kind) must not have stolen.
	if cores[0].Stats.StealsIn != 0 {
		t.Error("PPE stole from an SPE")
	}
}

func TestStealNeverCrossesKinds(t *testing.T) {
	cores := mkCores(isa.PPE, isa.SPE, isa.VPU)
	spe0 := cores[1]
	s, err := New("steal", cores, Options{StealCycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.Enqueue(spe0, &struct{ i int }{i}, 0)
	}
	s.PickNext()
	for _, c := range cores {
		if c.Stats.StealsIn != 0 || c.Stats.StealsOut != 0 {
			t.Errorf("%v: steals in/out = %d/%d; the SPE has no same-kind sibling, nothing may steal",
				c, c.Stats.StealsIn, c.Stats.StealsOut)
		}
	}
	if s.Load(spe0.Index) != 2 {
		t.Errorf("SPE0 load = %d after one pick, want 2", s.Load(spe0.Index))
	}
}

func TestStealPicksMostLoadedVictimLowestIndexTie(t *testing.T) {
	cores := mkCores(isa.PPE, isa.SPE, isa.SPE, isa.SPE)
	spe0, spe1, spe2 := cores[1], cores[2], cores[3]
	s, _ := New("steal", cores, Options{StealCycles: 10})
	for i := 0; i < 2; i++ {
		s.Enqueue(spe0, &struct{ i int }{i}, 0)
	}
	for i := 0; i < 3; i++ {
		s.Enqueue(spe1, &struct{ i int }{10 + i}, 0)
	}
	s.PickNext()
	if spe1.Stats.StealsOut != 1 || spe2.Stats.StealsIn != 1 {
		t.Errorf("most-loaded victim: SPE1 out=%d SPE2 in=%d, want 1/1",
			spe1.Stats.StealsOut, spe2.Stats.StealsIn)
	}
	if spe0.Stats.StealsOut != 0 {
		t.Error("the less-loaded sibling was robbed")
	}

	// Equal loads: the lowest-index victim is chosen.
	cores2 := mkCores(isa.SPE, isa.SPE, isa.SPE)
	s2, _ := New("steal", cores2, Options{})
	for i := 0; i < 2; i++ {
		s2.Enqueue(cores2[0], &struct{ i int }{i}, 0)
		s2.Enqueue(cores2[1], &struct{ i int }{10 + i}, 0)
	}
	s2.PickNext()
	if cores2[0].Stats.StealsOut != 1 || cores2[1].Stats.StealsOut != 0 {
		t.Errorf("tie should rob the lowest index: out=%d/%d",
			cores2[0].Stats.StealsOut, cores2[1].Stats.StealsOut)
	}
}

func TestStealLeavesLoneAndFutureWorkAlone(t *testing.T) {
	cores := mkCores(isa.SPE, isa.SPE)
	s, _ := New("steal", cores, Options{StealCycles: 10})

	// A lone queued task is never handed off.
	s.Enqueue(cores[0], &struct{}{}, 0)
	if core, _ := s.PickNext(); core != cores[0] {
		t.Errorf("lone task ran on %v, want SPE0", core)
	}
	if cores[1].Stats.StealsIn != 0 {
		t.Error("lone task was stolen")
	}

	// Future-only victims have nothing runnable to steal.
	s.Enqueue(cores[0], &struct{ a int }{1}, 5000)
	s.Enqueue(cores[0], &struct{ a int }{2}, 6000)
	s.PickNext()
	if cores[1].Stats.StealsIn != 0 {
		t.Error("future-only work was stolen; a steal cannot start it earlier")
	}
}

// TestStealByFutureOnlyThief: a core parked behind a far-future sleeper
// has no feasible work *now* and must still steal from a loaded
// sibling.
func TestStealByFutureOnlyThief(t *testing.T) {
	cores := mkCores(isa.SPE, isa.SPE)
	s, _ := New("steal", cores, Options{StealCycles: 10})
	s.Enqueue(cores[1], &struct{}{}, 1_000_000) // far-future sleeper
	s.Enqueue(cores[0], &struct{ a int }{1}, 0)
	s.Enqueue(cores[0], &struct{ a int }{2}, 0)
	s.PickNext()
	if cores[1].Stats.StealsIn != 1 {
		t.Error("a thief with only far-future work should still steal ready work")
	}
}

// TestStealTakesOneTaskAtATime: after a steal, the thief's pending
// stolen task (queued StealCycles into its future) must suppress
// further steals — an idle core repairs imbalance one task at a time
// instead of hoarding the victim's queue.
func TestStealTakesOneTaskAtATime(t *testing.T) {
	cores := mkCores(isa.SPE, isa.SPE)
	s, _ := New("steal", cores, Options{StealCycles: 10})
	for i := 0; i < 6; i++ {
		s.Enqueue(cores[0], &struct{ i int }{i}, 0)
	}
	for i := 0; i < 3; i++ {
		s.PickNext()
	}
	if got := cores[1].Stats.StealsIn; got != 1 {
		t.Errorf("idle sibling stole %d tasks over 3 picks, want exactly 1", got)
	}
}

// TestPinnedTasksAreNeverStolen: a pinned task (a kernel worker bound
// to its chunk's core) must stay put even when an idle same-kind
// sibling would otherwise steal it; unpinned tasks on the same victim
// remain stealable.
func TestPinnedTasksAreNeverStolen(t *testing.T) {
	cores := mkCores(isa.SPE, isa.SPE)
	victim, thief := cores[0], cores[1]
	type task struct{ pinned bool }
	p1, p2, p3 := &task{true}, &task{true}, &task{true}
	s, _ := New("steal", cores, Options{
		StealCycles: 10,
		Pinned:      func(x Task) bool { return x.(*task).pinned },
	})
	s.Enqueue(victim, p1, 0)
	s.Enqueue(victim, p2, 0)
	s.Enqueue(victim, p3, 0)
	s.PickNext()
	if thief.Stats.StealsIn != 0 || victim.Stats.StealsOut != 0 {
		t.Fatalf("pinned tasks were stolen: in=%d out=%d",
			thief.Stats.StealsIn, victim.Stats.StealsOut)
	}

	// An unpinned task among pinned ones is still stealable — and the
	// thief takes the oldest *stealable* one, not the oldest overall.
	free := &task{false}
	s.Enqueue(victim, free, 0)
	var stolen Task
	s2, _ := New("steal", cores, Options{
		StealCycles: 10,
		Pinned:      func(x Task) bool { return x.(*task).pinned },
		OnSteal: func(x Task, _, _ *cell.Core, at cell.Clock) cell.Clock {
			stolen = x
			return at
		},
	})
	s2.Enqueue(victim, p1, 0)
	s2.Enqueue(victim, free, 0)
	s2.Enqueue(victim, p2, 0)
	s2.PickNext()
	if stolen != free {
		t.Errorf("stole %v, want the unpinned task", stolen)
	}
}

// TestStealNeverRewindsVictimClock: a thief whose clock lags the
// victim must not start the stolen task before the victim's clock —
// the first simulated moment the victim's state can be published.
func TestStealNeverRewindsVictimClock(t *testing.T) {
	cores := mkCores(isa.SPE, isa.SPE)
	victim, thief := cores[0], cores[1]
	victim.Now = 60_000
	thief.Now = 100 // lagging sibling, long idle
	var gotAt cell.Clock
	s, _ := New("steal", cores, Options{
		StealCycles: 10,
		OnSteal: func(_ Task, _, _ *cell.Core, at cell.Clock) cell.Clock {
			gotAt = at
			return at
		},
	})
	for i := 0; i < 4; i++ {
		s.Enqueue(victim, &struct{ a int }{i}, 50_000) // ready: 50000 <= victim.Now
	}
	s.PickNext()
	if thief.Stats.StealsIn != 1 {
		t.Fatal("expected a steal")
	}
	if gotAt != 60_000 {
		t.Errorf("stolen task starts at %d, want the victim's clock 60000", gotAt)
	}
	// And the lagging thief must not keep stealing while the victim
	// stays loaded: another steal could not land earlier than the
	// pending stolen task, so the profitability guard rejects it.
	s.PickNext()
	if thief.Stats.StealsIn != 1 {
		t.Errorf("lagging thief stole again (%d steals); the guard must see the victim-clock floor",
			thief.Stats.StealsIn)
	}
}
