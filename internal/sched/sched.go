// Package sched is Hera-JVM's pluggable scheduling subsystem. The VM
// drives the whole machine through the small Scheduler interface below;
// the concrete algorithm — which core runs which queued thread next —
// is a registry entry selected by name, exactly like the core-kind
// registry in internal/isa. Two schedulers ship:
//
//   - "calendar" (the default): one per-core event calendar, picking the
//     machine-wide earliest feasible (core, thread) pair with fully
//     deterministic tie-breaking. See calendar.go.
//   - "steal": the calendar plus same-kind work stealing — a core whose
//     calendar has no work deterministically steals the oldest ready
//     thread from its most-loaded same-kind sibling. See steal.go.
//
// The package deliberately knows nothing about threads: tasks are
// opaque, and everything the algorithms need (the owning core, the
// ready time, per-core clocks and statistics) arrives through the
// interface parameters and the cell.Core values the scheduler is
// constructed over.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"herajvm/internal/cell"
)

// Task is one opaque schedulable unit — the VM's *Thread. The scheduler
// never inspects it; ownership changes it makes (steals) flow back to
// the owner through Options.OnSteal.
type Task = any

// Options configures a scheduler instance. Schedulers ignore the fields
// they have no use for.
type Options struct {
	// StealCycles is the penalty a work-stealing scheduler charges per
	// steal: the stolen task starts on the thief no earlier than the
	// thief's clock plus StealCycles (the cost of pulling the thread's
	// context across the bus).
	StealCycles uint64

	// OnSteal, when non-nil, is invoked once per steal before the task
	// is queued on the thief. The caller updates its own bookkeeping
	// (thread->core binding, publishing the victim's cached writes) and
	// returns the — possibly adjusted, never earlier — time the task is
	// queued at.
	OnSteal func(task Task, from, to *cell.Core, readyAt cell.Clock) cell.Clock
}

// Scheduler decides which queued task each core runs next. One instance
// drives one machine; implementations must be deterministic — two runs
// of the same program must make identical decisions.
type Scheduler interface {
	// Enqueue queues task on core; it becomes runnable at readyAt.
	Enqueue(core *cell.Core, task Task, readyAt cell.Clock)

	// PickNext removes and returns the machine-wide next task and the
	// core it runs on, or (nil, nil) when nothing is queued anywhere
	// (the caller's deadlock signal).
	PickNext() (*cell.Core, Task)

	// Load reports how many tasks are queued on the core with the given
	// global index — the balance metric placement uses to pick a core.
	Load(coreIndex int) int

	// NoteMigration records a thread migration between cores (the
	// cross-kind migration accounting hook; both built-ins bump the
	// cores' MigrationsOut/MigrationsIn counters).
	NoteMigration(from, to *cell.Core)

	// Name returns the scheduler's registered name.
	Name() string
}

// Factory builds a scheduler over a machine's cores. The slice must be
// in topology order with cores[i].Index == i (cell.Machine.Cores()
// provides exactly that).
type Factory func(cores []*cell.Core, opt Options) Scheduler

// DefaultName is the scheduler an empty selection resolves to.
const DefaultName = "calendar"

var registry = map[string]Factory{}

// RegisterScheduler adds a scheduler to the registry under a
// case-insensitive name. Registering a duplicate or empty name panics;
// registration normally happens at package init.
func RegisterScheduler(name string, f Factory) {
	key := strings.ToLower(name)
	if key == "" {
		panic("sched: scheduler registered without a name")
	}
	if f == nil {
		panic(fmt.Sprintf("sched: scheduler %q registered without a factory", name))
	}
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("sched: scheduler %q already registered", name))
	}
	registry[key] = f
}

// Names lists the registered scheduler names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds the named scheduler over the machine's cores ("" selects
// DefaultName).
func New(name string, cores []*cell.Core, opt Options) (Scheduler, error) {
	if name == "" {
		name = DefaultName
	}
	f := registry[strings.ToLower(name)]
	if f == nil {
		return nil, fmt.Errorf("sched: unknown scheduler %q (want %s)",
			name, strings.Join(Names(), ", "))
	}
	return f(cores, opt), nil
}

func init() {
	RegisterScheduler("calendar", func(cores []*cell.Core, _ Options) Scheduler {
		return NewCalendar(cores)
	})
	RegisterScheduler("steal", func(cores []*cell.Core, opt Options) Scheduler {
		return NewStealing(cores, opt)
	})
}
