// Package sched is Hera-JVM's pluggable scheduling subsystem. The VM
// drives the whole machine through the small Scheduler interface below;
// the concrete algorithm — which core runs which queued thread next —
// is a registry entry selected by name, exactly like the core-kind
// registry in internal/isa. Three schedulers ship:
//
//   - "calendar" (the default): one per-core event calendar, picking the
//     machine-wide earliest feasible (core, thread) pair with fully
//     deterministic tie-breaking. See calendar.go.
//   - "steal": the calendar plus same-kind work stealing — a core whose
//     calendar has no work deterministically steals the oldest ready
//     thread from its most-loaded same-kind sibling. See steal.go.
//   - "migrate": stealing plus cost-gated cross-kind migration — an
//     idle core of one kind takes the longest-queued thread of an
//     overloaded core of another kind when landing it (migration
//     penalty + recompilation + one predicted service round) beats the
//     thread's predicted start time where it is. See migrate.go.
//
// The package deliberately knows nothing about threads: tasks are
// opaque, and everything the algorithms need (the owning core, the
// ready time, per-core clocks, statistics, per-kind cost predictions)
// arrives through the interface parameters, the Options hooks and the
// cell.Core values the scheduler is constructed over. See
// docs/ARCHITECTURE.md for the interface contract every implementation
// must honour (determinism, clock monotonicity, cache visibility).
package sched

import (
	"fmt"
	"sort"
	"strings"

	"herajvm/internal/cell"
)

// Task is one opaque schedulable unit — the VM's *Thread. The scheduler
// never inspects it; ownership changes it makes (steals) flow back to
// the owner through Options.OnSteal.
type Task = any

// Options configures a scheduler instance. Schedulers ignore the fields
// they have no use for.
type Options struct {
	// StealCycles is the penalty a work-stealing scheduler charges per
	// steal: the stolen task starts on the thief no earlier than the
	// thief's clock plus StealCycles (the cost of pulling the thread's
	// context across the bus).
	StealCycles uint64

	// OnSteal, when non-nil, is invoked once per steal before the task
	// is queued on the thief. The caller updates its own bookkeeping
	// (thread->core binding, publishing the victim's cached writes) and
	// returns the — possibly adjusted, never earlier — time the task is
	// queued at.
	OnSteal func(task Task, from, to *cell.Core, readyAt cell.Clock) cell.Clock

	// MigrateCycles is the penalty the "migrate" scheduler charges per
	// cross-kind migration before recompilation: packaging the thread's
	// frames and moving them to a core with a different ISA and memory
	// model.
	MigrateCycles uint64

	// CostOf, when non-nil, predicts the cycles one queued task will
	// consume per scheduling round on the given core (the VM supplies
	// the scheduling quantum scaled by the kind's migration affinity).
	// It feeds DrainEstimate and the migrate scheduler's cost gate; nil
	// degrades DrainEstimate to the bare core clock and disables
	// cross-kind migration.
	CostOf func(task Task, core *cell.Core) uint64

	// Pinned, when non-nil, reports that a task is pinned to the core
	// it is queued on and must not be stolen or migrated (the VM pins
	// data-parallel kernel workers one-per-core: their chunk assignment
	// and staged local-store tiles are part of the launch plan, and
	// moving one would silently re-shape the fan-out). Pinned tasks
	// still count toward Load and DrainEstimate — they occupy the core
	// either way. nil means nothing is pinned.
	Pinned func(task Task) bool

	// RecompileCost, when non-nil, reports whether task could execute
	// on core to's kind right now (all frames at kind-independent
	// resume points, a compiler present) and, if so, the predicted
	// cycles of compiling its methods for that kind — 0 when everything
	// is already compiled. nil disables cross-kind migration.
	RecompileCost func(task Task, to *cell.Core) (uint64, bool)

	// OnMigrate, when non-nil, performs a cross-kind migration the cost
	// gate approved: the caller rebinds the task to the target core
	// (recompiling and translating frame state, publishing the victim's
	// cached writes) and returns the — possibly adjusted, never earlier
	// — time the task is queued at, or ok == false to veto the move
	// (nothing has been dequeued yet). nil disables cross-kind
	// migration.
	OnMigrate func(task Task, from, to *cell.Core, readyAt cell.Clock) (at cell.Clock, ok bool)
}

// Scheduler decides which queued task each core runs next. One instance
// drives one machine; implementations must be deterministic — two runs
// of the same program must make identical decisions.
type Scheduler interface {
	// Enqueue queues task on core; it becomes runnable at readyAt.
	Enqueue(core *cell.Core, task Task, readyAt cell.Clock)

	// PickNext removes and returns the machine-wide next task and the
	// core it runs on, or (nil, nil) when nothing is queued anywhere
	// (the caller's deadlock signal).
	PickNext() (*cell.Core, Task)

	// Load reports how many tasks are queued on the core with the given
	// global index — the raw queue-depth balance metric.
	Load(coreIndex int) int

	// DrainEstimate predicts when the core with the given global index
	// would finish the work already queued on it: the core's clock plus
	// the Options.CostOf-predicted cost of every queued task (the bare
	// clock when no CostOf hook was configured). Placement weights
	// candidate cores by it — queue depth times mean predicted per-task
	// cost, plus core clock skew — so less imbalance is created for the
	// stealing/migrating schedulers to repair.
	DrainEstimate(coreIndex int) cell.Clock

	// NoteMigration records a thread migration between cores (the
	// cross-kind migration accounting hook; both built-ins bump the
	// cores' MigrationsOut/MigrationsIn counters).
	NoteMigration(from, to *cell.Core)

	// Remove deletes task from the core's queue wherever it sits (ready
	// or future) and reports whether it was found. The VM uses it when a
	// job is frozen for hand-off: the job's parked threads must leave
	// the machine without being scheduled. Removal must not disturb the
	// ordering of the remaining entries.
	Remove(core *cell.Core, task Task) bool

	// Name returns the scheduler's registered name.
	Name() string
}

// BestCore returns the position (within cores) of the core with the
// smallest DrainEstimate, breaking ties by Load and then by position,
// plus that estimate. This is the one drain-ranking both consumers of
// the scheduler's predictions share: thread placement (the VM's
// pickCore) and the admission pipeline's deadline probe — a job is
// placed on, and its queueing delay predicted from, the same core the
// same way, so an admission verdict and the subsequent placement can
// never disagree about where the work would go. cores must be
// non-empty; it need not cover the whole machine (callers pass one
// kind's pool).
func BestCore(s Scheduler, cores []*cell.Core) (pos int, drain cell.Clock) {
	pos = 0
	drain = s.DrainEstimate(cores[0].Index)
	bestLoad := s.Load(cores[0].Index)
	for i := 1; i < len(cores); i++ {
		d := s.DrainEstimate(cores[i].Index)
		load := s.Load(cores[i].Index)
		if d < drain || (d == drain && load < bestLoad) {
			pos, drain, bestLoad = i, d, load
		}
	}
	return pos, drain
}

// Factory builds a scheduler over a machine's cores. The slice must be
// in topology order with cores[i].Index == i (cell.Machine.Cores()
// provides exactly that).
type Factory func(cores []*cell.Core, opt Options) Scheduler

// DefaultName is the scheduler an empty selection resolves to.
const DefaultName = "calendar"

var registry = map[string]Factory{}

// RegisterScheduler adds a scheduler to the registry under a
// case-insensitive name. Registering a duplicate or empty name panics;
// registration normally happens at package init.
func RegisterScheduler(name string, f Factory) {
	key := strings.ToLower(name)
	if key == "" {
		panic("sched: scheduler registered without a name")
	}
	if f == nil {
		panic(fmt.Sprintf("sched: scheduler %q registered without a factory", name))
	}
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("sched: scheduler %q already registered", name))
	}
	registry[key] = f
}

// Names lists the registered scheduler names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds the named scheduler over the machine's cores ("" selects
// DefaultName).
func New(name string, cores []*cell.Core, opt Options) (Scheduler, error) {
	if name == "" {
		name = DefaultName
	}
	f := registry[strings.ToLower(name)]
	if f == nil {
		return nil, fmt.Errorf("sched: unknown scheduler %q (want %s)",
			name, strings.Join(Names(), ", "))
	}
	return f(cores, opt), nil
}

func init() {
	RegisterScheduler("calendar", func(cores []*cell.Core, opt Options) Scheduler {
		return NewCalendar(cores, opt)
	})
	RegisterScheduler("steal", func(cores []*cell.Core, opt Options) Scheduler {
		return NewStealing(cores, opt)
	})
	RegisterScheduler("migrate", func(cores []*cell.Core, opt Options) Scheduler {
		return NewMigrating(cores, opt)
	})
}
