package sched

import "herajvm/internal/cell"

// Migrating layers cost-gated cross-kind migration over the stealing
// scheduler, closing the loop the paper describes between scheduling
// and placement: because both the migration cost and the per-kind
// execution cost are modeled, the runtime may *re-place* a queued
// thread onto a different core kind at run time — not just shuffle it
// between same-kind siblings. Same-kind steals are still preferred
// (they are cheaper: no recompilation, no ISA change); the migration
// pass runs only for cores the steal pass left without feasible work.
//
// The cost gate. An idle core of kind A may take a ready thread from
// an overloaded core of kind B only when the thread is predicted to
// complete its next service round earlier on A than on B — the same
// one-round horizon on both sides:
//
//	landing + recompile + service(A)  <  start(B) + service(B)
//
// where landing is the thief's clock plus Options.MigrateCycles,
// floored at the victim's clock (the first moment the victim's state
// can be published — migrated work never rewinds simulated causality);
// recompile is the jit-supplied predicted cost of compiling the
// thread's methods for kind A (Options.RecompileCost, zero when warm —
// it is charged to the thread's start like a cold code-cache fill);
// service(K) is one predicted scheduling round on kind K
// (Options.CostOf, the quantum scaled by the kind's migration
// affinity); and start(B) is the thread's predicted start time where
// it is — the victim's clock plus the predicted cost of one service
// round for each ready thread enqueued before it, exact under the
// calendar's FIFO ready service. Candidates are tried longest
// predicted wait first (the most recently enqueued ready thread
// backward), and the first that is migratable and wins the gate
// moves; a thread near the queue head has little wait to save, so it
// passes only when the kinds' service prices are asymmetric enough —
// e.g. moving off a reluctant high-affinity kind — for the round
// itself to finish earlier elsewhere. The moved thread completes its
// next round strictly earlier than it would have, and the victim's
// queue drains by one: the migration is a predicted win for both
// sides, or it does not happen.
//
// Mechanically a migration is a steal with a kind change: the victim's
// data cache is flushed (release) and the thief's purged (acquire) by
// the VM's OnMigrate hook, which also recompiles and rebinds the
// thread's frames; both cores count the event
// (Core.Stats.MigrationsIn/Out via NoteMigration).
//
// Determinism: thieves are visited in core-index order, victims picked
// by (load, lowest index), tasks by enqueue sequence, and every gate
// input (clocks, calendar state, cost predictions) is itself
// deterministic, so two runs of one program migrate identically.
// Migrating's cost predictor is the embedded Calendar's costOf (the
// same Options.CostOf hook that feeds DrainEstimate and readyByWait),
// so the gate and the drain estimates can never disagree on prices.
type Migrating struct {
	*Stealing
	migrateCycles uint64
	recompile     func(Task, *cell.Core) (uint64, bool)
	onMigrate     func(Task, *cell.Core, *cell.Core, cell.Clock) (cell.Clock, bool)
}

// NewMigrating builds the migrating scheduler over the machine's cores
// (topology order; cores[i].Index == i). Cross-kind migration needs
// all three of Options.CostOf, Options.RecompileCost and
// Options.OnMigrate; leaving any nil reduces the scheduler to plain
// same-kind stealing.
func NewMigrating(cores []*cell.Core, opt Options) *Migrating {
	return &Migrating{
		Stealing:      NewStealing(cores, opt),
		migrateCycles: opt.MigrateCycles,
		recompile:     opt.RecompileCost,
		onMigrate:     opt.OnMigrate,
	}
}

// Name implements Scheduler.
func (s *Migrating) Name() string { return "migrate" }

// PickNext runs the same-kind steal pass, then the cross-kind
// migration pass, then picks as the calendar does.
func (s *Migrating) PickNext() (*cell.Core, Task) {
	s.stealPass()
	s.migratePass()
	return s.Calendar.PickNext()
}

// migratePass lets every core with no runnable work of its own take one
// thread from a loaded core of a different kind — when the cost gate
// approves. Thieves are visited in core-index order and take at most
// one thread per pass; the same profitability guard as stealing keeps a
// thief that already has queued work (a pending steal, a future
// sleeper) from migrating anything that would start no earlier.
func (s *Migrating) migratePass() {
	if s.costOf == nil || s.recompile == nil || s.onMigrate == nil {
		return
	}
	for _, thief := range s.cores {
		if s.readyCount(thief.Index, thief.Now) != 0 {
			// Runnable work now: nothing migrated could start earlier.
			continue
		}
		victim := s.pickMigrationVictim(thief)
		if victim == nil {
			continue
		}
		// Landing time: the migration penalty, floored at the victim's
		// clock — the victim's state (the thread's frames, its cached
		// writes) cannot be published to another core before then.
		landing := thief.Now + s.migrateCycles
		if victim.Now > landing {
			landing = victim.Now
		}
		// Try the victim's ready threads longest predicted wait first;
		// the first migratable gate winner moves.
		for _, cand := range s.readyByWait(victim.Index, victim.Now) {
			if s.isPinned(cand.t) {
				continue // pinned kernel workers never leave their core
			}
			recompile, ok := s.recompile(cand.t, thief)
			if !ok {
				// Not migratable right now: a frame mid-expansion,
				// pending runtime state, or no compiler for the
				// thief's kind.
				continue
			}
			if landing+recompile+s.costOf(cand.t, thief) >= cand.start+s.costOf(cand.t, victim) {
				continue // the gate loses: staying is predicted no worse
			}
			if start, ok := s.earliestStart(thief.Index, thief.Now); ok && landing+recompile >= start {
				// The thief's own queued work begins no later than this
				// candidate could land. Recompile cost varies per
				// candidate (warm methods are free), so keep scanning —
				// a cheaper candidate may still land first.
				continue
			}
			at, ok := s.onMigrate(cand.t, victim, thief, landing)
			if !ok {
				continue // vetoed (e.g. code region full); nothing was dequeued
			}
			s.takeReady(victim.Index, cand.seq)
			s.NoteMigration(victim, thief)
			s.Enqueue(thief, cand.t, at)
			break
		}
	}
}

// pickMigrationVictim returns the most-loaded core of a *different*
// kind worth migrating from (see Calendar.pickLoadedVictim for the
// shared selection rule).
func (s *Migrating) pickMigrationVictim(thief *cell.Core) *cell.Core {
	return s.pickLoadedVictim(func(v *cell.Core) bool {
		return v.Kind != thief.Kind
	})
}
