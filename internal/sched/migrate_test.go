package sched

import (
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
)

// migrateOpts returns Options wired with synthetic cost hooks: every
// task costs `service` cycles per round on any core, recompilation
// costs `recompile` (always feasible), and OnMigrate accepts at the
// offered time. The returned pointers observe the last migration.
func migrateOpts(service, recompile, migrateCycles uint64) (Options, *struct {
	task     Task
	from, to *cell.Core
	at       cell.Clock
	count    int
}) {
	seen := &struct {
		task     Task
		from, to *cell.Core
		at       cell.Clock
		count    int
	}{}
	return Options{
		MigrateCycles: migrateCycles,
		CostOf:        func(Task, *cell.Core) uint64 { return service },
		RecompileCost: func(Task, *cell.Core) (uint64, bool) { return recompile, true },
		OnMigrate: func(task Task, from, to *cell.Core, at cell.Clock) (cell.Clock, bool) {
			seen.task, seen.from, seen.to, seen.at = task, from, to, at
			seen.count++
			return at, true
		},
	}, seen
}

// TestMigrateFiresWhenGateWins: an idle PPE beside an SPE with four
// ready tasks migrates exactly the longest-queued one — the youngest
// ready task, whose FIFO start is furthest out — when landing +
// recompile + one service round on the PPE beats the task's predicted
// round completion on the SPE (start after the 3 ready tasks ahead of
// it, 3000, plus its own 1000-cycle round = 4000 > 200+500+1000).
func TestMigrateFiresWhenGateWins(t *testing.T) {
	cores := mkCores(isa.PPE, isa.SPE)
	ppe, spe := cores[0], cores[1]
	opt, seen := migrateOpts(1000, 500, 200)
	s, err := New("migrate", cores, opt)
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]Task, 4)
	for i := range tasks {
		tasks[i] = &struct{ i int }{i}
		s.Enqueue(spe, tasks[i], 0)
	}
	core, next := s.PickNext()
	if seen.count != 1 {
		t.Fatalf("migrations = %d, want exactly 1", seen.count)
	}
	if seen.task != tasks[3] || seen.from != spe || seen.to != ppe {
		t.Errorf("migrated (%v, %v->%v); want the youngest ready task (longest wait), SPE->PPE",
			seen.task, seen.from, seen.to)
	}
	if seen.at != 200 {
		t.Errorf("landing time %d, want thief clock + MigrateCycles = 200", seen.at)
	}
	if ppe.Stats.MigrationsIn != 1 || spe.Stats.MigrationsOut != 1 {
		t.Errorf("migration counters in/out = %d/%d, want 1/1",
			ppe.Stats.MigrationsIn, spe.Stats.MigrationsOut)
	}
	// The pick itself: the SPE's FIFO order among the remaining ready
	// tasks is undisturbed (the migrated task sits 200 cycles in the
	// PPE's future).
	if core != spe || next != tasks[0] {
		t.Errorf("pick = %v,%v; want SPE with its oldest ready task", core, next)
	}
}

// TestMigrateNeverFiresWhenGateLoses sweeps the gate's cost inputs:
// a predicted dead heat (equal round completion on both sides — ties
// must stay put), a recompile estimate dearer than the queue wait,
// and a huge MigrateCycles penalty; no migration may happen in any of
// them.
func TestMigrateNeverFiresWhenGateLoses(t *testing.T) {
	cases := []struct {
		name                        string
		queued                      int
		service, recompile, penalty uint64
	}{
		{"dead heat", 2, 1000, 1000, 0},
		{"recompile too dear", 4, 1000, 10_000, 0},
		{"penalty too dear", 4, 1000, 0, 10_000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cores := mkCores(isa.PPE, isa.SPE)
			spe := cores[1]
			opt, seen := migrateOpts(tc.service, tc.recompile, tc.penalty)
			s, err := New("migrate", cores, opt)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < tc.queued; i++ {
				s.Enqueue(spe, &struct{ i int }{i}, 0)
			}
			s.PickNext()
			if seen.count != 0 {
				t.Errorf("cost gate lost but %d migrations fired", seen.count)
			}
			for _, c := range cores {
				if c.Stats.MigrationsIn != 0 || c.Stats.MigrationsOut != 0 {
					t.Errorf("%v: migrations in/out = %d/%d, want 0/0",
						c, c.Stats.MigrationsIn, c.Stats.MigrationsOut)
				}
			}
		})
	}
}

// TestMigrateNeverRewindsVictimClock: the landing time offered to
// OnMigrate is floored at the victim's clock — the first simulated
// moment the victim's state can be published to another kind.
func TestMigrateNeverRewindsVictimClock(t *testing.T) {
	cores := mkCores(isa.PPE, isa.SPE)
	spe := cores[1]
	spe.Now = 50_000
	opt, seen := migrateOpts(1000, 0, 100)
	s, _ := New("migrate", cores, opt)
	for i := 0; i < 4; i++ {
		s.Enqueue(spe, &struct{ i int }{i}, 0)
	}
	s.PickNext()
	if seen.count != 1 {
		t.Fatal("expected a migration (idle lagging PPE, overloaded SPE)")
	}
	if seen.at != 50_000 {
		t.Errorf("landing time %d, want the victim's clock 50000", seen.at)
	}
}

// TestMigratePrefersSameKindSteal: when the idle core has a same-kind
// sibling to steal from, the steal pass satisfies it first and the
// migration pass must not also fire for it.
func TestMigratePrefersSameKindSteal(t *testing.T) {
	cores := mkCores(isa.SPE, isa.SPE, isa.PPE)
	spe0 := cores[0]
	opt, seen := migrateOpts(1000, 0, 0)
	opt.StealCycles = 10
	s, _ := New("migrate", cores, opt)
	for i := 0; i < 4; i++ {
		s.Enqueue(spe0, &struct{ i int }{i}, 0)
	}
	s.PickNext()
	if cores[1].Stats.StealsIn != 1 {
		t.Errorf("same-kind sibling steals = %d, want 1", cores[1].Stats.StealsIn)
	}
	if cores[1].Stats.MigrationsIn != 0 {
		t.Error("the sibling both stole and migrated in one pass")
	}
	// The cross-kind PPE may still migrate (it has no same-kind victim).
	if seen.count != 0 && seen.to != cores[2] {
		t.Errorf("unexpected migration target %v", seen.to)
	}
}

// TestMigrateVetoLeavesQueueIntact: an OnMigrate veto (ok == false)
// must leave the victim's queue and both counters untouched.
func TestMigrateVetoLeavesQueueIntact(t *testing.T) {
	cores := mkCores(isa.PPE, isa.SPE)
	spe := cores[1]
	opt, _ := migrateOpts(1000, 0, 0)
	opt.OnMigrate = func(Task, *cell.Core, *cell.Core, cell.Clock) (cell.Clock, bool) {
		return 0, false
	}
	s, _ := New("migrate", cores, opt)
	for i := 0; i < 4; i++ {
		s.Enqueue(spe, &struct{ i int }{i}, 0)
	}
	s.PickNext()
	if got := s.Load(spe.Index); got != 3 { // one popped by PickNext itself
		t.Errorf("victim load = %d after veto + one pick, want 3", got)
	}
	if cores[0].Stats.MigrationsIn != 0 || spe.Stats.MigrationsOut != 0 {
		t.Error("vetoed migration was counted")
	}
}

// TestMigrateDisabledWithoutHooks: with no cost hooks the migrate
// scheduler degenerates to plain same-kind stealing — cross-kind
// queues are never touched.
func TestMigrateDisabledWithoutHooks(t *testing.T) {
	cores := mkCores(isa.PPE, isa.SPE)
	spe := cores[1]
	s, err := New("migrate", cores, Options{MigrateCycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "migrate" {
		t.Fatalf("Name() = %q", s.Name())
	}
	for i := 0; i < 5; i++ {
		s.Enqueue(spe, &struct{ i int }{i}, 0)
	}
	s.PickNext()
	if cores[0].Stats.MigrationsIn != 0 {
		t.Error("hookless migrate scheduler migrated")
	}
}

// TestDrainEstimate: without CostOf the estimate is the bare clock;
// with it, clock plus the predicted cost of every queued task (ready
// and future alike).
func TestDrainEstimate(t *testing.T) {
	cores := mkCores(isa.SPE)
	spe := cores[0]
	spe.Now = 700
	bare, _ := New("calendar", cores, Options{})
	bare.Enqueue(spe, &struct{}{}, 0)
	if got := bare.DrainEstimate(spe.Index); got != 700 {
		t.Errorf("bare DrainEstimate = %d, want the clock 700", got)
	}

	cores2 := mkCores(isa.SPE)
	spe2 := cores2[0]
	spe2.Now = 700
	s, _ := New("calendar", cores2, Options{
		CostOf: func(Task, *cell.Core) uint64 { return 400 },
	})
	s.Enqueue(spe2, &struct{ a int }{}, 0)    // ready
	s.Enqueue(spe2, &struct{ b int }{}, 9000) // future
	if got := s.DrainEstimate(spe2.Index); got != 700+2*400 {
		t.Errorf("DrainEstimate = %d, want clock + 2 tasks x 400 = 1500", got)
	}
	if got := s.DrainEstimate(spe2.Index); got != 1500 {
		t.Errorf("DrainEstimate not stable across calls: %d", got)
	}
}
