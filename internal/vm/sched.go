package vm

import (
	"fmt"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
	"herajvm/internal/jit"
	"herajvm/internal/sched"
)

// compileFor returns m compiled for kind, compiling lazily; the second
// result is the compile cost in cycles when a fresh compile happened
// ("a method will only be compiled for a particular core architecture if
// it is to be executed by a thread running on that core type", §3.1).
func (vm *VM) compileFor(kind isa.CoreKind, m *classfile.Method) (*jit.CompiledMethod, uint64, error) {
	c := vm.compilers[kind]
	if c == nil {
		return nil, 0, fmt.Errorf("vm: no compiler for core kind %s (machine %s)", kind, vm.Machine.Describe())
	}
	if cm := c.Lookup(m); cm != nil {
		return cm, 0, nil
	}
	cm, err := c.Compile(m)
	if err != nil {
		return nil, 0, err
	}
	return cm, c.CompileCycles(m), nil
}

// newThread creates a thread without scheduling it.
func (vm *VM) newThread(name string) *Thread {
	t := &Thread{ID: vm.nextTID, Name: name}
	vm.nextTID++
	vm.threads = append(vm.threads, t)
	vm.liveCount++
	return t
}

// enqueue places a ready thread on its core's scheduler queue.
func (vm *VM) enqueue(t *Thread) {
	t.State = StateReady
	core := vm.coreFor(t.Kind, t.CoreID)
	vm.scheduler.Enqueue(core, t, t.ReadyAt)
}

// pickCore chooses the least-loaded core of the given kind (ties:
// earliest local clock, then lowest ID) for a thread entering that
// kind's pool. The machine must have at least one core of the kind.
func (vm *VM) pickCore(kind isa.CoreKind) int {
	cores := vm.kindCores[kind]
	best := 0
	bestLoad := vm.scheduler.Load(cores[0].Index)
	bestClock := cores[0].Now
	for i := 1; i < len(cores); i++ {
		load := vm.scheduler.Load(cores[i].Index)
		clock := cores[i].Now
		if load < bestLoad || (load == bestLoad && clock < bestClock) {
			best, bestLoad, bestClock = i, load, clock
		}
	}
	return best
}

// place assigns a thread a core of the given kind, falling back to the
// service pool when the topology has no core of that kind (a
// service-hosting core always exists; the topology validation
// guarantees it).
func (vm *VM) place(t *Thread, kind isa.CoreKind) {
	if !vm.Machine.HasKind(kind) {
		kind = vm.serviceKind()
	}
	t.Kind = kind
	t.CoreID = vm.pickCore(kind)
	if kind.UsesLocalStore() {
		t.needEnsure = true
	}
}

// StartThread schedules a new Java thread whose first frame invokes
// entry with the given arguments (receiver first for instance methods).
// readyAt is the simulated time the thread becomes runnable.
func (vm *VM) StartThread(name string, entry *classfile.Method, readyAt cell.Clock,
	args []uint64, argRefs []bool) (*Thread, error) {

	t := vm.newThread(name)
	kind := vm.policy.PlaceThread(vm, entry)
	vm.place(t, kind)
	cm, compileCycles, err := vm.compileFor(t.Kind, entry)
	if err != nil {
		return nil, err
	}
	f := newFrame(cm)
	f.ctr = vm.Monitor.Counters(entry.ID)
	f.ctr.Invokes++
	if len(args) > len(f.Locals) {
		return nil, fmt.Errorf("vm: %d args exceed %d locals of %s", len(args), len(f.Locals), entry.Sig())
	}
	copy(f.Locals, args)
	for i, r := range argRefs {
		f.LocalRefs[i] = r
	}
	t.pushFrame(f)
	t.ReadyAt = readyAt + compileCycles
	vm.enqueue(t)
	return t, nil
}

// RunMain compiles and runs the static entry method to completion,
// driving the whole machine. It returns the entry thread (whose Result
// holds any return value) and an error if any thread trapped or the
// machine deadlocked.
func (vm *VM) RunMain(className, methodName string) (*Thread, error) {
	cls := vm.Prog.Lookup(className)
	if cls == nil {
		return nil, fmt.Errorf("vm: no class %q", className)
	}
	m := cls.MethodByName(methodName)
	if m == nil {
		return nil, fmt.Errorf("vm: no method %s.%s", className, methodName)
	}
	if !m.IsStatic() {
		return nil, fmt.Errorf("vm: entry %s must be static", m.Sig())
	}
	main, err := vm.StartThread("main", m, 0, nil, nil)
	if err != nil {
		return nil, err
	}
	if err := vm.Run(); err != nil {
		return main, err
	}
	return main, main.Trap
}

// Run drives the machine until every thread terminates. The machine is
// advanced conservatively: each step runs one quantum on the core whose
// next available work has the smallest timestamp, so multi-core
// interleaving and bus contention are deterministic.
func (vm *VM) Run() error {
	for vm.liveCount > 0 {
		core, t := vm.pickNext()
		if t == nil {
			return vm.deadlockError()
		}
		core.AdvanceTo(t.ReadyAt)
		t.State = StateRunning
		vm.maybeAdapt(core)
		if t.hasPendingMigrate {
			t.hasPendingMigrate = false
			if t.pendingMigrate != core.Kind {
				// Complete a migration deferred by a blocked synchronized
				// call: insert the marker beneath the callee frame.
				nf := t.popFrame()
				t.pushFrame(&Frame{Marker: true, ReturnKind: core.Kind, ReturnCore: core.ID})
				t.pushFrame(nf)
				vm.migrate(core, t, t.pendingMigrate, 0)
				continue
			}
		}
		if t.needPurge {
			t.needPurge = false
			if dc := vm.dcaches[core.Index]; dc != nil {
				core.Now = dc.Purge(core.Now)
			}
		}
		if t.needEnsure {
			t.needEnsure = false
			vm.ensureTopFrame(core, t)
		}
		if t.hasPendingThrow {
			// Continue unwinding an exception that crossed a migration
			// boundary; the first frame examined is a caller, so its PC
			// already points past the migrated call.
			ex := t.pendingThrow
			t.hasPendingThrow = false
			t.pendingThrow = 0
			if !vm.dispatchThrow(core, t, ex, 1) {
				name := "Throwable"
				if cls := vm.classOf(ex); cls != nil {
					name = cls.Name
				}
				vm.trap(core, t, &TrapError{Kind: name, Detail: vm.throwableMessage(ex)})
			}
			if t.State != StateRunning {
				if t.State == StateTerminated {
					vm.finishThread(core, t)
				}
				continue
			}
		}
		if t.pendingNative != nil {
			vm.resumePendingNative(core, t)
			if t.State != StateRunning {
				continue
			}
		}
		vm.execute(core, t, vm.Cfg.Quantum)
		switch t.State {
		case StateRunning: // quantum expired: back of the queue
			vm.enqueue(t)
		case StateTerminated:
			vm.finishThread(core, t)
		}
		// Blocked/Ready threads were re-queued by whatever blocked them.
	}
	var firstTrap error
	for _, t := range vm.threads {
		if t.Trap != nil {
			firstTrap = t.Trap
			break
		}
	}
	return firstTrap
}

// pickNext asks the configured scheduler for the machine-wide next
// (core, thread) pair; nil thread means nothing is queued anywhere.
func (vm *VM) pickNext() (*cell.Core, *Thread) {
	core, task := vm.scheduler.PickNext()
	if task == nil {
		return nil, nil
	}
	return core, task.(*Thread)
}

// onSteal is the scheduler's hook for same-kind work stealing: rebind
// the stolen thread to the thief core with both halves of the software
// cache coherence protocol — flush (release) the victim's data cache so
// the thread's own unsynchronised writes reach main memory, and purge
// (acquire) the thief's before the thread runs so no stale clean copy
// shadows them. Program order must hold within a thread even though
// cross-core coherence is otherwise only guaranteed at monitor and
// volatile operations. The returned clock is when the stolen thread may
// start on the thief: the steal penalty, or the victim-side write-back
// completing, whichever is later.
func (vm *VM) onSteal(task sched.Task, from, to *cell.Core, readyAt cell.Clock) cell.Clock {
	t := task.(*Thread)
	if dc := vm.dcaches[from.Index]; dc != nil {
		from.Now = dc.Flush(from.Now)
		if from.Now > readyAt {
			readyAt = from.Now
		}
	}
	t.CoreID = to.ID
	t.ReadyAt = readyAt
	if to.Kind.UsesLocalStore() {
		t.needEnsure = true
		t.needPurge = true
	}
	return readyAt
}

func (vm *VM) deadlockError() error {
	blocked := 0
	for _, t := range vm.threads {
		if t.State == StateBlocked {
			blocked++
		}
	}
	return fmt.Errorf("vm: deadlock: %d live threads, %d blocked, none runnable",
		vm.liveCount, blocked)
}

// finishThread retires a terminated thread and wakes its joiners after
// the configured join hand-off latency.
func (vm *VM) finishThread(core *cell.Core, t *Thread) {
	vm.liveCount--
	for _, j := range t.joiners {
		j.State = StateReady
		j.ReadyAt = core.Now + vm.Cfg.JoinWakeCycles
		vm.enqueue(j)
	}
	t.joiners = nil
}

// migrate moves t to another core kind after the current instruction,
// charging the parameter-packaging and transfer cost (§3.1). The caller
// must already have pushed the migration marker (for call-site
// migrations) or arranged the frame stack appropriately.
func (vm *VM) migrate(core *cell.Core, t *Thread, target isa.CoreKind, words int) {
	cost := vm.Cfg.MigrationBaseCycles + vm.Cfg.MigrationWordCycles*uint64(words)
	t.Migrations++
	vm.place(t, target)
	vm.scheduler.NoteMigration(core, vm.coreFor(t.Kind, t.CoreID))
	t.ReadyAt = core.Now + cost
	t.State = StateReady
	vm.enqueue(t)
}

// ensureTopFrame warms the software code cache for the method about to
// execute (invoked when a thread lands on a local-store core).
func (vm *VM) ensureTopFrame(core *cell.Core, t *Thread) {
	if vm.ccaches[core.Index] == nil || len(t.Frames) == 0 {
		return
	}
	f := t.top()
	if f.Marker || f.CM == nil {
		return
	}
	vm.ensureCode(core, f.CM)
}

// ensureCode runs the TOC/TIB/method lookup on a local-store core for a
// compiled method, transferring code on a miss.
func (vm *VM) ensureCode(core *cell.Core, cm *jit.CompiledMethod) {
	cls := cm.M.Class
	meta := vm.classes[cls.ID]
	now, _ := vm.ccaches[core.Index].EnsureMethod(core.Now, cls.ID, meta.tibAddr, meta.tibSize,
		cm.M.ID, cm.Addr, cm.Size)
	core.Now = now
}

// reenterCode charges the return-path code-cache lookup for the caller
// frame on a local-store core.
func (vm *VM) reenterCode(core *cell.Core, cm *jit.CompiledMethod) {
	cls := cm.M.Class
	meta := vm.classes[cls.ID]
	core.Now = vm.ccaches[core.Index].Reenter(core.Now, cls.ID, meta.tibAddr, meta.tibSize,
		cm.M.ID, cm.Addr, cm.Size)
}
