package vm

import (
	"fmt"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
	"herajvm/internal/jit"
	"herajvm/internal/profile"
	"herajvm/internal/sched"
)

// compileFor returns m compiled for kind, compiling lazily; the second
// result is the compile cost in cycles when a fresh compile happened
// ("a method will only be compiled for a particular core architecture if
// it is to be executed by a thread running on that core type", §3.1).
func (vm *VM) compileFor(kind isa.CoreKind, m *classfile.Method) (*jit.CompiledMethod, uint64, error) {
	c := vm.compilers[kind]
	if c == nil {
		return nil, 0, fmt.Errorf("vm: no compiler for core kind %s (machine %s)", kind, vm.Machine.Describe())
	}
	if cm := c.Lookup(m); cm != nil {
		return cm, 0, nil
	}
	cm, err := c.Compile(m)
	if err != nil {
		return nil, 0, err
	}
	return cm, c.CompileCycles(m), nil
}

// newThread creates a thread without scheduling it.
func (vm *VM) newThread(name string) *Thread {
	t := &Thread{ID: vm.nextTID, Name: name}
	vm.nextTID++
	vm.threads = append(vm.threads, t)
	vm.liveCount++
	return t
}

// enqueue places a ready thread on its core's scheduler queue.
func (vm *VM) enqueue(t *Thread) {
	t.State = StateReady
	core := vm.coreFor(t.Kind, t.CoreID)
	vm.scheduler.Enqueue(core, t, t.ReadyAt)
}

// pickCore chooses the core of the given kind with the smallest
// predicted drain time — the scheduler's DrainEstimate: queue depth
// times mean predicted cost per queued task, plus the core's clock
// skew — for a thread entering that kind's pool. Ties resolve to the
// lower queue depth, then the lowest ID, so with equal clocks the
// choice degenerates to the classic least-loaded pick. The ranking is
// sched.BestCore — the same one the admission pipeline's deadline
// probe uses, so a verdict and the placement it predicted cannot
// disagree. The machine must have at least one core of the kind.
func (vm *VM) pickCore(kind isa.CoreKind) int {
	pos, _ := sched.BestCore(vm.scheduler, vm.kindCores[kind])
	return pos
}

// place assigns a thread a core of the given kind, falling back to the
// service pool when the topology has no core of that kind (a
// service-hosting core always exists; the topology validation
// guarantees it).
func (vm *VM) place(t *Thread, kind isa.CoreKind) {
	if !vm.Machine.HasKind(kind) {
		kind = vm.serviceKind()
	}
	t.Kind = kind
	t.CoreID = vm.pickCore(kind)
	if kind.UsesLocalStore() {
		t.needEnsure = true
	}
}

// StartThread schedules a new Java thread whose first frame invokes
// entry with the given arguments (receiver first for instance methods).
// readyAt is the simulated time the thread becomes runnable. The thread
// belongs to no job; the job API's threads go through startThread.
func (vm *VM) StartThread(name string, entry *classfile.Method, readyAt cell.Clock,
	args []uint64, argRefs []bool) (*Thread, error) {
	return vm.startThread(nil, name, entry, readyAt, args, argRefs)
}

// startThread is StartThread plus job identity: the thread joins job
// (nil for none), inherits its placement-policy override, and bills its
// scheduling events to the job's counters. Everything fallible —
// placement, the entry compile, the argument check — happens before
// the thread is registered, so a failed start leaves no ghost live
// thread behind to deadlock later drains.
func (vm *VM) startThread(job *Job, name string, entry *classfile.Method, readyAt cell.Clock,
	args []uint64, argRefs []bool) (*Thread, error) {

	pol := vm.policy
	if job != nil && job.policy != nil {
		pol = job.policy
	}
	kind := pol.PlaceThread(vm, entry)
	if !vm.Machine.HasKind(kind) {
		kind = vm.serviceKind()
	}
	cm, compileCycles, err := vm.compileFor(kind, entry)
	if err != nil {
		return nil, err
	}
	f := newFrame(cm)
	if len(args) > len(f.Locals) {
		return nil, fmt.Errorf("vm: %d args exceed %d locals of %s", len(args), len(f.Locals), entry.Sig())
	}

	t := vm.newThread(name)
	t.job = job
	if job != nil {
		job.live++
		job.threads = append(job.threads, t)
	}
	vm.place(t, kind)
	if compileCycles > 0 {
		noteCompile(t)
	}
	f.ctr = vm.Monitor.Counters(entry.ID)
	f.ctr.Invokes++
	copy(f.Locals, args)
	for i, r := range argRefs {
		f.LocalRefs[i] = r
	}
	t.pushFrame(f)
	t.ReadyAt = readyAt + compileCycles
	vm.enqueue(t)
	return t, nil
}

// RunMain compiles and runs the static entry method to completion,
// driving the whole machine. It returns the entry thread (whose Result
// holds any return value) and an error if any thread trapped or the
// machine deadlocked. It is the one-job special case of the job API:
// SubmitJob then drain.
func (vm *VM) RunMain(className, methodName string) (*Thread, error) {
	job, err := vm.SubmitJob(JobSpec{Name: "main", Class: className, Method: methodName})
	if err != nil {
		return nil, err
	}
	if err := vm.Run(); err != nil {
		return job.root, err
	}
	return job.root, job.root.Trap
}

// Run drives the machine until every thread terminates and returns the
// first thread trap, if any.
func (vm *VM) Run() error {
	if err := vm.runWhile(func() bool { return vm.liveCount == 0 }); err != nil {
		return err
	}
	return firstTrap(vm.threads)
}

// runWhile drives the machine until stop reports true. The machine is
// advanced conservatively: each step runs one quantum on the core whose
// next available work has the smallest timestamp, so multi-core
// interleaving and bus contention are deterministic — and independent
// of where the driving loop pauses, so waiting on jobs one at a time
// replays identically to draining them all at once.
func (vm *VM) runWhile(stop func() bool) error {
	for !stop() {
		core, t := vm.pickNext()
		if t == nil {
			if vm.liveCount == 0 {
				return nil
			}
			return vm.deadlockError()
		}
		core.AdvanceTo(t.ReadyAt)
		t.State = StateRunning
		vm.curJob = t.job // GC pauses bill to the executing job
		vm.maybeAdapt(core)
		if t.hasPendingMigrate {
			t.hasPendingMigrate = false
			if t.pendingMigrate != core.Kind {
				// Complete a migration deferred by a blocked synchronized
				// call: insert the marker beneath the callee frame.
				nf := t.popFrame()
				t.pushFrame(&Frame{Marker: true, ReturnKind: core.Kind, ReturnCore: core.ID})
				t.pushFrame(nf)
				vm.migrate(core, t, t.pendingMigrate, 0)
				continue
			}
		}
		if t.needPurge {
			t.needPurge = false
			if dc := vm.dcaches[core.Index]; dc != nil {
				core.Now = dc.Purge(core.Now)
			}
		}
		if t.needEnsure {
			t.needEnsure = false
			vm.ensureTopFrame(core, t)
		}
		if t.needStage {
			// Kernel workers prefetch their body's array tiles through the
			// MFC before the first quantum; after the acquire-purge above,
			// so the purge cannot drop the staged tiles.
			t.needStage = false
			vm.stageKernelTiles(core, t)
		}
		if t.hasPendingThrow {
			// Continue unwinding an exception that crossed a migration
			// boundary; the first frame examined is a caller, so its PC
			// already points past the migrated call.
			ex := t.pendingThrow
			t.hasPendingThrow = false
			t.pendingThrow = 0
			if !vm.dispatchThrow(core, t, ex, 1) {
				name := "Throwable"
				if cls := vm.classOf(ex); cls != nil {
					name = cls.Name
				}
				vm.trap(core, t, &TrapError{Kind: name, Detail: vm.throwableMessage(ex)})
			}
			if t.State != StateRunning {
				if t.State == StateTerminated {
					vm.finishThread(core, t)
				}
				continue
			}
		}
		if t.pendingNative != nil {
			vm.resumePendingNative(core, t)
			if t.State != StateRunning {
				continue
			}
		}
		vm.execute(core, t, vm.Cfg.Quantum)
		switch t.State {
		case StateRunning: // quantum expired: back of the queue
			vm.enqueue(t)
		case StateTerminated:
			vm.finishThread(core, t)
		}
		// Blocked/Ready threads were re-queued by whatever blocked them.
	}
	return nil
}

// pickNext asks the configured scheduler for the machine-wide next
// (core, thread) pair; nil thread means nothing is queued anywhere.
func (vm *VM) pickNext() (*cell.Core, *Thread) {
	core, task := vm.scheduler.PickNext()
	if task == nil {
		return nil, nil
	}
	return core, task.(*Thread)
}

// rebindTo moves a queued thread's binding from one core to another
// with both halves of the software cache coherence protocol every
// cross-core hand-off (steal or migration) must perform — flush
// (release) the victim's data cache so the thread's own unsynchronised
// writes reach main memory, flooring the hand-off at the write-back
// completing, and mark the thread to purge (acquire) and re-warm the
// destination's caches before it runs so no stale clean copy shadows
// those writes. Program order must hold within a thread even though
// cross-core coherence is otherwise only guaranteed at monitor and
// volatile operations. Returns the — possibly later, never earlier —
// time the thread may start on the destination.
func (vm *VM) rebindTo(t *Thread, from, to *cell.Core, readyAt cell.Clock) cell.Clock {
	if dc := vm.dcaches[from.Index]; dc != nil {
		from.Now = dc.Flush(from.Now)
		if from.Now > readyAt {
			readyAt = from.Now
		}
	}
	t.Kind = to.Kind
	t.CoreID = to.ID
	t.ReadyAt = readyAt
	if to.Kind.UsesLocalStore() {
		t.needEnsure = true
		t.needPurge = true
	}
	return readyAt
}

// onSteal is the scheduler's hook for same-kind work stealing: rebind
// the stolen thread to the thief core. The returned clock is when the
// stolen thread may start on the thief: the steal penalty, or the
// victim-side write-back completing, whichever is later.
func (vm *VM) onSteal(task sched.Task, from, to *cell.Core, readyAt cell.Clock) cell.Clock {
	t := task.(*Thread)
	noteStolen(t)
	return vm.rebindTo(t, from, to, readyAt)
}

// behaviourMinCycles is the observation floor for behaviour-aware task
// pricing: a thread's innermost profiled method must have accumulated
// this many cycles before its FP/memory composition is trusted to
// override the kind's static migration affinity. Below it the shares
// are dominated by warm-up noise.
const behaviourMinCycles = 50_000

// taskCost is the scheduler's per-task cost predictor
// (sched.Options.CostOf): the cycles one queued thread is expected to
// consume per scheduling round on the core. The baseline is the
// scheduling quantum scaled by the kind's migration affinity, so
// reluctant kinds (the VPU) look proportionally slower to drain to
// both the drain-time placement estimate and the cross-kind migration
// gate; within one kind's pool the affinity cancels and drain ordering
// reduces to queue depth plus clock skew.
//
// On machines with a VPU, a thread whose innermost profiled method has
// been observed long enough (behaviourMinCycles) is priced by its
// measured cycle composition instead: the quantum is split into the
// method's FP, main-memory and remaining shares, and the FP and memory
// slices are scaled by how much worse this kind's predicted FP/memory
// cost is than the machine's best (isa FPScore/MemScore, normalized by
// the boot-time minima). An FP-heavy thread therefore drains cheapest
// on the VPU — its FP slice scales by 1.0 while an SPE's scales by
// FPScore(SPE)/FPScore(VPU) — so the migrate gate and drain estimates
// route it there despite the VPU's reluctant static affinity.
// Machines without a VPU (the paper's PS3 baseline) keep the plain
// affinity pricing, which also pins the Figure-4 goldens.
func (vm *VM) taskCost(task sched.Task, core *cell.Core) uint64 {
	quantum := float64(vm.Cfg.Quantum)
	if ctr := vm.observedCounters(task); ctr != nil {
		fp, memS := ctr.FPShare(), ctr.MemShare()
		factor := (1 - fp - memS) +
			fp*(core.Kind.FPScore()/vm.minFPScore) +
			memS*(core.Kind.MemScore()/vm.minMemScore)
		return uint64(quantum * factor)
	}
	return uint64(quantum * core.Kind.MigrateAffinity())
}

// observedCounters returns the task's innermost profiled method
// counters when behaviour-aware pricing applies: the machine has a VPU
// to route FP work onto, the task is a thread with a profiled frame,
// and that method has cleared the observation floor. Nil otherwise
// (including the nil probe tasks the admission estimator passes).
func (vm *VM) observedCounters(task sched.Task) *profile.MethodCounters {
	if !vm.Machine.HasKind(isa.VPU) {
		return nil
	}
	t, ok := task.(*Thread)
	if !ok || t == nil {
		return nil
	}
	ctr := t.hotCounters()
	if ctr == nil {
		return nil
	}
	var total uint64
	for _, c := range ctr.Cycles {
		total += c
	}
	if total < behaviourMinCycles {
		return nil
	}
	return ctr
}

// recompileEstimate is the migrate scheduler's feasibility-and-cost
// probe (sched.Options.RecompileCost): whether the thread can execute
// on the target core's kind right now, and the predicted cycle cost of
// compiling its frames' methods for that kind. A thread is migratable
// only when every frame sits at a bytecode boundary — the PCs where
// frame state is kind-independent and translates across backends — and
// carries no in-flight runtime state (a deferred migration, an
// unwinding exception, a suspended native call). The estimate does not
// deduplicate repeated methods on the stack, so it slightly
// overestimates recursive stacks — a conservative error: the gate only
// gets harder to pass, and the migration itself charges actual
// (deduplicated) compile cycles.
func (vm *VM) recompileEstimate(task sched.Task, to *cell.Core) (uint64, bool) {
	t := task.(*Thread)
	if t.pinned {
		return 0, false // kernel workers never leave their core
	}
	if t.hasPendingMigrate || t.hasPendingThrow || t.pendingNative != nil {
		return 0, false
	}
	// Migration hysteresis: a thread that just migrated cross-kind is
	// not migratable again until its core's clock passes the cooldown
	// horizon, so oscillating load cannot ping-pong it between kinds.
	if t.cooldownUntil != 0 && vm.coreFor(t.Kind, t.CoreID).Now < t.cooldownUntil {
		return 0, false
	}
	c := vm.compilers[to.Kind]
	if c == nil {
		return 0, false
	}
	var cost uint64
	for _, f := range t.Frames {
		if f.Marker || f.CM == nil {
			continue
		}
		if !f.CM.AtBytecodeBoundary(f.PC) {
			return 0, false
		}
		if c.Lookup(f.CM.M) == nil {
			cost += c.CompileCycles(f.CM.M)
		}
	}
	return cost, true
}

// onMigrate is the scheduler's hook for cost-gated cross-kind
// migration (sched.Options.OnMigrate): transplant the thread onto the
// target core's kind. Every non-marker frame is recompiled for the
// target (lazily — warm methods are free) and its PC translated
// through the jit's bytecode-boundary maps; frame locals and operand
// stacks are kind-independent at those PCs, so they move untouched.
// Fresh compile cycles are charged to the thread's start like a cold
// code-cache fill, exactly as StartThread charges a new thread's entry
// compile. Cache visibility follows the steal protocol: flush
// (release) the victim's software data cache, purge (acquire) the
// thief's before the thread runs. The returned clock only ever moves
// later than the offered landing time; ok == false vetoes the
// migration (a compile failure, e.g. a full code region) with no
// thread or cache state changed — methods compiled before the failing
// one stay registered in the target kind's compiler, which is reusable
// work, not corruption: any later execution on that kind finds them
// warm and pays nothing.
func (vm *VM) onMigrate(task sched.Task, from, to *cell.Core, readyAt cell.Clock) (cell.Clock, bool) {
	t := task.(*Thread)
	vm.curJob = t.job // recompiles may intern and allocate: bill GC here
	// Compile everything first so a late failure cannot leave the
	// thread half-transplanted.
	type swap struct {
		f  *Frame
		cm *jit.CompiledMethod
	}
	var swaps []swap
	var compileCycles uint64
	for _, f := range t.Frames {
		if f.Marker || f.CM == nil {
			continue
		}
		cm, cycles, err := vm.compileFor(to.Kind, f.CM.M)
		if err != nil {
			return readyAt, false
		}
		if cycles > 0 {
			noteCompile(t)
		}
		compileCycles += cycles
		swaps = append(swaps, swap{f, cm})
	}
	landing := vm.rebindTo(t, from, to, readyAt)
	for _, s := range swaps {
		s.f.PC = s.f.CM.TranslatePC(s.f.PC, s.cm)
		s.f.CM = s.cm
	}
	readyAt = landing + compileCycles
	t.ReadyAt = readyAt
	vm.noteMigrated(t, landing)
	return readyAt, true
}

func (vm *VM) deadlockError() error {
	blocked := 0
	for _, t := range vm.threads {
		if t.State == StateBlocked {
			blocked++
		}
	}
	return fmt.Errorf("vm: %w (%d live threads, %d blocked)",
		ErrDeadlock, vm.liveCount, blocked)
}

// finishThread retires a terminated thread, completes its job when it
// was the job's last live thread, and wakes its joiners after the
// configured join hand-off latency.
//
// Termination is a synchronization edge (everything a thread did
// happens-before a join on it returning), so it carries both halves of
// the software cache coherence protocol: flush (release) the retiring
// core's data cache so the dead thread's unsynchronised writes reach
// main memory, and mark each woken joiner to purge (acquire) before it
// runs, so a stale clean copy left in the joiner's core — by any
// thread that ran there earlier — cannot shadow those writes.
func (vm *VM) finishThread(core *cell.Core, t *Thread) {
	if dc := vm.dcaches[core.Index]; dc != nil {
		core.Now = dc.Flush(core.Now)
	}
	vm.liveCount--
	if job := t.job; job != nil {
		job.live--
		if job.live == 0 && !job.done {
			job.done = true
			job.CompletedAt = core.Now
			job.DeadlineMet = job.Deadline == 0 || core.Now <= job.Deadline
			vm.pending--
			// Feed the admission pipeline's service-time estimator: a
			// halving EWMA of observed admission-to-completion cycles.
			measured := uint64(job.CompletedAt - job.AdmittedAt)
			if vm.jobServiceEWMA == 0 {
				vm.jobServiceEWMA = measured
			} else {
				vm.jobServiceEWMA = (vm.jobServiceEWMA + measured) / 2
			}
		}
	}
	for _, j := range t.joiners {
		j.State = StateReady
		j.ReadyAt = core.Now + vm.Cfg.JoinWakeCycles
		if j.Kind.UsesLocalStore() {
			j.needPurge = true
		}
		vm.enqueue(j)
	}
	t.joiners = nil
	if t.kernel != nil {
		// SPMD barrier: the launch completes (and the blocked caller
		// wakes) when its last worker retires — even one that trapped, so
		// a failing kernel cannot wedge the caller.
		vm.kernelWorkerDone(core, t)
	}
}

// migrate moves t to another core kind after the current instruction,
// charging the parameter-packaging and transfer cost (§3.1). The caller
// must already have pushed the migration marker (for call-site
// migrations) or arranged the frame stack appropriately.
func (vm *VM) migrate(core *cell.Core, t *Thread, target isa.CoreKind, words int) {
	cost := vm.Cfg.MigrationBaseCycles + vm.Cfg.MigrationWordCycles*uint64(words)
	vm.noteMigrated(t, core.Now+cost)
	vm.place(t, target)
	vm.scheduler.NoteMigration(core, vm.coreFor(t.Kind, t.CoreID))
	t.ReadyAt = core.Now + cost
	t.State = StateReady
	vm.enqueue(t)
}

// ensureTopFrame warms the software code cache for the method about to
// execute (invoked when a thread lands on a local-store core).
func (vm *VM) ensureTopFrame(core *cell.Core, t *Thread) {
	if vm.ccaches[core.Index] == nil || len(t.Frames) == 0 {
		return
	}
	f := t.top()
	if f.Marker || f.CM == nil {
		return
	}
	vm.ensureCode(core, f.CM)
}

// ensureCode runs the TOC/TIB/method lookup on a local-store core for a
// compiled method, transferring code on a miss.
func (vm *VM) ensureCode(core *cell.Core, cm *jit.CompiledMethod) {
	cls := cm.M.Class
	meta := vm.classes[cls.ID]
	now, _ := vm.ccaches[core.Index].EnsureMethod(core.Now, cls.ID, meta.tibAddr, meta.tibSize,
		cm.M.ID, cm.Addr, cm.Size)
	core.Now = now
}

// reenterCode charges the return-path code-cache lookup for the caller
// frame on a local-store core.
func (vm *VM) reenterCode(core *cell.Core, cm *jit.CompiledMethod) {
	cls := cm.M.Class
	meta := vm.classes[cls.ID]
	core.Now = vm.ccaches[core.Index].Reenter(core.Now, cls.ID, meta.tibAddr, meta.tibSize,
		cm.M.ID, cm.Addr, cm.Size)
}
