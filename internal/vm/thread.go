package vm

import (
	"fmt"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/jit"
	"herajvm/internal/profile"
)

// ThreadState is a Java thread's lifecycle state.
type ThreadState uint8

const (
	// StateReady means runnable, sitting in a core's ready queue.
	StateReady ThreadState = iota
	// StateRunning means currently executing on a core.
	StateRunning
	// StateBlocked means parked on a monitor or join/wait set or an
	// in-flight syscall.
	StateBlocked
	// StateTerminated means the root method returned or a trap killed
	// the thread.
	StateTerminated
)

var stateNames = [...]string{"ready", "running", "blocked", "terminated"}

// String returns the state name.
func (s ThreadState) String() string { return stateNames[s] }

// Frame is one method activation: locals and operand stack with parallel
// reference maps (the executor maintains them so the GC can scan stacks
// precisely, as JikesRVM's baseline compiler reference maps do).
//
// A frame with Marker set is a migration marker (§3.1): it records the
// core kind to return to, and holds no code.
type Frame struct {
	CM *jit.CompiledMethod
	PC int

	Locals    []uint64
	LocalRefs []bool
	Stack     []uint64
	StackRefs []bool
	SP        int

	// SyncObj is the monitor released on return from a synchronized
	// method (0 = none).
	SyncObj Ref

	// ctr accumulates this method's cycle composition for the
	// runtime-monitoring placement policy.
	ctr *profile.MethodCounters

	// Marker marks a migration point; ReturnKind and ReturnCore say
	// where the thread migrates back to when the callee returns.
	Marker     bool
	ReturnKind isa.CoreKind
	ReturnCore int
}

func newFrame(cm *jit.CompiledMethod) *Frame {
	m := cm.M
	nl := m.MaxLocals
	ns := m.MaxStack
	if ns < 4 {
		ns = 4
	}
	return &Frame{
		CM:        cm,
		Locals:    make([]uint64, nl),
		LocalRefs: make([]bool, nl),
		Stack:     make([]uint64, ns),
		StackRefs: make([]bool, ns),
	}
}

func (f *Frame) push(v uint64, isRef bool) {
	if f.SP == len(f.Stack) {
		// The verifier bounds MaxStack; growing indicates an executor bug
		// for bytecode methods, but native glue frames may push results.
		f.Stack = append(f.Stack, 0)
		f.StackRefs = append(f.StackRefs, false)
	}
	f.Stack[f.SP] = v
	f.StackRefs[f.SP] = isRef
	f.SP++
}

func (f *Frame) pop() (uint64, bool) {
	f.SP--
	return f.Stack[f.SP], f.StackRefs[f.SP]
}

// Thread is one Java thread: a stack of frames plus scheduling state.
type Thread struct {
	ID     int
	Name   string
	Frames []*Frame
	State  ThreadState

	// JavaObj is the java/lang/Thread instance this thread executes (0
	// for the primordial main thread until stdlib wires it).
	JavaObj Ref

	// Kind and CoreID say where the thread runs / is queued.
	Kind   isa.CoreKind
	CoreID int
	// ReadyAt is the simulated time the thread may next run.
	ReadyAt cell.Clock

	// Pending return value transferred across a migration boundary.
	pendingVal    uint64
	pendingIsRef  bool
	pendingHasVal bool

	// needEnsure requests a code-cache ensure of the top frame before
	// resuming (set when a thread lands on an SPE).
	needEnsure bool
	// needPurge requests an acquire-purge of the SPE data cache before
	// resuming (set when a monitor was granted while the thread was
	// blocked).
	needPurge bool
	// needStage requests a double-buffered tile prefetch of the kernel
	// body's arrays into the data cache before the first quantum (set on
	// kernel workers landing on local-store cores; runs after needPurge
	// so the acquire cannot invalidate the staged tiles).
	needStage bool
	// pinned marks a data-parallel kernel worker bound to its core for
	// life: the scheduler's steal and migrate passes skip it, and the
	// placement policy's invoke-time decision is bypassed. The SPMD
	// barrier depends on one worker per core making independent progress.
	pinned bool
	// kernel links a worker (and its blocked caller) to the launch it
	// belongs to; nil for ordinary threads.
	kernel *kernelLaunch
	// pendingMigrate defers a placement decision that could not be acted
	// on immediately (blocked synchronized call at a migration point).
	pendingMigrate    isa.CoreKind
	hasPendingMigrate bool
	// pendingNative carries a JNI native across the SPE->PPE migration.
	pendingNative *pendingNativeCall
	// pendingThrow carries an in-flight exception across a migration
	// boundary during unwinding.
	pendingThrow    Ref
	hasPendingThrow bool

	// Trap records the error that killed the thread, if any.
	Trap error

	// Result holds the root method's return value for the VM's caller.
	Result    uint64
	HasResult bool

	// joiners are threads blocked in join() on this thread.
	joiners []*Thread

	// waitCount preserves monitor recursion across Object.wait.
	waitCount int

	// Migrations counts core-type switches, for reports; Steals counts
	// same-kind work steals that moved this thread.
	Migrations uint64
	Steals     uint64

	// job is the admission the thread belongs to (nil for threads
	// started outside the job API); spawned threads inherit it.
	job *Job

	// cooldownUntil is the migration-hysteresis horizon: the scheduler
	// may not re-migrate the thread cross-kind until its core's clock
	// passes it (Config.MigrateCooldownCycles).
	cooldownUntil cell.Clock
}

func (t *Thread) top() *Frame { return t.Frames[len(t.Frames)-1] }

// hotCounters returns the profile counters of the thread's innermost
// profiled frame (markers and native-suspension frames carry none) —
// the method whose observed behaviour the behaviour-aware task-cost
// predictor prices placement by. Nil when no frame is profiled yet.
func (t *Thread) hotCounters() *profile.MethodCounters {
	for i := len(t.Frames) - 1; i >= 0; i-- {
		if c := t.Frames[i].ctr; c != nil {
			return c
		}
	}
	return nil
}

func (t *Thread) pushFrame(f *Frame) { t.Frames = append(t.Frames, f) }

func (t *Thread) popFrame() *Frame {
	f := t.Frames[len(t.Frames)-1]
	t.Frames = t.Frames[:len(t.Frames)-1]
	return f
}

// String identifies the thread for diagnostics.
func (t *Thread) String() string {
	return fmt.Sprintf("thread %d (%s) [%s]", t.ID, t.Name, t.State)
}

// Trap errors: the VM models Java's unchecked exceptions as thread
// traps (this reproduction has no catch handlers; see DESIGN.md §6).
type TrapError struct {
	Kind   string
	Detail string
	Method string
	PC     int
}

// Error formats the trap like an uncaught-exception report.
func (e *TrapError) Error() string {
	return fmt.Sprintf("uncaught %s: %s (at %s pc %d)", e.Kind, e.Detail, e.Method, e.PC)
}
