package vm

import (
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// TestStartJoinCoherence pins the Thread.start / Thread.join halves of
// the software cache-coherence protocol, with every thread forced onto
// local-store cores so all traffic runs through write-back data caches:
//
//   - start() is a release: the spawner's plain writes (the work array,
//     the fields of the spawned Thread object) must be flushed to main
//     memory before the child runs, and the child must acquire-purge so
//     stale lines on its core cannot shadow them;
//   - join() on an already-terminated thread is still an acquire: the
//     joiner primed its cache with the old value of the result field,
//     and must purge to observe the dead thread's flushed write.
//
// Without the start release the reader sums a stale (zero) array;
// without the early-return join purge main returns the primed -1. The
// schedule parks main in a long local-arithmetic spin (no memory
// traffic, so nothing else flushes or purges its cache) until the
// reader has terminated, forcing join's early-return path.
func TestStartJoinCoherence(t *testing.T) {
	const n = 64
	p := newProg()
	threadCls := p.Lookup("java/lang/Thread")

	box := p.NewClass("Box", nil)
	dataF := box.NewField("data", classfile.Ref)
	sumF := box.NewField("sum", classfile.Int)

	reader := p.NewClass("Reader", threadCls)
	bF := reader.NewField("b", classfile.Ref)
	{
		// locals: 0=this 1=arr 2=i 3=s
		a := reader.NewMethod("run", 0, classfile.Void).Asm()
		loop, done := a.NewLabel(), a.NewLabel()
		a.LoadRef(0)
		a.GetField(bF)
		a.GetField(dataF)
		a.StoreRef(1)
		a.ConstI(0)
		a.StoreI(2)
		a.ConstI(0)
		a.StoreI(3)
		a.Bind(loop)
		a.LoadI(2)
		a.LoadRef(1)
		a.ArrayLen()
		a.IfICmpGE(done)
		a.LoadI(3)
		a.LoadRef(1)
		a.LoadI(2)
		a.ALoad(classfile.ElemInt)
		a.AddI()
		a.StoreI(3)
		a.Inc(2, 1)
		a.Goto(loop)
		a.Bind(done)
		a.LoadRef(0)
		a.GetField(bF)
		a.LoadI(3)
		a.PutField(sumF)
		a.RetVoid()
		a.MustBuild()
	}

	coh := p.NewClass("Coh", nil)
	{
		// locals: 0=box 1=arr 2=i 3=w 4=acc
		a := coh.NewMethod("main", classfile.FlagStatic, classfile.Int).Asm()
		a.New(box)
		a.StoreRef(0)
		a.ConstI(n)
		a.NewArray(classfile.ElemInt)
		a.StoreRef(1)
		fill, filled := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(2)
		a.Bind(fill)
		a.LoadI(2)
		a.ConstI(n)
		a.IfICmpGE(filled)
		a.LoadRef(1)
		a.LoadI(2)
		a.LoadI(2)
		a.ConstI(1)
		a.AddI()
		a.AStore(classfile.ElemInt)
		a.Inc(2, 1)
		a.Goto(fill)
		a.Bind(filled)
		a.LoadRef(0)
		a.LoadRef(1)
		a.PutField(dataF)
		a.LoadRef(0)
		a.ConstI(-1)
		a.PutField(sumF) // prime the sum line in main's cache
		a.New(reader)
		a.Dup()
		a.LoadRef(0)
		a.PutField(bF)
		a.Dup()
		a.StoreRef(3)
		a.InvokeVirtual(threadCls.MethodByName("start"))
		spin, spun := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(2)
		a.ConstI(0)
		a.StoreI(4)
		a.Bind(spin)
		a.LoadI(2)
		a.ConstI(50_000)
		a.IfICmpGE(spun)
		a.LoadI(4)
		a.ConstI(3)
		a.MulI()
		a.LoadI(2)
		a.AddI()
		a.StoreI(4)
		a.Inc(2, 1)
		a.Goto(spin)
		a.Bind(spun)
		a.LoadRef(3)
		a.InvokeVirtual(threadCls.MethodByName("join"))
		a.LoadRef(0)
		a.GetField(sumF)
		a.Ret()
		a.MustBuild()
	}

	cfg := DefaultConfig()
	cfg.Machine.Topology = cell.Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 2},
	}
	cfg.Policy = FixedPolicy{Kind: isa.SPE}
	machine, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	th, err := machine.RunMain("Coh", "main")
	if err != nil {
		t.Fatal(err)
	}
	want := int32(n * (n + 1) / 2)
	if got := int32(uint32(th.Result)); got != want {
		t.Errorf("main returned %d, want %d (stale cache crossed a start/join edge)", got, want)
	}
}
