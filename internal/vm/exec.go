package vm

import (
	"fmt"
	"math"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// execute runs t on core for up to quantum cycles, or until the thread
// blocks, terminates or migrates. It interprets the JIT-compiled machine
// instructions, charging each to the core's clock and operation-class
// counters; memory instructions route through the core's software caches
// (local-store kinds) or its hardware-cache model.
func (vm *VM) execute(core *cell.Core, t *Thread, quantum uint64) {
	deadline := core.Now + quantum
	// The core's data cache is fixed for the whole quantum; fetch it once
	// for the fast path's residency query (hot: once per superblock).
	dcache := vm.dcaches[core.Index]
	for t.State == StateRunning && core.Now < deadline {
		f := t.top()
		if f.Marker {
			if len(t.Frames) == 1 {
				// A marker is always pushed beneath a callee (invoke's
				// migration protocol), so a lone marker is malformed state;
				// popping it would leave no frame to resume, and the loop
				// above would spin without charging a cycle. Trap instead.
				vm.trap(core, t, vm.trapAt(nil, "InternalError",
					"migration marker with no caller frame"))
				return
			}
			// Resumed after migrating back: drop the marker and deliver
			// the pending return value to the caller underneath.
			t.popFrame()
			f = t.top()
			if t.pendingHasVal {
				f.push(t.pendingVal, t.pendingIsRef)
			}
			t.pendingHasVal = false
			continue
		}
		// Freeze barrier: the job is being quiesced for a hand-off. Park
		// the thread at this bytecode boundary — Blocked, off the
		// calendar — instead of spending the quantum; FreezeJob collects
		// it (or unparkJob re-queues it if the freeze aborts). The check
		// sits where every boundary passes and no instruction is half
		// applied; markers were already handled above.
		if j := t.job; j != nil && j.freezeBarrier && f.CM.AtBytecodeBoundary(f.PC) {
			t.State = StateBlocked
			j.parked = append(j.parked, t)
			return
		}
		// Superblock fast path: when a memoized pure block starts here,
		// fits strictly inside the quantum (every prefix the reference
		// interpreter would check also fits, so deadline semantics are
		// unchanged) and is valid for the core's cache-residency class,
		// apply it in one step. Any divergence falls through to step,
		// which IS the reference semantics.
		if sb := f.CM.SB; !vm.sbOff && sb != nil {
			if b := &sb[f.PC]; b.Len != 0 && core.Now+b.Cycles < deadline &&
				b.ResMask&(1<<residencyOf(dcache)) != 0 {
				vm.fastForward(core, t, f, b, dcache, deadline)
				continue
			}
		}
		in := f.CM.Code[f.PC]
		core.Charge(in.Op.Class(), uint64(in.Cost))
		if f.ctr != nil {
			f.ctr.Cycles[in.Op.Class()] += uint64(in.Cost)
		}
		core.Stats.Instrs++
		if err := vm.step(core, t, f, in); err != nil {
			vm.raise(core, t, err)
			if t.State != StateRunning {
				return
			}
		}
	}
}

// trap terminates a thread with an error, releasing any monitors it
// owns so other threads do not deadlock on a dead owner.
func (vm *VM) trap(core *cell.Core, t *Thread, err error) {
	t.Trap = err
	t.State = StateTerminated
	for obj, m := range vm.monitors {
		if m.owner == t {
			m.owner = nil
			m.count = 0
			vm.writeLockWord(obj, m)
			vm.wakeBlocked(core, m)
		}
	}
}

func (vm *VM) trapAt(f *Frame, kind, detail string) error {
	sig := "?"
	pc := 0
	if f != nil && f.CM != nil {
		sig = f.CM.M.Sig()
		pc = f.PC
	}
	return &TrapError{Kind: kind, Detail: detail, Method: sig, PC: pc}
}

// chargeDyn adds dynamically determined cycles (cache misses, DMA
// waits) to the per-method monitor counters; the core clock was already
// advanced by the memory subsystem.
func (f *Frame) chargeDyn(class isa.OpClass, n uint64) {
	if f.ctr != nil {
		f.ctr.Cycles[class] += n
	}
}

// step executes one instruction. It returns a TrapError to kill the
// thread; all other control effects (blocking, migration, termination)
// are applied to t directly.
func (vm *VM) step(core *cell.Core, t *Thread, f *Frame, in isa.Instr) error {
	adv := true // advance PC unless a branch/call handled it
	main := vm.Machine.Mem

	popI := func() int32 { v, _ := f.pop(); return int32(uint32(v)) }
	pushI := func(v int32) { f.push(uint64(uint32(v)), false) }
	popL := func() int64 { v, _ := f.pop(); return int64(v) }
	pushL := func(v int64) { f.push(uint64(v), false) }
	popF := func() float32 { v, _ := f.pop(); return math.Float32frombits(uint32(v)) }
	pushF := func(v float32) { f.push(uint64(math.Float32bits(v)), false) }
	popD := func() float64 { v, _ := f.pop(); return math.Float64frombits(v) }
	pushD := func(v float64) { f.push(math.Float64bits(v), false) }
	popRef := func() Ref { v, _ := f.pop(); return Ref(v) }
	pushRef := func(r Ref) { f.push(uint64(r), true) }

	// The kind's branch model: a hardware predictor charges its penalty
	// on mispredicts; a statically hinted core (the compiler hints
	// fall-through) pays the kind's BranchTakenExtra on every taken
	// conditional branch.
	branch := func(target int32, taken bool) {
		if core.BP != nil {
			site := uint32(f.CM.M.ID)<<12 ^ uint32(f.PC)
			if !core.BP.Predict(site, taken) {
				penalty := uint64(vm.compilers[core.Kind].Costs().BranchTakenExtra)
				core.Charge(isa.ClassBranch, penalty)
				f.chargeDyn(isa.ClassBranch, penalty)
			}
		} else if taken {
			penalty := uint64(vm.compilers[core.Kind].Costs().BranchTakenExtra)
			core.Charge(isa.ClassBranch, penalty)
			f.chargeDyn(isa.ClassBranch, penalty)
		}
		if taken {
			f.PC = int(target)
			adv = false
		}
	}

	switch in.Op {
	case isa.OpNop:

	case isa.OpPushConst:
		f.push(uint64(uint32(in.A))|uint64(uint32(in.B))<<32, in.C == 1)
	case isa.OpLoadLocal:
		f.push(f.Locals[in.A], f.LocalRefs[in.A])
	case isa.OpStoreLocal:
		v, r := f.pop()
		f.Locals[in.A] = v
		f.LocalRefs[in.A] = r
	case isa.OpPop:
		f.pop()
	case isa.OpPop2:
		f.pop()
		f.pop()
	case isa.OpDup:
		v, r := f.pop()
		f.push(v, r)
		f.push(v, r)
	case isa.OpDupX1:
		a, ar := f.pop()
		b, br := f.pop()
		f.push(a, ar)
		f.push(b, br)
		f.push(a, ar)
	case isa.OpDupX2:
		a, ar := f.pop()
		b, br := f.pop()
		c, cr := f.pop()
		f.push(a, ar)
		f.push(c, cr)
		f.push(b, br)
		f.push(a, ar)
	case isa.OpDup2:
		a, ar := f.pop()
		b, br := f.pop()
		f.push(b, br)
		f.push(a, ar)
		f.push(b, br)
		f.push(a, ar)
	case isa.OpSwap:
		a, ar := f.pop()
		b, br := f.pop()
		f.push(a, ar)
		f.push(b, br)
	case isa.OpIncLocal:
		f.Locals[in.A] = uint64(uint32(int32(uint32(f.Locals[in.A])) + in.B))

	// --- int ---
	case isa.OpAddI:
		b, a := popI(), popI()
		pushI(a + b)
	case isa.OpSubI:
		b, a := popI(), popI()
		pushI(a - b)
	case isa.OpMulI:
		b, a := popI(), popI()
		pushI(a * b)
	case isa.OpDivI:
		b, a := popI(), popI()
		if b == 0 {
			return vm.trapAt(f, "ArithmeticException", "/ by zero")
		}
		if a == math.MinInt32 && b == -1 {
			pushI(math.MinInt32)
		} else {
			pushI(a / b)
		}
	case isa.OpRemI:
		b, a := popI(), popI()
		if b == 0 {
			return vm.trapAt(f, "ArithmeticException", "% by zero")
		}
		if a == math.MinInt32 && b == -1 {
			pushI(0)
		} else {
			pushI(a % b)
		}
	case isa.OpNegI:
		pushI(-popI())
	case isa.OpAndI:
		b, a := popI(), popI()
		pushI(a & b)
	case isa.OpOrI:
		b, a := popI(), popI()
		pushI(a | b)
	case isa.OpXorI:
		b, a := popI(), popI()
		pushI(a ^ b)
	case isa.OpShlI:
		b, a := popI(), popI()
		pushI(a << (uint32(b) & 31))
	case isa.OpShrI:
		b, a := popI(), popI()
		pushI(a >> (uint32(b) & 31))
	case isa.OpUShrI:
		b, a := popI(), popI()
		pushI(int32(uint32(a) >> (uint32(b) & 31)))

	// --- long ---
	case isa.OpAddL:
		b, a := popL(), popL()
		pushL(a + b)
	case isa.OpSubL:
		b, a := popL(), popL()
		pushL(a - b)
	case isa.OpMulL:
		b, a := popL(), popL()
		pushL(a * b)
	case isa.OpDivL:
		b, a := popL(), popL()
		if b == 0 {
			return vm.trapAt(f, "ArithmeticException", "/ by zero")
		}
		if a == math.MinInt64 && b == -1 {
			pushL(math.MinInt64)
		} else {
			pushL(a / b)
		}
	case isa.OpRemL:
		b, a := popL(), popL()
		if b == 0 {
			return vm.trapAt(f, "ArithmeticException", "% by zero")
		}
		if a == math.MinInt64 && b == -1 {
			pushL(0)
		} else {
			pushL(a % b)
		}
	case isa.OpNegL:
		pushL(-popL())
	case isa.OpAndL:
		b, a := popL(), popL()
		pushL(a & b)
	case isa.OpOrL:
		b, a := popL(), popL()
		pushL(a | b)
	case isa.OpXorL:
		b, a := popL(), popL()
		pushL(a ^ b)
	case isa.OpShlL:
		b, a := popI(), popL()
		pushL(a << (uint32(b) & 63))
	case isa.OpShrL:
		b, a := popI(), popL()
		pushL(a >> (uint32(b) & 63))
	case isa.OpUShrL:
		b, a := popI(), popL()
		pushL(int64(uint64(a) >> (uint32(b) & 63)))
	case isa.OpCmpL:
		b, a := popL(), popL()
		pushI(cmpOrder(a < b, a == b))

	// --- float ---
	case isa.OpAddF:
		b, a := popF(), popF()
		pushF(a + b)
	case isa.OpSubF:
		b, a := popF(), popF()
		pushF(a - b)
	case isa.OpMulF:
		b, a := popF(), popF()
		pushF(a * b)
	case isa.OpDivF:
		b, a := popF(), popF()
		pushF(a / b)
	case isa.OpNegF:
		pushF(-popF())
	case isa.OpRemF:
		b, a := popF(), popF()
		pushF(float32(math.Mod(float64(a), float64(b))))
	case isa.OpCmpF:
		b, a := popF(), popF()
		if a != a || b != b { // NaN
			pushI(in.A)
		} else {
			pushI(cmpOrder(a < b, a == b))
		}

	// --- double ---
	case isa.OpAddD:
		b, a := popD(), popD()
		pushD(a + b)
	case isa.OpSubD:
		b, a := popD(), popD()
		pushD(a - b)
	case isa.OpMulD:
		b, a := popD(), popD()
		pushD(a * b)
	case isa.OpDivD:
		b, a := popD(), popD()
		pushD(a / b)
	case isa.OpNegD:
		pushD(-popD())
	case isa.OpRemD:
		b, a := popD(), popD()
		pushD(math.Mod(a, b))
	case isa.OpCmpD:
		b, a := popD(), popD()
		if a != a || b != b {
			pushI(in.A)
		} else {
			pushI(cmpOrder(a < b, a == b))
		}

	// --- conversions ---
	case isa.OpI2L:
		pushL(int64(popI()))
	case isa.OpI2F:
		pushF(float32(popI()))
	case isa.OpI2D:
		pushD(float64(popI()))
	case isa.OpL2I:
		pushI(int32(popL()))
	case isa.OpL2F:
		pushF(float32(popL()))
	case isa.OpL2D:
		pushD(float64(popL()))
	case isa.OpF2I:
		pushI(f2i(float64(popF())))
	case isa.OpF2L:
		pushL(d2l(float64(popF())))
	case isa.OpF2D:
		pushD(float64(popF()))
	case isa.OpD2I:
		pushI(f2i(popD()))
	case isa.OpD2L:
		pushL(d2l(popD()))
	case isa.OpD2F:
		pushF(float32(popD()))
	case isa.OpI2B:
		pushI(int32(int8(popI())))
	case isa.OpI2C:
		pushI(int32(uint16(popI())))
	case isa.OpI2S:
		pushI(int32(int16(popI())))

	// --- control ---
	case isa.OpGoto:
		f.PC = int(in.A)
		adv = false
	case isa.OpIf:
		v := popI()
		branch(in.B, condHolds(in.A, compare32(v, 0)))
	case isa.OpIfCmpI:
		b, a := popI(), popI()
		branch(in.B, condHolds(in.A, compare32(a, b)))
	case isa.OpIfCmpRef:
		b, a := popRef(), popRef()
		eq := a == b
		taken := (in.A == isa.CondEQ && eq) || (in.A == isa.CondNE && !eq)
		branch(in.B, taken)
	case isa.OpIfNull:
		r := popRef()
		taken := (in.A == 0 && r == 0) || (in.A == 1 && r != 0)
		branch(in.B, taken)
	case isa.OpTableSwitch:
		idx := popI()
		table := f.CM.Tables[in.C]
		if idx >= in.A && int(idx-in.A) < len(table) {
			f.PC = int(table[idx-in.A])
		} else {
			f.PC = int(in.B)
		}
		adv = false
	case isa.OpLookupSwitch:
		key := popI()
		table := f.CM.Tables[in.C]
		keys := f.CM.Keys[in.C]
		f.PC = int(in.B)
		for i, k := range keys {
			if k == key {
				f.PC = int(table[i])
				break
			}
		}
		adv = false

	// --- calls ---
	case isa.OpCallStatic, isa.OpCallSpecial:
		callee := vm.Prog.MethodByID(int(in.A))
		f.PC++
		adv = false
		return vm.invoke(core, t, f, callee)
	case isa.OpCallVirtual:
		declared := vm.classByID[in.B].VTable[in.A]
		recv := Ref(f.Stack[f.SP-1-len(declared.Params)])
		if recv == 0 {
			return vm.trapAt(f, "NullPointerException", "virtual call on null")
		}
		callee := declared
		if cls := vm.classOf(recv); cls != nil {
			callee = cls.VTable[in.A]
		} else {
			// Arrays dispatch through Object's vtable.
			callee = vm.Prog.Object.VTable[in.A]
		}
		f.PC++
		adv = false
		return vm.invoke(core, t, f, callee)
	case isa.OpCallInterface:
		im := vm.ifaceMethods[int(in.A)]
		recv := Ref(f.Stack[f.SP-1-len(im.Params)])
		if recv == 0 {
			return vm.trapAt(f, "NullPointerException", "interface call on null")
		}
		cls := vm.classOf(recv)
		if cls == nil {
			return vm.trapAt(f, "IncompatibleClassChangeError", "interface call on array")
		}
		callee := cls.ITable[int(in.A)]
		if callee == nil {
			return vm.trapAt(f, "AbstractMethodError", im.Sig())
		}
		f.PC++
		adv = false
		return vm.invoke(core, t, f, callee)
	case isa.OpReturn:
		var val uint64
		var isRef bool
		if in.A == 1 {
			val, isRef = f.pop()
		}
		vm.returnFrom(core, t, val, isRef, in.A == 1)
		adv = false

	// --- heap ---
	case isa.OpGetField:
		ref := popRef()
		if ref == 0 {
			return vm.trapAt(f, "NullPointerException", "getfield")
		}
		v := vm.loadMem(core, f, ref, vm.objectSize(ref), uint32(in.A), 8, in.B, false)
		f.push(v, in.B&isa.FlagRef != 0)
	case isa.OpPutField:
		v, _ := f.pop()
		ref := popRef()
		if ref == 0 {
			return vm.trapAt(f, "NullPointerException", "putfield")
		}
		vm.storeMem(core, f, ref, vm.objectSize(ref), uint32(in.A), 8, v, in.B, false)
	case isa.OpGetStatic:
		addr := vm.staticsBase + uint32(in.A)*isa.SlotBytes
		v := vm.loadMem(core, f, addr, isa.SlotBytes, 0, 8, in.B, false)
		f.push(v, in.B&isa.FlagRef != 0)
	case isa.OpPutStatic:
		v, _ := f.pop()
		addr := vm.staticsBase + uint32(in.A)*isa.SlotBytes
		vm.storeMem(core, f, addr, isa.SlotBytes, 0, 8, v, in.B, false)
	case isa.OpALoad:
		idx := popI()
		arr := popRef()
		if arr == 0 {
			return vm.trapAt(f, "NullPointerException", "array load")
		}
		n := vm.arrayLength(core, f, arr)
		if idx < 0 || uint32(idx) >= n {
			return vm.trapAt(f, "ArrayIndexOutOfBoundsException",
				fmt.Sprintf("index %d, length %d", idx, n))
		}
		k := isa.ElemKind(in.A)
		esz := k.Size()
		raw := vm.loadMem(core, f, arr+isa.HeaderBytes, n*esz, uint32(idx)*esz, esz, 0, true)
		f.push(extendElem(k, raw), k == isa.ElemRef)
	case isa.OpAStore:
		v, _ := f.pop()
		idx := popI()
		arr := popRef()
		if arr == 0 {
			return vm.trapAt(f, "NullPointerException", "array store")
		}
		n := vm.arrayLength(core, f, arr)
		if idx < 0 || uint32(idx) >= n {
			return vm.trapAt(f, "ArrayIndexOutOfBoundsException",
				fmt.Sprintf("index %d, length %d", idx, n))
		}
		k := isa.ElemKind(in.A)
		esz := k.Size()
		vm.storeMem(core, f, arr+isa.HeaderBytes, n*esz, uint32(idx)*esz, esz, v, 0, true)
	case isa.OpArrayLen:
		arr := popRef()
		if arr == 0 {
			return vm.trapAt(f, "NullPointerException", "arraylength")
		}
		pushI(int32(vm.arrayLength(core, f, arr)))

	// --- allocation and type tests ---
	case isa.OpNew:
		obj, err := vm.allocObject(vm.classByID[in.A])
		if err != nil {
			return vm.trapAt(f, "OutOfMemoryError", err.Error())
		}
		pushRef(obj)
	case isa.OpNewArray, isa.OpANewArray:
		n := popI()
		if n < 0 {
			return vm.trapAt(f, "NegativeArraySizeException", fmt.Sprintf("%d", n))
		}
		kind := isa.ElemKind(in.A)
		if in.Op == isa.OpANewArray {
			kind = isa.ElemRef
		}
		arr, err := vm.allocArray(kind, uint32(n))
		if err != nil {
			return vm.trapAt(f, "OutOfMemoryError", err.Error())
		}
		pushRef(arr)
	case isa.OpInstanceOf:
		r := popRef()
		pushI(boolToI(r != 0 && vm.isInstance(r, vm.classByID[in.A])))
	case isa.OpCheckCast:
		r := popRef()
		if r != 0 && !vm.isInstance(r, vm.classByID[in.A]) {
			return vm.trapAt(f, "ClassCastException",
				fmt.Sprintf("%#x is not a %s", r, vm.classByID[in.A].Name))
		}
		pushRef(r)

	// --- synchronisation ---
	case isa.OpMonitorEnter:
		obj := popRef()
		if obj == 0 {
			return vm.trapAt(f, "NullPointerException", "monitorenter")
		}
		f.PC++
		adv = false
		if !vm.monitorEnter(core, t, obj) {
			t.needPurge = core.Kind.UsesLocalStore()
		}
	case isa.OpMonitorExit:
		obj := popRef()
		if obj == 0 {
			return vm.trapAt(f, "NullPointerException", "monitorexit")
		}
		if err := vm.monitorExit(core, t, obj); err != nil {
			return err
		}
	case isa.OpThrow:
		r := popRef()
		if r == 0 {
			return vm.trapAt(f, "NullPointerException", "athrow on null")
		}
		return thrownError{ref: r}

	default:
		return vm.trapAt(f, "InternalError", fmt.Sprintf("unhandled opcode %v", in.Op))
	}

	if adv {
		f.PC++
	}
	_ = main
	return nil
}

func cmpOrder(less, eq bool) int32 {
	switch {
	case less:
		return -1
	case eq:
		return 0
	default:
		return 1
	}
}

func compare32(a, b int32) int32 {
	switch {
	case a < b:
		return -1
	case a == b:
		return 0
	default:
		return 1
	}
}

func condHolds(cond, order int32) bool {
	switch cond {
	case isa.CondEQ:
		return order == 0
	case isa.CondNE:
		return order != 0
	case isa.CondLT:
		return order < 0
	case isa.CondGE:
		return order >= 0
	case isa.CondGT:
		return order > 0
	case isa.CondLE:
		return order <= 0
	}
	return false
}

func boolToI(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// f2i converts with Java semantics: NaN -> 0, saturating at int bounds.
func f2i(v float64) int32 {
	switch {
	case v != v:
		return 0
	case v >= math.MaxInt32:
		return math.MaxInt32
	case v <= math.MinInt32:
		return math.MinInt32
	}
	return int32(v)
}

// d2l converts with Java semantics for long.
func d2l(v float64) int64 {
	switch {
	case v != v:
		return 0
	case v >= math.MaxInt64:
		return math.MaxInt64
	case v <= math.MinInt64:
		return math.MinInt64
	}
	return int64(v)
}

// extendElem widens a raw array element to its stack representation.
func extendElem(k isa.ElemKind, raw uint64) uint64 {
	switch k {
	case isa.ElemBool, isa.ElemByte:
		return uint64(uint32(int32(int8(raw))))
	case isa.ElemChar:
		return uint64(uint32(uint16(raw)))
	case isa.ElemShort:
		return uint64(uint32(int32(int16(raw))))
	case isa.ElemInt, isa.ElemFloat:
		return raw & 0xffffffff
	default:
		return raw
	}
}

// isInstance implements instanceof/checkcast over the class hierarchy;
// arrays are instances of Object only (array covariance is out of
// scope, DESIGN.md §6).
func (vm *VM) isInstance(r Ref, target *classfile.Class) bool {
	cls := vm.classOf(r)
	if cls == nil {
		return target == vm.Prog.Object
	}
	return cls.IsSubclassOf(target)
}

// arrayLength reads the length word from an array header through the
// memory system (a real load in baseline-compiled code).
func (vm *VM) arrayLength(core *cell.Core, f *Frame, arr Ref) uint32 {
	v := vm.loadMem(core, f, arr, isa.HeaderBytes, isa.HeaderLengthOff, 4, 0, false)
	return uint32(v)
}

// loadMem performs a data load through the core's memory path:
//   - local-store kinds: the software data cache (whole-object or
//     array-block policy per isArray), honouring volatile
//     purge-before-read;
//   - hardware-cached kinds: the L1/L2 hardware model plus a direct
//     main-memory read.
//
// unit is the base address of the cacheable unit (object header or array
// data), unitSize its size, off the byte offset of the access.
func (vm *VM) loadMem(core *cell.Core, f *Frame, unit Ref, unitSize, off, width uint32, flags int32, isArray bool) uint64 {
	if dc := vm.dcaches[core.Index]; dc != nil {
		if flags&isa.FlagVolatile != 0 && !vm.Cfg.UnsafeNoCoherence {
			core.Now = dc.Purge(core.Now) // acquire: observe other cores' writes
		}
		before := core.Now
		var v uint64
		if isArray {
			v, core.Now = dc.ReadArray(core.Now, unit, unitSize, off, width)
		} else {
			v, core.Now = dc.ReadObject(core.Now, unit, unitSize, off, width)
		}
		f.chargeDyn(isa.ClassLocalMem, core.Now-before)
		return v
	}
	cycles, l1 := core.Mem.Access(unit+off, width)
	class := isa.ClassLocalMem
	if !l1 {
		class = isa.ClassMainMem
		core.Stats.DataMisses++
	} else {
		core.Stats.DataHits++
	}
	core.Charge(class, uint64(cycles))
	f.chargeDyn(class, uint64(cycles))
	return readMain(vm, unit+off, width)
}

// storeMem is the store counterpart of loadMem, honouring volatile
// flush-after-write on local-store kinds.
func (vm *VM) storeMem(core *cell.Core, f *Frame, unit Ref, unitSize, off, width uint32, val uint64, flags int32, isArray bool) {
	if dc := vm.dcaches[core.Index]; dc != nil {
		before := core.Now
		if isArray {
			core.Now = dc.WriteArray(core.Now, unit, unitSize, off, width, val)
		} else {
			core.Now = dc.WriteObject(core.Now, unit, unitSize, off, width, val)
		}
		if flags&isa.FlagVolatile != 0 && !vm.Cfg.UnsafeNoCoherence {
			core.Now = dc.Flush(core.Now) // release: publish this write
		}
		f.chargeDyn(isa.ClassLocalMem, core.Now-before)
		return
	}
	cycles, l1 := core.Mem.Access(unit+off, width)
	class := isa.ClassLocalMem
	if !l1 {
		class = isa.ClassMainMem
		core.Stats.DataMisses++
	} else {
		core.Stats.DataHits++
	}
	core.Charge(class, uint64(cycles))
	f.chargeDyn(class, uint64(cycles))
	writeMain(vm, unit+off, width, val)
}

func readMain(vm *VM, addr uint32, width uint32) uint64 {
	switch width {
	case 1:
		return uint64(vm.Machine.Mem.Read8(addr))
	case 2:
		return uint64(vm.Machine.Mem.Read16(addr))
	case 4:
		return uint64(vm.Machine.Mem.Read32(addr))
	default:
		return vm.Machine.Mem.Read64(addr)
	}
}

func writeMain(vm *VM, addr uint32, width uint32, v uint64) {
	switch width {
	case 1:
		vm.Machine.Mem.Write8(addr, uint8(v))
	case 2:
		vm.Machine.Mem.Write16(addr, uint16(v))
	case 4:
		vm.Machine.Mem.Write32(addr, uint32(v))
	default:
		vm.Machine.Mem.Write64(addr, v)
	}
}
