// RehydrateJob: admitting a frozen JobImage on a target VM. The inverse
// of FreezeJob (snapshot.go): rebuild the heap reachable set with fresh
// allocations, re-link statics and class locks, reconstruct the thread
// tree — recompiling every frame's method for the kind the thread lands
// on and re-entering at EntryOf[BC], exactly the TranslatePC path
// cross-kind migration uses — and rebuild monitors and join edges.
//
// The walk is staged so a failure cannot leave the machine
// half-mutated: validate (pure), allocate (objects pinned against GC,
// zeroed so the collector can walk them), fill payloads (references
// remapped to real heap addresses), build threads locally (compiles may
// intern, allocate, and collect — the pinned set and the already-real
// references keep the transferred graph safe), and only then commit:
// register threads, queues, monitors and the job itself. An error
// before the commit leaves only warm compiled methods and unreachable
// allocations behind — reusable work and collectable garbage, not
// corruption.
package vm

import (
	"fmt"
	"io"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
	"herajvm/internal/jit"
)

// RehydrateJob admits a frozen job image, resuming its thread tree at
// the given arrival (floored at the machine clock, like SubmitJob). The
// image must come from a VM booted over the same program. The job keeps
// its original admission cycle, absolute deadline, verdict, accounting
// and captured output, so end-to-end latency and per-job reports span
// the hand-off; threads land through the normal placement path and pay
// real compile cycles for the target's core kinds.
func (vm *VM) RehydrateJob(img *JobImage, arrival cell.Clock) (*Job, error) {
	if img == nil {
		return nil, fmt.Errorf("vm: rehydrate of nil image")
	}
	if err := vm.validateImage(img); err != nil {
		return nil, err
	}
	if now := vm.Machine.MaxClock(); arrival < now {
		arrival = now
	}
	policy, err := decodePolicy(img.Policy)
	if err != nil {
		return nil, err
	}

	j := &Job{ID: len(vm.jobs), Name: img.Name, AdmittedAt: img.AdmittedAt,
		Deadline: img.Deadline, Verdict: img.Verdict, policy: policy}
	j.Stats = img.Stats
	// Prime the capture buffer with the output already printed on the
	// source (not re-emitted to this VM's stream); new output tees both.
	j.out.Write(img.Output)
	j.w = io.MultiWriter(vm.stdout, &j.out)

	// Allocation and the compiles below may run the collector; bill its
	// pauses to the arriving job, and pin the graph until it is rooted.
	prevJob := vm.curJob
	vm.curJob = j
	defer func() { vm.curJob = prevJob }()
	defer func() { vm.pinned = vm.pinned[:0] }()

	// Allocate the transferred objects (image IDs are 1-based; refs[0]
	// stays 0 so null remaps to null for free).
	refs := make([]Ref, len(img.Objects)+1)
	for i := range img.Objects {
		io := &img.Objects[i]
		var r Ref
		var err error
		if io.Class == "" {
			r, err = vm.allocArray(isa.ElemKind(io.Elem), io.Length)
		} else {
			r, err = vm.allocObject(vm.Prog.Lookup(io.Class))
		}
		if err != nil {
			return nil, fmt.Errorf("vm: rehydrate %s: %w", img.Name, err)
		}
		refs[i+1] = r
		vm.pinned = append(vm.pinned, r)
	}

	// Fill payloads, remapping references to the fresh addresses.
	for i := range img.Objects {
		io := &img.Objects[i]
		obj := refs[i+1]
		if io.Class == "" {
			if isa.ElemKind(io.Elem) == isa.ElemRef {
				for e, id := range io.Elems {
					vm.Machine.Mem.Write32(obj+isa.HeaderBytes+uint32(e)*4, refs[id])
				}
			} else if len(io.Data) > 0 {
				vm.Machine.Mem.WriteBytes(obj+isa.HeaderBytes, io.Data)
			}
			continue
		}
		cls := vm.Prog.Lookup(io.Class)
		for s, v := range io.Slots {
			vm.Heap.SetFieldSlot(obj, s, v)
		}
		for k := cls; k != nil; k = k.Super {
			for _, fd := range k.Fields {
				if fd.Type.IsRef() {
					vm.Heap.SetFieldSlot(obj, fd.Slot, uint64(refs[io.Slots[fd.Slot]]))
				}
			}
		}
	}

	// Statics of the job's class closure.
	for _, st := range img.Statics {
		cls := vm.Prog.Lookup(st.Class)
		for i, fd := range cls.Statics {
			v := st.Slots[i]
			if fd.Type.IsRef() {
				v = uint64(refs[v])
			}
			vm.Machine.Mem.Write64(vm.staticsBase+uint32(fd.Slot)*isa.SlotBytes, v)
		}
	}

	// Class-lock bindings: static synchronized sections keep excluding
	// against the very object the source's threads were locking.
	for _, cl := range img.ClassLocks {
		cls := vm.Prog.Lookup(cl.Class)
		vm.classes[cls.ID].lockObj = refs[cl.Obj]
	}

	// Build the thread tree locally; nothing registers until every
	// fallible step (the compiles) has passed.
	threads := make([]*Thread, len(img.Threads))
	live := 0
	for i := range img.Threads {
		it := &img.Threads[i]
		t := &Thread{Name: it.Name, job: j,
			pendingVal: it.PendingVal, pendingIsRef: it.PendingIsRef,
			pendingHasVal: it.PendingHasVal,
			waitCount:     int(it.WaitCount),
			Migrations:    it.Migrations, Steals: it.Steals,
			Result: it.Result, HasResult: it.HasResult,
		}
		if it.PendingHasVal && it.PendingIsRef {
			t.pendingVal = uint64(refs[it.PendingVal])
		}
		if it.Trap != nil {
			te := *it.Trap
			t.Trap = &te
		}
		t.JavaObj = refs[it.JavaObj]
		threads[i] = t
		if it.Terminated {
			t.State = StateTerminated
			continue
		}
		live++

		kind, err := isa.ParseCoreKind(it.Kind)
		if err != nil || !vm.Machine.HasKind(kind) {
			kind = vm.serviceKind()
		}
		vm.place(t, kind) // sets Kind/CoreID/needEnsure

		// Rebuild frames, compiling for the landing kind and re-entering
		// each at its bytecode boundary. Fresh compiles are charged to the
		// thread's start, exactly as migration charges them.
		var compileCycles uint64
		for _, fr := range it.Frames {
			if fr.Marker {
				rk, err := isa.ParseCoreKind(fr.ReturnKind)
				if err != nil || !vm.Machine.HasKind(rk) {
					rk = vm.serviceKind()
				}
				t.pushFrame(&Frame{Marker: true, ReturnKind: rk})
				continue
			}
			cls := vm.Prog.Lookup(fr.Class)
			m := cls.Methods[fr.Method]
			cm, cycles, err := vm.compileFor(t.Kind, m)
			if err != nil {
				return nil, fmt.Errorf("vm: rehydrate %s: %w", img.Name, err)
			}
			if cycles > 0 {
				noteCompile(t)
			}
			compileCycles += cycles
			f := rehydrateFrame(cm, &fr, refs)
			f.ctr = vm.Monitor.Counters(m.ID)
			f.ctr.Invokes++
			t.pushFrame(f)
		}

		if t.Kind.UsesLocalStore() {
			// Acquire half of the hand-off coherence protocol, as after a
			// steal or migration: nothing this core cached may shadow the
			// writes the source flushed before the freeze.
			t.needPurge = true
		}
		t.ReadyAt = arrival + cell.Clock(it.ReadyDelay) + cell.Clock(compileCycles)
		if it.CooldownLeft > 0 {
			t.cooldownUntil = arrival + cell.Clock(it.CooldownLeft)
		}
		if it.Blocked {
			t.State = StateBlocked
		}
	}

	// Commit: register threads, join edges, queues, monitors, the job.
	for _, t := range threads {
		t.ID = vm.nextTID
		vm.nextTID++
		vm.threads = append(vm.threads, t)
		j.threads = append(j.threads, t)
		if t.State == StateTerminated {
			continue
		}
		vm.liveCount++
		if t.JavaObj != 0 {
			vm.byJavaObj[t.JavaObj] = t
		}
		if t.State != StateBlocked {
			vm.enqueue(t)
		}
	}
	for i := range img.Threads {
		for _, ji := range img.Threads[i].Joiners {
			threads[i].joiners = append(threads[i].joiners, threads[ji])
		}
	}
	for _, im := range img.Monitors {
		obj := refs[im.Obj]
		m := vm.monitorOf(obj)
		m.count = int(im.Count)
		if im.Owner >= 0 {
			m.owner = threads[im.Owner]
		}
		for _, b := range im.Blocked {
			m.blocked = append(m.blocked, threads[b])
		}
		for _, w := range im.Waiters {
			m.waiters = append(m.waiters, threads[w])
		}
		vm.writeLockWord(obj, m)
	}

	j.root = threads[0]
	j.live = live
	vm.pending++
	vm.jobs = append(vm.jobs, j)
	return j, nil
}

// rehydrateFrame rebuilds one activation from its image on a compiled
// method for the landing kind: PC re-enters at the recorded bytecode
// boundary, locals and operand stack move untouched except reference
// remapping (frame state is kind-independent at boundaries).
func rehydrateFrame(cm *jit.CompiledMethod, fr *ImageFrame, refs []Ref) *Frame {
	f := newFrame(cm)
	f.PC = int(cm.EntryOf[fr.BC])
	f.Locals = append([]uint64(nil), fr.Locals...)
	f.LocalRefs = append([]bool(nil), fr.LocalRefs...)
	// The operand stack may have grown past MaxStack (native glue
	// pushes); size for whichever is larger.
	if len(fr.Stack) > len(f.Stack) {
		f.Stack = make([]uint64, len(fr.Stack))
		f.StackRefs = make([]bool, len(fr.Stack))
	}
	copy(f.Stack, fr.Stack)
	copy(f.StackRefs, fr.StackRefs)
	f.SP = len(fr.Stack)
	for i, isRef := range f.LocalRefs {
		if isRef {
			f.Locals[i] = uint64(refs[f.Locals[i]])
		}
	}
	for i := 0; i < f.SP; i++ {
		if f.StackRefs[i] {
			f.Stack[i] = uint64(refs[f.Stack[i]])
		}
	}
	f.SyncObj = refs[fr.SyncObj]
	return f
}

// validateImage checks a JobImage's internal consistency against this
// VM's program before any machine state changes: every class and method
// reference resolves, every image object ID, thread index and bytecode
// index is in range. Corrupt or mismatched images error here, never
// panic mid-rehydration.
func (vm *VM) validateImage(img *JobImage) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("vm: rehydrate %s: invalid image: %s", img.Name, fmt.Sprintf(format, args...))
	}
	if len(img.Threads) == 0 {
		return bad("no threads")
	}
	nObj := uint32(len(img.Objects))
	okRef := func(id uint32) bool { return id <= nObj }
	class := func(name string) (*classfile.Class, error) {
		cls := vm.Prog.Lookup(name)
		if cls == nil {
			return nil, bad("unknown class %q", name)
		}
		return cls, nil
	}

	for i := range img.Objects {
		io := &img.Objects[i]
		if io.Class == "" {
			k := isa.ElemKind(io.Elem)
			if k > isa.ElemRef {
				return bad("object %d: bad element kind %d", i+1, io.Elem)
			}
			if k == isa.ElemRef {
				if uint32(len(io.Elems)) != io.Length {
					return bad("object %d: %d elems for length %d", i+1, len(io.Elems), io.Length)
				}
				for _, e := range io.Elems {
					if !okRef(e) {
						return bad("object %d: element ref %d out of range", i+1, e)
					}
				}
			} else if uint32(len(io.Data)) != io.Length*k.Size() {
				return bad("object %d: %d payload bytes for %d %s elements", i+1, len(io.Data), io.Length, k)
			}
			continue
		}
		cls, err := class(io.Class)
		if err != nil {
			return err
		}
		if len(io.Slots) != cls.InstanceSlots {
			return bad("object %d: %d slots for class %s (%d)", i+1, len(io.Slots), cls.Name, cls.InstanceSlots)
		}
		for k := cls; k != nil; k = k.Super {
			for _, fd := range k.Fields {
				if fd.Type.IsRef() && !okRef(uint32(io.Slots[fd.Slot])) {
					return bad("object %d: field %s ref out of range", i+1, fd.Name)
				}
			}
		}
	}

	for _, st := range img.Statics {
		cls, err := class(st.Class)
		if err != nil {
			return err
		}
		if len(st.Slots) != len(cls.Statics) {
			return bad("statics of %s: %d slots, class declares %d", st.Class, len(st.Slots), len(cls.Statics))
		}
		for i, fd := range cls.Statics {
			if fd.Type.IsRef() && !okRef(uint32(st.Slots[i])) {
				return bad("statics of %s: ref slot %d out of range", st.Class, i)
			}
		}
	}
	for _, cl := range img.ClassLocks {
		if _, err := class(cl.Class); err != nil {
			return err
		}
		if cl.Obj == 0 || !okRef(cl.Obj) {
			return bad("class lock of %s: ref %d out of range", cl.Class, cl.Obj)
		}
	}

	nThr := len(img.Threads)
	okThr := func(i int32) bool { return i >= 0 && int(i) < nThr }
	for i := range img.Threads {
		it := &img.Threads[i]
		if !okRef(it.JavaObj) {
			return bad("thread %d: JavaObj ref out of range", i)
		}
		if it.PendingHasVal && it.PendingIsRef && !okRef(uint32(it.PendingVal)) {
			return bad("thread %d: pending ref out of range", i)
		}
		for _, ji := range it.Joiners {
			if !okThr(ji) {
				return bad("thread %d: joiner index %d out of range", i, ji)
			}
		}
		if it.Terminated {
			continue
		}
		if len(it.Frames) == 0 {
			return bad("thread %d: live with no frames", i)
		}
		for fi := range it.Frames {
			fr := &it.Frames[fi]
			if fr.Marker {
				continue
			}
			cls, err := class(fr.Class)
			if err != nil {
				return err
			}
			if fr.Method < 0 || int(fr.Method) >= len(cls.Methods) {
				return bad("thread %d frame %d: method index %d out of range for %s", i, fi, fr.Method, cls.Name)
			}
			m := cls.Methods[fr.Method]
			if m.Code == nil {
				return bad("thread %d frame %d: method %s has no code", i, fi, m.Sig())
			}
			if fr.BC < 0 || int(fr.BC) >= len(m.Code) {
				return bad("thread %d frame %d: bytecode index %d out of range for %s", i, fi, fr.BC, m.Sig())
			}
			if len(fr.Stack) != len(fr.StackRefs) || len(fr.Locals) != len(fr.LocalRefs) {
				return bad("thread %d frame %d: ref maps do not match values", i, fi)
			}
			for s, isRef := range fr.LocalRefs {
				if isRef && !okRef(uint32(fr.Locals[s])) {
					return bad("thread %d frame %d: local %d ref out of range", i, fi, s)
				}
			}
			for s, isRef := range fr.StackRefs {
				if isRef && !okRef(uint32(fr.Stack[s])) {
					return bad("thread %d frame %d: stack %d ref out of range", i, fi, s)
				}
			}
			if !okRef(fr.SyncObj) {
				return bad("thread %d frame %d: sync ref out of range", i, fi)
			}
		}
	}
	for mi := range img.Monitors {
		im := &img.Monitors[mi]
		if im.Obj == 0 || !okRef(im.Obj) {
			return bad("monitor %d: object ref out of range", mi)
		}
		if im.Owner >= 0 && !okThr(im.Owner) {
			return bad("monitor %d: owner index out of range", mi)
		}
		for _, b := range append(append([]int32{}, im.Blocked...), im.Waiters...) {
			if !okThr(b) {
				return bad("monitor %d: queue index out of range", mi)
			}
		}
	}
	return nil
}
