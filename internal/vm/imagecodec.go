// JobImage wire format: a deterministic, versioned binary encoding so a
// frozen job can cross any boundary bytes can (tests pin golden bytes;
// the cluster layer hands the struct across directly). The format is
// flat little-endian with length-prefixed sequences — no maps, no
// floats except the policy's (bit-pattern encoded), so identical images
// always encode to identical bytes. The decoder trusts nothing: every
// length is checked against the bytes remaining before allocation, and
// corrupt input surfaces as an error, never a panic (FuzzDecodeJobImage
// holds it to that).
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"herajvm/internal/cell"
)

// imageMagic and imageVersion head every encoded JobImage. Bump the
// version on any format change; the decoder rejects others.
var imageMagic = [4]byte{'H', 'J', 'I', 'M'}

const imageVersion uint16 = 2 // v2: kernel launch counters in JobStats

// ErrBadImage reports undecodable JobImage bytes (truncated input,
// wrong magic or version, a length that overruns the buffer). Match
// with errors.Is.
var ErrBadImage = errors.New("malformed job image")

type imageWriter struct{ buf []byte }

func (w *imageWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *imageWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *imageWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *imageWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *imageWriter) i32(v int32)  { w.u32(uint32(v)) }
func (w *imageWriter) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *imageWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *imageWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *imageWriter) u64s(v []uint64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.u64(x)
	}
}
func (w *imageWriter) u32s(v []uint32) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.u32(x)
	}
}
func (w *imageWriter) i32s(v []int32) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.i32(x)
	}
}
func (w *imageWriter) bools(v []bool) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.boolean(x)
	}
}

type imageReader struct {
	buf []byte
	off int
	err error
}

func (r *imageReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrBadImage, fmt.Sprintf(format, args...), r.off)
	}
}

func (r *imageReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.fail("need %d bytes, have %d", n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *imageReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *imageReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}
func (r *imageReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (r *imageReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (r *imageReader) i32() int32    { return int32(r.u32()) }
func (r *imageReader) boolean() bool { return r.u8() != 0 }
func (r *imageReader) str() string   { return string(r.take(int(r.u32()))) }
func (r *imageReader) bytes() []byte { return append([]byte(nil), r.take(int(r.u32()))...) }

// count reads a sequence length and bounds it by the bytes remaining
// (each element needs at least elemSize bytes), so a corrupt length
// cannot drive a giant allocation before take() would catch it.
func (r *imageReader) count(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(r.buf)-r.off {
		r.fail("sequence of %d x %d bytes overruns input", n, elemSize)
		return 0
	}
	return n
}

func (r *imageReader) u64s() []uint64 {
	n := r.count(8)
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}
func (r *imageReader) u32s() []uint32 {
	n := r.count(4)
	if n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.u32()
	}
	return out
}
func (r *imageReader) i32s() []int32 {
	n := r.count(4)
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.i32()
	}
	return out
}
func (r *imageReader) bools() []bool {
	n := r.count(1)
	if n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.boolean()
	}
	return out
}

// EncodeJobImage serializes an image to its versioned binary form.
// Identical images encode to identical bytes.
func EncodeJobImage(img *JobImage) []byte {
	w := &imageWriter{}
	w.buf = append(w.buf, imageMagic[:]...)
	w.u16(imageVersion)

	w.str(img.Name)
	w.u64(uint64(img.AdmittedAt))
	w.u64(uint64(img.Deadline))
	w.u64(uint64(img.FrozenAt))
	w.u8(uint8(img.Verdict))
	w.u64(img.Stats.Migrations)
	w.u64(img.Stats.Steals)
	w.u64(img.Stats.Compiles)
	w.u64(img.Stats.GCPauses)
	w.u64(img.Stats.GCCycles)
	w.u64(img.Stats.KernelLaunches)
	w.u64(img.Stats.KernelWorkers)
	w.u64(img.Stats.KernelDMABytes)
	w.bytes(img.Output)

	w.u8(img.Policy.Tag)
	w.str(img.Policy.Kind)
	w.u64(math.Float64bits(img.Policy.FPThreshold))
	w.u64(math.Float64bits(img.Policy.MemThreshold))
	w.u64(img.Policy.MinCycles)

	w.u32(uint32(len(img.Objects)))
	for i := range img.Objects {
		o := &img.Objects[i]
		w.str(o.Class)
		w.u8(o.Elem)
		w.u32(o.Length)
		w.bytes(o.Data)
		w.u32s(o.Elems)
		w.u64s(o.Slots)
	}

	w.u32(uint32(len(img.Statics)))
	for i := range img.Statics {
		w.str(img.Statics[i].Class)
		w.u64s(img.Statics[i].Slots)
	}

	w.u32(uint32(len(img.ClassLocks)))
	for i := range img.ClassLocks {
		w.str(img.ClassLocks[i].Class)
		w.u32(img.ClassLocks[i].Obj)
	}

	w.u32(uint32(len(img.Threads)))
	for i := range img.Threads {
		t := &img.Threads[i]
		w.str(t.Name)
		w.boolean(t.Terminated)
		w.boolean(t.Blocked)
		w.u64(t.ReadyDelay)
		w.str(t.Kind)
		w.u32(t.JavaObj)
		w.boolean(t.PendingHasVal)
		w.boolean(t.PendingIsRef)
		w.u64(t.PendingVal)
		w.i32(t.WaitCount)
		w.u64(t.Migrations)
		w.u64(t.Steals)
		w.u64(t.CooldownLeft)
		w.u64(t.Result)
		w.boolean(t.HasResult)
		w.boolean(t.Trap != nil)
		if t.Trap != nil {
			w.str(t.Trap.Kind)
			w.str(t.Trap.Detail)
			w.str(t.Trap.Method)
			w.i32(int32(t.Trap.PC))
		}
		w.i32s(t.Joiners)
		w.u32(uint32(len(t.Frames)))
		for fi := range t.Frames {
			f := &t.Frames[fi]
			w.boolean(f.Marker)
			w.str(f.ReturnKind)
			w.str(f.Class)
			w.i32(f.Method)
			w.i32(f.BC)
			w.u64s(f.Locals)
			w.bools(f.LocalRefs)
			w.u64s(f.Stack)
			w.bools(f.StackRefs)
			w.u32(f.SyncObj)
		}
	}

	w.u32(uint32(len(img.Monitors)))
	for i := range img.Monitors {
		m := &img.Monitors[i]
		w.u32(m.Obj)
		w.i32(m.Owner)
		w.i32(m.Count)
		w.i32s(m.Blocked)
		w.i32s(m.Waiters)
	}
	return w.buf
}

// DecodeJobImage parses the versioned binary form back into an image.
// Any malformed input — truncation, bad magic, lengths overrunning the
// buffer, trailing garbage — returns an error wrapping ErrBadImage;
// the decoder never panics. Structural validity against a particular
// program (class names, index ranges) is RehydrateJob's validation.
func DecodeJobImage(data []byte) (*JobImage, error) {
	r := &imageReader{buf: data}
	var magic [4]byte
	copy(magic[:], r.take(4))
	if r.err == nil && magic != imageMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadImage, magic[:])
	}
	if v := r.u16(); r.err == nil && v != imageVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadImage, v, imageVersion)
	}

	img := &JobImage{}
	img.Name = r.str()
	img.AdmittedAt = cell.Clock(r.u64())
	img.Deadline = cell.Clock(r.u64())
	img.FrozenAt = cell.Clock(r.u64())
	img.Verdict = Verdict(r.u8())
	img.Stats.Migrations = r.u64()
	img.Stats.Steals = r.u64()
	img.Stats.Compiles = r.u64()
	img.Stats.GCPauses = r.u64()
	img.Stats.GCCycles = r.u64()
	img.Stats.KernelLaunches = r.u64()
	img.Stats.KernelWorkers = r.u64()
	img.Stats.KernelDMABytes = r.u64()
	img.Output = r.bytes()

	img.Policy.Tag = r.u8()
	img.Policy.Kind = r.str()
	img.Policy.FPThreshold = math.Float64frombits(r.u64())
	img.Policy.MemThreshold = math.Float64frombits(r.u64())
	img.Policy.MinCycles = r.u64()

	nObj := r.count(1)
	for i := 0; i < nObj && r.err == nil; i++ {
		var o ImageObject
		o.Class = r.str()
		o.Elem = r.u8()
		o.Length = r.u32()
		o.Data = r.bytes()
		o.Elems = r.u32s()
		o.Slots = r.u64s()
		img.Objects = append(img.Objects, o)
	}

	nSt := r.count(1)
	for i := 0; i < nSt && r.err == nil; i++ {
		var s ImageStatics
		s.Class = r.str()
		s.Slots = r.u64s()
		img.Statics = append(img.Statics, s)
	}

	nCL := r.count(1)
	for i := 0; i < nCL && r.err == nil; i++ {
		var c ImageClassLock
		c.Class = r.str()
		c.Obj = r.u32()
		img.ClassLocks = append(img.ClassLocks, c)
	}

	nThr := r.count(1)
	for i := 0; i < nThr && r.err == nil; i++ {
		var t ImageThread
		t.Name = r.str()
		t.Terminated = r.boolean()
		t.Blocked = r.boolean()
		t.ReadyDelay = r.u64()
		t.Kind = r.str()
		t.JavaObj = r.u32()
		t.PendingHasVal = r.boolean()
		t.PendingIsRef = r.boolean()
		t.PendingVal = r.u64()
		t.WaitCount = r.i32()
		t.Migrations = r.u64()
		t.Steals = r.u64()
		t.CooldownLeft = r.u64()
		t.Result = r.u64()
		t.HasResult = r.boolean()
		if r.boolean() {
			trap := &TrapError{}
			trap.Kind = r.str()
			trap.Detail = r.str()
			trap.Method = r.str()
			trap.PC = int(r.i32())
			t.Trap = trap
		}
		t.Joiners = r.i32s()
		nFr := r.count(1)
		for fi := 0; fi < nFr && r.err == nil; fi++ {
			var f ImageFrame
			f.Marker = r.boolean()
			f.ReturnKind = r.str()
			f.Class = r.str()
			f.Method = r.i32()
			f.BC = r.i32()
			f.Locals = r.u64s()
			f.LocalRefs = r.bools()
			f.Stack = r.u64s()
			f.StackRefs = r.bools()
			f.SyncObj = r.u32()
			t.Frames = append(t.Frames, f)
		}
		img.Threads = append(img.Threads, t)
	}

	nMon := r.count(1)
	for i := 0; i < nMon && r.err == nil; i++ {
		var m ImageMonitor
		m.Obj = r.u32()
		m.Owner = r.i32()
		m.Count = r.i32()
		m.Blocked = r.i32s()
		m.Waiters = r.i32s()
		img.Monitors = append(img.Monitors, m)
	}

	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadImage, len(r.buf)-r.off)
	}
	return img, nil
}
