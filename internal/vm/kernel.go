// Data-parallel kernel offload: the VM side of hera/Parallel.forRange.
//
// A launch intercepts the native at invoke time, plans the fan-out with
// internal/kernel (cheapest capable kind by FPScore over cores×SPMD
// width, contiguous chunking), and spawns one SPMD worker per core of
// the chosen pool, each pinned to its core for life — the scheduler's
// steal and migrate passes skip pinned tasks, so the barrier below is a
// join over workers that cannot wander. The caller blocks in the void
// native until the last worker retires (finishThread decrements the
// barrier), then wakes through the same join-edge coherence protocol
// ordinary joins use: every retiring worker release-flushes its core's
// data cache, and the woken caller acquire-purges before running.
//
// Workers on local-store kinds stage their input tiles through the MFC
// before the first quantum (DataCache.StageArray): tile k+1's DMA is
// issued while tile k is consumed, so the worker stalls only for the
// leading tile while every staged byte still crosses the simulated EIB
// and bills DMATransfers/DMABytes/DataStaged — transfers are never
// free. Kernel workers inherit the launching thread's job, so
// admission, deadline accounting, per-job output and the freeze/hand-off
// refusal (ErrNotFreezable while kernels are in flight) stay honest.
package vm

import (
	"fmt"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
	"herajvm/internal/kernel"
)

// kernelLaunch is one in-flight forRange fan-out: the blocked caller
// and the count of workers still running. Workers link to it via
// Thread.kernel; the caller does not (it is parked in the native).
type kernelLaunch struct {
	id        int
	caller    *Thread
	job       *Job
	remaining int
}

// launchKernel implements hera/Parallel.forRange(from, to, body): plan,
// fan out, block the caller at the barrier. An empty range is a no-op.
// body must understand run(int, int) — any hera/Kernel subclass does.
func (vm *VM) launchKernel(c *NativeCtx, from, to int32, body Ref) error {
	if body == 0 {
		return &TrapError{Kind: "NullPointerException", Detail: "Parallel.forRange on null body"}
	}
	cls := vm.classOf(body)
	if cls == nil {
		return &TrapError{Kind: "InternalError", Detail: "Parallel.forRange body is an array"}
	}
	runM := cls.MethodByName("run")
	if runM == nil || runM.IsStatic() || runM.ArgSlots() != 3 || runM.Ret != classfile.Void {
		return &TrapError{Kind: "InternalError", Detail: "no run(int,int) on " + cls.Name}
	}
	// Virtual dispatch: the most-derived override runs on the workers.
	runM = cls.VTable[runM.VSlot]
	if to <= from {
		return nil
	}

	// Choose the cheapest capable pool from the kinds this machine
	// actually has — VPU when present (wide SPMD lanes), SPE or PPE
	// scalar fallback; the kernel semantics are identical either way.
	pools := make([]kernel.Pool, 0, len(vm.presentKinds))
	for _, k := range vm.presentKinds {
		pools = append(pools, kernel.Pool{Kind: k, Cores: len(vm.kindCores[k])})
	}
	plan, ok := kernel.PlanLaunch(from, to, pools)
	if !ok || len(plan.Chunks) == 0 {
		return &TrapError{Kind: "InternalError", Detail: "no cores for kernel launch"}
	}

	k := &kernelLaunch{id: vm.kernelSeq, caller: c.Thread, job: c.Thread.job,
		remaining: len(plan.Chunks)}
	vm.kernelSeq++
	if j := k.job; j != nil {
		j.kernels++
		j.Stats.KernelLaunches++
		j.Stats.KernelWorkers += uint64(len(plan.Chunks))
	}

	// The launch is a synchronization edge: everything the caller wrote
	// (the body's input arrays) happens-before the workers' first reads.
	// Release-flush the caller's data cache; each worker acquire-purges
	// its own core before running.
	if dc := vm.dcaches[c.Core.Index]; dc != nil {
		c.Core.Now = dc.Flush(c.Core.Now)
	}

	for _, chunk := range plan.Chunks {
		if err := vm.spawnKernelWorker(k, runM, body, plan.Kind, chunk, c.Core.Now); err != nil {
			// A spawn failure (compiler full) traps the caller; workers
			// already spawned run to completion and find remaining > 0
			// forever — so back the count down to what actually started.
			k.remaining -= len(plan.Chunks) - chunk.Worker
			if j := k.job; j != nil && k.remaining == 0 {
				j.kernels--
			}
			return &TrapError{Kind: "InternalError", Detail: err.Error()}
		}
	}

	// Park the caller at the barrier; kernelComplete wakes it.
	c.Thread.State = StateBlocked
	return nil
}

// spawnKernelWorker starts one pinned SPMD worker executing
// body.run(chunk.From, chunk.To) on the chosen core, bypassing the
// placement policy and the drain-based core pick: the plan already
// assigned exactly one worker per core of the pool.
func (vm *VM) spawnKernelWorker(k *kernelLaunch, runM *classfile.Method, body Ref,
	kind isa.CoreKind, chunk kernel.Chunk, readyAt cell.Clock) error {

	cm, compileCycles, err := vm.compileFor(kind, runM)
	if err != nil {
		return err
	}
	f := newFrame(cm)
	if len(f.Locals) < 3 {
		return fmt.Errorf("vm: kernel body %s has fewer than 3 locals", runM.Sig())
	}

	t := vm.newThread(fmt.Sprintf("kernel-%d.%d", k.id, chunk.Worker))
	t.job = k.job
	if j := k.job; j != nil {
		j.live++
		j.threads = append(j.threads, t)
	}
	t.Kind = kind
	t.CoreID = vm.kindCores[kind][chunk.Worker].ID
	t.pinned = true
	t.kernel = k
	t.needPurge = true
	if kind.UsesLocalStore() {
		t.needEnsure = true
		t.needStage = true
	}
	if compileCycles > 0 {
		noteCompile(t)
	}
	f.ctr = vm.Monitor.Counters(runM.ID)
	f.ctr.Invokes++
	f.Locals[0] = uint64(body)
	f.LocalRefs[0] = true
	f.Locals[1] = uint64(uint32(chunk.From))
	f.Locals[2] = uint64(uint32(chunk.To))
	t.pushFrame(f)
	t.ReadyAt = readyAt + compileCycles
	vm.enqueue(t)
	return nil
}

// kernelWorkerDone is finishThread's barrier hook: the last worker to
// retire completes the launch and wakes the blocked caller.
func (vm *VM) kernelWorkerDone(core *cell.Core, t *Thread) {
	k := t.kernel
	k.remaining--
	if k.remaining > 0 {
		return
	}
	if j := k.job; j != nil {
		j.kernels--
	}
	caller := k.caller
	if caller.State != StateBlocked {
		return // caller detached or dead; nothing to wake
	}
	caller.State = StateReady
	caller.ReadyAt = core.Now + vm.Cfg.JoinWakeCycles
	if caller.Kind.UsesLocalStore() {
		caller.needPurge = true
	}
	vm.enqueue(caller)
}

// stageKernelTiles is the double-buffered scratchpad fill: before a
// worker's first quantum on a local-store core, every array the body
// object references is tiled through the MFC into the data cache
// (DataCache.StageArray), splitting half the cache between the arrays.
// The staged bytes are billed to the launching job's KernelDMABytes.
// Runs after the worker's acquire-purge (runWhile's needPurge step), so
// the purge cannot invalidate what was just staged.
func (vm *VM) stageKernelTiles(core *cell.Core, t *Thread) {
	dc := vm.dcaches[core.Index]
	if dc == nil || len(t.Frames) == 0 {
		return
	}
	f := t.Frames[0]
	if len(f.Locals) == 0 || !f.LocalRefs[0] {
		return
	}
	body := Ref(f.Locals[0])
	cls := vm.classOf(body)
	if cls == nil {
		return
	}
	budget := dc.Config().Size / 2
	var staged uint32
	for c := cls; c != nil; c = c.Super {
		for _, fld := range c.Fields {
			if fld.Type != classfile.Ref || staged >= budget {
				continue
			}
			r := Ref(vm.Heap.FieldSlot(body, fld.Slot))
			if r == 0 {
				continue
			}
			id := vm.Heap.ClassIDOf(r)
			if !isArrayClassID(id) {
				continue
			}
			esz := arrayKindOf(id).Size()
			dataSize := vm.Heap.LengthOf(r) * esz
			var n uint32
			core.Now, n = dc.StageArray(core.Now, r+isa.HeaderBytes, dataSize, budget-staged)
			staged += n
		}
	}
	if staged > 0 && t.job != nil {
		t.job.Stats.KernelDMABytes += uint64(staged)
	}
}
