package vm

import (
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// stealConfig returns the small test machine with the work-stealing
// scheduler on a 1 PPE + 2 SPE shape.
func stealConfig() Config {
	cfg := topoConfig(cell.PS3Topology(2))
	cfg.Scheduler = "steal"
	return cfg
}

// TestStealRebindsThread drives the scheduler through the VM directly:
// three ready threads queued on SPE0 and an idle SPE1 must produce
// exactly one steal that rebinds the stolen thread, charges the
// penalty, and bumps both cores' counters.
func TestStealRebindsThread(t *testing.T) {
	vm, err := New(stealConfig(), newProg())
	if err != nil {
		t.Fatal(err)
	}
	var queued []*Thread
	for i := 0; i < 3; i++ {
		th := vm.newThread("w")
		th.Kind, th.CoreID = isa.SPE, 0
		vm.enqueue(th)
		queued = append(queued, th)
	}

	core, next := vm.pickNext()
	spe0, spe1 := vm.Machine.CoreAt(isa.SPE, 0), vm.Machine.CoreAt(isa.SPE, 1)
	if spe1.Stats.StealsIn != 1 || spe0.Stats.StealsOut != 1 {
		t.Fatalf("steals in/out = %d/%d, want 1/1", spe1.Stats.StealsIn, spe0.Stats.StealsOut)
	}
	// The oldest queued thread was stolen; the pick itself stays on the
	// loaded core, whose oldest remaining thread runs first.
	stolen := queued[0]
	if stolen.CoreID != 1 {
		t.Errorf("stolen thread bound to SPE%d, want SPE1", stolen.CoreID)
	}
	if stolen.ReadyAt < vm.Cfg.StealCycles {
		t.Errorf("stolen thread ReadyAt = %d; the %d-cycle steal penalty was not charged",
			stolen.ReadyAt, vm.Cfg.StealCycles)
	}
	if !stolen.needEnsure {
		t.Error("stolen thread must re-warm the thief's code cache")
	}
	if core != spe0 || next != queued[1] {
		t.Errorf("pick = %v/%v, want SPE0 with the second-queued thread", core, next)
	}
	// The PPE never steals from the SPE pool.
	if vm.Machine.CoreAt(isa.PPE, 0).Stats.StealsIn != 0 {
		t.Error("PPE stole across kinds")
	}
}

// TestStealStaysWithinKind queues SPE work on a three-kind machine and
// verifies neither the PPE nor the idle VPUs touch it.
func TestStealStaysWithinKind(t *testing.T) {
	topo := cell.Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 1}, {Kind: isa.VPU, Count: 2},
	}
	cfg := topoConfig(topo)
	cfg.Scheduler = "steal"
	vm, err := New(cfg, newProg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		th := vm.newThread("w")
		th.Kind, th.CoreID = isa.SPE, 0
		vm.enqueue(th)
	}
	vm.pickNext()
	for _, c := range vm.Machine.Cores() {
		if c.Stats.StealsIn != 0 || c.Stats.StealsOut != 0 {
			t.Errorf("%v: steals %d/%d; a lone SPE has no same-kind sibling to trade with",
				c, c.Stats.StealsIn, c.Stats.StealsOut)
		}
	}
}

// buildImbalancedWorkers returns a program whose n SPE-annotated
// workers do id-proportional work (worker id loops id*iters times,
// adding 1 per iteration through the synchronized counter), so
// placement-time balancing necessarily leaves the SPE queues uneven.
// The expected total is iters * n*(n+1)/2.
func buildImbalancedWorkers(n, iters int) *classfile.Program {
	p := newProg()
	threadCls := p.Lookup("java/lang/Thread")

	counter := p.NewClass("Counter", nil)
	total := counter.NewStaticField("total", classfile.Int)
	add := counter.NewMethod("add", classfile.FlagStatic|classfile.FlagSynchronized,
		classfile.Void, classfile.Int)
	{
		a := add.Asm()
		a.GetStatic(total)
		a.LoadI(0)
		a.AddI()
		a.PutStatic(total)
		a.RetVoid()
		a.MustBuild()
	}

	worker := p.NewClass("Worker", threadCls)
	id := worker.NewField("id", classfile.Int)
	run := worker.NewMethod("run", 0, classfile.Void).Annotate(classfile.AnnRunOnSPE)
	{
		a := run.Asm()
		loop, done := a.NewLabel(), a.NewLabel()
		// bound = id * iters
		a.LoadRef(0)
		a.GetField(id)
		a.ConstI(int32(iters))
		a.MulI()
		a.StoreI(2)
		a.ConstI(0)
		a.StoreI(1)
		a.Bind(loop)
		a.LoadI(1)
		a.LoadI(2)
		a.IfICmpGE(done)
		a.ConstI(1)
		a.InvokeStatic(add)
		a.Inc(1, 1)
		a.Goto(loop)
		a.Bind(done)
		a.RetVoid()
		a.MustBuild()
	}

	main := p.NewClass("Main", nil)
	m := main.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	a.ConstI(int32(n))
	a.ANewArray(worker)
	a.StoreRef(0)
	loop1, done1 := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop1)
	a.LoadI(1)
	a.ConstI(int32(n))
	a.IfICmpGE(done1)
	a.New(worker)
	a.StoreRef(2)
	a.LoadRef(2)
	a.LoadI(1)
	a.ConstI(1)
	a.AddI()
	a.PutField(id)
	a.LoadRef(0)
	a.LoadI(1)
	a.LoadRef(2)
	a.AStore(classfile.ElemRef)
	a.LoadRef(2)
	a.InvokeVirtual(threadCls.MethodByName("start"))
	a.Inc(1, 1)
	a.Goto(loop1)
	a.Bind(done1)
	loop2, done2 := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop2)
	a.LoadI(1)
	a.ConstI(int32(n))
	a.IfICmpGE(done2)
	a.LoadRef(0)
	a.LoadI(1)
	a.ALoad(classfile.ElemRef)
	a.InvokeVirtual(threadCls.MethodByName("join"))
	a.Inc(1, 1)
	a.Goto(loop2)
	a.Bind(done2)
	a.GetStatic(total)
	a.Ret()
	a.MustBuild()
	return p
}

// stealRun executes the imbalanced-worker program under a scheduler and
// returns the checksum, final clock, per-core instruction counts and
// total steals.
func stealRun(t *testing.T, scheduler string) (int32, cell.Clock, []uint64, uint64) {
	t.Helper()
	cfg := topoConfig(cell.PS3Topology(2))
	cfg.Scheduler = scheduler
	vm, th := runMain(t, cfg, buildImbalancedWorkers(6, 120), "Main", "main")
	if th.Trap != nil {
		t.Fatal(th.Trap)
	}
	var instrs []uint64
	var steals uint64
	for _, c := range vm.Machine.Cores() {
		instrs = append(instrs, c.Stats.Instrs)
		steals += c.Stats.StealsIn
	}
	return int32(uint32(th.Result)), vm.Machine.MaxClock(), instrs, steals
}

// TestStealSchedulerEndToEnd runs an imbalanced multi-threaded workload
// under both schedulers: the steal run must actually steal, stay
// checksum-identical to the calendar run, and be bit-for-bit
// deterministic across repeats.
func TestStealSchedulerEndToEnd(t *testing.T) {
	const want = 120 * (6 * 7 / 2) // iters * sum(1..6)

	calSum, _, _, calSteals := stealRun(t, "calendar")
	if calSum != want {
		t.Fatalf("calendar checksum = %d, want %d", calSum, want)
	}
	if calSteals != 0 {
		t.Fatalf("calendar scheduler stole %d times", calSteals)
	}

	sum1, clock1, instrs1, steals1 := stealRun(t, "steal")
	if sum1 != want {
		t.Errorf("steal checksum = %d, want %d", sum1, want)
	}
	if steals1 == 0 {
		t.Error("imbalanced workers on 2 SPEs should trigger at least one steal")
	}

	sum2, clock2, instrs2, steals2 := stealRun(t, "steal")
	if sum1 != sum2 || clock1 != clock2 || steals1 != steals2 {
		t.Errorf("steal runs diverged: sum %d/%d clock %d/%d steals %d/%d",
			sum1, sum2, clock1, clock2, steals1, steals2)
	}
	for i := range instrs1 {
		if instrs1[i] != instrs2[i] {
			t.Errorf("core %d instruction counts differ across steal runs: %d vs %d",
				i, instrs1[i], instrs2[i])
		}
	}
}

// TestJoinWakeCyclesKnob verifies the joiner-wake latency is the
// configured knob: a huge value must push the joining main thread's
// completion out, a zero value must pull it in, and the default must
// stay at the historical 100 cycles.
func TestJoinWakeCyclesKnob(t *testing.T) {
	if DefaultConfig().JoinWakeCycles != 100 {
		t.Fatalf("default JoinWakeCycles = %d, want the historical 100", DefaultConfig().JoinWakeCycles)
	}
	run := func(wake uint64) cell.Clock {
		cfg := testConfig()
		cfg.JoinWakeCycles = wake
		vm, th := runMain(t, cfg, buildWorkerProgram(2, ""), "Main", "main")
		if th.Trap != nil {
			t.Fatal(th.Trap)
		}
		return vm.Machine.MaxClock()
	}
	base := run(100)
	slow := run(5_000_000)
	if slow <= base {
		t.Errorf("JoinWakeCycles=5M finished at %d, no later than the default's %d", slow, base)
	}
}

// TestUnknownSchedulerRejected: a bad Config.Scheduler fails at boot,
// naming the registered options.
func TestUnknownSchedulerRejected(t *testing.T) {
	cfg := testConfig()
	cfg.Scheduler = "mystery"
	if _, err := New(cfg, newProg()); err == nil {
		t.Fatal("unknown scheduler should fail VM construction")
	}
}
