package vm

import (
	"fmt"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
)

// thrownError carries an application-thrown exception object (athrow)
// out of the instruction step into the dispatcher.
type thrownError struct {
	ref Ref
}

// Error satisfies error; the dispatcher intercepts thrownError before
// it could ever be reported directly.
func (e thrownError) Error() string { return fmt.Sprintf("thrown object %#x", e.ref) }

// raise converts an executor error into exception dispatch: VM traps
// (NullPointerException and friends) are materialised as instances of
// the matching java/lang class when the program declares handlers might
// want them; thrownError carries the application's own object. If no
// frame handles the exception the thread dies with a TrapError, as an
// uncaught exception kills a Java thread.
func (vm *VM) raise(core *cell.Core, t *Thread, err error) {
	var exRef Ref
	var fallback *TrapError

	switch e := err.(type) {
	case thrownError:
		exRef = e.ref
		name := "Throwable"
		if cls := vm.classOf(exRef); cls != nil {
			name = cls.Name
		}
		fallback = &TrapError{Kind: name, Detail: vm.throwableMessage(exRef)}
		if len(t.Frames) > 0 {
			f := t.top()
			if f.CM != nil {
				fallback.Method = f.CM.M.Sig()
				fallback.PC = f.PC
			}
		}
	case *TrapError:
		fallback = e
		exRef = vm.materialiseTrap(e)
	default:
		vm.trap(core, t, err)
		return
	}

	if vm.dispatchThrow(core, t, exRef, 0) {
		return
	}
	vm.trap(core, t, fallback)
}

// materialiseTrap allocates an instance of the java/lang class matching
// a VM trap kind, with its message field set. It returns 0 when the
// class does not exist or allocation fails (the trap then falls back to
// killing the thread, which needs no object).
func (vm *VM) materialiseTrap(e *TrapError) Ref {
	cls := vm.Prog.Lookup("java/lang/" + e.Kind)
	if cls == nil || vm.throwableCls == nil || !cls.IsSubclassOf(vm.throwableCls) {
		return 0
	}
	obj, err := vm.allocObject(cls)
	if err != nil {
		return 0
	}
	if msg, err := vm.intern(e.Detail); err == nil {
		vm.Heap.SetFieldSlot(obj, vm.throwableCls.FieldByName("message").Slot, uint64(msg))
	}
	return obj
}

// throwableMessage reads a throwable's message for diagnostics.
func (vm *VM) throwableMessage(ex Ref) string {
	if ex == 0 || vm.throwableCls == nil {
		return "thrown explicitly"
	}
	cls := vm.classOf(ex)
	if cls == nil || !cls.IsSubclassOf(vm.throwableCls) {
		return "thrown explicitly"
	}
	msg := Ref(vm.Heap.FieldSlot(ex, vm.throwableCls.FieldByName("message").Slot))
	if msg == 0 {
		return "no message"
	}
	return vm.GoString(msg)
}

// dispatchThrow unwinds t's frames looking for a handler covering the
// current position whose type matches the exception. pcAdj is 0 when
// the top frame itself faulted and 1 when unwinding resumes in a caller
// (whose PC already points past the faulting call). It returns false
// when the exception is uncaught; it returns true both when a handler
// took over and when unwinding crossed a migration marker (the thread
// migrates back and continues unwinding on the original core type).
func (vm *VM) dispatchThrow(core *cell.Core, t *Thread, exRef Ref, pcAdj int) bool {
	if exRef == 0 {
		return false
	}
	exClass := vm.classOf(exRef)
	if exClass == nil {
		return false
	}
	dispatchCost := uint64(vm.compilers[core.Kind].Costs().OpCost[isa.OpThrow])

	for len(t.Frames) > 0 {
		f := t.top()
		if f.Marker {
			// The throwing method was entered through a migration: return
			// to the origin core type carrying the in-flight exception
			// (§3.1's marker protocol, here on the unwind path).
			t.popFrame()
			t.pendingThrow = exRef
			t.hasPendingThrow = true
			vm.migrate(core, t, f.ReturnKind, 1)
			return true
		}
		pc := f.PC - pcAdj
		for _, h := range f.CM.Handlers {
			if pc < h.From || pc >= h.To {
				continue
			}
			if h.ClassID >= 0 && !exClass.IsSubclassOf(vm.classByID[h.ClassID]) {
				continue
			}
			// Handler found: clear the operand stack, push the thrown
			// reference, continue at the handler.
			core.Charge(isa.ClassBranch, dispatchCost)
			f.SP = 0
			f.push(uint64(exRef), true)
			f.PC = h.Target
			if t.State != StateRunning {
				t.State = StateRunning
			}
			return true
		}
		// No handler here: release a synchronized method's monitor and
		// keep unwinding.
		core.Charge(isa.ClassBranch, 20)
		if f.SyncObj != 0 {
			_ = vm.monitorExit(core, t, f.SyncObj)
		}
		t.popFrame()
		pcAdj = 1
	}
	return false
}
