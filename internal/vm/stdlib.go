package vm

import (
	"fmt"
	"math"

	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// Stdlib installs the built-in Java library subset into a fresh program:
// java/lang/Object's native methods, String, Runnable, Thread, System
// and Math. Call it immediately after classfile.NewProgram, before
// declaring application classes that use these types.
//
// This mirrors Hera-JVM's structure: "as a Java in Java virtual machine,
// almost all of the JikesRVM runtime system is written in Java" (§3.1) —
// here the library classes are bytecode where practical (String.length,
// Thread.run) and native where the real library is native too.
func Stdlib(p *classfile.Program) {
	obj := p.Object

	hash := obj.NewMethod("hashCode", classfile.FlagNative, classfile.Int)
	_ = hash
	eq := obj.NewMethod("equals", 0, classfile.Int, classfile.Ref)
	{
		a := eq.Asm()
		same := a.NewLabel()
		a.LoadRef(0)
		a.LoadRef(1)
		a.IfACmpEQ(same)
		a.ConstI(0)
		a.Ret()
		a.Bind(same)
		a.ConstI(1)
		a.Ret()
		a.MustBuild()
	}
	obj.NewMethod("wait", classfile.FlagNative, classfile.Void)
	obj.NewMethod("notify", classfile.FlagNative, classfile.Void)
	obj.NewMethod("notifyAll", classfile.FlagNative, classfile.Void)

	str := p.NewClass("java/lang/String", nil)
	str.NewField("value", classfile.Ref) // char[]
	str.NewField("count", classfile.Int)
	length := str.NewMethod("length", 0, classfile.Int)
	{
		a := length.Asm()
		a.LoadRef(0)
		a.GetField(str.FieldByName("count"))
		a.Ret()
		a.MustBuild()
	}
	charAt := str.NewMethod("charAt", 0, classfile.Int, classfile.Int)
	{
		a := charAt.Asm()
		a.LoadRef(0)
		a.GetField(str.FieldByName("value"))
		a.LoadI(1)
		a.ALoad(classfile.ElemChar)
		a.Ret()
		a.MustBuild()
	}

	throwable := p.NewClass("java/lang/Throwable", nil)
	throwable.NewField("message", classfile.Ref)
	getMessage := throwable.NewMethod("getMessage", 0, classfile.Ref)
	{
		a := getMessage.Asm()
		a.LoadRef(0)
		a.GetField(throwable.FieldByName("message"))
		a.Ret()
		a.MustBuild()
	}
	exception := p.NewClass("java/lang/Exception", throwable)
	runtimeEx := p.NewClass("java/lang/RuntimeException", exception)
	errCls := p.NewClass("java/lang/Error", throwable)
	for _, name := range []string{
		"ArithmeticException", "NullPointerException",
		"ArrayIndexOutOfBoundsException", "ClassCastException",
		"NegativeArraySizeException", "IllegalMonitorStateException",
		"IllegalThreadStateException", "ArrayStoreException",
	} {
		p.NewClass("java/lang/"+name, runtimeEx)
	}
	for _, name := range []string{
		"OutOfMemoryError", "UnsatisfiedLinkError", "InternalError",
		"AbstractMethodError", "IncompatibleClassChangeError",
	} {
		p.NewClass("java/lang/"+name, errCls)
	}

	runnable := p.NewInterface("java/lang/Runnable")
	runnableRun := runnable.NewMethod("run", classfile.FlagAbstract, classfile.Void)

	thread := p.NewClass("java/lang/Thread", nil)
	thread.NewField("target", classfile.Ref) // Runnable
	run := thread.NewMethod("run", 0, classfile.Void)
	{
		a := run.Asm()
		noTarget := a.NewLabel()
		a.LoadRef(0)
		a.GetField(thread.FieldByName("target"))
		a.IfNull(noTarget)
		a.LoadRef(0)
		a.GetField(thread.FieldByName("target"))
		a.InvokeInterface(runnableRun)
		a.Bind(noTarget)
		a.RetVoid()
		a.MustBuild()
	}
	thread.NewMethod("start", classfile.FlagNative, classfile.Void)
	thread.NewMethod("join", classfile.FlagNative, classfile.Void)
	thread.NewMethod("yield", classfile.FlagStatic|classfile.FlagNative, classfile.Void)

	system := p.NewClass("java/lang/System", nil)
	system.NewMethod("arraycopy", classfile.FlagStatic|classfile.FlagNative, classfile.Void,
		classfile.Ref, classfile.Int, classfile.Ref, classfile.Int, classfile.Int)
	system.NewMethod("currentTimeMillis", classfile.FlagStatic|classfile.FlagNative, classfile.Long)
	system.NewMethod("nanoTime", classfile.FlagStatic|classfile.FlagNative, classfile.Long)
	system.NewMethod("println", classfile.FlagStatic|classfile.FlagNative, classfile.Void, classfile.Ref)
	system.NewMethod("printInt", classfile.FlagStatic|classfile.FlagNative, classfile.Void, classfile.Int)
	system.NewMethod("printLong", classfile.FlagStatic|classfile.FlagNative, classfile.Void, classfile.Long)
	system.NewMethod("printDouble", classfile.FlagStatic|classfile.FlagNative, classfile.Void, classfile.Double)

	installStringBuilder(p)

	m := p.NewClass("java/lang/Math", nil)
	for _, name := range []string{"sqrt", "sin", "cos", "tan", "exp", "log", "floor", "ceil", "abs"} {
		m.NewMethod(name, classfile.FlagStatic|classfile.FlagNative, classfile.Double, classfile.Double)
	}
	m.NewMethod("pow", classfile.FlagStatic|classfile.FlagNative, classfile.Double,
		classfile.Double, classfile.Double)
	m.NewMethod("maxI", classfile.FlagStatic|classfile.FlagNative, classfile.Int,
		classfile.Int, classfile.Int)
	m.NewMethod("minI", classfile.FlagStatic|classfile.FlagNative, classfile.Int,
		classfile.Int, classfile.Int)

	// hera/Kernel is the data-parallel kernel body contract: subclasses
	// override run(from, to) to process the half-open iteration slice
	// [from, to), reading their input arrays and writing only
	// worker-private state (the determinism rule the kernel layer's
	// differential tests pin). The base run is an empty body so a launch
	// on a body without an override is a no-op, not a trap.
	kern := p.NewClass("hera/Kernel", nil)
	kernRun := kern.NewMethod("run", 0, classfile.Void, classfile.Int, classfile.Int)
	{
		a := kernRun.Asm()
		a.RetVoid()
		a.MustBuild()
	}

	// hera/Parallel is the guest-visible launch entry point. forRange
	// splits [from, to) into contiguous chunks, fans them out as SPMD
	// workers pinned one-per-core on the cheapest capable kind, and
	// returns when every worker has retired (a join barrier). The VM
	// intercepts it at invoke time like the other natives.
	par := p.NewClass("hera/Parallel", nil)
	par.NewMethod("forRange", classfile.FlagStatic|classfile.FlagNative, classfile.Void,
		classfile.Int, classfile.Int, classfile.Ref)
}

// registerBuiltins installs the native implementations backing Stdlib.
func registerBuiltins(vm *VM) {
	reg := vm.RegisterNative

	reg("java/lang/Object.hashCode", &Native{Kind: NativeCompute, Cycles: 12, Class: isa.ClassInt,
		Fn: func(c *NativeCtx) error {
			c.ReturnI(int32(c.Args[0]))
			return nil
		}})
	reg("java/lang/Object.wait", &Native{Kind: NativeCompute, Cycles: 60, Class: isa.ClassMainMem,
		Fn: func(c *NativeCtx) error {
			return c.VM.monitorWait(c.Core, c.Thread, Ref(c.Args[0]))
		}})
	reg("java/lang/Object.notify", &Native{Kind: NativeCompute, Cycles: 40, Class: isa.ClassMainMem,
		Fn: func(c *NativeCtx) error {
			return c.VM.monitorNotify(c.Core, c.Thread, Ref(c.Args[0]), 1)
		}})
	reg("java/lang/Object.notifyAll", &Native{Kind: NativeCompute, Cycles: 50, Class: isa.ClassMainMem,
		Fn: func(c *NativeCtx) error {
			return c.VM.monitorNotify(c.Core, c.Thread, Ref(c.Args[0]), -1)
		}})

	reg("java/lang/Thread.start", &Native{Kind: NativeCompute, Cycles: 2500, Class: isa.ClassInt,
		Fn: func(c *NativeCtx) error {
			return c.VM.startJavaThread(c, Ref(c.Args[0]))
		}})
	reg("java/lang/Thread.join", &Native{Kind: NativeCompute, Cycles: 80, Class: isa.ClassInt,
		Fn: func(c *NativeCtx) error {
			target := c.VM.byJavaObj[Ref(c.Args[0])]
			if target == nil || target.State == StateTerminated {
				// Not started or already dead: join returns immediately —
				// but it is still a synchronization edge. Acquire-purge the
				// joiner's data cache so a stale clean copy cached on this
				// core cannot shadow the dead thread's flushed writes (the
				// blocked-join path gets the same purge via needPurge when
				// the joiner wakes).
				if dc := c.VM.dcaches[c.Core.Index]; dc != nil {
					c.Core.Now = dc.Purge(c.Core.Now)
				}
				return nil
			}
			target.joiners = append(target.joiners, c.Thread)
			c.Thread.State = StateBlocked
			return nil
		}})
	reg("java/lang/Thread.yield", &Native{Kind: NativeCompute, Cycles: 40, Class: isa.ClassInt,
		Fn: func(c *NativeCtx) error {
			c.Thread.ReadyAt = c.Core.Now
			c.VM.enqueue(c.Thread) // back of the queue; quantum ends
			return nil
		}})

	reg("java/lang/System.arraycopy", &Native{Kind: NativeCompute, Cycles: 200, Class: isa.ClassMainMem,
		Fn: sysArraycopy})
	reg("java/lang/System.currentTimeMillis", &Native{Kind: NativeCompute, Cycles: 30, Class: isa.ClassInt,
		Fn: func(c *NativeCtx) error {
			c.ReturnL(int64(float64(c.Core.Now) / (c.VM.Cfg.Machine.EffectiveClockHz() / 1e3)))
			return nil
		}})
	reg("java/lang/System.nanoTime", &Native{Kind: NativeCompute, Cycles: 30, Class: isa.ClassInt,
		Fn: func(c *NativeCtx) error {
			c.ReturnL(int64(float64(c.Core.Now) / (c.VM.Cfg.Machine.EffectiveClockHz() / 1e9)))
			return nil
		}})
	reg("java/lang/System.println", &Native{Kind: NativeSyscall, Cycles: 400, Class: isa.ClassBranch,
		Fn: func(c *NativeCtx) error {
			fmt.Fprintln(c.VM.outFor(c.Thread), c.VM.GoString(Ref(c.Args[0])))
			return nil
		}})
	reg("java/lang/System.printInt", &Native{Kind: NativeSyscall, Cycles: 400, Class: isa.ClassBranch,
		Fn: func(c *NativeCtx) error {
			fmt.Fprintln(c.VM.outFor(c.Thread), int32(uint32(c.Args[0])))
			return nil
		}})
	reg("java/lang/System.printLong", &Native{Kind: NativeSyscall, Cycles: 400, Class: isa.ClassBranch,
		Fn: func(c *NativeCtx) error {
			fmt.Fprintln(c.VM.outFor(c.Thread), int64(c.Args[0]))
			return nil
		}})
	reg("java/lang/System.printDouble", &Native{Kind: NativeSyscall, Cycles: 400, Class: isa.ClassBranch,
		Fn: func(c *NativeCtx) error {
			fmt.Fprintln(c.VM.outFor(c.Thread), math.Float64frombits(c.Args[0]))
			return nil
		}})

	mathNative := func(name string, ppe, spe uint64, fn func(float64) float64) {
		reg("java/lang/Math."+name, &Native{Kind: NativeCompute, Cycles: ppe, SPECycles: spe,
			Class: isa.ClassFloat,
			Fn: func(c *NativeCtx) error {
				c.ReturnD(fn(math.Float64frombits(c.Args[0])))
				return nil
			}})
	}
	// The SPE's software libm is competitive with the PPE's scalar FPU
	// under baseline code; both are tens of cycles per call.
	mathNative("sqrt", 60, 46, math.Sqrt)
	mathNative("sin", 90, 70, math.Sin)
	mathNative("cos", 90, 70, math.Cos)
	mathNative("tan", 110, 86, math.Tan)
	mathNative("exp", 100, 80, math.Exp)
	mathNative("log", 100, 80, math.Log)
	mathNative("floor", 30, 20, math.Floor)
	mathNative("ceil", 30, 20, math.Ceil)
	mathNative("abs", 20, 12, math.Abs)
	reg("java/lang/Math.pow", &Native{Kind: NativeCompute, Cycles: 160, SPECycles: 130,
		Class: isa.ClassFloat,
		Fn: func(c *NativeCtx) error {
			c.ReturnD(math.Pow(math.Float64frombits(c.Args[0]), math.Float64frombits(c.Args[1])))
			return nil
		}})
	reg("java/lang/Math.maxI", &Native{Kind: NativeCompute, Cycles: 8, Class: isa.ClassInt,
		Fn: func(c *NativeCtx) error {
			a, b := int32(uint32(c.Args[0])), int32(uint32(c.Args[1]))
			c.ReturnI(max(a, b))
			return nil
		}})
	reg("java/lang/Math.minI", &Native{Kind: NativeCompute, Cycles: 8, Class: isa.ClassInt,
		Fn: func(c *NativeCtx) error {
			a, b := int32(uint32(c.Args[0])), int32(uint32(c.Args[1]))
			c.ReturnI(min(a, b))
			return nil
		}})

	// The launch cost models packaging the descriptor and ringing each
	// chosen core's doorbell; per-worker spawn costs (compile, purge,
	// staging DMA) are charged on the workers themselves. forRange is
	// void, so blocking the caller at the barrier is safe under the
	// blocking-native contract (runComputeNative pushes no result).
	reg("hera/Parallel.forRange", &Native{Kind: NativeCompute, Cycles: 1800, Class: isa.ClassInt,
		Fn: func(c *NativeCtx) error {
			return c.VM.launchKernel(c,
				int32(uint32(c.Args[0])), int32(uint32(c.Args[1])), Ref(c.Args[2]))
		}})
}

// startJavaThread implements Thread.start(): spawn a VM thread running
// the receiver's (possibly overridden) run() method, placed by policy.
func (vm *VM) startJavaThread(c *NativeCtx, recv Ref) error {
	if recv == 0 {
		return &TrapError{Kind: "NullPointerException", Detail: "Thread.start on null"}
	}
	if vm.byJavaObj[recv] != nil {
		return &TrapError{Kind: "IllegalThreadStateException", Detail: "thread already started"}
	}
	cls := vm.classOf(recv)
	if cls == nil {
		return &TrapError{Kind: "InternalError", Detail: "Thread.start on array"}
	}
	runM := cls.MethodByName("run")
	if runM == nil || runM.IsStatic() {
		return &TrapError{Kind: "InternalError", Detail: "no run() on " + cls.Name}
	}
	// Virtual dispatch: the most-derived override. The spawned thread
	// joins the spawner's job, so whole thread trees stay attributable.
	runM = cls.VTable[runM.VSlot]
	t, err := vm.startThread(c.Thread.job, fmt.Sprintf("Thread-%d", vm.nextTID), runM,
		c.Core.Now, []uint64{uint64(recv)}, []bool{true})
	if err != nil {
		return &TrapError{Kind: "InternalError", Detail: err.Error()}
	}
	t.JavaObj = recv
	vm.byJavaObj[recv] = t
	// start() is a synchronization edge: everything the spawner wrote
	// happens-before the new thread's first action. Release-flush the
	// spawner's data cache so those writes reach main memory, and mark
	// the child to acquire-purge before it runs, so stale clean lines
	// left on whichever core it lands on cannot shadow them.
	if dc := vm.dcaches[c.Core.Index]; dc != nil {
		c.Core.Now = dc.Flush(c.Core.Now)
	}
	t.needPurge = true
	return nil
}

// sysArraycopy implements System.arraycopy with a per-byte bus cost. On
// a local-store core the copy is performed by the runtime through main
// memory, so the caller's cached view of the destination is purged
// first (conservative but correct under the software-cache protocol).
func sysArraycopy(c *NativeCtx) error {
	vm := c.VM
	src, dst := Ref(c.Args[0]), Ref(c.Args[2])
	srcPos, dstPos := int32(uint32(c.Args[1])), int32(uint32(c.Args[3]))
	n := int32(uint32(c.Args[4]))
	if src == 0 || dst == 0 {
		return &TrapError{Kind: "NullPointerException", Detail: "arraycopy"}
	}
	sid, did := vm.Heap.ClassIDOf(src), vm.Heap.ClassIDOf(dst)
	if !isArrayClassID(sid) || !isArrayClassID(did) || arrayKindOf(sid) != arrayKindOf(did) {
		return &TrapError{Kind: "ArrayStoreException", Detail: "arraycopy type mismatch"}
	}
	k := arrayKindOf(sid)
	slen, dlen := int32(vm.Heap.LengthOf(src)), int32(vm.Heap.LengthOf(dst))
	if srcPos < 0 || dstPos < 0 || n < 0 || srcPos+n > slen || dstPos+n > dlen {
		return &TrapError{Kind: "ArrayIndexOutOfBoundsException", Detail: "arraycopy bounds"}
	}
	if dc := vm.dcaches[c.Core.Index]; dc != nil {
		c.Core.Now = dc.Purge(c.Core.Now)
	}
	esz := k.Size()
	bytes := uint32(n) * esz
	buf := make([]byte, bytes)
	vm.Machine.Mem.ReadBytes(src+isa.HeaderBytes+uint32(srcPos)*esz, buf)
	vm.Machine.Mem.WriteBytes(dst+isa.HeaderBytes+uint32(dstPos)*esz, buf)
	c.Charge(isa.ClassMainMem, uint64(bytes/8+40))
	return nil
}
