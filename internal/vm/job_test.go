package vm

import (
	"strings"
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// buildTwoEntryProg returns a program with two independent entry
// methods: EntryA.main prints "A" and returns 11, EntryB.main prints
// "B" and returns 22.
func buildTwoEntryProg() *classfile.Program {
	p := newProg()
	system := p.Lookup("java/lang/System")
	println := system.MethodByName("println")
	build := func(cls, msg string, ret int32) {
		c := p.NewClass(cls, nil)
		m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
		a := m.Asm()
		a.Str(msg)
		a.InvokeStatic(println)
		a.ConstI(ret)
		a.Ret()
		a.MustBuild()
	}
	build("EntryA", "A", 11)
	build("EntryB", "B", 22)
	return p
}

func TestSubmitJobsPerJobOutputAndResults(t *testing.T) {
	vm, err := New(testConfig(), buildTwoEntryProg())
	if err != nil {
		t.Fatal(err)
	}
	ja, err := vm.SubmitJob(JobSpec{Class: "EntryA", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	jb, err := vm.SubmitJob(JobSpec{Class: "EntryB", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if ja.Done() || jb.Done() {
		t.Fatal("jobs must not run before the machine is driven")
	}
	if err := vm.DrainJobs(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		j    *Job
		out  string
		want int32
	}{{ja, "A\n", 11}, {jb, "B\n", 22}} {
		if !tc.j.Done() {
			t.Fatalf("job %d not done after drain", tc.j.ID)
		}
		if got := tc.j.Output(); got != tc.out {
			t.Errorf("job %d output = %q, want %q", tc.j.ID, got, tc.out)
		}
		if got := int32(uint32(tc.j.Root().Result)); got != tc.want {
			t.Errorf("job %d result = %d, want %d", tc.j.ID, got, tc.want)
		}
		if tc.j.Cycles() == 0 || tc.j.CompletedAt <= tc.j.AdmittedAt {
			t.Errorf("job %d has no per-job time: admitted=%d completed=%d",
				tc.j.ID, tc.j.AdmittedAt, tc.j.CompletedAt)
		}
	}
	// The VM-wide stream still carries everything, in simulated order.
	if got := vm.Output(); !strings.Contains(got, "A\n") || !strings.Contains(got, "B\n") {
		t.Errorf("global output missing job text: %q", got)
	}
	if len(vm.Jobs()) != 2 {
		t.Errorf("job table has %d entries, want 2", len(vm.Jobs()))
	}
}

func TestSubmitJobArgsAndArrival(t *testing.T) {
	p := newProg()
	c := p.NewClass("Mul", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int, classfile.Int, classfile.Int)
	a := m.Asm()
	a.LoadI(0)
	a.LoadI(1)
	a.MulI()
	a.Ret()
	a.MustBuild()

	vm, err := New(testConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	const arrival = 90_000
	j, err := vm.SubmitJob(JobSpec{Name: "mul", Class: "Mul", Method: "main", Args: []uint64{6, 7}, ArgRefs: []bool{false, false}, Arrival: arrival})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitJob(j); err != nil {
		t.Fatal(err)
	}
	if got := int32(uint32(j.Root().Result)); got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
	if j.AdmittedAt != arrival {
		t.Errorf("admitted at %d, want the requested arrival %d", j.AdmittedAt, arrival)
	}
	if j.CompletedAt <= arrival {
		t.Errorf("completed at %d, before the arrival %d", j.CompletedAt, arrival)
	}
}

// TestWaitJobLeavesOthersPending: waiting on an early job must not
// force a later-arriving job to complete; draining finishes it.
func TestWaitJobLeavesOthersPending(t *testing.T) {
	vm, err := New(testConfig(), buildTwoEntryProg())
	if err != nil {
		t.Fatal(err)
	}
	ja, err := vm.SubmitJob(JobSpec{Class: "EntryA", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	// EntryB arrives far after EntryA completes.
	jb, err := vm.SubmitJob(JobSpec{Class: "EntryB", Method: "main", Arrival: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitJob(ja); err != nil {
		t.Fatal(err)
	}
	if !ja.Done() {
		t.Fatal("waited job not done")
	}
	if jb.Done() {
		t.Error("a job arriving tens of millions of cycles later completed during an early wait")
	}
	if err := vm.DrainJobs(); err != nil {
		t.Fatal(err)
	}
	if !jb.Done() {
		t.Error("drain left a job incomplete")
	}
}

// TestJobChildThreadsInheritJob: threads spawned by a job's threads
// belong to the job — their output lands in the job's capture, and the
// job completes only when they do.
func TestJobChildThreadsInheritJob(t *testing.T) {
	p := newProg()
	threadCls := p.Lookup("java/lang/Thread")
	system := p.Lookup("java/lang/System")

	w := p.NewClass("PrintWorker", threadCls)
	run := w.NewMethod("run", 0, classfile.Void)
	{
		a := run.Asm()
		a.Str("from child")
		a.InvokeStatic(system.MethodByName("println"))
		a.RetVoid()
		a.MustBuild()
	}
	c := p.NewClass("Spawner", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	a.New(w)
	a.InvokeVirtual(threadCls.MethodByName("start"))
	a.ConstI(1)
	a.Ret()
	a.MustBuild()

	vm, err := New(testConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	j, err := vm.SubmitJob(JobSpec{Name: "spawner", Class: "Spawner", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitJob(j); err != nil {
		t.Fatal(err)
	}
	// main never joins the child, so completion implies the job waited
	// for the whole thread tree.
	if got := j.Output(); got != "from child\n" {
		t.Errorf("job output = %q, want the child's line", got)
	}
	if len(j.threads) != 2 {
		t.Errorf("job has %d threads, want root + child", len(j.threads))
	}
}

// TestJobPolicyOverride: a per-job FixedPolicy places the job's threads
// without disturbing the VM-wide default.
func TestJobPolicyOverride(t *testing.T) {
	vm, err := New(testConfig(), buildTwoEntryProg())
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := vm.SubmitJob(JobSpec{Name: "pinned", Class: "EntryA", Method: "main", Policy: FixedPolicy{Kind: isa.SPE}})
	if err != nil {
		t.Fatal(err)
	}
	def, err := vm.SubmitJob(JobSpec{Name: "default", Class: "EntryB", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.DrainJobs(); err != nil {
		t.Fatal(err)
	}
	if pinned.Root().Kind != isa.SPE {
		t.Errorf("pinned job's root ran on %v, want SPE", pinned.Root().Kind)
	}
	if def.Root().Kind != isa.PPE {
		t.Errorf("default job's root ran on %v, want the service PPE", def.Root().Kind)
	}
}

// TestRunMainStillDrains: the deprecated one-shot path is Submit+drain
// under the hood and must behave as before.
func TestRunMainStillDrains(t *testing.T) {
	vm, err := New(testConfig(), buildTwoEntryProg())
	if err != nil {
		t.Fatal(err)
	}
	th, err := vm.RunMain("EntryA", "main")
	if err != nil {
		t.Fatal(err)
	}
	if int32(uint32(th.Result)) != 11 {
		t.Errorf("result = %d", int32(uint32(th.Result)))
	}
	if len(vm.Jobs()) != 1 || !vm.Jobs()[0].Done() {
		t.Error("RunMain should register and complete one job")
	}
}

// jobCycleCounts runs the same submission script twice and returns the
// per-job cycle counts of each run.
func jobCycleCounts(t *testing.T, cfg Config) []cell.Clock {
	t.Helper()
	vm, err := New(cfg, buildTwoEntryProg())
	if err != nil {
		t.Fatal(err)
	}
	ja, err := vm.SubmitJob(JobSpec{Class: "EntryA", Method: "main", Arrival: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	jb, err := vm.SubmitJob(JobSpec{Class: "EntryB", Method: "main", Arrival: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.DrainJobs(); err != nil {
		t.Fatal(err)
	}
	return []cell.Clock{ja.Cycles(), jb.Cycles()}
}

// TestFailedSubmitLeavesSessionUsable: a rejected submission (here:
// more args than the entry method has locals) must leave no ghost live
// thread behind — later jobs still drain cleanly.
func TestFailedSubmitLeavesSessionUsable(t *testing.T) {
	vm, err := New(testConfig(), buildTwoEntryProg())
	if err != nil {
		t.Fatal(err)
	}
	args := make([]uint64, 64)
	if _, err := vm.SubmitJob(JobSpec{Name: "bad", Class: "EntryA", Method: "main", Args: args, ArgRefs: make([]bool, len(args))}); err == nil {
		t.Fatal("oversized argument list accepted")
	}
	if vm.liveCount != 0 || len(vm.Jobs()) != 0 {
		t.Fatalf("failed submit left state behind: liveCount=%d jobs=%d", vm.liveCount, len(vm.Jobs()))
	}
	j, err := vm.SubmitJob(JobSpec{Class: "EntryB", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.DrainJobs(); err != nil {
		t.Fatalf("drain after a failed submit: %v", err)
	}
	if !j.Done() || int32(uint32(j.Root().Result)) != 22 {
		t.Error("job after a failed submit did not complete normally")
	}
}

// TestEqualArrivalOrdering: two jobs with the same arrival cycle are
// admitted in submission order, deterministically.
func TestEqualArrivalOrdering(t *testing.T) {
	a := jobCycleCounts(t, testConfig())
	b := jobCycleCounts(t, testConfig())
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("job %d cycles diverged across identical scripts: %d vs %d", i, a[i], b[i])
		}
	}
}
