package vm

import (
	"container/heap"

	"herajvm/internal/cell"
)

// The scheduler keeps one event calendar per core instead of scanning
// every live thread on every step. Each calendar splits its queued
// threads in two:
//
//   - ready:  threads whose ReadyAt has already passed the core's clock.
//     Their feasible start is the clock itself, so the earliest of them
//     is simply the one queued first (FIFO order, tracked by a global
//     enqueue sequence number).
//   - future: threads whose ReadyAt is still ahead of the clock, ordered
//     by (ReadyAt, sequence).
//
// As the core's clock advances, due entries migrate from future to ready
// (settle). Picking the next thread machine-wide is then an argmin over
// per-core calendar heads — O(cores + log queue) per scheduling step
// rather than O(live threads) — with fully deterministic tie-breaking:
// earliest feasible start, then lowest core index, then enqueue order.

// calEntry is one queued thread. at snapshots the thread's ReadyAt when
// it was enqueued (ReadyAt is never mutated while a thread is queued);
// seq is the global enqueue sequence number that makes ordering total.
type calEntry struct {
	t   *Thread
	at  cell.Clock
	seq uint64
}

// seqHeap orders ready entries FIFO by enqueue sequence.
type seqHeap []calEntry

func (h seqHeap) Len() int           { return len(h) }
func (h seqHeap) Less(i, j int) bool { return h[i].seq < h[j].seq }
func (h seqHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *seqHeap) Push(x any)        { *h = append(*h, x.(calEntry)) }
func (h *seqHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// timeHeap orders future entries by (ReadyAt, enqueue sequence).
type timeHeap []calEntry

func (h timeHeap) Len() int { return len(h) }
func (h timeHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timeHeap) Push(x any)   { *h = append(*h, x.(calEntry)) }
func (h *timeHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// coreCalendar is one core's pending-thread calendar.
type coreCalendar struct {
	ready  seqHeap
	future timeHeap
}

// push queues a thread, routing it by its ReadyAt relative to now.
func (c *coreCalendar) push(t *Thread, seq uint64, now cell.Clock) {
	e := calEntry{t: t, at: t.ReadyAt, seq: seq}
	if e.at <= now {
		heap.Push(&c.ready, e)
	} else {
		heap.Push(&c.future, e)
	}
}

// settle migrates future entries that have come due by now into the
// ready heap. Clocks only move forward, so entries migrate one way.
func (c *coreCalendar) settle(now cell.Clock) {
	for len(c.future) > 0 && c.future[0].at <= now {
		heap.Push(&c.ready, heap.Pop(&c.future))
	}
}

// length is the number of queued threads (the load metric placement
// uses).
func (c *coreCalendar) length() int { return len(c.ready) + len(c.future) }

// earliest returns the feasible start time of the calendar's best thread
// given the core clock: now if anything is already runnable, otherwise
// the soonest future ReadyAt. ok is false for an empty calendar.
func (c *coreCalendar) earliest(now cell.Clock) (start cell.Clock, ok bool) {
	c.settle(now)
	if len(c.ready) > 0 {
		return now, true
	}
	if len(c.future) > 0 {
		return c.future[0].at, true
	}
	return 0, false
}

// pop removes and returns the thread earliest() identified. The caller
// must have seen ok==true from earliest at the same clock.
func (c *coreCalendar) pop(now cell.Clock) *Thread {
	c.settle(now)
	if len(c.ready) > 0 {
		return heap.Pop(&c.ready).(calEntry).t
	}
	return heap.Pop(&c.future).(calEntry).t
}
