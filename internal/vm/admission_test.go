package vm

import (
	"errors"
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
)

// buildChurnProg returns a program whose entry allocates 4 KB arrays in
// a loop — enough churn to force collections in a small heap — and
// returns the loop count.
func buildChurnProg(iters int32) *classfile.Program {
	p := newProg()
	c := p.NewClass("Churn", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(0)
	a.Bind(loop)
	a.LoadI(0)
	a.ConstI(iters)
	a.IfICmpGE(done)
	a.ConstI(1024)
	a.NewArray(classfile.ElemInt)
	a.Pop()
	a.Inc(0, 1)
	a.Goto(loop)
	a.Bind(done)
	a.LoadI(0)
	a.Ret()
	a.MustBuild()
	return p
}

// TestAdmissionZeroConfigAdmitsEverything: the zero AdmissionConfig is
// the pre-admission contract — every well-formed submission is
// admitted (or delayed), never shed, deadline or not.
func TestAdmissionZeroConfigAdmitsEverything(t *testing.T) {
	vm, err := New(testConfig(), buildTwoEntryProg())
	if err != nil {
		t.Fatal(err)
	}
	ja, err := vm.SubmitJob(JobSpec{Class: "EntryA", Method: "main", Deadline: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ja.Verdict == VerdictShed {
		t.Fatal("zero-config admission shed a job")
	}
	if err := vm.DrainJobs(); err != nil {
		t.Fatal(err)
	}
	// The impossible deadline is still reported honestly.
	if ja.DeadlineMet {
		t.Error("a 1-cycle deadline was reported met")
	}
	if ja.Deadline != ja.AdmittedAt+1 {
		t.Errorf("absolute deadline = %d, want admitted+1 = %d", ja.Deadline, ja.AdmittedAt+1)
	}
}

// TestAdmissionDeadlineShed: with shedding enabled, a deadline shorter
// than one predicted scheduling round is refused at admission; the shed
// job is done immediately, waits return at once, and a roomy deadline
// on the same machine is admitted.
func TestAdmissionDeadlineShed(t *testing.T) {
	cfg := testConfig()
	cfg.Admission = AdmissionConfig{Shed: true}
	vm, err := New(cfg, buildTwoEntryProg())
	if err != nil {
		t.Fatal(err)
	}
	shed, err := vm.SubmitJob(JobSpec{Class: "EntryA", Method: "main", Deadline: 1})
	if err != nil {
		t.Fatal(err)
	}
	if shed.Verdict != VerdictShed {
		t.Fatalf("1-cycle deadline verdict = %v, want shed", shed.Verdict)
	}
	if !shed.Done() || shed.DeadlineMet || shed.Root() != nil {
		t.Error("a shed job must be done at admission, with no threads and no met deadline")
	}
	if err := vm.WaitJob(shed); err != nil {
		t.Errorf("waiting on a shed job: %v", err)
	}
	ok, err := vm.SubmitJob(JobSpec{Class: "EntryB", Method: "main", Deadline: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if ok.Verdict == VerdictShed {
		t.Fatal("roomy deadline shed on an idle machine")
	}
	if err := vm.DrainJobs(); err != nil {
		t.Fatal(err)
	}
	if !ok.DeadlineMet {
		t.Error("roomy deadline not met on an idle machine")
	}
}

// TestAdmissionServiceEstimateShed: once a completion has taught the
// VM its observed service time, a deadline far below that estimate is
// shed while one far above it is admitted — the probe's prediction
// follows measured history, not hope.
func TestAdmissionServiceEstimateShed(t *testing.T) {
	cfg := testConfig()
	cfg.Admission = AdmissionConfig{Shed: true}
	vm, err := New(cfg, buildTwoEntryProg())
	if err != nil {
		t.Fatal(err)
	}
	first, err := vm.SubmitJob(JobSpec{Class: "EntryA", Method: "main", Deadline: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitJob(first); err != nil {
		t.Fatal(err)
	}
	service := uint64(first.Cycles())
	if vm.jobServiceEWMA != service {
		t.Fatalf("service EWMA = %d after one completion of %d cycles", vm.jobServiceEWMA, service)
	}
	tight, err := vm.SubmitJob(JobSpec{Class: "EntryB", Method: "main", Deadline: cell.Clock(service / 2)})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Verdict != VerdictShed {
		t.Errorf("deadline at half the observed service time admitted (verdict %v)", tight.Verdict)
	}
	roomy, err := vm.SubmitJob(JobSpec{Class: "EntryB", Method: "main", Deadline: cell.Clock(service * 10)})
	if err != nil {
		t.Fatal(err)
	}
	if roomy.Verdict == VerdictShed {
		t.Errorf("deadline at 10x the observed service time shed")
	}
	if err := vm.DrainJobs(); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionMaxPendingBackstop: the queue-depth backstop sheds the
// submission that would exceed MaxPending in-flight jobs, regardless
// of deadline, and readmits once the queue drains.
func TestAdmissionMaxPendingBackstop(t *testing.T) {
	cfg := testConfig()
	cfg.Admission = AdmissionConfig{MaxPending: 1, Shed: true}
	vm, err := New(cfg, buildTwoEntryProg())
	if err != nil {
		t.Fatal(err)
	}
	ja, err := vm.SubmitJob(JobSpec{Class: "EntryA", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if ja.Verdict == VerdictShed {
		t.Fatal("first job shed by a MaxPending=1 backstop")
	}
	jb, err := vm.SubmitJob(JobSpec{Class: "EntryB", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if jb.Verdict != VerdictShed {
		t.Fatalf("second concurrent job verdict = %v, want shed (backstop)", jb.Verdict)
	}
	if err := vm.DrainJobs(); err != nil {
		t.Fatal(err)
	}
	jc, err := vm.SubmitJob(JobSpec{Class: "EntryB", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if jc.Verdict == VerdictShed {
		t.Error("backstop still shedding after the queue drained")
	}
	if err := vm.DrainJobs(); err != nil {
		t.Fatal(err)
	}
}

// shedInterleavedCycles submits three equal-arrival jobs where the
// middle one is shed (impossible deadline) and returns the completed
// jobs' cycle counts — the replay fingerprint of the (arrival,
// sequence) total order with a shed decision interleaved.
func shedInterleavedCycles(t *testing.T) []cell.Clock {
	t.Helper()
	cfg := testConfig()
	cfg.Admission = AdmissionConfig{Shed: true}
	vm, err := New(cfg, buildTwoEntryProg())
	if err != nil {
		t.Fatal(err)
	}
	const arrival = 10_000
	ja, err := vm.SubmitJob(JobSpec{Class: "EntryA", Method: "main", Arrival: arrival})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := vm.SubmitJob(JobSpec{Class: "EntryB", Method: "main", Arrival: arrival, Deadline: 1})
	if err != nil {
		t.Fatal(err)
	}
	jc, err := vm.SubmitJob(JobSpec{Class: "EntryB", Method: "main", Arrival: arrival})
	if err != nil {
		t.Fatal(err)
	}
	if mid.Verdict != VerdictShed {
		t.Fatal("middle job was not shed")
	}
	if err := vm.DrainJobs(); err != nil {
		t.Fatal(err)
	}
	// The shed job holds its slot in the admission order.
	jobs := vm.Jobs()
	if len(jobs) != 3 || jobs[0] != ja || jobs[1] != mid || jobs[2] != jc {
		t.Fatal("admission order does not include the shed job in sequence position")
	}
	return []cell.Clock{ja.Cycles(), jc.Cycles()}
}

// TestShedHoldsAdmissionOrder: equal-arrival jobs interleaved with a
// shed decision keep the (arrival, sequence) total order — replaying
// the script reproduces the survivors' cycle counts exactly.
func TestShedHoldsAdmissionOrder(t *testing.T) {
	a := shedInterleavedCycles(t)
	b := shedInterleavedCycles(t)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("surviving job %d cycles diverged across replays: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestGCBillingSumsToMachineTime: per-job GC cycles plus the
// unattributed bucket must equal the machine-wide collector total,
// and an allocation-heavy job must actually be billed.
func TestGCBillingSumsToMachineTime(t *testing.T) {
	cfg := testConfig()
	cfg.HeapBytes = 2 << 20 // force collections: ~16 MB churn in a 2 MB heap
	vm, err := New(cfg, buildChurnProg(4000))
	if err != nil {
		t.Fatal(err)
	}
	j, err := vm.SubmitJob(JobSpec{Class: "Churn", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.DrainJobs(); err != nil {
		t.Fatal(err)
	}
	if vm.GCCount == 0 {
		t.Fatal("churn program triggered no collections")
	}
	if j.Stats.GCPauses == 0 || j.Stats.GCCycles == 0 {
		t.Error("the allocating job was billed no GC time")
	}
	var billed uint64
	for _, job := range vm.Jobs() {
		billed += job.Stats.GCCycles
	}
	if billed+vm.GCUnattributedCycles != vm.GCCycles {
		t.Errorf("GC billing does not sum: jobs %d + unattributed %d != machine %d",
			billed, vm.GCUnattributedCycles, vm.GCCycles)
	}
}

// TestErrDeadlockTyped: a deadlocked machine surfaces through the
// typed sentinel, so callers can errors.Is it apart from per-job
// traps.
func TestErrDeadlockTyped(t *testing.T) {
	p := newProg()
	obj := p.Lookup("java/lang/Object")
	main := p.NewClass("Main", nil)
	m := main.NewMethod("main", classfile.FlagStatic, classfile.Void)
	a := m.Asm()
	a.New(p.Object)
	a.StoreRef(0)
	a.LoadRef(0)
	a.MonitorEnter()
	a.LoadRef(0)
	a.InvokeVirtual(obj.MethodByName("wait")) // nobody will notify
	a.RetVoid()
	a.MustBuild()
	vm, err := New(testConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	j, err := vm.SubmitJob(JobSpec{Class: "Main", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.WaitJob(j); !errors.Is(err, ErrDeadlock) {
		t.Errorf("deadlocked machine returned %v, want errors.Is ErrDeadlock", err)
	}
}
