package vm

import (
	"strings"
	"testing"

	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// buildWorkerProgram creates: class Counter { static int total;
// static synchronized add(int) }, class Worker extends Thread with an
// overridden run() that adds its ID 100 times, and a main that spawns n
// workers and joins them.
func buildWorkerProgram(n int, annotateRun string) *classfile.Program {
	p := classfile.NewProgram()
	Stdlib(p)
	threadCls := p.Lookup("java/lang/Thread")

	counter := p.NewClass("Counter", nil)
	total := counter.NewStaticField("total", classfile.Int)
	add := counter.NewMethod("add", classfile.FlagStatic|classfile.FlagSynchronized,
		classfile.Void, classfile.Int)
	{
		a := add.Asm()
		a.GetStatic(total)
		a.LoadI(0)
		a.AddI()
		a.PutStatic(total)
		a.RetVoid()
		a.MustBuild()
	}

	worker := p.NewClass("Worker", threadCls)
	id := worker.NewField("id", classfile.Int)
	run := worker.NewMethod("run", 0, classfile.Void)
	if annotateRun != "" {
		run.Annotate(annotateRun)
	}
	{
		a := run.Asm()
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(1)
		a.Bind(loop)
		a.LoadI(1)
		a.ConstI(100)
		a.IfICmpGE(done)
		a.LoadRef(0)
		a.GetField(id)
		a.InvokeStatic(add)
		a.Inc(1, 1)
		a.Goto(loop)
		a.Bind(done)
		a.RetVoid()
		a.MustBuild()
	}

	main := p.NewClass("Main", nil)
	m := main.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	// Worker[] ws = new Worker[n]; start all; join all; return total.
	a.ConstI(int32(n))
	a.ANewArray(worker)
	a.StoreRef(0)
	loop1, done1 := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop1)
	a.LoadI(1)
	a.ConstI(int32(n))
	a.IfICmpGE(done1)
	a.New(worker)
	a.StoreRef(2)
	a.LoadRef(2)
	a.LoadI(1)
	a.ConstI(1)
	a.AddI()
	a.PutField(id)
	a.LoadRef(0)
	a.LoadI(1)
	a.LoadRef(2)
	a.AStore(classfile.ElemRef)
	a.LoadRef(2)
	a.InvokeVirtual(threadCls.MethodByName("start"))
	a.Inc(1, 1)
	a.Goto(loop1)
	a.Bind(done1)

	loop2, done2 := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop2)
	a.LoadI(1)
	a.ConstI(int32(n))
	a.IfICmpGE(done2)
	a.LoadRef(0)
	a.LoadI(1)
	a.ALoad(classfile.ElemRef)
	a.InvokeVirtual(threadCls.MethodByName("join"))
	a.Inc(1, 1)
	a.Goto(loop2)
	a.Bind(done2)
	a.GetStatic(total)
	a.Ret()
	a.MustBuild()
	return p
}

func TestThreadsStartJoinSynchronized(t *testing.T) {
	// 4 workers adding ids 1..4, 100 times each: total = 100*(1+2+3+4).
	p := buildWorkerProgram(4, "")
	_, th := runMain(t, testConfig(), p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 1000 {
		t.Errorf("total = %d, want 1000", got)
	}
}

func TestThreadsOnSPEsViaAnnotation(t *testing.T) {
	// Workers annotated RunOnSPE: the synchronized add() still yields the
	// exact total because monitor enter purges and exit flushes the SPE
	// software caches (the paper's JMM-conformance argument, §3.2.1).
	p := buildWorkerProgram(6, classfile.AnnRunOnSPE)
	vm, th := runMain(t, testConfig(), p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 2100 {
		t.Errorf("total = %d, want 2100", got)
	}
	var speInstrs uint64
	for _, s := range vm.Machine.CoresOf(isa.SPE) {
		speInstrs += s.Stats.Instrs
	}
	if speInstrs == 0 {
		t.Error("annotated workers never ran on SPEs")
	}
	var purges uint64
	for _, s := range vm.Machine.CoresOf(isa.SPE) {
		purges += s.Stats.DataPurges
	}
	if purges == 0 {
		t.Error("synchronized blocks on SPEs must purge the data cache")
	}
}

func TestWorkersSpreadAcrossSPEs(t *testing.T) {
	p := buildWorkerProgram(6, classfile.AnnRunOnSPE)
	vm, _ := runMain(t, testConfig(), p, "Main", "main")
	active := 0
	for _, s := range vm.Machine.CoresOf(isa.SPE) {
		if s.Stats.Instrs > 0 {
			active++
		}
	}
	if active < 4 {
		t.Errorf("only %d SPEs were used for 6 workers", active)
	}
}

func TestMigrationViaAnnotatedMethod(t *testing.T) {
	p := classfile.NewProgram()
	Stdlib(p)
	c := p.NewClass("Mig", nil)
	hot := c.NewMethod("hot", classfile.FlagStatic, classfile.Int, classfile.Int).
		Annotate(classfile.AnnRunOnSPE)
	{
		a := hot.Asm()
		a.LoadI(0)
		a.ConstI(2)
		a.MulI()
		a.Ret()
		a.MustBuild()
	}
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	a.ConstI(21)
	a.InvokeStatic(hot) // migrates PPE -> SPE and back
	a.Ret()
	a.MustBuild()

	vm, th := runMain(t, testConfig(), p, "Mig", "main")
	if got := int32(uint32(th.Result)); got != 42 {
		t.Errorf("result across migration: %d", got)
	}
	main := vm.threads[0]
	if main.Migrations < 2 {
		t.Errorf("expected a round trip (2 migrations), got %d", main.Migrations)
	}
	if vm.Machine.CoresOf(isa.PPE)[0].Stats.MigrationsOut == 0 {
		t.Error("PPE should have migrated the thread out")
	}
	var speIn uint64
	for _, s := range vm.Machine.CoresOf(isa.SPE) {
		speIn += s.Stats.MigrationsIn
	}
	if speIn == 0 {
		t.Error("no SPE recorded an inbound migration")
	}
}

func TestNestedMigrationRoundTrips(t *testing.T) {
	p := classfile.NewProgram()
	Stdlib(p)
	c := p.NewClass("Mig2", nil)
	speSide := c.NewMethod("speSide", classfile.FlagStatic, classfile.Int, classfile.Int).
		Annotate(classfile.AnnRunOnSPE)
	ppeSide := c.NewMethod("ppeSide", classfile.FlagStatic, classfile.Int, classfile.Int).
		Annotate(classfile.AnnRunOnPPE)
	{
		a := ppeSide.Asm()
		a.LoadI(0)
		a.ConstI(1)
		a.AddI()
		a.Ret()
		a.MustBuild()
	}
	{
		a := speSide.Asm()
		a.LoadI(0)
		a.InvokeStatic(ppeSide) // SPE -> PPE -> back
		a.ConstI(10)
		a.MulI()
		a.Ret()
		a.MustBuild()
	}
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	a.ConstI(3)
	a.InvokeStatic(speSide)
	a.Ret()
	a.MustBuild()

	vm, th := runMain(t, testConfig(), p, "Mig2", "main")
	if got := int32(uint32(th.Result)); got != 40 {
		t.Errorf("nested migration result: %d", got)
	}
	if vm.threads[0].Migrations < 4 {
		t.Errorf("expected 4 migrations, got %d", vm.threads[0].Migrations)
	}
}

func TestJNINativeMigratesToPPE(t *testing.T) {
	p := classfile.NewProgram()
	Stdlib(p)
	c := p.NewClass("Jni", nil)
	osCall := c.NewMethod("osCall", classfile.FlagStatic|classfile.FlagNative,
		classfile.Int, classfile.Int)
	work := c.NewMethod("work", classfile.FlagStatic, classfile.Int, classfile.Int).
		Annotate(classfile.AnnRunOnSPE)
	{
		a := work.Asm()
		a.LoadI(0)
		a.InvokeStatic(osCall)
		a.Ret()
		a.MustBuild()
	}
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	a.ConstI(5)
	a.InvokeStatic(work)
	a.Ret()
	a.MustBuild()

	vm, err := New(testConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	var ranOn isa.CoreKind = isa.SPE
	vm.RegisterNative("Jni.osCall", &Native{Kind: NativeJNI, Cycles: 500, Class: isa.ClassInt,
		Fn: func(ctx *NativeCtx) error {
			ranOn = ctx.Core.Kind
			ctx.ReturnI(int32(uint32(ctx.Args[0])) * 7)
			return nil
		}})
	th, err := vm.RunMain("Jni", "main")
	if err != nil {
		t.Fatal(err)
	}
	if got := int32(uint32(th.Result)); got != 35 {
		t.Errorf("JNI result: %d", got)
	}
	if ranOn != isa.PPE {
		t.Error("JNI native must execute on the PPE")
	}
}

func TestVolatileVisibilityAcrossCores(t *testing.T) {
	// A flag-passing test: an SPE producer sets a volatile flag after
	// writing data; a PPE consumer spins on the flag then reads the data.
	// Volatile write flushes the producer's cache, so the consumer must
	// observe the data (JMM conformance of §3.2.1).
	p := classfile.NewProgram()
	Stdlib(p)
	threadCls := p.Lookup("java/lang/Thread")

	box := p.NewClass("Box", nil)
	flag := box.NewVolatileStaticField("flag", classfile.Int)
	data := box.NewStaticField("data", classfile.Int)

	prod := p.NewClass("Producer", threadCls)
	run := prod.NewMethod("run", 0, classfile.Void).Annotate(classfile.AnnRunOnSPE)
	{
		a := run.Asm()
		a.ConstI(12345)
		a.PutStatic(data)
		a.ConstI(1)
		a.PutStatic(flag) // volatile: flush
		a.RetVoid()
		a.MustBuild()
	}

	main := p.NewClass("Main", nil)
	m := main.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	a.New(prod)
	a.InvokeVirtual(threadCls.MethodByName("start"))
	spin, ready := a.NewLabel(), a.NewLabel()
	a.Bind(spin)
	a.GetStatic(flag)
	a.IfNE(ready)
	a.Goto(spin)
	a.Bind(ready)
	a.GetStatic(data)
	a.Ret()
	a.MustBuild()

	_, th := runMain(t, testConfig(), p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 12345 {
		t.Errorf("consumer saw %d, want 12345", got)
	}
}

func TestWaitNotify(t *testing.T) {
	p := classfile.NewProgram()
	Stdlib(p)
	threadCls := p.Lookup("java/lang/Thread")
	obj := p.Lookup("java/lang/Object")

	shared := p.NewClass("Shared", nil)
	lockF := shared.NewStaticField("lock", classfile.Ref)
	valF := shared.NewStaticField("val", classfile.Int)

	setter := p.NewClass("Setter", threadCls)
	run := setter.NewMethod("run", 0, classfile.Void)
	{
		a := run.Asm()
		a.GetStatic(lockF)
		a.MonitorEnter()
		a.ConstI(99)
		a.PutStatic(valF)
		a.GetStatic(lockF)
		a.InvokeVirtual(obj.MethodByName("notify"))
		a.GetStatic(lockF)
		a.MonitorExit()
		a.RetVoid()
		a.MustBuild()
	}

	main := p.NewClass("Main", nil)
	m := main.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	a.New(p.Object)
	a.PutStatic(lockF)
	a.GetStatic(lockF)
	a.MonitorEnter()
	a.New(setter)
	a.InvokeVirtual(threadCls.MethodByName("start"))
	// while (val == 0) lock.wait();
	spin, ready := a.NewLabel(), a.NewLabel()
	a.Bind(spin)
	a.GetStatic(valF)
	a.IfNE(ready)
	a.GetStatic(lockF)
	a.InvokeVirtual(obj.MethodByName("wait"))
	a.Goto(spin)
	a.Bind(ready)
	a.GetStatic(lockF)
	a.MonitorExit()
	a.GetStatic(valF)
	a.Ret()
	a.MustBuild()

	_, th := runMain(t, testConfig(), p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 99 {
		t.Errorf("wait/notify result: %d", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	p := classfile.NewProgram()
	Stdlib(p)
	obj := p.Lookup("java/lang/Object")
	main := p.NewClass("Main", nil)
	m := main.NewMethod("main", classfile.FlagStatic, classfile.Void)
	a := m.Asm()
	// wait() with nobody to notify: the machine must report deadlock.
	a.New(p.Object)
	a.StoreRef(0)
	a.LoadRef(0)
	a.MonitorEnter()
	a.LoadRef(0)
	a.InvokeVirtual(obj.MethodByName("wait"))
	a.RetVoid()
	a.MustBuild()
	vm, err := New(testConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.RunMain("Main", "main"); err == nil ||
		!strings.Contains(err.Error(), "deadlock") {
		t.Errorf("want deadlock error, got %v", err)
	}
}

func TestMonitoringPolicyMigratesFPCode(t *testing.T) {
	// Unannotated FP-heavy method: after enough observed cycles the
	// monitoring policy should start placing it on SPEs (§6's proposal).
	p := classfile.NewProgram()
	Stdlib(p)
	c := p.NewClass("Hot", nil)
	fp := c.NewMethod("fp", classfile.FlagStatic, classfile.Double, classfile.Double)
	{
		a := fp.Asm()
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(1)
		a.Bind(loop)
		a.LoadI(1)
		a.ConstI(400)
		a.IfICmpGE(done)
		a.LoadD(0)
		a.ConstD(1.0000001)
		a.MulD()
		a.ConstD(1e-9)
		a.AddD()
		a.ConstD(1.0000002)
		a.DivD()
		a.StoreD(0)
		a.Inc(1, 1)
		a.Goto(loop)
		a.Bind(done)
		a.LoadD(0)
		a.Ret()
		a.MustBuild()
	}
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstD(1)
	a.StoreD(0)
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop)
	a.LoadI(1)
	a.ConstI(60)
	a.IfICmpGE(done)
	a.LoadD(0)
	a.InvokeStatic(fp)
	a.StoreD(0)
	a.Inc(1, 1)
	a.Goto(loop)
	a.Bind(done)
	a.ConstI(1)
	a.Ret()
	a.MustBuild()

	cfg := testConfig()
	cfg.Policy = DefaultMonitoringPolicy()
	vm, th := runMain(t, cfg, p, "Hot", "main")
	if int32(uint32(th.Result)) != 1 {
		t.Fatal("program failed")
	}
	if vm.threads[0].Migrations == 0 {
		t.Error("monitoring policy never migrated the FP-heavy thread")
	}
	var speFP uint64
	for _, s := range vm.Machine.CoresOf(isa.SPE) {
		speFP += s.Stats.Cycles[isa.ClassFloat]
	}
	if speFP == 0 {
		t.Error("FP work never reached an SPE")
	}
}

func TestGCWithLiveSPECachedObjects(t *testing.T) {
	// SPE workers hold references to shared arrays in their software
	// caches while the PPE main thread churns garbage hard enough to
	// force collections. The GC must flush+purge SPE caches and keep
	// every reachable object; the workers' sums must stay exact.
	p := classfile.NewProgram()
	Stdlib(p)
	threadCls := p.Lookup("java/lang/Thread")

	shared := p.NewClass("Shared", nil)
	dataF := shared.NewStaticField("data", classfile.Ref)
	sumF := shared.NewStaticField("sum", classfile.Int)
	addM := shared.NewMethod("add", classfile.FlagStatic|classfile.FlagSynchronized,
		classfile.Void, classfile.Int)
	{
		a := addM.Asm()
		a.GetStatic(sumF)
		a.LoadI(0)
		a.AddI()
		a.PutStatic(sumF)
		a.RetVoid()
		a.MustBuild()
	}

	worker := p.NewClass("W", threadCls)
	run := worker.NewMethod("run", 0, classfile.Void).Annotate(classfile.AnnRunOnSPE)
	{
		a := run.Asm()
		// sum += data[i] over 4096 elements, three passes.
		pass, passDone := a.NewLabel(), a.NewLabel()
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(1) // acc
		a.ConstI(0)
		a.StoreI(3) // pass
		a.Bind(pass)
		a.LoadI(3)
		a.ConstI(3)
		a.IfICmpGE(passDone)
		a.ConstI(0)
		a.StoreI(2)
		a.Bind(loop)
		a.LoadI(2)
		a.ConstI(4096)
		a.IfICmpGE(done)
		a.LoadI(1)
		a.GetStatic(dataF)
		a.LoadI(2)
		a.ALoad(classfile.ElemInt)
		a.AddI()
		a.StoreI(1)
		a.Inc(2, 1)
		a.Goto(loop)
		a.Bind(done)
		a.Inc(3, 1)
		a.Goto(pass)
		a.Bind(passDone)
		a.LoadI(1)
		a.InvokeStatic(addM)
		a.RetVoid()
		a.MustBuild()
	}

	main := p.NewClass("Main", nil)
	m := main.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	// data = new int[4096] filled with 1s.
	fill, fillDone := a.NewLabel(), a.NewLabel()
	a.ConstI(4096)
	a.NewArray(classfile.ElemInt)
	a.PutStatic(dataF)
	a.ConstI(0)
	a.StoreI(0)
	a.Bind(fill)
	a.LoadI(0)
	a.ConstI(4096)
	a.IfICmpGE(fillDone)
	a.GetStatic(dataF)
	a.LoadI(0)
	a.ConstI(1)
	a.AStore(classfile.ElemInt)
	a.Inc(0, 1)
	a.Goto(fill)
	a.Bind(fillDone)
	// start 2 workers
	a.New(worker)
	a.StoreRef(1)
	a.LoadRef(1)
	a.InvokeVirtual(threadCls.MethodByName("start"))
	a.New(worker)
	a.StoreRef(2)
	a.LoadRef(2)
	a.InvokeVirtual(threadCls.MethodByName("start"))
	// churn garbage to force GCs while workers run
	churn, churnDone := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(0)
	a.Bind(churn)
	a.LoadI(0)
	a.ConstI(2000)
	a.IfICmpGE(churnDone)
	a.ConstI(1024)
	a.NewArray(classfile.ElemInt)
	a.Pop()
	a.Inc(0, 1)
	a.Goto(churn)
	a.Bind(churnDone)
	a.LoadRef(1)
	a.InvokeVirtual(threadCls.MethodByName("join"))
	a.LoadRef(2)
	a.InvokeVirtual(threadCls.MethodByName("join"))
	a.GetStatic(sumF)
	a.Ret()
	a.MustBuild()

	cfg := testConfig()
	cfg.HeapBytes = 2 << 20 // force GC pressure
	vmach, th := runMain(t, cfg, p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 2*3*4096 {
		t.Errorf("sum = %d, want %d", got, 2*3*4096)
	}
	if vmach.GCCount == 0 {
		t.Error("expected GC activity during the run")
	}
}
