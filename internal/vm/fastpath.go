package vm

import (
	"fmt"
	"math"

	"herajvm/internal/cache"
	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/jit"
)

// This file is the superblock fast path: execute consults the compiled
// method's memoized superblocks (jit.Superblock) and, when the whole
// block provably fits inside the quantum and is valid for the core's
// current cache-residency class, applies its cost vector in one step
// and replays its stack effects with a closure-free mini-interpreter.
// The replay must be byte-identical to per-instruction stepping — the
// Figure-4 golden and the differential tests pin that contract — so
// every case here mirrors the corresponding case of step exactly.

// residencyOf returns a data cache's residency class: the software
// cache's O(1) occupancy class on local-store cores, ResidencyCold on
// hardware-cached cores (nil cache — their hierarchy is not
// superblock-keyed). The executor hoists the cache fetch out of its
// quantum loop and calls this per block.
func residencyOf(dc *cache.DataCache) uint8 {
	if dc != nil {
		return dc.ResidencyClass()
	}
	return cache.ResidencyCold
}

// residencyClass is residencyOf for callers holding only the core.
func (vm *VM) residencyClass(core *cell.Core) uint8 {
	return residencyOf(vm.dcaches[core.Index])
}

// fastForward applies one memoized superblock — core clock, per-class
// cycle counters, retired instructions and the per-method monitor
// counters advance by the block's precomputed vector (the exact totals
// per-instruction stepping would produce), then the block's stack and
// local effects replay and the PC lands on the block's target — and
// then keeps control for as long as it can make progress without the
// outer dispatch loop: it chains straight into the next block when one
// starts at the new PC and passes the same guards the executor applies,
// and runs the individual memory instructions *between* blocks (array
// and field traffic) through closure-free mirrors of step's cases.
// Every action in the chain charges, checks the deadline, and mutates
// state exactly as the reference path would — the fusion sheds only
// host-level dispatch overhead, never a simulated event.
func (vm *VM) fastForward(core *cell.Core, t *Thread, f *Frame, b *jit.Superblock,
	dcache *cache.DataCache, deadline uint64) {

	sb := f.CM.SB
	code := f.CM.Code
	for {
		// Cycles/ClassCycles/FirstLen cover the block's first pure
		// segment (the whole block when it absorbs no memory
		// instructions); the replay charges each absorbed memory
		// instruction and its following segment as it crosses them.
		core.FastForward(b.Cycles, &b.ClassCycles, uint64(b.FirstLen))
		if f.ctr != nil {
			for i, n := range b.ClassCycles {
				if n != 0 {
					f.ctr.Cycles[i] += n
				}
			}
		}
		entry, base := f.PC, f.SP
		if b.MicroOK {
			done, err := vm.runMicro(core, f, b, deadline)
			if err != nil {
				vm.raise(core, t, err)
				return
			}
			if !done {
				// Quantum expired at a memory boundary inside the block:
				// the replay restored exact stepped state at the boundary
				// PC, and the dispatcher takes over from there.
				return
			}
		} else {
			// The replayable prefix excludes a control terminal: a goto is
			// a data no-op (runPure skips it), and a conditional branch is
			// applied below from the values the replay leaves on the stack.
			pure := int(b.Len)
			if b.End != jit.EndFall {
				pure--
			}
			runPure(f, pure)
			// StackDelta counts the terminal branch's pops; the operand
			// values stay in their slots just above the final SP.
			f.SP = base + int(b.StackDelta)
		}
		if b.End == jit.EndFall {
			f.PC = int(b.Target)
		} else {
			vm.fastBranch(core, f, b, entry)
		}

		// Inline the memory instructions between blocks, mirroring the
		// executor's per-instruction sequence: deadline check, static
		// charge, retired-instruction count, then step-identical
		// semantics (fastMem). Traps feed the executor's own raise path.
	chain:
		for {
			in := &code[f.PC]
			switch in.Op {
			case isa.OpALoad, isa.OpAStore, isa.OpArrayLen,
				isa.OpGetField, isa.OpPutField, isa.OpGetStatic, isa.OpPutStatic:
				if core.Now >= deadline {
					return
				}
				class := in.Op.Class()
				core.Charge(class, uint64(in.Cost))
				if f.ctr != nil {
					f.ctr.Cycles[class] += uint64(in.Cost)
				}
				core.Stats.Instrs++
				if err := vm.fastMem(core, f, in); err != nil {
					vm.raise(core, t, err)
					return
				}
				f.PC++
			default:
				break chain
			}
		}
		// Chain into the next block only under the executor's own guards
		// — notably residency, which the memory traffic above may have
		// changed.
		nb := &sb[f.PC]
		if nb.Len == 0 || core.Now+nb.Cycles >= deadline ||
			nb.ResMask&(1<<residencyOf(dcache)) == 0 {
			return
		}
		b = nb
	}
}

// fastMem mirrors step's memory cases exactly — same pop order, same
// trap conditions and messages, same loadMem/storeMem/arrayLength
// calls, so the cache model, coherence actions and dynamic charges
// evolve identically — without step's per-call closure construction.
// The caller has already charged the instruction's static cost.
func (vm *VM) fastMem(core *cell.Core, f *Frame, in *isa.Instr) error {
	switch in.Op {
	case isa.OpALoad:
		iv, _ := f.pop()
		idx := int32(uint32(iv))
		av, _ := f.pop()
		arr := Ref(av)
		if arr == 0 {
			return vm.trapAt(f, "NullPointerException", "array load")
		}
		n := vm.arrayLength(core, f, arr)
		if idx < 0 || uint32(idx) >= n {
			return vm.trapAt(f, "ArrayIndexOutOfBoundsException",
				fmt.Sprintf("index %d, length %d", idx, n))
		}
		k := isa.ElemKind(in.A)
		esz := k.Size()
		raw := vm.loadMem(core, f, arr+isa.HeaderBytes, n*esz, uint32(idx)*esz, esz, 0, true)
		f.push(extendElem(k, raw), k == isa.ElemRef)
	case isa.OpAStore:
		v, _ := f.pop()
		iv, _ := f.pop()
		idx := int32(uint32(iv))
		av, _ := f.pop()
		arr := Ref(av)
		if arr == 0 {
			return vm.trapAt(f, "NullPointerException", "array store")
		}
		n := vm.arrayLength(core, f, arr)
		if idx < 0 || uint32(idx) >= n {
			return vm.trapAt(f, "ArrayIndexOutOfBoundsException",
				fmt.Sprintf("index %d, length %d", idx, n))
		}
		k := isa.ElemKind(in.A)
		esz := k.Size()
		vm.storeMem(core, f, arr+isa.HeaderBytes, n*esz, uint32(idx)*esz, esz, v, 0, true)
	case isa.OpArrayLen:
		av, _ := f.pop()
		arr := Ref(av)
		if arr == 0 {
			return vm.trapAt(f, "NullPointerException", "arraylength")
		}
		f.push(uint64(uint32(vm.arrayLength(core, f, arr))), false)
	case isa.OpGetField:
		rv, _ := f.pop()
		ref := Ref(rv)
		if ref == 0 {
			return vm.trapAt(f, "NullPointerException", "getfield")
		}
		v := vm.loadMem(core, f, ref, vm.objectSize(ref), uint32(in.A), 8, in.B, false)
		f.push(v, in.B&isa.FlagRef != 0)
	case isa.OpPutField:
		v, _ := f.pop()
		rv, _ := f.pop()
		ref := Ref(rv)
		if ref == 0 {
			return vm.trapAt(f, "NullPointerException", "putfield")
		}
		vm.storeMem(core, f, ref, vm.objectSize(ref), uint32(in.A), 8, v, in.B, false)
	case isa.OpGetStatic:
		addr := vm.staticsBase + uint32(in.A)*isa.SlotBytes
		v := vm.loadMem(core, f, addr, isa.SlotBytes, 0, 8, in.B, false)
		f.push(v, in.B&isa.FlagRef != 0)
	case isa.OpPutStatic:
		v, _ := f.pop()
		addr := vm.staticsBase + uint32(in.A)*isa.SlotBytes
		vm.storeMem(core, f, addr, isa.SlotBytes, 0, 8, v, in.B, false)
	}
	return nil
}

// fastBranch applies a block's terminal conditional branch. The
// operands sit just above the final SP (both replay paths materialise
// them there; StackDelta already counts the branch's pops), and the
// branch-model bookkeeping — predictor update at the branch's static
// site key, mispredict or static-hint taken penalty — mirrors step's
// branch closure exactly.
func (vm *VM) fastBranch(core *cell.Core, f *Frame, b *jit.Superblock, entry int) {
	sp := f.SP
	var taken bool
	switch b.End {
	case jit.EndIf:
		taken = condHolds(b.Cond, compare32(int32(uint32(f.Stack[sp])), 0))
	case jit.EndIfCmpI:
		a := int32(uint32(f.Stack[sp]))
		bb := int32(uint32(f.Stack[sp+1]))
		taken = condHolds(b.Cond, compare32(a, bb))
	case jit.EndIfCmpRef:
		eq := Ref(f.Stack[sp]) == Ref(f.Stack[sp+1])
		taken = (b.Cond == isa.CondEQ && eq) || (b.Cond == isa.CondNE && !eq)
	case jit.EndIfNull:
		r := Ref(f.Stack[sp])
		taken = (b.Cond == 0 && r == 0) || (b.Cond == 1 && r != 0)
	}
	if core.BP != nil {
		site := uint32(f.CM.M.ID)<<12 ^ uint32(entry+int(b.Len)-1)
		if !core.BP.Predict(site, taken) {
			penalty := uint64(vm.compilers[core.Kind].Costs().BranchTakenExtra)
			core.Charge(isa.ClassBranch, penalty)
			f.chargeDyn(isa.ClassBranch, penalty)
		}
	} else if taken {
		penalty := uint64(vm.compilers[core.Kind].Costs().BranchTakenExtra)
		core.Charge(isa.ClassBranch, penalty)
		f.chargeDyn(isa.ClassBranch, penalty)
	}
	if taken {
		f.PC = int(b.Target)
	} else {
		f.PC = entry + int(b.Len)
	}
}

// microVal reads a micro-op operand: a non-negative value is a stack
// slot (relative to the block's entry SP, pre-sliced by the caller), a
// negative one a local, and jit.MicroImm the op's immediate.
func microVal(stack, locals []uint64, o int32, imm uint64) uint64 {
	if o >= 0 {
		return stack[o]
	}
	if o == jit.MicroImm {
		return imm
	}
	return locals[-o-1]
}

func microStore(stack, locals []uint64, d int32, v uint64) {
	if d >= 0 {
		stack[d] = v
	} else {
		locals[-d-1] = v
	}
}

// microFlag resolves a deferred reference-flag source against the
// frame's block-entry local reference map (flag writes land only after
// every source is resolved, so LocalRefs still holds entry values).
func microFlag(f *Frame, src int32) bool {
	switch src {
	case 0:
		return false
	case 1:
		return true
	default:
		return f.LocalRefs[src-2]
	}
}

// microSync restores the exact stepped frame state at one memory
// boundary for an early exit (quantum expiry or trap): it lands the
// boundary's shadow materialisations and its reference-flag snapshot.
// withOps includes the operand materialisations — pre-instruction
// state, for a resume at the boundary itself; a resume at the *next*
// instruction excludes them so they cannot clobber the result slot.
func microSync(f *Frame, b *jit.Superblock, bd *jit.MemBound, base int, withOps bool) {
	stack := f.Stack[base:]
	locals := f.Locals
	hi := bd.MatOpLo
	if withOps {
		hi = bd.MatHi
	}
	for i := bd.MatLo; i < hi; i++ {
		m := &b.Mats[i]
		if m.Code == jit.MMovImm {
			microStore(stack, locals, m.D, m.Imm)
		} else {
			microStore(stack, locals, m.D, microVal(stack, locals, m.A, m.Imm))
		}
	}
	var lbuf, sbuf [8]bool
	for i := bd.LfLo; i < bd.LfHi; i++ {
		lbuf[i-bd.LfLo] = microFlag(f, b.BLFlags[i].Src)
	}
	for i := bd.SfLo; i < bd.SfHi; i++ {
		sbuf[i-bd.SfLo] = microFlag(f, b.BSFlags[i].Src)
	}
	for i := bd.LfLo; i < bd.LfHi; i++ {
		f.LocalRefs[b.BLFlags[i].Idx] = lbuf[i-bd.LfLo]
	}
	for i := bd.SfLo; i < bd.SfHi; i++ {
		f.StackRefs[base+int(b.BSFlags[i].Idx)] = sbuf[i-bd.SfLo]
	}
}

// microSeg charges the pure segment that follows memory boundary bi,
// or aborts the replay at the segment's first instruction when the
// whole segment cannot complete inside the quantum — the dispatcher
// then resumes per-instruction from exact state, so deadline semantics
// are unchanged (the entry guard applies the same conservatism to a
// block's first segment). dst/dstRef re-land a load result's
// reference flag after the snapshot, whose entry captured the operand
// that previously occupied the slot.
func (vm *VM) microSeg(core *cell.Core, f *Frame, b *jit.Superblock, bd *jit.MemBound,
	base, bi int, deadline uint64, dst int32, dstRef, hasDst bool) bool {

	sg := &b.Segs[bi]
	if core.Now+sg.Cycles >= deadline {
		microSync(f, b, bd, base, false)
		if hasDst {
			f.StackRefs[base+int(dst)] = dstRef
		}
		f.PC += int(bd.RelIdx) + 1
		f.SP = base + int(bd.SPAfter)
		return false
	}
	core.FastForwardTail(sg.Cycles, &sg.ClassCycles, uint64(sg.Len))
	if f.ctr != nil {
		for i, n := range sg.ClassCycles {
			if n != 0 {
				f.ctr.Cycles[i] += n
			}
		}
	}
	return true
}

// runMicro replays a block's slot-addressed micro-ops. Every
// arithmetic case is semantically identical to the matching step /
// runPure case (shift masks, divide MinInt/-1, float NaN ordering);
// only the operand plumbing differs. The deferred flag writes then
// restore the observable reference maps — intermediate slots above the
// final SP may hold garbage, exactly as they may after stepping.
//
// Memory micro-ops mirror fastMem (itself a mirror of step): deadline
// pre-check, static charge, retired-instruction count, then the
// step-identical cache/heap semantics reading operands symbolically.
// It returns done=false when the replay handed back to the dispatcher
// mid-block (quantum expiry at a boundary — frame state is exact at
// the recorded PC), and a non-nil error for a trap, which the caller
// raises exactly as the executor would.
func (vm *VM) runMicro(core *cell.Core, f *Frame, b *jit.Superblock, deadline uint64) (bool, error) {
	base := f.SP
	if need := base + int(b.MaxDepth); need > len(f.Stack) {
		// Mirrors Frame.push's defensive growth; the verifier's MaxStack
		// normally pre-sizes the stack past any block's depth.
		for len(f.Stack) < need {
			f.Stack = append(f.Stack, 0)
			f.StackRefs = append(f.StackRefs, false)
		}
	}
	stack := f.Stack[base:]
	locals := f.Locals
	bi := 0
	for i := range b.Micro {
		m := &b.Micro[i]
		switch m.Code {
		case jit.MMov:
			microStore(stack, locals, m.D, microVal(stack, locals, m.A, m.Imm))
		case jit.MMovImm:
			microStore(stack, locals, m.D, m.Imm)

		case jit.MAddI:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(a+bb)))
		case jit.MSubI:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(a-bb)))
		case jit.MMulI:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(a*bb)))
		case jit.MDivI:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			if a == math.MinInt32 && bb == -1 {
				var minI int32 = math.MinInt32
				microStore(stack, locals, m.D, uint64(uint32(minI)))
			} else {
				microStore(stack, locals, m.D, uint64(uint32(a/bb)))
			}
		case jit.MRemI:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			if a == math.MinInt32 && bb == -1 {
				microStore(stack, locals, m.D, 0)
			} else {
				microStore(stack, locals, m.D, uint64(uint32(a%bb)))
			}
		case jit.MNegI:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(-a)))
		case jit.MAndI:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(a&bb)))
		case jit.MOrI:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(a|bb)))
		case jit.MXorI:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(a^bb)))
		case jit.MShlI:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(a<<(uint32(bb)&31))))
		case jit.MShrI:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(a>>(uint32(bb)&31))))
		case jit.MUShrI:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(int32(uint32(a)>>(uint32(bb)&31)))))

		case jit.MAddL:
			a := int64(microVal(stack, locals, m.A, m.Imm))
			bb := int64(microVal(stack, locals, m.B, m.Imm))
			microStore(stack, locals, m.D, uint64(a+bb))
		case jit.MSubL:
			a := int64(microVal(stack, locals, m.A, m.Imm))
			bb := int64(microVal(stack, locals, m.B, m.Imm))
			microStore(stack, locals, m.D, uint64(a-bb))
		case jit.MMulL:
			a := int64(microVal(stack, locals, m.A, m.Imm))
			bb := int64(microVal(stack, locals, m.B, m.Imm))
			microStore(stack, locals, m.D, uint64(a*bb))
		case jit.MDivL:
			a := int64(microVal(stack, locals, m.A, m.Imm))
			bb := int64(microVal(stack, locals, m.B, m.Imm))
			if a == math.MinInt64 && bb == -1 {
				var minL int64 = math.MinInt64
				microStore(stack, locals, m.D, uint64(minL))
			} else {
				microStore(stack, locals, m.D, uint64(a/bb))
			}
		case jit.MRemL:
			a := int64(microVal(stack, locals, m.A, m.Imm))
			bb := int64(microVal(stack, locals, m.B, m.Imm))
			if a == math.MinInt64 && bb == -1 {
				microStore(stack, locals, m.D, 0)
			} else {
				microStore(stack, locals, m.D, uint64(a%bb))
			}
		case jit.MNegL:
			a := int64(microVal(stack, locals, m.A, m.Imm))
			microStore(stack, locals, m.D, uint64(-a))
		case jit.MAndL:
			a := microVal(stack, locals, m.A, m.Imm)
			bb := microVal(stack, locals, m.B, m.Imm)
			microStore(stack, locals, m.D, a&bb)
		case jit.MOrL:
			a := microVal(stack, locals, m.A, m.Imm)
			bb := microVal(stack, locals, m.B, m.Imm)
			microStore(stack, locals, m.D, a|bb)
		case jit.MXorL:
			a := microVal(stack, locals, m.A, m.Imm)
			bb := microVal(stack, locals, m.B, m.Imm)
			microStore(stack, locals, m.D, a^bb)
		case jit.MShlL:
			a := int64(microVal(stack, locals, m.A, m.Imm))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(a<<(uint32(bb)&63)))
		case jit.MShrL:
			a := int64(microVal(stack, locals, m.A, m.Imm))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(a>>(uint32(bb)&63)))
		case jit.MUShrL:
			a := int64(microVal(stack, locals, m.A, m.Imm))
			bb := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(int64(uint64(a)>>(uint32(bb)&63))))
		case jit.MCmpL:
			a := int64(microVal(stack, locals, m.A, m.Imm))
			bb := int64(microVal(stack, locals, m.B, m.Imm))
			microStore(stack, locals, m.D, uint64(uint32(cmpOrder(a < bb, a == bb))))

		case jit.MAddF:
			a := math.Float32frombits(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := math.Float32frombits(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(math.Float32bits(a+bb)))
		case jit.MSubF:
			a := math.Float32frombits(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := math.Float32frombits(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(math.Float32bits(a-bb)))
		case jit.MMulF:
			a := math.Float32frombits(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := math.Float32frombits(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(math.Float32bits(a*bb)))
		case jit.MDivF:
			a := math.Float32frombits(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := math.Float32frombits(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D, uint64(math.Float32bits(a/bb)))
		case jit.MNegF:
			a := math.Float32frombits(uint32(microVal(stack, locals, m.A, m.Imm)))
			microStore(stack, locals, m.D, uint64(math.Float32bits(-a)))
		case jit.MRemF:
			a := math.Float32frombits(uint32(microVal(stack, locals, m.A, m.Imm)))
			bb := math.Float32frombits(uint32(microVal(stack, locals, m.B, m.Imm)))
			microStore(stack, locals, m.D,
				uint64(math.Float32bits(float32(math.Mod(float64(a), float64(bb))))))
		case jit.MCmpF:
			a := math.Float32frombits(uint32(microVal(stack, locals, m.A, 0)))
			bb := math.Float32frombits(uint32(microVal(stack, locals, m.B, 0)))
			if a != a || bb != bb { // NaN
				microStore(stack, locals, m.D, uint64(uint32(int32(uint32(m.Imm)))))
			} else {
				microStore(stack, locals, m.D, uint64(uint32(cmpOrder(a < bb, a == bb))))
			}

		case jit.MAddD:
			a := math.Float64frombits(microVal(stack, locals, m.A, m.Imm))
			bb := math.Float64frombits(microVal(stack, locals, m.B, m.Imm))
			microStore(stack, locals, m.D, math.Float64bits(a+bb))
		case jit.MSubD:
			a := math.Float64frombits(microVal(stack, locals, m.A, m.Imm))
			bb := math.Float64frombits(microVal(stack, locals, m.B, m.Imm))
			microStore(stack, locals, m.D, math.Float64bits(a-bb))
		case jit.MMulD:
			a := math.Float64frombits(microVal(stack, locals, m.A, m.Imm))
			bb := math.Float64frombits(microVal(stack, locals, m.B, m.Imm))
			microStore(stack, locals, m.D, math.Float64bits(a*bb))
		case jit.MDivD:
			a := math.Float64frombits(microVal(stack, locals, m.A, m.Imm))
			bb := math.Float64frombits(microVal(stack, locals, m.B, m.Imm))
			microStore(stack, locals, m.D, math.Float64bits(a/bb))
		case jit.MNegD:
			a := math.Float64frombits(microVal(stack, locals, m.A, m.Imm))
			microStore(stack, locals, m.D, math.Float64bits(-a))
		case jit.MRemD:
			a := math.Float64frombits(microVal(stack, locals, m.A, m.Imm))
			bb := math.Float64frombits(microVal(stack, locals, m.B, m.Imm))
			microStore(stack, locals, m.D, math.Float64bits(math.Mod(a, bb)))
		case jit.MCmpD:
			a := math.Float64frombits(microVal(stack, locals, m.A, 0))
			bb := math.Float64frombits(microVal(stack, locals, m.B, 0))
			if a != a || bb != bb {
				microStore(stack, locals, m.D, uint64(uint32(int32(uint32(m.Imm)))))
			} else {
				microStore(stack, locals, m.D, uint64(uint32(cmpOrder(a < bb, a == bb))))
			}

		case jit.MI2L:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			microStore(stack, locals, m.D, uint64(int64(a)))
		case jit.MI2F:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			microStore(stack, locals, m.D, uint64(math.Float32bits(float32(a))))
		case jit.MI2D:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			microStore(stack, locals, m.D, math.Float64bits(float64(a)))
		case jit.ML2I:
			a := int64(microVal(stack, locals, m.A, m.Imm))
			microStore(stack, locals, m.D, uint64(uint32(int32(a))))
		case jit.ML2F:
			a := int64(microVal(stack, locals, m.A, m.Imm))
			microStore(stack, locals, m.D, uint64(math.Float32bits(float32(a))))
		case jit.ML2D:
			a := int64(microVal(stack, locals, m.A, m.Imm))
			microStore(stack, locals, m.D, math.Float64bits(float64(a)))
		case jit.MF2I:
			a := math.Float32frombits(uint32(microVal(stack, locals, m.A, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(f2i(float64(a)))))
		case jit.MF2L:
			a := math.Float32frombits(uint32(microVal(stack, locals, m.A, m.Imm)))
			microStore(stack, locals, m.D, uint64(d2l(float64(a))))
		case jit.MF2D:
			a := math.Float32frombits(uint32(microVal(stack, locals, m.A, m.Imm)))
			microStore(stack, locals, m.D, math.Float64bits(float64(a)))
		case jit.MD2I:
			a := math.Float64frombits(microVal(stack, locals, m.A, m.Imm))
			microStore(stack, locals, m.D, uint64(uint32(f2i(a))))
		case jit.MD2L:
			a := math.Float64frombits(microVal(stack, locals, m.A, m.Imm))
			microStore(stack, locals, m.D, uint64(d2l(a)))
		case jit.MD2F:
			a := math.Float64frombits(microVal(stack, locals, m.A, m.Imm))
			microStore(stack, locals, m.D, uint64(math.Float32bits(float32(a))))
		case jit.MI2B:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(int32(int8(a)))))
		case jit.MI2C:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(int32(uint16(a)))))
		case jit.MI2S:
			a := int32(uint32(microVal(stack, locals, m.A, m.Imm)))
			microStore(stack, locals, m.D, uint64(uint32(int32(int16(a)))))

		case jit.MALoad:
			bd := &b.Bounds[bi]
			if core.Now >= deadline {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPAtOp)
				return false, nil
			}
			core.Charge(bd.Class, uint64(bd.Cost))
			if f.ctr != nil {
				f.ctr.Cycles[bd.Class] += uint64(bd.Cost)
			}
			core.Stats.Instrs++
			arr := Ref(microVal(stack, locals, m.A, m.Imm))
			idx := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			if arr == 0 {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPTrap)
				return false, vm.trapAt(f, "NullPointerException", "array load")
			}
			n := vm.arrayLength(core, f, arr)
			if idx < 0 || uint32(idx) >= n {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPTrap)
				return false, vm.trapAt(f, "ArrayIndexOutOfBoundsException",
					fmt.Sprintf("index %d, length %d", idx, n))
			}
			k := isa.ElemKind(bd.Kind)
			esz := k.Size()
			raw := vm.loadMem(core, f, arr+isa.HeaderBytes, n*esz, uint32(idx)*esz, esz, 0, true)
			stack[m.D] = extendElem(k, raw)
			f.StackRefs[base+int(m.D)] = k == isa.ElemRef
			if !vm.microSeg(core, f, b, bd, base, bi, deadline, m.D, k == isa.ElemRef, true) {
				return false, nil
			}
			bi++
		case jit.MAStore:
			bd := &b.Bounds[bi]
			if core.Now >= deadline {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPAtOp)
				return false, nil
			}
			core.Charge(bd.Class, uint64(bd.Cost))
			if f.ctr != nil {
				f.ctr.Cycles[bd.Class] += uint64(bd.Cost)
			}
			core.Stats.Instrs++
			v := microVal(stack, locals, m.D, m.Imm)
			arr := Ref(microVal(stack, locals, m.A, m.Imm))
			idx := int32(uint32(microVal(stack, locals, m.B, m.Imm)))
			if arr == 0 {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPTrap)
				return false, vm.trapAt(f, "NullPointerException", "array store")
			}
			n := vm.arrayLength(core, f, arr)
			if idx < 0 || uint32(idx) >= n {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPTrap)
				return false, vm.trapAt(f, "ArrayIndexOutOfBoundsException",
					fmt.Sprintf("index %d, length %d", idx, n))
			}
			k := isa.ElemKind(bd.Kind)
			esz := k.Size()
			vm.storeMem(core, f, arr+isa.HeaderBytes, n*esz, uint32(idx)*esz, esz, v, 0, true)
			if !vm.microSeg(core, f, b, bd, base, bi, deadline, 0, false, false) {
				return false, nil
			}
			bi++
		case jit.MArrayLen:
			bd := &b.Bounds[bi]
			if core.Now >= deadline {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPAtOp)
				return false, nil
			}
			core.Charge(bd.Class, uint64(bd.Cost))
			if f.ctr != nil {
				f.ctr.Cycles[bd.Class] += uint64(bd.Cost)
			}
			core.Stats.Instrs++
			arr := Ref(microVal(stack, locals, m.A, m.Imm))
			if arr == 0 {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPTrap)
				return false, vm.trapAt(f, "NullPointerException", "arraylength")
			}
			stack[m.D] = uint64(uint32(vm.arrayLength(core, f, arr)))
			f.StackRefs[base+int(m.D)] = false
			if !vm.microSeg(core, f, b, bd, base, bi, deadline, m.D, false, true) {
				return false, nil
			}
			bi++
		case jit.MGetField:
			bd := &b.Bounds[bi]
			if core.Now >= deadline {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPAtOp)
				return false, nil
			}
			core.Charge(bd.Class, uint64(bd.Cost))
			if f.ctr != nil {
				f.ctr.Cycles[bd.Class] += uint64(bd.Cost)
			}
			core.Stats.Instrs++
			ref := Ref(microVal(stack, locals, m.A, m.Imm))
			if ref == 0 {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPTrap)
				return false, vm.trapAt(f, "NullPointerException", "getfield")
			}
			v := vm.loadMem(core, f, ref, vm.objectSize(ref), uint32(bd.Kind), 8, bd.Flags, false)
			isRef := bd.Flags&isa.FlagRef != 0
			stack[m.D] = v
			f.StackRefs[base+int(m.D)] = isRef
			if !vm.microSeg(core, f, b, bd, base, bi, deadline, m.D, isRef, true) {
				return false, nil
			}
			bi++
		case jit.MPutField:
			bd := &b.Bounds[bi]
			if core.Now >= deadline {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPAtOp)
				return false, nil
			}
			core.Charge(bd.Class, uint64(bd.Cost))
			if f.ctr != nil {
				f.ctr.Cycles[bd.Class] += uint64(bd.Cost)
			}
			core.Stats.Instrs++
			v := microVal(stack, locals, m.B, m.Imm)
			ref := Ref(microVal(stack, locals, m.A, m.Imm))
			if ref == 0 {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPTrap)
				return false, vm.trapAt(f, "NullPointerException", "putfield")
			}
			vm.storeMem(core, f, ref, vm.objectSize(ref), uint32(bd.Kind), 8, v, bd.Flags, false)
			if !vm.microSeg(core, f, b, bd, base, bi, deadline, 0, false, false) {
				return false, nil
			}
			bi++
		case jit.MGetStatic:
			bd := &b.Bounds[bi]
			if core.Now >= deadline {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPAtOp)
				return false, nil
			}
			core.Charge(bd.Class, uint64(bd.Cost))
			if f.ctr != nil {
				f.ctr.Cycles[bd.Class] += uint64(bd.Cost)
			}
			core.Stats.Instrs++
			addr := vm.staticsBase + uint32(bd.Kind)*isa.SlotBytes
			v := vm.loadMem(core, f, addr, isa.SlotBytes, 0, 8, bd.Flags, false)
			isRef := bd.Flags&isa.FlagRef != 0
			stack[m.D] = v
			f.StackRefs[base+int(m.D)] = isRef
			if !vm.microSeg(core, f, b, bd, base, bi, deadline, m.D, isRef, true) {
				return false, nil
			}
			bi++
		case jit.MPutStatic:
			bd := &b.Bounds[bi]
			if core.Now >= deadline {
				microSync(f, b, bd, base, true)
				f.PC += int(bd.RelIdx)
				f.SP = base + int(bd.SPAtOp)
				return false, nil
			}
			core.Charge(bd.Class, uint64(bd.Cost))
			if f.ctr != nil {
				f.ctr.Cycles[bd.Class] += uint64(bd.Cost)
			}
			core.Stats.Instrs++
			v := microVal(stack, locals, m.A, m.Imm)
			addr := vm.staticsBase + uint32(bd.Kind)*isa.SlotBytes
			vm.storeMem(core, f, addr, isa.SlotBytes, 0, 8, v, bd.Flags, false)
			if !vm.microSeg(core, f, b, bd, base, bi, deadline, 0, false, false) {
				return false, nil
			}
			bi++

		default:
			panic("vm: unknown micro-op in superblock replay")
		}
	}

	// Deferred reference-flag writes: resolve every source against the
	// entry-state LocalRefs, then land the writes.
	var lbuf, sbuf [8]bool
	for i := range b.LFlags {
		lbuf[i] = microFlag(f, b.LFlags[i].Src)
	}
	for i := range b.SFlags {
		sbuf[i] = microFlag(f, b.SFlags[i].Src)
	}
	for i := range b.LFlags {
		f.LocalRefs[b.LFlags[i].Idx] = lbuf[i]
	}
	for i := range b.SFlags {
		f.StackRefs[base+int(b.SFlags[i].Idx)] = sbuf[i]
	}
	f.SP = base + int(b.StackDelta)
	return true, nil
}

// pureStack is the mini-interpreter's operand-stack view: the frame's
// real stack and reference map behind pointer-receiver helpers, so a
// block replays without constructing the dozen closures step builds per
// instruction (the Go-level overhead the fast path exists to shed).
type pureStack struct {
	v  []uint64
	r  []bool
	sp int
}

func (s *pureStack) push(v uint64, ref bool) {
	if s.sp == len(s.v) {
		// Mirrors Frame.push: the verifier bounds MaxStack, so growth is
		// defensive only.
		s.v = append(s.v, 0)
		s.r = append(s.r, false)
	}
	s.v[s.sp] = v
	s.r[s.sp] = ref
	s.sp++
}

func (s *pureStack) pop() (uint64, bool) {
	s.sp--
	return s.v[s.sp], s.r[s.sp]
}

func (s *pureStack) popI() int32   { v, _ := s.pop(); return int32(uint32(v)) }
func (s *pureStack) pushI(v int32) { s.push(uint64(uint32(v)), false) }
func (s *pureStack) popL() int64   { v, _ := s.pop(); return int64(v) }
func (s *pureStack) pushL(v int64) { s.push(uint64(v), false) }
func (s *pureStack) popF() float32 { v, _ := s.pop(); return math.Float32frombits(uint32(v)) }
func (s *pureStack) pushF(v float32) {
	s.push(uint64(math.Float32bits(v)), false)
}
func (s *pureStack) popD() float64   { v, _ := s.pop(); return math.Float64frombits(v) }
func (s *pureStack) pushD(v float64) { s.push(math.Float64bits(v), false) }

// runPure replays the n instructions of the superblock at f.PC. Every
// case mirrors step exactly; ops outside the discovery purity set are
// unreachable by construction (discoverSuperblocks admits nothing
// else), so hitting the default case is an internal invariant failure.
// Integer divides appear only behind a nonzero constant divisor the
// same block pushed, so only the MinInt/-1 special cases need
// mirroring.
func runPure(f *Frame, n int) {
	blk := f.CM.Code[f.PC : f.PC+n]
	s := pureStack{v: f.Stack, r: f.StackRefs, sp: f.SP}
	for i := range blk {
		in := blk[i]
		switch in.Op {
		case isa.OpNop:
		case isa.OpGoto:
			// Always the block's last instruction; the caller applies its
			// control effect via the block's static Target.

		case isa.OpPushConst:
			s.push(uint64(uint32(in.A))|uint64(uint32(in.B))<<32, in.C == 1)
		case isa.OpLoadLocal:
			s.push(f.Locals[in.A], f.LocalRefs[in.A])
		case isa.OpStoreLocal:
			v, r := s.pop()
			f.Locals[in.A] = v
			f.LocalRefs[in.A] = r
		case isa.OpPop:
			s.pop()
		case isa.OpPop2:
			s.pop()
			s.pop()
		case isa.OpDup:
			v, r := s.pop()
			s.push(v, r)
			s.push(v, r)
		case isa.OpDupX1:
			a, ar := s.pop()
			b, br := s.pop()
			s.push(a, ar)
			s.push(b, br)
			s.push(a, ar)
		case isa.OpDupX2:
			a, ar := s.pop()
			b, br := s.pop()
			c, cr := s.pop()
			s.push(a, ar)
			s.push(c, cr)
			s.push(b, br)
			s.push(a, ar)
		case isa.OpDup2:
			a, ar := s.pop()
			b, br := s.pop()
			s.push(b, br)
			s.push(a, ar)
			s.push(b, br)
			s.push(a, ar)
		case isa.OpSwap:
			a, ar := s.pop()
			b, br := s.pop()
			s.push(a, ar)
			s.push(b, br)
		case isa.OpIncLocal:
			f.Locals[in.A] = uint64(uint32(int32(uint32(f.Locals[in.A])) + in.B))

		case isa.OpAddI:
			b, a := s.popI(), s.popI()
			s.pushI(a + b)
		case isa.OpSubI:
			b, a := s.popI(), s.popI()
			s.pushI(a - b)
		case isa.OpMulI:
			b, a := s.popI(), s.popI()
			s.pushI(a * b)
		case isa.OpDivI:
			b, a := s.popI(), s.popI()
			if a == math.MinInt32 && b == -1 {
				s.pushI(math.MinInt32)
			} else {
				s.pushI(a / b)
			}
		case isa.OpRemI:
			b, a := s.popI(), s.popI()
			if a == math.MinInt32 && b == -1 {
				s.pushI(0)
			} else {
				s.pushI(a % b)
			}
		case isa.OpNegI:
			s.pushI(-s.popI())
		case isa.OpAndI:
			b, a := s.popI(), s.popI()
			s.pushI(a & b)
		case isa.OpOrI:
			b, a := s.popI(), s.popI()
			s.pushI(a | b)
		case isa.OpXorI:
			b, a := s.popI(), s.popI()
			s.pushI(a ^ b)
		case isa.OpShlI:
			b, a := s.popI(), s.popI()
			s.pushI(a << (uint32(b) & 31))
		case isa.OpShrI:
			b, a := s.popI(), s.popI()
			s.pushI(a >> (uint32(b) & 31))
		case isa.OpUShrI:
			b, a := s.popI(), s.popI()
			s.pushI(int32(uint32(a) >> (uint32(b) & 31)))

		case isa.OpAddL:
			b, a := s.popL(), s.popL()
			s.pushL(a + b)
		case isa.OpSubL:
			b, a := s.popL(), s.popL()
			s.pushL(a - b)
		case isa.OpMulL:
			b, a := s.popL(), s.popL()
			s.pushL(a * b)
		case isa.OpDivL:
			b, a := s.popL(), s.popL()
			if a == math.MinInt64 && b == -1 {
				s.pushL(math.MinInt64)
			} else {
				s.pushL(a / b)
			}
		case isa.OpRemL:
			b, a := s.popL(), s.popL()
			if a == math.MinInt64 && b == -1 {
				s.pushL(0)
			} else {
				s.pushL(a % b)
			}
		case isa.OpNegL:
			s.pushL(-s.popL())
		case isa.OpAndL:
			b, a := s.popL(), s.popL()
			s.pushL(a & b)
		case isa.OpOrL:
			b, a := s.popL(), s.popL()
			s.pushL(a | b)
		case isa.OpXorL:
			b, a := s.popL(), s.popL()
			s.pushL(a ^ b)
		case isa.OpShlL:
			b, a := s.popI(), s.popL()
			s.pushL(a << (uint32(b) & 63))
		case isa.OpShrL:
			b, a := s.popI(), s.popL()
			s.pushL(a >> (uint32(b) & 63))
		case isa.OpUShrL:
			b, a := s.popI(), s.popL()
			s.pushL(int64(uint64(a) >> (uint32(b) & 63)))
		case isa.OpCmpL:
			b, a := s.popL(), s.popL()
			s.pushI(cmpOrder(a < b, a == b))

		case isa.OpAddF:
			b, a := s.popF(), s.popF()
			s.pushF(a + b)
		case isa.OpSubF:
			b, a := s.popF(), s.popF()
			s.pushF(a - b)
		case isa.OpMulF:
			b, a := s.popF(), s.popF()
			s.pushF(a * b)
		case isa.OpDivF:
			b, a := s.popF(), s.popF()
			s.pushF(a / b)
		case isa.OpNegF:
			s.pushF(-s.popF())
		case isa.OpRemF:
			b, a := s.popF(), s.popF()
			s.pushF(float32(math.Mod(float64(a), float64(b))))
		case isa.OpCmpF:
			b, a := s.popF(), s.popF()
			if a != a || b != b { // NaN
				s.pushI(in.A)
			} else {
				s.pushI(cmpOrder(a < b, a == b))
			}

		case isa.OpAddD:
			b, a := s.popD(), s.popD()
			s.pushD(a + b)
		case isa.OpSubD:
			b, a := s.popD(), s.popD()
			s.pushD(a - b)
		case isa.OpMulD:
			b, a := s.popD(), s.popD()
			s.pushD(a * b)
		case isa.OpDivD:
			b, a := s.popD(), s.popD()
			s.pushD(a / b)
		case isa.OpNegD:
			s.pushD(-s.popD())
		case isa.OpRemD:
			b, a := s.popD(), s.popD()
			s.pushD(math.Mod(a, b))
		case isa.OpCmpD:
			b, a := s.popD(), s.popD()
			if a != a || b != b {
				s.pushI(in.A)
			} else {
				s.pushI(cmpOrder(a < b, a == b))
			}

		case isa.OpI2L:
			s.pushL(int64(s.popI()))
		case isa.OpI2F:
			s.pushF(float32(s.popI()))
		case isa.OpI2D:
			s.pushD(float64(s.popI()))
		case isa.OpL2I:
			s.pushI(int32(s.popL()))
		case isa.OpL2F:
			s.pushF(float32(s.popL()))
		case isa.OpL2D:
			s.pushD(float64(s.popL()))
		case isa.OpF2I:
			s.pushI(f2i(float64(s.popF())))
		case isa.OpF2L:
			s.pushL(d2l(float64(s.popF())))
		case isa.OpF2D:
			s.pushD(float64(s.popF()))
		case isa.OpD2I:
			s.pushI(f2i(s.popD()))
		case isa.OpD2L:
			s.pushL(d2l(s.popD()))
		case isa.OpD2F:
			s.pushF(float32(s.popD()))
		case isa.OpI2B:
			s.pushI(int32(int8(s.popI())))
		case isa.OpI2C:
			s.pushI(int32(uint16(s.popI())))
		case isa.OpI2S:
			s.pushI(int32(int16(s.popI())))

		default:
			panic("vm: impure opcode " + in.Op.String() + " inside a superblock")
		}
	}
	f.Stack, f.StackRefs, f.SP = s.v, s.r, s.sp
}
