// Job snapshots: freezing a running job into a portable JobImage at a
// safe point, for inter-shard hand-off. The jit's bytecode-boundary
// maps (BCIndex/EntryOf/TranslatePC) already make frame state
// kind-independent at boundaries inside one machine; a snapshot is the
// same equivalence-point idea lifted across machines — every thread of
// the job parks at a bytecode boundary, and the job's whole reachable
// state (thread trees, frames, heap graph, statics, monitors, join
// edges, accounting) is serialized with heap references remapped to
// dense image IDs. RehydrateJob (rehydrate.go) rebuilds the job on any
// VM booted over the same program; the binary wire format lives in
// imagecodec.go.
//
// The safe-point contract: a job is freezable when every live thread is
// Ready or Blocked (never mid-quantum), carries no in-flight runtime
// state (a deferred migration, an unwinding exception, a suspended
// native call), and every non-marker frame's PC sits at a bytecode
// boundary. FreezeJob drives the machine toward that point: it raises a
// per-job freeze barrier that makes the executor park the job's running
// threads at their next bytecode boundary instead of finishing the
// quantum, then extracts the job. Freezing is part of the simulated
// schedule — the same freeze request at the same cycle replays byte for
// byte.
package vm

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// ErrFrozen is returned by WaitJob (and core.Job.Wait) for a job that
// was frozen off this machine: the job will never complete here, so
// waiting on it is an error, not a wedge. Match with errors.Is.
var ErrFrozen = errors.New("job is frozen")

// ErrJobDone is FreezeJob's report that the job completed before (or
// while driving toward) its safe point — there is nothing to freeze,
// and nothing went wrong.
var ErrJobDone = errors.New("job already done")

// ErrNotFreezable is FreezeJob's report that the job is entangled with
// state outside itself (a monitor shared with another job's thread, a
// cross-job join, a non-serializable policy or trap) and cannot be
// extracted. The job keeps running where it is. Match with errors.Is.
var ErrNotFreezable = errors.New("job not freezable")

// Policy tags for the image's policy override encoding. Only the named
// built-in policies serialize; a custom Policy implementation makes the
// job unfreezable (the image could not rebuild it on the target).
const (
	policyNone uint8 = iota
	policyAnnotation
	policyFixed
	policyMonitoring
)

// ImagePolicy is a job's placement-policy override in portable form.
type ImagePolicy struct {
	Tag  uint8
	Kind string // FixedPolicy's kind name
	// MonitoringPolicy's thresholds.
	FPThreshold  float64
	MemThreshold float64
	MinCycles    uint64
}

// ImageFrame is one serialized method activation. Non-marker frames
// name their method portably — class name plus the method's index in
// Class.Methods — and record the bytecode index (not the machine PC):
// the target recompiles for its own cores' kinds and re-enters at
// EntryOf[BC], exactly the TranslatePC path cross-kind migration uses.
type ImageFrame struct {
	Marker     bool
	ReturnKind string // marker frames: the kind to migrate back to

	Class  string
	Method int32
	BC     int32

	Locals    []uint64
	LocalRefs []bool
	// Stack holds the live operand stack (depth == SP at capture).
	Stack     []uint64
	StackRefs []bool
	SyncObj   uint32 // image object ID (0 = none)
}

// ImageThread is one serialized thread of the job's tree.
type ImageThread struct {
	Name       string
	Terminated bool
	Blocked    bool
	// ReadyDelay is ReadyAt minus the freeze clock for ready threads
	// still waiting out a charged latency (a syscall round trip).
	ReadyDelay uint64
	Kind       string // core kind the thread was bound to (placement hint)
	JavaObj    uint32 // image object ID of the java/lang/Thread instance

	PendingHasVal bool
	PendingIsRef  bool
	PendingVal    uint64

	WaitCount    int32
	Migrations   uint64
	Steals       uint64
	CooldownLeft uint64

	// Result/Trap survive for terminated threads (a finished root's
	// checksum must outlive a hand-off of its still-running siblings).
	Result    uint64
	HasResult bool
	Trap      *TrapError

	// Joiners are indices (into JobImage.Threads) of threads blocked in
	// join() on this one.
	Joiners []int32

	Frames []ImageFrame
}

// ImageObject is one heap object of the job's reachable set. Image IDs
// are 1-based discovery order; 0 is null.
type ImageObject struct {
	Class string // "" for arrays

	Elem   uint8 // isa.ElemKind, arrays only
	Length uint32
	Data   []byte   // primitive array payload
	Elems  []uint32 // reference array elements (image IDs)

	Slots []uint64 // instance field slots (reference fields hold image IDs)
}

// ImageStatics carries one class's static slot values (declaration
// order; reference slots hold image IDs). The statics closure is the
// set of classes the job's code can reach — see captureJob.
type ImageStatics struct {
	Class string
	Slots []uint64
}

// ImageMonitor is one monitor involving the job's threads: owner and
// queues are thread indices (-1 = no owner), the object an image ID.
type ImageMonitor struct {
	Obj     uint32
	Owner   int32
	Count   int32
	Blocked []int32
	Waiters []int32
}

// ImageClassLock binds a class's static-synchronized lock object to a
// transferred heap object, so mutual exclusion survives the hand-off.
type ImageClassLock struct {
	Class string
	Obj   uint32
}

// JobImage is a frozen job: everything RehydrateJob needs to resume the
// job's thread tree on another VM booted over the same program.
type JobImage struct {
	Name       string
	AdmittedAt cell.Clock // original admission — latency stays end-to-end
	Deadline   cell.Clock // absolute
	FrozenAt   cell.Clock // machine clock at capture
	Verdict    Verdict
	Stats      JobStats
	Output     []byte // System.out captured before the freeze
	Policy     ImagePolicy

	Threads    []ImageThread
	Objects    []ImageObject
	Statics    []ImageStatics
	Monitors   []ImageMonitor
	ClassLocks []ImageClassLock
}

// encodePolicy maps a job's policy override to its portable form.
func encodePolicy(p Policy) (ImagePolicy, error) {
	switch pol := p.(type) {
	case nil:
		return ImagePolicy{Tag: policyNone}, nil
	case *AnnotationPolicy:
		return ImagePolicy{Tag: policyAnnotation}, nil
	case AnnotationPolicy:
		return ImagePolicy{Tag: policyAnnotation}, nil
	case FixedPolicy:
		return ImagePolicy{Tag: policyFixed, Kind: pol.Kind.String()}, nil
	case *FixedPolicy:
		return ImagePolicy{Tag: policyFixed, Kind: pol.Kind.String()}, nil
	case *MonitoringPolicy:
		return ImagePolicy{Tag: policyMonitoring, FPThreshold: pol.FPThreshold,
			MemThreshold: pol.MemThreshold, MinCycles: pol.MinCycles}, nil
	default:
		return ImagePolicy{}, fmt.Errorf("%w: policy %T does not serialize", ErrNotFreezable, p)
	}
}

// decodePolicy rebuilds a policy override from its portable form.
func decodePolicy(ip ImagePolicy) (Policy, error) {
	switch ip.Tag {
	case policyNone:
		return nil, nil
	case policyAnnotation:
		return &AnnotationPolicy{}, nil
	case policyFixed:
		kind, err := isa.ParseCoreKind(ip.Kind)
		if err != nil {
			return nil, fmt.Errorf("vm: image policy: %w", err)
		}
		return FixedPolicy{Kind: kind}, nil
	case policyMonitoring:
		return &MonitoringPolicy{FPThreshold: ip.FPThreshold,
			MemThreshold: ip.MemThreshold, MinCycles: ip.MinCycles}, nil
	default:
		return nil, fmt.Errorf("vm: image policy: unknown tag %d", ip.Tag)
	}
}

// jobFreezable reports whether the job sits at a safe point: every live
// thread parked (Ready or Blocked, never mid-quantum), free of
// in-flight runtime state, with every non-marker frame at a bytecode
// boundary. It is evaluated between scheduling rounds, where no thread
// is Running.
func (vm *VM) jobFreezable(j *Job) bool {
	for _, t := range j.threads {
		if t.State == StateTerminated {
			continue
		}
		if t.State == StateRunning {
			return false
		}
		if t.hasPendingMigrate || t.hasPendingThrow || t.pendingNative != nil {
			return false
		}
		for _, f := range t.Frames {
			if f.Marker || f.CM == nil {
				continue
			}
			if !f.CM.AtBytecodeBoundary(f.PC) {
				return false
			}
		}
	}
	return true
}

// FreezeJob drives the machine until the job reaches a safe point, then
// serializes and detaches it. Other jobs' threads progress normally
// while driving — the freeze is part of the shared, deterministic
// schedule. A nil ctx never cancels; a cancelled ctx aborts the freeze
// cleanly (parked threads resume, the job keeps running here) and
// returns the context's error. ErrJobDone means the job completed
// first; ErrNotFreezable means the job is entangled with state outside
// itself and stays put. On success the job is detached from this
// machine: its threads leave the scheduler, Done stays false, Frozen
// reports true, and WaitJob returns ErrFrozen.
func (vm *VM) FreezeJob(ctx context.Context, j *Job) (*JobImage, error) {
	if j == nil {
		return nil, fmt.Errorf("vm: freeze of nil job")
	}
	if j.done {
		return nil, ErrJobDone
	}
	if j.frozen {
		return nil, fmt.Errorf("vm: job %d (%s) already frozen", j.ID, j.Name)
	}
	// A custom policy can never rehydrate; refuse before driving.
	if _, err := encodePolicy(j.policy); err != nil {
		return nil, err
	}
	// An in-flight kernel launch can never park at a safe point: the
	// caller is blocked inside a native and the pinned workers hold a
	// half-completed SPMD barrier no other machine could resume. Refuse
	// rather than wedge or capture a torn barrier.
	if j.kernels > 0 {
		return nil, kernelInFlightErr(j)
	}
	// An already-cancelled context aborts before any driving, even if
	// the job happens to sit at a safe point right now.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	j.freezeBarrier = true
	defer func() { j.freezeBarrier = false }()
	for !vm.jobFreezable(j) {
		if ctx != nil {
			select {
			case <-ctx.Done():
				vm.unparkJob(j)
				return nil, ctx.Err()
			default:
			}
		}
		steps := 0
		err := vm.runWhile(func() bool { steps++; return steps > 1 || j.done })
		if err != nil {
			vm.unparkJob(j)
			return nil, err
		}
		if j.done {
			return nil, ErrJobDone
		}
		// A launch that started while driving toward the safe point makes
		// the job unfreezable mid-freeze: abort cleanly, parked threads
		// resume, the kernel runs on here.
		if j.kernels > 0 {
			vm.unparkJob(j)
			return nil, kernelInFlightErr(j)
		}
	}
	if j.kernels > 0 {
		vm.unparkJob(j)
		return nil, kernelInFlightErr(j)
	}

	// Release: write back and invalidate every software data cache, as
	// the collector does before marking, so the capture's main-memory
	// reads observe all of the job's writes. The cycles are charged to
	// the cores — the flush is real work the hand-off costs the source.
	for _, core := range vm.cores {
		if dc := vm.dcaches[core.Index]; dc != nil {
			core.Now = dc.Purge(core.Now)
		}
	}

	img, monObjs, err := vm.captureJob(j)
	if err != nil {
		vm.unparkJob(j)
		return nil, err
	}
	vm.detachJob(j, monObjs)
	return img, nil
}

// kernelInFlightErr is the ErrNotFreezable report for a job holding an
// incomplete SPMD barrier.
func kernelInFlightErr(j *Job) error {
	return fmt.Errorf("vm: job %d (%s) has a data-parallel kernel in flight: %w",
		j.ID, j.Name, ErrNotFreezable)
}

// unparkJob aborts an in-progress freeze: threads the executor parked
// at bytecode boundaries for the freeze barrier re-enter the scheduler
// and the job runs on as if nothing happened.
func (vm *VM) unparkJob(j *Job) {
	for _, t := range j.parked {
		if t.State != StateBlocked {
			continue
		}
		vm.enqueue(t) // ReadyAt is in the past; it queues as ready
	}
	j.parked = nil
}

// detachJob removes a captured job from the machine: every live thread
// leaves the scheduler and terminates locally, monitors owned within
// the job are dropped, and the job's slot in the admission order stays
// (frozen, not done) so replay order is untouched.
func (vm *VM) detachJob(j *Job, monObjs []Ref) {
	for _, t := range j.threads {
		if t.State == StateTerminated {
			continue
		}
		if t.State == StateReady {
			vm.scheduler.Remove(vm.coreFor(t.Kind, t.CoreID), t)
		}
		if t.JavaObj != 0 {
			delete(vm.byJavaObj, t.JavaObj)
		}
		t.State = StateTerminated
		t.Frames = nil
		t.joiners = nil
		t.pendingNative = nil
		t.hasPendingThrow = false
		t.pendingThrow = 0
		t.pendingHasVal = false
		t.pendingVal = 0
		t.pendingIsRef = false
		vm.liveCount--
	}
	for _, obj := range monObjs {
		delete(vm.monitors, obj)
		vm.Heap.SetLockWord(obj, 0)
	}
	j.live = 0
	j.frozen = true
	j.parked = nil
	vm.pending--
}

// capture is the serialization walk: it discovers the job's reachable
// heap in deterministic order (thread roots, then involved monitors,
// then the statics closure, to a fixpoint), assigning dense 1-based
// image IDs, and computes the class closure — every class the job's
// code can name — whose statics travel with the job.
type capture struct {
	vm    *VM
	id    map[Ref]uint32
	order []Ref
	queue []Ref

	classSeen map[*classfile.Class]bool
	classList []*classfile.Class
}

// root queues a heap reference for discovery (0 and non-heap values are
// ignored, as in the collector's root scan).
func (c *capture) root(r Ref) {
	if r == 0 || !c.vm.Heap.Contains(r) {
		return
	}
	if _, ok := c.id[r]; ok {
		return
	}
	c.order = append(c.order, r)
	c.id[r] = uint32(len(c.order)) // 1-based; 0 is null
	c.queue = append(c.queue, r)
}

// remap translates a source heap reference to its image ID.
func (c *capture) remap(r Ref) uint32 {
	if r == 0 || !c.vm.Heap.Contains(r) {
		return 0
	}
	return c.id[r]
}

// addClass folds a class into the closure: its supers, interfaces, and
// every class its methods' code names (the resolved C/M/F references),
// recursively. The closure bounds which statics the image carries — the
// set the rehydrated job could ever read or write.
func (c *capture) addClass(cls *classfile.Class) {
	if cls == nil || c.classSeen[cls] {
		return
	}
	c.classSeen[cls] = true
	c.classList = append(c.classList, cls)
	c.addClass(cls.Super)
	for _, in := range cls.Interfaces {
		c.addClass(in)
	}
	for _, m := range cls.Methods {
		for i := range m.Code {
			bc := &m.Code[i]
			c.addClass(bc.C)
			if bc.M != nil {
				c.addClass(bc.M.Class)
			}
			if bc.F != nil {
				c.addClass(bc.F.Class)
			}
		}
	}
}

// drain walks queued objects breadth-first, folding each object's class
// into the closure and queueing its outgoing references.
func (c *capture) drain() {
	vm := c.vm
	for len(c.queue) > 0 {
		obj := c.queue[0]
		c.queue = c.queue[1:]
		id := vm.Heap.ClassIDOf(obj)
		if isArrayClassID(id) {
			if arrayKindOf(id) == isa.ElemRef {
				n := vm.Heap.LengthOf(obj)
				for i := uint32(0); i < n; i++ {
					c.root(Ref(vm.Machine.Mem.Read32(obj + isa.HeaderBytes + i*4)))
				}
			}
			continue
		}
		cls := vm.classByID[id]
		c.addClass(cls)
		for k := cls; k != nil; k = k.Super {
			for _, fd := range k.Fields {
				if fd.Type.IsRef() {
					c.root(Ref(vm.Heap.FieldSlot(obj, fd.Slot)))
				}
			}
		}
	}
}

// captureJob serializes a job sitting at its safe point. It returns the
// image plus the heap objects of the job's monitors (for detachJob).
// ErrNotFreezable reports entanglement with non-job state.
func (vm *VM) captureJob(j *Job) (*JobImage, []Ref, error) {
	inJob := make(map[*Thread]int, len(j.threads))
	for i, t := range j.threads {
		inJob[t] = i
	}
	if len(j.threads) == 0 || j.threads[0] != j.root {
		return nil, nil, fmt.Errorf("%w: job %d has no root thread", ErrNotFreezable, j.ID)
	}

	// Entanglement checks: joins and traps first (cheap), monitors next.
	for _, t := range vm.threads {
		for _, joiner := range t.joiners {
			_, jIn := inJob[joiner]
			_, tIn := inJob[t]
			if jIn != tIn {
				return nil, nil, fmt.Errorf("%w: join edge crosses the job boundary", ErrNotFreezable)
			}
		}
	}
	for _, t := range j.threads {
		if t.Trap != nil {
			if _, ok := t.Trap.(*TrapError); !ok {
				return nil, nil, fmt.Errorf("%w: trap %T does not serialize", ErrNotFreezable, t.Trap)
			}
		}
	}

	// Monitors involving the job, in deterministic (object Ref) order;
	// every participant must be a job thread.
	type capMon struct {
		obj Ref
		m   *monitor
	}
	var mons []capMon
	for obj, m := range vm.monitors {
		_, involved := inJob[m.owner]
		for _, b := range m.blocked {
			if _, ok := inJob[b]; ok {
				involved = true
			}
		}
		for _, w := range m.waiters {
			if _, ok := inJob[w]; ok {
				involved = true
			}
		}
		if !involved {
			continue
		}
		if m.owner != nil {
			if _, ok := inJob[m.owner]; !ok {
				return nil, nil, fmt.Errorf("%w: monitor shared with another job", ErrNotFreezable)
			}
		}
		for _, b := range append(append([]*Thread{}, m.blocked...), m.waiters...) {
			if _, ok := inJob[b]; !ok {
				return nil, nil, fmt.Errorf("%w: monitor shared with another job", ErrNotFreezable)
			}
		}
		mons = append(mons, capMon{obj, m})
	}
	sort.Slice(mons, func(a, b int) bool { return mons[a].obj < mons[b].obj })

	// Heap discovery: thread roots in creation order, then monitor
	// objects, then the statics closure to a fixpoint (static refs may
	// reach objects whose classes widen the closure, whose statics add
	// roots).
	cap := &capture{vm: vm, id: make(map[Ref]uint32),
		classSeen: make(map[*classfile.Class]bool)}
	for _, t := range j.threads {
		cap.root(t.JavaObj)
		if t.pendingHasVal && t.pendingIsRef {
			cap.root(Ref(t.pendingVal))
		}
		for _, f := range t.Frames {
			if f.Marker {
				continue
			}
			cap.addClass(f.CM.M.Class)
			for i, isRef := range f.LocalRefs {
				if isRef {
					cap.root(Ref(f.Locals[i]))
				}
			}
			for i := 0; i < f.SP; i++ {
				if f.StackRefs[i] {
					cap.root(Ref(f.Stack[i]))
				}
			}
			cap.root(f.SyncObj)
		}
	}
	for _, cm := range mons {
		cap.root(cm.obj)
	}
	cap.drain()
	for scanned := 0; scanned < len(cap.classList); {
		cls := cap.classList[scanned]
		scanned++
		for _, fd := range cls.Statics {
			if fd.Type.IsRef() {
				cap.root(Ref(vm.Machine.Mem.Read64(vm.staticsBase + uint32(fd.Slot)*isa.SlotBytes)))
			}
		}
		cap.drain() // may extend classList; the cursor picks the new tail up
	}

	img := &JobImage{
		Name:       j.Name,
		AdmittedAt: j.AdmittedAt,
		Deadline:   j.Deadline,
		FrozenAt:   vm.Machine.MaxClock(),
		Verdict:    j.Verdict,
		Stats:      j.Stats,
		Output:     append([]byte(nil), j.out.Bytes()...),
	}
	var err error
	if img.Policy, err = encodePolicy(j.policy); err != nil {
		return nil, nil, err
	}

	// Objects in discovery order.
	for _, obj := range cap.order {
		id := vm.Heap.ClassIDOf(obj)
		if isArrayClassID(id) {
			k := arrayKindOf(id)
			n := vm.Heap.LengthOf(obj)
			io := ImageObject{Elem: uint8(k), Length: n}
			if k == isa.ElemRef {
				io.Elems = make([]uint32, n)
				for i := uint32(0); i < n; i++ {
					io.Elems[i] = cap.remap(Ref(vm.Machine.Mem.Read32(obj + isa.HeaderBytes + i*4)))
				}
			} else {
				io.Data = make([]byte, n*k.Size())
				vm.Machine.Mem.ReadBytes(obj+isa.HeaderBytes, io.Data)
			}
			img.Objects = append(img.Objects, io)
			continue
		}
		cls := vm.classByID[id]
		io := ImageObject{Class: cls.Name, Slots: make([]uint64, cls.InstanceSlots)}
		for i := range io.Slots {
			io.Slots[i] = vm.Heap.FieldSlot(obj, i)
		}
		for k := cls; k != nil; k = k.Super {
			for _, fd := range k.Fields {
				if fd.Type.IsRef() {
					io.Slots[fd.Slot] = uint64(cap.remap(Ref(io.Slots[fd.Slot])))
				}
			}
		}
		img.Objects = append(img.Objects, io)
	}

	// Statics of the closure, sorted by class name for a canonical image.
	classes := append([]*classfile.Class(nil), cap.classList...)
	sort.Slice(classes, func(a, b int) bool { return classes[a].Name < classes[b].Name })
	for _, cls := range classes {
		if len(cls.Statics) == 0 {
			continue
		}
		st := ImageStatics{Class: cls.Name, Slots: make([]uint64, len(cls.Statics))}
		for i, fd := range cls.Statics {
			v := vm.Machine.Mem.Read64(vm.staticsBase + uint32(fd.Slot)*isa.SlotBytes)
			if fd.Type.IsRef() {
				v = uint64(cap.remap(Ref(v)))
			}
			st.Slots[i] = v
		}
		img.Statics = append(img.Statics, st)
	}

	// Class-lock bindings for locks that travel with the job.
	for _, cls := range classes {
		if lock := vm.classes[cls.ID].lockObj; lock != 0 {
			if id := cap.remap(lock); id != 0 {
				img.ClassLocks = append(img.ClassLocks, ImageClassLock{Class: cls.Name, Obj: id})
			}
		}
	}

	// Threads in creation order. Freeze-parked threads serialize as
	// ready (they were running; the park is an artifact of the freeze).
	parked := make(map[*Thread]bool, len(j.parked))
	for _, t := range j.parked {
		parked[t] = true
	}
	threadIdx := func(t *Thread) int32 {
		i, ok := inJob[t]
		if !ok {
			return -1
		}
		return int32(i)
	}
	for _, t := range j.threads {
		it := ImageThread{
			Name:          t.Name,
			Kind:          t.Kind.String(),
			JavaObj:       cap.remap(t.JavaObj),
			PendingHasVal: t.pendingHasVal,
			PendingIsRef:  t.pendingIsRef,
			PendingVal:    t.pendingVal,
			WaitCount:     int32(t.waitCount),
			Migrations:    t.Migrations,
			Steals:        t.Steals,
			Result:        t.Result,
			HasResult:     t.HasResult,
		}
		if t.pendingHasVal && t.pendingIsRef {
			it.PendingVal = uint64(cap.remap(Ref(t.pendingVal)))
		}
		if t.Trap != nil {
			te := *t.Trap.(*TrapError)
			it.Trap = &te
		}
		switch {
		case t.State == StateTerminated:
			it.Terminated = true
		case t.State == StateBlocked && !parked[t]:
			it.Blocked = true
		default: // ready, or freeze-parked
			if t.ReadyAt > img.FrozenAt {
				it.ReadyDelay = uint64(t.ReadyAt - img.FrozenAt)
			}
		}
		if t.cooldownUntil > img.FrozenAt {
			it.CooldownLeft = uint64(t.cooldownUntil - img.FrozenAt)
		}
		for _, joiner := range t.joiners {
			it.Joiners = append(it.Joiners, threadIdx(joiner))
		}
		for _, f := range t.Frames {
			if f.Marker {
				it.Frames = append(it.Frames,
					ImageFrame{Marker: true, ReturnKind: f.ReturnKind.String()})
				continue
			}
			m := f.CM.M
			mi := int32(-1)
			for i, mm := range m.Class.Methods {
				if mm == m {
					mi = int32(i)
					break
				}
			}
			if mi < 0 {
				return nil, nil, fmt.Errorf("%w: method %s not in its class table", ErrNotFreezable, m.Sig())
			}
			fr := ImageFrame{
				Class:     m.Class.Name,
				Method:    mi,
				BC:        f.CM.BCIndex[f.PC],
				Locals:    append([]uint64(nil), f.Locals...),
				LocalRefs: append([]bool(nil), f.LocalRefs...),
				Stack:     append([]uint64(nil), f.Stack[:f.SP]...),
				StackRefs: append([]bool(nil), f.StackRefs[:f.SP]...),
				SyncObj:   cap.remap(f.SyncObj),
			}
			for i, isRef := range fr.LocalRefs {
				if isRef {
					fr.Locals[i] = uint64(cap.remap(Ref(fr.Locals[i])))
				}
			}
			for i, isRef := range fr.StackRefs {
				if isRef {
					fr.Stack[i] = uint64(cap.remap(Ref(fr.Stack[i])))
				}
			}
			it.Frames = append(it.Frames, fr)
		}
		img.Threads = append(img.Threads, it)
	}

	// Monitors last (thread indices are now stable).
	monObjs := make([]Ref, 0, len(mons))
	for _, cm := range mons {
		im := ImageMonitor{Obj: cap.remap(cm.obj), Owner: -1, Count: int32(cm.m.count)}
		if cm.m.owner != nil {
			im.Owner = threadIdx(cm.m.owner)
		}
		for _, b := range cm.m.blocked {
			im.Blocked = append(im.Blocked, threadIdx(b))
		}
		for _, w := range cm.m.waiters {
			im.Waiters = append(im.Waiters, threadIdx(w))
		}
		img.Monitors = append(img.Monitors, im)
		monObjs = append(monObjs, cm.obj)
	}

	return img, monObjs, nil
}
