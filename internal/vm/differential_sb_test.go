// Superblock differential harness: every workload runs twice — fast
// path enabled (the default) vs Config.DisableSuperblocks — and the two
// machines must agree on everything observable: checksums, final clocks,
// per-core per-class cycle counters, retired instructions, idle time,
// per-job cycles and the rendered per-core stat strings. This is the
// enforcement of the memoization contract: fast-forwarding a block is an
// accounting shortcut, never a semantics change.
//
// The file is an external test package because the workloads package
// imports vm; the in-package differential tests (random straight-line
// programs vs a Go mirror) live in differential_test.go.
package vm_test

import (
	"testing"

	"herajvm/internal/vm"
	"herajvm/internal/workloads"
)

// sbScale keeps the differential sweep fast; the full-size runs are
// herabench's job.
var sbScale = map[string]int{
	"compress":   1,
	"mpegaudio":  2,
	"mandelbrot": 1,
}

func TestDifferentialSuperblockWorkloads(t *testing.T) {
	const threads = 4
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			scale := sbScale[spec.Name]
			if scale == 0 {
				scale = 1
			}
			type outcome struct {
				machine *vm.VM
				job     *vm.Job
			}
			run := func(disable bool) outcome {
				prog, err := spec.Build(threads, scale)
				if err != nil {
					t.Fatal(err)
				}
				cfg := vm.DefaultConfig()
				cfg.Machine.MainMemory = 32 << 20
				cfg.HeapBytes = 8 << 20
				cfg.DisableSuperblocks = disable
				machine, err := vm.New(cfg, prog)
				if err != nil {
					t.Fatal(err)
				}
				job, err := machine.SubmitJob(vm.JobSpec{Name: spec.Name, Class: spec.MainClass, Method: "main"})
				if err != nil {
					t.Fatal(err)
				}
				if err := machine.DrainJobs(); err != nil {
					t.Fatal(err)
				}
				if err := job.Err(); err != nil {
					t.Fatal(err)
				}
				return outcome{machine, job}
			}
			fast, slow := run(false), run(true)

			fsum := int32(uint32(fast.job.Root().Result))
			ssum := int32(uint32(slow.job.Root().Result))
			if want := spec.Reference(threads, scale); fsum != want || ssum != want {
				t.Fatalf("checksums: fast=%d slow=%d reference=%d", fsum, ssum, want)
			}
			if f, s := fast.job.Cycles(), slow.job.Cycles(); f != s {
				t.Errorf("job cycles: fast=%d slow=%d", f, s)
			}
			if f, s := fast.machine.Machine.MaxClock(), slow.machine.Machine.MaxClock(); f != s {
				t.Errorf("machine clock: fast=%d slow=%d", f, s)
			}

			var ff uint64
			fcores, scores := fast.machine.Machine.Cores(), slow.machine.Machine.Cores()
			for i := range fcores {
				fs, ss := fcores[i].Stats, scores[i].Stats
				if fs.Cycles != ss.Cycles {
					t.Errorf("core %d: per-class cycles diverge:\nfast %v\nslow %v", i, fs.Cycles, ss.Cycles)
				}
				if fs.Instrs != ss.Instrs || fs.Idle != ss.Idle {
					t.Errorf("core %d: instrs/idle fast=%d/%d slow=%d/%d",
						i, fs.Instrs, fs.Idle, ss.Instrs, ss.Idle)
				}
				// The rendered stat line must be byte-identical — the
				// fast-forward counters are deliberately not part of it.
				if fstr, sstr := fs.String(), ss.String(); fstr != sstr {
					t.Errorf("core %d: stat line diverges:\nfast %s\nslow %s", i, fstr, sstr)
				}
				ff += fs.FastForwardedInstrs
			}
			if ff == 0 {
				t.Errorf("%s never took the fast path", spec.Name)
			}
		})
	}
}
