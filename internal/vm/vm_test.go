package vm

import (
	"strings"
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// testConfig returns a small, fast machine for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Machine.MainMemory = 16 << 20
	cfg.HeapBytes = 4 << 20
	cfg.CodeBytes = 1 << 20
	cfg.BootBytes = 256 << 10
	return cfg
}

// newProg returns a program with the stdlib installed.
func newProg() *classfile.Program {
	p := classfile.NewProgram()
	Stdlib(p)
	return p
}

func runMain(t *testing.T, cfg Config, p *classfile.Program, cls, method string) (*VM, *Thread) {
	t.Helper()
	vm, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	th, err := vm.RunMain(cls, method)
	if err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	return vm, th
}

func TestArithmeticOnPPE(t *testing.T) {
	p := newProg()
	c := p.NewClass("Calc", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	// ((7*6)+3) % 11 = 45 % 11 = 1
	a.ConstI(7)
	a.ConstI(6)
	a.MulI()
	a.ConstI(3)
	a.AddI()
	a.ConstI(11)
	a.RemI()
	a.Ret()
	a.MustBuild()

	vm, th := runMain(t, testConfig(), p, "Calc", "main")
	if int32(uint32(th.Result)) != 1 {
		t.Errorf("result: %d", int32(uint32(th.Result)))
	}
	if vm.Machine.CoresOf(isa.PPE)[0].Now == 0 {
		t.Error("PPE clock never advanced")
	}
	if vm.Machine.CoresOf(isa.SPE)[0].Stats.Instrs != 0 {
		t.Error("SPEs should be idle for an unannotated main")
	}
}

func TestLoopSumOnBothCoreKinds(t *testing.T) {
	build := func() *classfile.Program {
		p := newProg()
		c := p.NewClass("Loop", nil)
		m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
		a := m.Asm()
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstI(0)
		a.StoreI(0)
		a.ConstI(0)
		a.StoreI(1)
		a.Bind(loop)
		a.LoadI(1)
		a.ConstI(100)
		a.IfICmpGE(done)
		a.LoadI(0)
		a.LoadI(1)
		a.AddI()
		a.StoreI(0)
		a.Inc(1, 1)
		a.Goto(loop)
		a.Bind(done)
		a.LoadI(0)
		a.Ret()
		a.MustBuild()
		return p
	}
	for _, kind := range []isa.CoreKind{isa.PPE, isa.SPE} {
		cfg := testConfig()
		cfg.Policy = FixedPolicy{Kind: kind}
		_, th := runMain(t, cfg, build(), "Loop", "main")
		if got := int32(uint32(th.Result)); got != 4950 {
			t.Errorf("%v: sum = %d, want 4950", kind, got)
		}
	}
}

func TestDoubleMathAndConversions(t *testing.T) {
	p := newProg()
	c := p.NewClass("FP", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	// (int)(sqrt(2.0) * 1000) = 1414
	mathCls := p.Lookup("java/lang/Math")
	a.ConstD(2.0)
	a.InvokeStatic(mathCls.MethodByName("sqrt"))
	a.ConstD(1000)
	a.MulD()
	a.D2I()
	a.Ret()
	a.MustBuild()
	_, th := runMain(t, testConfig(), p, "FP", "main")
	if got := int32(uint32(th.Result)); got != 1414 {
		t.Errorf("got %d", got)
	}
}

func TestLongArithmetic(t *testing.T) {
	p := newProg()
	c := p.NewClass("L", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Long)
	a := m.Asm()
	a.ConstL(1 << 40)
	a.ConstL(3)
	a.MulL()
	a.ConstL(7)
	a.AddL()
	a.Ret()
	a.MustBuild()
	_, th := runMain(t, testConfig(), p, "L", "main")
	if got := int64(th.Result); got != 3*(1<<40)+7 {
		t.Errorf("got %d", got)
	}
}

func TestObjectsFieldsAndVirtualDispatch(t *testing.T) {
	p := newProg()
	animal := p.NewClass("Animal", nil)
	legs := animal.NewField("legs", classfile.Int)
	speak := animal.NewMethod("speak", 0, classfile.Int)
	{
		a := speak.Asm()
		a.LoadRef(0)
		a.GetField(legs)
		a.Ret()
		a.MustBuild()
	}
	dog := p.NewClass("Dog", animal)
	bark := dog.NewMethod("speak", 0, classfile.Int)
	{
		a := bark.Asm()
		a.LoadRef(0)
		a.GetField(legs)
		a.ConstI(100)
		a.AddI()
		a.Ret()
		a.MustBuild()
	}

	c := p.NewClass("Main", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	// Animal x = new Dog(); x.legs = 4; return x.speak(); // 104
	a.New(dog)
	a.StoreRef(0)
	a.LoadRef(0)
	a.ConstI(4)
	a.PutField(legs)
	a.LoadRef(0)
	a.InvokeVirtual(speak) // declared on Animal, dispatches to Dog
	a.Ret()
	a.MustBuild()

	_, th := runMain(t, testConfig(), p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 104 {
		t.Errorf("virtual dispatch result: %d", got)
	}
}

func TestInterfaceDispatch(t *testing.T) {
	p := newProg()
	shape := p.NewInterface("Shape")
	area := shape.NewMethod("area", classfile.FlagAbstract, classfile.Int)

	square := p.NewClass("Square", nil)
	square.AddInterface(shape)
	side := square.NewField("side", classfile.Int)
	impl := square.NewMethod("area", 0, classfile.Int)
	{
		a := impl.Asm()
		a.LoadRef(0)
		a.GetField(side)
		a.LoadRef(0)
		a.GetField(side)
		a.MulI()
		a.Ret()
		a.MustBuild()
	}

	c := p.NewClass("Main", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	a.New(square)
	a.StoreRef(0)
	a.LoadRef(0)
	a.ConstI(9)
	a.PutField(side)
	a.LoadRef(0)
	a.InvokeInterface(area)
	a.Ret()
	a.MustBuild()

	_, th := runMain(t, testConfig(), p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 81 {
		t.Errorf("interface dispatch result: %d", got)
	}
}

func TestArraysAllKinds(t *testing.T) {
	p := newProg()
	c := p.NewClass("Arr", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	// byte[] b = new byte[4]; b[2] = -5; (sign-extended read)
	a.ConstI(4)
	a.NewArray(classfile.ElemByte)
	a.StoreRef(0)
	a.LoadRef(0)
	a.ConstI(2)
	a.ConstI(-5)
	a.AStore(classfile.ElemByte)
	// double[] d = new double[3]; d[1] = 2.5
	a.ConstI(3)
	a.NewArray(classfile.ElemDouble)
	a.StoreRef(1)
	a.LoadRef(1)
	a.ConstI(1)
	a.ConstD(2.5)
	a.AStore(classfile.ElemDouble)
	// return b[2] + (int)d[1] + b.length  => -5 + 2 + 4 = 1
	a.LoadRef(0)
	a.ConstI(2)
	a.ALoad(classfile.ElemByte)
	a.LoadRef(1)
	a.ConstI(1)
	a.ALoad(classfile.ElemDouble)
	a.D2I()
	a.AddI()
	a.LoadRef(0)
	a.ArrayLen()
	a.AddI()
	a.Ret()
	a.MustBuild()
	_, th := runMain(t, testConfig(), p, "Arr", "main")
	if got := int32(uint32(th.Result)); got != 1 {
		t.Errorf("got %d", got)
	}
}

func TestStaticFields(t *testing.T) {
	p := newProg()
	c := p.NewClass("S", nil)
	counter := c.NewStaticField("counter", classfile.Int)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	a.ConstI(41)
	a.PutStatic(counter)
	a.GetStatic(counter)
	a.ConstI(1)
	a.AddI()
	a.PutStatic(counter)
	a.GetStatic(counter)
	a.Ret()
	a.MustBuild()
	_, th := runMain(t, testConfig(), p, "S", "main")
	if got := int32(uint32(th.Result)); got != 42 {
		t.Errorf("got %d", got)
	}
}

func TestTrapsKillThread(t *testing.T) {
	cases := []struct {
		name string
		emit func(a *classfile.Asm)
		want string
	}{
		{"DivByZero", func(a *classfile.Asm) {
			a.ConstI(1)
			a.ConstI(0)
			a.DivI()
			a.Ret()
		}, "ArithmeticException"},
		{"NullField", func(a *classfile.Asm) {
			a.Null()
			a.ArrayLen()
			a.Ret()
		}, "NullPointerException"},
		{"OOB", func(a *classfile.Asm) {
			a.ConstI(2)
			a.NewArray(classfile.ElemInt)
			a.ConstI(5)
			a.ALoad(classfile.ElemInt)
			a.Ret()
		}, "ArrayIndexOutOfBoundsException"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newProg()
			c := p.NewClass("T", nil)
			m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
			a := m.Asm()
			tc.emit(a)
			a.MustBuild()
			vm, err := New(testConfig(), p)
			if err != nil {
				t.Fatal(err)
			}
			_, err = vm.RunMain("T", "main")
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("want %s, got %v", tc.want, err)
			}
		})
	}
}

func TestPrintlnViaSyscall(t *testing.T) {
	p := newProg()
	c := p.NewClass("Hello", nil)
	sys := p.Lookup("java/lang/System")
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Void)
	a := m.Asm()
	a.Str("hello, cell")
	a.InvokeStatic(sys.MethodByName("println"))
	a.ConstI(42)
	a.InvokeStatic(sys.MethodByName("printInt"))
	a.RetVoid()
	a.MustBuild()
	vm, _ := runMain(t, testConfig(), p, "Hello", "main")
	out := vm.Output()
	if out != "hello, cell\n42\n" {
		t.Errorf("output: %q", out)
	}
}

func TestSyscallFromSPEStallsAndProxies(t *testing.T) {
	p := newProg()
	c := p.NewClass("SpePrint", nil)
	sys := p.Lookup("java/lang/System")
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Void)
	a := m.Asm()
	a.ConstI(7)
	a.InvokeStatic(sys.MethodByName("printInt"))
	a.RetVoid()
	a.MustBuild()
	cfg := testConfig()
	cfg.Policy = FixedPolicy{Kind: isa.SPE}
	vm, _ := runMain(t, cfg, p, "SpePrint", "main")
	if vm.Output() != "7\n" {
		t.Errorf("output: %q", vm.Output())
	}
	spe0 := vm.Machine.CoresOf(isa.SPE)[0]
	if spe0.Stats.Syscalls != 1 {
		t.Errorf("SPE syscalls: %d", spe0.Stats.Syscalls)
	}
	if vm.Machine.CoresOf(isa.PPE)[0].Stats.Syscalls != 1 {
		t.Errorf("PPE service syscalls: %d", vm.Machine.CoresOf(isa.PPE)[0].Stats.Syscalls)
	}
}

func TestGCReclaimsGarbage(t *testing.T) {
	p := newProg()
	c := p.NewClass("Churn", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	// for (i = 0; i < 4000; i++) { int[] junk = new int[1024]; junk[0]=i; }
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(0)
	a.Bind(loop)
	a.LoadI(0)
	a.ConstI(4000)
	a.IfICmpGE(done)
	a.ConstI(1024)
	a.NewArray(classfile.ElemInt)
	a.StoreRef(1)
	a.LoadRef(1)
	a.ConstI(0)
	a.LoadI(0)
	a.AStore(classfile.ElemInt)
	a.Inc(0, 1)
	a.Goto(loop)
	a.Bind(done)
	a.LoadI(0)
	a.Ret()
	a.MustBuild()
	cfg := testConfig()
	cfg.HeapBytes = 2 << 20 // 4 KB objects * 4000 = 16 MB churn in a 2 MB heap
	vm, th := runMain(t, cfg, p, "Churn", "main")
	if got := int32(uint32(th.Result)); got != 4000 {
		t.Errorf("got %d", got)
	}
	if vm.GCCount == 0 {
		t.Error("expected at least one GC")
	}
	vm.Heap.checkInvariants()
}

func TestGCPreservesReachableGraph(t *testing.T) {
	p := newProg()
	node := p.NewClass("Node", nil)
	next := node.NewField("next", classfile.Ref)
	val := node.NewField("val", classfile.Int)

	c := p.NewClass("Main", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	// Build a 50-node list, churn garbage to force GC, then sum the list.
	loop1, done1 := a.NewLabel(), a.NewLabel()
	a.Null()
	a.StoreRef(0) // head
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop1)
	a.LoadI(1)
	a.ConstI(50)
	a.IfICmpGE(done1)
	a.New(node)
	a.StoreRef(2)
	a.LoadRef(2)
	a.LoadI(1)
	a.PutField(val)
	a.LoadRef(2)
	a.LoadRef(0)
	a.PutField(next)
	a.LoadRef(2)
	a.StoreRef(0)
	a.Inc(1, 1)
	a.Goto(loop1)
	a.Bind(done1)

	loop2, done2 := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop2)
	a.LoadI(1)
	a.ConstI(3000)
	a.IfICmpGE(done2)
	a.ConstI(1024)
	a.NewArray(classfile.ElemInt)
	a.Pop()
	a.Inc(1, 1)
	a.Goto(loop2)
	a.Bind(done2)

	// sum = 0; while (head != null) { sum += head.val; head = head.next }
	sumLoop, sumDone := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(3)
	a.Bind(sumLoop)
	a.LoadRef(0)
	a.IfNull(sumDone)
	a.LoadI(3)
	a.LoadRef(0)
	a.GetField(val)
	a.AddI()
	a.StoreI(3)
	a.LoadRef(0)
	a.GetField(next)
	a.StoreRef(0)
	a.Goto(sumLoop)
	a.Bind(sumDone)
	a.LoadI(3)
	a.Ret()
	a.MustBuild()

	cfg := testConfig()
	cfg.HeapBytes = 2 << 20
	vm, th := runMain(t, cfg, p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 1225 { // sum 0..49
		t.Errorf("list sum after GC: %d, want 1225", got)
	}
	if vm.GCCount == 0 {
		t.Error("expected GC pressure")
	}
}

func TestInstanceOfAndCheckCast(t *testing.T) {
	p := newProg()
	base := p.NewClass("Base", nil)
	sub := p.NewClass("Sub", base)
	other := p.NewClass("Other", nil)

	c := p.NewClass("Main", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	// new Sub() instanceof Base (1) + new Other() instanceof Base (0)*10
	a.New(sub)
	a.InstanceOf(base)
	a.New(other)
	a.InstanceOf(base)
	a.ConstI(10)
	a.MulI()
	a.AddI()
	a.Ret()
	a.MustBuild()
	_, th := runMain(t, testConfig(), p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 1 {
		t.Errorf("instanceof: %d", got)
	}

	p2 := newProg()
	base2 := p2.NewClass("Base", nil)
	other2 := p2.NewClass("Other", nil)
	c2 := p2.NewClass("Main", nil)
	m2 := c2.NewMethod("main", classfile.FlagStatic, classfile.Void)
	a2 := m2.Asm()
	a2.New(other2)
	a2.CheckCast(base2)
	a2.Pop()
	a2.RetVoid()
	a2.MustBuild()
	vm2, err := New(testConfig(), p2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm2.RunMain("Main", "main"); err == nil ||
		!strings.Contains(err.Error(), "ClassCastException") {
		t.Errorf("want ClassCastException, got %v", err)
	}
}

func TestSwitchExecution(t *testing.T) {
	p := newProg()
	c := p.NewClass("Sw", nil)
	pick := c.NewMethod("pick", classfile.FlagStatic, classfile.Int, classfile.Int)
	{
		a := pick.Asm()
		c0, c1, def := a.NewLabel(), a.NewLabel(), a.NewLabel()
		a.LoadI(0)
		a.TableSwitch(5, def, c0, c1)
		a.Bind(c0)
		a.ConstI(100)
		a.Ret()
		a.Bind(c1)
		a.ConstI(200)
		a.Ret()
		a.Bind(def)
		a.ConstI(-1)
		a.Ret()
		a.MustBuild()
	}
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	// pick(5) + pick(6)*2 + pick(99)  => 100 + 400 - 1 = 499
	a.ConstI(5)
	a.InvokeStatic(pick)
	a.ConstI(6)
	a.InvokeStatic(pick)
	a.ConstI(2)
	a.MulI()
	a.AddI()
	a.ConstI(99)
	a.InvokeStatic(pick)
	a.AddI()
	a.Ret()
	a.MustBuild()
	_, th := runMain(t, testConfig(), p, "Sw", "main")
	if got := int32(uint32(th.Result)); got != 499 {
		t.Errorf("got %d", got)
	}
}

func TestAdaptiveCacheControllerRebalances(t *testing.T) {
	// Start compress-like pressure (huge data working set, tiny code)
	// with a deliberately wrong split: the controller must grow the data
	// cache at the code cache's expense, and the program must stay
	// correct across the resizes.
	p := newProg()
	c := p.NewClass("Mem", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int).
		Annotate(classfile.AnnRunOnSPE)
	a := m.Asm()
	// int[] big = new int[64K]; stride-walk it many times; sum.
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstI(1 << 16)
	a.NewArray(classfile.ElemInt)
	a.StoreRef(0)
	a.ConstI(0)
	a.StoreI(1) // i
	a.ConstI(0)
	a.StoreI(2) // sum
	a.Bind(loop)
	a.LoadI(1)
	a.ConstI(150000)
	a.IfICmpGE(done)
	// idx = (i * 7919) & 0xffff  (pseudo-random walk)
	a.LoadI(1)
	a.ConstI(7919)
	a.MulI()
	a.ConstI(0xffff)
	a.AndI()
	a.StoreI(3)
	a.LoadRef(0)
	a.LoadI(3)
	a.LoadI(1)
	a.AStore(classfile.ElemInt)
	a.LoadI(2)
	a.LoadRef(0)
	a.LoadI(3)
	a.ALoad(classfile.ElemInt)
	a.AddI()
	a.StoreI(2)
	a.Inc(1, 1)
	a.Goto(loop)
	a.Bind(done)
	a.LoadI(2)
	a.Ret()
	a.MustBuild()

	cfg := testConfig()
	cfg.Machine.Topology = cell.PS3Topology(1)
	cfg.DataCache.Size = 24 << 10 // wrong split on purpose
	cfg.CodeCache.Size = 168 << 10
	cfg.AdaptiveCaches = true
	cfg.AdaptiveIntervalCycles = 300000

	vmach, th := runMain(t, cfg, p, "Mem", "main")
	if th.Trap != nil {
		t.Fatal(th.Trap)
	}
	if vmach.AdaptiveResizes(0) == 0 {
		t.Fatal("controller never resized")
	}
	dataKB, codeKB := vmach.CacheSplit(0)
	if dataKB <= 24<<10 {
		t.Errorf("data cache should have grown: %d/%d", dataKB>>10, codeKB>>10)
	}

	// Same program without the controller must produce the same result.
	cfg2 := cfg
	cfg2.AdaptiveCaches = false
	_, th2 := runMain(t, cfg2, buildSameMem(t), "Mem", "main")
	if th.Result != th2.Result {
		t.Errorf("adaptive run changed the answer: %d vs %d", th.Result, th2.Result)
	}
}

// buildSameMem rebuilds the TestAdaptiveCacheControllerRebalances
// program (programs are single-use once resolved).
func buildSameMem(t *testing.T) *classfile.Program {
	t.Helper()
	p := newProg()
	c := p.NewClass("Mem", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int).
		Annotate(classfile.AnnRunOnSPE)
	a := m.Asm()
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstI(1 << 16)
	a.NewArray(classfile.ElemInt)
	a.StoreRef(0)
	a.ConstI(0)
	a.StoreI(1)
	a.ConstI(0)
	a.StoreI(2)
	a.Bind(loop)
	a.LoadI(1)
	a.ConstI(150000)
	a.IfICmpGE(done)
	a.LoadI(1)
	a.ConstI(7919)
	a.MulI()
	a.ConstI(0xffff)
	a.AndI()
	a.StoreI(3)
	a.LoadRef(0)
	a.LoadI(3)
	a.LoadI(1)
	a.AStore(classfile.ElemInt)
	a.LoadI(2)
	a.LoadRef(0)
	a.LoadI(3)
	a.ALoad(classfile.ElemInt)
	a.AddI()
	a.StoreI(2)
	a.Inc(1, 1)
	a.Goto(loop)
	a.Bind(done)
	a.LoadI(2)
	a.Ret()
	a.MustBuild()
	return p
}

func TestStringBuilderRoundTrip(t *testing.T) {
	p := newProg()
	sb := p.Lookup("java/lang/StringBuilder")
	sys := p.Lookup("java/lang/System")
	c := p.NewClass("SB", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Void)
	a := m.Asm()
	// StringBuilder b = new; init; append("x=").appendInt(-4096).appendChar('!')
	a.New(sb)
	a.StoreRef(0)
	a.LoadRef(0)
	a.InvokeVirtual(sb.MethodByName("init"))
	a.LoadRef(0)
	a.Str("x=")
	a.InvokeVirtual(sb.MethodByName("appendStr"))
	a.ConstI(-4096)
	a.InvokeVirtual(sb.MethodByName("appendInt"))
	a.ConstI('!')
	a.InvokeVirtual(sb.MethodByName("appendChar"))
	a.InvokeVirtual(sb.MethodByName("toString"))
	a.InvokeStatic(sys.MethodByName("println"))
	a.RetVoid()
	a.MustBuild()
	vmach, _ := runMain(t, testConfig(), p, "SB", "main")
	if got := vmach.Output(); got != "x=-4096!\n" {
		t.Errorf("output %q", got)
	}
}

func TestStringBuilderGrowth(t *testing.T) {
	// Appending 100 digits must cross the initial 16-char capacity
	// several times (exercising ensure + arraycopy).
	p := newProg()
	sb := p.Lookup("java/lang/StringBuilder")
	str := p.Lookup("java/lang/String")
	c := p.NewClass("SBG", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	loop, done := a.NewLabel(), a.NewLabel()
	a.New(sb)
	a.StoreRef(0)
	a.LoadRef(0)
	a.InvokeVirtual(sb.MethodByName("init"))
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop)
	a.LoadI(1)
	a.ConstI(100)
	a.IfICmpGE(done)
	a.LoadRef(0)
	a.ConstI('0')
	a.LoadI(1)
	a.ConstI(10)
	a.RemI()
	a.AddI()
	a.InvokeVirtual(sb.MethodByName("appendChar"))
	a.Pop()
	a.Inc(1, 1)
	a.Goto(loop)
	a.Bind(done)
	a.LoadRef(0)
	a.InvokeVirtual(sb.MethodByName("toString"))
	a.InvokeVirtual(str.MethodByName("length"))
	a.Ret()
	a.MustBuild()
	_, th := runMain(t, testConfig(), p, "SBG", "main")
	if got := int32(uint32(th.Result)); got != 100 {
		t.Errorf("length %d", got)
	}
}
