package vm

import (
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// fatAccel is a test-only kind modelling an accelerator with a larger
// scratchpad and its own software-cache split, overriding the global
// configuration purely from its spec (registered once per test binary).
var fatAccel = isa.Register(isa.KindSpec{
	Name:            "FAT",
	NewCosts:        isa.SPECosts,
	LocalStore:      true,
	MemAccessCycles: 30,
	LocalStoreBytes: 384 << 10,
	DataCacheBytes:  200 << 10,
	CodeCacheBytes:  120 << 10,
})

// TestKindSpecCacheOverrides boots a machine mixing a default SPE with
// the override kind: the SPE keeps the global cache split, the override
// kind gets its spec's, and code pinned to the new kind still runs.
func TestKindSpecCacheOverrides(t *testing.T) {
	cfg := testConfig()
	cfg.Machine.Topology = cell.Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 1}, {Kind: fatAccel, Count: 1},
	}
	cfg.Policy = FixedPolicy{Kind: fatAccel}

	p := newProg()
	c := p.NewClass("Loop", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(0)
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop)
	a.LoadI(1)
	a.ConstI(100)
	a.IfICmpGE(done)
	a.LoadI(0)
	a.LoadI(1)
	a.AddI()
	a.StoreI(0)
	a.Inc(1, 1)
	a.Goto(loop)
	a.Bind(done)
	a.LoadI(0)
	a.Ret()
	a.MustBuild()

	vm, th := runMain(t, cfg, p, "Loop", "main")
	if got := int32(uint32(th.Result)); got != 4950 {
		t.Errorf("result on the override kind = %d, want 4950", got)
	}
	if vm.Machine.CoresOf(fatAccel)[0].Stats.Instrs == 0 {
		t.Error("pinned work never ran on the override kind")
	}

	// Local-store cores in topology order: the SPE (ordinal 0) keeps the
	// global split, the override kind (ordinal 1) carries its own.
	d0, c0 := vm.CacheSplit(0)
	if d0 != cfg.DataCache.Size || c0 != cfg.CodeCache.Size {
		t.Errorf("SPE split = %d/%d, want the global %d/%d", d0, c0, cfg.DataCache.Size, cfg.CodeCache.Size)
	}
	d1, c1 := vm.CacheSplit(1)
	if d1 != 200<<10 || c1 != 120<<10 {
		t.Errorf("override split = %d/%d, want 200K/120K", d1, c1)
	}
	if got := len(vm.Machine.CoresOf(fatAccel)[0].LS); got != 384<<10 {
		t.Errorf("override local store = %d, want 384K", got)
	}
}
