// Package vm is Hera-JVM's runtime system: the object model and heap in
// simulated main memory, the mark-and-sweep stop-the-world garbage
// collector (which runs only on the service core, as in the paper's
// evaluation configuration), green Java threads placed onto the
// machine's cores by drain-time-weighted pickCore and driven by the
// pluggable internal/sched schedulers, transparent cross-kind thread
// migration (policy-driven at call boundaries, and scheduler-driven
// cost-gated migration of queued threads via the OnMigrate hook),
// monitors and volatiles with the local-store cache purge/flush
// coherence hooks, the accelerator->service-core syscall proxy, and the
// built-in subset of the Java library.
package vm

import (
	"fmt"
	"sort"

	"herajvm/internal/isa"
	"herajvm/internal/mem"
)

// Ref is a heap reference: the main-memory address of an object header.
// The null reference is 0.
type Ref = uint32

// Heap manages the Java heap region of main memory with a first-fit
// free-list allocator. It is non-moving: the mark-and-sweep collector
// rebuilds the free list from the gaps between survivors.
type Heap struct {
	main  *mem.Main
	start mem.Addr
	end   mem.Addr

	free []span // sorted by address
	// objects maps every live allocation to its size.
	objects map[Ref]uint32

	// Allocs, Frees and BytesAllocated are lifetime counters.
	Allocs         uint64
	BytesAllocated uint64
	GCs            uint64
}

type span struct {
	addr mem.Addr
	size uint32
}

// NewHeap creates a heap over [start, end).
func NewHeap(main *mem.Main, start, end mem.Addr) *Heap {
	return &Heap{
		main:    main,
		start:   start,
		end:     end,
		free:    []span{{addr: start, size: end - start}},
		objects: make(map[Ref]uint32),
	}
}

// Size returns the heap capacity in bytes.
func (h *Heap) Size() uint32 { return h.end - h.start }

// LiveBytes returns the sum of live allocation sizes.
func (h *Heap) LiveBytes() uint32 {
	var n uint32
	for _, s := range h.objects {
		n += s
	}
	return n
}

// LiveObjects returns the number of live allocations.
func (h *Heap) LiveObjects() int { return len(h.objects) }

// Alloc reserves size bytes (16-byte aligned) and zeroes them. It
// returns 0 when the heap is exhausted (the VM then runs a GC and
// retries).
func (h *Heap) Alloc(size uint32) Ref {
	size = (size + 15) &^ 15
	for i := range h.free {
		if h.free[i].size >= size {
			addr := h.free[i].addr
			h.free[i].addr += size
			h.free[i].size -= size
			if h.free[i].size == 0 {
				h.free = append(h.free[:i], h.free[i+1:]...)
			}
			h.main.Zero(addr, size)
			h.objects[addr] = size
			h.Allocs++
			h.BytesAllocated += uint64(size)
			return addr
		}
	}
	return 0
}

// Contains reports whether addr is a live allocation's base address.
func (h *Heap) Contains(addr Ref) bool {
	_, ok := h.objects[addr]
	return ok
}

// SizeOf returns the allocation size of a live object.
func (h *Heap) SizeOf(addr Ref) uint32 { return h.objects[addr] }

// Sweep retains exactly the marked allocations and rebuilds the free
// list from the gaps. It returns the number of objects and bytes freed.
func (h *Heap) Sweep(marked map[Ref]bool) (objects int, bytes uint64) {
	live := make([]span, 0, len(marked))
	for addr, size := range h.objects {
		if marked[addr] {
			live = append(live, span{addr: addr, size: size})
		} else {
			objects++
			bytes += uint64(size)
			delete(h.objects, addr)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].addr < live[j].addr })

	h.free = h.free[:0]
	cursor := h.start
	for _, s := range live {
		if s.addr > cursor {
			h.free = append(h.free, span{addr: cursor, size: s.addr - cursor})
		}
		cursor = s.addr + s.size
	}
	if cursor < h.end {
		h.free = append(h.free, span{addr: cursor, size: h.end - cursor})
	}
	h.GCs++
	return objects, bytes
}

// checkInvariants panics if the free list overlaps live objects or falls
// outside the heap; tests call it after stress sequences.
func (h *Heap) checkInvariants() {
	for _, f := range h.free {
		if f.addr < h.start || f.addr+f.size > h.end {
			panic(fmt.Sprintf("heap: free span [%#x,%#x) outside heap", f.addr, f.addr+f.size))
		}
		for addr, size := range h.objects {
			if f.addr < addr+size && addr < f.addr+f.size {
				panic(fmt.Sprintf("heap: free span [%#x,%#x) overlaps object %#x+%d",
					f.addr, f.addr+f.size, addr, size))
			}
		}
	}
}

// Object accessors: every object/array lives in main memory with the
// layout of isa's layout constants.

// WriteHeader initialises an object header.
func (h *Heap) WriteHeader(obj Ref, classID int, length uint32) {
	h.main.Write32(obj+isa.HeaderClassOff, uint32(classID))
	h.main.Write32(obj+isa.HeaderFlagsOff, 0)
	h.main.Write32(obj+isa.HeaderLockOff, 0)
	h.main.Write32(obj+isa.HeaderLengthOff, length)
}

// ClassIDOf reads the class ID from an object header.
func (h *Heap) ClassIDOf(obj Ref) int { return int(h.main.Read32(obj + isa.HeaderClassOff)) }

// LengthOf reads an array length from the header.
func (h *Heap) LengthOf(obj Ref) uint32 { return h.main.Read32(obj + isa.HeaderLengthOff) }

// LockWord reads the monitor word.
func (h *Heap) LockWord(obj Ref) uint32 { return h.main.Read32(obj + isa.HeaderLockOff) }

// SetLockWord stores the monitor word.
func (h *Heap) SetLockWord(obj Ref, w uint32) { h.main.Write32(obj+isa.HeaderLockOff, w) }

// FieldSlot reads instance field slot i directly (runtime-internal use;
// Java code goes through the executor's cached paths).
func (h *Heap) FieldSlot(obj Ref, slot int) uint64 {
	return h.main.Read64(obj + isa.FieldOffset(slot))
}

// SetFieldSlot writes instance field slot i directly.
func (h *Heap) SetFieldSlot(obj Ref, slot int, v uint64) {
	h.main.Write64(obj+isa.FieldOffset(slot), v)
}
