package vm

import (
	"bytes"
	"encoding/hex"
	"errors"
	"reflect"
	"testing"
)

// sampleImage hand-builds a small JobImage exercising every wire-format
// feature: objects with all three payload shapes, statics, class locks,
// a trapped thread, a blocked thread with joiners, and a held monitor.
// Empty sequences are nil — the decoder normalizes to nil, so the
// round-trip test can require reflect.DeepEqual.
func sampleImage() *JobImage {
	return &JobImage{
		Name:       "sample",
		AdmittedAt: 12345,
		Deadline:   99999,
		FrozenAt:   54321,
		Verdict:    Verdict(1),
		Stats: JobStats{Migrations: 2, Steals: 1, Compiles: 7, GCPauses: 3, GCCycles: 4096,
			KernelLaunches: 1, KernelWorkers: 6, KernelDMABytes: 36864},
		Output: []byte("partial output\n"),
		Policy: ImagePolicy{Tag: policyMonitoring, FPThreshold: 0.25, MemThreshold: 0.5, MinCycles: 1000},
		Objects: []ImageObject{
			{Class: "Counter", Slots: []uint64{41, 2}},
			{Class: "[I", Elem: 1, Length: 3, Data: []byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0}},
			{Class: "[LCounter;", Elem: 0, Length: 2, Elems: []uint32{1, 0}},
		},
		Statics:    []ImageStatics{{Class: "Snap", Slots: []uint64{19900}}},
		ClassLocks: []ImageClassLock{{Class: "Snap", Obj: 3}},
		Threads: []ImageThread{
			{
				Name: "main", Kind: "ppe", JavaObj: 0,
				WaitCount: -1, Result: 77, HasResult: true,
				Joiners: []int32{1},
				Frames: []ImageFrame{
					{Marker: true, ReturnKind: "ppe"},
					{
						Class: "Snap", Method: 0, BC: 12,
						Locals: []uint64{1, 2, 3}, LocalRefs: []bool{true, false, false},
						Stack: []uint64{9}, StackRefs: []bool{false},
						SyncObj: 1,
					},
				},
			},
			{
				Name: "w1", Blocked: true, ReadyDelay: 64, Kind: "spe", JavaObj: 3,
				PendingHasVal: true, PendingIsRef: true, PendingVal: 2,
				Migrations: 1, CooldownLeft: 500,
				Trap:      &TrapError{Kind: "npe", Detail: "null field", Method: "Worker.run", PC: 4},
				WaitCount: -1,
				Frames:    []ImageFrame{{Class: "Worker", Method: 1, BC: 0}},
			},
		},
		Monitors: []ImageMonitor{{Obj: 1, Owner: 0, Count: 2, Blocked: []int32{1}, Waiters: nil}},
	}
}

// TestImageRoundTrip: encode→decode reproduces the image exactly, and
// re-encoding the decoded image reproduces the bytes exactly.
func TestImageRoundTrip(t *testing.T) {
	img := sampleImage()
	enc := EncodeJobImage(img)
	got, err := DecodeJobImage(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(img, got) {
		t.Errorf("round trip changed the image:\n got %+v\nwant %+v", got, img)
	}
	if re := EncodeJobImage(got); !bytes.Equal(enc, re) {
		t.Error("re-encoding the decoded image changed the bytes")
	}
}

// TestImageRoundTripFrozen: same property for a real captured image.
func TestImageRoundTripFrozen(t *testing.T) {
	_, _, img, ok := freezeAt(t, 80_000)
	if !ok {
		t.Skip("job completed before the freeze point")
	}
	enc := EncodeJobImage(img)
	got, err := DecodeJobImage(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if re := EncodeJobImage(got); !bytes.Equal(enc, re) {
		t.Error("re-encoding the decoded image changed the bytes")
	}
	// The decoded image must rehydrate just like the original.
	dst, err := New(testConfig(), buildSnapProg())
	if err != nil {
		t.Fatal(err)
	}
	dj, err := dst.RehydrateJob(got, 0)
	if err != nil {
		t.Fatalf("rehydrate decoded image: %v", err)
	}
	if err := dst.WaitJob(dj); err != nil {
		t.Fatal(err)
	}
	if res := int32(uint32(dj.Root().Result)); res != snapExpected() {
		t.Errorf("checksum through the codec = %d, want %d", res, snapExpected())
	}
}

// imageGoldenHex pins the version-2 wire format of sampleImage. If
// TestImageGoldenBytes fails, the format changed: bump imageVersion and
// regenerate — do NOT edit the golden to paper over an accidental
// format break.
const imageGoldenHex = "484a494d02000600000073616d706c6539300000000000009f8601000000000031d400000000000001020000000000000001000000000000000700000000000000030000000000000000100000000000000100000000000000060000000000000000900000000000000f0000007061727469616c206f75747075740a0300000000000000000000d03f000000000000e03fe8030000000000000300000007000000436f756e746572000000000000000000000000000200000029000000000000000200000000000000020000005b4901030000000c00000001000000020000000300000000000000000000000a0000005b4c436f756e7465723b000200000000000000020000000100000000000000000000000100000004000000536e617001000000bc4d0000000000000100000004000000536e61700300000002000000040000006d61696e00000000000000000000030000007070650000000000000000000000000000ffffffff0000000000000000000000000000000000000000000000004d00000000000000010001000000010000000200000001030000007070650000000000000000000000000000000000000000000000000000000000000000000000000004000000536e6170000000000c000000030000000100000000000000020000000000000003000000000000000300000001000001000000090000000000000001000000000100000002000000773100014000000000000000030000007370650300000001010200000000000000ffffffff01000000000000000000000000000000f40100000000000000000000000000000001030000006e70650a0000006e756c6c206669656c640a000000576f726b65722e72756e040000000000000001000000000000000006000000576f726b65720100000000000000000000000000000000000000000000000000000001000000010000000000000002000000010000000100000000000000"

func TestImageGoldenBytes(t *testing.T) {
	enc := EncodeJobImage(sampleImage())
	want, err := hex.DecodeString(imageGoldenHex)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, want) {
		t.Errorf("wire format drifted from the version-%d golden.\n got %s\nwant %s",
			imageVersion, hex.EncodeToString(enc), imageGoldenHex)
	}
}

// TestDecodeRejectsCorruptInput: every malformed input errors with
// ErrBadImage — never a panic, never a silent partial decode.
func TestDecodeRejectsCorruptInput(t *testing.T) {
	valid := EncodeJobImage(sampleImage())

	// Truncation at every prefix length.
	for n := 0; n < len(valid); n++ {
		if _, err := DecodeJobImage(valid[:n]); !errors.Is(err, ErrBadImage) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrBadImage", n, err)
		}
	}

	mutants := map[string]func([]byte) []byte{
		"bad magic": func(b []byte) []byte {
			b[0] = 'X'
			return b
		},
		"bad version": func(b []byte) []byte {
			b[4], b[5] = 0xff, 0xff
			return b
		},
		"trailing bytes": func(b []byte) []byte {
			return append(b, 0xde, 0xad)
		},
		"huge name length": func(b []byte) []byte {
			// The job-name length sits right after magic+version.
			b[6], b[7], b[8], b[9] = 0xff, 0xff, 0xff, 0xff
			return b
		},
	}
	for name, mutate := range mutants {
		b := mutate(append([]byte(nil), valid...))
		if _, err := DecodeJobImage(b); !errors.Is(err, ErrBadImage) {
			t.Errorf("%s: err = %v, want ErrBadImage", name, err)
		}
	}

	// Every u32 in the buffer maxed out in turn: no count may drive a
	// giant allocation or a panic.
	for off := 6; off+4 <= len(valid); off++ {
		b := append([]byte(nil), valid...)
		b[off], b[off+1], b[off+2], b[off+3] = 0xff, 0xff, 0xff, 0xff
		img, err := DecodeJobImage(b)
		if err == nil && img == nil {
			t.Fatalf("offset %d: nil image with nil error", off)
		}
	}
}

func FuzzDecodeJobImage(f *testing.F) {
	f.Add(EncodeJobImage(sampleImage()))
	f.Add(EncodeJobImage(&JobImage{}))
	short := EncodeJobImage(sampleImage())
	f.Add(short[:len(short)/2])
	f.Add([]byte("HJIM"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := DecodeJobImage(data)
		if err != nil {
			if img != nil {
				t.Fatal("non-nil image alongside an error")
			}
			return
		}
		// Anything that decodes must re-encode to the identical bytes —
		// the format has a single canonical encoding per image.
		re := EncodeJobImage(img)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in %x\nout %x", data, re)
		}
	})
}

// TestRehydrateNilAndTinyImages: decoder-accepted but structurally
// empty images are rejected by RehydrateJob, not crashed on.
func TestRehydrateNilAndTinyImages(t *testing.T) {
	v, err := New(testConfig(), buildSnapProg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.RehydrateJob(nil, 0); err == nil {
		t.Error("rehydrate of nil image succeeded")
	}
	if _, err := v.RehydrateJob(&JobImage{}, 0); err == nil {
		t.Error("rehydrate of empty image succeeded")
	}
}
