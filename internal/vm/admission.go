package vm

import (
	"errors"
	"fmt"

	"herajvm/internal/cell"
	"herajvm/internal/isa"
	"herajvm/internal/sched"
)

// ErrDeadlock is the machine-level failure the driving loop reports
// when live threads remain but none is runnable. It is wrapped (not
// returned bare) so callers distinguish a dead machine from a per-job
// trap with errors.Is — a trapped job still completed and carries a
// Result; a deadlocked machine completes nothing.
var ErrDeadlock = errors.New("deadlock: live threads but none runnable")

// Verdict is the admission pipeline's decision for one submitted job.
type Verdict uint8

const (
	// VerdictAdmitted means the job was accepted and is predicted to
	// start promptly: the best core of its root thread's kind has no
	// backlog past the job's arrival.
	VerdictAdmitted Verdict = iota
	// VerdictDelayed means the job was accepted but will queue: the
	// scheduler's drain estimate for its root's pool already exceeds
	// the arrival cycle. Delayed jobs run exactly like admitted ones;
	// the verdict exists so an open-loop caller can see queueing build
	// before deadlines start being missed.
	VerdictDelayed
	// VerdictShed means the job was refused at admission — the bounded
	// queue was full, or the drain-predicted completion exceeded the
	// job's deadline — and will never run. A shed job still occupies
	// its slot in the (arrival, sequence) admission order and returns a
	// Result with Shed set, so replaying a submission script reproduces
	// the same verdicts in the same order.
	VerdictShed
)

var verdictNames = [...]string{"admitted", "delayed", "shed"}

// String returns the verdict name.
func (v Verdict) String() string { return verdictNames[v] }

// AdmissionConfig tunes the admission pipeline that decides each
// SubmitJob's verdict. The zero value admits everything — the closed
// submission contract every pre-admission caller relied on.
type AdmissionConfig struct {
	// MaxPending bounds the admission queue: the number of jobs
	// admitted but not yet completed. A submission arriving with
	// MaxPending jobs still in flight is shed regardless of its
	// deadline — the queue-depth backstop that keeps a burst from
	// swamping the deadline math itself. 0 means unbounded.
	MaxPending int

	// Shed enables deadline-based load shedding: a job whose
	// drain-predicted completion exceeds its absolute deadline is
	// refused at admission instead of admitted to miss it. Jobs
	// without a deadline are never deadline-shed. False admits
	// deadline-carrying jobs unconditionally (their DeadlineMet still
	// reports honestly).
	Shed bool
}

// JobSpec describes one submission to a booted VM — the vm-level
// mirror of core.JobRequest.
type JobSpec struct {
	// Name labels the job in reports (default Class.Method).
	Name string
	// Class and Method name the static entry method.
	Class  string
	Method string
	// Args are the entry method's arguments; ArgRefs marks which are
	// references (nil = none are).
	Args    []uint64
	ArgRefs []bool
	// Arrival is the cycle the job's root thread becomes runnable,
	// floored at the machine's current clock.
	Arrival cell.Clock
	// Deadline is the job's completion deadline in cycles relative to
	// its admission (0 = none): the job should complete by
	// AdmittedAt + Deadline. The deadline feeds the admission verdict
	// (when Config.Admission.Shed is set) and the completed job's
	// DeadlineMet flag.
	Deadline cell.Clock
	// Policy optionally overrides the VM-wide placement policy for
	// every thread of this job.
	Policy Policy
}

// PendingJobs reports the admission queue depth: jobs admitted but not
// yet completed. It is part of the probe surface a cluster dispatcher
// reads between epoch barriers.
func (vm *VM) PendingJobs() int { return vm.pending }

// LiveThreads reports the number of live (unterminated) threads on the
// machine — zero means driving the VM is a no-op. A cluster drain loop
// polls it to know when a shard has gone idle.
func (vm *VM) LiveThreads() int { return vm.liveCount }

// predictCompletion is the admission probe shared by the per-VM
// verdict and the cluster dispatcher: the cycle a job arriving at
// arrival (already floored at the machine clock) is predicted to
// complete, given that its root thread lands on kind.
//
// The job is predicted to start no earlier than the worst pool's best
// drain across every kind the machine has (a job's threads must
// ultimately drain through the machine's most backed-up pool — the
// serve workloads park their mains in join while annotated workers
// saturate the accelerators, so the root's own pool is routinely idle
// while the machine is overloaded) and then to take the observed
// per-job service time for itself plus each job already in flight
// ahead of it. The service term is the VM's completion EWMA — before
// any job has completed it degrades to one predicted scheduling round,
// so a cold machine admits optimistically and the estimator sharpens
// as the session serves. rootDrain is the drain estimate of the best
// core of the root's own pool — the queueing signal the Delayed
// verdict reads.
func (vm *VM) predictCompletion(kind isa.CoreKind, arrival cell.Clock) (completion, rootDrain cell.Clock) {
	_, rootDrain = sched.BestCore(vm.scheduler, vm.kindCores[kind])
	congestion := rootDrain
	var round uint64
	for _, k := range vm.presentKinds {
		pool := vm.kindCores[k]
		pos, drain := sched.BestCore(vm.scheduler, pool)
		if drain > congestion {
			congestion = drain
			round = vm.taskCost(nil, pool[pos])
		}
	}
	start := congestion
	if arrival > start {
		start = arrival
	}
	service := vm.jobServiceEWMA * uint64(vm.pending+1)
	if service == 0 {
		// Cold start: no completion observed yet; one scheduling
		// round is the only prediction the scheduler can back.
		service = round
		if service == 0 {
			service = vm.taskCost(nil, vm.kindCores[kind][0])
		}
	}
	return start + service, rootDrain
}

// ProbeJob evaluates the admission probe for a hypothetical submission
// without admitting anything: it resolves the spec's entry method,
// floors the arrival at the machine clock, asks the placement policy
// where the root thread would land, and returns the drain-estimate +
// service-EWMA predicted completion cycle plus whether the bounded
// pending queue has room (always true when MaxPending is 0). A cluster
// dispatcher calls this on every shard at an epoch barrier and routes
// the job to the lowest predicted completion; the probe reads only
// scheduler state, so probing is side-effect free and any number of
// probes replay identically.
func (vm *VM) ProbeJob(spec JobSpec) (completion cell.Clock, room bool, err error) {
	cls := vm.Prog.Lookup(spec.Class)
	if cls == nil {
		return 0, false, fmt.Errorf("vm: no class %q", spec.Class)
	}
	m := cls.MethodByName(spec.Method)
	if m == nil {
		return 0, false, fmt.Errorf("vm: no method %s.%s", spec.Class, spec.Method)
	}
	arrival := spec.Arrival
	if now := vm.Machine.MaxClock(); arrival < now {
		arrival = now
	}
	pol := spec.Policy
	if pol == nil {
		pol = vm.policy
	}
	kind := pol.PlaceThread(vm, m)
	if !vm.Machine.HasKind(kind) {
		kind = vm.serviceKind()
	}
	adm := vm.Cfg.Admission
	room = adm.MaxPending == 0 || vm.pending < adm.MaxPending
	completion, _ = vm.predictCompletion(kind, arrival)
	return completion, room, nil
}

// admissionVerdict decides a submission's fate from the scheduler's
// drain estimates. kind is where the placement policy would put the
// job's root thread; arrival is already floored at the machine clock;
// deadline is absolute (0 = none).
//
// The probe asks two questions. Start: the root pool's best drain —
// later than the arrival means the job queues (VerdictDelayed).
// Completion: predictCompletion's drain + service-EWMA estimate. When
// shedding is enabled and predicted completion exceeds the deadline,
// the job is refused.
func (vm *VM) admissionVerdict(kind isa.CoreKind, arrival, deadline cell.Clock) Verdict {
	adm := vm.Cfg.Admission
	if adm.MaxPending > 0 && vm.pending >= adm.MaxPending {
		return VerdictShed
	}
	completion, rootDrain := vm.predictCompletion(kind, arrival)
	if adm.Shed && deadline != 0 && completion > deadline {
		return VerdictShed
	}
	if rootDrain > arrival {
		return VerdictDelayed
	}
	return VerdictAdmitted
}
