package vm

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"herajvm/internal/cache"
	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
	"herajvm/internal/jit"
	"herajvm/internal/mem"
	"herajvm/internal/profile"
	"herajvm/internal/sched"
)

// Config tunes the runtime system.
type Config struct {
	Machine   cell.Config
	DataCache cache.DataCacheConfig
	CodeCache cache.CodeCacheConfig

	// HeapBytes sizes the Java heap; CodeBytes sizes each target's
	// compiled-code region; BootBytes sizes the boot area (TIBs,
	// statics).
	HeapBytes uint32
	CodeBytes uint32
	BootBytes uint32

	// Quantum is the scheduling timeslice in cycles.
	Quantum uint64

	// Admission tunes the job-admission pipeline: the bounded pending
	// queue and deadline-based load shedding SubmitJob's verdicts come
	// from. The zero value admits every submission.
	Admission AdmissionConfig

	// Scheduler selects the scheduling algorithm by registered name:
	// "calendar" (the default per-core event-calendar scheduler),
	// "steal" (the calendar plus same-kind work stealing) or "migrate"
	// (stealing plus cost-gated cross-kind migration). "" selects the
	// default. See internal/sched.
	Scheduler string

	// StealCycles is the penalty the "steal" and "migrate" schedulers
	// charge per steal: a stolen thread starts on the thief no earlier
	// than the thief's clock plus StealCycles (pulling the thread's
	// context across the bus). Ignored by the default scheduler.
	StealCycles uint64

	// MigrateCycles is the penalty the "migrate" scheduler charges per
	// cross-kind migration, on top of the jit-estimated recompilation
	// cost: packaging a thread's frames and moving them to a core with
	// a different ISA and memory model. Ignored by the other schedulers.
	MigrateCycles uint64

	// MigrateCooldownCycles is the migration-hysteresis window: after
	// any cross-kind migration, the "migrate" scheduler may not
	// re-migrate the thread until its core's clock has advanced past
	// the migration start plus this many cycles, so oscillating load
	// cannot ping-pong a thread between kinds. 0 disables the guard;
	// the default is ~2x MigrateCycles.
	MigrateCooldownCycles uint64

	// JoinWakeCycles is the wake-up latency charged to a joining thread
	// when the thread it waits on terminates (the join hand-off cost).
	JoinWakeCycles uint64

	// MigrationBaseCycles + MigrationWordCycles*args is the cost of
	// packaging a thread's parameters and re-queueing it on the other
	// core type (§3.1's migration points).
	MigrationBaseCycles uint64
	MigrationWordCycles uint64

	// SyscallSendCycles/SyscallServeCycles model the SPE->PPE fast
	// syscall mailbox round trip (§3.2.3).
	SyscallSendCycles  uint64
	SyscallServeCycles uint64

	// GCPauseBase + GCPerObject model collector work on the PPE.
	GCPauseBase uint64
	GCPerObject uint64

	// AdaptiveCaches enables the per-SPE controller that repartitions
	// local store between the data and code caches based on observed
	// miss rates (the paper's §4 future-work proposal). See
	// AdaptiveIntervalCycles and AdaptiveStepKB.
	AdaptiveCaches         bool
	AdaptiveIntervalCycles uint64
	AdaptiveStepKB         int

	// DisableSuperblocks turns off the executor's superblock fast path,
	// forcing per-instruction dispatch everywhere. Simulated results are
	// byte-identical either way (the differential tests pin this); the
	// knob exists for that comparison and for isolating executor bugs.
	// Default false: superblocks are on.
	DisableSuperblocks bool

	// UnsafeNoCoherence disables the SPE software-cache purge/flush at
	// monitor and volatile operations. This breaks the Java Memory Model
	// (ablation A4 measures what the paper's coherence protocol costs);
	// checksums may be wrong with it enabled.
	UnsafeNoCoherence bool

	// Policy decides thread placement; nil means AnnotationPolicy.
	Policy Policy

	// Stdout receives System.out output; nil captures to a buffer.
	Stdout io.Writer
}

// DefaultConfig returns a PS3-like machine with the paper's cache
// defaults.
func DefaultConfig() Config {
	return Config{
		Machine:               cell.DefaultConfig(),
		DataCache:             cache.DefaultDataCacheConfig(),
		CodeCache:             cache.DefaultCodeCacheConfig(),
		HeapBytes:             32 << 20,
		CodeBytes:             6 << 20,
		BootBytes:             1 << 20,
		Quantum:               4000,
		Scheduler:             sched.DefaultName,
		StealCycles:           400,
		MigrateCycles:         600,
		MigrateCooldownCycles: 1200,
		JoinWakeCycles:        100,
		MigrationBaseCycles:   600,
		MigrationWordCycles:   8,
		SyscallSendCycles:     250,
		SyscallServeCycles:    600,
		GCPauseBase:           20000,
		GCPerObject:           80,
		Policy:                nil,
		Stdout:                nil,
	}
}

// classMeta is per-class runtime metadata: where the class's TIB lives
// in main memory (the SPE code cache DMAs it) and the class-lock object
// used by static synchronized methods.
type classMeta struct {
	tibAddr mem.Addr
	tibSize uint32
	lockObj Ref
}

// VM is a booted Hera-JVM instance bound to one simulated machine and
// one resolved program.
type VM struct {
	Cfg     Config
	Prog    *classfile.Program
	Machine *cell.Machine
	Heap    *Heap

	// cores and kindCores are the VM's private, stable iteration order
	// over the machine (the accessors return defensive copies; the
	// scheduler's hot path must not allocate — or be reordered — per
	// step).
	cores     []*cell.Core
	kindCores map[isa.CoreKind][]*cell.Core

	// service is the core hosting the runtime services (GC, the syscall
	// mailbox): the first core, in topology order, of a service-hosting
	// kind. presentKinds lists the machine's kinds in registry order —
	// the candidate set the placement policies choose from.
	service      *cell.Core
	presentKinds []isa.CoreKind
	// minFPScore/minMemScore are the cheapest FP and memory scores over
	// presentKinds: the normalizers the behaviour-aware task-cost
	// predictor prices each kind against (taskCost).
	minFPScore  float64
	minMemScore float64

	compilers map[isa.CoreKind]*jit.Compiler
	// dcaches/ccaches hold each local-store core's software caches,
	// indexed by Core.Index (nil for hardware-cached cores); lsCores
	// lists the local-store core indices in topology order, the ordinal
	// the public cache accessors use.
	dcaches []*cache.DataCache
	ccaches []*cache.CodeCache
	lsCores []int

	staticsBase mem.Addr
	staticRefs  []bool // GC ref map for static slots
	classes     []classMeta
	classByID   []*classfile.Class

	interned map[string]Ref

	threads   []*Thread
	nextTID   int
	byJavaObj map[Ref]*Thread
	// kernelSeq numbers Parallel.forRange launches for worker naming.
	kernelSeq int
	scheduler sched.Scheduler
	liveCount int
	jobs      []*Job
	// pending counts jobs admitted but not yet completed — the
	// admission queue depth the MaxPending backstop bounds.
	pending int
	// curJob is the job whose thread the driving loop is currently
	// executing (or whose submission is being admitted); GC pauses are
	// billed to it. nil outside any job context.
	curJob *Job
	// jobServiceEWMA is a halving EWMA of completed jobs' observed
	// admission-to-completion cycles — the admission pipeline's
	// service-time estimate (0 until the first job completes). It
	// includes queueing delay, which deliberately biases the deadline
	// probe pessimistic under sustained load.
	jobServiceEWMA uint64

	monitors map[Ref]*monitor

	// pinned holds heap references kept alive across allocation bursts
	// whose object graphs are not yet reachable from ordinary roots —
	// RehydrateJob links a transferred graph object by object, and any
	// allocation in the middle may trigger a collection. Scanned as GC
	// roots; empty outside a rehydration.
	pinned []Ref

	natives map[string]*Native

	policy  Policy
	Monitor *profile.Monitor

	// svcBusy serialises the dedicated service-core syscall thread.
	svcBusy cell.Clock

	// sbOff caches Cfg.DisableSuperblocks for the executor's hot loop.
	sbOff bool

	// adapt holds adaptive-cache controller state, indexed by
	// Core.Index (entries for hardware-cached cores are unused).
	adapt []adaptState

	stdout       io.Writer
	outBuf       *bytes.Buffer
	stringCls    *classfile.Class
	threadCls    *classfile.Class
	throwableCls *classfile.Class

	ifaceMethods map[int]*classfile.Method

	// GCCount and GCCycles summarise collector activity.
	GCCount  uint64
	GCCycles uint64
	// GCUnattributedCycles is the slice of GCCycles billed to no job:
	// collections triggered by allocations outside any job context
	// (boot-time interning, threads started through the bare
	// StartThread). Per-job JobStats.GCCycles plus this bucket sum to
	// GCCycles exactly.
	GCUnattributedCycles uint64
}

// New boots a VM: builds the machine, carves main memory, lays out
// statics and TIBs, registers the standard library natives and interns
// nothing yet (strings intern lazily at JIT time).
//
// The program must contain the stdlib classes (use Stdlib to install
// them before declaring application classes) and must NOT be resolved
// yet: New resolves it after the stdlib check.
func New(cfg Config, prog *classfile.Program) (*VM, error) {
	if !prog.Resolved() {
		if err := prog.Resolve(); err != nil {
			return nil, err
		}
	}
	machine, err := cell.NewMachine(cfg.Machine)
	if err != nil {
		return nil, err
	}
	vm := &VM{
		Cfg:          cfg,
		Prog:         prog,
		Machine:      machine,
		compilers:    make(map[isa.CoreKind]*jit.Compiler),
		interned:     make(map[string]Ref),
		byJavaObj:    make(map[Ref]*Thread),
		monitors:     make(map[Ref]*monitor),
		natives:      make(map[string]*Native),
		Monitor:      profile.NewMonitor(),
		ifaceMethods: make(map[int]*classfile.Method),
		sbOff:        cfg.DisableSuperblocks,
	}

	// Carve main memory: the boot area, then one compiled-code region
	// per core kind the topology declares (in registry order — "a method
	// will only be compiled for a particular core architecture if it is
	// to be executed by a thread running on that core type", §3.1, so a
	// kind the machine lacks gets neither region nor compiler), then the
	// heap.
	layout := mem.NewLayout(cfg.Machine.MainMemory, 4096)
	boot, err := layout.Carve("boot", cfg.BootBytes)
	if err != nil {
		return nil, err
	}
	codeRegions := make(map[isa.CoreKind]*mem.Region)
	for _, k := range isa.CoreKinds() {
		if !machine.HasKind(k) {
			continue
		}
		region, err := layout.Carve(strings.ToLower(k.String())+"-code", cfg.CodeBytes)
		if err != nil {
			return nil, err
		}
		codeRegions[k] = region
	}
	heapStart, err := layout.Carve("heap", cfg.HeapBytes)
	if err != nil {
		return nil, err
	}
	vm.Heap = NewHeap(machine.Mem, heapStart.Start, heapStart.End)

	// Statics.
	nslots := prog.StaticSlots()
	vm.staticsBase = boot.MustAlloc(uint32(nslots)*isa.SlotBytes+isa.SlotBytes, 16)
	vm.staticRefs = make([]bool, nslots)
	for _, c := range prog.Classes() {
		for _, f := range c.Statics {
			if f.Type == classfile.Ref {
				vm.staticRefs[f.Slot] = true
			}
		}
	}

	// TIBs: one block per class in the boot region, holding the vtable's
	// method IDs as real words (Figure 3's structures).
	vm.classes = make([]classMeta, len(prog.Classes()))
	vm.classByID = make([]*classfile.Class, len(prog.Classes()))
	for _, c := range prog.Classes() {
		vm.classByID[c.ID] = c
	}
	for _, c := range prog.Classes() {
		size := uint32(16 + 8*len(c.VTable))
		addr := boot.MustAlloc(size, 16)
		machine.Mem.Write32(addr, uint32(c.ID))
		machine.Mem.Write32(addr+4, uint32(len(c.VTable)))
		for i, m := range c.VTable {
			machine.Mem.Write64(addr+8+uint32(i)*8, uint64(m.ID))
		}
		vm.classes[c.ID] = classMeta{tibAddr: addr, tibSize: size}
	}

	// Interface-method table.
	for _, c := range prog.Classes() {
		if !c.IsInterface {
			continue
		}
		for _, m := range c.Methods {
			if m.IfaceID >= 0 {
				vm.ifaceMethods[m.IfaceID] = m
			}
		}
	}

	// Compilers: one baseline JIT per kind present in the topology.
	for k, region := range codeRegions {
		vm.compilers[k] = jit.NewCompiler(k, machine.Mem, region)
	}
	for _, c := range vm.compilers {
		c.InternString = vm.intern
	}

	// Stable core orderings, the service core and the kind candidate set.
	vm.cores = machine.Cores()
	vm.kindCores = make(map[isa.CoreKind][]*cell.Core)
	for _, k := range isa.CoreKinds() {
		vm.kindCores[k] = machine.CoresOf(k)
		if machine.HasKind(k) {
			vm.presentKinds = append(vm.presentKinds, k)
		}
	}
	for i, k := range vm.presentKinds {
		if fp := k.FPScore(); i == 0 || fp < vm.minFPScore {
			vm.minFPScore = fp
		}
		if ms := k.MemScore(); i == 0 || ms < vm.minMemScore {
			vm.minMemScore = ms
		}
	}
	for _, c := range vm.cores {
		if c.Kind.HostsServices() {
			vm.service = c
			break
		}
	}
	if vm.service == nil { // topology validation guarantees one
		return nil, fmt.Errorf("vm: machine %s has no service-hosting core", machine.Describe())
	}

	// Software caches for every local-store core: data cache at the
	// bottom of the local store, code cache above it (the rest models
	// the resident runtime, stacks and the 2 KB TOC, §3.2.2). A kind's
	// spec may override the global cache sizes — a VPU with a larger
	// scratchpad can carry larger caches than the SPEs.
	vm.dcaches = make([]*cache.DataCache, machine.NumCores())
	vm.ccaches = make([]*cache.CodeCache, machine.NumCores())
	for _, c := range vm.cores {
		if !c.Kind.UsesLocalStore() {
			continue
		}
		dcCfg, ccCfg := cfg.DataCache, cfg.CodeCache
		spec := isa.Spec(c.Kind)
		if spec.DataCacheBytes != 0 {
			dcCfg.Size = spec.DataCacheBytes
		}
		if spec.CodeCacheBytes != 0 {
			ccCfg.Size = spec.CodeCacheBytes
		}
		need := uint64(dcCfg.Size) + uint64(ccCfg.Size)
		if need > uint64(len(c.LS)) {
			return nil, fmt.Errorf("vm: %s caches (%d B) exceed local store (%d B)", c, need, len(c.LS))
		}
		vm.dcaches[c.Index] = cache.NewDataCache(dcCfg, c, 0)
		vm.ccaches[c.Index] = cache.NewCodeCache(ccCfg, c, dcCfg.Size)
		vm.lsCores = append(vm.lsCores, c.Index)
	}

	// The scheduler: per-core event calendars behind the pluggable
	// sched.Scheduler interface, selected by Config.Scheduler. The
	// OnSteal/OnMigrate hooks keep the thread->core binding (and the
	// victim's cache publication, and cross-kind frame recompilation)
	// in the VM's hands; CostOf/RecompileCost feed the drain-time
	// placement estimate and the migrate scheduler's cost gate.
	vm.scheduler, err = sched.New(cfg.Scheduler, vm.cores, sched.Options{
		StealCycles:   cfg.StealCycles,
		MigrateCycles: cfg.MigrateCycles,
		OnSteal:       vm.onSteal,
		OnMigrate:     vm.onMigrate,
		CostOf:        vm.taskCost,
		RecompileCost: vm.recompileEstimate,
		Pinned:        func(task sched.Task) bool { return task.(*Thread).pinned },
	})
	if err != nil {
		return nil, err
	}
	vm.adapt = make([]adaptState, machine.NumCores())

	vm.policy = cfg.Policy
	if vm.policy == nil {
		vm.policy = &AnnotationPolicy{}
	}

	vm.stdout = cfg.Stdout
	if vm.stdout == nil {
		vm.outBuf = &bytes.Buffer{}
		vm.stdout = vm.outBuf
	}

	vm.stringCls = prog.Lookup("java/lang/String")
	vm.threadCls = prog.Lookup("java/lang/Thread")
	vm.throwableCls = prog.Lookup("java/lang/Throwable")
	registerBuiltins(vm)
	return vm, nil
}

// Output returns captured System.out output (when no Stdout writer was
// configured).
func (vm *VM) Output() string {
	if vm.outBuf == nil {
		return ""
	}
	return vm.outBuf.String()
}

// Compiler returns the JIT for a core kind (nil when the machine has no
// core of that kind — compilers exist only for kinds the topology
// declares).
func (vm *VM) Compiler(k isa.CoreKind) *jit.Compiler { return vm.compilers[k] }

// DataCacheOf returns the software data cache of the i-th local-store
// core (in topology order; SPE i on the default PS3 shape).
func (vm *VM) DataCacheOf(i int) *cache.DataCache { return vm.dcaches[vm.lsCores[i]] }

// CodeCacheOf returns the software code cache of the i-th local-store
// core (in topology order).
func (vm *VM) CodeCacheOf(i int) *cache.CodeCache { return vm.ccaches[vm.lsCores[i]] }

// coreFor maps (kind, id) to the cell core.
func (vm *VM) coreFor(kind isa.CoreKind, id int) *cell.Core {
	return vm.Machine.CoreAt(kind, id)
}

// intern returns (allocating on first use) the heap String for a Go
// string literal. Interned strings are GC roots.
func (vm *VM) intern(s string) (Ref, error) {
	if r, ok := vm.interned[s]; ok {
		return r, nil
	}
	if vm.stringCls == nil {
		return 0, fmt.Errorf("vm: program has no java/lang/String (missing Stdlib?)")
	}
	arr, err := vm.allocArray(isa.ElemChar, uint32(len(s)))
	if err != nil {
		return 0, err
	}
	for i, ch := range []byte(s) { // ASCII workloads; chars are bytes here
		vm.Machine.Mem.Write16(arr+isa.HeaderBytes+uint32(i)*2, uint16(ch))
	}
	obj, err := vm.allocObject(vm.stringCls)
	if err != nil {
		return 0, err
	}
	vm.Heap.SetFieldSlot(obj, vm.stringCls.FieldByName("value").Slot, uint64(arr))
	vm.Heap.SetFieldSlot(obj, vm.stringCls.FieldByName("count").Slot, uint64(len(s)))
	vm.interned[s] = obj
	return obj, nil
}

// allocObject allocates a zeroed instance of c, running GC on pressure.
func (vm *VM) allocObject(c *classfile.Class) (Ref, error) {
	size := isa.ObjectBytes(c.InstanceSlots)
	return vm.allocRaw(size, c.ID, 0)
}

// allocArray allocates a zeroed array.
func (vm *VM) allocArray(k isa.ElemKind, n uint32) (Ref, error) {
	size := isa.ArrayBytes(k, n)
	// Array class IDs: encode kind in the flags word instead; class ID
	// for arrays is the marker kindArrayBase+kind.
	return vm.allocRaw(size, arrayClassID(k), n)
}

// arrayClassID encodes a primitive/ref array "class" as a negative-space
// ID above all real classes. GC and instanceof special-case them.
const arrayClassBase = 1 << 24

func arrayClassID(k isa.ElemKind) int { return arrayClassBase + int(k) }

func isArrayClassID(id int) bool { return id >= arrayClassBase }

func arrayKindOf(id int) isa.ElemKind { return isa.ElemKind(id - arrayClassBase) }

func (vm *VM) allocRaw(size uint32, classID int, length uint32) (Ref, error) {
	addr := vm.Heap.Alloc(size)
	if addr == 0 {
		vm.gc()
		addr = vm.Heap.Alloc(size)
		if addr == 0 {
			return 0, fmt.Errorf("vm: OutOfMemoryError allocating %d bytes", size)
		}
	}
	vm.Heap.WriteHeader(addr, classID, length)
	return addr, nil
}

// classOf returns the class of a (non-array) object, or nil for arrays.
func (vm *VM) classOf(obj Ref) *classfile.Class {
	id := vm.Heap.ClassIDOf(obj)
	if isArrayClassID(id) {
		return nil
	}
	return vm.classByID[id]
}

// objectSize returns the total allocation size of an object or array,
// from its header (used to size whole-object cache transfers).
func (vm *VM) objectSize(obj Ref) uint32 {
	id := vm.Heap.ClassIDOf(obj)
	if isArrayClassID(id) {
		return isa.ArrayBytes(arrayKindOf(id), vm.Heap.LengthOf(obj))
	}
	return isa.ObjectBytes(vm.classByID[id].InstanceSlots)
}
