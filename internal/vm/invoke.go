package vm

import (
	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// invoke transfers control from frame f (whose PC already points past
// the call instruction) into callee. It handles native dispatch, the
// placement-policy migration decision (with the paper's stack-marker
// protocol), synchronized-method monitor acquisition and, on SPEs, the
// code-cache lookup for the callee.
func (vm *VM) invoke(core *cell.Core, t *Thread, f *Frame, callee *classfile.Method) error {
	if callee.IsAbstract() {
		return vm.trapAt(f, "AbstractMethodError", callee.Sig())
	}
	if callee.IsNative() {
		return vm.invokeNative(core, t, f, callee)
	}

	// Placement decision: "migration occurs when invoking a method which
	// has either been tagged by an annotation or selected by the
	// scheduler" (§3.1). A policy naming a kind the machine lacks lands
	// on the service kind, mirroring place(). Pinned kernel workers skip
	// the decision entirely — the SPMD plan bound them to their core.
	desired := core.Kind
	if !t.pinned {
		desired = vm.policyFor(t).OnInvoke(vm, t, callee, core.Kind)
	}
	if !vm.Machine.HasKind(desired) {
		desired = vm.serviceKind()
	}
	migrating := desired != core.Kind

	cm, compileCycles, err := vm.compileFor(desired, callee)
	if err != nil {
		return vm.trapAt(f, "InternalError", err.Error())
	}
	if compileCycles > 0 {
		// The JIT itself runs as runtime code on the invoking core.
		core.Charge(isa.ClassInt, compileCycles)
		noteCompile(t)
	}

	nf := newFrame(cm)
	nf.ctr = vm.Monitor.Counters(callee.ID)
	vm.Monitor.Counters(callee.ID).Invokes++

	// Pop arguments (receiver first in locals).
	nargs := callee.ArgSlots()
	for i := nargs - 1; i >= 0; i-- {
		v, r := f.pop()
		nf.Locals[i] = v
		nf.LocalRefs[i] = r
	}

	// Synchronized methods lock the receiver (or the class lock).
	if callee.IsSynchronized() {
		var obj Ref
		if callee.IsStatic() {
			lock, err := vm.classLock(callee.Class)
			if err != nil {
				return vm.trapAt(f, "OutOfMemoryError", err.Error())
			}
			obj = lock
		} else {
			obj = Ref(nf.Locals[0])
		}
		nf.SyncObj = obj
		cost := vm.compilers[core.Kind].Costs().OpCost[isa.OpMonitorEnter]
		core.Charge(isa.ClassMainMem, uint64(cost))
		if !vm.monitorEnter(core, t, obj) {
			// Blocked: the frame is pushed; the monitor will be granted
			// before the thread resumes.
			t.pushFrame(nf)
			t.needPurge = core.Kind.UsesLocalStore()
			if migrating {
				// Keep it simple and correct: blocked synchronized calls
				// complete the migration when granted.
				t.pendingMigrate = desired
				t.hasPendingMigrate = true
			}
			return nil
		}
	}

	if migrating {
		// Push the migration marker beneath the callee frame: returning
		// to the marker migrates back (§3.1).
		marker := &Frame{Marker: true, ReturnKind: core.Kind, ReturnCore: core.ID}
		t.pushFrame(marker)
		t.pushFrame(nf)
		vm.migrate(core, t, desired, nargs)
		return nil
	}

	t.pushFrame(nf)
	if core.Kind.UsesLocalStore() {
		vm.ensureCode(core, cm)
	}
	return nil
}

// classLock returns (allocating on demand) the per-class lock object
// used by static synchronized methods.
func (vm *VM) classLock(c *classfile.Class) (Ref, error) {
	meta := &vm.classes[c.ID]
	if meta.lockObj == 0 {
		obj, err := vm.allocObject(vm.Prog.Object)
		if err != nil {
			return 0, err
		}
		meta.lockObj = obj
	}
	return meta.lockObj, nil
}

// returnFrom pops the current frame and delivers the return value,
// driving the migration-marker protocol and SPE return-path code-cache
// lookups.
func (vm *VM) returnFrom(core *cell.Core, t *Thread, val uint64, isRef, hasVal bool) {
	f := t.popFrame()
	if f.SyncObj != 0 {
		cost := vm.compilers[core.Kind].Costs().OpCost[isa.OpMonitorExit]
		core.Charge(isa.ClassMainMem, uint64(cost))
		if err := vm.monitorExit(core, t, f.SyncObj); err != nil {
			vm.trap(core, t, err)
			return
		}
	}

	if len(t.Frames) == 0 {
		t.State = StateTerminated
		t.Result = val
		t.HasResult = hasVal
		return
	}

	top := t.top()
	if top.Marker {
		// Return to the migration marker: migrate back to the origin
		// core type, carrying the value (§3.1: "returns to the migration
		// marker placed on the stack").
		t.pendingVal = val
		t.pendingIsRef = isRef
		t.pendingHasVal = hasVal
		words := 0
		if hasVal {
			words = 1
		}
		vm.migrate(core, t, top.ReturnKind, words)
		return
	}

	if core.Kind.UsesLocalStore() {
		// The caller's code may have been purged while the callee ran:
		// repeat the lookup (§3.2.2).
		vm.reenterCode(core, top.CM)
	}
	if hasVal {
		top.push(val, isRef)
	}
}
