package vm

import (
	"bytes"
	"fmt"
	"io"

	"herajvm/internal/cell"
)

// JobStats is per-job scheduling accounting: the events the job's own
// threads (the root thread and everything it transitively started)
// experienced, as opposed to the machine-wide Core.Stats counters that
// aggregate over every job sharing the booted VM.
type JobStats struct {
	// Migrations counts cross-kind moves of the job's threads — both
	// policy-driven marker migrations and the migrate scheduler's
	// cost-gated moves.
	Migrations uint64
	// Steals counts same-kind work steals of the job's threads.
	Steals uint64
	// Compiles counts fresh method compilations the job's threads
	// triggered (entry compiles, invoke-time compiles, migration
	// recompiles); warm code-cache lookups are free and uncounted.
	Compiles uint64
	// GCPauses and GCCycles count the stop-the-world collections the
	// job's own allocations triggered and their total pause cycles.
	// The whole pause is billed to the allocating job — the collector
	// stalls every core, but the job whose allocation pressure forced
	// the collection owns that time, the way output and compiles are
	// already attributed — so SLO percentiles under concurrent jobs
	// cannot hide collector time. Collections triggered outside any
	// job (boot-time interning) land in VM.GCUnattributedCycles;
	// per-job GC cycles plus the unattributed bucket always sum to
	// VM.GCCycles.
	GCPauses uint64
	GCCycles uint64
	// KernelLaunches counts Parallel.forRange fan-outs the job's threads
	// issued; KernelWorkers the SPMD workers those launches spawned; and
	// KernelDMABytes the bytes kernel workers staged into local stores by
	// double-buffered tile prefetch (a subset of the machine-wide DMA
	// traffic, attributed to the launching job).
	KernelLaunches uint64
	KernelWorkers  uint64
	KernelDMABytes uint64
}

// Job is one admitted unit of work on a booted VM: a root thread
// started from a named entry method, plus every thread it transitively
// spawned. The job carries its own accounting — admission and
// completion cycles, captured output, scheduling-event counters — so
// many jobs can share one machine without their results blurring into
// the VM-wide aggregates.
type Job struct {
	// ID is the job's admission sequence number (0, 1, ...).
	ID int
	// Name labels the job in reports.
	Name string
	// AdmittedAt is the simulated cycle the job was admitted — the
	// requested arrival, floored at the machine clock at submission.
	AdmittedAt cell.Clock
	// CompletedAt is the cycle the job's last thread retired (0 until
	// the job completes).
	CompletedAt cell.Clock
	// Deadline is the job's absolute completion deadline — AdmittedAt
	// plus the requested relative deadline — or 0 when the submission
	// carried none.
	Deadline cell.Clock
	// Verdict is the admission pipeline's decision for this job. Shed
	// jobs never run: they are done at admission with no threads.
	Verdict Verdict
	// DeadlineMet reports whether the job completed by its deadline
	// (true for completed jobs without one; always false for shed
	// jobs). Meaningful once Done.
	DeadlineMet bool

	// Stats accumulates the job's scheduling events.
	Stats JobStats

	root    *Thread
	threads []*Thread
	live    int
	done    bool
	// kernels counts the job's in-flight kernel launches (callers parked
	// at an SPMD barrier). A job with kernels > 0 refuses FreezeJob: the
	// barrier state — pinned workers mid-chunk, a caller blocked in a
	// native — is not serializable at a bytecode boundary.
	kernels int
	// frozen marks a job serialized off this machine by FreezeJob: it
	// will never complete here (done stays false), and WaitJob returns
	// ErrFrozen for it. freezeBarrier asks the executor to park the
	// job's threads at their next bytecode boundary (the quiesce step
	// of a freeze); parked collects the threads so parked.
	frozen        bool
	freezeBarrier bool
	parked        []*Thread
	out           bytes.Buffer
	// w tees the VM-wide output stream and the job's capture buffer
	// (built once at admission; print natives are a hot path).
	w      io.Writer
	policy Policy
}

// Done reports whether every thread of the job has terminated.
func (j *Job) Done() bool { return j.done }

// Frozen reports whether the job was serialized off this machine by
// FreezeJob. A frozen job never completes here; its continuation lives
// in the JobImage the freeze produced.
func (j *Job) Frozen() bool { return j.frozen }

// Root returns the job's root thread (its Result holds the entry
// method's return value once the job is done).
func (j *Job) Root() *Thread { return j.root }

// Output returns the System.out text the job's threads have printed so
// far (complete once the job is done).
func (j *Job) Output() string { return j.out.String() }

// Cycles returns the job's admission-to-completion time, or 0 while
// the job is still running.
func (j *Job) Cycles() cell.Clock {
	if !j.done {
		return 0
	}
	return j.CompletedAt - j.AdmittedAt
}

// Err returns the first trap among the job's threads in creation
// order, or nil.
func (j *Job) Err() error { return firstTrap(j.threads) }

// SubmitJob runs a submission through the admission pipeline: resolve
// the static entry method, floor the arrival at the machine's current
// clock, and decide a verdict from the scheduler's drain estimates
// under Config.Admission. An admitted (or delayed) job gets a fresh
// root thread runnable at its arrival; a shed job is recorded —
// occupying its slot in the total (arrival cycle, submission sequence)
// admission order — but never runs, so replaying the same submission
// script against the same driving schedule reproduces the same
// verdicts and the same machine byte for byte. The job does not
// execute until the machine is driven (WaitJob, DrainJobs, RunUntil,
// or any Run variant).
//
// The error return is for malformed submissions (unknown class or
// method, bad arguments); shedding is not an error — it is the
// admission pipeline doing its job, reported through Job.Verdict.
func (vm *VM) SubmitJob(spec JobSpec) (*Job, error) {
	cls := vm.Prog.Lookup(spec.Class)
	if cls == nil {
		return nil, fmt.Errorf("vm: no class %q", spec.Class)
	}
	m := cls.MethodByName(spec.Method)
	if m == nil {
		return nil, fmt.Errorf("vm: no method %s.%s", spec.Class, spec.Method)
	}
	if !m.IsStatic() {
		return nil, fmt.Errorf("vm: entry %s must be static", m.Sig())
	}
	arrival := spec.Arrival
	if now := vm.Machine.MaxClock(); arrival < now {
		arrival = now
	}
	name := spec.Name
	if name == "" {
		name = spec.Class + "." + spec.Method
	}
	var deadline cell.Clock
	if spec.Deadline != 0 {
		deadline = arrival + spec.Deadline
	}

	pol := spec.Policy
	if pol == nil {
		pol = vm.policy
	}
	kind := pol.PlaceThread(vm, m)
	if !vm.Machine.HasKind(kind) {
		kind = vm.serviceKind()
	}
	verdict := vm.admissionVerdict(kind, arrival, deadline)

	j := &Job{ID: len(vm.jobs), Name: name, AdmittedAt: arrival,
		Deadline: deadline, Verdict: verdict, policy: spec.Policy}
	if verdict == VerdictShed {
		// Shed at admission: the job is complete without ever running.
		// It holds its place in the admission order so interleaved shed
		// decisions cannot perturb the (arrival, sequence) total order
		// of the jobs that did get in.
		j.done = true
		j.CompletedAt = arrival
		vm.jobs = append(vm.jobs, j)
		return j, nil
	}
	j.w = io.MultiWriter(vm.stdout, &j.out)
	prevJob := vm.curJob
	vm.curJob = j
	root, err := vm.startThread(j, name, m, arrival, spec.Args, spec.ArgRefs)
	vm.curJob = prevJob
	if err != nil {
		return nil, err
	}
	j.root = root
	vm.pending++
	vm.jobs = append(vm.jobs, j)
	return j, nil
}

// Jobs returns the admitted jobs in admission order (a copy).
func (vm *VM) Jobs() []*Job {
	out := make([]*Job, len(vm.jobs))
	copy(out, vm.jobs)
	return out
}

// WaitJob drives the machine until the job completes (other jobs'
// threads progress too — the machine is shared). It returns a
// machine-level error (deadlock), ErrFrozen for a job that was frozen
// off this machine (it will never complete here), or the job's first
// thread trap.
func (vm *VM) WaitJob(j *Job) error {
	if err := vm.runWhile(func() bool { return j.done || j.frozen }); err != nil {
		return err
	}
	if j.frozen {
		return fmt.Errorf("vm: job %d (%s): %w", j.ID, j.Name, ErrFrozen)
	}
	return j.Err()
}

// DrainJobs drives the machine until every thread of every admitted
// job has terminated. Per-job traps stay on the jobs (Job.Err); only
// machine-level failures (deadlock) are returned.
func (vm *VM) DrainJobs() error {
	return vm.runWhile(func() bool { return vm.liveCount == 0 })
}

// RunUntil drives the machine until its clock reaches cycle c or no
// live thread remains, whichever comes first. This is the open-loop
// driver's primitive: advance simulated time to the next arrival, then
// submit, so every admission verdict is decided against the machine
// state that actually holds at that arrival — queues drained by then
// are drained, backlogs built by then are visible to the drain
// estimates. The machine steps in whole quanta, so the clock may
// overshoot c by at most one scheduling round; the overshoot is
// deterministic, preserving byte-identical replay.
func (vm *VM) RunUntil(c cell.Clock) error {
	return vm.runWhile(func() bool { return vm.Machine.MaxClock() >= c })
}

// policyFor returns the placement policy governing a thread: its job's
// override when one was submitted, the VM-wide policy otherwise.
func (vm *VM) policyFor(t *Thread) Policy {
	if t != nil && t.job != nil && t.job.policy != nil {
		return t.job.policy
	}
	return vm.policy
}

// outFor returns the writer a thread's System.out output goes to: the
// VM-wide stream plus, for a thread belonging to a job, the job's own
// capture buffer, so per-job output survives concurrent jobs
// interleaving on the global stream.
func (vm *VM) outFor(t *Thread) io.Writer {
	if t != nil && t.job != nil {
		return t.job.w
	}
	return vm.stdout
}

// noteMigrated records a cross-kind migration of t (any cause) and
// starts the thread's re-migration cooldown at the given start time.
func (vm *VM) noteMigrated(t *Thread, at cell.Clock) {
	t.Migrations++
	if t.job != nil {
		t.job.Stats.Migrations++
	}
	if cd := vm.Cfg.MigrateCooldownCycles; cd != 0 {
		t.cooldownUntil = at + cd
	}
}

// noteStolen records a same-kind steal of t.
func noteStolen(t *Thread) {
	t.Steals++
	if t.job != nil {
		t.job.Stats.Steals++
	}
}

// noteCompile attributes one fresh method compilation to t's job.
func noteCompile(t *Thread) {
	if t != nil && t.job != nil {
		t.job.Stats.Compiles++
	}
}

// firstTrap returns the first trap among threads in creation order.
func firstTrap(threads []*Thread) error {
	for _, t := range threads {
		if t.Trap != nil {
			return t.Trap
		}
	}
	return nil
}
