package vm

import (
	"herajvm/internal/cache"
	"herajvm/internal/cell"
	"herajvm/internal/isa"
)

// Adaptive cache sizing implements the paper's proposed future work:
// "these results ... suggest that adaptive sizing of the code and data
// caches would likely benefit many applications" (§4). When enabled,
// each SPE periodically compares how often its software data and code
// caches missed over the last window and shifts local-store budget
// toward the needier cache. Resizing purges both caches (dirty data is
// written back first), exactly like the flush-when-full path, so it is
// always safe; it just costs a refill.

// adaptState tracks one SPE's controller window.
type adaptState struct {
	lastCheck    cell.Clock
	lastDataMiss uint64
	lastCodeMiss uint64
	resizes      uint64
}

// maybeAdapt runs the controller for an SPE core if its window expired.
func (vm *VM) maybeAdapt(core *cell.Core) {
	if !vm.Cfg.AdaptiveCaches || core.Kind != isa.SPE {
		return
	}
	st := &vm.adapt[core.ID]
	interval := vm.Cfg.AdaptiveIntervalCycles
	if interval == 0 {
		interval = 2_000_000
	}
	if core.Now-st.lastCheck < interval {
		return
	}
	dMiss := core.Stats.DataMisses - st.lastDataMiss
	cMiss := core.Stats.CodeMisses - st.lastCodeMiss
	st.lastCheck = core.Now
	st.lastDataMiss = core.Stats.DataMisses
	st.lastCodeMiss = core.Stats.CodeMisses

	step := uint32(vm.Cfg.AdaptiveStepKB) << 10
	if step == 0 {
		step = 16 << 10
	}
	minSize := uint32(16) << 10
	dSize := vm.dcaches[core.ID].Config().Size
	cSize := vm.ccaches[core.ID].Config().Size

	// Both miss kinds cost roughly one DMA; shift toward the side that
	// missed decisively more.
	switch {
	case dMiss > 2*cMiss && dMiss > 64 && cSize >= minSize+step:
		vm.resizeSPECaches(core, dSize+step, cSize-step)
		st.resizes++
	case cMiss > 2*dMiss && cMiss > 64 && dSize >= minSize+step:
		vm.resizeSPECaches(core, dSize-step, cSize+step)
		st.resizes++
	}
}

// resizeSPECaches rebuilds an SPE's software caches with a new split of
// the same local-store region. Dirty data is written back first; both
// caches restart cold.
func (vm *VM) resizeSPECaches(core *cell.Core, dataSize, codeSize uint32) {
	core.Now = vm.dcaches[core.ID].Purge(core.Now)
	core.Charge(isa.ClassMainMem, 5000) // controller + remap overhead

	dcfg := vm.dcaches[core.ID].Config()
	dcfg.Size = dataSize
	ccfg := vm.ccaches[core.ID].Config()
	ccfg.Size = codeSize
	vm.dcaches[core.ID] = cache.NewDataCache(dcfg, core, 0)
	vm.ccaches[core.ID] = cache.NewCodeCache(ccfg, core, dataSize)
}

// AdaptiveResizes reports how many times SPE i's controller resized its
// caches (for reports and tests).
func (vm *VM) AdaptiveResizes(i int) uint64 { return vm.adapt[i].resizes }

// CacheSplit returns SPE i's current (data, code) cache sizes in bytes.
func (vm *VM) CacheSplit(i int) (uint32, uint32) {
	return vm.dcaches[i].Config().Size, vm.ccaches[i].Config().Size
}
