package vm

import (
	"herajvm/internal/cache"
	"herajvm/internal/cell"
	"herajvm/internal/isa"
)

// Adaptive cache sizing implements the paper's proposed future work:
// "these results ... suggest that adaptive sizing of the code and data
// caches would likely benefit many applications" (§4). When enabled,
// each local-store core periodically compares how often its software
// data and code caches missed over the last window and shifts
// local-store budget toward the needier cache. Resizing purges both
// caches (dirty data is written back first), exactly like the
// flush-when-full path, so it is always safe; it just costs a refill.

// adaptState tracks one local-store core's controller window.
type adaptState struct {
	lastCheck    cell.Clock
	lastDataMiss uint64
	lastCodeMiss uint64
	resizes      uint64
}

// maybeAdapt runs the controller for a local-store core if its window
// expired.
func (vm *VM) maybeAdapt(core *cell.Core) {
	if !vm.Cfg.AdaptiveCaches || vm.dcaches[core.Index] == nil {
		return
	}
	st := &vm.adapt[core.Index]
	interval := vm.Cfg.AdaptiveIntervalCycles
	if interval == 0 {
		interval = 2_000_000
	}
	if core.Now-st.lastCheck < interval {
		return
	}
	dMiss := core.Stats.DataMisses - st.lastDataMiss
	cMiss := core.Stats.CodeMisses - st.lastCodeMiss
	st.lastCheck = core.Now
	st.lastDataMiss = core.Stats.DataMisses
	st.lastCodeMiss = core.Stats.CodeMisses

	step := uint32(vm.Cfg.AdaptiveStepKB) << 10
	if step == 0 {
		step = 16 << 10
	}
	minSize := uint32(16) << 10
	dSize := vm.dcaches[core.Index].Config().Size
	cSize := vm.ccaches[core.Index].Config().Size

	// Both miss kinds cost roughly one DMA; shift toward the side that
	// missed decisively more.
	switch {
	case dMiss > 2*cMiss && dMiss > 64 && cSize >= minSize+step:
		vm.resizeLocalCaches(core, dSize+step, cSize-step)
		st.resizes++
	case cMiss > 2*dMiss && cMiss > 64 && dSize >= minSize+step:
		vm.resizeLocalCaches(core, dSize-step, cSize+step)
		st.resizes++
	}
}

// resizeLocalCaches rebuilds a local-store core's software caches with a
// new split of the same local-store region. Dirty data is written back
// first; both caches restart cold.
func (vm *VM) resizeLocalCaches(core *cell.Core, dataSize, codeSize uint32) {
	core.Now = vm.dcaches[core.Index].Purge(core.Now)
	core.Charge(isa.ClassMainMem, 5000) // controller + remap overhead

	dcfg := vm.dcaches[core.Index].Config()
	dcfg.Size = dataSize
	ccfg := vm.ccaches[core.Index].Config()
	ccfg.Size = codeSize
	vm.dcaches[core.Index] = cache.NewDataCache(dcfg, core, 0)
	vm.ccaches[core.Index] = cache.NewCodeCache(ccfg, core, dataSize)
}

// AdaptiveResizes reports how many times the i-th local-store core's
// controller resized its caches (for reports and tests).
func (vm *VM) AdaptiveResizes(i int) uint64 { return vm.adapt[vm.lsCores[i]].resizes }

// CacheSplit returns the i-th local-store core's current (data, code)
// cache sizes in bytes.
func (vm *VM) CacheSplit(i int) (uint32, uint32) {
	return vm.dcaches[vm.lsCores[i]].Config().Size, vm.ccaches[vm.lsCores[i]].Config().Size
}
