package vm

import (
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
	"herajvm/internal/profile"
)

// topoConfig returns the small test machine reshaped to a topology.
func topoConfig(topo cell.Topology) Config {
	cfg := testConfig()
	cfg.Machine.Topology = topo
	return cfg
}

// buildAnnotatedDoubler returns a program whose main calls an
// SPE-annotated doubling method once (a single migration round trip on
// machines with SPEs).
func buildAnnotatedDoubler() *classfile.Program {
	p := newProg()
	c := p.NewClass("Mig", nil)
	hot := c.NewMethod("hot", classfile.FlagStatic, classfile.Int, classfile.Int).
		Annotate(classfile.AnnRunOnSPE)
	{
		a := hot.Asm()
		a.LoadI(0)
		a.ConstI(2)
		a.MulI()
		a.Ret()
		a.MustBuild()
	}
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	a.ConstI(21)
	a.InvokeStatic(hot)
	a.Ret()
	a.MustBuild()
	return p
}

func TestPickCoreLeastLoadedTieBreak(t *testing.T) {
	vm, err := New(topoConfig(cell.PS3Topology(3)), newProg())
	if err != nil {
		t.Fatal(err)
	}
	// Empty queues, equal clocks: ties resolve to the lowest ID.
	if got := vm.pickCore(isa.SPE); got != 0 {
		t.Errorf("all-idle pick = SPE%d, want SPE0", got)
	}
	// A queued thread on SPE0 makes it heavier than its siblings.
	busy := vm.newThread("busy")
	busy.Kind, busy.CoreID = isa.SPE, 0
	vm.enqueue(busy)
	if got := vm.pickCore(isa.SPE); got != 1 {
		t.Errorf("pick with SPE0 loaded = SPE%d, want SPE1", got)
	}
	// Equal loads: the earliest local clock wins.
	vm.Machine.CoreAt(isa.SPE, 1).Now = 100
	if got := vm.pickCore(isa.SPE); got != 2 {
		t.Errorf("pick with SPE1 ahead = SPE%d, want SPE2", got)
	}
	// The kind-generalized pool also balances PPEs on multi-PPE machines.
	vm2, err := New(topoConfig(cell.Topology{{Kind: isa.PPE, Count: 2}}), newProg())
	if err != nil {
		t.Fatal(err)
	}
	first := vm2.newThread("first")
	vm2.place(first, isa.PPE)
	vm2.enqueue(first)
	second := vm2.newThread("second")
	vm2.place(second, isa.PPE)
	if first.CoreID == second.CoreID {
		t.Errorf("two threads placed on PPE%d; multi-PPE placement should spread", first.CoreID)
	}
}

// TestPickCoreVPUPoolOnThreeKindTopology asserts the pickCore
// tie-breaking contract for the third kind's pool on a three-kind
// machine: lowest ID on a fresh machine, then load, then clock skew —
// the same ordering the SPE case above pins down.
func TestPickCoreVPUPoolOnThreeKindTopology(t *testing.T) {
	topo := cell.Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 2}, {Kind: isa.VPU, Count: 3},
	}
	vm, err := New(topoConfig(topo), newProg())
	if err != nil {
		t.Fatal(err)
	}
	// Empty queues, equal clocks: ties resolve to the lowest ID.
	if got := vm.pickCore(isa.VPU); got != 0 {
		t.Errorf("all-idle pick = VPU%d, want VPU0", got)
	}
	// A queued thread on VPU0 pushes its drain estimate past its idle
	// siblings'.
	busy := vm.newThread("busy")
	busy.Kind, busy.CoreID = isa.VPU, 0
	vm.enqueue(busy)
	if got := vm.pickCore(isa.VPU); got != 1 {
		t.Errorf("pick with VPU0 loaded = VPU%d, want VPU1", got)
	}
	// Equal loads: the earliest clock (smallest skew) wins.
	vm.Machine.CoreAt(isa.VPU, 1).Now = 100
	if got := vm.pickCore(isa.VPU); got != 2 {
		t.Errorf("pick with VPU1 ahead = VPU%d, want VPU2", got)
	}
	// Drain weighting: queue depth and clock skew are one currency —
	// an idle core whose clock has skewed further ahead than a queued
	// task's predicted cost loses to the loaded core at clock zero,
	// which the old least-loaded-first rule would never allow.
	taskCost := vm.taskCost(nil, vm.Machine.CoreAt(isa.VPU, 0))
	vm.Machine.CoreAt(isa.VPU, 1).Now = cell.Clock(taskCost) + 2
	vm.Machine.CoreAt(isa.VPU, 2).Now = cell.Clock(taskCost) + 1
	if got := vm.pickCore(isa.VPU); got != 0 {
		t.Errorf("pick with idle VPUs skewed past one task's cost = VPU%d, want the loaded VPU0", got)
	}
	// The VPU's migration affinity prices its queue drain above an
	// SPE's for the same depth (reluctant target), while same-kind
	// pools are unaffected by the scaling.
	spe := vm.Machine.CoreAt(isa.SPE, 0)
	if vpuCost := vm.taskCost(nil, vm.Machine.CoreAt(isa.VPU, 0)); vpuCost <= vm.taskCost(nil, spe) {
		t.Errorf("VPU per-task cost %d not above SPE's %d", vpuCost, vm.taskCost(nil, spe))
	}
}

// TestBehaviourCostPrefersVPUForFPHeavy pins the behaviour-aware task
// pricing: once a thread's innermost method has been observed long
// enough, an FP-dominated cycle composition must price the thread's
// drain cheaper on a VPU core than on an equally-loaded SPE — even
// though the VPU's static migration affinity says the opposite — so
// the migrate gate and drain estimates route FP-heavy work onto the
// vector pool. Cold threads, memory-heavy threads and VPU-less
// machines keep the static affinity ordering.
func TestBehaviourCostPrefersVPUForFPHeavy(t *testing.T) {
	topo := cell.Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 4}, {Kind: isa.VPU, Count: 2},
	}
	vm, err := New(topoConfig(topo), newProg())
	if err != nil {
		t.Fatal(err)
	}
	spe := vm.Machine.CoreAt(isa.SPE, 0)
	vpu := vm.Machine.CoreAt(isa.VPU, 0)

	mkThread := func(name string, fp, mem, other uint64) *Thread {
		th := vm.newThread(name)
		ctr := &profile.MethodCounters{}
		ctr.Cycles[isa.ClassFloat] = fp
		ctr.Cycles[isa.ClassMainMem] = mem
		ctr.Cycles[isa.ClassInt] = other
		th.pushFrame(&Frame{ctr: ctr})
		return th
	}

	// FP-heavy and observed: the VPU must undercut the SPE.
	hot := mkThread("fp-hot", 80_000, 10_000, 10_000)
	if v, s := vm.taskCost(hot, vpu), vm.taskCost(hot, spe); v >= s {
		t.Errorf("FP-heavy observed thread: VPU cost %d not below SPE cost %d", v, s)
	}

	// Same composition but under the observation floor: static affinity
	// pricing holds, so the reluctant VPU stays the dearer target.
	cold := mkThread("fp-cold", 8_000, 1_000, 1_000)
	if v, s := vm.taskCost(cold, vpu), vm.taskCost(cold, spe); v <= s {
		t.Errorf("cold thread: VPU cost %d not above SPE cost %d (affinity pricing expected)", v, s)
	}

	// Memory-heavy and observed: the PPE's coherent caches win over
	// both local-store kinds, and the VPU (worst memory) prices highest.
	memHot := mkThread("mem-hot", 5_000, 85_000, 10_000)
	ppe := vm.Machine.CoreAt(isa.PPE, 0)
	if p, s, v := vm.taskCost(memHot, ppe), vm.taskCost(memHot, spe), vm.taskCost(memHot, vpu); !(p < s && s < v) {
		t.Errorf("memory-heavy observed thread: want PPE < SPE < VPU, got %d, %d, %d", p, s, v)
	}

	// No VPU on the machine: behaviour pricing is off entirely, so an
	// observed FP-heavy thread still prices by affinity (PS3 goldens
	// depend on this gate).
	ps3, err := New(topoConfig(cell.PS3Topology(4)), newProg())
	if err != nil {
		t.Fatal(err)
	}
	ps3hot := ps3.newThread("fp-hot-ps3")
	ctr := &profile.MethodCounters{}
	ctr.Cycles[isa.ClassFloat] = 90_000
	ctr.Cycles[isa.ClassInt] = 10_000
	ps3hot.pushFrame(&Frame{ctr: ctr})
	ps3spe := ps3.Machine.CoreAt(isa.SPE, 0)
	if got, want := ps3.taskCost(ps3hot, ps3spe), ps3.taskCost(nil, ps3spe); got != want {
		t.Errorf("VPU-less machine: observed thread cost %d differs from affinity cost %d", got, want)
	}
}

func TestPlaceFallsBackToPPEWithoutSPEs(t *testing.T) {
	// A PPE-only topology must still run SPE-annotated code (on the PPE)
	// under every placement policy that could request an SPE.
	for name, policy := range map[string]Policy{
		"fixed-spe":  FixedPolicy{Kind: isa.SPE},
		"annotation": AnnotationPolicy{},
	} {
		cfg := topoConfig(cell.PS3Topology(0))
		cfg.Policy = policy
		vm, th := runMain(t, cfg, buildAnnotatedDoubler(), "Mig", "main")
		if got := int32(uint32(th.Result)); got != 42 {
			t.Errorf("%s: result = %d, want 42", name, got)
		}
		if th.Migrations != 0 {
			t.Errorf("%s: thread migrated %d times on a PPE-only machine", name, th.Migrations)
		}
		if vm.Machine.CoresOf(isa.PPE)[0].Stats.Instrs == 0 {
			t.Errorf("%s: PPE never executed", name)
		}
	}
}

func TestMigrationRoundTripOnAsymmetricTopology(t *testing.T) {
	topo := cell.Topology{{Kind: isa.PPE, Count: 2}, {Kind: isa.SPE, Count: 2}}
	vm, th := runMain(t, topoConfig(topo), buildAnnotatedDoubler(), "Mig", "main")
	if got := int32(uint32(th.Result)); got != 42 {
		t.Errorf("result across migration: %d, want 42", got)
	}
	if th.Migrations < 2 {
		t.Errorf("expected a PPE->SPE->PPE round trip, got %d migrations", th.Migrations)
	}
	var ppeOut, speIn uint64
	for _, p := range vm.Machine.CoresOf(isa.PPE) {
		ppeOut += p.Stats.MigrationsOut
	}
	for _, s := range vm.Machine.CoresOf(isa.SPE) {
		speIn += s.Stats.MigrationsIn
	}
	if ppeOut == 0 || speIn == 0 {
		t.Errorf("migration stats empty: ppe out=%d spe in=%d", ppeOut, speIn)
	}
}

func TestWorkersSpreadAcrossAsymmetricMachine(t *testing.T) {
	// Six SPE-annotated workers on a 2 PPE + 2 SPE machine: the total
	// must be exact (JMM coherence) and both SPEs must see work.
	topo := cell.Topology{{Kind: isa.PPE, Count: 2}, {Kind: isa.SPE, Count: 2}}
	p := buildWorkerProgram(6, classfile.AnnRunOnSPE)
	vm, th := runMain(t, topoConfig(topo), p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 2100 {
		t.Errorf("total = %d, want 2100", got)
	}
	for i, s := range vm.Machine.CoresOf(isa.SPE) {
		if s.Stats.Instrs == 0 {
			t.Errorf("SPE%d never executed", i)
		}
	}
}

// TestSchedulingDeterminism runs the same multi-threaded, migrating
// workload twice and demands bit-identical machine time and instruction
// counts: the event-calendar scheduler must break every tie
// deterministically.
func TestSchedulingDeterminism(t *testing.T) {
	run := func() (cell.Clock, []uint64) {
		topo := cell.Topology{{Kind: isa.PPE, Count: 2}, {Kind: isa.SPE, Count: 2}}
		p := buildWorkerProgram(6, classfile.AnnRunOnSPE)
		vm, th := runMain(t, topoConfig(topo), p, "Main", "main")
		if th.Trap != nil {
			t.Fatal(th.Trap)
		}
		var instrs []uint64
		for _, c := range vm.Machine.Cores() {
			instrs = append(instrs, c.Stats.Instrs)
		}
		return vm.Machine.MaxClock(), instrs
	}
	clockA, instrsA := run()
	clockB, instrsB := run()
	if clockA != clockB {
		t.Errorf("cycle counts differ across identical runs: %d vs %d", clockA, clockB)
	}
	for i := range instrsA {
		if instrsA[i] != instrsB[i] {
			t.Errorf("core %d instruction counts differ: %d vs %d", i, instrsA[i], instrsB[i])
		}
	}
}
