package vm

import (
	"math"
	"math/rand"
	"testing"

	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// TestDifferentialIntPrograms generates random straight-line integer
// programs, executes them both on the VM (on the PPE and on an SPE) and
// on a direct Go mirror of the stack machine, and requires identical
// results. This is the executor's strongest correctness test: any
// divergence in arithmetic semantics, stack discipline or operand order
// shows up immediately.
func TestDifferentialIntPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(20090518)) // HotOS XII's opening day
	for trial := 0; trial < 60; trial++ {
		prog, mirror := genIntProgram(rng, 40)
		for _, kind := range []isa.CoreKind{isa.PPE, isa.SPE} {
			cfg := testConfig()
			cfg.Policy = FixedPolicy{Kind: kind}
			vmach, err := New(cfg, prog())
			if err != nil {
				t.Fatal(err)
			}
			th, err := vmach.RunMain("Gen", "main")
			if err != nil {
				t.Fatalf("trial %d on %v: %v", trial, kind, err)
			}
			if got := int32(uint32(th.Result)); got != mirror {
				t.Fatalf("trial %d on %v: vm=%d mirror=%d", trial, kind, got, mirror)
			}
		}
	}
}

// genIntProgram builds a random straight-line int program of n ops and
// returns a program factory plus the mirrored result. The generator
// tracks the Go-side stack and only emits ops valid at the current
// depth; division uses guarded constants so no trap fires.
func genIntProgram(rng *rand.Rand, n int) (func() *classfile.Program, int32) {
	type op struct {
		emit   func(a *classfile.Asm)
		mirror func(stack []int32) []int32
	}
	var ops []op
	depth := 0

	pushConst := func() op {
		v := int32(rng.Intn(2001) - 1000)
		return op{
			emit:   func(a *classfile.Asm) { a.ConstI(v) },
			mirror: func(s []int32) []int32 { return append(s, v) },
		}
	}
	bin := func(emit func(a *classfile.Asm), f func(x, y int32) int32) op {
		return op{
			emit: emit,
			mirror: func(s []int32) []int32 {
				y, x := s[len(s)-1], s[len(s)-2]
				return append(s[:len(s)-2], f(x, y))
			},
		}
	}
	for len(ops) < n {
		switch {
		case depth < 2:
			ops = append(ops, pushConst())
			depth++
		default:
			switch rng.Intn(12) {
			case 0:
				ops = append(ops, pushConst())
				depth++
			case 1:
				ops = append(ops, bin(func(a *classfile.Asm) { a.AddI() },
					func(x, y int32) int32 { return x + y }))
				depth--
			case 2:
				ops = append(ops, bin(func(a *classfile.Asm) { a.SubI() },
					func(x, y int32) int32 { return x - y }))
				depth--
			case 3:
				ops = append(ops, bin(func(a *classfile.Asm) { a.MulI() },
					func(x, y int32) int32 { return x * y }))
				depth--
			case 4:
				ops = append(ops, bin(func(a *classfile.Asm) { a.AndI() },
					func(x, y int32) int32 { return x & y }))
				depth--
			case 5:
				ops = append(ops, bin(func(a *classfile.Asm) { a.OrI() },
					func(x, y int32) int32 { return x | y }))
				depth--
			case 6:
				ops = append(ops, bin(func(a *classfile.Asm) { a.XorI() },
					func(x, y int32) int32 { return x ^ y }))
				depth--
			case 7:
				ops = append(ops, bin(func(a *classfile.Asm) { a.ShlI() },
					func(x, y int32) int32 { return x << (uint32(y) & 31) }))
				depth--
			case 8:
				ops = append(ops, bin(func(a *classfile.Asm) { a.ShrI() },
					func(x, y int32) int32 { return x >> (uint32(y) & 31) }))
				depth--
			case 9:
				ops = append(ops, bin(func(a *classfile.Asm) { a.UShrI() },
					func(x, y int32) int32 { return int32(uint32(x) >> (uint32(y) & 31)) }))
				depth--
			case 10: // guarded divide by a nonzero constant
				d := int32(rng.Intn(99) + 1)
				if rng.Intn(2) == 0 {
					d = -d
				}
				ops = append(ops, op{
					emit: func(a *classfile.Asm) { a.ConstI(d); a.DivI() },
					mirror: func(s []int32) []int32 {
						x := s[len(s)-1]
						return append(s[:len(s)-1], javaDivI(x, d))
					},
				})
			case 11: // unary ops
				switch rng.Intn(3) {
				case 0:
					ops = append(ops, op{
						emit:   func(a *classfile.Asm) { a.NegI() },
						mirror: func(s []int32) []int32 { s[len(s)-1] = -s[len(s)-1]; return s },
					})
				case 1:
					ops = append(ops, op{
						emit:   func(a *classfile.Asm) { a.I2B() },
						mirror: func(s []int32) []int32 { s[len(s)-1] = int32(int8(s[len(s)-1])); return s },
					})
				default:
					ops = append(ops, op{
						emit:   func(a *classfile.Asm) { a.I2C() },
						mirror: func(s []int32) []int32 { s[len(s)-1] = int32(uint16(s[len(s)-1])); return s },
					})
				}
			}
		}
	}
	// Fold the stack down to one value.
	for depth > 1 {
		ops = append(ops, bin(func(a *classfile.Asm) { a.XorI() },
			func(x, y int32) int32 { return x ^ y }))
		depth--
	}

	var stack []int32
	for _, o := range ops {
		stack = o.mirror(stack)
	}
	mirror := stack[0]

	factory := func() *classfile.Program {
		p := newProg()
		c := p.NewClass("Gen", nil)
		m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
		a := m.Asm()
		for _, o := range ops {
			o.emit(a)
		}
		a.Ret()
		a.MustBuild()
		return p
	}
	return factory, mirror
}

func javaDivI(a, b int32) int32 {
	if a == math.MinInt32 && b == -1 {
		return math.MinInt32
	}
	return a / b
}

// TestDifferentialDoublePrograms does the same for double arithmetic
// (whose bit-exactness the workload checksums depend on).
func TestDifferentialDoublePrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		consts := make([]float64, 8)
		for i := range consts {
			consts[i] = (rng.Float64() - 0.5) * 1e3
		}
		kinds := make([]int, 30)
		for i := range kinds {
			kinds[i] = rng.Intn(4)
		}

		// Mirror: fold left with alternating ops.
		acc := consts[0]
		for i, k := range kinds {
			c := consts[(i+1)%len(consts)]
			switch k {
			case 0:
				acc = acc + c
			case 1:
				acc = acc - c
			case 2:
				acc = acc * c
			default:
				acc = acc / c
			}
		}
		want := math.Float64bits(acc)

		p := newProg()
		cls := p.NewClass("GenD", nil)
		m := cls.NewMethod("main", classfile.FlagStatic, classfile.Long)
		a := m.Asm()
		a.ConstD(consts[0])
		for i, k := range kinds {
			a.ConstD(consts[(i+1)%len(consts)])
			switch k {
			case 0:
				a.AddD()
			case 1:
				a.SubD()
			case 2:
				a.MulD()
			default:
				a.DivD()
			}
		}
		// Return the raw bits so NaNs compare exactly.
		a.D2L()
		a.Ret()
		a.MustBuild()

		// D2L truncates; compare via the double's integer part instead
		// unless non-finite. To keep it bit-exact, mirror the same D2L.
		wantL := d2l(math.Float64frombits(want))

		cfg := testConfig()
		cfg.Policy = FixedPolicy{Kind: isa.SPE}
		vmach, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		th, err := vmach.RunMain("GenD", "main")
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := int64(th.Result); got != wantL {
			t.Fatalf("trial %d: vm=%d mirror=%d", trial, got, wantL)
		}
	}
}
