package vm

import (
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// threeKindConfig returns the small test machine on a
// ppe:1,spe:1,vpu:1 shape (no same-kind siblings, so only cross-kind
// migration can move work) under the migrate scheduler.
func threeKindConfig() Config {
	cfg := topoConfig(cell.Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 1}, {Kind: isa.VPU, Count: 1},
	})
	cfg.Scheduler = "migrate"
	return cfg
}

// TestMigrateRebindsAcrossKinds drives the migrate scheduler through
// the VM directly: four ready threads queued on the lone SPE beside an
// idle PPE and an idle VPU must produce cost-gated cross-kind
// migrations that rebind the longest-queued threads, charge the
// penalty, and bump both sides' counters.
func TestMigrateRebindsAcrossKinds(t *testing.T) {
	vm, err := New(threeKindConfig(), newProg())
	if err != nil {
		t.Fatal(err)
	}
	var queued []*Thread
	for i := 0; i < 4; i++ {
		th := vm.newThread("w")
		th.Kind, th.CoreID = isa.SPE, 0
		vm.enqueue(th)
		queued = append(queued, th)
	}

	vm.pickNext()
	ppe := vm.Machine.CoreAt(isa.PPE, 0)
	spe := vm.Machine.CoreAt(isa.SPE, 0)
	vpu := vm.Machine.CoreAt(isa.VPU, 0)
	if spe.Stats.MigrationsOut == 0 {
		t.Fatal("an overloaded SPE beside idle cross-kind cores never migrated anything out")
	}
	if ppe.Stats.MigrationsIn == 0 {
		t.Error("the idle PPE took nothing from the overloaded SPE")
	}
	if got := ppe.Stats.MigrationsIn + vpu.Stats.MigrationsIn; got != spe.Stats.MigrationsOut {
		t.Errorf("migrations out=%d but in=%d", spe.Stats.MigrationsOut, got)
	}
	// The longest-queued thread — the youngest ready one, whose FIFO
	// start was furthest out — moved first, was rebound, and pays the
	// penalty before it may start.
	moved := queued[3]
	if moved.Kind != isa.PPE {
		t.Errorf("longest-queued thread migrated to %v, want the PPE (visited first)", moved.Kind)
	}
	if moved.ReadyAt < vm.Cfg.MigrateCycles {
		t.Errorf("migrated thread ReadyAt = %d; the %d-cycle migration penalty was not charged",
			moved.ReadyAt, vm.Cfg.MigrateCycles)
	}
	// A thread landing on a local-store kind must re-warm its caches.
	for _, th := range queued {
		if th.Kind.UsesLocalStore() && th.Kind != isa.SPE && !th.needEnsure {
			t.Errorf("thread migrated to %v without a code-cache ensure", th.Kind)
		}
	}
	// Steals cannot have fired: no core has a same-kind sibling.
	for _, c := range vm.Machine.Cores() {
		if c.Stats.StealsIn != 0 || c.Stats.StealsOut != 0 {
			t.Errorf("%v stole on a machine with no same-kind siblings", c)
		}
	}
}

// TestMigrateGateLosesInVM: with a prohibitive MigrateCycles penalty
// the same overload produces zero migrations — the cost gate, not the
// imbalance, decides.
func TestMigrateGateLosesInVM(t *testing.T) {
	cfg := threeKindConfig()
	cfg.MigrateCycles = 50_000_000
	vm, err := New(cfg, newProg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		th := vm.newThread("w")
		th.Kind, th.CoreID = isa.SPE, 0
		vm.enqueue(th)
	}
	vm.pickNext()
	for _, c := range vm.Machine.Cores() {
		if c.Stats.MigrationsIn != 0 || c.Stats.MigrationsOut != 0 {
			t.Errorf("%v: migrations in/out = %d/%d with a losing cost gate",
				c, c.Stats.MigrationsIn, c.Stats.MigrationsOut)
		}
	}
}

// buildComputeWorkers returns a program whose n SPE-annotated workers
// do id-proportional *compute-bound* work (worker id counts to
// id*iters, then reports the count through one final synchronized
// add), so the SPE queues stay deep with ready threads — the overload
// shape cross-kind migration exists to repair. The expected total is
// iters * n*(n+1)/2, the same checksum under every scheduler.
func buildComputeWorkers(n, iters int) *classfile.Program {
	p := newProg()
	threadCls := p.Lookup("java/lang/Thread")

	counter := p.NewClass("Counter", nil)
	total := counter.NewStaticField("total", classfile.Int)
	add := counter.NewMethod("add", classfile.FlagStatic|classfile.FlagSynchronized,
		classfile.Void, classfile.Int)
	{
		a := add.Asm()
		a.GetStatic(total)
		a.LoadI(0)
		a.AddI()
		a.PutStatic(total)
		a.RetVoid()
		a.MustBuild()
	}

	worker := p.NewClass("Worker", threadCls)
	id := worker.NewField("id", classfile.Int)
	run := worker.NewMethod("run", 0, classfile.Void).Annotate(classfile.AnnRunOnSPE)
	{
		a := run.Asm()
		loop, done := a.NewLabel(), a.NewLabel()
		// bound = id * iters; acc counts iterations.
		a.LoadRef(0)
		a.GetField(id)
		a.ConstI(int32(iters))
		a.MulI()
		a.StoreI(2)
		a.ConstI(0)
		a.StoreI(1)
		a.ConstI(0)
		a.StoreI(3)
		a.Bind(loop)
		a.LoadI(1)
		a.LoadI(2)
		a.IfICmpGE(done)
		a.Inc(3, 1)
		a.Inc(1, 1)
		a.Goto(loop)
		a.Bind(done)
		a.LoadI(3)
		a.InvokeStatic(add)
		a.RetVoid()
		a.MustBuild()
	}

	main := p.NewClass("Main", nil)
	m := main.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	a.ConstI(int32(n))
	a.ANewArray(worker)
	a.StoreRef(0)
	loop1, done1 := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop1)
	a.LoadI(1)
	a.ConstI(int32(n))
	a.IfICmpGE(done1)
	a.New(worker)
	a.StoreRef(2)
	a.LoadRef(2)
	a.LoadI(1)
	a.ConstI(1)
	a.AddI()
	a.PutField(id)
	a.LoadRef(0)
	a.LoadI(1)
	a.LoadRef(2)
	a.AStore(classfile.ElemRef)
	a.LoadRef(2)
	a.InvokeVirtual(threadCls.MethodByName("start"))
	a.Inc(1, 1)
	a.Goto(loop1)
	a.Bind(done1)
	loop2, done2 := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop2)
	a.LoadI(1)
	a.ConstI(int32(n))
	a.IfICmpGE(done2)
	a.LoadRef(0)
	a.LoadI(1)
	a.ALoad(classfile.ElemRef)
	a.InvokeVirtual(threadCls.MethodByName("join"))
	a.Inc(1, 1)
	a.Goto(loop2)
	a.Bind(done2)
	a.GetStatic(total)
	a.Ret()
	a.MustBuild()
	return p
}

// migrateRun executes the compute-bound imbalanced-worker program on
// the satellite's ppe:1,spe:4,vpu:2 topology under a scheduler and
// returns the checksum, final clock, per-core instruction counts and
// machine-wide migration count.
func migrateRun(t *testing.T, scheduler string, workers, iters int) (int32, cell.Clock, []uint64, uint64) {
	t.Helper()
	topo := cell.Topology{
		{Kind: isa.PPE, Count: 1}, {Kind: isa.SPE, Count: 4}, {Kind: isa.VPU, Count: 2},
	}
	cfg := topoConfig(topo)
	cfg.Scheduler = scheduler
	vm, th := runMain(t, cfg, buildComputeWorkers(workers, iters), "Main", "main")
	if th.Trap != nil {
		t.Fatal(th.Trap)
	}
	var instrs []uint64
	var migrations uint64
	for _, c := range vm.Machine.Cores() {
		instrs = append(instrs, c.Stats.Instrs)
		migrations += c.Stats.MigrationsIn
	}
	return int32(uint32(th.Result)), vm.Machine.MaxClock(), instrs, migrations
}

// TestMigrateSchedulerEndToEnd replays an imbalanced multi-threaded
// workload on ppe:1,spe:4,vpu:2 twice under -sched migrate: the
// checksum must match the calendar run's, cross-kind migrations must
// actually fire (the workers pin to the SPE pool, so every migration
// event is the scheduler's), and both replays must agree bit-for-bit
// on checksum, machine time, per-core instruction counts and migration
// counts.
func TestMigrateSchedulerEndToEnd(t *testing.T) {
	const workers, iters = 12, 400
	const want = iters * (workers * (workers + 1) / 2)

	calSum, _, _, calMig := migrateRun(t, "calendar", workers, iters)
	if calSum != want {
		t.Fatalf("calendar checksum = %d, want %d", calSum, want)
	}
	if calMig != 0 {
		t.Fatalf("calendar scheduler migrated %d times", calMig)
	}

	sum1, clock1, instrs1, mig1 := migrateRun(t, "migrate", workers, iters)
	if sum1 != want {
		t.Errorf("migrate checksum = %d, want %d", sum1, want)
	}
	if mig1 == 0 {
		t.Error("12 SPE-pinned workers beside idle PPE/VPUs should trigger at least one migration")
	}

	sum2, clock2, instrs2, mig2 := migrateRun(t, "migrate", workers, iters)
	if sum1 != sum2 || clock1 != clock2 || mig1 != mig2 {
		t.Errorf("migrate runs diverged: sum %d/%d clock %d/%d migrations %d/%d",
			sum1, sum2, clock1, clock2, mig1, mig2)
	}
	for i := range instrs1 {
		if instrs1[i] != instrs2[i] {
			t.Errorf("core %d instruction counts differ across migrate runs: %d vs %d",
				i, instrs1[i], instrs2[i])
		}
	}
}
