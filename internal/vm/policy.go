package vm

import (
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// Policy decides thread placement: where new threads start and whether a
// method invocation should migrate the calling thread to another core
// kind. This is the paper's central control point — "the runtime system
// transparently maps application threads to the underlying heterogeneous
// core types, using information about each thread's behaviour (either
// through code annotations or runtime monitoring)".
type Policy interface {
	// PlaceThread chooses the core kind for a newly started thread whose
	// entry method is m.
	PlaceThread(vm *VM, m *classfile.Method) isa.CoreKind
	// OnInvoke chooses the core kind on which callee should execute;
	// returning a kind different from cur requests a migration.
	OnInvoke(vm *VM, t *Thread, callee *classfile.Method, cur isa.CoreKind) isa.CoreKind
}

// serviceKind is the kind of the core hosting the runtime services —
// the general-purpose, OS-capable kind unannotated threads start on and
// every fallback lands on.
func (vm *VM) serviceKind() isa.CoreKind { return vm.service.Kind }

// cheapestKind returns the machine's registered kind minimising the
// given predicted-cost score (ties break toward the earlier-registered
// kind, keeping the choice deterministic). The second result is false
// when the machine is homogeneous — with a single kind there is no
// placement decision to make, so callers skip migration entirely.
func (vm *VM) cheapestKind(score func(isa.CoreKind) float64) (isa.CoreKind, bool) {
	if len(vm.presentKinds) < 2 {
		return vm.serviceKind(), false
	}
	best := vm.presentKinds[0]
	bestScore := score(best)
	for _, k := range vm.presentKinds[1:] {
		if s := score(k); s < bestScore {
			best, bestScore = k, s
		}
	}
	return best, true
}

// AnnotationPolicy is the paper's annotation-hint scheme (§3): explicit
// RunOnSPE/RunOnPPE placement, with FloatIntensive sending the thread
// to the registered kind with the cheapest predicted floating point and
// MemoryIntensive to the kind with the cheapest predicted memory
// access. Unannotated code stays where it is.
type AnnotationPolicy struct{}

// PlaceThread places annotated entry methods accordingly; unannotated
// threads start on the service kind (the general-purpose, OS-capable
// core).
func (AnnotationPolicy) PlaceThread(vm *VM, m *classfile.Method) isa.CoreKind {
	if k, ok := annotationKind(vm, m); ok {
		return k
	}
	return vm.serviceKind()
}

// OnInvoke migrates on annotated methods only.
func (AnnotationPolicy) OnInvoke(vm *VM, t *Thread, callee *classfile.Method, cur isa.CoreKind) isa.CoreKind {
	if k, ok := annotationKind(vm, callee); ok {
		return k
	}
	return cur
}

// annotationKind maps a method's placement annotations to a core kind.
// RunOnSPE/RunOnPPE are explicit pins to the named kind (ignored when
// the machine lacks it); the behavioural hints pick the registered kind
// minimising the predicted cost of the hinted behaviour, so a newly
// registered kind participates without the policy naming it.
func annotationKind(vm *VM, m *classfile.Method) (isa.CoreKind, bool) {
	switch {
	case m.Annotations[classfile.AnnRunOnSPE]:
		if vm.Machine.HasKind(isa.SPE) {
			return isa.SPE, true
		}
	case m.Annotations[classfile.AnnFloatIntensive]:
		if k, ok := vm.cheapestKind(isa.CoreKind.FPScore); ok {
			return k, true
		}
	case m.Annotations[classfile.AnnRunOnPPE]:
		if vm.Machine.HasKind(isa.PPE) {
			return isa.PPE, true
		}
	case m.Annotations[classfile.AnnMemoryIntensive]:
		if k, ok := vm.cheapestKind(isa.CoreKind.MemScore); ok {
			return k, true
		}
	}
	return vm.serviceKind(), false
}

// FixedPolicy pins every thread to one core kind and never migrates.
// The experiment harness uses it to reproduce Figure 4's "run entirely
// on the PPE" / "run entirely on N SPEs" configurations.
type FixedPolicy struct {
	Kind isa.CoreKind
}

// PlaceThread returns the fixed kind (or the service kind when the
// topology has no core of that kind).
func (p FixedPolicy) PlaceThread(vm *VM, m *classfile.Method) isa.CoreKind {
	if !vm.Machine.HasKind(p.Kind) {
		return vm.serviceKind()
	}
	return p.Kind
}

// OnInvoke never migrates.
func (p FixedPolicy) OnInvoke(vm *VM, t *Thread, callee *classfile.Method, cur isa.CoreKind) isa.CoreKind {
	return cur
}

// MonitoringPolicy implements the paper's proposed runtime-monitoring
// placement (§6): it watches per-method cycle composition gathered by
// the profiler and migrates threads into methods whose observed
// behaviour clearly favours one core kind — the registered kind with
// the lowest predicted cost for the dominant behaviour, not a
// hard-coded one. Methods need MinCycles of observation before a
// decision is made; annotated methods still win.
type MonitoringPolicy struct {
	// FPThreshold is the floating-point cycle share above which a method
	// migrates to the cheapest-FP kind; MemThreshold the main-memory
	// share above which it migrates to the cheapest-memory kind.
	FPThreshold  float64
	MemThreshold float64
	MinCycles    uint64
}

// DefaultMonitoringPolicy returns thresholds matched to the paper's
// Figure 5 analysis (mandelbrot ~40%+ FP -> SPE; compress' dominant
// main-memory share -> PPE).
func DefaultMonitoringPolicy() *MonitoringPolicy {
	return &MonitoringPolicy{FPThreshold: 0.25, MemThreshold: 0.45, MinCycles: 100000}
}

// PlaceThread starts threads on the service kind until monitoring says
// otherwise.
func (p *MonitoringPolicy) PlaceThread(vm *VM, m *classfile.Method) isa.CoreKind {
	if k, ok := annotationKind(vm, m); ok {
		return k
	}
	if k, ok := p.observedKind(vm, m); ok {
		return k
	}
	return vm.serviceKind()
}

// OnInvoke consults annotations first, then observed behaviour.
func (p *MonitoringPolicy) OnInvoke(vm *VM, t *Thread, callee *classfile.Method, cur isa.CoreKind) isa.CoreKind {
	if k, ok := annotationKind(vm, callee); ok {
		return k
	}
	if k, ok := p.observedKind(vm, callee); ok {
		return k
	}
	return cur
}

func (p *MonitoringPolicy) observedKind(vm *VM, m *classfile.Method) (isa.CoreKind, bool) {
	if len(vm.presentKinds) < 2 {
		return vm.serviceKind(), false
	}
	c := vm.Monitor.ByMethod[m.ID]
	if c == nil {
		return vm.serviceKind(), false
	}
	var total uint64
	for _, cy := range c.Cycles {
		total += cy
	}
	if total < p.MinCycles {
		return vm.serviceKind(), false
	}
	if c.FPShare() >= p.FPThreshold {
		return vm.cheapestKind(isa.CoreKind.FPScore)
	}
	if c.MemShare() >= p.MemThreshold {
		return vm.cheapestKind(isa.CoreKind.MemScore)
	}
	return vm.serviceKind(), false
}
