package vm

import (
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

// Policy decides thread placement: where new threads start and whether a
// method invocation should migrate the calling thread to the other core
// type. This is the paper's central control point — "the runtime system
// transparently maps application threads to the underlying heterogeneous
// core types, using information about each thread's behaviour (either
// through code annotations or runtime monitoring)".
type Policy interface {
	// PlaceThread chooses the core kind for a newly started thread whose
	// entry method is m.
	PlaceThread(vm *VM, m *classfile.Method) isa.CoreKind
	// OnInvoke chooses the core kind on which callee should execute;
	// returning a kind different from cur requests a migration.
	OnInvoke(vm *VM, t *Thread, callee *classfile.Method, cur isa.CoreKind) isa.CoreKind
}

// AnnotationPolicy is the paper's annotation-hint scheme (§3): explicit
// RunOnSPE/RunOnPPE placement, with FloatIntensive treated as an SPE
// hint and MemoryIntensive as a PPE hint. Unannotated code stays where
// it is.
type AnnotationPolicy struct{}

// PlaceThread places annotated entry methods accordingly; unannotated
// threads start on the PPE (the general-purpose, OS-capable core).
func (AnnotationPolicy) PlaceThread(vm *VM, m *classfile.Method) isa.CoreKind {
	if k, ok := annotationKind(vm, m); ok {
		return k
	}
	return isa.PPE
}

// OnInvoke migrates on annotated methods only.
func (AnnotationPolicy) OnInvoke(vm *VM, t *Thread, callee *classfile.Method, cur isa.CoreKind) isa.CoreKind {
	if k, ok := annotationKind(vm, callee); ok {
		return k
	}
	return cur
}

func annotationKind(vm *VM, m *classfile.Method) (isa.CoreKind, bool) {
	if !vm.Machine.HasKind(isa.SPE) {
		return isa.PPE, m.Annotations[classfile.AnnRunOnPPE]
	}
	switch {
	case m.Annotations[classfile.AnnRunOnSPE], m.Annotations[classfile.AnnFloatIntensive]:
		return isa.SPE, true
	case m.Annotations[classfile.AnnRunOnPPE], m.Annotations[classfile.AnnMemoryIntensive]:
		return isa.PPE, true
	}
	return isa.PPE, false
}

// FixedPolicy pins every thread to one core kind and never migrates.
// The experiment harness uses it to reproduce Figure 4's "run entirely
// on the PPE" / "run entirely on N SPEs" configurations.
type FixedPolicy struct {
	Kind isa.CoreKind
}

// PlaceThread returns the fixed kind (or the PPE when the topology has
// no core of that kind).
func (p FixedPolicy) PlaceThread(vm *VM, m *classfile.Method) isa.CoreKind {
	if !vm.Machine.HasKind(p.Kind) {
		return isa.PPE
	}
	return p.Kind
}

// OnInvoke never migrates.
func (p FixedPolicy) OnInvoke(vm *VM, t *Thread, callee *classfile.Method, cur isa.CoreKind) isa.CoreKind {
	return cur
}

// MonitoringPolicy implements the paper's proposed runtime-monitoring
// placement (§6): it watches per-method cycle composition gathered by
// the profiler and migrates threads into methods whose observed
// behaviour clearly favours one core type. Methods need MinCycles of
// observation before a decision is made; annotated methods still win.
type MonitoringPolicy struct {
	// FPThreshold is the floating-point cycle share above which a method
	// is an SPE candidate; MemThreshold the main-memory share above
	// which it is a PPE candidate.
	FPThreshold  float64
	MemThreshold float64
	MinCycles    uint64
}

// DefaultMonitoringPolicy returns thresholds matched to the paper's
// Figure 5 analysis (mandelbrot ~40%+ FP -> SPE; compress' dominant
// main-memory share -> PPE).
func DefaultMonitoringPolicy() *MonitoringPolicy {
	return &MonitoringPolicy{FPThreshold: 0.25, MemThreshold: 0.45, MinCycles: 100000}
}

// PlaceThread starts threads on the PPE until monitoring says otherwise.
func (p *MonitoringPolicy) PlaceThread(vm *VM, m *classfile.Method) isa.CoreKind {
	if k, ok := annotationKind(vm, m); ok {
		return k
	}
	if k, ok := p.observedKind(vm, m); ok {
		return k
	}
	return isa.PPE
}

// OnInvoke consults annotations first, then observed behaviour.
func (p *MonitoringPolicy) OnInvoke(vm *VM, t *Thread, callee *classfile.Method, cur isa.CoreKind) isa.CoreKind {
	if k, ok := annotationKind(vm, callee); ok {
		return k
	}
	if k, ok := p.observedKind(vm, callee); ok {
		return k
	}
	return cur
}

func (p *MonitoringPolicy) observedKind(vm *VM, m *classfile.Method) (isa.CoreKind, bool) {
	if !vm.Machine.HasKind(isa.SPE) {
		return isa.PPE, false
	}
	c := vm.Monitor.ByMethod[m.ID]
	if c == nil {
		return isa.PPE, false
	}
	var total uint64
	for _, cy := range c.Cycles {
		total += cy
	}
	if total < p.MinCycles {
		return isa.PPE, false
	}
	if c.FPShare() >= p.FPThreshold {
		return isa.SPE, true
	}
	if c.MemShare() >= p.MemThreshold {
		return isa.PPE, true
	}
	return isa.PPE, false
}
