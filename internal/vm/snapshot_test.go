package vm

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
)

// Workload scale. Big enough that the job runs for several hundred
// thousand cycles, so the freeze points in the tests land mid-run.
const (
	snapWorkerIters = 2000
	snapMainIters   = 5000
)

// buildSnapProg builds a job with plenty of state to transfer: a shared
// Counter object mutated under its monitor by two spawned Worker
// threads (each adds its loop index i to counter.v), a static
// accumulator, and a main-thread compute loop. main returns
// counter.v*1000 + acc + Snap.total — snapExpected mirrors it.
func buildSnapProg() *classfile.Program {
	p := newProg()
	threadCls := p.Lookup("java/lang/Thread")

	counter := p.NewClass("Counter", nil)
	vField := counter.NewField("v", classfile.Int)

	worker := p.NewClass("Worker", threadCls)
	cField := worker.NewField("c", classfile.Ref)
	nField := worker.NewField("n", classfile.Int)
	{
		a := worker.NewMethod("run", 0, classfile.Void).Asm()
		loop, done := a.NewLabel(), a.NewLabel()
		a.ConstI(1)
		a.StoreI(1)
		a.Bind(loop)
		a.LoadI(1)
		a.LoadRef(0)
		a.GetField(nField)
		a.IfICmpGT(done)
		a.LoadRef(0)
		a.GetField(cField)
		a.Dup()
		a.MonitorEnter()
		a.Dup()
		a.Dup()
		a.GetField(vField)
		a.LoadI(1)
		a.AddI()
		a.PutField(vField)
		a.MonitorExit()
		a.Inc(1, 1)
		a.Goto(loop)
		a.Bind(done)
		a.RetVoid()
		a.MustBuild()
	}

	snap := p.NewClass("Snap", nil)
	total := snap.NewStaticField("total", classfile.Int)
	a := snap.NewMethod("main", classfile.FlagStatic, classfile.Int).Asm()
	// locals: 0=counter 1=w1 2=w2 3=i 4=acc
	a.New(counter)
	a.StoreRef(0)
	for slot := 1; slot <= 2; slot++ {
		a.New(worker)
		a.Dup()
		a.LoadRef(0)
		a.PutField(cField)
		a.Dup()
		a.ConstI(snapWorkerIters)
		a.PutField(nField)
		a.Dup()
		a.StoreRef(slot)
		a.InvokeVirtual(threadCls.MethodByName("start"))
	}
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(3)
	a.ConstI(0)
	a.StoreI(4)
	a.Bind(loop)
	a.LoadI(3)
	a.ConstI(snapMainIters)
	a.IfICmpGE(done)
	a.LoadI(4)
	a.ConstI(3)
	a.MulI()
	a.LoadI(3)
	a.AddI()
	a.StoreI(4)
	a.GetStatic(total)
	a.LoadI(3)
	a.AddI()
	a.PutStatic(total)
	a.Inc(3, 1)
	a.Goto(loop)
	a.Bind(done)
	a.LoadRef(1)
	a.InvokeVirtual(threadCls.MethodByName("join"))
	a.LoadRef(2)
	a.InvokeVirtual(threadCls.MethodByName("join"))
	a.LoadRef(0)
	a.GetField(vField)
	a.ConstI(1000)
	a.MulI()
	a.LoadI(4)
	a.AddI()
	a.GetStatic(total)
	a.AddI()
	a.Ret()
	a.MustBuild()
	return p
}

// snapExpected mirrors Snap.main in Go (32-bit wrapping arithmetic,
// same as the VM's int ops).
func snapExpected() int32 {
	var acc, tot int32
	for i := int32(0); i < snapMainIters; i++ {
		acc = acc*3 + i
		tot += i
	}
	var cv int32
	for i := int32(1); i <= snapWorkerIters; i++ {
		cv += i
	}
	cv *= 2 // two workers
	return cv*1000 + acc + tot
}

// snapResult runs Snap.main to completion on a fresh machine and
// returns (result, output) — the control every hand-off compares to.
func snapResult(t *testing.T) (int32, string) {
	t.Helper()
	v, err := New(testConfig(), buildSnapProg())
	if err != nil {
		t.Fatal(err)
	}
	j, err := v.SubmitJob(JobSpec{Name: "snap", Class: "Snap", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.WaitJob(j); err != nil {
		t.Fatal(err)
	}
	return int32(uint32(j.Root().Result)), j.Output()
}

// freezeAt submits Snap.main, drives the source to the given cycle and
// freezes the job there. ErrJobDone (the job beat the freeze) is
// reported via the bool.
func freezeAt(t *testing.T, cycle cell.Clock) (*VM, *Job, *JobImage, bool) {
	t.Helper()
	src, err := New(testConfig(), buildSnapProg())
	if err != nil {
		t.Fatal(err)
	}
	j, err := src.SubmitJob(JobSpec{Name: "snap", Class: "Snap", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if cycle > 0 {
		if err := src.RunUntil(cycle); err != nil {
			t.Fatal(err)
		}
	}
	img, err := src.FreezeJob(context.Background(), j)
	if errors.Is(err, ErrJobDone) {
		return src, j, nil, false
	}
	if err != nil {
		t.Fatalf("freeze at %d: %v", cycle, err)
	}
	return src, j, img, true
}

// TestFreezeRehydrateMidRun is the hand-off differential: freeze the
// job at a spread of cycles — admission time, mid-compute, deep into
// the spawned threads' synchronized phase — rehydrate each image on an
// identically configured fresh machine, and require the checksum and
// captured output to match the never-frozen run exactly.
func TestFreezeRehydrateMidRun(t *testing.T) {
	wantRes, wantOut := snapResult(t)
	if wantRes != snapExpected() {
		t.Fatalf("control run checksum %d, mirror %d", wantRes, snapExpected())
	}
	froze := 0
	for _, cycle := range []cell.Clock{0, 30_000, 80_000, 150_000, 300_000, 600_000} {
		src, srcJob, img, ok := freezeAt(t, cycle)
		if !ok {
			continue // job completed before this freeze point
		}
		froze++
		if !srcJob.Frozen() || srcJob.Done() {
			t.Fatalf("cycle %d: frozen job state: frozen=%v done=%v", cycle, srcJob.Frozen(), srcJob.Done())
		}
		if err := src.WaitJob(srcJob); !errors.Is(err, ErrFrozen) {
			t.Fatalf("cycle %d: WaitJob on frozen job = %v, want ErrFrozen", cycle, err)
		}
		if src.LiveThreads() != 0 {
			t.Fatalf("cycle %d: %d live threads left on the source", cycle, src.LiveThreads())
		}
		if err := src.DrainJobs(); err != nil {
			t.Fatalf("cycle %d: source drain after freeze: %v", cycle, err)
		}

		dst, err := New(testConfig(), buildSnapProg())
		if err != nil {
			t.Fatal(err)
		}
		dj, err := dst.RehydrateJob(img, 0)
		if err != nil {
			t.Fatalf("cycle %d: rehydrate: %v", cycle, err)
		}
		if err := dst.WaitJob(dj); err != nil {
			t.Fatalf("cycle %d: rehydrated job: %v", cycle, err)
		}
		if got := int32(uint32(dj.Root().Result)); got != wantRes {
			t.Errorf("cycle %d: checksum after hand-off = %d, want %d", cycle, got, wantRes)
		}
		if got := dj.Output(); got != wantOut {
			t.Errorf("cycle %d: output after hand-off = %q, want %q", cycle, got, wantOut)
		}
		if dj.AdmittedAt != srcJob.AdmittedAt {
			t.Errorf("cycle %d: admission cycle changed across hand-off: %d vs %d",
				cycle, dj.AdmittedAt, srcJob.AdmittedAt)
		}
	}
	if froze == 0 {
		t.Fatal("every freeze point landed after job completion; test exercised nothing")
	}
}

// TestFreezeRehydrateReplayIdentical: the whole freeze+rehydrate flow
// is part of the deterministic schedule — two identical replays produce
// the same image bytes and byte-identical target-side results.
func TestFreezeRehydrateReplayIdentical(t *testing.T) {
	run := func() ([]byte, cell.Clock, uint64, JobStats, string) {
		_, _, img, ok := freezeAt(t, 80_000)
		if !ok {
			t.Fatal("job completed before the freeze point; pick an earlier cycle")
		}
		dst, err := New(testConfig(), buildSnapProg())
		if err != nil {
			t.Fatal(err)
		}
		dj, err := dst.RehydrateJob(img, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.WaitJob(dj); err != nil {
			t.Fatal(err)
		}
		return EncodeJobImage(img), dj.CompletedAt, dj.Root().Result, dj.Stats, dj.Output()
	}
	b1, c1, r1, s1, o1 := run()
	b2, c2, r2, s2, o2 := run()
	if !reflect.DeepEqual(b1, b2) {
		t.Error("image bytes differ across identical replays")
	}
	if c1 != c2 || r1 != r2 || o1 != o2 || s1 != s2 {
		t.Errorf("target-side results differ across identical replays: (%d,%d,%+v,%q) vs (%d,%d,%+v,%q)",
			c1, r1, s1, o1, c2, r2, s2, o2)
	}
}

// TestFreezeCtxCancelAborts is the cancellation regression: a cancelled
// context aborts an in-progress freeze cleanly — the parked threads
// resume and the job runs to its normal completion on the source.
func TestFreezeCtxCancelAborts(t *testing.T) {
	wantRes, wantOut := snapResult(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	aborted := false
	for _, cycle := range []cell.Clock{30_000, 80_000, 150_000} {
		src, err := New(testConfig(), buildSnapProg())
		if err != nil {
			t.Fatal(err)
		}
		j, err := src.SubmitJob(JobSpec{Name: "snap", Class: "Snap", Method: "main"})
		if err != nil {
			t.Fatal(err)
		}
		if err := src.RunUntil(cycle); err != nil {
			t.Fatal(err)
		}
		_, err = src.FreezeJob(ctx, j)
		switch {
		case errors.Is(err, context.Canceled):
			aborted = true
		case err == nil:
			// The job happened to sit at a safe point already — the ctx is
			// only polled while driving. Not the case under test.
			continue
		case errors.Is(err, ErrJobDone):
			continue
		default:
			t.Fatalf("cycle %d: freeze under cancelled ctx: %v", cycle, err)
		}
		if j.Frozen() {
			t.Fatal("job marked frozen after an aborted freeze")
		}
		if err := src.WaitJob(j); err != nil {
			t.Fatalf("job after aborted freeze: %v", err)
		}
		if got := int32(uint32(j.Root().Result)); got != wantRes {
			t.Errorf("checksum after aborted freeze = %d, want %d", got, wantRes)
		}
		if got := j.Output(); got != wantOut {
			t.Errorf("output after aborted freeze = %q, want %q", got, wantOut)
		}
	}
	if !aborted {
		t.Fatal("no freeze point exercised the cancellation path")
	}
}

// TestFreezeDoneJob: freezing a completed job reports ErrJobDone.
func TestFreezeDoneJob(t *testing.T) {
	v, err := New(testConfig(), buildSnapProg())
	if err != nil {
		t.Fatal(err)
	}
	j, err := v.SubmitJob(JobSpec{Name: "snap", Class: "Snap", Method: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.WaitJob(j); err != nil {
		t.Fatal(err)
	}
	if _, err := v.FreezeJob(context.Background(), j); !errors.Is(err, ErrJobDone) {
		t.Fatalf("freeze of done job = %v, want ErrJobDone", err)
	}
}

// TestFreezeCustomPolicyRefused: a job under a policy the image cannot
// express is refused up front, before any driving.
func TestFreezeCustomPolicyRefused(t *testing.T) {
	v, err := New(testConfig(), buildTwoEntryProg())
	if err != nil {
		t.Fatal(err)
	}
	j, err := v.SubmitJob(JobSpec{Class: "EntryA", Method: "main", Policy: customPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.FreezeJob(context.Background(), j); !errors.Is(err, ErrNotFreezable) {
		t.Fatalf("freeze under a custom policy = %v, want ErrNotFreezable", err)
	}
	if err := v.WaitJob(j); err != nil {
		t.Fatalf("job after refused freeze: %v", err)
	}
}

// customPolicy is an unserializable Policy implementation.
type customPolicy struct{ AnnotationPolicy }

// TestRehydrateOnDifferentTopology: the image recompiles for whatever
// kinds the target machine has; a PPE-only target still completes the
// job with the right checksum.
func TestRehydrateOnDifferentTopology(t *testing.T) {
	wantRes, wantOut := snapResult(t)
	_, _, img, ok := freezeAt(t, 80_000)
	if !ok {
		t.Skip("job completed before the freeze point")
	}
	cfg := testConfig()
	cfg.Machine.Topology = cell.PS3Topology(0)
	dst, err := New(cfg, buildSnapProg())
	if err != nil {
		t.Fatal(err)
	}
	dj, err := dst.RehydrateJob(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.WaitJob(dj); err != nil {
		t.Fatal(err)
	}
	if got := int32(uint32(dj.Root().Result)); got != wantRes {
		t.Errorf("checksum on PPE-only target = %d, want %d", got, wantRes)
	}
	if got := dj.Output(); got != wantOut {
		t.Errorf("output on PPE-only target = %q, want %q", got, wantOut)
	}
}

// TestRehydrateRejectsCorruptImages: structurally invalid images error
// out of RehydrateJob before any machine state changes.
func TestRehydrateRejectsCorruptImages(t *testing.T) {
	_, _, img, ok := freezeAt(t, 80_000)
	if !ok {
		t.Skip("job completed before the freeze point")
	}
	corrupt := []func(*JobImage){
		func(i *JobImage) { i.Threads = nil },
		func(i *JobImage) { i.Threads[0].Frames[0].Class = "NoSuchClass" },
		func(i *JobImage) { i.Threads[0].Frames[0].Method = 99 },
		func(i *JobImage) { i.Threads[0].Frames[0].BC = 1 << 20 },
		func(i *JobImage) { i.Threads[0].JavaObj = 1 << 20 },
		func(i *JobImage) { i.Threads[0].Joiners = []int32{42} },
		func(i *JobImage) {
			if len(i.Monitors) == 0 {
				i.Monitors = []ImageMonitor{{}}
			}
			i.Monitors[0].Obj = 1 << 20
		},
		func(i *JobImage) {
			if len(i.Statics) > 0 {
				i.Statics[0].Slots = i.Statics[0].Slots[:0]
			} else {
				i.Threads = nil
			}
		},
	}
	for ci, mutate := range corrupt {
		// Round-trip through the codec for a deep copy to mutate.
		cp, err := DecodeJobImage(EncodeJobImage(img))
		if err != nil {
			t.Fatal(err)
		}
		mutate(cp)
		dst, err := New(testConfig(), buildSnapProg())
		if err != nil {
			t.Fatal(err)
		}
		before := dst.LiveThreads()
		if _, err := dst.RehydrateJob(cp, 0); err == nil {
			t.Errorf("corruption %d: rehydrate accepted an invalid image", ci)
		}
		if dst.LiveThreads() != before {
			t.Errorf("corruption %d: failed rehydrate leaked live threads", ci)
		}
	}
}
