package vm

import (
	"strings"
	"testing"

	"herajvm/internal/cache"
	"herajvm/internal/classfile"
	"herajvm/internal/jit"
)

// hotLoopProg builds a tight arithmetic loop whose body is one long pure
// run — the shape the superblock fast path exists for.
func hotLoopProg() *classfile.Program {
	p := newProg()
	c := p.NewClass("Hot", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	loop, done := a.NewLabel(), a.NewLabel()
	a.ConstI(0)
	a.StoreI(0) // i
	a.ConstI(1)
	a.StoreI(1) // acc
	a.Bind(loop)
	a.LoadI(0)
	a.ConstI(5000)
	a.IfICmpGE(done)
	a.LoadI(1)
	a.ConstI(31)
	a.MulI()
	a.LoadI(0)
	a.AddI()
	a.ConstI(7)
	a.DivI() // guarded: constant divisor inside the block
	a.LoadI(1)
	a.XorI()
	a.StoreI(1)
	a.Inc(0, 1)
	a.Goto(loop)
	a.Bind(done)
	a.LoadI(1)
	a.Ret()
	a.MustBuild()
	return p
}

// TestFastPathMatchesDisabled runs the same hot loop with superblocks on
// (the default) and off, and requires identical simulated results: return
// value, final clocks, per-class cycle counters and retired instruction
// counts. Only the fast-forward counters may differ — they record which
// path did the work, not how much work was done.
func TestFastPathMatchesDisabled(t *testing.T) {
	run := func(disable bool) *VM {
		cfg := testConfig()
		cfg.DisableSuperblocks = disable
		vmach, err := New(cfg, hotLoopProg())
		if err != nil {
			t.Fatal(err)
		}
		th, err := vmach.RunMain("Hot", "main")
		if err != nil {
			t.Fatal(err)
		}
		if !th.HasResult {
			t.Fatal("no result")
		}
		return vmach
	}
	fast, slow := run(false), run(true)

	if f, s := fast.Machine.MaxClock(), slow.Machine.MaxClock(); f != s {
		t.Errorf("MaxClock: fast=%d slow=%d", f, s)
	}
	var ffBlocks, ffInstrs uint64
	fcores, scores := fast.Machine.Cores(), slow.Machine.Cores()
	for i := range fcores {
		fs, ss := &fcores[i].Stats, &scores[i].Stats
		if fs.Cycles != ss.Cycles {
			t.Errorf("core %d: Cycles fast=%v slow=%v", i, fs.Cycles, ss.Cycles)
		}
		if fs.Instrs != ss.Instrs || fs.Idle != ss.Idle {
			t.Errorf("core %d: instrs/idle fast=%d/%d slow=%d/%d",
				i, fs.Instrs, fs.Idle, ss.Instrs, ss.Idle)
		}
		ffBlocks += fs.FastForwardedBlocks
		ffInstrs += fs.FastForwardedInstrs
		if ss.FastForwardedBlocks != 0 || ss.FastForwardedInstrs != 0 {
			t.Errorf("core %d: disabled run fast-forwarded %d blocks", i, ss.FastForwardedBlocks)
		}
	}
	if ffBlocks == 0 || ffInstrs == 0 {
		t.Errorf("fast run never took the fast path (blocks=%d instrs=%d)", ffBlocks, ffInstrs)
	}
}

// TestResidencyMaskCoversAllClasses pins the cross-package constant
// agreement: jit.ResMaskAll must have exactly one bit per residency
// class the cache layer defines, or the fast-path validity check
// silently rejects (or falsely accepts) classes.
func TestResidencyMaskCoversAllClasses(t *testing.T) {
	want := uint8(1<<uint(cache.NumResidencyClasses)) - 1
	if jit.ResMaskAll != want {
		t.Fatalf("jit.ResMaskAll=%#x want %#x (cache.NumResidencyClasses=%d)",
			jit.ResMaskAll, want, cache.NumResidencyClasses)
	}
}

// TestMarkerFrameWithoutCallerTraps is the regression test for the
// malformed-migration livelock: a thread whose only frame is a migration
// marker must trap (markers are always pushed beneath a callee), not spin
// in execute without charging a cycle.
func TestMarkerFrameWithoutCallerTraps(t *testing.T) {
	vmach, err := New(testConfig(), newProg())
	if err != nil {
		t.Fatal(err)
	}
	core := vmach.Machine.Cores()[0]
	th := &Thread{
		ID:     99,
		Name:   "malformed",
		State:  StateRunning,
		Frames: []*Frame{{Marker: true}},
	}
	before := core.Now
	vmach.execute(core, th, 1000)
	if th.State != StateTerminated {
		t.Fatalf("thread state %v, want terminated (execute must not spin)", th.State)
	}
	if th.Trap == nil || !strings.Contains(th.Trap.Error(), "migration marker") {
		t.Fatalf("trap = %v, want migration-marker InternalError", th.Trap)
	}
	if core.Now != before {
		t.Errorf("trap should not charge cycles (now %d -> %d)", before, core.Now)
	}
}
