package vm

import (
	"fmt"
	"math"

	"herajvm/internal/cell"
	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

func f64bits(v float64) uint64 { return math.Float64bits(v) }

// NativeKind classifies how a native method executes (§3.2.3).
type NativeKind uint8

const (
	// NativeCompute runs in place on the current core (pure computation,
	// e.g. java/lang/Math).
	NativeCompute NativeKind = iota
	// NativeSyscall is a runtime fast syscall: on a core whose kind
	// cannot host runtime services it is shipped to the dedicated
	// service-core thread by mailbox message and the calling thread
	// stalls for the round trip.
	NativeSyscall
	// NativeJNI migrates the thread to the service core's kind for the
	// duration of the native method, then migrates back.
	NativeJNI
)

// NativeFunc is a native method body. It runs Go-side; costs are charged
// by the dispatcher plus whatever the body adds via ctx.Charge.
type NativeFunc func(ctx *NativeCtx) error

// Native describes one registered native method.
type Native struct {
	Kind NativeKind
	// Cycles is the compute cost on a hardware-cached core (the PPE);
	// SPECycles, when nonzero, overrides it on local-store accelerator
	// cores (SPE, VPU).
	Cycles    uint64
	SPECycles uint64
	// Class is the operation class the compute cost is billed to.
	Class isa.OpClass
	Fn    NativeFunc
}

// NativeCtx is the environment passed to a native body.
type NativeCtx struct {
	VM     *VM
	Core   *cell.Core
	Thread *Thread
	Method *classfile.Method
	// Args holds the arguments, receiver first for instance methods.
	Args    []uint64
	ArgRefs []bool

	retVal uint64
	retRef bool
	hasRet bool
}

// ReturnI sets an int return value; the other Return helpers follow.
func (c *NativeCtx) ReturnI(v int32) { c.retVal, c.retRef, c.hasRet = uint64(uint32(v)), false, true }

// ReturnL sets a long return value.
func (c *NativeCtx) ReturnL(v int64) { c.retVal, c.retRef, c.hasRet = uint64(v), false, true }

// ReturnD sets a double return value.
func (c *NativeCtx) ReturnD(v float64) {
	c.retVal, c.retRef, c.hasRet = f64bits(v), false, true
}

// ReturnRef sets a reference return value.
func (c *NativeCtx) ReturnRef(r Ref) { c.retVal, c.retRef, c.hasRet = uint64(r), true, true }

// Charge bills extra cycles to the calling core (for natives whose cost
// depends on their arguments, e.g. System.arraycopy).
func (c *NativeCtx) Charge(class isa.OpClass, n uint64) { c.Core.Charge(class, n) }

// RegisterNative installs (or overrides) a native implementation by tag
// ("Class.method"). Applications can register their own natives before
// running, e.g. to model accelerator calls.
func (vm *VM) RegisterNative(tag string, n *Native) { vm.natives[tag] = n }

// serviceCore is the core hosting the runtime services (the dedicated
// syscall service thread and the collector). By convention it is the
// topology's first core of a service-hosting kind; validation
// guarantees one exists.
func (vm *VM) serviceCore() *cell.Core { return vm.service }

// pendingNativeCall carries a JNI native across the migration to the
// service core.
type pendingNativeCall struct {
	native *Native
	ctx    *NativeCtx
	callee *classfile.Method
}

// invokeNative dispatches a native method call from frame f.
func (vm *VM) invokeNative(core *cell.Core, t *Thread, f *Frame, callee *classfile.Method) error {
	n := vm.natives[callee.NativeTag]
	if n == nil {
		return vm.trapAt(f, "UnsatisfiedLinkError", callee.NativeTag)
	}
	nargs := callee.ArgSlots()
	args := make([]uint64, nargs)
	argRefs := make([]bool, nargs)
	for i := nargs - 1; i >= 0; i-- {
		args[i], argRefs[i] = f.pop()
	}
	ctx := &NativeCtx{VM: vm, Core: core, Thread: t, Method: callee, Args: args, ArgRefs: argRefs}

	switch n.Kind {
	case NativeCompute:
		return vm.runComputeNative(core, t, f, callee, n, ctx)

	case NativeSyscall:
		core.Stats.Syscalls++
		if !core.Kind.HostsServices() {
			// Mailbox message to the dedicated service-core thread
			// (§3.2.3): the calling thread stalls for the round trip; the
			// service serialises concurrent requests.
			arrive := core.Now + vm.Cfg.SyscallSendCycles
			start := arrive
			if vm.svcBusy > start {
				start = vm.svcBusy
			}
			done := start + vm.Cfg.SyscallServeCycles
			vm.svcBusy = done
			vm.serviceCore().Stats.Syscalls++
			if err := n.Fn(ctx); err != nil {
				return vm.nativeTrap(f, callee, err)
			}
			vm.pushNativeResult(f, callee, ctx)
			t.ReadyAt = done + vm.Cfg.SyscallSendCycles
			vm.enqueue(t) // thread stalls until the reply arrives
			return nil
		}
		core.Charge(isa.ClassBranch, vm.Cfg.SyscallServeCycles)
		if err := n.Fn(ctx); err != nil {
			return vm.nativeTrap(f, callee, err)
		}
		vm.pushNativeResult(f, callee, ctx)
		return nil

	case NativeJNI:
		if !core.Kind.HostsServices() {
			// "In the case of a JNI method, the thread is migrated to
			// the PPE core for the duration of the native method"
			// (§3.2.3) — the service kind, in registry terms.
			t.pushFrame(&Frame{Marker: true, ReturnKind: core.Kind, ReturnCore: core.ID})
			t.pendingNative = &pendingNativeCall{native: n, ctx: ctx, callee: callee}
			vm.migrate(core, t, vm.serviceKind(), nargs)
			return nil
		}
		return vm.runComputeNative(core, t, f, callee, n, ctx)
	}
	return vm.trapAt(f, "InternalError", fmt.Sprintf("bad native kind %d", n.Kind))
}

// runComputeNative charges and executes a native in place.
func (vm *VM) runComputeNative(core *cell.Core, t *Thread, f *Frame,
	callee *classfile.Method, n *Native, ctx *NativeCtx) error {

	cycles := n.Cycles
	if core.Kind.UsesLocalStore() && n.SPECycles != 0 {
		cycles = n.SPECycles
	}
	core.Charge(n.Class, cycles)
	if err := n.Fn(ctx); err != nil {
		return vm.nativeTrap(f, callee, err)
	}
	if t.State != StateRunning {
		// The native blocked the thread (join/wait): no result to push
		// (blocking natives are void).
		return nil
	}
	vm.pushNativeResult(f, callee, ctx)
	return nil
}

// resumePendingNative completes a JNI native after the thread arrived on
// the PPE, then migrates it back with the result.
func (vm *VM) resumePendingNative(core *cell.Core, t *Thread) {
	p := t.pendingNative
	t.pendingNative = nil
	p.ctx.Core = core
	core.Charge(p.native.Class, p.native.Cycles)
	if err := p.native.Fn(p.ctx); err != nil {
		vm.trap(core, t, err)
		return
	}
	if t.State != StateRunning {
		return
	}
	// The migration marker is on top; carry the value back. The
	// executor's marker handling pushes it into the caller.
	t.pendingVal = p.ctx.retVal
	t.pendingIsRef = p.ctx.retRef
	t.pendingHasVal = p.ctx.hasRet || p.callee.Ret != classfile.Void
	if !p.ctx.hasRet && p.callee.Ret == classfile.Void {
		t.pendingHasVal = false
	}
	marker := t.top()
	words := 0
	if t.pendingHasVal {
		words = 1
	}
	vm.migrate(core, t, marker.ReturnKind, words)
}

// pushNativeResult pushes the declared return value (zero if the body
// set none).
func (vm *VM) pushNativeResult(f *Frame, callee *classfile.Method, ctx *NativeCtx) {
	if callee.Ret == classfile.Void {
		return
	}
	f.push(ctx.retVal, ctx.retRef)
}

func (vm *VM) nativeTrap(f *Frame, callee *classfile.Method, err error) error {
	if te, ok := err.(*TrapError); ok {
		if te.Method == "" {
			te.Method = callee.Sig()
		}
		return te
	}
	return vm.trapAt(f, "InternalError", err.Error())
}

// GoString reads a java/lang/String into a Go string (runtime-internal,
// no cycle cost: used by natives that already charged their cost).
func (vm *VM) GoString(s Ref) string {
	if s == 0 {
		return "<null>"
	}
	cls := vm.classOf(s)
	if cls != vm.stringCls || cls == nil {
		return fmt.Sprintf("<obj %#x>", s)
	}
	arr := Ref(vm.Heap.FieldSlot(s, cls.FieldByName("value").Slot))
	count := uint32(vm.Heap.FieldSlot(s, cls.FieldByName("count").Slot))
	buf := make([]byte, count)
	for i := uint32(0); i < count; i++ {
		buf[i] = byte(vm.Machine.Mem.Read16(arr + isa.HeaderBytes + i*2))
	}
	return string(buf)
}
