package vm

import (
	"testing"

	"herajvm/internal/isa"
)

// churnMigrations submits four staggered compute-bound jobs (see
// migrate_test.go's worker program) to one booted VM on the three-kind
// single-core-per-kind machine under -sched migrate — the oscillating
// load shape: each arriving job re-floods the SPE while earlier jobs
// drain, so the imbalance keeps reversing. It returns the largest
// per-thread migration count and how many threads migrated more than
// once.
func churnMigrations(t *testing.T, cooldown uint64) (most uint64, multi int) {
	t.Helper()
	cfg := threeKindConfig()
	cfg.MigrateCooldownCycles = cooldown
	vm, err := New(cfg, buildComputeWorkers(6, 2000))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		if _, err := vm.SubmitJob(JobSpec{Class: "Main", Method: "main", Arrival: uint64(j) * 500_000}); err != nil {
			t.Fatal(err)
		}
	}
	if err := vm.DrainJobs(); err != nil {
		t.Fatal(err)
	}
	for _, job := range vm.Jobs() {
		if job.Err() != nil {
			t.Fatal(job.Err())
		}
	}
	for _, th := range vm.threads {
		if th.Migrations > most {
			most = th.Migrations
		}
		if th.Migrations >= 2 {
			multi++
		}
	}
	return most, multi
}

// TestMigrateCooldownStopsPingPong: under oscillating load, threads
// are migrated cross-kind repeatedly when no hysteresis guards them.
// The cooldown bounds that churn: with a cooldown longer than the run,
// no thread is ever re-migrated.
func TestMigrateCooldownStopsPingPong(t *testing.T) {
	mostFree, multiFree := churnMigrations(t, 0)
	if mostFree < 2 || multiFree == 0 {
		t.Fatalf("scenario does not oscillate: max per-thread migrations without cooldown = %d (%d threads >= 2)",
			mostFree, multiFree)
	}
	mostGuard, multiGuard := churnMigrations(t, 1<<40)
	if mostGuard > 1 || multiGuard != 0 {
		t.Errorf("with an unbounded cooldown a thread migrated %d times (%d threads >= 2), want at most once",
			mostGuard, multiGuard)
	}
}

// TestMigrateCooldownVetoWindow exercises the veto directly: a thread
// that just migrated is not migratable again until its core's clock
// passes the cooldown horizon.
func TestMigrateCooldownVetoWindow(t *testing.T) {
	cfg := threeKindConfig()
	cfg.MigrateCooldownCycles = 5000
	vm, err := New(cfg, newProg())
	if err != nil {
		t.Fatal(err)
	}
	spe := vm.Machine.CoreAt(isa.SPE, 0)
	ppe := vm.Machine.CoreAt(isa.PPE, 0)

	th := vm.newThread("w")
	th.Kind, th.CoreID = isa.SPE, 0
	if _, ok := vm.recompileEstimate(th, ppe); !ok {
		t.Fatal("a fresh thread must be migratable")
	}
	at, ok := vm.onMigrate(th, spe, ppe, 100)
	if !ok {
		t.Fatal("migration hook vetoed an empty-stack thread")
	}
	if _, ok := vm.recompileEstimate(th, spe); ok {
		t.Error("thread re-migratable immediately after a migration")
	}
	ppe.Now = at + cfg.MigrateCooldownCycles + 1
	if _, ok := vm.recompileEstimate(th, spe); !ok {
		t.Error("thread still vetoed after its core clock passed the cooldown")
	}
}
