package vm

import (
	"fmt"

	"herajvm/internal/cell"
)

// monitor is the VM-side state of one object's lock: the owner and
// recursion count mirror the header lock word (owner<<8 | count); the
// queues hold blocked and waiting threads.
type monitor struct {
	owner   *Thread
	count   int
	blocked []*Thread // waiting to acquire
	waiters []*Thread // in Object.wait
}

func (vm *VM) monitorOf(obj Ref) *monitor {
	m := vm.monitors[obj]
	if m == nil {
		m = &monitor{}
		vm.monitors[obj] = m
	}
	return m
}

func (vm *VM) writeLockWord(obj Ref, m *monitor) {
	var w uint32
	if m.owner != nil {
		w = uint32(m.owner.ID+1)<<8 | uint32(m.count&0xff)
	}
	vm.Heap.SetLockWord(obj, w)
}

// monitorEnter attempts to acquire obj's monitor for t on core. It
// returns false when the thread blocked (the caller must stop executing
// it). On a local-store core, a successful acquire purges the software
// data cache (acquire barrier, §3.2.1).
func (vm *VM) monitorEnter(core *cell.Core, t *Thread, obj Ref) bool {
	m := vm.monitorOf(obj)
	switch {
	case m.owner == nil:
		m.owner = t
		m.count = 1
	case m.owner == t:
		m.count++
	default:
		t.State = StateBlocked
		m.blocked = append(m.blocked, t)
		return false
	}
	vm.writeLockWord(obj, m)
	if dc := vm.dcaches[core.Index]; dc != nil && !vm.Cfg.UnsafeNoCoherence {
		core.Now = dc.Purge(core.Now)
	}
	return true
}

// monitorExit releases obj's monitor. On a local-store core, dirty
// cached data is flushed before the release becomes visible (release
// barrier, §3.2.1).
func (vm *VM) monitorExit(core *cell.Core, t *Thread, obj Ref) error {
	m := vm.monitorOf(obj)
	if m.owner != t {
		return &TrapError{Kind: "IllegalMonitorStateException",
			Detail: fmt.Sprintf("thread %d does not own monitor %#x", t.ID, obj)}
	}
	if dc := vm.dcaches[core.Index]; dc != nil && !vm.Cfg.UnsafeNoCoherence {
		core.Now = dc.Flush(core.Now)
	}
	m.count--
	if m.count > 0 {
		vm.writeLockWord(obj, m)
		return nil
	}
	m.owner = nil
	vm.writeLockWord(obj, m)
	vm.wakeBlocked(core, m)
	return nil
}

// wakeBlocked hands the monitor to the first blocked thread, if any.
func (vm *VM) wakeBlocked(core *cell.Core, m *monitor) {
	if len(m.blocked) == 0 {
		return
	}
	next := m.blocked[0]
	m.blocked = m.blocked[1:]
	m.owner = next
	m.count = 1
	if next.waitCount > 1 { // returning from Object.wait: restore recursion
		m.count = next.waitCount
	}
	next.waitCount = 0
	next.State = StateReady
	next.ReadyAt = core.Now + 60 // handoff latency
	vm.enqueue(next)
}

// monitorWait implements Object.wait(): release fully, park on the wait
// set. The thread must own the monitor.
func (vm *VM) monitorWait(core *cell.Core, t *Thread, obj Ref) error {
	m := vm.monitorOf(obj)
	if m.owner != t {
		return &TrapError{Kind: "IllegalMonitorStateException", Detail: "wait without lock"}
	}
	if dc := vm.dcaches[core.Index]; dc != nil {
		core.Now = dc.Flush(core.Now)
	}
	t.waitCount = m.count
	m.owner = nil
	m.count = 0
	vm.writeLockWord(obj, m)
	m.waiters = append(m.waiters, t)
	t.State = StateBlocked
	vm.wakeBlocked(core, m)
	return nil
}

// monitorNotify moves up to n waiters to the blocked queue (they must
// reacquire before continuing, restoring their recursion count).
func (vm *VM) monitorNotify(core *cell.Core, t *Thread, obj Ref, n int) error {
	m := vm.monitorOf(obj)
	if m.owner != t {
		return &TrapError{Kind: "IllegalMonitorStateException", Detail: "notify without lock"}
	}
	for n != 0 && len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.blocked = append(m.blocked, w)
		n--
	}
	return nil
}
