package vm

import (
	"strings"
	"testing"

	"herajvm/internal/classfile"
	"herajvm/internal/isa"
)

func TestCatchDivByZero(t *testing.T) {
	p := newProg()
	arith := p.Lookup("java/lang/ArithmeticException")
	c := p.NewClass("Catchy", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	tryStart, tryEnd, handler := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.Bind(tryStart)
	a.ConstI(1)
	a.ConstI(0)
	a.DivI() // throws
	a.Ret()
	a.Bind(tryEnd)
	a.Bind(handler)
	a.Pop() // discard the exception object
	a.ConstI(-99)
	a.Ret()
	a.Catch(tryStart, tryEnd, handler, arith)
	a.MustBuild()

	_, th := runMain(t, testConfig(), p, "Catchy", "main")
	if got := int32(uint32(th.Result)); got != -99 {
		t.Errorf("handler result: %d", got)
	}
}

func TestCatchTypeFiltering(t *testing.T) {
	// An ArithmeticException must NOT be caught by a handler typed
	// NullPointerException, but must be caught by RuntimeException.
	p := newProg()
	npe := p.Lookup("java/lang/NullPointerException")
	rte := p.Lookup("java/lang/RuntimeException")
	c := p.NewClass("Filter", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	tryStart, tryEnd := a.NewLabel(), a.NewLabel()
	hNPE, hRTE := a.NewLabel(), a.NewLabel()
	a.Bind(tryStart)
	a.ConstI(1)
	a.ConstI(0)
	a.RemI()
	a.Ret()
	a.Bind(tryEnd)
	a.Bind(hNPE)
	a.Pop()
	a.ConstI(1)
	a.Ret()
	a.Bind(hRTE)
	a.Pop()
	a.ConstI(2)
	a.Ret()
	a.Catch(tryStart, tryEnd, hNPE, npe) // first, wrong type
	a.Catch(tryStart, tryEnd, hRTE, rte) // second, supertype: matches
	a.MustBuild()

	_, th := runMain(t, testConfig(), p, "Filter", "main")
	if got := int32(uint32(th.Result)); got != 2 {
		t.Errorf("want RuntimeException handler (2), got %d", got)
	}
}

func TestAthrowUserExceptionWithMessage(t *testing.T) {
	p := newProg()
	throwable := p.Lookup("java/lang/Throwable")
	exCls := p.NewClass("AppError", p.Lookup("java/lang/Exception"))
	c := p.NewClass("Main", nil)

	thrower := c.NewMethod("boom", classfile.FlagStatic, classfile.Void)
	{
		a := thrower.Asm()
		a.New(exCls)
		a.Dup()
		a.Str("custom failure")
		a.PutField(throwable.FieldByName("message"))
		a.Throw()
		a.MustBuild()
	}
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Ref)
	a := m.Asm()
	tryStart, tryEnd, handler := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.Bind(tryStart)
	a.InvokeStatic(thrower)
	a.Null()
	a.Ret()
	a.Bind(tryEnd)
	a.Bind(handler)
	a.InvokeVirtual(throwable.MethodByName("getMessage"))
	a.Ret()
	a.Catch(tryStart, tryEnd, handler, exCls)
	a.MustBuild()

	vm, th := runMain(t, testConfig(), p, "Main", "main")
	if got := vm.GoString(Ref(th.Result)); got != "custom failure" {
		t.Errorf("caught message: %q", got)
	}
}

func TestUncaughtPropagatesThroughFrames(t *testing.T) {
	p := newProg()
	c := p.NewClass("Deep", nil)
	inner := c.NewMethod("inner", classfile.FlagStatic, classfile.Void)
	{
		a := inner.Asm()
		a.Null()
		a.ArrayLen() // NPE
		a.Pop()
		a.RetVoid()
		a.MustBuild()
	}
	outer := c.NewMethod("outer", classfile.FlagStatic, classfile.Void)
	{
		a := outer.Asm()
		a.InvokeStatic(inner)
		a.RetVoid()
		a.MustBuild()
	}
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Void)
	a := m.Asm()
	a.InvokeStatic(outer)
	a.RetVoid()
	a.MustBuild()

	vm, err := New(testConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.RunMain("Deep", "main"); err == nil ||
		!strings.Contains(err.Error(), "NullPointerException") {
		t.Errorf("want uncaught NPE, got %v", err)
	}
}

func TestCatchInCallerFrame(t *testing.T) {
	// The callee throws; the caller's handler around the call site
	// catches it after the callee's frame is discarded.
	p := newProg()
	rte := p.Lookup("java/lang/RuntimeException")
	c := p.NewClass("Main", nil)
	callee := c.NewMethod("boom", classfile.FlagStatic, classfile.Int)
	{
		a := callee.Asm()
		a.ConstI(5)
		a.ConstI(0)
		a.DivI()
		a.Ret()
		a.MustBuild()
	}
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	tryStart, tryEnd, handler := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.Bind(tryStart)
	a.InvokeStatic(callee)
	a.Ret()
	a.Bind(tryEnd)
	a.Bind(handler)
	a.Pop()
	a.ConstI(77)
	a.Ret()
	a.Catch(tryStart, tryEnd, handler, rte)
	a.MustBuild()

	_, th := runMain(t, testConfig(), p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 77 {
		t.Errorf("caller-frame catch: %d", got)
	}
}

func TestUnwindReleasesSynchronizedMonitor(t *testing.T) {
	// A synchronized method throws; its monitor must be released during
	// unwinding so another thread can later acquire it.
	p := newProg()
	rte := p.Lookup("java/lang/RuntimeException")
	c := p.NewClass("Main", nil)
	sync := c.NewMethod("boom", classfile.FlagStatic|classfile.FlagSynchronized, classfile.Void)
	{
		a := sync.Asm()
		a.ConstI(1)
		a.ConstI(0)
		a.DivI()
		a.Pop()
		a.RetVoid()
		a.MustBuild()
	}
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	tryStart, tryEnd, handler := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.Bind(tryStart)
	a.InvokeStatic(sync)
	a.ConstI(0)
	a.Ret()
	a.Bind(tryEnd)
	a.Bind(handler)
	a.Pop()
	// Call it again: if the class lock leaked, this deadlocks (the
	// second acquire blocks forever with nobody to release).
	a.InvokeStatic(sync)
	a.ConstI(1)
	a.Ret()
	a.Catch(tryStart, tryEnd, handler, rte)
	a.MustBuild()

	vm, err := New(testConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = vm.RunMain("Main", "main")
	// The second call throws again (uncaught this time): that's the
	// expected trap. A deadlock error would mean the monitor leaked.
	if err == nil || !strings.Contains(err.Error(), "ArithmeticException") {
		t.Errorf("want second ArithmeticException, got %v", err)
	}
}

func TestExceptionAcrossMigrationBoundary(t *testing.T) {
	// The paper's marker protocol on the unwind path: a method annotated
	// RunOnSPE throws on the SPE; the handler lives in the PPE-side
	// caller. The thread must migrate back mid-unwind and the handler
	// must run on the PPE.
	p := newProg()
	rte := p.Lookup("java/lang/RuntimeException")
	c := p.NewClass("Main", nil)
	speBoom := c.NewMethod("speBoom", classfile.FlagStatic, classfile.Int, classfile.Int).
		Annotate(classfile.AnnRunOnSPE)
	{
		a := speBoom.Asm()
		a.ConstI(10)
		a.LoadI(0)
		a.DivI() // throws when arg == 0, on the SPE
		a.Ret()
		a.MustBuild()
	}
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	tryStart, tryEnd, handler := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.Bind(tryStart)
	a.ConstI(0)
	a.InvokeStatic(speBoom)
	a.Ret()
	a.Bind(tryEnd)
	a.Bind(handler)
	a.Pop()
	a.ConstI(123)
	a.Ret()
	a.Catch(tryStart, tryEnd, handler, rte)
	a.MustBuild()

	vm, th := runMain(t, testConfig(), p, "Main", "main")
	if got := int32(uint32(th.Result)); got != 123 {
		t.Errorf("cross-migration catch: %d", got)
	}
	if th.Migrations < 2 {
		t.Errorf("expected a migration round trip, got %d", th.Migrations)
	}
	var speIn uint64
	for _, s := range vm.Machine.CoresOf(isa.SPE) {
		speIn += s.Stats.MigrationsIn
	}
	if speIn == 0 {
		t.Error("the throwing method never reached an SPE")
	}
}

func TestNestedTryBlocks(t *testing.T) {
	p := newProg()
	arith := p.Lookup("java/lang/ArithmeticException")
	npe := p.Lookup("java/lang/NullPointerException")
	c := p.NewClass("Nested", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	outS, outE, outH := a.NewLabel(), a.NewLabel(), a.NewLabel()
	inS, inE, inH := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.Bind(outS)
	a.Bind(inS)
	a.ConstI(1)
	a.ConstI(0)
	a.DivI() // ArithmeticException: not matched by the inner NPE handler
	a.Ret()
	a.Bind(inE)
	a.Bind(outE)
	a.Bind(inH) // inner handler (NPE only)
	a.Pop()
	a.ConstI(1)
	a.Ret()
	a.Bind(outH) // outer handler (arithmetic)
	a.Pop()
	a.ConstI(2)
	a.Ret()
	a.Catch(inS, inE, inH, npe)
	a.Catch(outS, outE, outH, arith)
	a.MustBuild()

	_, th := runMain(t, testConfig(), p, "Nested", "main")
	if got := int32(uint32(th.Result)); got != 2 {
		t.Errorf("nested dispatch: got %d want 2", got)
	}
}

func TestCatchAllHandler(t *testing.T) {
	p := newProg()
	c := p.NewClass("All", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	tryStart, tryEnd, handler := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.Bind(tryStart)
	a.ConstI(2)
	a.NewArray(classfile.ElemInt)
	a.ConstI(9)
	a.ALoad(classfile.ElemInt) // OOB
	a.Ret()
	a.Bind(tryEnd)
	a.Bind(handler)
	a.Pop()
	a.ConstI(55)
	a.Ret()
	a.Catch(tryStart, tryEnd, handler, nil) // catch everything
	a.MustBuild()

	_, th := runMain(t, testConfig(), p, "All", "main")
	if got := int32(uint32(th.Result)); got != 55 {
		t.Errorf("catch-all: %d", got)
	}
}

func TestRethrowFromHandler(t *testing.T) {
	// finally-style: catch everything, do cleanup, rethrow; an outer
	// handler in the caller catches the rethrown object (identity
	// preserved).
	p := newProg()
	c := p.NewClass("Re", nil)
	inner := c.NewMethod("inner", classfile.FlagStatic, classfile.Void)
	{
		a := inner.Asm()
		tryStart, tryEnd, handler := a.NewLabel(), a.NewLabel(), a.NewLabel()
		a.Bind(tryStart)
		a.ConstI(3)
		a.ConstI(0)
		a.DivI()
		a.Pop()
		a.RetVoid()
		a.Bind(tryEnd)
		a.Bind(handler)
		a.Throw() // rethrow the same object
		a.Catch(tryStart, tryEnd, handler, nil)
		a.MustBuild()
	}
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	tryStart, tryEnd, handler := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.Bind(tryStart)
	a.InvokeStatic(inner)
	a.ConstI(0)
	a.Ret()
	a.Bind(tryEnd)
	a.Bind(handler)
	a.InstanceOf(p.Lookup("java/lang/ArithmeticException"))
	a.Ret()
	a.Catch(tryStart, tryEnd, handler, nil)
	a.MustBuild()

	_, th := runMain(t, testConfig(), p, "Re", "main")
	if got := int32(uint32(th.Result)); got != 1 {
		t.Errorf("rethrown object lost its type: %d", got)
	}
}

func TestLoopInsideTryBlockStillFast(t *testing.T) {
	// Handlers must not change executed semantics when nothing throws.
	p := newProg()
	c := p.NewClass("NoThrow", nil)
	m := c.NewMethod("main", classfile.FlagStatic, classfile.Int)
	a := m.Asm()
	tryStart, tryEnd, handler := a.NewLabel(), a.NewLabel(), a.NewLabel()
	loop, done := a.NewLabel(), a.NewLabel()
	a.Bind(tryStart)
	a.ConstI(0)
	a.StoreI(0)
	a.ConstI(0)
	a.StoreI(1)
	a.Bind(loop)
	a.LoadI(1)
	a.ConstI(1000)
	a.IfICmpGE(done)
	a.LoadI(0)
	a.LoadI(1)
	a.AddI()
	a.StoreI(0)
	a.Inc(1, 1)
	a.Goto(loop)
	a.Bind(done)
	a.LoadI(0)
	a.Ret()
	a.Bind(tryEnd)
	a.Bind(handler)
	a.Pop()
	a.ConstI(-1)
	a.Ret()
	a.Catch(tryStart, tryEnd, handler, nil)
	a.MustBuild()

	_, th := runMain(t, testConfig(), p, "NoThrow", "main")
	if got := int32(uint32(th.Result)); got != 499500 {
		t.Errorf("got %d", got)
	}
}

func TestExceptionTableGrowsCodeSize(t *testing.T) {
	p := newProg()
	c := p.NewClass("Sz", nil)
	plain := c.NewMethod("plain", classfile.FlagStatic, classfile.Void)
	{
		a := plain.Asm()
		a.ConstI(1)
		a.Pop()
		a.RetVoid()
		a.MustBuild()
	}
	guarded := c.NewMethod("guarded", classfile.FlagStatic, classfile.Void)
	{
		a := guarded.Asm()
		s0, e0, h0 := a.NewLabel(), a.NewLabel(), a.NewLabel()
		a.Bind(s0)
		a.ConstI(1)
		a.Pop()
		a.Bind(e0)
		a.RetVoid()
		a.Bind(h0)
		a.Pop()
		a.RetVoid()
		a.Catch(s0, e0, h0, nil)
		a.MustBuild()
	}
	vmach, err := New(testConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := vmach.Compiler(isa.SPE).Compile(plain)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := vmach.Compiler(isa.SPE).Compile(guarded)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Size <= cp.Size {
		t.Errorf("exception table should add bytes: %d vs %d", cg.Size, cp.Size)
	}
	if len(cg.Handlers) != 1 {
		t.Errorf("handlers lowered: %d", len(cg.Handlers))
	}
}
